#include "potential/funcfl.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace sdcmd {
namespace {

/// A small synthetic funcfl table with a purely repulsive Z^2/r pair term.
EamTables repulsive_tables() {
  EamTables t;
  t.label = "test";
  t.atomic_number = 26;
  t.mass = 55.845;
  t.lattice_constant = 2.87;
  t.structure = "bcc";
  t.dr = 0.01;
  t.drho = 0.1;
  t.cutoff = 3.0;
  const std::size_t nr = 301, nrho = 101;
  t.pair.resize(nr);
  t.density.resize(nr);
  t.embed.resize(nrho);
  constexpr double kZ2ToEvA = 27.2 * 0.529;
  for (std::size_t i = 0; i < nr; ++i) {
    const double r = t.dr * static_cast<double>(i);
    const double z = std::exp(-r);  // decaying effective charge
    t.pair[i] = i == 0 ? 0.0 : kZ2ToEvA * z * z / r;
    t.density[i] = std::exp(-2.0 * r);
  }
  t.pair[0] = 2.0 * t.pair[1] - t.pair[2];
  for (std::size_t i = 0; i < nrho; ++i) {
    const double rho = t.drho * static_cast<double>(i);
    t.embed[i] = -std::sqrt(rho);
  }
  return t;
}

TEST(Funcfl, RoundTripPreservesTables) {
  const EamTables original = repulsive_tables();
  std::stringstream stream;
  write_funcfl(stream, original, "round trip");
  const EamTables parsed = read_funcfl(stream);

  EXPECT_EQ(parsed.atomic_number, original.atomic_number);
  EXPECT_DOUBLE_EQ(parsed.mass, original.mass);
  EXPECT_EQ(parsed.structure, original.structure);
  ASSERT_EQ(parsed.pair.size(), original.pair.size());
  for (std::size_t i = 1; i < original.pair.size(); ++i) {
    EXPECT_NEAR(parsed.pair[i], original.pair[i],
                1e-10 * std::max(1.0, std::abs(original.pair[i])))
        << "i=" << i;
  }
  for (std::size_t i = 0; i < original.embed.size(); ++i) {
    EXPECT_NEAR(parsed.embed[i], original.embed[i], 1e-12);
  }
  for (std::size_t i = 0; i < original.density.size(); ++i) {
    EXPECT_NEAR(parsed.density[i], original.density[i], 1e-12);
  }
}

TEST(Funcfl, ParsedTablesFormAValidPotential) {
  const EamTables original = repulsive_tables();
  std::stringstream stream;
  write_funcfl(stream, original);
  TabulatedEam pot{read_funcfl(stream)};
  double v, dvdr;
  pot.pair(1.5, v, dvdr);
  EXPECT_GT(v, 0.0);       // repulsive
  EXPECT_LT(dvdr, 0.0);    // decaying
}

TEST(Funcfl, WriterRejectsAttractivePairTerms) {
  EamTables t = repulsive_tables();
  t.pair[50] = -1.0;  // V < 0 has no real Z
  std::stringstream stream;
  EXPECT_THROW(write_funcfl(stream, t), PreconditionError);
}

TEST(Funcfl, RejectsTruncatedInput) {
  std::stringstream stream("comment\n26 55.8 2.87 bcc\n10 0.1 10 0.01 3.0\n1 2 3\n");
  EXPECT_THROW(read_funcfl(stream), ParseError);
}

TEST(Funcfl, RejectsBadHeader) {
  std::stringstream stream("comment\n26 55.8 2.87 bcc\n1 0.1 10 0.01 3.0\n");
  EXPECT_THROW(read_funcfl(stream), ParseError);
}

TEST(Funcfl, TruncatedTableReportsLineAndEntry) {
  std::stringstream stream(
      "comment\n26 55.8 2.87 bcc\n10 0.1 10 0.01 3.0\n1 2 3\n");
  try {
    read_funcfl(stream);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("F(rho) entry 4 of 10"), std::string::npos) << what;
    EXPECT_NE(what.find("near line"), std::string::npos) << what;
  }
}

TEST(Funcfl, MissingFileThrows) {
  EXPECT_THROW(read_funcfl_file("/nonexistent/pot.funcfl"), ParseError);
}

}  // namespace
}  // namespace sdcmd
