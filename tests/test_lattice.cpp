#include "geom/lattice.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/units.hpp"

namespace sdcmd {
namespace {

TEST(Lattice, BasisSizes) {
  EXPECT_EQ(atoms_per_cell(LatticeType::SimpleCubic), 1u);
  EXPECT_EQ(atoms_per_cell(LatticeType::Bcc), 2u);
  EXPECT_EQ(atoms_per_cell(LatticeType::Fcc), 4u);
}

TEST(Lattice, AtomCountMatchesSpec) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.nx = 3;
  spec.ny = 4;
  spec.nz = 5;
  EXPECT_EQ(spec.atom_count(), 2u * 3 * 4 * 5);
  EXPECT_EQ(build_lattice(spec).size(), spec.atom_count());
}

TEST(Lattice, PaperCaseSizesExactlyReproduced) {
  // Section III.B: the four bcc Fe cases.
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.nx = spec.ny = spec.nz = 30;
  EXPECT_EQ(spec.atom_count(), 54000u);
  spec.nx = spec.ny = spec.nz = 51;
  EXPECT_EQ(spec.atom_count(), 265302u);
  spec.nx = spec.ny = spec.nz = 81;
  EXPECT_EQ(spec.atom_count(), 1062882u);
  spec.nx = spec.ny = spec.nz = 120;
  EXPECT_EQ(spec.atom_count(), 3456000u);
}

TEST(Lattice, AllPositionsInsideBox) {
  LatticeSpec spec;
  spec.type = LatticeType::Fcc;
  spec.a0 = 3.6;
  spec.nx = spec.ny = spec.nz = 3;
  const Box box = spec.box();
  for (const Vec3& r : build_lattice(spec)) {
    EXPECT_TRUE(box.contains(r));
  }
}

TEST(Lattice, PositionsAreUnique) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.nx = spec.ny = spec.nz = 4;
  const auto positions = build_lattice(spec);
  std::set<std::tuple<long, long, long>> seen;
  for (const Vec3& r : positions) {
    seen.insert({std::lround(r.x * 1e6), std::lround(r.y * 1e6),
                 std::lround(r.z * 1e6)});
  }
  EXPECT_EQ(seen.size(), positions.size());
}

TEST(Lattice, BccNearestNeighborDistance) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 3;
  const auto positions = build_lattice(spec);
  const Box box = spec.box();
  // nearest-neighbor distance in bcc is a0 * sqrt(3)/2
  double min_d2 = 1e30;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      min_d2 = std::min(min_d2, box.distance2(positions[i], positions[j]));
    }
  }
  EXPECT_NEAR(std::sqrt(min_d2), units::kLatticeFe * std::sqrt(3.0) / 2.0,
              1e-9);
}

TEST(Lattice, RejectsBadSpecs) {
  LatticeSpec spec;
  spec.a0 = -1.0;
  EXPECT_THROW(build_lattice(spec), PreconditionError);
  spec.a0 = 2.0;
  spec.nx = 0;
  EXPECT_THROW(build_lattice(spec), PreconditionError);
}

TEST(Lattice, BccCubeWithAtLeastFindsMinimalCube) {
  const auto spec = bcc_cube_with_at_least(54000, 2.8665);
  EXPECT_EQ(spec.nx, 30);
  EXPECT_EQ(spec.atom_count(), 54000u);

  const auto spec2 = bcc_cube_with_at_least(54001, 2.8665);
  EXPECT_EQ(spec2.nx, 31);

  const auto spec3 = bcc_cube_with_at_least(1, 2.8665);
  EXPECT_EQ(spec3.nx, 1);
  EXPECT_THROW(bcc_cube_with_at_least(0, 2.8665), PreconditionError);
}

}  // namespace
}  // namespace sdcmd
