// The deterministic fault-injection registry.
#include "common/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sdcmd {
namespace {

/// Every test leaves the global injector clean for its neighbors.
class FaultTest : public testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().disarm_all(); }
  void TearDown() override { FaultInjector::instance().disarm_all(); }
};

TEST_F(FaultTest, DisarmedPointsNeverFire) {
  EXPECT_FALSE(FaultInjector::instance().armed());
  EXPECT_FALSE(FaultInjector::instance().should_fire("anything").has_value());
}

TEST_F(FaultTest, FiresOnFirstHitByDefault) {
  FaultInjector::instance().arm("p", {});
  EXPECT_TRUE(FaultInjector::instance().armed());
  EXPECT_TRUE(FaultInjector::instance().should_fire("p").has_value());
  // Single shot: the second hit passes through.
  EXPECT_FALSE(FaultInjector::instance().should_fire("p").has_value());
  EXPECT_EQ(FaultInjector::instance().fire_count("p"), 1);
}

TEST_F(FaultTest, CountdownDelaysTheTrigger) {
  FaultSpec spec;
  spec.countdown = 3;
  FaultInjector::instance().arm("p", spec);
  for (int hit = 0; hit < 3; ++hit) {
    EXPECT_FALSE(FaultInjector::instance().should_fire("p").has_value())
        << "hit " << hit;
  }
  EXPECT_TRUE(FaultInjector::instance().should_fire("p").has_value());
  EXPECT_FALSE(FaultInjector::instance().should_fire("p").has_value());
}

TEST_F(FaultTest, MultiShotAndForeverModes) {
  FaultSpec burst;
  burst.shots = 2;
  FaultInjector::instance().arm("burst", burst);
  EXPECT_TRUE(FaultInjector::instance().should_fire("burst").has_value());
  EXPECT_TRUE(FaultInjector::instance().should_fire("burst").has_value());
  EXPECT_FALSE(FaultInjector::instance().should_fire("burst").has_value());

  FaultSpec forever;
  forever.shots = -1;
  FaultInjector::instance().arm("forever", forever);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(FaultInjector::instance().should_fire("forever").has_value());
  }
  EXPECT_EQ(FaultInjector::instance().fire_count("forever"), 10);
}

TEST_F(FaultTest, RearmResetsCounters) {
  FaultInjector::instance().arm("p", {});
  EXPECT_TRUE(FaultInjector::instance().should_fire("p").has_value());
  FaultInjector::instance().arm("p", {});
  EXPECT_TRUE(FaultInjector::instance().should_fire("p").has_value());
}

TEST_F(FaultTest, DisarmRemovesOnlyThatPoint) {
  FaultInjector::instance().arm("a", {});
  FaultInjector::instance().arm("b", {});
  FaultInjector::instance().disarm("a");
  EXPECT_FALSE(FaultInjector::instance().should_fire("a").has_value());
  EXPECT_TRUE(FaultInjector::instance().should_fire("b").has_value());
}

TEST_F(FaultTest, PoisonForcesWritesNan) {
  std::vector<Vec3> forces(8, Vec3{1.0, 1.0, 1.0});
  faults::maybe_poison_forces(forces);  // disarmed: untouched
  EXPECT_TRUE(std::isfinite(forces[3].x));

  FaultSpec spec;
  spec.index = 3;
  FaultInjector::instance().arm(faults::kForceNan, spec);
  faults::maybe_poison_forces(forces);
  EXPECT_TRUE(std::isnan(forces[3].x));
  EXPECT_TRUE(std::isnan(forces[3].z));
  EXPECT_TRUE(std::isfinite(forces[2].x));
}

TEST_F(FaultTest, PositionKickDisplacesOneAtom) {
  std::vector<Vec3> positions(4, Vec3{});
  FaultSpec spec;
  spec.index = 9;  // taken modulo size -> atom 1
  spec.magnitude = 2.5;
  FaultInjector::instance().arm(faults::kPositionKick, spec);
  faults::maybe_kick_position(positions);
  EXPECT_DOUBLE_EQ(positions[1].x, 2.5);
  EXPECT_DOUBLE_EQ(positions[0].x, 0.0);
}

}  // namespace
}  // namespace sdcmd
