#include "neighbor/neighbor_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "geom/lattice.hpp"

namespace sdcmd {
namespace {

using Pair = std::pair<std::uint32_t, std::uint32_t>;

std::vector<Vec3> random_points(const Box& box, std::size_t n,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vec3> out(n);
  for (auto& r : out) {
    r = {rng.uniform(box.lo().x, box.hi().x),
         rng.uniform(box.lo().y, box.hi().y),
         rng.uniform(box.lo().z, box.hi().z)};
  }
  return out;
}

std::set<Pair> pairs_from_half_list(const NeighborList& list) {
  std::set<Pair> pairs;
  for (std::size_t i = 0; i < list.atom_count(); ++i) {
    for (std::uint32_t j : list.neighbors(i)) {
      const auto a = static_cast<std::uint32_t>(i);
      pairs.insert({std::min(a, j), std::max(a, j)});
    }
  }
  return pairs;
}

TEST(NeighborList, HalfListMatchesBruteForce) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 250, 99);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  cfg.skin = 0.0;  // exact range so sets must match brute force
  NeighborList list(box, cfg);
  list.build(points);

  const auto expected = brute_force_pairs(box, points, 3.0);
  const auto actual = pairs_from_half_list(list);
  EXPECT_EQ(actual.size(), expected.size());
  for (const auto& p : expected) {
    EXPECT_TRUE(actual.count(p)) << p.first << "," << p.second;
  }
}

TEST(NeighborList, HalfListStoresEachPairOnce) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 200, 5);
  NeighborListConfig cfg;
  cfg.cutoff = 3.2;
  NeighborList list(box, cfg);
  list.build(points);

  std::set<Pair> seen;
  for (std::size_t i = 0; i < list.atom_count(); ++i) {
    for (std::uint32_t j : list.neighbors(i)) {
      EXPECT_GT(j, i) << "half list must store j > i";
      EXPECT_TRUE(seen.insert({static_cast<std::uint32_t>(i), j}).second);
    }
  }
}

TEST(NeighborList, FullListIsSymmetricAndTwiceTheHalfList) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 200, 5);

  NeighborListConfig half_cfg;
  half_cfg.cutoff = 3.2;
  NeighborList half(box, half_cfg);
  half.build(points);

  NeighborListConfig full_cfg = half_cfg;
  full_cfg.mode = NeighborMode::Full;
  NeighborList full(box, full_cfg);
  full.build(points);

  EXPECT_EQ(full.pair_count(), 2 * half.pair_count());
  for (std::size_t i = 0; i < full.atom_count(); ++i) {
    for (std::uint32_t j : full.neighbors(i)) {
      const auto nbrs = full.neighbors(j);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(),
                          static_cast<std::uint32_t>(i)),
                nbrs.end())
          << "asymmetric pair " << i << "," << j;
    }
  }
}

TEST(NeighborList, BccIronCoordinationWithinPotentialRange) {
  // bcc Fe: 8 first-shell (2.48 A) + 6 second-shell (2.87 A) neighbors lie
  // inside the FS cutoff + 0.4 skin (3.97 A); the 12 third-shell atoms at
  // 4.05 A do not. A full list must see exactly 14 per atom.
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 4;
  const auto positions = build_lattice(spec);

  NeighborListConfig cfg;
  cfg.cutoff = 3.569745;
  cfg.skin = 0.4;
  cfg.mode = NeighborMode::Full;
  NeighborList list(spec.box(), cfg);
  list.build(positions);

  for (std::size_t i = 0; i < list.atom_count(); ++i) {
    EXPECT_EQ(list.neighbors(i).size(), 14u) << "atom " << i;
  }
  EXPECT_DOUBLE_EQ(list.mean_neighbors(), 14.0);
}

TEST(NeighborList, SortNeighborsProducesAscendingSublists) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 300, 21);
  NeighborListConfig cfg;
  cfg.cutoff = 3.4;
  cfg.sort_neighbors = true;
  NeighborList list(box, cfg);
  list.build(points);
  for (std::size_t i = 0; i < list.atom_count(); ++i) {
    const auto nbrs = list.neighbors(i);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(NeighborList, CsrArraysAreConsistent) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 120, 3);
  NeighborListConfig cfg;
  cfg.cutoff = 3.4;
  NeighborList list(box, cfg);
  list.build(points);

  const auto& index = list.neigh_index();
  const auto& len = list.neigh_len();
  ASSERT_EQ(index.size(), points.size() + 1);
  ASSERT_EQ(len.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(index[i] + len[i], index[i + 1]);
  }
  EXPECT_EQ(index.back(), list.neigh_list().size());
}

TEST(NeighborList, NeedsRebuildAfterDriftBeyondHalfSkin) {
  const Box box = Box::cubic(13.0);
  auto points = random_points(box, 50, 8);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  cfg.skin = 0.5;
  NeighborList list(box, cfg);
  list.build(points);
  EXPECT_FALSE(list.needs_rebuild(points));

  points[10].x += 0.2;  // below skin/2
  EXPECT_FALSE(list.needs_rebuild(points));
  points[10].x += 0.1;  // beyond skin/2 total
  EXPECT_TRUE(list.needs_rebuild(points));
}

TEST(NeighborList, NeedsRebuildOnAtomCountChange) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 50, 8);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  NeighborList list(box, cfg);
  list.build(points);
  const auto fewer = std::vector<Vec3>(points.begin(), points.end() - 1);
  EXPECT_TRUE(list.needs_rebuild(fewer));
}

TEST(NeighborList, SkinWidensTheStoredRange) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 250, 99);
  NeighborListConfig no_skin;
  no_skin.cutoff = 3.0;
  no_skin.skin = 0.0;
  NeighborListConfig with_skin = no_skin;
  with_skin.skin = 0.6;

  NeighborList a(box, no_skin), b(box, with_skin);
  a.build(points);
  b.build(points);
  EXPECT_GT(b.pair_count(), a.pair_count());
}

TEST(NeighborList, RejectsBadConfig) {
  const Box box = Box::cubic(13.0);
  NeighborListConfig cfg;
  cfg.cutoff = 0.0;
  EXPECT_THROW(NeighborList(box, cfg), PreconditionError);
  cfg.cutoff = 3.0;
  cfg.skin = -0.1;
  EXPECT_THROW(NeighborList(box, cfg), PreconditionError);
}

TEST(NeighborList, MemoryAccountingIsPlausible) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 100, 1);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  NeighborList list(box, cfg);
  list.build(points);
  EXPECT_GT(list.memory_bytes(),
            list.pair_count() * sizeof(std::uint32_t));
}

}  // namespace
}  // namespace sdcmd
