#include "neighbor/neighbor_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "geom/lattice.hpp"

namespace sdcmd {
namespace {

using Pair = std::pair<std::uint32_t, std::uint32_t>;

std::vector<Vec3> random_points(const Box& box, std::size_t n,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vec3> out(n);
  for (auto& r : out) {
    r = {rng.uniform(box.lo().x, box.hi().x),
         rng.uniform(box.lo().y, box.hi().y),
         rng.uniform(box.lo().z, box.hi().z)};
  }
  return out;
}

std::set<Pair> pairs_from_half_list(const NeighborList& list) {
  std::set<Pair> pairs;
  for (std::size_t i = 0; i < list.atom_count(); ++i) {
    for (std::uint32_t j : list.neighbors(i)) {
      const auto a = static_cast<std::uint32_t>(i);
      pairs.insert({std::min(a, j), std::max(a, j)});
    }
  }
  return pairs;
}

std::set<Pair> pair_set(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs) {
  return {pairs.begin(), pairs.end()};
}

// Exact pair-for-pair comparison against the O(N^2) reference for every
// enumeration path: the default half-stencil build, the legacy
// full-stencil half build, and Full mode (whose stored entries, folded to
// unordered pairs, must halve to the same set).
void expect_all_paths_match_brute_force(const Box& box,
                                        std::span<const Vec3> points,
                                        double cutoff) {
  const auto expected = pair_set(brute_force_pairs(box, points, cutoff));

  NeighborListConfig cfg;
  cfg.cutoff = cutoff;
  cfg.skin = 0.0;  // exact range so sets must match brute force

  NeighborList half(box, cfg);
  half.build(points);
  EXPECT_EQ(half.pair_count(), expected.size());
  EXPECT_EQ(pairs_from_half_list(half), expected) << "half-stencil path";

  NeighborListConfig legacy_cfg = cfg;
  legacy_cfg.half_stencil = false;
  NeighborList legacy(box, legacy_cfg);
  legacy.build(points);
  EXPECT_EQ(legacy.pair_count(), expected.size());
  EXPECT_EQ(pairs_from_half_list(legacy), expected) << "legacy half path";

  NeighborListConfig full_cfg = cfg;
  full_cfg.mode = NeighborMode::Full;
  NeighborList full(box, full_cfg);
  full.build(points);
  EXPECT_EQ(full.pair_count(), 2 * expected.size());
  EXPECT_EQ(pairs_from_half_list(full), expected) << "full mode";
}

TEST(NeighborList, HalfListMatchesBruteForce) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 250, 99);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  cfg.skin = 0.0;  // exact range so sets must match brute force
  NeighborList list(box, cfg);
  list.build(points);

  const auto expected = brute_force_pairs(box, points, 3.0);
  const auto actual = pairs_from_half_list(list);
  EXPECT_EQ(actual.size(), expected.size());
  for (const auto& p : expected) {
    EXPECT_TRUE(actual.count(p)) << p.first << "," << p.second;
  }
}

TEST(NeighborList, HalfListStoresEachPairOnce) {
  // The half-stencil build stores a cross-cell pair under the atom whose
  // cell owns the cell pair - not necessarily under min(i, j) - so the
  // guarantee is "each unordered pair exactly once", not j > i.
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 200, 5);
  NeighborListConfig cfg;
  cfg.cutoff = 3.2;
  NeighborList list(box, cfg);
  list.build(points);

  std::set<Pair> seen;
  for (std::size_t i = 0; i < list.atom_count(); ++i) {
    for (std::uint32_t j : list.neighbors(i)) {
      EXPECT_NE(j, i) << "self pair";
      const auto a = static_cast<std::uint32_t>(i);
      EXPECT_TRUE(seen.insert({std::min(a, j), std::max(a, j)}).second)
          << "pair {" << std::min(a, j) << "," << std::max(a, j)
          << "} stored twice";
    }
  }
}

TEST(NeighborList, LegacyHalfPathStoresUnderMinIndex) {
  // The pre-pipeline enumeration (full stencil, skip j <= i) is kept
  // behind half_stencil = false and must still store every pair under the
  // smaller atom index.
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 200, 5);
  NeighborListConfig cfg;
  cfg.cutoff = 3.2;
  cfg.half_stencil = false;
  NeighborList list(box, cfg);
  list.build(points);

  std::set<Pair> seen;
  for (std::size_t i = 0; i < list.atom_count(); ++i) {
    for (std::uint32_t j : list.neighbors(i)) {
      EXPECT_GT(j, i) << "legacy half list must store j > i";
      EXPECT_TRUE(seen.insert({static_cast<std::uint32_t>(i), j}).second);
    }
  }
}

TEST(NeighborList, AllPathsMatchBruteForceOnRandomizedBoxes) {
  // Randomized periodic and non-periodic boxes, exact pair-set compare.
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 6; ++trial) {
    const double cutoff = rng.uniform(2.5, 3.5);
    const Vec3 lengths{rng.uniform(2.0 * cutoff, 5.0 * cutoff),
                       rng.uniform(2.0 * cutoff, 5.0 * cutoff),
                       rng.uniform(2.0 * cutoff, 5.0 * cutoff)};
    const std::array<bool, 3> periodic{trial % 2 == 0, trial % 3 != 0,
                                       true};
    const Box box({0, 0, 0}, lengths,
                  {periodic[0], periodic[1], periodic[2]});
    const auto points =
        random_points(box, 150 + 40 * trial,
                      static_cast<std::uint64_t>(trial) + 31);
    expect_all_paths_match_brute_force(box, points, cutoff);
  }
}

TEST(NeighborList, NarrowPeriodicGridsMatchBruteForce) {
  // Exactly 2 cells per periodic dimension: the stencil dedup path and
  // the half-stencil ownership rule both get exercised hardest here.
  const double cutoff = 3.0;
  const Box fully_periodic = Box::cubic(7.0);  // 7/3 -> 2 cells per dim
  const auto p1 = random_points(fully_periodic, 260, 17);
  expect_all_paths_match_brute_force(fully_periodic, p1, cutoff);

  // Mixed: two periodic dims at 2 cells, one open dim at 3.
  const Box mixed({0, 0, 0}, {7.0, 7.0, 9.5}, {true, true, false});
  const auto p2 = random_points(mixed, 260, 18);
  expect_all_paths_match_brute_force(mixed, p2, cutoff);
}

TEST(NeighborList, FullListIsSymmetricAndTwiceTheHalfList) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 200, 5);

  NeighborListConfig half_cfg;
  half_cfg.cutoff = 3.2;
  NeighborList half(box, half_cfg);
  half.build(points);

  NeighborListConfig full_cfg = half_cfg;
  full_cfg.mode = NeighborMode::Full;
  NeighborList full(box, full_cfg);
  full.build(points);

  EXPECT_EQ(full.pair_count(), 2 * half.pair_count());
  for (std::size_t i = 0; i < full.atom_count(); ++i) {
    for (std::uint32_t j : full.neighbors(i)) {
      const auto nbrs = full.neighbors(j);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(),
                          static_cast<std::uint32_t>(i)),
                nbrs.end())
          << "asymmetric pair " << i << "," << j;
    }
  }
}

TEST(NeighborList, BccIronCoordinationWithinPotentialRange) {
  // bcc Fe: 8 first-shell (2.48 A) + 6 second-shell (2.87 A) neighbors lie
  // inside the FS cutoff + 0.4 skin (3.97 A); the 12 third-shell atoms at
  // 4.05 A do not. A full list must see exactly 14 per atom.
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 4;
  const auto positions = build_lattice(spec);

  NeighborListConfig cfg;
  cfg.cutoff = 3.569745;
  cfg.skin = 0.4;
  cfg.mode = NeighborMode::Full;
  NeighborList list(spec.box(), cfg);
  list.build(positions);

  for (std::size_t i = 0; i < list.atom_count(); ++i) {
    EXPECT_EQ(list.neighbors(i).size(), 14u) << "atom " << i;
  }
  EXPECT_DOUBLE_EQ(list.mean_neighbors(), 14.0);

  // mean_neighbors is mode-aware physical coordination: the half list
  // stores each pair once but must report the same 14.
  NeighborListConfig half_cfg = cfg;
  half_cfg.mode = NeighborMode::Half;
  NeighborList half(spec.box(), half_cfg);
  half.build(positions);
  EXPECT_DOUBLE_EQ(half.mean_neighbors(), 14.0);
}

TEST(NeighborList, MeanNeighborsMatchesBruteForceInBothModes) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 250, 77);
  const double cutoff = 3.1;
  const auto pairs = brute_force_pairs(box, points, cutoff);
  const double physical = 2.0 * static_cast<double>(pairs.size()) /
                          static_cast<double>(points.size());

  NeighborListConfig cfg;
  cfg.cutoff = cutoff;
  cfg.skin = 0.0;
  NeighborList half(box, cfg);
  half.build(points);
  EXPECT_DOUBLE_EQ(half.mean_neighbors(), physical);

  NeighborListConfig full_cfg = cfg;
  full_cfg.mode = NeighborMode::Full;
  NeighborList full(box, full_cfg);
  full.build(points);
  EXPECT_DOUBLE_EQ(full.mean_neighbors(), physical);
}

TEST(NeighborList, SortNeighborsProducesAscendingSublists) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 300, 21);
  NeighborListConfig cfg;
  cfg.cutoff = 3.4;
  cfg.sort_neighbors = true;
  NeighborList list(box, cfg);
  list.build(points);
  for (std::size_t i = 0; i < list.atom_count(); ++i) {
    const auto nbrs = list.neighbors(i);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(NeighborList, CsrArraysAreConsistent) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 120, 3);
  NeighborListConfig cfg;
  cfg.cutoff = 3.4;
  NeighborList list(box, cfg);
  list.build(points);

  const auto& index = list.neigh_index();
  const auto& len = list.neigh_len();
  ASSERT_EQ(index.size(), points.size() + 1);
  ASSERT_EQ(len.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(index[i] + len[i], index[i + 1]);
  }
  EXPECT_EQ(index.back(), list.neigh_list().size());
}

TEST(NeighborList, NeedsRebuildAfterDriftBeyondHalfSkin) {
  const Box box = Box::cubic(13.0);
  auto points = random_points(box, 50, 8);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  cfg.skin = 0.5;
  NeighborList list(box, cfg);
  list.build(points);
  EXPECT_FALSE(list.needs_rebuild(points));

  points[10].x += 0.2;  // below skin/2
  EXPECT_FALSE(list.needs_rebuild(points));
  points[10].x += 0.1;  // beyond skin/2 total
  EXPECT_TRUE(list.needs_rebuild(points));
}

TEST(NeighborList, NeedsRebuildOnAtomCountChange) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 50, 8);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  NeighborList list(box, cfg);
  list.build(points);
  const auto fewer = std::vector<Vec3>(points.begin(), points.end() - 1);
  EXPECT_TRUE(list.needs_rebuild(fewer));
}

TEST(NeighborList, SkinWidensTheStoredRange) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 250, 99);
  NeighborListConfig no_skin;
  no_skin.cutoff = 3.0;
  no_skin.skin = 0.0;
  NeighborListConfig with_skin = no_skin;
  with_skin.skin = 0.6;

  NeighborList a(box, no_skin), b(box, with_skin);
  a.build(points);
  b.build(points);
  EXPECT_GT(b.pair_count(), a.pair_count());
}

TEST(NeighborList, RejectsBadConfig) {
  const Box box = Box::cubic(13.0);
  NeighborListConfig cfg;
  cfg.cutoff = 0.0;
  EXPECT_THROW(NeighborList(box, cfg), PreconditionError);
  cfg.cutoff = 3.0;
  cfg.skin = -0.1;
  EXPECT_THROW(NeighborList(box, cfg), PreconditionError);
}

TEST(NeighborList, MemoryAccountingIncludesEveryComponent) {
  const Box box = Box::cubic(13.0);
  const auto points = random_points(box, 100, 1);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  NeighborList list(box, cfg);
  list.build(points);
  // The gauge must equal the sum of the CSR arrays, the staleness
  // snapshot and the embedded CellList (once under-reported as zero).
  const std::size_t expected =
      list.neigh_index().size() * sizeof(std::size_t) +
      list.neigh_len().size() * sizeof(std::uint32_t) +
      list.neigh_list().size() * sizeof(std::uint32_t) +
      points.size() * sizeof(Vec3) + list.cells().memory_bytes();
  EXPECT_EQ(list.memory_bytes(), expected);
  EXPECT_GT(list.cells().memory_bytes(), 0u);
  EXPECT_GT(list.memory_bytes(),
            list.pair_count() * sizeof(std::uint32_t));
}

TEST(NeighborList, UpdateBoxReusesStorageUntilTheGridReshapes) {
  Box box = Box::cubic(12.0);
  const double cutoff = 2.6;  // + 0.4 skin -> 3.0 range, 4x4x4 grid
  auto points = random_points(box, 300, 55);
  NeighborListConfig cfg;
  cfg.cutoff = cutoff;
  NeighborList list(box, cfg);
  list.build(points);
  EXPECT_EQ(list.stats().builds, 1u);
  EXPECT_EQ(list.stats().grid_reshapes, 0u);
  EXPECT_EQ(list.stats().stencil_rebuilds, 1u);

  // A small barostat-style rescale keeps 4 cells per dim: no reshape.
  Box grown = box;
  grown.rescale({1.01, 1.01, 1.01});
  EXPECT_FALSE(list.update_box(grown));
  EXPECT_EQ(list.stats().grid_reshapes, 0u);
  EXPECT_EQ(list.stats().stencil_rebuilds, 1u);

  // A large rescale crosses a cell-count boundary: reshape + new stencils.
  Box large = box;
  large.rescale({1.3, 1.3, 1.3});  // 15.6 / 3.0 -> 5 cells per dim
  EXPECT_TRUE(list.update_box(large));
  EXPECT_EQ(list.stats().grid_reshapes, 1u);
  EXPECT_EQ(list.stats().stencil_rebuilds, 2u);

  // Rebuilding against the new box still enumerates exactly the physical
  // pair set (affine-remap the points like the barostat does).
  for (auto& r : points) r = large.affine_map(r, box);
  list.build(points);
  const auto expected =
      pair_set(brute_force_pairs(large, points, cutoff + cfg.skin));
  EXPECT_EQ(pairs_from_half_list(list), expected);
}

/// Every padded tile must mirror its CSR sublist exactly: same entries in
/// the real slots, sentinel in every tail slot, tile starts aligned to the
/// pad width. Catches stale tiles left behind by a rebuild.
void expect_padded_tiles_match_csr(const NeighborList& list) {
  ASSERT_TRUE(list.has_padded_tiles());
  const auto w = static_cast<std::size_t>(list.pad_width());
  const std::uint32_t sentinel = list.pad_sentinel();
  const auto& tiles = list.padded_list();
  const auto& starts = list.tile_index();
  ASSERT_EQ(starts.size(), list.atom_count() + 1);
  for (std::size_t i = 0; i < list.atom_count(); ++i) {
    const auto sub = list.neighbors(i);
    ASSERT_EQ(starts[i] % w, 0u);
    const std::size_t padded = (sub.size() + w - 1) / w * w;
    ASSERT_EQ(starts[i + 1] - starts[i], padded) << "atom " << i;
    for (std::size_t k = 0; k < sub.size(); ++k) {
      EXPECT_EQ(tiles[starts[i] + k], sub[k]) << "atom " << i;
    }
    for (std::size_t k = sub.size(); k < padded; ++k) {
      EXPECT_EQ(tiles[starts[i] + k], sentinel)
          << "tail slot " << k << " of atom " << i;
    }
  }
}

TEST(NeighborList, PaddedTilesFollowDeformAcrossCellCountBoundary) {
  // Regression: a barostat-style deformation that reshapes the cell grid
  // must leave NO stale padded tiles after the post-update_box rebuild.
  // The staleness risk is specific to pad_width > 1, where the tiles are a
  // second copy of the pair enumeration.
  Box box = Box::cubic(12.0);
  const double cutoff = 2.6;  // + 0.4 default skin -> 3.0 range, 4^3 grid
  auto points = random_points(box, 300, 77);
  NeighborListConfig cfg;
  cfg.cutoff = cutoff;
  cfg.pad_width = 4;
  NeighborList list(box, cfg);
  list.build(points);
  expect_padded_tiles_match_csr(list);
  const std::size_t padded_before = list.padded_pair_count();

  // Cross the cell-count boundary (4 -> 5 cells per dim) and rebuild the
  // way Simulation::rebuild_geometry does: update_box, then build.
  Box large = box;
  large.rescale({1.3, 1.3, 1.3});
  ASSERT_TRUE(list.update_box(large));
  for (auto& r : points) r = large.affine_map(r, box);
  list.build(points);

  // The rebuilt tiles describe the NEW pair set exactly...
  expect_padded_tiles_match_csr(list);
  const auto expected =
      pair_set(brute_force_pairs(large, points, cutoff + cfg.skin));
  EXPECT_EQ(pairs_from_half_list(list), expected);
  // ...and shrank with it (the grown box holds fewer pairs), proving the
  // padded copy was resized rather than left at the old footprint.
  EXPECT_LT(list.padded_pair_count(), padded_before);
  EXPECT_GE(list.pad_fraction(), 0.0);
}

TEST(NeighborList, PadFractionGuardsEmptyAndUnpaddedLists) {
  // Padding disabled: no padded copy, fraction pinned to 0 (not NaN).
  const Box box = Box::cubic(20.0);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  NeighborList plain(box, cfg);
  plain.build(std::vector<Vec3>{{1.0, 1.0, 1.0}, {10.0, 10.0, 10.0}});
  EXPECT_EQ(plain.pad_fraction(), 0.0);

  // Padding enabled but ZERO pairs in range: the 0/0 case must also give
  // 0, and the tile index must still be walkable (all-empty tiles).
  cfg.pad_width = 4;
  NeighborList padded(box, cfg);
  padded.build(std::vector<Vec3>{{1.0, 1.0, 1.0}, {10.0, 10.0, 10.0}});
  EXPECT_EQ(padded.pair_count(), 0u);
  EXPECT_EQ(padded.pad_fraction(), 0.0);
  EXPECT_FALSE(std::isnan(padded.pad_fraction()));
  expect_padded_tiles_match_csr(padded);

  // A rebuild that brings the atoms into range flips the fraction live.
  padded.build(std::vector<Vec3>{{1.0, 1.0, 1.0}, {2.5, 1.0, 1.0}});
  EXPECT_EQ(padded.pair_count(), 1u);
  // 1 real pair padded to a 4-slot tile: fraction = 4/1 - 1 = 3.
  EXPECT_DOUBLE_EQ(padded.pad_fraction(), 3.0);
  // And a rebuild back to the empty configuration clears it again (the
  // stale-gauge regression: the old value must not linger).
  padded.build(std::vector<Vec3>{{1.0, 1.0, 1.0}, {10.0, 10.0, 10.0}});
  EXPECT_EQ(padded.pad_fraction(), 0.0);
}

TEST(NeighborList, ConfigCompatibilityGatesInPlaceReuse) {
  const Box box = Box::cubic(13.0);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  NeighborList list(box, cfg);
  EXPECT_TRUE(list.config_compatible(cfg));
  NeighborListConfig other = cfg;
  other.skin = 0.9;
  EXPECT_FALSE(list.config_compatible(other));
  other = cfg;
  other.mode = NeighborMode::Full;
  EXPECT_FALSE(list.config_compatible(other));
  other = cfg;
  other.half_stencil = false;
  EXPECT_FALSE(list.config_compatible(other));
}

}  // namespace
}  // namespace sdcmd
