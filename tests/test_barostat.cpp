#include "md/barostat.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "md/simulation.hpp"
#include "potential/finnis_sinclair.hpp"

namespace sdcmd {
namespace {

System bcc_system(int cells, double a0 = units::kLatticeFe) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = a0;
  spec.nx = spec.ny = spec.nz = cells;
  return System::from_lattice(spec, units::kMassFe);
}

TEST(Barostat, RejectsBadParameters) {
  EXPECT_THROW(BerendsenBarostat(0.0, 0.0), PreconditionError);
  EXPECT_THROW(BerendsenBarostat(0.0, 1.0, -1.0), PreconditionError);
}

TEST(Barostat, ShrinksBoxUnderTension) {
  // pressure < target  =>  mu^3 = 1 - k (P0 - P) < 1: box shrinks.
  System system = bcc_system(3);
  BerendsenBarostat barostat(0.0, 1.0, 0.5);
  const double v0 = system.box().volume();
  const double mu = barostat.apply(system, -0.1, 0.1);
  EXPECT_LT(mu, 1.0);
  EXPECT_LT(system.box().volume(), v0);
}

TEST(Barostat, ExpandsBoxUnderCompression) {
  System system = bcc_system(3);
  BerendsenBarostat barostat(0.0, 1.0, 0.5);
  const double v0 = system.box().volume();
  const double mu = barostat.apply(system, +0.1, 0.1);
  EXPECT_GT(mu, 1.0);
  EXPECT_GT(system.box().volume(), v0);
}

TEST(Barostat, AtTargetDoesNothing) {
  System system = bcc_system(3);
  BerendsenBarostat barostat(0.05, 1.0);
  const double v0 = system.box().volume();
  const double mu = barostat.apply(system, 0.05, 0.1);
  EXPECT_DOUBLE_EQ(mu, 1.0);
  EXPECT_DOUBLE_EQ(system.box().volume(), v0);
}

TEST(Barostat, PositionsRescaleAffinely) {
  System system = bcc_system(3);
  const Vec3 before = system.atoms().position[7];
  BerendsenBarostat barostat(0.0, 1.0, 0.5);
  const double mu = barostat.apply(system, 0.3, 0.1);
  const Vec3 after = system.atoms().position[7];
  EXPECT_NEAR(after.x, before.x * mu, 1e-12);
  EXPECT_NEAR(after.y, before.y * mu, 1e-12);
}

TEST(Barostat, VolumeChangePerStepIsClamped) {
  System system = bcc_system(3);
  BerendsenBarostat barostat(0.0, 1e-6, 100.0);  // absurdly stiff coupling
  const double v0 = system.box().volume();
  barostat.apply(system, 1e6, 1.0);
  EXPECT_LE(system.box().volume(), v0 * 1.1 + 1e-9);
  EXPECT_GE(system.box().volume(), v0 * 0.9 - 1e-9);
}

TEST(Barostat, NptRunRelaxesStretchedCrystalTowardZeroPressure) {
  // Start from a uniformly stretched lattice (tensile, negative pressure);
  // an NPT run with P0 = 0 must contract the box back toward a0.
  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;

  const double stretched_a0 = units::kLatticeFe * 1.02;
  Simulation sim(bcc_system(4, stretched_a0), iron, cfg);
  sim.set_temperature(10.0, 3);
  sim.set_thermostat(std::make_unique<BerendsenThermostat>(10.0, 0.05));
  sim.set_barostat(BerendsenBarostat(0.0, 0.5, 0.02), /*every=*/5);

  const double lx0 = sim.system().box().length(0);
  sim.run(200);
  const double lx1 = sim.system().box().length(0);
  EXPECT_LT(lx1, lx0);
  // Should move toward the equilibrium lattice constant, not overshoot
  // into heavy compression.
  EXPECT_GT(lx1, 4 * units::kLatticeFe * 0.97);
}

TEST(Barostat, SteadyStateRunPerformsZeroListReconstructions) {
  // Every barostat application changes the box, but as long as the list
  // configuration is unchanged the box change must go through
  // update_box() - the NeighborList/CellList heap is built exactly once.
  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;

  Simulation sim(bcc_system(4, units::kLatticeFe * 1.01), iron, cfg);
  sim.set_temperature(10.0, 3);
  sim.set_thermostat(std::make_unique<BerendsenThermostat>(10.0, 0.05));
  sim.set_barostat(BerendsenBarostat(0.0, 0.5, 0.02), /*every=*/5);
  ASSERT_EQ(sim.neighbor_reconstructions(), 1u);

  sim.run(150);
  EXPECT_EQ(sim.neighbor_reconstructions(), 1u);
  // The gentle contraction stays within the same grid shape, so the
  // stencil tables from construction are still the originals.
  const NeighborBuildStats stats = sim.neighbor_stats();
  EXPECT_EQ(stats.grid_reshapes, 0u);
  EXPECT_EQ(stats.stencil_rebuilds, 1u);
  EXPECT_GT(stats.builds, 1u);  // box changes still rebuilt the pairs
}

}  // namespace
}  // namespace sdcmd
