// Run supervisor: retention ring rotation, MANIFEST verification and
// fallback, run_state.v1 round trips, auto-resume corruption handling,
// disk-full retry/backoff, signal-driven shutdown, the wall-clock budget,
// and the step-time watchdog.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "md/simulation.hpp"
#include "obs/metrics.hpp"
#include "potential/finnis_sinclair.hpp"
#include "run/run_dir.hpp"
#include "run/run_state.hpp"
#include "run/supervisor.hpp"

namespace sdcmd::run {
namespace {

namespace fs = std::filesystem;

const FinnisSinclair& iron() {
  static FinnisSinclair fe{FinnisSinclairParams::iron()};
  return fe;
}

System make_system(int cells = 3) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = cells;
  return System::from_lattice(spec, units::kMassFe);
}

SimulationConfig serial_config() {
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;
  return cfg;
}

/// Fresh scratch run directory (wiped on entry, not on exit so a failing
/// test leaves its evidence behind).
std::string scratch_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / ("sdcmd_run_test_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::size_t count_ring_files(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& de : fs::directory_iterator(dir)) {
    const std::string name = de.path().filename().string();
    if (name.rfind("ckpt_", 0) == 0 && name.size() > 4 &&
        name.substr(name.size() - 4) == ".chk") {
      ++n;
    }
  }
  return n;
}

class RunSupervisorTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    RunSupervisor::clear_shutdown_request();
    saved_level_ = log_level();
    set_log_level(LogLevel::Error);  // retry/fallback warnings are expected
  }
  void TearDown() override {
    set_log_level(saved_level_);
    RunSupervisor::clear_shutdown_request();
    FaultInjector::instance().disarm_all();
  }
  LogLevel saved_level_ = LogLevel::Warn;
};

// ---------------------------------------------------------------- run_state

TEST_F(RunSupervisorTest, RunStateJsonRoundTrip) {
  RunState state;
  state.step = 1200;
  state.dt = 0.0010180505710774743;
  state.total_energy = -547.33129882812502;
  state.momentum_zeroed = true;
  state.config_hash = 0x9e107d9d372bb682ull;
  state.checkpoint_file = "ckpt_0000001200.chk";
  state.has_governor = true;
  state.governor.active = ReductionStrategy::LockStriped;
  state.governor.demotions = 2;
  state.governor.promotions = 1;
  state.governor.race_suspects = 1;
  state.governor.feasible_streak = 7;
  state.governor.backoff = 4;

  const RunState back = parse_run_state(to_json(state));
  EXPECT_EQ(back.step, state.step);
  EXPECT_EQ(back.dt, state.dt);  // 17-digit text round-trips exactly
  EXPECT_EQ(back.total_energy, state.total_energy);
  EXPECT_EQ(back.momentum_zeroed, state.momentum_zeroed);
  EXPECT_EQ(back.config_hash, state.config_hash);
  EXPECT_EQ(back.checkpoint_file, state.checkpoint_file);
  ASSERT_TRUE(back.has_governor);
  EXPECT_EQ(back.governor.active, ReductionStrategy::LockStriped);
  EXPECT_EQ(back.governor.demotions, 2);
  EXPECT_EQ(back.governor.promotions, 1);
  EXPECT_EQ(back.governor.race_suspects, 1);
  EXPECT_EQ(back.governor.feasible_streak, 7);
  EXPECT_EQ(back.governor.backoff, 4);
}

TEST_F(RunSupervisorTest, RunStateWithoutGovernorRoundTrips) {
  RunState state;
  state.step = 5;
  state.dt = 0.5;
  const RunState back = parse_run_state(to_json(state));
  EXPECT_FALSE(back.has_governor);
  EXPECT_EQ(back.config_hash, 0u);
}

TEST_F(RunSupervisorTest, RunStateParseErrorsCarryByteOffsets) {
  try {
    parse_run_state("{\"schema\": \"sdcmd.run_state.v1\", \"step\": }");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(parse_run_state("{\"schema\": \"other.v9\", \"step\": 1, "
                               "\"dt\": 0.5}"),
               ParseError);
  EXPECT_THROW(parse_run_state("{\"schema\": \"sdcmd.run_state.v1\", "
                               "\"step\": 1, \"dt\": -0.5}"),
               ParseError);
}

TEST_F(RunSupervisorTest, RunStateCellTaskRungRoundTrips) {
  // The newest ladder rung's code (celltask = 7) must survive the sidecar.
  RunState state;
  state.step = 42;
  state.dt = 0.5;
  state.has_governor = true;
  state.governor.active = ReductionStrategy::CellTask;
  state.governor.demotions = 1;
  state.governor.backoff = 2;
  const RunState back = parse_run_state(to_json(state));
  ASSERT_TRUE(back.has_governor);
  EXPECT_EQ(back.governor.active, ReductionStrategy::CellTask);
  EXPECT_EQ(back.governor.demotions, 1);
  EXPECT_EQ(back.governor.backoff, 2);
}

TEST_F(RunSupervisorTest, UnknownGovernorCodeDropsGovernorKeepsSidecar) {
  // A sidecar written by a NEWER ladder carries a strategy code this build
  // does not know. The old behavior threw, which made the resume machinery
  // discard the whole sidecar; the contract is to drop only the governor
  // block (fresh setup on resume) and keep every other restored field.
  const std::string json =
      "{\"schema\": \"sdcmd.run_state.v1\", \"step\": 77, \"dt\": 0.5, "
      "\"total_energy\": -12.25, \"momentum_zeroed\": true, "
      "\"checkpoint_file\": \"ckpt_0000000077.chk\", "
      "\"governor\": true, \"governor_strategy\": 99, "
      "\"governor_demotions\": 3, \"governor_backoff\": 4}";
  const RunState back = parse_run_state(json);
  EXPECT_FALSE(back.has_governor);
  EXPECT_EQ(back.governor.demotions, 0);  // reset, not half-restored
  EXPECT_EQ(back.step, 77);
  EXPECT_EQ(back.dt, 0.5);
  EXPECT_EQ(back.total_energy, -12.25);
  EXPECT_TRUE(back.momentum_zeroed);
  EXPECT_EQ(back.checkpoint_file, "ckpt_0000000077.chk");
}

TEST_F(RunSupervisorTest, OffLadderGovernorCodeIsAlsoRejected) {
  // Code 5 (RedundantComputation) decodes, but it is not a ladder rung; a
  // sidecar claiming the governor sat there is corrupt. Restoring it would
  // make StrategyGovernor::restore_state throw mid-resume.
  const std::string json =
      "{\"schema\": \"sdcmd.run_state.v1\", \"step\": 9, \"dt\": 0.5, "
      "\"governor\": true, \"governor_strategy\": 5}";
  const RunState back = parse_run_state(json);
  EXPECT_FALSE(back.has_governor);
  EXPECT_EQ(back.step, 9);
}

// ------------------------------------------------------------------ run_dir

TEST_F(RunSupervisorTest, RetentionRingKeepsLastK) {
  const std::string dir = scratch_dir("ring");
  RunDir rd(dir, 3);
  const System system = make_system();
  for (long step : {10, 20, 30, 40, 50}) {
    RunState state;
    state.step = step;
    state.dt = 0.5;
    rd.commit(system, state);
  }
  EXPECT_EQ(count_ring_files(dir), 3u);
  const std::vector<RingEntry> ring = rd.read_manifest();
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0].step, 50);
  EXPECT_EQ(ring[1].step, 40);
  EXPECT_EQ(ring[2].step, 30);
  EXPECT_EQ(ring[0].file, RunDir::checkpoint_name(50));
  EXPECT_FALSE(fs::exists(rd.file_path(RunDir::checkpoint_name(10))));
  // Sidecar follows the newest generation.
  std::ifstream in(rd.file_path("run_state.json"));
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(parse_run_state(json).step, 50);
}

TEST_F(RunSupervisorTest, RecommittingSameStepDoesNotDuplicate) {
  const std::string dir = scratch_dir("same_step");
  RunDir rd(dir, 3);
  const System system = make_system();
  RunState state;
  state.step = 7;
  state.dt = 0.5;
  rd.commit(system, state);
  rd.commit(system, state);
  EXPECT_EQ(rd.read_manifest().size(), 1u);
  EXPECT_EQ(count_ring_files(dir), 1u);
}

TEST_F(RunSupervisorTest, TornManifestFallsBackToDirectoryScan) {
  const std::string dir = scratch_dir("torn");
  RunDir rd(dir, 3);
  const System system = make_system();
  RunState state;
  state.dt = 0.5;
  state.step = 10;
  rd.commit(system, state);
  state.step = 20;
  FaultSpec torn;
  torn.countdown = 0;
  FaultInjector::instance().arm(faults::kManifestTornWrite, torn);
  rd.commit(system, state);  // MANIFEST lands truncated, no rename barrier
  FaultInjector::instance().disarm_all();

  EXPECT_THROW(rd.read_manifest(), ParseError);
  // The scan still sees both generations and resume picks the newest.
  const std::vector<RingEntry> scanned = rd.scan_ring();
  ASSERT_EQ(scanned.size(), 2u);
  EXPECT_EQ(scanned[0].step, 20);
  const auto resume = rd.try_resume();
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->checkpoint.step, 20);
  EXPECT_TRUE(resume->manifest_fallback);
  EXPECT_EQ(resume->discarded, 0);
  // The next successful commit heals the MANIFEST.
  state.step = 30;
  rd.commit(system, state);
  EXPECT_EQ(rd.read_manifest().size(), 3u);
}

TEST_F(RunSupervisorTest, ResumeSkipsCorruptNewestCandidate) {
  const std::string dir = scratch_dir("corrupt_newest");
  RunDir rd(dir, 3);
  const System system = make_system();
  RunState state;
  state.dt = 0.5;
  for (long step : {10, 20, 30}) {
    state.step = step;
    rd.commit(system, state);
  }
  // Truncate the newest generation to half its bytes: the checksum
  // fast-fail must discard it and resume from step 20.
  const std::string newest = rd.file_path(RunDir::checkpoint_name(30));
  std::ifstream in(newest, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(newest, std::ios::binary | std::ios::trunc);
  out << bytes.substr(0, bytes.size() / 2);
  out.close();

  const auto resume = rd.try_resume();
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->checkpoint.step, 20);
  EXPECT_EQ(resume->discarded, 1);
  // The sidecar describes step 30, not the surviving step 20 checkpoint:
  // it must be ignored rather than trusted.
  EXPECT_FALSE(resume->state_valid);
}

TEST_F(RunSupervisorTest, ResumeOnEmptyDirectoryIsNullopt) {
  RunDir rd(scratch_dir("empty"), 2);
  EXPECT_FALSE(rd.try_resume().has_value());
}

TEST_F(RunSupervisorTest, MissingManifestStillResumesFromScan) {
  const std::string dir = scratch_dir("no_manifest");
  RunDir rd(dir, 2);
  RunState state;
  state.dt = 0.5;
  state.step = 10;
  rd.commit(make_system(), state);
  fs::remove(rd.file_path("MANIFEST"));
  const auto resume = rd.try_resume();
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->checkpoint.step, 10);
  EXPECT_TRUE(resume->state_valid);
}

// --------------------------------------------------------------- supervisor

TEST_F(RunSupervisorTest, SupervisorWritesRingOnCadence) {
  const std::string dir = scratch_dir("cadence");
  RunDir rd(dir, 3);
  Simulation sim(make_system(), iron(), serial_config());
  SupervisorConfig cfg;
  cfg.checkpoint_every = 4;
  cfg.install_signal_handlers = false;
  RunSupervisor sup(sim, rd, cfg);

  EXPECT_EQ(sup.run_to(10), RunOutcome::Completed);
  EXPECT_EQ(sim.current_step(), 10);
  // Generations at steps 0, 4, 8 and the final one at 10, pruned to 3.
  EXPECT_EQ(sup.checkpoints_written(), 4);
  const std::vector<RingEntry> ring = rd.read_manifest();
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0].step, 10);
}

TEST_F(RunSupervisorTest, DiskFullRetriesThenRecovers) {
  const std::string dir = scratch_dir("disk_full");
  RunDir rd(dir, 3);
  Simulation sim(make_system(), iron(), serial_config());
  obs::MetricsRegistry registry;
  SupervisorConfig cfg;
  cfg.checkpoint_every = 100;
  cfg.install_signal_handlers = false;
  cfg.retry_backoff_initial_s = 0.0;  // no sleeping in tests
  cfg.registry = &registry;
  RunSupervisor sup(sim, rd, cfg);

  FaultSpec fault;
  fault.shots = 2;  // two attempts fail, the third lands
  FaultInjector::instance().arm(faults::kDiskFull, fault);
  EXPECT_TRUE(sup.checkpoint_now());
  EXPECT_EQ(sup.checkpoint_retries(), 2);
  EXPECT_EQ(sup.checkpoint_failures(), 0);
  EXPECT_EQ(registry.value(registry.counter("run.checkpoint_retries")), 2.0);
  EXPECT_EQ(registry.value(registry.counter("run.checkpoint_failures")), 0.0);
  EXPECT_EQ(sup.checkpoint_interval(), 100);  // cadence untouched
  EXPECT_TRUE(rd.try_resume().has_value());
}

TEST_F(RunSupervisorTest, DiskFullExhaustionWidensIntervalAndRunSurvives) {
  const std::string dir = scratch_dir("disk_full_exhausted");
  RunDir rd(dir, 3);
  Simulation sim(make_system(), iron(), serial_config());
  obs::MetricsRegistry registry;
  SupervisorConfig cfg;
  cfg.checkpoint_every = 10;
  cfg.max_write_retries = 1;
  cfg.retry_backoff_initial_s = 0.0;
  cfg.install_signal_handlers = false;
  cfg.registry = &registry;
  RunSupervisor sup(sim, rd, cfg);

  FaultSpec fault;
  fault.shots = -1;  // the disk stays full
  FaultInjector::instance().arm(faults::kDiskFull, fault);
  EXPECT_FALSE(sup.checkpoint_now());
  EXPECT_EQ(sup.checkpoint_failures(), 1);
  EXPECT_EQ(sup.checkpoint_retries(), 1);
  EXPECT_EQ(sup.checkpoint_interval(), 20);  // widened, not dead
  EXPECT_EQ(registry.value(registry.gauge("run.checkpoint_interval")), 20.0);

  // The disk recovers: the next success restores the configured cadence.
  FaultInjector::instance().disarm_all();
  EXPECT_TRUE(sup.checkpoint_now());
  EXPECT_EQ(sup.checkpoint_interval(), 10);
}

TEST_F(RunSupervisorTest, ShutdownRequestCheckpointsAndStops) {
  const std::string dir = scratch_dir("shutdown");
  RunDir rd(dir, 3);
  Simulation sim(make_system(), iron(), serial_config());
  SupervisorConfig cfg;
  cfg.checkpoint_every = 1000;
  cfg.install_signal_handlers = false;
  RunSupervisor sup(sim, rd, cfg);

  RunSupervisor::request_shutdown();  // what the SIGTERM handler does
  EXPECT_EQ(sup.run_to(1000), RunOutcome::SignalShutdown);
  EXPECT_EQ(sim.current_step(), 0);  // stopped at the first boundary
  const auto resume = rd.try_resume();
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->checkpoint.step, 0);
}

TEST_F(RunSupervisorTest, WallClockBudgetStopsWithCheckpoint) {
  const std::string dir = scratch_dir("wall");
  RunDir rd(dir, 3);
  Simulation sim(make_system(), iron(), serial_config());
  SupervisorConfig cfg;
  cfg.checkpoint_every = 1000;
  cfg.max_wall_seconds = 1e-9;  // expires before the first step
  cfg.install_signal_handlers = false;
  RunSupervisor sup(sim, rd, cfg);

  EXPECT_EQ(sup.run_to(1000), RunOutcome::WallClockExpired);
  EXPECT_LT(sim.current_step(), 1000);
  EXPECT_TRUE(rd.try_resume().has_value());
}

TEST_F(RunSupervisorTest, WatchdogTripsOnPathologicalStep) {
  const std::string dir = scratch_dir("watchdog");
  RunDir rd(dir, 3);
  Simulation sim(make_system(), iron(), serial_config());
  SupervisorConfig cfg;
  cfg.checkpoint_every = 1000;
  cfg.install_signal_handlers = false;
  cfg.watchdog_factor = 3.0;
  cfg.watchdog_min_seconds = 0.02;
  RunSupervisor sup(sim, rd, cfg);

  // Step 3 stalls for ~25x the floor; every other step is ordinary.
  const Simulation::Callback stall = [](const Simulation&, long step) {
    if (step == 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
  };
  EXPECT_EQ(sup.run_to(5, stall), RunOutcome::Completed);
  EXPECT_GE(sup.watchdog_trips(), 1);
  EXPECT_GT(sup.step_ewma_seconds(), 0.0);
}

TEST_F(RunSupervisorTest, ResumeRestoresStepDtAndEnergy) {
  const std::string dir = scratch_dir("resume_energy");
  const std::uint64_t config_hash = fnv1a64("resume_energy fixture");

  double saved_energy = 0.0;
  {
    RunDir rd(dir, 3);
    Simulation sim(make_system(), iron(), serial_config());
    sim.set_temperature(60.0, 99);
    SupervisorConfig cfg;
    cfg.checkpoint_every = 5;
    cfg.install_signal_handlers = false;
    cfg.config_hash = config_hash;
    RunSupervisor sup(sim, rd, cfg);
    EXPECT_EQ(sup.run_to(12), RunOutcome::Completed);
    sim.compute_forces();
    saved_energy = sim.sample().total_energy();
  }  // original process "dies" here

  RunDir rd(dir, 3);
  const auto resume = rd.try_resume();
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->checkpoint.step, 12);
  ASSERT_TRUE(resume->state_valid);
  EXPECT_EQ(resume->state.config_hash, config_hash);
  EXPECT_TRUE(resume->state.momentum_zeroed);
  EXPECT_EQ(resume->state.checkpoint_file, RunDir::checkpoint_name(12));

  Simulation restarted(resume->checkpoint.system, iron(), serial_config());
  restarted.set_current_step(resume->checkpoint.step);
  restarted.set_dt(resume->state.dt);
  restarted.set_com_momentum_zeroed(resume->state.momentum_zeroed);
  EXPECT_EQ(restarted.current_step(), 12);
  restarted.compute_forces();
  const double resumed_energy = restarted.sample().total_energy();
  const double rel = std::abs(resumed_energy - saved_energy) /
                     std::max(1.0, std::abs(saved_energy));
  EXPECT_LE(rel, 1e-12);  // 17-digit text round-trip: near-exact
  EXPECT_EQ(resume->state.total_energy, saved_energy);

  // And the run continues with the original numbering.
  restarted.run(3);
  EXPECT_EQ(restarted.current_step(), 15);
}

// ------------------------------------------------- resume hardening (PR 9)

TEST_F(RunSupervisorTest, ZeroByteSidecarDegradesToCheckpointOnlyResume) {
  const std::string dir = scratch_dir("zero_sidecar");
  RunDir rd(dir, 3);
  RunState state;
  state.dt = 0.5;
  state.step = 10;
  rd.commit(make_system(), state);
  // A crash can leave the sidecar as an empty file (inode created, no
  // bytes flushed). Resume must degrade, never refuse.
  std::ofstream(rd.file_path("run_state.json"),
                std::ios::binary | std::ios::trunc);
  const auto resume = rd.try_resume();
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->checkpoint.step, 10);
  EXPECT_FALSE(resume->state_valid);
  // The provable variant has no older generation to prefer: same answer.
  const auto provable = rd.try_resume_provable();
  ASSERT_TRUE(provable.has_value());
  EXPECT_EQ(provable->checkpoint.step, 10);
  EXPECT_FALSE(provable->state_valid);
}

TEST_F(RunSupervisorTest, ManifestNamingOnlyDeletedCheckpointsScansInstead) {
  const std::string dir = scratch_dir("manifest_deleted");
  RunDir rd(dir, 3);
  RunState state;
  state.dt = 0.5;
  state.step = 10;
  rd.commit(make_system(), state);
  // Forge a MANIFEST that verifies its checksum but names only a
  // checkpoint that no longer exists (operator cleanup, rogue sweep).
  // The directory scan must win: the unlisted step-10 file still resumes.
  const std::string body =
      "sdcmd-manifest 1\nentry 99 ckpt_0000000099.chk 0000000000000000\n";
  std::ostringstream forged;
  forged << body << "checksum fnv1a64 " << std::hex << std::setw(16)
         << std::setfill('0') << fnv1a64(body) << "\n";
  std::ofstream(rd.file_path("MANIFEST"), std::ios::binary | std::ios::trunc)
      << forged.str();

  const auto resume = rd.try_resume();
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->checkpoint.step, 10);
  EXPECT_TRUE(resume->manifest_fallback);
  EXPECT_GE(resume->discarded, 1);
  EXPECT_TRUE(resume->state_valid);
}

TEST_F(RunSupervisorTest, ProvableResumeFindsGenerationTheManifestMissed) {
  const std::string dir = scratch_dir("manifest_behind");
  RunDir rd(dir, 3);
  RunState state;
  state.dt = 0.5;
  std::string manifest_after_10;
  for (long step : {10, 20}) {
    state.step = step;
    rd.commit(make_system(), state);
    if (step == 10) {
      std::ifstream in(rd.file_path("MANIFEST"), std::ios::binary);
      manifest_after_10.assign(std::istreambuf_iterator<char>(in), {});
    }
  }
  // Crash window between the sidecar rename and the MANIFEST rename:
  // ckpt_20 and its sidecar are on disk but the (verified!) index still
  // lists only step 10. try_resume trusts the index and degrades; the
  // provable variant must notice the sidecar names an unlisted newer
  // generation and resume it with the proof intact.
  std::ofstream(rd.file_path("MANIFEST"), std::ios::binary | std::ios::trunc)
      << manifest_after_10;

  const auto resume = rd.try_resume();
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->checkpoint.step, 10);
  EXPECT_FALSE(resume->state_valid);

  const auto provable = rd.try_resume_provable();
  ASSERT_TRUE(provable.has_value());
  EXPECT_EQ(provable->checkpoint.step, 20);
  EXPECT_TRUE(provable->state_valid);
  EXPECT_EQ(provable->state.step, 20);
}

TEST_F(RunSupervisorTest, DeletedNewestManifestEntryFallsToOlderListed) {
  const std::string dir = scratch_dir("manifest_hole");
  RunDir rd(dir, 3);
  RunState state;
  state.dt = 0.5;
  for (long step : {10, 20}) {
    state.step = step;
    rd.commit(make_system(), state);
  }
  // The MANIFEST stays intact but its newest file is deleted out from
  // under it. The missing file costs one candidate, not the whole resume.
  fs::remove(rd.file_path(RunDir::checkpoint_name(20)));
  const auto resume = rd.try_resume();
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->checkpoint.step, 10);
  EXPECT_EQ(resume->discarded, 1);
  EXPECT_FALSE(resume->state_valid);  // sidecar describes step 20
}

TEST_F(RunSupervisorTest, ProvableResumePrefersGenerationSidecarDescribes) {
  const std::string dir = scratch_dir("provable");
  RunDir rd(dir, 3);
  RunState state;
  state.dt = 0.5;
  state.step = 10;
  rd.commit(make_system(), state);
  std::ifstream in(rd.file_path("run_state.json"));
  const std::string sidecar_for_10((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
  in.close();
  state.step = 20;
  rd.commit(make_system(), state);
  // Reproduce a crash between the step-20 checkpoint rename and the
  // sidecar rename: checkpoint 20 on disk, sidecar still describing 10.
  std::ofstream(rd.file_path("run_state.json"),
                std::ios::binary | std::ios::trunc)
      << sidecar_for_10;

  // Plain resume takes the newest checkpoint, losing the proof...
  const auto degraded = rd.try_resume();
  ASSERT_TRUE(degraded.has_value());
  EXPECT_EQ(degraded->checkpoint.step, 20);
  EXPECT_FALSE(degraded->state_valid);
  // ...while the provable variant trades one cadence for a verified state.
  const auto provable = rd.try_resume_provable();
  ASSERT_TRUE(provable.has_value());
  EXPECT_EQ(provable->checkpoint.step, 10);
  ASSERT_TRUE(provable->state_valid);
  EXPECT_EQ(provable->state.step, 10);
}

TEST_F(RunSupervisorTest, ConstructorSweepsStaleTmpFiles) {
  const std::string dir = scratch_dir("tmp_sweep");
  {
    RunDir rd(dir, 3);
    RunState state;
    state.dt = 0.5;
    state.step = 10;
    rd.commit(make_system(), state);
    std::ofstream(rd.file_path("run_state.json.tmp")) << "torn";
    std::ofstream(rd.file_path("MANIFEST.tmp")) << "torn";
    std::ofstream(rd.file_path("ckpt_0000000099.chk.tmp")) << "torn";
  }
  RunDir reopened(dir, 3);  // the sweep runs here
  for (const auto& de : fs::directory_iterator(dir)) {
    EXPECT_NE(de.path().extension(), ".tmp") << de.path();
  }
  const auto resume = reopened.try_resume();
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->checkpoint.step, 10);
  EXPECT_TRUE(resume->state_valid);
}

// ----------------------------------------------- concurrent supervisors

TEST_F(RunSupervisorTest, TwoSupervisorsOnDistinctDirsDoNotInterleave) {
  // Two supervisors in one process (the session-server layout) must keep
  // their rings, manifests, and temp files strictly inside their own run
  // directories.
  const std::string dir_a = scratch_dir("pair_a");
  const std::string dir_b = scratch_dir("pair_b");
  const auto drive = [](const std::string& dir, int seed) {
    RunDir rd(dir, 2);
    Simulation sim(make_system(3), iron(), serial_config());
    sim.set_temperature(50.0, seed);
    SupervisorConfig cfg;
    cfg.checkpoint_every = 2;
    cfg.install_signal_handlers = false;
    RunSupervisor sup(sim, rd, cfg);
    EXPECT_EQ(sup.run_to(8), RunOutcome::Completed);
  };
  std::thread ta(drive, dir_a, 11);
  std::thread tb(drive, dir_b, 22);
  ta.join();
  tb.join();

  for (const std::string& dir : {dir_a, dir_b}) {
    EXPECT_LE(count_ring_files(dir), 2u) << dir;  // retention ring intact
    for (const auto& de : fs::directory_iterator(dir)) {
      EXPECT_NE(de.path().extension(), ".tmp") << de.path();
    }
    RunDir rd(dir, 2);
    const auto resume = rd.try_resume();
    ASSERT_TRUE(resume.has_value()) << dir;
    EXPECT_EQ(resume->checkpoint.step, 8) << dir;
    EXPECT_TRUE(resume->state_valid) << dir;
    EXPECT_FALSE(resume->manifest_fallback) << dir;
  }
}

TEST_F(RunSupervisorTest, SupervisorRejectsNonsenseConfig) {
  RunDir rd(scratch_dir("badcfg"), 1);
  Simulation sim(make_system(), iron(), serial_config());
  SupervisorConfig cfg;
  cfg.checkpoint_every = 0;
  EXPECT_THROW(RunSupervisor(sim, rd, cfg), PreconditionError);
  SupervisorConfig cfg2;
  cfg2.ewma_alpha = 0.0;
  EXPECT_THROW(RunSupervisor(sim, rd, cfg2), PreconditionError);
  EXPECT_THROW(RunDir(scratch_dir("badkeep"), 0), PreconditionError);
}

}  // namespace
}  // namespace sdcmd::run
