#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "md/thermo.hpp"
#include "md/velocity.hpp"

namespace sdcmd {
namespace {

TEST(MaxwellBoltzmann, HitsTargetTemperatureExactly) {
  // Init removes the COM momentum, so the ensemble has 3N - 3 DOF; the
  // DOF-aware temperature is exact and the raw-3N form under-reports by
  // exactly (3N - 3) / 3N.
  std::vector<Vec3> v(500);
  maxwell_boltzmann_velocities(v, units::kMassFe, 300.0, 42);
  const std::size_t dof = temperature_dof(v.size(), true);
  EXPECT_EQ(dof, 3 * 500 - 3);
  EXPECT_NEAR(temperature_of(v, units::kMassFe, dof), 300.0, 1e-9);
  EXPECT_NEAR(temperature_of(v, units::kMassFe),
              300.0 * static_cast<double>(dof) / (3.0 * 500.0), 1e-9);
}

TEST(MaxwellBoltzmann, ZeroNetMomentum) {
  std::vector<Vec3> v(500);
  maxwell_boltzmann_velocities(v, units::kMassFe, 300.0, 42);
  Vec3 total{};
  for (const auto& vi : v) total += vi;
  EXPECT_NEAR(norm(total), 0.0, 1e-10);
}

TEST(MaxwellBoltzmann, DeterministicForSeed) {
  std::vector<Vec3> a(100), b(100);
  maxwell_boltzmann_velocities(a, units::kMassFe, 300.0, 7);
  maxwell_boltzmann_velocities(b, units::kMassFe, 300.0, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(MaxwellBoltzmann, DifferentSeedsDiffer) {
  std::vector<Vec3> a(100), b(100);
  maxwell_boltzmann_velocities(a, units::kMassFe, 300.0, 7);
  maxwell_boltzmann_velocities(b, units::kMassFe, 300.0, 8);
  EXPECT_NE(a[0], b[0]);
}

TEST(MaxwellBoltzmann, ZeroTemperatureGivesZeroVelocities) {
  std::vector<Vec3> v(50, Vec3{1, 1, 1});
  maxwell_boltzmann_velocities(v, units::kMassFe, 0.0, 1);
  for (const auto& vi : v) {
    EXPECT_EQ(vi, Vec3{});
  }
}

TEST(MaxwellBoltzmann, ComponentsRoughlyIsotropic) {
  std::vector<Vec3> v(20000);
  maxwell_boltzmann_velocities(v, units::kMassFe, 300.0, 3);
  double sx = 0, sy = 0, sz = 0;
  for (const auto& vi : v) {
    sx += vi.x * vi.x;
    sy += vi.y * vi.y;
    sz += vi.z * vi.z;
  }
  EXPECT_NEAR(sx / sy, 1.0, 0.05);
  EXPECT_NEAR(sy / sz, 1.0, 0.05);
}

TEST(ZeroLinearMomentum, RemovesDrift) {
  std::vector<Vec3> v{{1, 0, 0}, {3, 0, 0}};
  zero_linear_momentum(v);
  EXPECT_NEAR(v[0].x, -1.0, 1e-12);
  EXPECT_NEAR(v[1].x, 1.0, 1e-12);
}

TEST(Thermo, KineticEnergyDefinition) {
  std::vector<Vec3> v{{2, 0, 0}};
  EXPECT_DOUBLE_EQ(kinetic_energy(v, 3.0), 6.0);
}

TEST(Thermo, TemperatureOfEmptyIsZero) {
  EXPECT_EQ(temperature_of({}, 1.0), 0.0);
}

TEST(Thermo, DegreeOfFreedomCounting) {
  EXPECT_EQ(temperature_dof(0, false), 0u);
  EXPECT_EQ(temperature_dof(0, true), 0u);
  EXPECT_EQ(temperature_dof(1, false), 3u);
  EXPECT_EQ(temperature_dof(1, true), 0u);  // a pinned COM is the atom
  EXPECT_EQ(temperature_dof(100, false), 300u);
  EXPECT_EQ(temperature_dof(100, true), 297u);
}

TEST(Thermo, ZeroDofTemperatureIsZero) {
  std::vector<Vec3> v{{1, 0, 0}};
  EXPECT_EQ(temperature_of(v, units::kMassFe, 0), 0.0);
}

TEST(Thermo, TemperatureInvertsEquipartition) {
  // KE = dof/2 kB T with dof = 3N - 3 after COM removal.
  std::vector<Vec3> v(100);
  maxwell_boltzmann_velocities(v, units::kMassFe, 500.0, 5);
  const double ke = kinetic_energy(v, units::kMassFe);
  EXPECT_NEAR(ke, 0.5 * 297 * units::kBoltzmann * 500.0, 1e-9);
}

TEST(Thermo, IdealGasPressure) {
  // With zero virial, P = N kB T / V.
  const Box box = Box::cubic(10.0);
  const double p = pressure_of(100, box, 300.0, 0.0);
  EXPECT_NEAR(p, 100 * units::kBoltzmann * 300.0 / 1000.0, 1e-15);
}

TEST(Thermo, VirialRaisesPressure) {
  const Box box = Box::cubic(10.0);
  EXPECT_GT(pressure_of(100, box, 300.0, 30.0),
            pressure_of(100, box, 300.0, 0.0));
}

TEST(ThermoSample, EnergyBookkeeping) {
  ThermoSample s;
  s.kinetic_energy = 2.0;
  s.pair_energy = -10.0;
  s.embedding_energy = -5.0;
  EXPECT_DOUBLE_EQ(s.potential_energy(), -15.0);
  EXPECT_DOUBLE_EQ(s.total_energy(), -13.0);
}

}  // namespace
}  // namespace sdcmd
