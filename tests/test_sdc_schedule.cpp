#include "core/sdc_schedule.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "geom/lattice.hpp"

namespace sdcmd {
namespace {

constexpr double kRange = 3.9697;  // FS Fe cutoff + 0.4 skin

TEST(SdcSchedule, BuildsForAllDimensionalities) {
  const Box box = Box::cubic(10 * 2.8665);  // 28.665 A: fits 2 ranges
  for (int dims = 1; dims <= 3; ++dims) {
    SdcConfig cfg;
    cfg.dimensionality = dims;
    SdcSchedule schedule(box, kRange, cfg);
    EXPECT_EQ(schedule.color_count(), 1 << dims);
    EXPECT_FALSE(schedule.built());
  }
}

TEST(SdcSchedule, InfeasibleBoxThrows) {
  const Box box = Box::cubic(10.0);  // < 2 * 2 * kRange
  SdcConfig cfg;
  cfg.dimensionality = 1;
  EXPECT_THROW(SdcSchedule(box, kRange, cfg), InfeasibleError);
}

TEST(SdcSchedule, InfeasibleAtEveryDimensionality) {
  // A box below 4*range on every edge cannot host any SDC variant — the
  // paper's Table 1 blanks, systematically.
  const Box box = Box::cubic(4.0 * kRange - 0.1);
  for (int dims = 1; dims <= 3; ++dims) {
    SdcConfig cfg;
    cfg.dimensionality = dims;
    EXPECT_THROW(SdcSchedule(box, kRange, cfg), InfeasibleError)
        << "dims=" << dims;
  }
}

TEST(SdcSchedule, MarginallyInfeasibleAxisOnlyBlocksItsDimensionality) {
  // x and y fit two subdomains, z does not: 2-D builds, 3-D throws.
  const Box box({0, 0, 0},
                {5.0 * kRange, 5.0 * kRange, 4.0 * kRange - 0.1});
  SdcConfig cfg;
  cfg.dimensionality = 3;
  EXPECT_THROW(SdcSchedule(box, kRange, cfg), InfeasibleError);
  cfg.dimensionality = 2;
  SdcSchedule schedule(box, kRange, cfg);
  EXPECT_EQ(schedule.color_count(), 4);
}

TEST(SdcSchedule, OddSubdomainCapStopsAtEvenMinimum) {
  // max_subdomains below the 2x2x2 minimum (or odd) never yields odd
  // counts: the coloring requires even counts, so the cap saturates at
  // the coarsest even decomposition.
  const Box box = Box::cubic(40 * 2.8665);
  SdcConfig cfg;
  cfg.dimensionality = 3;
  cfg.max_subdomains = 7;
  SdcSchedule schedule(box, kRange, cfg);
  EXPECT_EQ(schedule.decomposition().counts(),
            (std::array<int, 3>{2, 2, 2}));
  for (const int c : schedule.decomposition().counts()) {
    EXPECT_EQ(c % 2, 0);
  }
}

TEST(SdcSchedule, RejectsBadDimensionality) {
  const Box box = Box::cubic(40.0);
  SdcConfig cfg;
  cfg.dimensionality = 0;
  EXPECT_THROW(SdcSchedule(box, kRange, cfg), PreconditionError);
  cfg.dimensionality = 4;
  EXPECT_THROW(SdcSchedule(box, kRange, cfg), PreconditionError);
}

TEST(SdcSchedule, RebuildMarksBuilt) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = 2.8665;
  spec.nx = spec.ny = spec.nz = 10;
  SdcConfig cfg;
  cfg.dimensionality = 2;
  SdcSchedule schedule(spec.box(), kRange, cfg);
  schedule.rebuild(build_lattice(spec));
  EXPECT_TRUE(schedule.built());
  EXPECT_EQ(schedule.partition().atom_count(), spec.atom_count());
}

TEST(SdcSchedule, MaxSubdomainsCapsGranularity) {
  const Box box = Box::cubic(40 * 2.8665);
  SdcConfig fine;
  fine.dimensionality = 3;
  SdcSchedule finest(box, kRange, fine);

  SdcConfig coarse = fine;
  coarse.max_subdomains = 64;
  SdcSchedule capped(box, kRange, coarse);
  EXPECT_LE(capped.decomposition().subdomain_count(), 64u);
  EXPECT_LT(capped.decomposition().subdomain_count(),
            finest.decomposition().subdomain_count());
}

TEST(SdcSchedule, FeasibleAgreesWithConstructor) {
  SdcConfig cfg;
  cfg.dimensionality = 2;
  // Just feasible vs just infeasible around the 4 * range bound.
  EXPECT_TRUE(SdcSchedule::feasible(Box::cubic(4.0 * kRange), kRange, cfg));
  EXPECT_FALSE(
      SdcSchedule::feasible(Box::cubic(4.0 * kRange - 0.1), kRange, cfg));
  // Coarsening caps never make a feasible finest decomposition infeasible.
  SdcConfig capped = cfg;
  capped.max_subdomains = 4;
  EXPECT_TRUE(
      SdcSchedule::feasible(Box::cubic(10.0 * kRange), kRange, capped));
}

TEST(SdcSchedule, DescribeIsInformative) {
  const Box box = Box::cubic(10 * 2.8665);
  SdcConfig cfg;
  cfg.dimensionality = 2;
  SdcSchedule schedule(box, kRange, cfg);
  const std::string s = schedule.describe();
  EXPECT_NE(s.find("2-D SDC"), std::string::npos);
  EXPECT_NE(s.find("4 colors"), std::string::npos);
}

}  // namespace
}  // namespace sdcmd
