// End-to-end integration tests: full MD runs through the Simulation driver,
// checking the physics invariants the whole stack must deliver together.
#include "md/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "potential/finnis_sinclair.hpp"

namespace sdcmd {
namespace {

const FinnisSinclair& iron() {
  static FinnisSinclair fe{FinnisSinclairParams::iron()};
  return fe;
}

System make_system(int cells) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = cells;
  return System::from_lattice(spec, units::kMassFe);
}

SimulationConfig nve_config(ReductionStrategy strategy) {
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = strategy;
  cfg.force.sdc.dimensionality = 2;
  return cfg;
}

TEST(Simulation, NveConservesEnergy) {
  Simulation sim(make_system(5), iron(),
                 nve_config(ReductionStrategy::Serial));
  sim.set_temperature(300.0, 42);
  sim.compute_forces();
  const double e0 = sim.sample().total_energy();
  sim.run(200);
  const double e1 = sim.sample().total_energy();
  // 1 fs steps in a stiff metal: drift must stay tiny relative to the
  // ~4 eV/atom cohesive energy scale.
  const double per_atom_drift =
      std::abs(e1 - e0) / static_cast<double>(sim.system().size());
  EXPECT_LT(per_atom_drift, 2e-4) << "e0=" << e0 << " e1=" << e1;
}

TEST(Simulation, NveConservesEnergyUnderSdc) {
  Simulation sim(make_system(6), iron(), nve_config(ReductionStrategy::Sdc));
  sim.set_temperature(300.0, 42);
  sim.compute_forces();
  const double e0 = sim.sample().total_energy();
  sim.run(100);
  const double per_atom_drift =
      std::abs(sim.sample().total_energy() - e0) /
      static_cast<double>(sim.system().size());
  EXPECT_LT(per_atom_drift, 2e-4);
}

TEST(Simulation, SdcTrajectoryTracksSerialTrajectory) {
  // Identical initial conditions under serial and SDC force evaluation must
  // yield the same trajectory up to floating-point summation order.
  Simulation serial(make_system(6), iron(),
                    nve_config(ReductionStrategy::Serial));
  Simulation sdc(make_system(6), iron(), nve_config(ReductionStrategy::Sdc));
  serial.set_temperature(100.0, 7);
  sdc.set_temperature(100.0, 7);
  serial.run(20);
  sdc.run(20);

  const auto& xa = serial.system().atoms().position;
  const auto& xb = sdc.system().atoms().position;
  double worst = 0.0;
  for (std::size_t i = 0; i < xa.size(); ++i) {
    worst = std::max(worst, norm(xa[i] - xb[i]));
  }
  EXPECT_LT(worst, 1e-7);
}

TEST(Simulation, MomentumStaysZeroInNve) {
  Simulation sim(make_system(5), iron(),
                 nve_config(ReductionStrategy::Serial));
  sim.set_temperature(300.0, 11);
  sim.run(50);
  Vec3 p{};
  for (const auto& v : sim.system().atoms().velocity) p += v;
  EXPECT_NEAR(norm(p), 0.0, 1e-8);
}

TEST(Simulation, ThermostatRegulatesTemperature) {
  Simulation sim(make_system(5), iron(),
                 nve_config(ReductionStrategy::Serial));
  sim.set_temperature(600.0, 3);
  sim.set_thermostat(
      std::make_unique<BerendsenThermostat>(300.0, /*tau=*/0.05));
  sim.run(300);
  // Half the kinetic energy feeds the lattice (equipartition), so expect
  // the kinetic temperature near the 300 K target, not at 600 K.
  EXPECT_NEAR(sim.sample().temperature, 300.0, 60.0);
}

TEST(Simulation, RebuildsNeighborListsWhenAtomsDrift) {
  SimulationConfig cfg = nve_config(ReductionStrategy::Serial);
  cfg.skin = 0.2;  // tight skin forces rebuilds
  Simulation sim(make_system(5), iron(), cfg);
  sim.set_temperature(600.0, 5);
  const std::size_t initial = sim.rebuild_count();
  sim.run(150);
  EXPECT_GT(sim.rebuild_count(), initial);
}

TEST(Simulation, FixedIntervalRebuildPolicy) {
  SimulationConfig cfg = nve_config(ReductionStrategy::Serial);
  cfg.rebuild_interval = 10;
  Simulation sim(make_system(4), iron(), cfg);
  sim.set_temperature(50.0, 5);
  const std::size_t initial = sim.rebuild_count();
  sim.run(50);
  EXPECT_EQ(sim.rebuild_count() - initial, 5u);
}

TEST(Simulation, CallbackFiresOnSchedule) {
  Simulation sim(make_system(4), iron(),
                 nve_config(ReductionStrategy::Serial));
  sim.set_temperature(100.0, 2);
  int fired = 0;
  sim.run(50, [&](const Simulation&, long) { ++fired; }, 10);
  EXPECT_EQ(fired, 5);
}

TEST(Simulation, ReorderedAtomsGiveSamePhysics) {
  SimulationConfig plain = nve_config(ReductionStrategy::Serial);
  SimulationConfig reordered = plain;
  reordered.reorder_atoms = true;

  Simulation a(make_system(5), iron(), plain);
  Simulation b(make_system(5), iron(), reordered);
  a.set_temperature(0.0, 1);
  b.set_temperature(0.0, 1);
  a.compute_forces();
  b.compute_forces();
  EXPECT_NEAR(a.sample().potential_energy(), b.sample().potential_energy(),
              1e-8 * std::abs(a.sample().potential_energy()));
}

TEST(Simulation, DeformationStretchesBoxDuringRun) {
  Simulation sim(make_system(6), iron(),
                 nve_config(ReductionStrategy::Serial));
  sim.set_temperature(10.0, 9);
  const double lx0 = sim.system().box().length(0);
  sim.set_deformer(BoxDeformer::uniaxial(0, 1e-4), /*every=*/1);
  sim.run(20);
  EXPECT_NEAR(sim.system().box().length(0), lx0 * std::pow(1.0 + 1e-4, 20),
              1e-9 * lx0);
}

TEST(Simulation, TensionProducesTensileStress) {
  // Stretch a cold crystal; the axial virial should go negative (tension),
  // i.e. pressure drops below the unstrained value.
  Simulation sim(make_system(6), iron(),
                 nve_config(ReductionStrategy::Serial));
  sim.set_temperature(0.0, 1);
  sim.compute_forces();
  const double p0 = sim.sample().pressure;
  sim.set_deformer(BoxDeformer::uniaxial(0, 5e-4), 1);
  sim.run(40);
  EXPECT_LT(sim.sample().pressure, p0);
}

TEST(Simulation, SampleReportsStepAndEnergies) {
  Simulation sim(make_system(4), iron(),
                 nve_config(ReductionStrategy::Serial));
  sim.set_temperature(200.0, 4);
  sim.run(5);
  const ThermoSample s = sim.sample();
  EXPECT_EQ(s.step, 5);
  EXPECT_GT(s.kinetic_energy, 0.0);
  EXPECT_LT(s.potential_energy(), 0.0);
}

}  // namespace
}  // namespace sdcmd
