#include "geom/region.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sdcmd {
namespace {

TEST(BlockRegion, ContainsInclusiveBounds) {
  BlockRegion block({0, 0, 0}, {1, 2, 3});
  EXPECT_TRUE(block.contains({0, 0, 0}));
  EXPECT_TRUE(block.contains({1, 2, 3}));
  EXPECT_TRUE(block.contains({0.5, 1.0, 1.5}));
  EXPECT_FALSE(block.contains({1.001, 1.0, 1.0}));
  EXPECT_FALSE(block.contains({-0.001, 1.0, 1.0}));
}

TEST(BlockRegion, RejectsInvertedBounds) {
  EXPECT_THROW(BlockRegion({1, 0, 0}, {0, 1, 1}), PreconditionError);
}

TEST(SphereRegion, ContainsByDistance) {
  SphereRegion sphere({1, 1, 1}, 2.0);
  EXPECT_TRUE(sphere.contains({1, 1, 1}));
  EXPECT_TRUE(sphere.contains({3, 1, 1}));
  EXPECT_FALSE(sphere.contains({3.001, 1, 1}));
}

TEST(SphereRegion, ZeroRadiusOnlyCenter) {
  SphereRegion point({0, 0, 0}, 0.0);
  EXPECT_TRUE(point.contains({0, 0, 0}));
  EXPECT_FALSE(point.contains({1e-9, 0, 0}));
  EXPECT_THROW(SphereRegion({0, 0, 0}, -1.0), PreconditionError);
}

TEST(NotRegion, Complements) {
  auto inner = std::make_shared<SphereRegion>(Vec3{0, 0, 0}, 1.0);
  NotRegion outside(inner);
  EXPECT_FALSE(outside.contains({0, 0, 0}));
  EXPECT_TRUE(outside.contains({5, 0, 0}));
}

TEST(UnionRegion, AnyPartSuffices) {
  std::vector<std::shared_ptr<const Region>> parts{
      std::make_shared<SphereRegion>(Vec3{0, 0, 0}, 1.0),
      std::make_shared<SphereRegion>(Vec3{10, 0, 0}, 1.0)};
  UnionRegion u(parts);
  EXPECT_TRUE(u.contains({0.5, 0, 0}));
  EXPECT_TRUE(u.contains({10.5, 0, 0}));
  EXPECT_FALSE(u.contains({5, 0, 0}));
}

TEST(Select, ReturnsMatchingIndices) {
  const std::vector<Vec3> positions{
      {0, 0, 0}, {5, 0, 0}, {0.5, 0.5, 0.5}, {9, 9, 9}};
  SphereRegion sphere({0, 0, 0}, 1.0);
  EXPECT_EQ(select(sphere, positions), (std::vector<std::size_t>{0, 2}));
}

TEST(Select, EmptySelection) {
  SphereRegion sphere({100, 0, 0}, 0.5);
  EXPECT_TRUE(select(sphere, {{0, 0, 0}}).empty());
}

}  // namespace
}  // namespace sdcmd
