// Session-server stack: wire protocol round trips, session lifecycle and
// quarantine, admission control, fleet drain/resume, and the injected
// accept/slow-client faults with the client's reconnect-and-retry path.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"

namespace sdcmd::serve {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory (wiped on entry, left behind on failure).
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("sdcmd_serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Poll `pred` until it holds or ~`seconds` elapse.
template <typename Pred>
bool eventually(Pred&& pred, double seconds = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

class ServeTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    saved_level_ = log_level();
    set_log_level(LogLevel::Error);  // quarantine/retry warnings expected
  }
  void TearDown() override {
    set_log_level(saved_level_);
    FaultInjector::instance().disarm_all();
  }
  LogLevel saved_level_ = LogLevel::Warn;
};

// --------------------------------------------------------------------- wire

TEST_F(ServeTest, WireMessageRoundTripsEveryScalarType) {
  WireMessage m;
  m.set("op", "status");
  m.set("count", static_cast<std::int64_t>(-42));
  m.set("ratio", 1.5);
  m.set("flag", true);
  m.set("none", WireValue());
  m.set("text", std::string("quote \" slash \\ newline \n tab \t"));

  const WireMessage back = WireMessage::parse(m.serialize());
  EXPECT_EQ(back.get_string("op"), "status");
  EXPECT_EQ(back.get_int("count", 0), -42);
  EXPECT_EQ(back.get_double("ratio", 0.0), 1.5);
  EXPECT_TRUE(back.get_bool("flag", false));
  ASSERT_NE(back.find("none"), nullptr);
  EXPECT_TRUE(back.find("none")->is_null());
  EXPECT_EQ(back.get_string("text"), "quote \" slash \\ newline \n tab \t");
  // Member order is preserved: responses stay diff-stable.
  EXPECT_EQ(back.members().front().first, "op");
  EXPECT_EQ(back.serialize(), m.serialize());
}

TEST_F(ServeTest, WireParseRejectsNestedContainersAndGarbage) {
  EXPECT_THROW(WireMessage::parse("{\"a\": [1, 2]}"), ParseError);
  EXPECT_THROW(WireMessage::parse("{\"a\": {\"b\": 1}}"), ParseError);
  EXPECT_THROW(WireMessage::parse("not json at all"), ParseError);
  EXPECT_THROW(WireMessage::parse("{\"a\": 1"), ParseError);
  EXPECT_THROW(WireMessage::parse(""), ParseError);
}

TEST_F(ServeTest, WireParseRejectsMalformedAndOutOfRangeNumbers) {
  // A sign anywhere but the front (or after the exponent) is an error,
  // never a silent truncation to the leading digits.
  EXPECT_THROW(WireMessage::parse("{\"a\": 1-2}"), ParseError);
  EXPECT_THROW(WireMessage::parse("{\"a\": --5}"), ParseError);
  EXPECT_THROW(WireMessage::parse("{\"a\": -}"), ParseError);
  EXPECT_THROW(WireMessage::parse("{\"a\": 1e5e5}"), ParseError);
  EXPECT_THROW(WireMessage::parse("{\"a\": 1..2}"), ParseError);
  // Out-of-range integers are rejected, not clamped to INT64_MAX/MIN.
  EXPECT_THROW(WireMessage::parse("{\"a\": 99999999999999999999}"),
               ParseError);
  EXPECT_THROW(WireMessage::parse("{\"a\": -99999999999999999999}"),
               ParseError);
  EXPECT_THROW(WireMessage::parse("{\"a\": 1e999}"), ParseError);
  // The legal shapes still parse.
  const WireMessage ok = WireMessage::parse(
      "{\"i\": -42, \"d\": 2.5e-3, \"big\": 9223372036854775807}");
  EXPECT_EQ(ok.get_int("i", 0), -42);
  EXPECT_EQ(ok.get_double("d", 0.0), 2.5e-3);
  EXPECT_EQ(ok.get_int("big", 0), INT64_MAX);
  // as_int on an int64-overflowing double throws instead of UB.
  EXPECT_THROW(WireMessage::parse("{\"a\": 1e30}").find("a")->as_int(),
               ParseError);
}

TEST_F(ServeTest, WireAccessorsCoerceNumbersAndRequireKeys) {
  WireMessage m = WireMessage::parse("{\"i\": 7, \"d\": 2.0, \"s\": \"x\"}");
  EXPECT_EQ(m.get_int("d", 0), 2);          // Double -> Int
  EXPECT_EQ(m.get_double("i", 0.0), 7.0);   // Int -> Double
  EXPECT_EQ(m.get_string("missing", "fb"), "fb");
  EXPECT_THROW(m.require_string("missing"), ParseError);
  EXPECT_THROW(m.require_int("s"), ParseError);  // type mismatch

  const WireMessage err = make_error("overloaded", "cap reached");
  EXPECT_FALSE(err.get_bool("ok", true));
  EXPECT_EQ(err.get_string("code"), "overloaded");
  EXPECT_EQ(err.get_string("error"), "cap reached");
}

// --------------------------------------------------------------------- spec

TEST_F(ServeTest, SessionSpecRoundTripsThroughJson) {
  SessionSpec spec;
  spec.id = "alpha";
  spec.cells = 5;
  spec.temp = 450.0;
  spec.seed = 777;
  spec.dt_fs = 0.5;
  spec.governed = false;
  spec.strategy_code = 3;
  spec.threads = 2;
  spec.checkpoint_every = 25;
  spec.keep = 4;

  const SessionSpec back = SessionSpec::parse(spec.to_json());
  EXPECT_EQ(back.id, "alpha");
  EXPECT_EQ(back.cells, 5);
  EXPECT_EQ(back.temp, 450.0);
  EXPECT_EQ(back.seed, 777);
  EXPECT_EQ(back.dt_fs, 0.5);
  EXPECT_FALSE(back.governed);
  EXPECT_EQ(back.strategy_code, 3);
  EXPECT_EQ(back.threads, 2);
  EXPECT_EQ(back.checkpoint_every, 25);
  EXPECT_EQ(back.keep, 4);
  EXPECT_EQ(back.config_hash(), spec.config_hash());
}

TEST_F(ServeTest, ConfigHashExcludesSteerableDt) {
  SessionSpec a;
  a.id = "x";
  SessionSpec b = a;
  b.dt_fs = a.dt_fs / 2.0;  // rollback/steer may retune dt mid-run
  EXPECT_EQ(a.config_hash(), b.config_hash());
  b.cells = a.cells + 1;  // physics-determining: must change the hash
  EXPECT_NE(a.config_hash(), b.config_hash());
}

TEST_F(ServeTest, SessionSpecParseRejectsBadValues) {
  SessionSpec spec;
  spec.id = "x";
  const std::string good = spec.to_json();
  EXPECT_THROW(
      SessionSpec::parse("{\"schema\": \"other.v1\", \"id\": \"x\"}"),
      ParseError);
  EXPECT_NO_THROW(SessionSpec::parse(good));
  EXPECT_THROW(SessionSpec::parse(
                   "{\"schema\": \"sdcmd.session.v1\", \"id\": \"x\", "
                   "\"cells\": 1}"),
               ParseError);
  EXPECT_THROW(SessionSpec::parse(
                   "{\"schema\": \"sdcmd.session.v1\", \"id\": \"x\", "
                   "\"dt_fs\": 0.0}"),
               ParseError);
  EXPECT_THROW(SessionSpec::parse(
                   "{\"schema\": \"sdcmd.session.v1\", \"id\": \"x\", "
                   "\"checkpoint_every\": 0}"),
               ParseError);
}

// ------------------------------------------------------------------ session

TEST_F(ServeTest, SessionLifecycleStepsSuspendsAndResumesWithProof) {
  const std::string dir = scratch_dir("lifecycle");
  SessionSpec spec;
  spec.id = "life";
  spec.cells = 3;
  spec.checkpoint_every = 10;
  SessionPolicy policy;
  policy.quantum_steps = 10;
  std::unique_ptr<Session> session = Session::create(spec, dir, policy);

  SessionStatus status = session->status();
  EXPECT_EQ(status.state, SessionState::Paused);
  EXPECT_EQ(status.step, 0);
  EXPECT_FALSE(status.resumed);
  EXPECT_LT(status.continuity_rel, 0.0);  // fresh create: nothing proven

  EXPECT_EQ(session->enqueue_steps(25), 25);
  EXPECT_EQ(session->state(), SessionState::Running);
  QuantumResult result;
  for (int i = 0; i < 3; ++i) result = session->run_quantum();
  EXPECT_FALSE(result.more);  // budget exhausted parks the session
  status = session->status();
  EXPECT_EQ(status.state, SessionState::Paused);
  EXPECT_EQ(status.step, 25);
  EXPECT_EQ(status.steps_run, 25);
  EXPECT_EQ(status.quanta, 3);

  long step = 0;
  std::vector<double> xyz;
  ASSERT_TRUE(session->snapshot(step, xyz));
  EXPECT_EQ(step, 25);
  EXPECT_EQ(xyz.size(), 3u * 2u * 3u * 3u * 3u);  // 2 atoms/cell * cells^3

  session->suspend();
  EXPECT_EQ(session->state(), SessionState::Suspended);
  EXPECT_FALSE(session->snapshot(step, xyz));
  EXPECT_THROW(session->enqueue_steps(1), Error);
  EXPECT_EQ(session->status().strategy, "suspended");
  EXPECT_EQ(session->status().step, 25);  // survives without a Simulation

  session->resume();
  status = session->status();
  EXPECT_EQ(status.state, SessionState::Paused);
  EXPECT_EQ(status.step, 25);
  EXPECT_TRUE(status.resumed);
  EXPECT_GE(status.continuity_rel, 0.0);
  EXPECT_LE(status.continuity_rel, 1e-8);  // the energy-continuity proof
}

TEST_F(ServeTest, SessionOpenRebuildsFromDiskAfterSuspend) {
  const std::string dir = scratch_dir("reopen");
  SessionSpec spec;
  spec.id = "re";
  spec.cells = 3;
  SessionPolicy policy;
  {
    std::unique_ptr<Session> session = Session::create(spec, dir, policy);
    session->enqueue_steps(20);
    while (session->run_quantum().more) {
    }
    session->suspend();  // final checkpoint; process "dies" here
  }
  std::unique_ptr<Session> back = Session::open(dir, policy);
  const SessionStatus status = back->status();
  EXPECT_EQ(status.step, 20);
  EXPECT_TRUE(status.resumed);
  EXPECT_GE(status.continuity_rel, 0.0);
  EXPECT_LE(status.continuity_rel, 1e-8);
  EXPECT_EQ(back->id(), "re");
}

TEST_F(ServeTest, OomFaultQuarantinesAndResumeRecovers) {
  const std::string dir = scratch_dir("oom");
  SessionSpec spec;
  spec.id = "oom";
  spec.cells = 3;
  SessionPolicy policy;
  std::unique_ptr<Session> session = Session::create(spec, dir, policy);

  FaultSpec fault;
  fault.shots = 1;
  FaultInjector::instance().arm(faults::kServeSessionOom, fault);
  session->enqueue_steps(10);
  const QuantumResult result = session->run_quantum();
  EXPECT_TRUE(result.quarantined);
  EXPECT_EQ(result.steps_done, 0);
  EXPECT_EQ(session->state(), SessionState::Quarantined);
  EXPECT_EQ(session->status().quarantines, 1);
  EXPECT_THROW(session->enqueue_steps(1), Error);

  // Quarantine released the Simulation but checkpointed first: resume
  // restores a live session that can step again.
  session->resume();
  EXPECT_EQ(session->state(), SessionState::Paused);
  session->enqueue_steps(5);
  EXPECT_GT(session->run_quantum().steps_done, 0);
}

TEST_F(ServeTest, WatchdogQuarantinesAfterTripStreak) {
  const std::string dir = scratch_dir("watchdog");
  SessionSpec spec;
  spec.id = "wd";
  spec.cells = 3;
  SessionPolicy policy;
  policy.quantum_steps = 5;
  // Deadline far below any real per-step time: every quantum after the
  // EWMA seeds is a trip, and two trips quarantine.
  policy.watchdog_factor = 1e-6;
  policy.watchdog_min_seconds = 0.0;
  policy.quarantine_after_trips = 2;
  std::unique_ptr<Session> session = Session::create(spec, dir, policy);

  session->enqueue_steps(100);
  bool quarantined = false;
  for (int i = 0; i < 10 && !quarantined; ++i) {
    quarantined = session->run_quantum().quarantined;
  }
  EXPECT_TRUE(quarantined);
  EXPECT_EQ(session->state(), SessionState::Quarantined);
  const SessionStatus status = session->status();
  EXPECT_GE(status.watchdog_trips, 2);
  EXPECT_EQ(status.quarantines, 1);
}

// ------------------------------------------------------------------- server

TEST_F(ServeTest, ServerEndToEndWithAdmissionControl) {
  const std::string dir = scratch_dir("server");
  obs::MetricsRegistry registry;
  ServerConfig config;
  config.socket_path = dir + "/sv.sock";
  config.root = dir + "/sessions";
  config.max_sessions = 2;
  config.workers = 1;
  config.session.quantum_steps = 10;
  config.session.watchdog_min_seconds = 5.0;  // CI noise must not trip
  config.registry = &registry;
  SessionServer server(config);
  server.start();

  ClientConfig ccfg;
  ccfg.socket_path = config.socket_path;
  ServeClient client(ccfg);

  WireMessage r = client.request_op("ping");
  EXPECT_TRUE(r.get_bool("ok", false));
  EXPECT_EQ(r.get_int("sessions", -1), 0);
  EXPECT_EQ(r.get_int("max_sessions", -1), 2);

  WireMessage create;
  create.set("op", "create");
  create.set("id", "a");
  create.set("cells", 3);
  r = client.request(create);
  ASSERT_TRUE(r.get_bool("ok", false)) << r.serialize();
  EXPECT_EQ(r.get_int("natoms", 0), 54);  // 2 atoms/cell * 3^3 cells

  WireMessage anon;  // empty id: the server assigns one
  anon.set("op", "create");
  anon.set("cells", 3);
  r = client.request(anon);
  ASSERT_TRUE(r.get_bool("ok", false));
  EXPECT_EQ(r.get_string("id"), "s0");

  // Admission control: the cap is hard and the rejection explicit.
  r = client.request(anon);
  EXPECT_FALSE(r.get_bool("ok", true));
  EXPECT_EQ(r.get_string("code"), "overloaded");
  EXPECT_GE(registry.value(registry.counter("serve.rejected_overload")), 1.0);

  WireMessage step;
  step.set("op", "step");
  step.set("id", "a");
  step.set("steps", 30);
  r = client.request(step);
  ASSERT_TRUE(r.get_bool("ok", false));

  // The worker pool drains the budget; status shows the session parked.
  ASSERT_TRUE(eventually([&] {
    const WireMessage s = client.request_op("status", "a");
    return s.get_int("step", 0) >= 30 &&
           s.get_string("state") == "paused";
  })) << client.request_op("status", "a").serialize();

  std::vector<double> xyz;
  r = client.snapshot("a", xyz);
  ASSERT_TRUE(r.get_bool("ok", false)) << r.serialize();
  EXPECT_EQ(xyz.size(), 162u);  // 54 atoms * 3
  EXPECT_EQ(r.get_int("natoms", 0), 54);

  r = client.request_op("status", "ghost");
  EXPECT_EQ(r.get_string("code"), "not_found");
  r = client.request_op("frobnicate", "a");
  EXPECT_EQ(r.get_string("code"), "bad_request");

  // destroy frees a slot: the next create is admitted again.
  r = client.request_op("destroy", "s0");
  ASSERT_TRUE(r.get_bool("ok", false));
  r = client.request(anon);
  EXPECT_TRUE(r.get_bool("ok", false)) << r.serialize();

  r = client.request_op("metrics");
  ASSERT_TRUE(r.get_bool("ok", false));
  EXPECT_GE(r.get_double("serve.ops", 0.0), 5.0);

  EXPECT_TRUE(client.request_op("drain").get_bool("ok", false));
  EXPECT_EQ(server.wait(), SessionServer::Outcome::Drained);
}

TEST_F(ServeTest, MalformedLineGetsBadRequestNotDisconnect) {
  const std::string dir = scratch_dir("badline");
  ServerConfig config;
  config.socket_path = dir + "/sv.sock";
  config.root = dir + "/sessions";
  SessionServer server(config);
  server.start();

  const int fd = connect_unix(config.socket_path);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(write_all(fd, "this is not json\n", 5.0));
  LineReader reader(fd);
  std::string line;
  ASSERT_EQ(reader.next_line(line, 5.0), LineReader::Result::Line);
  const WireMessage r = WireMessage::parse(line);
  EXPECT_FALSE(r.get_bool("ok", true));
  EXPECT_EQ(r.get_string("code"), "bad_request");
  // The connection survives a protocol error: the next request answers.
  ASSERT_TRUE(write_all(fd, "{\"op\": \"ping\"}\n", 5.0));
  ASSERT_EQ(reader.next_line(line, 5.0), LineReader::Result::Line);
  EXPECT_TRUE(WireMessage::parse(line).get_bool("ok", false));
  close_fd(fd);

  SessionServer::request_drain();
  EXPECT_EQ(server.wait(), SessionServer::Outcome::Drained);
}

TEST_F(ServeTest, DrainedFleetResumesWholesaleInSecondServer) {
  const std::string dir = scratch_dir("fleet");
  ServerConfig config;
  config.socket_path = dir + "/sv.sock";
  config.root = dir + "/sessions";
  config.workers = 2;
  config.session.quantum_steps = 10;
  config.session.watchdog_min_seconds = 5.0;
  {
    SessionServer first(config);
    first.start();
    ClientConfig ccfg;
    ccfg.socket_path = config.socket_path;
    ServeClient client(ccfg);
    for (const char* id : {"f0", "f1"}) {
      WireMessage create;
      create.set("op", "create");
      create.set("id", id);
      create.set("cells", 3);
      create.set("checkpoint_every", 10);
      ASSERT_TRUE(client.request(create).get_bool("ok", false));
      WireMessage step;
      step.set("op", "step");
      step.set("id", id);
      step.set("steps", 20);
      ASSERT_TRUE(client.request(step).get_bool("ok", false));
    }
    ASSERT_TRUE(client.request_op("drain").get_bool("ok", false));
    EXPECT_EQ(first.wait(), SessionServer::Outcome::Drained);
  }

  SessionServer second(config);
  second.start();
  EXPECT_EQ(second.resumed_sessions(), 2);
  EXPECT_EQ(second.failed_resumes(), 0);
  ClientConfig ccfg;
  ccfg.socket_path = config.socket_path;
  ServeClient client(ccfg);
  for (const char* id : {"f0", "f1"}) {
    const WireMessage s = client.request_op("status", id);
    ASSERT_TRUE(s.get_bool("ok", false)) << s.serialize();
    EXPECT_TRUE(s.get_bool("resumed", false));
    const double rel = s.get_double("continuity_rel", -1.0);
    EXPECT_GE(rel, 0.0);
    EXPECT_LE(rel, 1e-8);
  }
  ASSERT_TRUE(client.request_op("drain").get_bool("ok", false));
  EXPECT_EQ(second.wait(), SessionServer::Outcome::Drained);
}

TEST_F(ServeTest, StalledClientDoesNotBlockNeighbors) {
  const std::string dir = scratch_dir("stall");
  ServerConfig config;
  config.socket_path = dir + "/sv.sock";
  config.root = dir + "/sessions";
  config.session.watchdog_min_seconds = 5.0;
  SessionServer server(config);
  server.start();

  ClientConfig ccfg;
  ccfg.socket_path = config.socket_path;
  ServeClient client(ccfg);
  WireMessage create;
  create.set("op", "create");
  create.set("id", "big");
  create.set("cells", 6);
  ASSERT_TRUE(client.request(create).get_bool("ok", false));

  // A connection that floods snapshot requests (~10 KB frame each) and
  // never reads: the responses overflow the kernel socket buffer, so the
  // server's outbox must park on POLLOUT instead of blocking the single
  // I/O thread in send() for the write deadline.
  const int stalled = connect_unix(config.socket_path);
  ASSERT_GE(stalled, 0);
  std::string flood;
  for (int i = 0; i < 200; ++i) {
    flood += "{\"op\": \"snapshot\", \"id\": \"big\"}\n";
  }
  ASSERT_TRUE(write_all(stalled, flood, 5.0));

  // A neighbor's op must answer promptly while the stalled connection
  // owes megabytes — far under io_timeout_s (5 s), which is how long the
  // old blocking write path would freeze the loop.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(client.request_op("ping").get_bool("ok", false));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 2.0);

  close_fd(stalled);
  SessionServer::request_drain();
  EXPECT_EQ(server.wait(), SessionServer::Outcome::Drained);
}

TEST_F(ServeTest, DrainOpIsPerInstanceNotProcessWide) {
  const std::string dir = scratch_dir("twoservers");
  ServerConfig ca;
  ca.socket_path = dir + "/a.sock";
  ca.root = dir + "/a_sessions";
  ServerConfig cb = ca;
  cb.socket_path = dir + "/b.sock";
  cb.root = dir + "/b_sessions";
  SessionServer sa(ca);
  SessionServer sb(cb);
  sa.start();
  sb.start();

  ClientConfig cca;
  cca.socket_path = ca.socket_path;
  ClientConfig ccb;
  ccb.socket_path = cb.socket_path;
  ServeClient client_a(cca);
  ServeClient client_b(ccb);
  ASSERT_TRUE(client_a.request_op("ping").get_bool("ok", false));
  ASSERT_TRUE(client_b.request_op("ping").get_bool("ok", false));

  // The drain op hits one instance; its sibling keeps serving and, in
  // particular, keeps admitting creates (no process-wide 'draining').
  ASSERT_TRUE(client_a.request_op("drain").get_bool("ok", false));
  EXPECT_EQ(sa.wait(), SessionServer::Outcome::Drained);
  WireMessage create;
  create.set("op", "create");
  create.set("id", "x");
  create.set("cells", 3);
  EXPECT_TRUE(client_b.request(create).get_bool("ok", false));

  ASSERT_TRUE(client_b.request_op("drain").get_bool("ok", false));
  EXPECT_EQ(sb.wait(), SessionServer::Outcome::Drained);
}

TEST_F(ServeTest, ClientRetriesThroughInjectedConnectionFaults) {
  const std::string dir = scratch_dir("faults");
  ServerConfig config;
  config.socket_path = dir + "/sv.sock";
  config.root = dir + "/sessions";
  SessionServer server(config);
  server.start();

  ClientConfig ccfg;
  ccfg.socket_path = config.socket_path;
  ServeClient client(ccfg);
  ASSERT_TRUE(client.request_op("ping").get_bool("ok", false));

  // serve.slow_client: the server drops the connection instead of writing
  // the response; the client's reconnect-and-resend must hide it.
  FaultSpec fault;
  fault.shots = 1;
  FaultInjector::instance().arm(faults::kServeSlowClient, fault);
  EXPECT_TRUE(client.request_op("ping").get_bool("ok", false));
  EXPECT_EQ(FaultInjector::instance().fire_count(faults::kServeSlowClient), 1);

  // serve.accept_fail: the next accepted connection is closed unserved;
  // a fresh client retries into the following accept.
  FaultInjector::instance().arm(faults::kServeAcceptFail, fault);
  ServeClient fresh(ccfg);
  EXPECT_TRUE(fresh.request_op("ping").get_bool("ok", false));
  EXPECT_EQ(FaultInjector::instance().fire_count(faults::kServeAcceptFail), 1);

  SessionServer::request_drain();
  EXPECT_EQ(server.wait(), SessionServer::Outcome::Drained);
}

}  // namespace
}  // namespace sdcmd::serve
