#include "core/lock_pool.hpp"

#include <gtest/gtest.h>

#include <omp.h>

#include <vector>

#include "common/error.hpp"

namespace sdcmd {
namespace {

TEST(LockPool, RejectsZeroStripes) {
  EXPECT_THROW(LockPool(0), PreconditionError);
}

TEST(LockPool, StripeCountIsReported) {
  LockPool pool(64);
  EXPECT_EQ(pool.stripes(), 64u);
}

TEST(LockPool, GuardsPreventLostUpdates) {
  // Hammer a small array from many threads; the striped locks must make
  // the increments exact. (Without them the plain += loses updates.)
  constexpr std::size_t kSlots = 8;
  constexpr int kItersPerThread = 20000;
  LockPool pool(4);  // fewer stripes than slots: stripes shared by design
  std::vector<long> counters(kSlots, 0);

#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
#pragma omp for
    for (int i = 0; i < kItersPerThread * 4; ++i) {
      const std::size_t slot = static_cast<std::size_t>(i + tid) % kSlots;
      LockPool::Guard guard(pool, slot);
      ++counters[slot % 4 + (slot / 4) * 4];  // same slot, obfuscated
    }
  }

  long total = 0;
  for (long c : counters) total += c;
  EXPECT_EQ(total, kItersPerThread * 4);
}

TEST(LockPool, IndicesBeyondStripeCountWrap) {
  LockPool pool(8);
  // acquire/release with huge indices must hit valid stripes.
  pool.acquire(1'000'000'007);
  pool.release(1'000'000'007);
  SUCCEED();
}

}  // namespace
}  // namespace sdcmd
