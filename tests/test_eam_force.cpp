// Cross-strategy correctness of the three-phase EAM force engine: every
// parallelization strategy must reproduce the serial kernel, obey Newton's
// third law, match finite-difference gradients of the total energy, and
// (for SDC) be bitwise deterministic across repeated runs.
#include "core/eam_force.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "geom/lattice.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/tabulated.hpp"

namespace sdcmd {
namespace {

constexpr double kSkin = 0.4;

struct Workload {
  Box box;
  std::vector<Vec3> positions;
  FinnisSinclair potential{FinnisSinclairParams::iron()};
  std::unique_ptr<NeighborList> half;
  std::unique_ptr<NeighborList> full;

  explicit Workload(int cells, double jitter = 0.05,
                    std::uint64_t seed = 7)
      : box(Box::cubic(cells * units::kLatticeFe)) {
    LatticeSpec spec;
    spec.type = LatticeType::Bcc;
    spec.a0 = units::kLatticeFe;
    spec.nx = spec.ny = spec.nz = cells;
    positions = build_lattice(spec);
    if (jitter > 0.0) {
      Xoshiro256 rng(seed);
      for (auto& r : positions) {
        r += Vec3{rng.normal(0.0, jitter), rng.normal(0.0, jitter),
                  rng.normal(0.0, jitter)};
        r = box.wrap(r);
      }
    }
    NeighborListConfig cfg;
    cfg.cutoff = potential.cutoff();
    cfg.skin = kSkin;
    half = std::make_unique<NeighborList>(box, cfg);
    half->build(positions);
    cfg.mode = NeighborMode::Full;
    full = std::make_unique<NeighborList>(box, cfg);
    full->build(positions);
  }

  struct Output {
    std::vector<double> rho, fp;
    std::vector<Vec3> force;
    EamForceResult result;
  };

  Output run(ReductionStrategy strategy, int sdc_dims = 2) {
    EamForceConfig cfg;
    cfg.strategy = strategy;
    cfg.sdc.dimensionality = sdc_dims;
    return run(cfg);
  }

  Output run(const EamForceConfig& cfg) {
    return run(cfg, potential);
  }

  Output run(const EamForceConfig& cfg, const EamPotential& pot) {
    EamForceComputer computer(pot, cfg);
    computer.attach_schedule(box, pot.cutoff() + kSkin);
    computer.on_neighbor_rebuild(positions);

    Output out;
    out.rho.resize(positions.size());
    out.fp.resize(positions.size());
    out.force.resize(positions.size());
    const NeighborList& list =
        required_mode(cfg.strategy) == NeighborMode::Full ? *full : *half;
    out.result = computer.compute(box, positions, list, out.rho, out.fp,
                                  out.force);
    return out;
  }
};

void expect_outputs_match(const Workload::Output& a,
                          const Workload::Output& b, double tol) {
  ASSERT_EQ(a.rho.size(), b.rho.size());
  for (std::size_t i = 0; i < a.rho.size(); ++i) {
    EXPECT_NEAR(a.rho[i], b.rho[i], tol * std::max(1.0, std::abs(a.rho[i])))
        << "rho mismatch at atom " << i;
    EXPECT_NEAR(norm(a.force[i] - b.force[i]), 0.0, tol * 10.0)
        << "force mismatch at atom " << i;
  }
  EXPECT_NEAR(a.result.pair_energy, b.result.pair_energy,
              tol * std::abs(a.result.pair_energy));
  EXPECT_NEAR(a.result.embedding_energy, b.result.embedding_energy,
              tol * std::abs(a.result.embedding_energy));
  EXPECT_NEAR(a.result.virial, b.result.virial,
              tol * std::max(1.0, std::abs(a.result.virial)));
}

class StrategyEquivalenceTest
    : public ::testing::TestWithParam<ReductionStrategy> {};

TEST_P(StrategyEquivalenceTest, MatchesSerialKernel) {
  Workload w(6);
  const auto serial = w.run(ReductionStrategy::Serial);
  const auto other = w.run(GetParam());
  expect_outputs_match(serial, other, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyEquivalenceTest,
    ::testing::Values(ReductionStrategy::Critical, ReductionStrategy::Atomic,
                      ReductionStrategy::LockStriped,
                      ReductionStrategy::ArrayPrivatization,
                      ReductionStrategy::RedundantComputation,
                      ReductionStrategy::Sdc),
    [](const auto& info) { return to_string(info.param); });

class SdcDimensionalityTest : public ::testing::TestWithParam<int> {};

TEST_P(SdcDimensionalityTest, AllDimensionalitiesMatchSerial) {
  Workload w(6);
  const auto serial = w.run(ReductionStrategy::Serial);
  const auto sdc = w.run(ReductionStrategy::Sdc, GetParam());
  expect_outputs_match(serial, sdc, 1e-10);
}

TEST_P(SdcDimensionalityTest, SdcIsDeterministic) {
  // A data race would make repeated runs disagree; SDC must be bitwise
  // stable because each memory location is touched by exactly one thread
  // per color sweep in a fixed order.
  Workload w(6);
  const auto a = w.run(ReductionStrategy::Sdc, GetParam());
  const auto b = w.run(ReductionStrategy::Sdc, GetParam());
  for (std::size_t i = 0; i < a.rho.size(); ++i) {
    EXPECT_EQ(a.rho[i], b.rho[i]);
    EXPECT_EQ(a.force[i].x, b.force[i].x);
    EXPECT_EQ(a.force[i].y, b.force[i].y);
    EXPECT_EQ(a.force[i].z, b.force[i].z);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SdcDimensionalityTest,
                         ::testing::Values(1, 2, 3));

// --- ISSUE 3: pair cache and devirtualized spline tables -------------------

class PairCacheEquivalenceTest
    : public ::testing::TestWithParam<ReductionStrategy> {};

TEST_P(PairCacheEquivalenceTest, CachedMatchesUncached) {
  // The cached force phase replays the density phase's geometry/spline
  // values instead of recomputing them; per strategy (and so per list
  // mode: RC exercises the full-list path where the cache is ignored)
  // the outputs must agree to 1e-12.
  Workload w(6);
  EamForceConfig cfg;
  cfg.strategy = GetParam();
  cfg.sdc.dimensionality = 2;
  cfg.use_pair_cache = true;
  const auto cached = w.run(cfg);
  cfg.use_pair_cache = false;
  const auto uncached = w.run(cfg);
  expect_outputs_match(cached, uncached, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PairCacheEquivalenceTest,
    ::testing::Values(ReductionStrategy::Serial, ReductionStrategy::Critical,
                      ReductionStrategy::Atomic,
                      ReductionStrategy::LockStriped,
                      ReductionStrategy::ArrayPrivatization,
                      ReductionStrategy::RedundantComputation,
                      ReductionStrategy::Sdc),
    [](const auto& info) { return to_string(info.param); });

TEST(EamForce, SplineTablesMatchVirtualDispatch) {
  // TabulatedEam exposes flattened spline tables; evaluating them inline
  // must reproduce the virtual-interface path for every strategy that can
  // see them.
  Workload w(6);
  const TabulatedEam tab =
      TabulatedEam::from_analytic(w.potential, 2000, 2000, 60.0);
  for (ReductionStrategy s :
       {ReductionStrategy::Serial, ReductionStrategy::Sdc,
        ReductionStrategy::RedundantComputation}) {
    EamForceConfig cfg;
    cfg.strategy = s;
    cfg.sdc.dimensionality = 2;
    cfg.use_spline_tables = true;
    const auto fast = w.run(cfg, tab);
    cfg.use_spline_tables = false;
    const auto virt = w.run(cfg, tab);
    expect_outputs_match(fast, virt, 1e-12);
  }
}

TEST(EamForce, PairCacheResizesAcrossNeighborRebuilds) {
  // The cache is sized to the neighbor list's pair count; after a rebuild
  // changes that count the next compute() must resize and stay correct.
  Workload w(6, 0.02, 21);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  cfg.sdc.dimensionality = 2;
  EamForceComputer computer(w.potential, cfg);
  computer.attach_schedule(w.box, w.potential.cutoff() + kSkin);
  computer.on_neighbor_rebuild(w.positions);

  const std::size_t n = w.positions.size();
  std::vector<double> rho(n), fp(n);
  std::vector<Vec3> force(n);
  computer.compute(w.box, w.positions, *w.half, rho, fp, force);
  const std::size_t pairs_before = w.half->pair_count();

  // Larger jitter: atoms cross the cutoff shell, so the rebuilt list has a
  // different pair count and the cache must follow.
  Xoshiro256 rng(5);
  for (auto& r : w.positions) {
    r = w.box.wrap(r + Vec3{rng.normal(0.0, 0.12), rng.normal(0.0, 0.12),
                            rng.normal(0.0, 0.12)});
  }
  w.half->build(w.positions);
  computer.on_neighbor_rebuild(w.positions);
  ASSERT_NE(w.half->pair_count(), pairs_before);
  computer.compute(w.box, w.positions, *w.half, rho, fp, force);

  // Reference: a fresh, uncached computer on the rebuilt configuration.
  cfg.use_pair_cache = false;
  const auto reference = w.run(cfg);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(rho[i], reference.rho[i],
                1e-12 * std::max(1.0, std::abs(reference.rho[i])));
    EXPECT_NEAR(norm(force[i] - reference.force[i]), 0.0, 1e-11);
  }
  // 40 B/pair high-water footprint (24 B dr + 8 B r + 8 B dphidr).
  const std::size_t max_pairs = std::max(pairs_before, w.half->pair_count());
  EXPECT_GE(computer.stats().pair_cache_bytes,
            max_pairs * (sizeof(Vec3) + 2 * sizeof(double)));
}

TEST(EamForce, NewtonsThirdLawTotalForceVanishes) {
  Workload w(6);
  for (ReductionStrategy s :
       {ReductionStrategy::Serial, ReductionStrategy::Sdc,
        ReductionStrategy::RedundantComputation}) {
    const auto out = w.run(s);
    Vec3 total{};
    for (const auto& f : out.force) total += f;
    EXPECT_NEAR(norm(total), 0.0, 1e-9) << to_string(s);
  }
}

TEST(EamForce, PerfectLatticeHasZeroForcesBySymmetry) {
  Workload w(6, /*jitter=*/0.0);
  const auto out = w.run(ReductionStrategy::Serial);
  for (const auto& f : out.force) {
    EXPECT_NEAR(norm(f), 0.0, 1e-10);
  }
}

TEST(EamForce, PerfectLatticeEnergyIsNegativeAndExtensive) {
  // Cohesion: the FS iron crystal must bind (negative energy per atom),
  // and doubling the system doubles the energy.
  Workload small(4, 0.0);
  Workload large(8, 0.0);
  const auto e_small = small.run(ReductionStrategy::Serial).result;
  const auto e_large = large.run(ReductionStrategy::Serial).result;
  EXPECT_LT(e_small.total_energy(), 0.0);
  const double per_atom_small =
      e_small.total_energy() / static_cast<double>(small.positions.size());
  const double per_atom_large =
      e_large.total_energy() / static_cast<double>(large.positions.size());
  EXPECT_NEAR(per_atom_small, per_atom_large,
              1e-9 * std::abs(per_atom_small));
}

TEST(EamForce, ForceIsMinusGradientOfEnergy) {
  Workload w(4, 0.08, 99);
  const auto base = w.run(ReductionStrategy::Serial);

  const double h = 1e-6;
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const auto atom = static_cast<std::size_t>(
        rng.below(w.positions.size()));
    const int dim = static_cast<int>(rng.below(3));

    const double original = w.positions[atom][dim];
    w.positions[atom][dim] = original + h;
    w.half->build(w.positions);
    const double e_plus = w.run(ReductionStrategy::Serial)
                              .result.total_energy();
    w.positions[atom][dim] = original - h;
    w.half->build(w.positions);
    const double e_minus = w.run(ReductionStrategy::Serial)
                               .result.total_energy();
    w.positions[atom][dim] = original;
    w.half->build(w.positions);

    const double fd_force = -(e_plus - e_minus) / (2.0 * h);
    EXPECT_NEAR(base.force[atom][dim], fd_force, 2e-4)
        << "atom " << atom << " dim " << dim;
  }
}

TEST(EamForce, RhoMatchesDirectSum) {
  Workload w(4, 0.05);
  const auto out = w.run(ReductionStrategy::Serial);
  // Independent O(N^2) density computation.
  for (std::size_t i = 0; i < std::min<std::size_t>(w.positions.size(), 20);
       ++i) {
    double rho = 0.0;
    for (std::size_t j = 0; j < w.positions.size(); ++j) {
      if (i == j) continue;
      const double r =
          std::sqrt(w.box.distance2(w.positions[i], w.positions[j]));
      if (r >= w.potential.cutoff()) continue;
      double phi, dphidr;
      w.potential.density(r, phi, dphidr);
      rho += phi;
    }
    EXPECT_NEAR(out.rho[i], rho, 1e-10 * std::max(1.0, rho));
  }
}

TEST(EamForce, StatsCountersTrackWork) {
  Workload w(6);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  EamForceComputer computer(w.potential, cfg);
  computer.attach_schedule(w.box, w.potential.cutoff() + kSkin);
  computer.on_neighbor_rebuild(w.positions);

  std::vector<double> rho(w.positions.size()), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  computer.compute(w.box, w.positions, *w.half, rho, fp, force);
  computer.compute(w.box, w.positions, *w.half, rho, fp, force);

  const auto& stats = computer.stats();
  EXPECT_EQ(stats.density_pair_visits, 2 * w.half->pair_count());
  EXPECT_EQ(stats.scatter_updates, 4 * w.half->pair_count());
  EXPECT_EQ(stats.color_sweeps,
            4u * static_cast<std::size_t>(computer.schedule()->color_count()));
  // Pair cache on by default: every CSR slot stored then read, each step.
  EXPECT_EQ(stats.cache_store_slots, 2 * w.half->pair_count());
  EXPECT_EQ(stats.cache_read_slots, 2 * w.half->pair_count());
  EXPECT_GE(stats.pair_cache_bytes,
            w.half->pair_count() * (sizeof(Vec3) + 2 * sizeof(double)));

  computer.reset_instrumentation();
  EXPECT_EQ(computer.stats().density_pair_visits, 0u);
  EXPECT_EQ(computer.stats().cache_store_slots, 0u);
}

TEST(EamForce, RcVisitsTwiceThePairs) {
  Workload w(6);
  EXPECT_EQ(w.full->pair_count(), 2 * w.half->pair_count());
}

TEST(EamForce, SapReportsPrivateMemoryProportionalToThreads) {
  Workload w(6);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::ArrayPrivatization;
  EamForceComputer computer(w.potential, cfg);
  std::vector<double> rho(w.positions.size()), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  computer.compute(w.box, w.positions, *w.half, rho, fp, force);
  // rho + force replicas per thread: n * (8 + 24) bytes each.
  const std::size_t per_thread =
      w.positions.size() * (sizeof(double) + sizeof(Vec3));
  EXPECT_GE(computer.stats().private_array_bytes, per_thread);
}

TEST(EamForce, WrongListModeThrows) {
  Workload w(6);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::RedundantComputation;
  EamForceComputer computer(w.potential, cfg);
  std::vector<double> rho(w.positions.size()), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  EXPECT_THROW(
      computer.compute(w.box, w.positions, *w.half, rho, fp, force),
      PreconditionError);
}

TEST(EamForce, SdcWithoutScheduleThrows) {
  Workload w(6);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  EamForceComputer computer(w.potential, cfg);
  std::vector<double> rho(w.positions.size()), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  EXPECT_THROW(
      computer.compute(w.box, w.positions, *w.half, rho, fp, force),
      PreconditionError);
}

TEST(EamForce, MismatchedOutputSizesThrow) {
  Workload w(4);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Serial;
  EamForceComputer computer(w.potential, cfg);
  std::vector<double> rho(w.positions.size() - 1), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  EXPECT_THROW(
      computer.compute(w.box, w.positions, *w.half, rho, fp, force),
      PreconditionError);
}

TEST(EamForce, DynamicScheduleMatchesStatic) {
  Workload w(6);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  cfg.dynamic_schedule = true;
  EamForceComputer computer(w.potential, cfg);
  computer.attach_schedule(w.box, w.potential.cutoff() + kSkin);
  computer.on_neighbor_rebuild(w.positions);
  std::vector<double> rho(w.positions.size()), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  computer.compute(w.box, w.positions, *w.half, rho, fp, force);

  const auto serial = w.run(ReductionStrategy::Serial);
  for (std::size_t i = 0; i < rho.size(); ++i) {
    EXPECT_NEAR(rho[i], serial.rho[i], 1e-10 * std::max(1.0, rho[i]));
  }
}

TEST(EamForce, ForcesInvariantUnderRigidTranslation) {
  // Translating every atom by the same vector (with PBC wrap) must leave
  // energies and forces untouched.
  Workload a(5, 0.06, 13);
  Workload b(5, 0.06, 13);
  const Vec3 shift{1.2345, -0.6789, 2.222};
  for (auto& r : b.positions) r = b.box.wrap(r + shift);
  b.half->build(b.positions);

  const auto out_a = a.run(ReductionStrategy::Serial);
  const auto out_b = b.run(ReductionStrategy::Serial);
  EXPECT_NEAR(out_a.result.total_energy(), out_b.result.total_energy(),
              1e-9 * std::abs(out_a.result.total_energy()));
  for (std::size_t i = 0; i < out_a.force.size(); ++i) {
    EXPECT_NEAR(norm(out_a.force[i] - out_b.force[i]), 0.0, 1e-9);
  }
}

TEST(EamForce, ForcesCovariantUnderLatticeRotation) {
  // Rotating the configuration by 90 degrees about z (a symmetry of the
  // cubic box) must rotate the forces with it.
  Workload a(5, 0.06, 17);
  Workload b(5, 0.0, 0);
  const double edge = a.box.length(0);
  b.positions.resize(a.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    const Vec3& r = a.positions[i];
    b.positions[i] = b.box.wrap({edge - r.y, r.x, r.z});
  }
  b.half->build(b.positions);

  const auto out_a = a.run(ReductionStrategy::Serial);
  const auto out_b = b.run(ReductionStrategy::Serial);
  EXPECT_NEAR(out_a.result.total_energy(), out_b.result.total_energy(),
              1e-9 * std::abs(out_a.result.total_energy()));
  for (std::size_t i = 0; i < out_a.force.size(); ++i) {
    const Vec3 rotated{-out_a.force[i].y, out_a.force[i].x,
                       out_a.force[i].z};
    EXPECT_NEAR(norm(rotated - out_b.force[i]), 0.0, 1e-8) << "atom " << i;
  }
}

TEST(EamForce, PhaseTimersCoverAllThreePhases) {
  Workload w(4);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Serial;
  EamForceComputer computer(w.potential, cfg);
  std::vector<double> rho(w.positions.size()), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  computer.compute(w.box, w.positions, *w.half, rho, fp, force);
  const auto entries = computer.timers().entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "density");
  EXPECT_EQ(entries[1].name, "embed");
  EXPECT_EQ(entries[2].name, "force");
  for (const auto& e : entries) {
    EXPECT_EQ(e.laps, 1u);
  }
}

}  // namespace
}  // namespace sdcmd
