// StrategyGovernor: ladder selection, mid-run demotion/promotion with
// hysteresis, shadow validation, checkpoint-restart state, and the
// governor.box_shrink fault drill.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "core/strategy_governor.hpp"
#include "md/simulation.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "potential/finnis_sinclair.hpp"
#include "run/run_state.hpp"

namespace sdcmd {
namespace {

const FinnisSinclair& iron() {
  static FinnisSinclair fe{FinnisSinclairParams::iron()};
  return fe;
}

System make_system(int cells) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = cells;
  return System::from_lattice(spec, units::kMassFe);
}

SimulationConfig sdc_config() {
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Sdc;
  return cfg;
}

/// 6^3 bcc cells: edge 17.2 A, comfortably feasible for 2-D SDC with the
/// iron range (~4 A; feasibility bound 4 * range ~ 15.9 A), and a 0.9x
/// shrink drops below the bound.
constexpr int kCells = 6;
constexpr double kShrink = 0.9;

class GovernorTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    saved_level_ = log_level();
    set_log_level(LogLevel::Error);  // demotion warnings are expected noise
  }
  void TearDown() override {
    set_log_level(saved_level_);
    FaultInjector::instance().disarm_all();
  }

 private:
  LogLevel saved_level_ = LogLevel::Info;
};

// ---------------------------------------------------------------------------
// Pure decision logic.

TEST_F(GovernorTest, SetupSelectsPreferredWhenFeasible) {
  StrategyGovernor gov(GovernorConfig{});
  const Box box = Box::cubic(40.0);
  const GovernorDecision d = gov.setup(box, 4.0, 4, 1000);
  EXPECT_EQ(d.strategy, ReductionStrategy::Sdc);
  EXPECT_EQ(d.event, GovernorEvent::None);
  EXPECT_EQ(gov.active(), ReductionStrategy::Sdc);
}

TEST_F(GovernorTest, SetupFallsDownLadderWhenSdcInfeasible) {
  StrategyGovernor gov(GovernorConfig{});
  // < 4 * range: no 2-way SDC split, but floor(10/4) = 2 blocks per axis
  // still gives the cell-task shape 8 blocks.
  const Box box = Box::cubic(10.0);
  const GovernorDecision d = gov.setup(box, 4.0, 4, 1000);
  EXPECT_EQ(d.strategy, ReductionStrategy::CellTask);
  EXPECT_EQ(gov.active(), ReductionStrategy::CellTask);
}

TEST_F(GovernorTest, DisabledCellTaskRungFallsThroughToSap) {
  // A driver whose backend has no cell-task kernels clears the rung; the
  // same infeasible-SDC box then lands on ArrayPrivatization.
  GovernorConfig cfg;
  cfg.enable_celltask = false;
  StrategyGovernor gov(cfg);
  const GovernorDecision d = gov.setup(Box::cubic(10.0), 4.0, 4, 1000);
  EXPECT_EQ(d.strategy, ReductionStrategy::ArrayPrivatization);
  // Preferring the disabled rung is a config error.
  GovernorConfig bad;
  bad.preferred = ReductionStrategy::CellTask;
  bad.enable_celltask = false;
  EXPECT_THROW(StrategyGovernor{bad}, PreconditionError);
}

TEST_F(GovernorTest, CellTaskRungInfeasibleOnlyBelowOneBlockPair) {
  // CellTask needs >= 2 blocks total, not SDC's even split per axis: a
  // 10 x 4 x 4 slab splits 2 x 1 x 1 and stays on the rung...
  StrategyGovernor gov(GovernorConfig{});
  const Box slab({0.0, 0.0, 0.0}, {10.0, 4.0, 4.0});
  EXPECT_TRUE(gov.rung_feasible(ReductionStrategy::CellTask, slab, 4.0, 4,
                                1000));
  // ...while a box under the range in every dimension yields one block and
  // falls through.
  const Box tiny = Box::cubic(3.0);
  EXPECT_FALSE(gov.rung_feasible(ReductionStrategy::CellTask, tiny, 4.0, 4,
                                 1000));
  EXPECT_EQ(gov.setup(tiny, 4.0, 4, 1000).strategy,
            ReductionStrategy::ArrayPrivatization);
}

TEST_F(GovernorTest, SapBudgetSkipsToLockStriped) {
  GovernorConfig cfg;
  // 4 threads x 1000 atoms x (8 + 24) bytes = 128 kB replicas; budget 1 kB.
  // CellTask is disabled so the blown budget is what decides the rung.
  cfg.max_private_bytes = 1024;
  cfg.enable_celltask = false;
  StrategyGovernor gov(cfg);
  const GovernorDecision d = gov.setup(Box::cubic(10.0), 4.0, 4, 1000);
  EXPECT_EQ(d.strategy, ReductionStrategy::LockStriped);
}

TEST_F(GovernorTest, BoxChangeDemotesAndStepPromotesWithHysteresis) {
  GovernorConfig cfg;
  cfg.promote_streak = 3;
  cfg.backoff_factor = 2;
  StrategyGovernor gov(cfg);
  const Box big = Box::cubic(40.0);
  const Box small = Box::cubic(10.0);
  gov.setup(big, 4.0, 4, 1000);

  const GovernorDecision demote = gov.on_box_change(small, 4.0, 4, 1000);
  EXPECT_EQ(demote.event, GovernorEvent::Demotion);
  EXPECT_EQ(demote.strategy, ReductionStrategy::CellTask);
  EXPECT_EQ(gov.demotions(), 1);
  // One demotion doubled the backoff: 3 * 2 = 6 feasible steps required.
  EXPECT_EQ(gov.required_streak(), 6);

  // Feasible again, but promotion waits for the full streak.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(gov.on_step(big, 4.0, 4, 1000).event, GovernorEvent::None);
  }
  const GovernorDecision promote = gov.on_step(big, 4.0, 4, 1000);
  EXPECT_EQ(promote.event, GovernorEvent::Promotion);
  EXPECT_EQ(promote.strategy, ReductionStrategy::Sdc);
  EXPECT_EQ(gov.promotions(), 1);
}

TEST_F(GovernorTest, InfeasibleStepBreaksThePromotionStreak) {
  GovernorConfig cfg;
  cfg.promote_streak = 3;
  StrategyGovernor gov(cfg);
  const Box big = Box::cubic(40.0);
  const Box small = Box::cubic(10.0);
  gov.setup(big, 4.0, 4, 1000);
  gov.on_box_change(small, 4.0, 4, 1000);

  // streak 2 of 6, then the box dips infeasible again: streak resets.
  gov.on_step(big, 4.0, 4, 1000);
  gov.on_step(big, 4.0, 4, 1000);
  gov.on_step(small, 4.0, 4, 1000);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(gov.on_step(big, 4.0, 4, 1000).event, GovernorEvent::None);
  }
  EXPECT_EQ(gov.on_step(big, 4.0, 4, 1000).event, GovernorEvent::Promotion);
}

TEST_F(GovernorTest, BackoffEscalatesAndCaps) {
  GovernorConfig cfg;
  cfg.promote_streak = 2;
  cfg.backoff_factor = 2;
  cfg.max_backoff = 4;
  StrategyGovernor gov(cfg);
  const Box big = Box::cubic(40.0);
  const Box small = Box::cubic(10.0);
  const auto promote = [&] {
    GovernorDecision d;
    do {
      d = gov.on_step(big, 4.0, 4, 1000);
    } while (d.event != GovernorEvent::Promotion);
  };
  gov.setup(big, 4.0, 4, 1000);

  // Each demote/promote oscillation escalates the backoff until the cap.
  gov.on_box_change(small, 4.0, 4, 1000);
  EXPECT_EQ(gov.required_streak(), 4);  // backoff 2
  promote();
  gov.on_box_change(small, 4.0, 4, 1000);
  EXPECT_EQ(gov.required_streak(), 8);  // backoff 4 = cap
  promote();
  gov.on_box_change(small, 4.0, 4, 1000);
  EXPECT_EQ(gov.required_streak(), 8);  // would be 16 without the cap
  EXPECT_EQ(gov.demotions(), 3);
  EXPECT_EQ(gov.promotions(), 2);
}

TEST_F(GovernorTest, ShadowMismatchDemotesOneRung) {
  StrategyGovernor gov(GovernorConfig{});
  gov.setup(Box::cubic(40.0), 4.0, 4, 1000);
  ASSERT_EQ(gov.active(), ReductionStrategy::Sdc);

  const GovernorDecision d = gov.on_shadow_mismatch("test mismatch");
  EXPECT_EQ(d.event, GovernorEvent::Demotion);
  EXPECT_EQ(d.strategy, ReductionStrategy::CellTask);
  EXPECT_EQ(gov.race_suspects(), 1);

  // Again and again: walks the whole ladder (CellTask -> SAP -> Locks ->
  // Atomic -> Serial), then sticks at Serial.
  gov.on_shadow_mismatch("again");
  gov.on_shadow_mismatch("again");
  gov.on_shadow_mismatch("again");
  EXPECT_EQ(gov.on_shadow_mismatch("again").strategy,
            ReductionStrategy::Serial);
  EXPECT_EQ(gov.on_shadow_mismatch("again").event, GovernorEvent::None);
  EXPECT_EQ(gov.active(), ReductionStrategy::Serial);
}

TEST_F(GovernorTest, RestoredStateKeepsDemotedRungAcrossSetup) {
  GovernorConfig cfg;
  StrategyGovernor first(cfg);
  const Box big = Box::cubic(40.0);
  first.setup(big, 4.0, 4, 1000);
  first.on_box_change(Box::cubic(10.0), 4.0, 4, 1000);
  ASSERT_EQ(first.active(), ReductionStrategy::CellTask);

  StrategyGovernor second(cfg);
  second.restore_state(first.state());
  // The box recovered, but the restored governor must NOT jump straight
  // back to SDC: promotion stays hysteretic across restarts.
  const GovernorDecision d = second.setup(big, 4.0, 4, 1000);
  EXPECT_EQ(d.strategy, ReductionStrategy::CellTask);
  EXPECT_EQ(d.event, GovernorEvent::None);
  EXPECT_EQ(second.demotions(), 1);
  EXPECT_EQ(second.required_streak(), first.required_streak());
}

TEST_F(GovernorTest, RestoredRungInfeasibleForRestoredBoxDemotes) {
  GovernorConfig cfg;
  StrategyGovernor first(cfg);
  first.setup(Box::cubic(40.0), 4.0, 4, 1000);
  ASSERT_EQ(first.active(), ReductionStrategy::Sdc);

  StrategyGovernor second(cfg);
  second.restore_state(first.state());
  const GovernorDecision d = second.setup(Box::cubic(10.0), 4.0, 4, 1000);
  EXPECT_EQ(d.event, GovernorEvent::Demotion);
  EXPECT_EQ(d.strategy, ReductionStrategy::CellTask);
}

TEST_F(GovernorTest, ConfigValidation) {
  GovernorConfig bad;
  bad.preferred = ReductionStrategy::RedundantComputation;  // not on ladder
  EXPECT_THROW(StrategyGovernor{bad}, PreconditionError);
  GovernorConfig zero;
  zero.promote_streak = 0;
  EXPECT_THROW(StrategyGovernor{zero}, PreconditionError);
}

TEST_F(GovernorTest, StrategyCodesAreStable) {
  EXPECT_EQ(StrategyGovernor::strategy_code(ReductionStrategy::Serial), 0);
  EXPECT_EQ(StrategyGovernor::strategy_code(ReductionStrategy::Critical), 1);
  EXPECT_EQ(StrategyGovernor::strategy_code(ReductionStrategy::Atomic), 2);
  EXPECT_EQ(StrategyGovernor::strategy_code(ReductionStrategy::LockStriped),
            3);
  EXPECT_EQ(
      StrategyGovernor::strategy_code(ReductionStrategy::ArrayPrivatization),
      4);
  EXPECT_EQ(
      StrategyGovernor::strategy_code(ReductionStrategy::RedundantComputation),
      5);
  EXPECT_EQ(StrategyGovernor::strategy_code(ReductionStrategy::Sdc), 6);
  EXPECT_EQ(StrategyGovernor::strategy_code(ReductionStrategy::CellTask), 7);
}

TEST_F(GovernorTest, UnknownStrategyCodeIsRejectedNotMisdecoded) {
  // A sidecar written by a NEWER ladder can carry a code this build has
  // never heard of; the decode must fail loudly (or softly via the
  // try_ variant), never alias onto a known rung.
  for (int code = 0; code <= 7; ++code) {
    const auto s = StrategyGovernor::try_strategy_from_code(code);
    ASSERT_TRUE(s.has_value()) << "code " << code;
    EXPECT_EQ(StrategyGovernor::strategy_code(*s), code);
  }
  EXPECT_FALSE(StrategyGovernor::try_strategy_from_code(8).has_value());
  EXPECT_FALSE(StrategyGovernor::try_strategy_from_code(99).has_value());
  EXPECT_FALSE(StrategyGovernor::try_strategy_from_code(-1).has_value());
  EXPECT_THROW(StrategyGovernor::strategy_from_code(99), PreconditionError);
}

// ---------------------------------------------------------------------------
// Simulation integration.

TEST_F(GovernorTest, BoxShrinkFaultTriggersExactlyOneDemotion) {
  Simulation sim(make_system(kCells), iron(), sdc_config());
  obs::MetricsRegistry registry;
  obs::TraceWriter trace;
  InstrumentationConfig inst;
  inst.registry = &registry;
  inst.trace = &trace;
  sim.set_instrumentation(inst);
  sim.set_governor(GovernorConfig{});
  ASSERT_EQ(sim.governor()->active(), ReductionStrategy::Sdc);

  FaultSpec fault;
  fault.countdown = 4;  // fires inside step 5
  fault.magnitude = kShrink;
  FaultInjector::instance().arm(faults::kBoxShrink, fault);

  sim.run(20);

  EXPECT_EQ(sim.current_step(), 20);
  EXPECT_EQ(FaultInjector::instance().fire_count(faults::kBoxShrink), 1);
  EXPECT_EQ(sim.governor()->demotions(), 1);
  EXPECT_EQ(sim.governor()->active(), ReductionStrategy::CellTask);
  // Metrics + trace carry the event.
  EXPECT_EQ(registry.value(registry.counter("governor.demotions")), 1.0);
  EXPECT_EQ(registry.value(registry.gauge("governor.active_strategy")),
            StrategyGovernor::strategy_code(ReductionStrategy::CellTask));
  // The demoted shape spawned block tasks and reported its queue shape.
  EXPECT_GT(registry.value(registry.counter("task.spawned")), 0.0);
  EXPECT_GE(registry.value(registry.gauge("task.max_queue_depth")), 1.0);
  EXPECT_NE(trace.to_json().find("governor.demote"), std::string::npos);
}

TEST_F(GovernorTest, DemotedForcesMatchSerialReference) {
  Simulation sim(make_system(kCells), iron(), sdc_config());
  sim.set_temperature(100.0, 42);
  sim.set_governor(GovernorConfig{});

  FaultSpec fault;
  fault.countdown = 4;
  fault.magnitude = kShrink;
  FaultInjector::instance().arm(faults::kBoxShrink, fault);
  sim.run(10);
  ASSERT_EQ(sim.governor()->active(), ReductionStrategy::CellTask);

  sim.compute_forces();
  const Atoms& atoms = sim.system().atoms();
  const std::size_t n = atoms.size();
  std::vector<double> rho(n), fp(n);
  std::vector<Vec3> force(n);
  sim.force_computer().compute_serial_reference(
      sim.system().box(), atoms.position, sim.neighbor_list(), rho, fp,
      force);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(atoms.rho[i], rho[i], 1e-12);
    EXPECT_NEAR(atoms.force[i].x, force[i].x, 1e-12);
    EXPECT_NEAR(atoms.force[i].y, force[i].y, 1e-12);
    EXPECT_NEAR(atoms.force[i].z, force[i].z, 1e-12);
  }
}

TEST_F(GovernorTest, NptShrinkCompletesAndEnergyStaysFinite) {
  // The acceptance scenario shape: a run whose box drops below the SDC
  // bound mid-flight completes without InfeasibleError.
  Simulation sim(make_system(kCells), iron(), sdc_config());
  sim.set_temperature(50.0, 7);
  sim.set_governor(GovernorConfig{});
  // Aggressive compression: ~0.7% per step crosses the feasibility bound
  // within ~12 steps.
  sim.set_deformer(BoxDeformer({-0.007, -0.007, -0.007}), 1);

  EXPECT_NO_THROW(sim.run(30));
  EXPECT_EQ(sim.current_step(), 30);
  EXPECT_GE(sim.governor()->demotions(), 1);
  EXPECT_NE(sim.governor()->active(), ReductionStrategy::Sdc);
  const ThermoSample s = sim.sample();
  EXPECT_TRUE(std::isfinite(s.kinetic_energy));
  EXPECT_TRUE(std::isfinite(s.pair_energy + s.embedding_energy));
}

TEST_F(GovernorTest, RecoveredBoxRepromotesAfterStreak) {
  Simulation sim(make_system(kCells), iron(), sdc_config());
  GovernorConfig cfg;
  cfg.promote_streak = 3;  // demoted once -> 6 feasible steps to promote
  sim.set_governor(cfg);

  // The shrink fires at the end of step 1 (before the deformer has grown
  // the box much); regrowing 1% per step restores feasibility within a
  // few steps and the 6-step streak promotes well inside the run.
  FaultSpec fault;
  fault.countdown = 0;
  fault.magnitude = kShrink;
  FaultInjector::instance().arm(faults::kBoxShrink, fault);
  sim.set_deformer(BoxDeformer({0.01, 0.01, 0.01}), 1);

  sim.run(30);

  EXPECT_GE(sim.governor()->demotions(), 1);
  EXPECT_GE(sim.governor()->promotions(), 1);
  EXPECT_EQ(sim.governor()->active(), ReductionStrategy::Sdc);
}

TEST_F(GovernorTest, GovernorStateSurvivesCheckpointRestart) {
  Simulation sim(make_system(kCells), iron(), sdc_config());
  sim.set_governor(GovernorConfig{});
  FaultSpec fault;
  fault.countdown = 2;
  fault.magnitude = kShrink;
  FaultInjector::instance().arm(faults::kBoxShrink, fault);
  sim.run(10);
  FaultInjector::instance().disarm_all();
  ASSERT_EQ(sim.governor()->active(), ReductionStrategy::CellTask);

  // "Restart": a new Simulation from the saved System + governor state.
  // The restart config carries the checkpointed (demoted) strategy — the
  // shrunk box would make an SDC constructor throw before the governor
  // could take over.
  SimulationConfig restart_cfg = sdc_config();
  restart_cfg.force.strategy = ReductionStrategy::CellTask;
  Simulation restarted(sim.system(), iron(), restart_cfg);
  restarted.set_governor(GovernorConfig{}, sim.governor()->state());
  EXPECT_EQ(restarted.governor()->active(), ReductionStrategy::CellTask);
  EXPECT_EQ(restarted.governor()->demotions(), 1);
  EXPECT_EQ(restarted.governor()->required_streak(),
            sim.governor()->required_streak());
  EXPECT_NO_THROW(restarted.run(5));
}

TEST_F(GovernorTest, RunStateRoundTripRestoresDemotedRungAndBackoff) {
  // Demote several rungs in one event: CellTask is disabled and the SAP
  // replication budget is blown, so the infeasible-SDC demotion skips both
  // and lands on LockStriped — exactly the mid-ladder state a checkpoint
  // must preserve.
  GovernorConfig budget;
  budget.max_private_bytes = 1;
  budget.enable_celltask = false;
  Simulation sim(make_system(kCells), iron(), sdc_config());
  sim.set_governor(budget);
  FaultSpec fault;
  fault.countdown = 2;
  fault.magnitude = kShrink;
  FaultInjector::instance().arm(faults::kBoxShrink, fault);
  sim.run(10);
  FaultInjector::instance().disarm_all();
  ASSERT_EQ(sim.governor()->active(), ReductionStrategy::LockStriped);

  // Persist through the run_state.v1 sidecar, the way the run supervisor
  // does (run/run_dir.hpp), instead of handing the state across in memory.
  run::RunState state;
  state.step = sim.current_step();
  state.dt = sim.config().dt;
  state.has_governor = true;
  state.governor = sim.governor()->state();
  const run::RunState back = run::parse_run_state(run::to_json(state));
  ASSERT_TRUE(back.has_governor);

  SimulationConfig restart_cfg = sdc_config();
  restart_cfg.force.strategy = back.governor.active;
  Simulation restarted(sim.system(), iron(), restart_cfg);
  restarted.set_governor(budget, back.governor);
  restarted.set_current_step(back.step);
  EXPECT_EQ(restarted.current_step(), sim.current_step());
  EXPECT_EQ(restarted.governor()->active(), ReductionStrategy::LockStriped);
  EXPECT_EQ(restarted.governor()->demotions(),
            sim.governor()->demotions());
  EXPECT_EQ(restarted.governor()->required_streak(),
            sim.governor()->required_streak());
  EXPECT_NO_THROW(restarted.run(5));
}

TEST_F(GovernorTest, ShadowValidationPassesOnHealthyRun) {
  Simulation sim(make_system(kCells), iron(), sdc_config());
  sim.set_temperature(100.0, 3);
  obs::MetricsRegistry registry;
  InstrumentationConfig inst;
  inst.registry = &registry;
  sim.set_instrumentation(inst);
  GovernorConfig cfg;
  cfg.shadow_check_every = 5;
  sim.set_governor(cfg);

  sim.run(20);

  EXPECT_EQ(registry.value(registry.counter("governor.shadow_checks")), 4.0);
  EXPECT_EQ(registry.value(registry.counter("guard.strategy_race_suspect")),
            0.0);
  EXPECT_EQ(sim.governor()->demotions(), 0);
  EXPECT_EQ(sim.governor()->active(), ReductionStrategy::Sdc);
}

TEST_F(GovernorTest, GovernorWorksNextToHealthMonitor) {
  Simulation sim(make_system(kCells), iron(), sdc_config());
  sim.set_temperature(100.0, 11);
  GuardrailConfig guard;
  guard.health.cadence = 1;
  guard.health.policy = HealthPolicy::Rollback;
  sim.set_guardrails(guard);
  sim.set_governor(GovernorConfig{});

  FaultSpec fault;
  fault.countdown = 6;
  fault.magnitude = kShrink;
  FaultInjector::instance().arm(faults::kBoxShrink, fault);

  EXPECT_NO_THROW(sim.run(20));
  EXPECT_EQ(sim.current_step(), 20);
  EXPECT_GE(sim.governor()->demotions(), 1);
}

TEST_F(GovernorTest, SkinBackoffBoundsRebuildStorms) {
  SimulationConfig cfg = sdc_config();
  cfg.force.strategy = ReductionStrategy::Serial;
  cfg.skin = 0.01;  // absurdly thin: hot atoms cross skin/2 every step
  Simulation sim(make_system(4), iron(), cfg);
  sim.set_temperature(1500.0, 9);
  obs::MetricsRegistry registry;
  InstrumentationConfig inst;
  inst.registry = &registry;
  sim.set_instrumentation(inst);

  sim.run(40);

  EXPECT_GE(sim.skin_backoff_count(), 1);
  EXPECT_LE(sim.skin_backoff_count(), 3);
  EXPECT_GT(sim.effective_skin(), cfg.skin);
  EXPECT_LE(sim.effective_skin(), cfg.skin * 1.5 * 1.5 * 1.5 + 1e-12);
  EXPECT_EQ(registry.value(registry.counter("neighbor.skin_backoffs")),
            static_cast<double>(sim.skin_backoff_count()));
}

TEST_F(GovernorTest, GovernorEventsAppearInStepMetricsJsonl) {
  const std::string path = testing::TempDir() + "/governor_steps.jsonl";
  {
    Simulation sim(make_system(kCells), iron(), sdc_config());
    obs::MetricsRegistry registry;
    obs::StepMetricsWriter writer(path);
    InstrumentationConfig inst;
    inst.registry = &registry;
    inst.step_writer = &writer;
    sim.set_instrumentation(inst);
    sim.set_governor(GovernorConfig{});

    FaultSpec fault;
    fault.countdown = 3;
    fault.magnitude = kShrink;
    FaultInjector::instance().arm(faults::kBoxShrink, fault);
    sim.run(10);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("governor.active_strategy"), std::string::npos);
  EXPECT_NE(content.find("governor.demotions"), std::string::npos);
}

}  // namespace
}  // namespace sdcmd
