#include "domain/partition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/random.hpp"
#include "geom/lattice.hpp"

namespace sdcmd {
namespace {

constexpr double kRange = 2.0;

struct Fixture {
  Box box = Box::cubic(24.0);
  SpatialDecomposition decomposition =
      SpatialDecomposition::finest(box, 3, kRange);
  Coloring coloring{decomposition};
  Partition partition{decomposition, coloring};
};

std::vector<Vec3> random_points(const Box& box, std::size_t n,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vec3> out(n);
  for (auto& r : out) {
    r = {rng.uniform(box.lo().x, box.hi().x),
         rng.uniform(box.lo().y, box.hi().y),
         rng.uniform(box.lo().z, box.hi().z)};
  }
  return out;
}

TEST(Partition, EveryAtomAppearsExactlyOnce) {
  Fixture f;
  const auto points = random_points(f.box, 777, 13);
  f.partition.build(points);
  EXPECT_EQ(f.partition.atom_count(), points.size());

  std::set<std::uint32_t> seen;
  for (std::size_t slot = 0; slot < f.partition.subdomain_count(); ++slot) {
    for (std::uint32_t i : f.partition.atoms_in_slot(slot)) {
      EXPECT_TRUE(seen.insert(i).second) << "atom " << i << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), points.size());
}

TEST(Partition, AtomsLandInTheirGeometricSubdomain) {
  Fixture f;
  const auto points = random_points(f.box, 777, 13);
  f.partition.build(points);
  for (std::size_t slot = 0; slot < f.partition.subdomain_count(); ++slot) {
    const std::size_t sub = f.partition.subdomain_of_slot(slot);
    for (std::uint32_t i : f.partition.atoms_in_slot(slot)) {
      EXPECT_EQ(f.decomposition.subdomain_of(points[i]), sub);
    }
  }
}

TEST(Partition, ColorRangesAreContiguousAndComplete) {
  Fixture f;
  const auto points = random_points(f.box, 500, 3);
  f.partition.build(points);
  std::size_t slots = 0;
  for (int c = 0; c < f.partition.color_count(); ++c) {
    EXPECT_EQ(f.partition.color_begin(c), slots);
    EXPECT_GE(f.partition.color_end(c), f.partition.color_begin(c));
    slots = f.partition.color_end(c);
  }
  EXPECT_EQ(slots, f.partition.subdomain_count());
}

TEST(Partition, SlotsGroupedByColorHaveThatColor) {
  Fixture f;
  for (int c = 0; c < f.partition.color_count(); ++c) {
    for (std::size_t slot = f.partition.color_begin(c);
         slot < f.partition.color_end(c); ++slot) {
      EXPECT_EQ(f.coloring.color_of(f.partition.subdomain_of_slot(slot)), c);
    }
  }
}

TEST(Partition, PstartIsMonotoneCsr) {
  Fixture f;
  const auto points = random_points(f.box, 500, 3);
  f.partition.build(points);
  const auto& pstart = f.partition.pstart();
  ASSERT_EQ(pstart.size(), f.partition.subdomain_count() + 1);
  for (std::size_t s = 0; s + 1 < pstart.size(); ++s) {
    EXPECT_LE(pstart[s], pstart[s + 1]);
  }
  EXPECT_EQ(pstart.back(), points.size());
}

TEST(Partition, UniformLatticeBalancesColors) {
  // The paper: "overload balance can be achieved by the subdomains with
  // same color have roughly equal volume" under uniform density.
  // a0 chosen so the 4 A subdomain edge holds exactly two lattice cells:
  // commensurate tiling -> perfectly equal per-subdomain atom counts.
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = 2.0;
  spec.nx = spec.ny = spec.nz = 12;  // 24 A box

  Box box = spec.box();
  const auto d = SpatialDecomposition::finest(box, 3, kRange);
  const Coloring coloring(d);
  Partition partition(d, coloring);
  partition.build(build_lattice(spec));

  const auto per_color = partition.atoms_per_color();
  for (std::size_t c = 1; c < per_color.size(); ++c) {
    EXPECT_EQ(per_color[c], per_color[0]);
  }
  EXPECT_LT(partition.imbalance(), 1e-9);
}

TEST(Partition, RandomGasHasModerateImbalance) {
  Fixture f;
  const auto points = random_points(f.box, 20000, 77);
  f.partition.build(points);
  // ~93 atoms per subdomain: the worst of 216 Poisson counts deviates a
  // few sigma (~10 atoms) from the mean, far below 50%.
  EXPECT_LT(f.partition.imbalance(), 0.5);
  EXPECT_GT(f.partition.imbalance(), 0.0);
}

TEST(Partition, RebuildReflectsMovedAtoms) {
  Fixture f;
  std::vector<Vec3> points{{1.0, 1.0, 1.0}, {13.0, 13.0, 13.0}};
  f.partition.build(points);
  const auto sub_before = f.decomposition.subdomain_of(points[0]);

  points[0] = {23.0, 23.0, 23.0};
  f.partition.build(points);
  bool found = false;
  for (std::size_t slot = 0; slot < f.partition.subdomain_count(); ++slot) {
    for (std::uint32_t i : f.partition.atoms_in_slot(slot)) {
      if (i == 0) {
        EXPECT_NE(f.partition.subdomain_of_slot(slot), sub_before);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sdcmd
