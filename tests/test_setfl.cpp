#include "potential/setfl.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "potential/finnis_sinclair.hpp"

namespace sdcmd {
namespace {

EamTables make_tables() {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  auto tab = TabulatedEam::from_analytic(fe, 500, 400, 60.0);
  EamTables t = tab.tables();
  t.label = "Fe";
  return t;
}

TEST(Setfl, RoundTripPreservesGridsAndMetadata) {
  const EamTables original = make_tables();
  std::stringstream stream;
  write_setfl(stream, original, "round trip test");
  const EamTables parsed = read_setfl(stream);

  EXPECT_EQ(parsed.label, "Fe");
  EXPECT_DOUBLE_EQ(parsed.dr, original.dr);
  EXPECT_DOUBLE_EQ(parsed.drho, original.drho);
  EXPECT_DOUBLE_EQ(parsed.cutoff, original.cutoff);
  EXPECT_EQ(parsed.atomic_number, original.atomic_number);
  EXPECT_DOUBLE_EQ(parsed.mass, original.mass);
  EXPECT_EQ(parsed.structure, original.structure);
  ASSERT_EQ(parsed.embed.size(), original.embed.size());
  ASSERT_EQ(parsed.density.size(), original.density.size());
  ASSERT_EQ(parsed.pair.size(), original.pair.size());
}

TEST(Setfl, RoundTripPreservesValues) {
  const EamTables original = make_tables();
  std::stringstream stream;
  write_setfl(stream, original);
  const EamTables parsed = read_setfl(stream);

  for (std::size_t i = 0; i < original.embed.size(); ++i) {
    EXPECT_NEAR(parsed.embed[i], original.embed[i], 1e-14);
  }
  for (std::size_t i = 0; i < original.density.size(); ++i) {
    EXPECT_NEAR(parsed.density[i], original.density[i], 1e-14);
  }
  // Pair values: the file stores r*V, so i=0 is reconstructed by
  // extrapolation; exact for i >= 1.
  for (std::size_t i = 1; i < original.pair.size(); ++i) {
    EXPECT_NEAR(parsed.pair[i], original.pair[i],
                1e-12 * std::max(1.0, std::abs(original.pair[i])))
        << "i=" << i;
  }
}

TEST(Setfl, RoundTrippedPotentialEvaluatesTheSame) {
  const EamTables original = make_tables();
  std::stringstream stream;
  write_setfl(stream, original);
  TabulatedEam a{original};
  TabulatedEam b{read_setfl(stream)};
  for (double r = 2.0; r < a.cutoff(); r += 0.09) {
    double va, da, vb, db;
    a.pair(r, va, da);
    b.pair(r, vb, db);
    EXPECT_NEAR(va, vb, 1e-10);
  }
}

TEST(Setfl, FileRoundTrip) {
  const std::string path = testing::TempDir() + "sdcmd_test.setfl";
  const EamTables original = make_tables();
  write_setfl_file(path, original);
  const EamTables parsed = read_setfl_file(path);
  EXPECT_EQ(parsed.embed.size(), original.embed.size());
  std::remove(path.c_str());
}

TEST(Setfl, MissingFileThrows) {
  EXPECT_THROW(read_setfl_file("/nonexistent/file.setfl"), ParseError);
}

TEST(Setfl, RejectsMultiElementFiles) {
  std::stringstream s;
  s << "c1\nc2\nc3\n2 Fe Cr\n10 0.1 10 0.1 3.0\n";
  EXPECT_THROW(read_setfl(s), ParseError);
}

TEST(Setfl, RejectsTruncatedHeader) {
  std::stringstream s;
  s << "only one comment line\n";
  EXPECT_THROW(read_setfl(s), ParseError);
}

TEST(Setfl, RejectsTruncatedTables) {
  std::stringstream s;
  s << "c1\nc2\nc3\n1 Fe\n10 0.1 10 0.1 3.0\n26 55.8 2.87 bcc\n1.0 2.0\n";
  EXPECT_THROW(read_setfl(s), ParseError);
}

TEST(Setfl, TruncatedTableReportsLineAndEntry) {
  std::stringstream s;
  s << "c1\nc2\nc3\n1 Fe\n10 0.1 10 0.1 3.0\n26 55.8 2.87 bcc\n1.0 2.0\n";
  try {
    read_setfl(s);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("F(rho) entry 3 of 10"), std::string::npos) << what;
    EXPECT_NE(what.find("near line"), std::string::npos) << what;
  }
}

TEST(Setfl, BadHeaderReportsLine) {
  std::stringstream s;
  s << "c1\nc2\nc3\n1 Fe\n10 0.1 not-a-number 0.1 3.0\n";
  try {
    read_setfl(s);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nr"), std::string::npos) << what;
    EXPECT_NE(what.find("near line 5"), std::string::npos) << what;
  }
}

TEST(Setfl, RejectsBadGridSizes) {
  std::stringstream s;
  s << "c1\nc2\nc3\n1 Fe\n1 0.1 10 0.1 3.0\n";
  EXPECT_THROW(read_setfl(s), ParseError);

  std::stringstream s2;
  s2 << "c1\nc2\nc3\n1 Fe\n10 -0.1 10 0.1 3.0\n";
  EXPECT_THROW(read_setfl(s2), ParseError);
}

}  // namespace
}  // namespace sdcmd
