#include "benchsupport/cases.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "benchsupport/sweep.hpp"
#include "potential/finnis_sinclair.hpp"

namespace sdcmd::bench {
namespace {

TEST(BenchCases, PaperScaleReproducesPublishedAtomCounts) {
  const auto cases = paper_cases(Scale::Paper);
  ASSERT_EQ(cases.size(), 4u);
  EXPECT_EQ(cases[0].atom_count(), 54000u);
  EXPECT_EQ(cases[1].atom_count(), 265302u);
  EXPECT_EQ(cases[2].atom_count(), 1062882u);
  EXPECT_EQ(cases[3].atom_count(), 3456000u);
}

TEST(BenchCases, AllScalesAreMonotoneInSize) {
  for (Scale scale :
       {Scale::Tiny, Scale::Laptop, Scale::Desktop, Scale::Paper}) {
    const auto cases = paper_cases(scale);
    ASSERT_EQ(cases.size(), 4u);
    for (std::size_t i = 1; i < cases.size(); ++i) {
      EXPECT_GT(cases[i].atom_count(), cases[i - 1].atom_count())
          << to_string(scale);
    }
  }
}

TEST(BenchCases, ScaleParseRoundTrip) {
  for (Scale scale :
       {Scale::Tiny, Scale::Laptop, Scale::Desktop, Scale::Paper}) {
    EXPECT_EQ(parse_scale(to_string(scale)), scale);
  }
  EXPECT_EQ(parse_scale("unknown"), Scale::Laptop);
}

TEST(BenchCases, ThreadSweepDefaultsToPaperValues) {
  unsetenv("SDCMD_BENCH_THREADS");
  EXPECT_EQ(thread_sweep_from_env(), (std::vector<int>{2, 3, 4, 8, 12, 16}));
}

TEST(BenchCases, ThreadSweepHonorsEnvironment) {
  setenv("SDCMD_BENCH_THREADS", "1,2", 1);
  EXPECT_EQ(thread_sweep_from_env(), (std::vector<int>{1, 2}));
  unsetenv("SDCMD_BENCH_THREADS");
}

TEST(BenchCases, StepsHonorEnvironment) {
  setenv("SDCMD_BENCH_STEPS", "7", 1);
  EXPECT_EQ(steps_from_env(), 7);
  unsetenv("SDCMD_BENCH_STEPS");
  EXPECT_EQ(steps_from_env(), 3);
}

TEST(CaseRunner, TimesAllStrategiesOnTinyCase) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const auto cases = paper_cases(Scale::Tiny);
  // The largest tiny case: big enough that 2-D SDC has >= 2 subdomains per
  // color, so two threads are feasible for every strategy.
  CaseRunner runner(cases[3], fe);

  for (ReductionStrategy s : kAllStrategies) {
    EamForceConfig cfg;
    cfg.strategy = s;
    cfg.sdc.dimensionality = 2;
    const auto timing = runner.time_strategy(cfg, 2, 1);
    ASSERT_TRUE(timing.has_value()) << to_string(s);
    EXPECT_GT(timing->density_force_seconds, 0.0) << to_string(s);
    EXPECT_GE(timing->total_seconds, timing->density_force_seconds)
        << to_string(s);
    EXPECT_GT(timing->pair_visits, 0u) << to_string(s);
  }
}

TEST(CaseRunner, InfeasibleSdcReturnsNullopt) {
  // Tiny small case: 6 cells = 17.2 A; a 1-D split yields 2 subdomains per
  // color = 1 subdomain... per color 1; asking for 16 threads exceeds the
  // per-color supply, the paper's Table 1 blank.
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const auto cases = paper_cases(Scale::Tiny);
  CaseRunner runner(cases[0], fe);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  cfg.sdc.dimensionality = 1;
  const auto timing = runner.time_strategy(cfg, 16, 1);
  EXPECT_FALSE(timing.has_value());
}

TEST(CaseRunner, SerialTimeIsCached) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const auto cases = paper_cases(Scale::Tiny);
  CaseRunner runner(cases[0], fe);
  const double a = runner.serial_seconds_per_step(1);
  const double b = runner.serial_seconds_per_step(1);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

TEST(FormatSpeedup, TwoDecimalsOrDash) {
  EXPECT_EQ(format_speedup(1.714), "1.71");
  EXPECT_EQ(format_speedup(12.0), "12.00");
  EXPECT_EQ(format_speedup(std::nullopt), "-");
}

}  // namespace
}  // namespace sdcmd::bench
