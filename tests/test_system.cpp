#include "md/system.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace sdcmd {
namespace {

LatticeSpec small_bcc() {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 3;
  return spec;
}

TEST(Atoms, ConstructFromPositions) {
  Atoms atoms(std::vector<Vec3>{{0, 0, 0}, {1, 1, 1}});
  EXPECT_EQ(atoms.size(), 2u);
  EXPECT_EQ(atoms.velocity.size(), 2u);
  EXPECT_EQ(atoms.force.size(), 2u);
  EXPECT_EQ(atoms.rho.size(), 2u);
  EXPECT_EQ(atoms.id[0], 0u);
  EXPECT_EQ(atoms.id[1], 1u);
}

TEST(Atoms, ReorderPermutesAllArraysConsistently) {
  Atoms atoms(std::vector<Vec3>{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}});
  atoms.velocity[2] = {9, 9, 9};
  atoms.rho[2] = 7.0;
  const std::vector<std::uint32_t> perm{2, 0, 1};
  atoms.reorder(perm);
  EXPECT_EQ(atoms.position[0].x, 2.0);
  EXPECT_EQ(atoms.velocity[0].x, 9.0);
  EXPECT_EQ(atoms.rho[0], 7.0);
  EXPECT_EQ(atoms.id[0], 2u);  // identity travels with the atom
}

TEST(Atoms, ReorderRejectsWrongSize) {
  Atoms atoms(std::vector<Vec3>{{0, 0, 0}, {1, 0, 0}});
  const std::vector<std::uint32_t> perm{0};
  EXPECT_THROW(atoms.reorder(perm), PreconditionError);
}

TEST(System, FromLatticeBuildsAtomsAndBox) {
  const System system = System::from_lattice(small_bcc(), units::kMassFe);
  EXPECT_EQ(system.size(), 54u);
  EXPECT_DOUBLE_EQ(system.mass(), units::kMassFe);
  EXPECT_NEAR(system.box().length(0), 3 * units::kLatticeFe, 1e-12);
}

TEST(System, NumberDensityMatchesBcc) {
  const System system = System::from_lattice(small_bcc(), units::kMassFe);
  // bcc: 2 atoms per a0^3
  const double a0 = units::kLatticeFe;
  EXPECT_NEAR(system.number_density(), 2.0 / (a0 * a0 * a0), 1e-12);
}

TEST(System, RejectsNonPositiveMass) {
  EXPECT_THROW(System(Box::cubic(5.0), Atoms(1), 0.0), PreconditionError);
}

TEST(System, WrapPositionsUpdatesImages) {
  System system(Box::cubic(10.0), Atoms(std::vector<Vec3>{{12.0, -3.0, 5.0}}),
                1.0);
  system.wrap_positions();
  EXPECT_NEAR(system.atoms().position[0].x, 2.0, 1e-12);
  EXPECT_NEAR(system.atoms().position[0].y, 7.0, 1e-12);
  EXPECT_EQ(system.atoms().image[0][0], 1);
  EXPECT_EQ(system.atoms().image[0][1], -1);
  EXPECT_EQ(system.atoms().image[0][2], 0);
}

}  // namespace
}  // namespace sdcmd
