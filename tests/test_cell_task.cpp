// CellTask execution shape: block-grid schedule invariants, work-stealing
// accounting, force equivalence against the serial reference (including an
// inhomogeneous carved-void system), and governor-style hot-swaps in and
// out of the shape.
#include "core/cell_task_schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "geom/defects.hpp"
#include "geom/lattice.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/tabulated.hpp"

namespace sdcmd {
namespace {

constexpr double kSkin = 0.4;

struct Workload {
  Box box;
  std::vector<Vec3> positions;
  FinnisSinclair potential{FinnisSinclairParams::iron()};
  std::unique_ptr<NeighborList> half;

  explicit Workload(int cells, double jitter = 0.05, std::uint64_t seed = 7)
      : box(Box::cubic(cells * units::kLatticeFe)) {
    LatticeSpec spec;
    spec.type = LatticeType::Bcc;
    spec.a0 = units::kLatticeFe;
    spec.nx = spec.ny = spec.nz = cells;
    positions = build_lattice(spec);
    if (jitter > 0.0) {
      Xoshiro256 rng(seed);
      for (auto& r : positions) {
        r += Vec3{rng.normal(0.0, jitter), rng.normal(0.0, jitter),
                  rng.normal(0.0, jitter)};
        r = box.wrap(r);
      }
    }
    rebuild_list();
  }

  void rebuild_list() {
    NeighborListConfig cfg;
    cfg.cutoff = potential.cutoff();
    cfg.skin = kSkin;
    half = std::make_unique<NeighborList>(box, cfg);
    half->build(positions);
  }

  double range() const { return potential.cutoff() + kSkin; }

  struct Output {
    std::vector<double> rho, fp;
    std::vector<Vec3> force;
    EamForceResult result;
  };

  Output run(ReductionStrategy strategy) {
    EamForceConfig cfg;
    cfg.strategy = strategy;
    cfg.sdc.dimensionality = 2;
    EamForceComputer computer(potential, cfg);
    computer.attach_schedule(box, range());
    computer.on_neighbor_rebuild(positions);
    return run_with(computer);
  }

  Output run_with(EamForceComputer& computer) {
    Output out;
    out.rho.resize(positions.size());
    out.fp.resize(positions.size());
    out.force.resize(positions.size());
    out.result = computer.compute(box, positions, *half, out.rho, out.fp,
                                  out.force);
    return out;
  }
};

void expect_matches_serial(const Workload::Output& serial,
                           const Workload::Output& task, double tol) {
  ASSERT_EQ(serial.rho.size(), task.rho.size());
  for (std::size_t i = 0; i < serial.rho.size(); ++i) {
    EXPECT_NEAR(serial.rho[i], task.rho[i], tol) << "rho, atom " << i;
    EXPECT_NEAR(norm(serial.force[i] - task.force[i]), 0.0, tol)
        << "force, atom " << i;
  }
  EXPECT_NEAR(serial.result.pair_energy, task.result.pair_energy,
              tol * std::max(1.0, std::abs(serial.result.pair_energy)));
  EXPECT_NEAR(serial.result.embedding_energy, task.result.embedding_energy,
              tol * std::max(1.0, std::abs(serial.result.embedding_energy)));
  EXPECT_NEAR(serial.result.virial, task.result.virial,
              tol * std::max(1.0, std::abs(serial.result.virial)));
}

// ---------------------------------------------------------------------------
// Schedule invariants.

TEST(CellTaskSchedule, BlockGridPartitionsEveryAtomExactlyOnce) {
  Workload w(6);
  CellTaskSchedule sched(w.box, w.range());
  sched.rebuild(w.positions);
  ASSERT_TRUE(sched.built());
  EXPECT_EQ(sched.atom_count(), w.positions.size());

  std::vector<int> seen(w.positions.size(), 0);
  for (std::size_t b = 0; b < sched.block_count(); ++b) {
    for (std::uint32_t atom : sched.atoms_in_block(b)) {
      ASSERT_LT(atom, w.positions.size());
      ++seen[atom];
      // CSR membership and the reverse map agree.
      EXPECT_EQ(sched.block_of(atom), b);
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
}

TEST(CellTaskSchedule, TaskOrderIsLargestFirst) {
  Workload w(6, 0.3, 11);
  CellTaskSchedule sched(w.box, w.range());
  sched.rebuild(w.positions);
  const auto& order = sched.task_order();
  ASSERT_EQ(order.size(), sched.block_count());
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_GE(sched.atoms_in_block(order[k - 1]).size(),
              sched.atoms_in_block(order[k]).size());
  }
}

TEST(CellTaskSchedule, FeasibleMatchesConstructor) {
  // Feasible wherever >= 2 blocks fit; the probe and the constructor must
  // agree on both sides of the boundary.
  const Box slab({0.0, 0.0, 0.0}, {10.0, 4.0, 4.0});  // 2 x 1 x 1 blocks
  EXPECT_TRUE(CellTaskSchedule::feasible(slab, 4.0));
  EXPECT_NO_THROW(CellTaskSchedule(slab, 4.0));

  const Box tiny = Box::cubic(3.0);  // a single block
  EXPECT_FALSE(CellTaskSchedule::feasible(tiny, 4.0));
  EXPECT_THROW(CellTaskSchedule(tiny, 4.0), InfeasibleError);
}

TEST(CellTaskSchedule, DescribeNamesTheGrid) {
  Workload w(6);
  CellTaskSchedule sched(w.box, w.range());
  EXPECT_NE(sched.describe().find("cell-task"), std::string::npos);
  EXPECT_NE(sched.describe().find("blocks"), std::string::npos);
}

TEST(CellTaskRuntime, QueueDepthIsCeilOfBlocksOverThreads) {
  CellTaskRuntime rt;
  rt.reset(4, 27);
  EXPECT_EQ(rt.team(), 4);
  EXPECT_EQ(rt.max_queue_depth(), 7u);  // ceil(27 / 4)
  rt.reset(8, 8);
  EXPECT_EQ(rt.max_queue_depth(), 1u);
}

// ---------------------------------------------------------------------------
// Kernel correctness.

TEST(CellTaskKernels, ForcesMatchSerialReference) {
  Workload w(6);
  const auto serial = w.run(ReductionStrategy::Serial);
  const auto task = w.run(ReductionStrategy::CellTask);
  expect_matches_serial(serial, task, 1e-12);
}

TEST(CellTaskKernels, ForcesMatchSerialOnCarvedVoidSystem) {
  // The shape's reason to exist: inhomogeneous systems. Carve a spherical
  // void so the block populations are wildly uneven, then demand the same
  // 1e-12 agreement.
  Workload w(6, 0.02, 3);
  const Vec3 center = 0.5 * (w.box.lo() + w.box.hi());
  const std::size_t removed =
      carve_sphere(w.positions, w.box, center, 0.3 * w.box.length(0));
  ASSERT_GT(removed, 0u);
  w.rebuild_list();

  const auto serial = w.run(ReductionStrategy::Serial);
  const auto task = w.run(ReductionStrategy::CellTask);
  expect_matches_serial(serial, task, 1e-12);
}

TEST(CellTaskKernels, RepeatedComputesStayConsistent) {
  // Work stealing makes the task->thread assignment non-deterministic;
  // the physics must not care. Two computes on the same computer and a
  // fresh computer must agree to 1e-12.
  Workload w(6);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::CellTask;
  EamForceComputer computer(w.potential, cfg);
  computer.attach_schedule(w.box, w.range());
  computer.on_neighbor_rebuild(w.positions);
  const auto first = w.run_with(computer);
  const auto second = w.run_with(computer);
  expect_matches_serial(first, second, 1e-12);
}

TEST(CellTaskKernels, ComputeWithoutScheduleThrows) {
  Workload w(4);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::CellTask;
  EamForceComputer computer(w.potential, cfg);
  std::vector<double> rho(w.positions.size()), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  EXPECT_THROW(
      computer.compute(w.box, w.positions, *w.half, rho, fp, force),
      PreconditionError);
}

TEST(CellTaskKernels, StatsCountTasksAndQueueShape) {
  Workload w(6);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::CellTask;
  EamForceComputer computer(w.potential, cfg);
  computer.attach_schedule(w.box, w.range());
  computer.on_neighbor_rebuild(w.positions);
  w.run_with(computer);
  w.run_with(computer);

  const CellTaskSchedule* sched = computer.task_schedule();
  ASSERT_NE(sched, nullptr);
  const auto& stats = computer.stats();
  // Every block runs exactly once per scatter phase: 2 computes x 2 phases.
  EXPECT_EQ(stats.task_spawned, 4 * sched->block_count());
  EXPECT_LE(stats.task_steals, stats.task_spawned);
  EXPECT_GE(stats.task_max_queue_depth, 1u);
  // Busy fractions are normalized to the slowest thread.
  EXPECT_GT(stats.task_busy_min, 0.0);
  EXPECT_GE(stats.task_busy_mean, stats.task_busy_min);
  EXPECT_LE(stats.task_busy_mean, 1.0 + 1e-12);
  // Color-barrier accounting stays zero: the shape has no color sweeps.
  EXPECT_EQ(stats.color_sweeps, 0u);

  computer.reset_instrumentation();
  EXPECT_EQ(computer.stats().task_spawned, 0u);
  EXPECT_EQ(computer.stats().task_busy_mean, 0.0);
}

TEST(CellTaskKernels, SoaFastPathIsExcluded) {
  // The task kernels are scalar-only: even a fully SoA-eligible config
  // (tabulated potential, padded list, soa_half_lists) must not take the
  // SoA path, and neighbor_pad_width() must not flip when the governor
  // hot-swaps to CellTask (that would silently invalidate the list).
  Workload w(6);
  const TabulatedEam tab =
      TabulatedEam::from_analytic(w.potential, 2000, 2000, 60.0);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  cfg.sdc.dimensionality = 2;
  cfg.soa_half_lists = true;
  EamForceComputer computer(tab, cfg);
  const int pad_sdc = computer.neighbor_pad_width();
  computer.set_strategy(ReductionStrategy::CellTask);
  EXPECT_EQ(computer.neighbor_pad_width(), pad_sdc);

  computer.attach_schedule(w.box, w.range());
  computer.on_neighbor_rebuild(w.positions);
  NeighborListConfig ncfg;
  ncfg.cutoff = tab.cutoff();
  ncfg.skin = kSkin;
  ncfg.pad_width = computer.neighbor_pad_width();
  NeighborList padded(w.box, ncfg);
  padded.build(w.positions);
  std::vector<double> rho(w.positions.size()), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  computer.compute(w.box, w.positions, padded, rho, fp, force);
  EXPECT_EQ(computer.stats().soa_steps, 0u);
  EXPECT_EQ(computer.stats().soa_pad_fraction, 0.0);
}

// ---------------------------------------------------------------------------
// Hot-swap (the governor's ladder moves).

TEST(CellTaskKernels, HotSwapFromSdcAndBackMatchesSerial) {
  Workload w(6);
  const auto serial = w.run(ReductionStrategy::Serial);

  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  cfg.sdc.dimensionality = 2;
  EamForceComputer computer(w.potential, cfg);
  computer.attach_schedule(w.box, w.range());
  computer.on_neighbor_rebuild(w.positions);
  expect_matches_serial(serial, w.run_with(computer), 1e-12);

  // Demote to CellTask: the SDC schedule is dropped, the block grid and
  // per-block lock pool are built, the pair cache carries over.
  computer.set_strategy(ReductionStrategy::CellTask);
  EXPECT_EQ(computer.schedule(), nullptr);
  computer.attach_schedule(w.box, w.range());
  computer.on_neighbor_rebuild(w.positions);
  ASSERT_NE(computer.task_schedule(), nullptr);
  expect_matches_serial(serial, w.run_with(computer), 1e-12);

  // Promote back.
  computer.set_strategy(ReductionStrategy::Sdc);
  EXPECT_EQ(computer.task_schedule(), nullptr);
  computer.attach_schedule(w.box, w.range());
  computer.on_neighbor_rebuild(w.positions);
  expect_matches_serial(serial, w.run_with(computer), 1e-12);
}

TEST(CellTaskKernels, SwapToAtomicDropsTaskState) {
  Workload w(6);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::CellTask;
  EamForceComputer computer(w.potential, cfg);
  computer.attach_schedule(w.box, w.range());
  computer.on_neighbor_rebuild(w.positions);
  w.run_with(computer);
  computer.set_strategy(ReductionStrategy::Atomic);
  EXPECT_EQ(computer.task_schedule(), nullptr);
  const auto serial = w.run(ReductionStrategy::Serial);
  expect_matches_serial(serial, w.run_with(computer), 1e-10);
}

}  // namespace
}  // namespace sdcmd
