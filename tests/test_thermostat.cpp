#include "md/thermostat.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "md/thermo.hpp"
#include "md/velocity.hpp"

namespace sdcmd {
namespace {

std::vector<Vec3> hot_velocities(double temperature, std::size_t n = 400,
                                 std::uint64_t seed = 9) {
  std::vector<Vec3> v(n);
  maxwell_boltzmann_velocities(v, units::kMassFe, temperature, seed);
  return v;
}

// Velocity init zeroes the COM momentum, so the physical temperature of
// these ensembles uses 3N - 3 DOF - the same count the (default)
// thermostats measure with.
double measured(std::span<const Vec3> v) {
  return temperature_of(v, units::kMassFe,
                        temperature_dof(v.size(), true));
}

TEST(VelocityRescale, HitsTargetImmediately) {
  auto v = hot_velocities(600.0);
  VelocityRescaleThermostat t(300.0);
  t.apply(v, units::kMassFe, 0.01);
  EXPECT_NEAR(measured(v), 300.0, 1e-9);
}

TEST(VelocityRescale, PeriodSkipsApplications) {
  auto v = hot_velocities(600.0);
  VelocityRescaleThermostat t(300.0, /*period=*/3);
  t.apply(v, units::kMassFe, 0.01);  // 1st: skipped
  EXPECT_NEAR(measured(v), 600.0, 1e-9);
  t.apply(v, units::kMassFe, 0.01);  // 2nd: skipped
  t.apply(v, units::kMassFe, 0.01);  // 3rd: applied
  EXPECT_NEAR(measured(v), 300.0, 1e-9);
}

TEST(VelocityRescale, RawDofModeUsesAllModes) {
  // com_momentum_removed = false restores the raw-3N measurement: applied
  // to a momentum-zeroed ensemble it lands the raw temperature (not the
  // constrained one) on target.
  auto v = hot_velocities(600.0);
  VelocityRescaleThermostat t(300.0, 1, /*com_momentum_removed=*/false);
  t.apply(v, units::kMassFe, 0.01);
  EXPECT_NEAR(temperature_of(v, units::kMassFe), 300.0, 1e-9);
  EXPECT_GT(measured(v), 300.0);
}

TEST(VelocityRescale, RejectsBadArguments) {
  EXPECT_THROW(VelocityRescaleThermostat(-1.0), PreconditionError);
  EXPECT_THROW(VelocityRescaleThermostat(300.0, 0), PreconditionError);
}

TEST(Berendsen, RelaxesTowardTarget) {
  auto v = hot_velocities(600.0);
  BerendsenThermostat t(300.0, /*tau=*/1.0);
  double previous = measured(v);
  for (int s = 0; s < 50; ++s) {
    t.apply(v, units::kMassFe, 0.1);
    const double now = measured(v);
    EXPECT_LT(now, previous + 1e-9);
    previous = now;
  }
  EXPECT_NEAR(previous, 300.0, 5.0);
}

TEST(Berendsen, HeatsColdSystems) {
  auto v = hot_velocities(100.0);
  BerendsenThermostat t(300.0, 1.0);
  for (int s = 0; s < 100; ++s) t.apply(v, units::kMassFe, 0.1);
  EXPECT_NEAR(measured(v), 300.0, 5.0);
}

TEST(Berendsen, RejectsBadTau) {
  EXPECT_THROW(BerendsenThermostat(300.0, 0.0), PreconditionError);
}

TEST(Langevin, EquilibratesNearTarget) {
  auto v = hot_velocities(50.0, 2000);
  LangevinThermostat t(400.0, /*friction=*/0.5, /*seed=*/77);
  // Long stochastic settling; average the tail.
  double tail = 0.0;
  int samples = 0;
  for (int s = 0; s < 600; ++s) {
    t.apply(v, units::kMassFe, 0.05);
    if (s >= 300) {
      tail += temperature_of(v, units::kMassFe);
      ++samples;
    }
  }
  EXPECT_NEAR(tail / samples, 400.0, 40.0);
}

TEST(Langevin, DeterministicForSeed) {
  auto a = hot_velocities(300.0, 50);
  auto b = a;
  LangevinThermostat ta(300.0, 0.5, 123);
  LangevinThermostat tb(300.0, 0.5, 123);
  ta.apply(a, units::kMassFe, 0.01);
  tb.apply(b, units::kMassFe, 0.01);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Langevin, RejectsBadFriction) {
  EXPECT_THROW(LangevinThermostat(300.0, 0.0, 1), PreconditionError);
}

TEST(Thermostat, TargetsAreReported) {
  VelocityRescaleThermostat a(111.0);
  BerendsenThermostat b(222.0, 1.0);
  LangevinThermostat c(333.0, 0.1, 1);
  EXPECT_EQ(a.target_temperature(), 111.0);
  EXPECT_EQ(b.target_temperature(), 222.0);
  EXPECT_EQ(c.target_temperature(), 333.0);
}

TEST(Thermostat, MomentumConservationIsReported) {
  // Rescaling thermostats keep a zeroed COM zeroed (3N - 3 DOF stays
  // valid); Langevin's random kicks re-inject COM momentum.
  EXPECT_TRUE(VelocityRescaleThermostat(300.0).conserves_momentum());
  EXPECT_TRUE(BerendsenThermostat(300.0, 1.0).conserves_momentum());
  EXPECT_FALSE(LangevinThermostat(300.0, 0.1, 1).conserves_momentum());
}

}  // namespace
}  // namespace sdcmd
