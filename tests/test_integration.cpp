// Cross-module integration tests: tabulated-vs-analytic dynamics, thread
// count sweeps, non-cubic boxes, and checkpoint-driven exact restarts of
// the full Simulation stack.
#include <gtest/gtest.h>

#include <cmath>

#include "common/threads.hpp"
#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "io/checkpoint.hpp"
#include "md/simulation.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/setfl.hpp"
#include "potential/tabulated.hpp"

namespace sdcmd {
namespace {

const FinnisSinclair& iron() {
  static FinnisSinclair fe{FinnisSinclairParams::iron()};
  return fe;
}

System bcc(int cells) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = cells;
  return System::from_lattice(spec, units::kMassFe);
}

SimulationConfig sdc_config() {
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Sdc;
  cfg.force.sdc.dimensionality = 2;
  return cfg;
}

TEST(Integration, TabulatedPotentialTracksAnalyticTrajectory) {
  // A finely tabulated FS iron must reproduce the analytic trajectory to
  // within the interpolation error over a short run.
  const auto tab = TabulatedEam::from_analytic(iron(), 8000, 8000, 80.0);

  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;

  Simulation a(bcc(4), iron(), cfg);
  Simulation b(bcc(4), tab, cfg);
  a.set_temperature(200.0, 31);
  b.set_temperature(200.0, 31);
  a.run(30);
  b.run(30);

  double worst = 0.0;
  for (std::size_t i = 0; i < a.system().size(); ++i) {
    worst = std::max(worst, norm(a.system().atoms().position[i] -
                                 b.system().atoms().position[i]));
  }
  EXPECT_LT(worst, 1e-4);
  EXPECT_NEAR(a.sample().potential_energy(), b.sample().potential_energy(),
              1e-3);
}

TEST(Integration, SetflRoundTrippedPotentialRunsIdenticalDynamics) {
  const auto tab = TabulatedEam::from_analytic(iron(), 2000, 2000, 80.0);
  std::stringstream stream;
  write_setfl(stream, tab.tables());
  TabulatedEam reread{read_setfl(stream)};

  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;
  Simulation a(bcc(3), tab, cfg);
  Simulation b(bcc(3), reread, cfg);
  a.set_temperature(100.0, 7);
  b.set_temperature(100.0, 7);
  a.run(20);
  b.run(20);
  for (std::size_t i = 0; i < a.system().size(); ++i) {
    EXPECT_NEAR(norm(a.system().atoms().position[i] -
                     b.system().atoms().position[i]),
                0.0, 1e-9);
  }
}

class ThreadCountTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountTest, SdcResultsIndependentOfThreadCount) {
  // The color sweep assigns each subdomain's atoms to exactly one thread
  // in a fixed order, so rho/force must not depend on the thread count.
  const int previous = max_threads();
  System system = bcc(6);
  NeighborListConfig nl;
  nl.cutoff = iron().cutoff();
  nl.skin = 0.4;
  NeighborList list(system.box(), nl);
  list.build(system.atoms().position);

  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  cfg.sdc.dimensionality = 2;

  auto run_with = [&](int threads) {
    set_threads(threads);
    EamForceComputer computer(iron(), cfg);
    computer.attach_schedule(system.box(), iron().cutoff() + 0.4);
    computer.on_neighbor_rebuild(system.atoms().position);
    std::vector<double> rho(system.size()), fp(system.size());
    std::vector<Vec3> force(system.size());
    computer.compute(system.box(), system.atoms().position, list, rho, fp,
                     force);
    return rho;
  };

  const auto reference = run_with(1);
  const auto parallel = run_with(GetParam());
  set_threads(previous);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    // Same per-atom iteration order regardless of threads -> bitwise.
    EXPECT_EQ(reference[i], parallel[i]) << "atom " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest,
                         ::testing::Values(2, 3, 5, 8));

TEST(Integration, NonCubicBoxesWorkThroughTheWholeStack) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = 8;
  spec.ny = 6;
  spec.nz = 7;
  System system = System::from_lattice(spec, units::kMassFe);

  SimulationConfig cfg = sdc_config();
  cfg.force.sdc.dimensionality = 1;  // decompose the long axis
  Simulation sim(std::move(system), iron(), cfg);
  sim.set_temperature(150.0, 9);
  sim.compute_forces();
  const double e0 = sim.sample().total_energy();
  sim.run(50);
  EXPECT_NEAR(sim.sample().total_energy(), e0,
              2e-4 * static_cast<double>(sim.system().size()));
}

TEST(Integration, CheckpointRestartContinuesBitExactlyInNve) {
  // NVE dynamics is deterministic: a restart from a full-precision
  // checkpoint must follow the original trajectory exactly (same binary,
  // same thread count, same rebuild cadence). Rebuilding every step makes
  // the cadence identical on both sides of the restart - a restarted run
  // otherwise rebuilds at different steps, reordering FP summation.
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;
  cfg.rebuild_interval = 1;

  Simulation sim(bcc(4), iron(), cfg);
  sim.set_temperature(250.0, 77);
  sim.run(25);
  std::stringstream stream;
  save_checkpoint(stream, sim.system(), sim.current_step());
  sim.run(25);

  Checkpoint restored = load_checkpoint(stream);
  Simulation resumed(std::move(restored.system), iron(), cfg);
  resumed.run(25);

  for (std::size_t i = 0; i < sim.system().size(); ++i) {
    EXPECT_EQ(sim.system().atoms().position[i].x,
              resumed.system().atoms().position[i].x)
        << "atom " << i;
    EXPECT_EQ(sim.system().atoms().velocity[i].x,
              resumed.system().atoms().velocity[i].x);
  }
}

TEST(Integration, AllStrategiesAgreeAfterDynamics) {
  // Not just one force call: after 20 MD steps the trajectories under
  // every strategy must still agree (error compounds ~linearly, so this
  // catches subtle cross-strategy inconsistencies single-shot tests miss).
  std::vector<Vec3> reference;
  for (ReductionStrategy strategy :
       {ReductionStrategy::Serial, ReductionStrategy::Atomic,
        ReductionStrategy::LockStriped, ReductionStrategy::Sdc,
        ReductionStrategy::RedundantComputation}) {
    SimulationConfig cfg;
    cfg.dt = units::fs_to_internal(1.0);
    cfg.force.strategy = strategy;
    cfg.force.sdc.dimensionality = 2;
    Simulation sim(bcc(6), iron(), cfg);
    sim.set_temperature(150.0, 5);
    sim.run(20);
    if (reference.empty()) {
      reference = sim.system().atoms().position;
      continue;
    }
    double worst = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      worst = std::max(
          worst, norm(reference[i] - sim.system().atoms().position[i]));
    }
    EXPECT_LT(worst, 1e-7) << to_string(strategy);
  }
}

}  // namespace
}  // namespace sdcmd
