// CNA structure classification and velocity autocorrelation tests.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/cna.hpp"
#include "analysis/vacf.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "geom/lattice.hpp"
#include "md/simulation.hpp"
#include "md/velocity.hpp"
#include "potential/finnis_sinclair.hpp"

namespace sdcmd {
namespace {

std::vector<Vec3> lattice_positions(LatticeType type, double a0, int cells,
                                    Box& box_out) {
  LatticeSpec spec;
  spec.type = type;
  spec.a0 = a0;
  spec.nx = spec.ny = spec.nz = cells;
  box_out = spec.box();
  return build_lattice(spec);
}

TEST(Cna, PerfectBccClassifiesEveryAtomAsBcc) {
  Box box = Box::cubic(1.0);
  const auto positions =
      lattice_positions(LatticeType::Bcc, units::kLatticeFe, 5, box);
  const auto result = common_neighbor_analysis(
      box, positions, bcc_cna_cutoff(units::kLatticeFe));
  EXPECT_EQ(result.count(CnaStructure::Bcc), positions.size());
  EXPECT_DOUBLE_EQ(result.fraction(CnaStructure::Bcc), 1.0);
  EXPECT_EQ(result.count(CnaStructure::Other), 0u);
}

TEST(Cna, PerfectFccClassifiesEveryAtomAsFcc) {
  Box box = Box::cubic(1.0);
  const auto positions = lattice_positions(LatticeType::Fcc, 3.615, 4, box);
  const auto result =
      common_neighbor_analysis(box, positions, fcc_cna_cutoff(3.615));
  EXPECT_EQ(result.count(CnaStructure::Fcc), positions.size());
}

TEST(Cna, RandomGasIsOther) {
  const Box box = Box::cubic(20.0);
  Xoshiro256 rng(3);
  std::vector<Vec3> points(800);
  for (auto& p : points) {
    p = {rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0),
         rng.uniform(0.0, 20.0)};
  }
  const auto result = common_neighbor_analysis(box, points, 3.0);
  EXPECT_GT(result.fraction(CnaStructure::Other), 0.95);
}

TEST(Cna, WarmBccCrystalStaysMostlyBcc) {
  // Thermal jitter well below the Lindemann threshold must not destroy
  // the classification.
  Box box = Box::cubic(1.0);
  auto positions =
      lattice_positions(LatticeType::Bcc, units::kLatticeFe, 5, box);
  Xoshiro256 rng(8);
  for (auto& r : positions) {
    r += Vec3{rng.normal(0.0, 0.05), rng.normal(0.0, 0.05),
              rng.normal(0.0, 0.05)};
    r = box.wrap(r);
  }
  const auto result = common_neighbor_analysis(
      box, positions, bcc_cna_cutoff(units::kLatticeFe));
  EXPECT_GT(result.fraction(CnaStructure::Bcc), 0.9);
}

TEST(Cna, VacancyNeighborhoodIsFlaggedOther) {
  Box box = Box::cubic(1.0);
  auto positions =
      lattice_positions(LatticeType::Bcc, units::kLatticeFe, 5, box);
  positions.erase(positions.begin() + 60);
  const auto result = common_neighbor_analysis(
      box, positions, bcc_cna_cutoff(units::kLatticeFe));
  // The vacancy disturbs its 14-neighborhood (and their signatures).
  EXPECT_GT(result.count(CnaStructure::Other), 0u);
  EXPECT_LT(result.count(CnaStructure::Other), 60u);
  EXPECT_GT(result.fraction(CnaStructure::Bcc), 0.7);
}

TEST(Cna, StructureNamesResolve) {
  EXPECT_STREQ(to_string(CnaStructure::Bcc), "bcc");
  EXPECT_STREQ(to_string(CnaStructure::Fcc), "fcc");
  EXPECT_STREQ(to_string(CnaStructure::Hcp), "hcp");
  EXPECT_STREQ(to_string(CnaStructure::Ico), "ico");
  EXPECT_STREQ(to_string(CnaStructure::Other), "other");
}

// ---------------------------------------------------------------------------

System small_fe(int cells) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = cells;
  return System::from_lattice(spec, units::kMassFe);
}

TEST(Vacf, OneAtTimeZero) {
  System system = small_fe(3);
  maxwell_boltzmann_velocities(system.atoms().velocity, system.mass(),
                               300.0, 4);
  VacfTracker vacf(system);
  EXPECT_NEAR(vacf.sample(system), 1.0, 1e-12);
}

TEST(Vacf, ZeroReferenceVelocitiesThrowOnNormalizedSample) {
  System system = small_fe(3);
  VacfTracker vacf(system);
  EXPECT_THROW(vacf.sample(system), PreconditionError);
  EXPECT_DOUBLE_EQ(vacf.sample_raw(system), 0.0);  // raw is fine
}

TEST(Vacf, FreeParticlesStayFullyCorrelated) {
  System system = small_fe(3);
  maxwell_boltzmann_velocities(system.atoms().velocity, system.mass(),
                               300.0, 4);
  VacfTracker vacf(system);
  // No forces: velocities never change.
  EXPECT_NEAR(vacf.sample(system), 1.0, 1e-12);
}

TEST(Vacf, DecorrelatesInASolidUnderDynamics) {
  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;
  Simulation sim(small_fe(4), iron, cfg);
  sim.set_temperature(300.0, 12);
  sim.compute_forces();
  VacfTracker vacf(sim.system());
  sim.run(120);  // ~ half a phonon period at 1 fs steps
  const double c = vacf.sample(sim.system());
  EXPECT_LT(c, 0.9);   // decorrelated
  EXPECT_GT(c, -1.0);  // but bounded
}

TEST(Vacf, SurvivesReordering) {
  System system = small_fe(3);
  maxwell_boltzmann_velocities(system.atoms().velocity, system.mass(),
                               300.0, 4);
  VacfTracker vacf(system);
  std::vector<std::uint32_t> perm(system.size());
  for (std::uint32_t i = 0; i < perm.size(); ++i) {
    perm[i] = static_cast<std::uint32_t>(perm.size()) - 1 - i;
  }
  system.atoms().reorder(perm);
  EXPECT_NEAR(vacf.sample(system), 1.0, 1e-12);
}

TEST(GreenKubo, ExponentialDecayIntegratesAnalytically) {
  // C(t) = C0 exp(-t/tau): D = C0 tau / 3.
  const double c0 = 2.5, tau = 4.0, dt = 0.01;
  std::vector<double> series;
  for (double t = 0.0; t < 60.0; t += dt) {
    series.push_back(c0 * std::exp(-t / tau));
  }
  EXPECT_NEAR(greenkubo_diffusion(series, dt), c0 * tau / 3.0, 1e-3);
}

TEST(GreenKubo, DegenerateInputs) {
  EXPECT_EQ(greenkubo_diffusion({}, 0.1), 0.0);
  EXPECT_EQ(greenkubo_diffusion({1.0}, 0.1), 0.0);
  EXPECT_THROW(greenkubo_diffusion({1.0, 0.5}, 0.0), PreconditionError);
}

}  // namespace
}  // namespace sdcmd
