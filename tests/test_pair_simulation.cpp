// The Simulation driver running a pair potential through the ForceProvider
// abstraction: same integrator/neighbor/thermostat stack, one-phase forces.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "md/simulation.hpp"
#include "potential/lennard_jones.hpp"

namespace sdcmd {
namespace {

// Argon-like fcc crystal (cutoff ~1.8 sigma keeps SDC feasible on the
// small test boxes).
const LennardJones& argon() {
  static LennardJones lj{0.0103, 3.405, 6.0};
  return lj;
}

System fcc_argon(int cells) {
  LatticeSpec spec;
  spec.type = LatticeType::Fcc;
  spec.a0 = 5.26;  // argon fcc lattice constant
  spec.nx = spec.ny = spec.nz = cells;
  return System::from_lattice(spec, 39.948);
}

SimulationConfig config_for(ReductionStrategy strategy) {
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(5.0);  // argon is soft; 5 fs is safe
  cfg.force.strategy = strategy;
  cfg.force.sdc.dimensionality = 2;
  return cfg;
}

TEST(PairSimulation, NveConservesEnergy) {
  Simulation sim(fcc_argon(4), argon(), config_for(ReductionStrategy::Serial));
  sim.set_temperature(30.0, 42);
  sim.compute_forces();
  const double e0 = sim.sample().total_energy();
  sim.run(200);
  const double drift = std::abs(sim.sample().total_energy() - e0) /
                       static_cast<double>(sim.system().size());
  EXPECT_LT(drift, 1e-5);
}

TEST(PairSimulation, SdcStrategyMatchesSerialTrajectory) {
  // 5 cells = 26.3 A: holds two 12.8 A subdomains per decomposed axis.
  Simulation serial(fcc_argon(5), argon(),
                    config_for(ReductionStrategy::Serial));
  Simulation sdc(fcc_argon(5), argon(), config_for(ReductionStrategy::Sdc));
  serial.set_temperature(30.0, 7);
  sdc.set_temperature(30.0, 7);
  serial.run(20);
  sdc.run(20);
  double worst = 0.0;
  for (std::size_t i = 0; i < serial.system().size(); ++i) {
    worst = std::max(worst, norm(serial.system().atoms().position[i] -
                                 sdc.system().atoms().position[i]));
  }
  EXPECT_LT(worst, 1e-8);
}

TEST(PairSimulation, RcStrategyUsesFullListsTransparently) {
  Simulation sim(fcc_argon(4), argon(),
                 config_for(ReductionStrategy::RedundantComputation));
  EXPECT_EQ(sim.neighbor_list().mode(), NeighborMode::Full);
  sim.set_temperature(30.0, 3);
  sim.run(10);
  EXPECT_GT(sim.sample().kinetic_energy, 0.0);
}

TEST(PairSimulation, ThermoReportsZeroEmbeddingEnergy) {
  Simulation sim(fcc_argon(3), argon(), config_for(ReductionStrategy::Serial));
  sim.compute_forces();
  const ThermoSample s = sim.sample();
  EXPECT_EQ(s.embedding_energy, 0.0);
  EXPECT_LT(s.pair_energy, 0.0);  // bound crystal
}

TEST(PairSimulation, CrystalBindsNearLiteratureCohesion) {
  // Full-range fcc LJ cohesion is ~ -8.6 epsilon/atom; the 1.76 sigma
  // shifted cutoff keeps the 12 + 6 inner shells, ~ -5.5 epsilon/atom.
  Simulation sim(fcc_argon(4), argon(), config_for(ReductionStrategy::Serial));
  sim.compute_forces();
  const double per_atom = sim.sample().potential_energy() /
                          static_cast<double>(sim.system().size());
  EXPECT_LT(per_atom, -4.0 * 0.0103);
  EXPECT_GT(per_atom, -8.6 * 0.0103);
}

TEST(PairSimulation, EamAccessorThrowsForPairBackend) {
  Simulation sim(fcc_argon(3), argon(), config_for(ReductionStrategy::Serial));
  EXPECT_THROW(sim.force_computer(), PreconditionError);
  // The generic provider accessor works.
  EXPECT_NO_THROW(sim.force_provider().timers());
}

TEST(PairSimulation, ProviderTimersAccumulate) {
  Simulation sim(fcc_argon(3), argon(), config_for(ReductionStrategy::Serial));
  sim.set_temperature(20.0, 2);
  sim.run(5);
  EXPECT_GT(sim.force_provider().timers().total(), 0.0);
}

}  // namespace
}  // namespace sdcmd
