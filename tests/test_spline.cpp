#include "potential/cubic_spline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace sdcmd {
namespace {

std::vector<double> sample(double x0, double dx, std::size_t n,
                           double (*f)(double)) {
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    ys[i] = f(x0 + dx * static_cast<double>(i));
  }
  return ys;
}

TEST(CubicSpline, ReproducesLinearFunctionExactly) {
  auto lin = [](double x) { return 2.0 * x + 1.0; };
  std::vector<double> ys;
  for (int i = 0; i < 10; ++i) ys.push_back(lin(0.5 * i));
  CubicSpline s(0.0, 0.5, ys);
  for (double x = 0.0; x <= 4.5; x += 0.037) {
    EXPECT_NEAR(s.value(x), lin(x), 1e-12);
    EXPECT_NEAR(s.derivative(x), 2.0, 1e-10);
  }
}

TEST(CubicSpline, InterpolatesKnotsExactly) {
  const auto ys = sample(0.0, 0.2, 30, [](double x) { return std::sin(x); });
  CubicSpline s(0.0, 0.2, ys);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    EXPECT_NEAR(s.value(0.2 * static_cast<double>(i)), ys[i], 1e-12);
  }
}

TEST(CubicSpline, ApproximatesSineBetweenKnots) {
  const auto ys =
      sample(0.0, 0.05, 200, [](double x) { return std::sin(x); });
  CubicSpline s(0.0, 0.05, ys);
  for (double x = 0.3; x < 9.5; x += 0.0137) {
    EXPECT_NEAR(s.value(x), std::sin(x), 1e-6) << "x=" << x;
    EXPECT_NEAR(s.derivative(x), std::cos(x), 1e-4) << "x=" << x;
  }
}

TEST(CubicSpline, ClampedBoundariesMatchRequestedSlopes) {
  const auto ys =
      sample(0.0, 0.1, 50, [](double x) { return std::exp(-x); });
  CubicSpline s(0.0, 0.1, ys, -1.0, -std::exp(-4.9));
  EXPECT_NEAR(s.derivative(0.0), -1.0, 1e-10);
  EXPECT_NEAR(s.derivative(4.9), -std::exp(-4.9), 1e-10);
}

TEST(CubicSpline, EvaluateBundlesValueAndDerivative) {
  const auto ys = sample(0.0, 0.1, 40, [](double x) { return x * x; });
  CubicSpline s(0.0, 0.1, ys);
  double v, d;
  s.evaluate(1.234, v, d);
  EXPECT_DOUBLE_EQ(v, s.value(1.234));
  EXPECT_DOUBLE_EQ(d, s.derivative(1.234));
}

TEST(CubicSpline, OutOfRangeClampsToEndSegments) {
  const auto ys = sample(0.0, 1.0, 5, [](double x) { return x; });
  CubicSpline s(0.0, 1.0, ys);
  // Linear data: extrapolation continues the line.
  EXPECT_NEAR(s.value(-1.0), -1.0, 1e-9);
  EXPECT_NEAR(s.value(6.0), 6.0, 1e-9);
}

TEST(CubicSpline, GridAccessors) {
  CubicSpline s(1.0, 0.5, {0.0, 1.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(s.x_begin(), 1.0);
  EXPECT_DOUBLE_EQ(s.x_end(), 2.5);
  EXPECT_DOUBLE_EQ(s.dx(), 0.5);
  EXPECT_EQ(s.size(), 4u);
}

TEST(CubicSpline, RejectsDegenerateInput) {
  EXPECT_THROW(CubicSpline(0.0, 0.1, {1.0}), PreconditionError);
  EXPECT_THROW(CubicSpline(0.0, -0.1, {1.0, 2.0}), PreconditionError);
}

// Property sweep: spline of a cubic polynomial with clamped ends is exact.
class SplinePolynomialTest : public ::testing::TestWithParam<double> {};

TEST_P(SplinePolynomialTest, ClampedSplineReproducesCubics) {
  auto f = [](double x) { return x * x * x - 2.0 * x * x + 0.5 * x + 3.0; };
  auto df = [](double x) { return 3.0 * x * x - 4.0 * x + 0.5; };
  std::vector<double> ys;
  const double dx = 0.25;
  for (int i = 0; i <= 20; ++i) ys.push_back(f(dx * i));
  CubicSpline s(0.0, dx, ys, df(0.0), df(5.0));
  const double x = GetParam();
  EXPECT_NEAR(s.value(x), f(x), 1e-9);
  EXPECT_NEAR(s.derivative(x), df(x), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplinePolynomialTest,
                         ::testing::Values(0.1, 0.77, 1.3, 2.52, 3.9, 4.85));

}  // namespace
}  // namespace sdcmd
