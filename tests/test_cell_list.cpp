#include "neighbor/cell_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/random.hpp"
#include "geom/lattice.hpp"

namespace sdcmd {
namespace {

std::vector<Vec3> random_points(const Box& box, std::size_t n,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vec3> out(n);
  for (auto& r : out) {
    r = {rng.uniform(box.lo().x, box.hi().x),
         rng.uniform(box.lo().y, box.hi().y),
         rng.uniform(box.lo().z, box.hi().z)};
  }
  return out;
}

TEST(CellList, GridDimensionsRespectMinimumCellSize) {
  const Box box({0, 0, 0}, {10.0, 20.0, 7.0});
  CellList cells(box, 3.0);
  EXPECT_EQ(cells.nx(), 3);
  EXPECT_EQ(cells.ny(), 6);
  EXPECT_EQ(cells.nz(), 2);
  EXPECT_EQ(cells.cell_count(), 36u);
}

TEST(CellList, RejectsPeriodicBoxSmallerThanTwoCells) {
  const Box box = Box::cubic(5.0);
  EXPECT_THROW(CellList(box, 3.0), PreconditionError);
}

TEST(CellList, EveryAtomLandsInExactlyOneCell) {
  const Box box = Box::cubic(12.0);
  CellList cells(box, 3.0);
  const auto points = random_points(box, 500, 42);
  cells.build(points);

  std::set<std::uint32_t> seen;
  std::size_t total = 0;
  for (std::size_t c = 0; c < cells.cell_count(); ++c) {
    for (std::uint32_t i : cells.atoms_in(c)) {
      EXPECT_TRUE(seen.insert(i).second) << "atom " << i << " binned twice";
      EXPECT_EQ(cells.cell_of(points[i]), c);
      ++total;
    }
  }
  EXPECT_EQ(total, points.size());
}

TEST(CellList, StencilContainsSelf) {
  const Box box = Box::cubic(12.0);
  CellList cells(box, 3.0);
  for (std::size_t c = 0; c < cells.cell_count(); ++c) {
    const auto& st = cells.stencil(c);
    EXPECT_NE(std::find(st.begin(), st.end(), c), st.end());
  }
}

TEST(CellList, StencilHas27CellsOnLargeGrid) {
  const Box box = Box::cubic(15.0);
  CellList cells(box, 3.0);  // 5x5x5 grid
  for (std::size_t c = 0; c < cells.cell_count(); ++c) {
    EXPECT_EQ(cells.stencil(c).size(), 27u);
  }
}

TEST(CellList, StencilDeduplicatesOnNarrowGrid) {
  const Box box = Box::cubic(8.0);
  CellList cells(box, 3.8);  // 2x2x2 grid: +/-1 wraps onto the same cell
  for (std::size_t c = 0; c < cells.cell_count(); ++c) {
    const auto& st = cells.stencil(c);
    std::set<std::size_t> unique(st.begin(), st.end());
    EXPECT_EQ(unique.size(), st.size());
    EXPECT_EQ(st.size(), 8u);  // all cells are mutual neighbors
  }
}

TEST(CellList, NonPeriodicBoundariesTruncateStencil) {
  const Box box({0, 0, 0}, {9.0, 9.0, 9.0}, {false, false, false});
  CellList cells(box, 3.0);  // 3x3x3
  // corner cell: 2x2x2 = 8 stencil entries
  const std::size_t corner = cells.cell_of({0.1, 0.1, 0.1});
  EXPECT_EQ(cells.stencil(corner).size(), 8u);
  // center cell: full 27
  const std::size_t center = cells.cell_of({4.5, 4.5, 4.5});
  EXPECT_EQ(cells.stencil(center).size(), 27u);
}

TEST(CellList, AllNearbyPairsAreCoveredByTheStencil) {
  const Box box = Box::cubic(14.0);
  const double range = 3.3;
  CellList cells(box, range);
  const auto points = random_points(box, 300, 7);
  cells.build(points);

  // For every pair within range, j's cell must be in i's stencil.
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& st = cells.stencil(cells.cell_of(points[i]));
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      if (box.distance2(points[i], points[j]) < range * range) {
        EXPECT_NE(std::find(st.begin(), st.end(), cells.cell_of(points[j])),
                  st.end())
            << "pair (" << i << "," << j << ") not covered";
      }
    }
  }
}

TEST(CellList, OutOfBoxPositionsAreWrappedForBinning) {
  const Box box = Box::cubic(12.0);
  CellList cells(box, 3.0);
  EXPECT_EQ(cells.cell_of({13.0, 1.0, 1.0}), cells.cell_of({1.0, 1.0, 1.0}));
  EXPECT_EQ(cells.cell_of({-1.0, 1.0, 1.0}), cells.cell_of({11.0, 1.0, 1.0}));
}

// Half-stencil invariant: every adjacent unordered cell pair {a, b} must
// appear in exactly one of the two half stencils, and no half stencil may
// contain its own cell. This is what lets half-mode pair enumeration visit
// each cross-cell pair exactly once.
void check_half_stencil_invariant(const CellList& cells) {
  std::set<std::pair<std::size_t, std::size_t>> owned;
  for (std::size_t c = 0; c < cells.cell_count(); ++c) {
    for (std::size_t other : cells.half_stencil(c)) {
      EXPECT_GT(other, c);
      EXPECT_TRUE(owned.insert({c, other}).second)
          << "cell pair {" << c << "," << other << "} owned twice";
    }
  }
  // Every non-self full-stencil adjacency must be owned by exactly one side.
  for (std::size_t c = 0; c < cells.cell_count(); ++c) {
    for (std::size_t other : cells.stencil(c)) {
      if (other == c) continue;
      const auto key = std::minmax(c, other);
      EXPECT_TRUE(owned.count({key.first, key.second}))
          << "adjacency {" << c << "," << other << "} unowned";
    }
  }
}

TEST(CellList, HalfStencilOwnsEachAdjacencyOnceOnLargeGrid) {
  const Box box = Box::cubic(15.0);
  CellList cells(box, 3.0);  // 5x5x5: interior half stencils have 13 cells
  check_half_stencil_invariant(cells);
}

TEST(CellList, HalfStencilOwnsEachAdjacencyOnceOnNarrowGrid) {
  const Box box = Box::cubic(8.0);
  CellList cells(box, 3.8);  // 2x2x2: wrapping collapses the stencils
  check_half_stencil_invariant(cells);
}

TEST(CellList, HalfStencilOwnsEachAdjacencyOnceOnMixedPeriodicity) {
  const Box box({0, 0, 0}, {7.0, 9.0, 12.0}, {true, false, true});
  CellList cells(box, 3.0);  // 2x3x4, mixed wrap/truncate
  check_half_stencil_invariant(cells);
}

TEST(CellList, UpdateBoxWithoutReshapeKeepsStencils) {
  Box box = Box::cubic(12.0);
  CellList cells(box, 3.0);  // 4x4x4
  EXPECT_EQ(cells.stencil_rebuilds(), 1u);
  box.rescale({1.02, 1.02, 1.02});  // 12.24 / 3 -> still 4 cells per dim
  EXPECT_FALSE(cells.update_box(box));
  EXPECT_EQ(cells.nx(), 4);
  EXPECT_EQ(cells.stencil_rebuilds(), 1u);
}

TEST(CellList, UpdateBoxReshapesWhenGridChanges) {
  Box box = Box::cubic(12.0);
  CellList cells(box, 3.0);  // 4x4x4
  box.rescale({1.3, 1.3, 1.3});  // 15.6 / 3 -> 5 cells per dim
  EXPECT_TRUE(cells.update_box(box));
  EXPECT_EQ(cells.nx(), 5);
  EXPECT_EQ(cells.stencil_rebuilds(), 2u);
  // The reshaped grid still satisfies the half-stencil invariant and bins
  // correctly.
  check_half_stencil_invariant(cells);
  const auto points = random_points(box, 200, 11);
  cells.build(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(cells.binned_cell(i), cells.cell_of(points[i]));
  }
}

TEST(CellList, UpdateBoxRejectsTooSmallPeriodicBox) {
  Box box = Box::cubic(12.0);
  CellList cells(box, 3.0);
  EXPECT_THROW(cells.update_box(Box::cubic(5.0)), PreconditionError);
}

TEST(CellList, ParallelBinningMatchesSerial) {
  // Above the parallel threshold, the counting sort must produce exactly
  // the serial ordering (atoms ascending within each cell).
  const Box box = Box::cubic(24.0);
  const auto points = random_points(box, 5000, 123);
  CellList serial(box, 3.0), parallel(box, 3.0);
  serial.build(points, /*parallel=*/false);
  parallel.build(points, /*parallel=*/true);
  ASSERT_EQ(serial.cell_count(), parallel.cell_count());
  for (std::size_t c = 0; c < serial.cell_count(); ++c) {
    const auto a = serial.atoms_in(c);
    const auto b = parallel.atoms_in(c);
    ASSERT_EQ(a.size(), b.size()) << "cell " << c;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "cell " << c;
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(parallel.binned_cell(i), serial.binned_cell(i));
  }
}

}  // namespace
}  // namespace sdcmd
