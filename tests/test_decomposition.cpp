#include "domain/decomposition.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sdcmd {
namespace {

constexpr double kRange = 2.0;  // 2*range = 4.0 minimum edge

TEST(Decomposition, FinestCountsAreLargestEvenFit) {
  const Box box({0, 0, 0}, {40.0, 24.0, 17.0});
  const auto d3 = SpatialDecomposition::finest(box, 3, kRange);
  // 40/4 = 10, 24/4 = 6, 17/4 = 4.25 -> 4
  EXPECT_EQ(d3.counts(), (std::array<int, 3>{10, 6, 4}));
  EXPECT_EQ(d3.subdomain_count(), 240u);
  EXPECT_EQ(d3.dimensionality(), 3);
}

TEST(Decomposition, LowerDimensionalitiesLeaveAxesUndecomposed) {
  const Box box = Box::cubic(40.0);
  const auto d1 = SpatialDecomposition::finest(box, 1, kRange);
  EXPECT_EQ(d1.counts(), (std::array<int, 3>{10, 1, 1}));
  EXPECT_EQ(d1.dimensionality(), 1);

  const auto d2 = SpatialDecomposition::finest(box, 2, kRange);
  EXPECT_EQ(d2.counts(), (std::array<int, 3>{10, 10, 1}));
  EXPECT_EQ(d2.dimensionality(), 2);
}

TEST(Decomposition, InfeasibleBoxThrows) {
  // 7.9 < 2 * (2 * 2.0): cannot hold two subdomains of edge >= 4.
  const Box box = Box::cubic(7.9);
  EXPECT_THROW(SpatialDecomposition::finest(box, 1, kRange),
               InfeasibleError);
  EXPECT_THROW(SpatialDecomposition::finest(box, 3, kRange),
               InfeasibleError);
}

TEST(Decomposition, OddCountsRejected) {
  const Box box = Box::cubic(40.0);
  EXPECT_THROW(SpatialDecomposition(box, {3, 1, 1}, kRange),
               InfeasibleError);
}

TEST(Decomposition, OddCountsRejectedOnEveryAxis) {
  // The 2/4/8-coloring only closes under periodic wrap with even counts,
  // regardless of which axis carries the odd one.
  const Box box = Box::cubic(40.0);
  EXPECT_THROW(SpatialDecomposition(box, {2, 3, 1}, kRange),
               InfeasibleError);
  EXPECT_THROW(SpatialDecomposition(box, {2, 2, 5}, kRange),
               InfeasibleError);
  EXPECT_THROW(SpatialDecomposition(box, {7, 7, 7}, kRange),
               InfeasibleError);
}

TEST(Decomposition, InfeasibilityIsPerAxis) {
  // z (7.9) cannot hold two 2*range subdomains, x/y (40) can: 3-D fails,
  // 2-D succeeds on the same box.
  const Box box({0, 0, 0}, {40.0, 40.0, 7.9});
  EXPECT_THROW(SpatialDecomposition::finest(box, 3, kRange),
               InfeasibleError);
  const auto d2 = SpatialDecomposition::finest(box, 2, kRange);
  EXPECT_EQ(d2.dimensionality(), 2);
}

TEST(Decomposition, MaxFeasibleDimensionalityLadder) {
  EXPECT_EQ(SpatialDecomposition::max_feasible_dimensionality(
                Box::cubic(7.9), kRange),
            0);
  EXPECT_EQ(SpatialDecomposition::max_feasible_dimensionality(
                Box({0, 0, 0}, {16.0, 7.9, 7.9}), kRange),
            1);
  EXPECT_EQ(SpatialDecomposition::max_feasible_dimensionality(
                Box({0, 0, 0}, {16.0, 16.0, 7.9}), kRange),
            2);
  EXPECT_EQ(SpatialDecomposition::max_feasible_dimensionality(
                Box::cubic(16.0), kRange),
            3);
}

TEST(Decomposition, TooFineCountsRejected) {
  const Box box = Box::cubic(40.0);
  // 40/12 = 3.33 < 4 = 2*range
  EXPECT_THROW(SpatialDecomposition(box, {12, 1, 1}, kRange),
               InfeasibleError);
}

TEST(Decomposition, ExplicitCountsAccepted) {
  const Box box = Box::cubic(40.0);
  const SpatialDecomposition d(box, {4, 2, 1}, kRange);
  EXPECT_EQ(d.subdomain_count(), 8u);
  EXPECT_EQ(d.dimensionality(), 2);
}

TEST(Decomposition, FlatIndexRoundTripsCoords) {
  const Box box({0, 0, 0}, {40.0, 24.0, 17.0});
  const auto d = SpatialDecomposition::finest(box, 3, kRange);
  for (std::size_t s = 0; s < d.subdomain_count(); ++s) {
    EXPECT_EQ(d.flat_index(d.coords_of(s)), s);
  }
}

TEST(Decomposition, SubdomainOfAgreesWithBounds) {
  const Box box({0, 0, 0}, {40.0, 24.0, 16.0});
  const auto d = SpatialDecomposition::finest(box, 3, kRange);
  for (std::size_t s = 0; s < d.subdomain_count(); ++s) {
    Vec3 lo, hi;
    d.bounds(s, lo, hi);
    const Vec3 center = 0.5 * (lo + hi);
    EXPECT_EQ(d.subdomain_of(center), s);
    // lo corner is inclusive
    EXPECT_EQ(d.subdomain_of(lo), s);
  }
}

TEST(Decomposition, OutOfBoxPositionsWrapIntoSubdomains) {
  const Box box = Box::cubic(40.0);
  const auto d = SpatialDecomposition::finest(box, 3, kRange);
  EXPECT_EQ(d.subdomain_of({41.0, 1.0, 1.0}), d.subdomain_of({1.0, 1.0, 1.0}));
  EXPECT_EQ(d.subdomain_of({-1.0, 1.0, 1.0}),
            d.subdomain_of({39.0, 1.0, 1.0}));
}

TEST(Decomposition, BoundsTileTheBox) {
  const Box box({0, 0, 0}, {40.0, 24.0, 16.0});
  const auto d = SpatialDecomposition::finest(box, 3, kRange);
  double volume = 0.0;
  for (std::size_t s = 0; s < d.subdomain_count(); ++s) {
    Vec3 lo, hi;
    d.bounds(s, lo, hi);
    volume += (hi.x - lo.x) * (hi.y - lo.y) * (hi.z - lo.z);
  }
  EXPECT_NEAR(volume, box.volume(), 1e-9);
}

TEST(Decomposition, WithTargetCoarsensEvenly) {
  const Box box = Box::cubic(80.0);  // finest 3-D: 20^3 = 8000
  const auto d = SpatialDecomposition::with_target(box, 3, kRange, 512);
  EXPECT_LE(d.subdomain_count(), 512u);
  for (int dim = 0; dim < 3; ++dim) {
    EXPECT_EQ(d.counts()[dim] % 2, 0);
    EXPECT_GE(d.counts()[dim], 2);
  }
}

TEST(Decomposition, WithTargetStopsAtMinimumGranularity) {
  const Box box = Box::cubic(40.0);
  const auto d = SpatialDecomposition::with_target(box, 3, kRange, 1);
  EXPECT_EQ(d.counts(), (std::array<int, 3>{2, 2, 2}));
}

TEST(Decomposition, SubdomainEdgeAtLeastTwiceRangeInvariant) {
  // Property check over several boxes: every decomposed edge >= 2 * range.
  for (double edge : {16.0, 23.0, 40.0, 77.5}) {
    const Box box = Box::cubic(edge);
    for (int dims = 1; dims <= 3; ++dims) {
      const auto d = SpatialDecomposition::finest(box, dims, kRange);
      const Vec3 lengths = d.subdomain_lengths();
      for (int dim = 0; dim < dims; ++dim) {
        EXPECT_GE(lengths[dim], 2.0 * kRange)
            << "box " << edge << " dims " << dims;
      }
    }
  }
}

TEST(Decomposition, FeasibleMatchesConstructorBehavior) {
  // The non-throwing probe must agree exactly with what finest() accepts:
  // the governor relies on probe == build.
  for (double edge : {7.9, 8.0, 8.1, 10.0, 15.9, 16.0, 40.0}) {
    const Box box = Box::cubic(edge);
    for (int dims = 1; dims <= 3; ++dims) {
      const bool probe = SpatialDecomposition::feasible(box, dims, kRange);
      bool built = true;
      try {
        SpatialDecomposition::finest(box, dims, kRange);
      } catch (const InfeasibleError&) {
        built = false;
      }
      EXPECT_EQ(probe, built) << "edge " << edge << " dims " << dims;
    }
  }
}

TEST(Decomposition, FeasibleRejectsBadArguments) {
  const Box box = Box::cubic(40.0);
  EXPECT_FALSE(SpatialDecomposition::feasible(box, 0, kRange));
  EXPECT_FALSE(SpatialDecomposition::feasible(box, 4, kRange));
  EXPECT_FALSE(SpatialDecomposition::feasible(box, 2, 0.0));
  EXPECT_FALSE(SpatialDecomposition::feasible(box, 2, -1.0));
}

TEST(Decomposition, DescribeMentionsGeometry) {
  const Box box = Box::cubic(40.0);
  const auto d = SpatialDecomposition::finest(box, 2, kRange);
  const std::string s = d.describe();
  EXPECT_NE(s.find("2-D"), std::string::npos);
  EXPECT_NE(s.find("10x10x1"), std::string::npos);
}

}  // namespace
}  // namespace sdcmd
