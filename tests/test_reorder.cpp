#include "neighbor/reorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/random.hpp"

namespace sdcmd {
namespace {

std::vector<Vec3> random_points(const Box& box, std::size_t n,
                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vec3> out(n);
  for (auto& r : out) {
    r = {rng.uniform(box.lo().x, box.hi().x),
         rng.uniform(box.lo().y, box.hi().y),
         rng.uniform(box.lo().z, box.hi().z)};
  }
  return out;
}

TEST(SpatialSort, PermutationIsBijective) {
  const Box box = Box::cubic(12.0);
  const auto points = random_points(box, 333, 4);
  const auto perm = spatial_sort_permutation(box, points, 3.0);
  ASSERT_EQ(perm.size(), points.size());
  std::set<std::uint32_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), points.size());
}

TEST(SpatialSort, SortedOrderIsCellMonotonic) {
  const Box box = Box::cubic(12.0);
  const auto points = random_points(box, 333, 4);
  const double cell = 3.0;
  const auto perm = spatial_sort_permutation(box, points, cell);
  CellList cells(box, cell);
  std::size_t last = 0;
  bool first = true;
  for (std::uint32_t old : perm) {
    const std::size_t c = cells.cell_of(points[old]);
    if (!first) EXPECT_GE(c, last);
    last = c;
    first = false;
  }
}

TEST(ApplyPermutation, ReordersValues) {
  const std::vector<int> values{10, 20, 30, 40};
  const std::vector<std::uint32_t> perm{2, 0, 3, 1};
  EXPECT_EQ(apply_permutation(values, perm),
            (std::vector<int>{30, 10, 40, 20}));
}

TEST(InversePermutation, ComposesToIdentity) {
  const std::vector<std::uint32_t> perm{2, 0, 3, 1};
  const auto inv = inverse_permutation(perm);
  for (std::uint32_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[perm[i]], i);
  }
}

TEST(SortNeighborSublists, SortsEachRangeIndependently) {
  std::vector<std::size_t> index{0, 3, 5, 5, 8};
  std::vector<std::uint32_t> list{5, 1, 3, 9, 2, 7, 4, 6};
  sort_neighbor_sublists(index, list);
  EXPECT_EQ(list, (std::vector<std::uint32_t>{1, 3, 5, 2, 9, 4, 6, 7}));
}

TEST(FragmentedNeighborList, ReproducesPackedContents) {
  const Box box = Box::cubic(12.0);
  const auto points = random_points(box, 200, 17);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  NeighborList packed(box, cfg);
  packed.build(points);

  FragmentedNeighborList frag(packed);
  ASSERT_EQ(frag.atom_count(), packed.atom_count());
  for (std::size_t i = 0; i < packed.atom_count(); ++i) {
    const auto a = packed.neighbors(i);
    const auto b = frag.neighbors(i);
    ASSERT_EQ(a.size(), b.size()) << "atom " << i;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(FragmentedNeighborList, MemoryAtLeastPackedPayload) {
  const Box box = Box::cubic(12.0);
  const auto points = random_points(box, 200, 17);
  NeighborListConfig cfg;
  cfg.cutoff = 3.0;
  NeighborList packed(box, cfg);
  packed.build(points);
  FragmentedNeighborList frag(packed);
  EXPECT_GE(frag.memory_bytes(),
            packed.pair_count() * sizeof(std::uint32_t));
}

TEST(SpatialSort, ReorderedAtomsImproveNeighborLocality) {
  // After a spatial sort, neighbor indices should be closer to their host
  // atom's index on average than under a random ordering.
  const Box box = Box::cubic(18.0);
  auto points = random_points(box, 1200, 23);

  auto mean_distance = [&](const std::vector<Vec3>& pos) {
    NeighborListConfig cfg;
    cfg.cutoff = 3.0;
    NeighborList list(box, cfg);
    list.build(pos);
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < list.atom_count(); ++i) {
      for (std::uint32_t j : list.neighbors(i)) {
        total += std::abs(static_cast<double>(j) - static_cast<double>(i));
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };

  const double before = mean_distance(points);
  const auto perm = spatial_sort_permutation(box, points, 3.0);
  const auto sorted = apply_permutation(points, perm);
  const double after = mean_distance(sorted);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace sdcmd
