#include "analysis/rdf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "geom/lattice.hpp"

namespace sdcmd {
namespace {

TEST(Rdf, RejectsBadConstruction) {
  EXPECT_THROW(Rdf(0.0, 10), PreconditionError);
  EXPECT_THROW(Rdf(5.0, 0), PreconditionError);
}

TEST(Rdf, RejectsRmaxBeyondHalfBox) {
  Rdf rdf(6.0, 60);
  const Box box = Box::cubic(10.0);
  EXPECT_THROW(rdf.accumulate(box, std::vector<Vec3>{{1, 1, 1}}),
               PreconditionError);
}

TEST(Rdf, IdealGasIsFlatAroundOne) {
  const Box box = Box::cubic(20.0);
  Xoshiro256 rng(4);
  std::vector<Vec3> points(4000);
  for (auto& r : points) {
    r = {rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0),
         rng.uniform(0.0, 20.0)};
  }
  Rdf rdf(6.0, 30);
  rdf.accumulate(box, points);
  const auto g = rdf.g();
  const auto r = rdf.radii();
  // Skip the first couple of bins (tiny shells, noisy counts).
  for (std::size_t b = 5; b < g.size(); ++b) {
    EXPECT_NEAR(g[b], 1.0, 0.25) << "r=" << r[b];
  }
}

TEST(Rdf, BccShellsAppearAtTheRightRadii) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 6;
  const auto positions = build_lattice(spec);

  Rdf rdf(5.5, 220);  // 0.025 A bins
  rdf.accumulate(spec.box(), positions);
  const auto g = rdf.g();
  const auto r = rdf.radii();

  const double first_shell = spec.a0 * std::sqrt(3.0) / 2.0;   // 2.482
  const double second_shell = spec.a0;                          // 2.8665
  const double third_shell = spec.a0 * std::sqrt(2.0);          // 4.054

  auto g_at = [&](double radius) {
    std::size_t best = 0;
    for (std::size_t b = 1; b < r.size(); ++b) {
      if (std::abs(r[b] - radius) < std::abs(r[best] - radius)) best = b;
    }
    return g[best];
  };
  EXPECT_GT(g_at(first_shell), 10.0);
  EXPECT_GT(g_at(second_shell), 10.0);
  EXPECT_GT(g_at(third_shell), 10.0);
  // Void between the shells.
  EXPECT_NEAR(g_at(2.0), 0.0, 1e-9);
  EXPECT_NEAR(g_at(3.4), 0.0, 1e-9);
}

TEST(Rdf, CoordinationIntegralCountsBccShells) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 6;
  const auto positions = build_lattice(spec);

  Rdf rdf(4.5, 180);
  rdf.accumulate(spec.box(), positions);
  const auto n = rdf.coordination_integral();
  const auto r = rdf.radii();

  auto n_at = [&](double radius) {
    for (std::size_t b = 0; b < r.size(); ++b) {
      if (r[b] >= radius) return n[b];
    }
    return n.back();
  };
  EXPECT_NEAR(n_at(2.7), 8.0, 1e-9);    // after the first shell
  EXPECT_NEAR(n_at(3.3), 14.0, 1e-9);   // after the second shell
  EXPECT_NEAR(n_at(4.3), 26.0, 1e-9);   // after the third shell
}

TEST(Rdf, FramesAccumulateAndResetClears) {
  const Box box = Box::cubic(12.0);
  Xoshiro256 rng(9);
  std::vector<Vec3> points(100);
  for (auto& p : points) {
    p = {rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0),
         rng.uniform(0.0, 12.0)};
  }
  Rdf rdf(4.0, 20);
  rdf.accumulate(box, points);
  rdf.accumulate(box, points);
  EXPECT_EQ(rdf.frames(), 2u);
  rdf.reset();
  EXPECT_EQ(rdf.frames(), 0u);
  for (double v : rdf.g()) {
    EXPECT_EQ(v, 0.0);
  }
}

}  // namespace
}  // namespace sdcmd
