// Coverage for the remaining common utilities: logging levels, unit
// conversions, thread helpers, and the error machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/threads.hpp"
#include "common/units.hpp"

namespace sdcmd {
namespace {

TEST(Log, ParseLevelNamesCaseInsensitive) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::Warn);  // safe default
}

TEST(Log, SetAndGetThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
  // Emitting below the threshold must be a no-op (no crash, no output).
  SDCMD_ERROR("suppressed message");
  set_log_level(before);
}

TEST(Units, TimeConversionRoundTrips) {
  EXPECT_NEAR(units::internal_to_fs(units::fs_to_internal(1.0)), 1.0,
              1e-15);
  EXPECT_NEAR(units::fs_to_internal(units::kTimeUnitFs), 1.0, 1e-15);
  // The paper's 1e-17 s step is 0.01 fs.
  EXPECT_NEAR(units::fs_to_internal(0.01), 0.01 / 10.180505, 1e-12);
}

TEST(Units, DerivedTimeUnitIsConsistent) {
  // t* = sqrt(amu A^2 / eV) = 1.018e-14 s. Check against SI constants:
  // amu = 1.66053906660e-27 kg, eV = 1.602176634e-19 J, A = 1e-10 m.
  const double t_star =
      std::sqrt(1.66053906660e-27 * 1e-20 / 1.602176634e-19);  // seconds
  EXPECT_NEAR(t_star * 1e15, units::kTimeUnitFs, 1e-4);
}

TEST(Units, BoltzmannAndPressureConstants) {
  EXPECT_NEAR(units::kBoltzmann, 8.617333262e-5, 1e-12);
  // 1 eV/A^3 = 160.2 GPa.
  EXPECT_NEAR(units::kEvPerA3ToGPa, 160.21766208, 1e-6);
}

TEST(Threads, SetAndQueryThreadCount) {
  const int before = max_threads();
  set_threads(3);
  EXPECT_EQ(max_threads(), 3);
  set_threads(0);  // clamps to 1
  EXPECT_EQ(max_threads(), 1);
  set_threads(before);
}

TEST(Threads, ThreadIdIsZeroOutsideParallelRegions) {
  EXPECT_EQ(thread_id(), 0);
}

TEST(Threads, HardwareThreadsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

TEST(Threads, SummaryMentionsCounts) {
  const std::string s = thread_summary();
  EXPECT_NE(s.find("thread"), std::string::npos);
}

TEST(Threads, PinningIsBestEffort) {
  // Must not crash; success depends on the platform/container.
  (void)pin_current_thread(0);
  (void)pin_openmp_threads_round_robin();
  SUCCEED();
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    SDCMD_REQUIRE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
    EXPECT_NE(what.find("test_common_misc.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw InfeasibleError("x"), Error);
  EXPECT_THROW(throw PreconditionError("x"), Error);
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

}  // namespace
}  // namespace sdcmd
