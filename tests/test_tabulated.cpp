#include "potential/tabulated.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/johnson.hpp"

namespace sdcmd {
namespace {

TEST(TabulatedEam, FromAnalyticPreservesCutoff) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const auto tab = TabulatedEam::from_analytic(fe, 2000, 2000, 60.0);
  EXPECT_DOUBLE_EQ(tab.cutoff(), fe.cutoff());
}

TEST(TabulatedEam, MatchesAnalyticFinnisSinclair) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const auto tab = TabulatedEam::from_analytic(fe, 4000, 4000, 60.0);
  for (double r = 1.8; r < fe.cutoff(); r += 0.013) {
    double va, da, vt, dt;
    fe.pair(r, va, da);
    tab.pair(r, vt, dt);
    EXPECT_NEAR(vt, va, 1e-8) << "pair at r=" << r;
    EXPECT_NEAR(dt, da, 1e-5) << "pair' at r=" << r;
    fe.density(r, va, da);
    tab.density(r, vt, dt);
    EXPECT_NEAR(vt, va, 1e-8) << "density at r=" << r;
  }
  for (double rho = 1.0; rho < 55.0; rho += 0.7) {
    double fa, da, ft, dt;
    fe.embed(rho, fa, da);
    tab.embed(rho, ft, dt);
    EXPECT_NEAR(ft, fa, 1e-7) << "embed at rho=" << rho;
    EXPECT_NEAR(dt, da, 1e-5) << "embed' at rho=" << rho;
  }
}

TEST(TabulatedEam, MatchesAnalyticJohnson) {
  JohnsonEam cu(JohnsonParams::copper());
  const auto tab = TabulatedEam::from_analytic(cu, 4000, 4000, 40.0);
  for (double r = 2.0; r < cu.cutoff(); r += 0.017) {
    double va, da, vt, dt;
    cu.pair(r, va, da);
    tab.pair(r, vt, dt);
    EXPECT_NEAR(vt, va, 1e-7) << "pair at r=" << r;
  }
}

TEST(TabulatedEam, BeyondCutoffIsZero) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const auto tab = TabulatedEam::from_analytic(fe, 500, 500, 60.0);
  double v, d;
  tab.pair(fe.cutoff() + 0.5, v, d);
  EXPECT_EQ(v, 0.0);
  EXPECT_EQ(d, 0.0);
  tab.density(fe.cutoff() + 0.5, v, d);
  EXPECT_EQ(v, 0.0);
}

TEST(TabulatedEam, NameCarriesProvenance) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const auto tab = TabulatedEam::from_analytic(fe, 100, 100, 60.0);
  EXPECT_EQ(tab.name(), "tabulated-finnis-sinclair-fe");
}

TEST(TabulatedEam, ValidatesTables) {
  EamTables t;
  t.dr = 0.0;
  t.drho = 0.1;
  t.cutoff = 3.0;
  t.pair = {0.0, 1.0};
  t.density = {0.0, 1.0};
  t.embed = {0.0, 1.0};
  EXPECT_THROW(TabulatedEam{t}, PreconditionError);
  t.dr = 0.1;
  t.embed = {0.0};
  EXPECT_THROW(TabulatedEam{t}, PreconditionError);
}

TEST(TabulatedEam, FromAnalyticRejectsDegenerateGrids) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  EXPECT_THROW(TabulatedEam::from_analytic(fe, 1, 100, 60.0),
               PreconditionError);
  EXPECT_THROW(TabulatedEam::from_analytic(fe, 100, 100, -1.0),
               PreconditionError);
}

}  // namespace
}  // namespace sdcmd
