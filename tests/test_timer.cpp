#include "common/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"

namespace sdcmd {
namespace {

TEST(WallTime, Monotonic) {
  const double a = wall_time();
  const double b = wall_time();
  EXPECT_GE(b, a);
}

TEST(Stopwatch, AccumulatesLaps) {
  Stopwatch w;
  w.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double lap = w.stop();
  EXPECT_GT(lap, 0.0);
  EXPECT_EQ(w.laps(), 1u);
  w.start();
  w.stop();
  EXPECT_EQ(w.laps(), 2u);
  EXPECT_GE(w.total(), lap);
}

TEST(Stopwatch, DoubleStartThrows) {
  Stopwatch w;
  w.start();
  EXPECT_THROW(w.start(), PreconditionError);
  w.stop();
}

TEST(Stopwatch, StopWithoutStartThrows) {
  Stopwatch w;
  EXPECT_THROW(w.stop(), PreconditionError);
}

TEST(Stopwatch, ResetClearsState) {
  Stopwatch w;
  w.start();
  w.stop();
  w.reset();
  EXPECT_EQ(w.total(), 0.0);
  EXPECT_EQ(w.laps(), 0u);
  EXPECT_FALSE(w.running());
}

TEST(ScopedTimer, TimesScope) {
  Stopwatch w;
  {
    ScopedTimer t(w);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(w.total(), 0.0);
  EXPECT_EQ(w.laps(), 1u);
  EXPECT_FALSE(w.running());
}

TEST(PhaseTimers, NamedPhasesPreserveInsertionOrder) {
  PhaseTimers timers;
  timers["density"].start();
  timers["density"].stop();
  timers["force"].start();
  timers["force"].stop();
  timers["density"].start();
  timers["density"].stop();

  const auto entries = timers.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "density");
  EXPECT_EQ(entries[0].laps, 2u);
  EXPECT_EQ(entries[1].name, "force");
  EXPECT_GE(timers.total(),
            entries[0].seconds + entries[1].seconds - 1e-12);
}

TEST(PhaseTimers, ResetZeroesAllPhases) {
  PhaseTimers timers;
  timers["a"].start();
  timers["a"].stop();
  timers.reset();
  EXPECT_EQ(timers.total(), 0.0);
  EXPECT_EQ(timers.entries()[0].laps, 0u);
}

}  // namespace
}  // namespace sdcmd
