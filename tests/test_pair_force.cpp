#include "core/pair_force.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "geom/lattice.hpp"
#include "potential/lennard_jones.hpp"

namespace sdcmd {
namespace {

constexpr double kSkin = 0.3;

struct Workload {
  Box box;
  std::vector<Vec3> positions;
  LennardJones potential{0.0103, 3.405, 7.0};
  std::unique_ptr<NeighborList> half;
  std::unique_ptr<NeighborList> full;

  Workload() : box(Box::cubic(30.0)) {
    // fcc argon-like crystal, lightly jittered
    LatticeSpec spec;
    spec.type = LatticeType::Fcc;
    spec.a0 = 5.0;
    spec.nx = spec.ny = spec.nz = 6;
    box = spec.box();
    positions = build_lattice(spec);
    Xoshiro256 rng(11);
    for (auto& r : positions) {
      r += Vec3{rng.normal(0.0, 0.05), rng.normal(0.0, 0.05),
                rng.normal(0.0, 0.05)};
      r = box.wrap(r);
    }
    NeighborListConfig cfg;
    cfg.cutoff = potential.cutoff();
    cfg.skin = kSkin;
    half = std::make_unique<NeighborList>(box, cfg);
    half->build(positions);
    cfg.mode = NeighborMode::Full;
    full = std::make_unique<NeighborList>(box, cfg);
    full->build(positions);
  }

  std::pair<std::vector<Vec3>, PairForceResult> run(
      ReductionStrategy strategy) {
    PairForceConfig cfg;
    cfg.strategy = strategy;
    PairForceComputer computer(potential, cfg);
    computer.attach_schedule(box, potential.cutoff() + kSkin);
    computer.on_neighbor_rebuild(positions);
    std::vector<Vec3> force(positions.size());
    const NeighborList& list =
        required_mode(strategy) == NeighborMode::Full ? *full : *half;
    const auto result = computer.compute(box, positions, list, force);
    return {std::move(force), result};
  }
};

class PairStrategyTest : public ::testing::TestWithParam<ReductionStrategy> {
};

TEST_P(PairStrategyTest, MatchesSerial) {
  Workload w;
  const auto [f_serial, r_serial] = w.run(ReductionStrategy::Serial);
  const auto [f_other, r_other] = w.run(GetParam());
  for (std::size_t i = 0; i < f_serial.size(); ++i) {
    EXPECT_NEAR(norm(f_serial[i] - f_other[i]), 0.0, 1e-10)
        << "atom " << i;
  }
  EXPECT_NEAR(r_serial.energy, r_other.energy,
              1e-10 * std::abs(r_serial.energy));
  EXPECT_NEAR(r_serial.virial, r_other.virial,
              1e-10 * std::max(1.0, std::abs(r_serial.virial)));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PairStrategyTest,
    ::testing::Values(ReductionStrategy::Critical, ReductionStrategy::Atomic,
                      ReductionStrategy::LockStriped,
                      ReductionStrategy::ArrayPrivatization,
                      ReductionStrategy::RedundantComputation,
                      ReductionStrategy::Sdc),
    [](const auto& info) { return to_string(info.param); });

TEST(PairForce, MatchesDirectDoubleSum) {
  Workload w;
  const auto [force, result] = w.run(ReductionStrategy::Serial);

  double energy = 0.0;
  std::vector<Vec3> expected(w.positions.size());
  for (std::size_t i = 0; i < w.positions.size(); ++i) {
    for (std::size_t j = i + 1; j < w.positions.size(); ++j) {
      const Vec3 dr = w.box.minimum_image(w.positions[i], w.positions[j]);
      const double r = norm(dr);
      if (r >= w.potential.cutoff()) continue;
      double v, dvdr;
      w.potential.evaluate(r, v, dvdr);
      energy += v;
      const Vec3 fv = (-dvdr / r) * dr;
      expected[i] += fv;
      expected[j] -= fv;
    }
  }
  EXPECT_NEAR(result.energy, energy, 1e-9 * std::abs(energy));
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(norm(expected[i] - force[i]), 0.0, 1e-10);
  }
}

TEST(PairForce, TotalForceVanishes) {
  Workload w;
  const auto [force, result] = w.run(ReductionStrategy::Sdc);
  Vec3 total{};
  for (const auto& f : force) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-9);
}

TEST(PairForce, CrystalBindsWithNegativeEnergy) {
  Workload w;
  const auto [force, result] = w.run(ReductionStrategy::Serial);
  EXPECT_LT(result.energy, 0.0);
}

TEST(PairForce, WrongModeThrows) {
  Workload w;
  PairForceConfig cfg;
  cfg.strategy = ReductionStrategy::RedundantComputation;
  PairForceComputer computer(w.potential, cfg);
  std::vector<Vec3> force(w.positions.size());
  EXPECT_THROW(computer.compute(w.box, w.positions, *w.half, force),
               PreconditionError);
}

TEST(PairForce, SdcRequiresSchedule) {
  Workload w;
  PairForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  PairForceComputer computer(w.potential, cfg);
  std::vector<Vec3> force(w.positions.size());
  EXPECT_THROW(computer.compute(w.box, w.positions, *w.half, force),
               PreconditionError);
}

}  // namespace
}  // namespace sdcmd
