#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sdcmd {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_option("steps", "100", "number of steps");
  cli.add_option("dt", "0.5", "time step");
  cli.add_option("threads", "2,4", "thread sweep");
  cli.add_flag("verbose", "talk more");
  return cli;
}

TEST(CliParser, DefaultsApply) {
  auto cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("steps"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("dt"), 0.5);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(CliParser, SpaceSeparatedValues) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--steps", "42", "--verbose"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("steps"), 42);
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(CliParser, EqualsSeparatedValues) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--dt=0.25", "--steps=7"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("dt"), 0.25);
  EXPECT_EQ(cli.get_int("steps"), 7);
}

TEST(CliParser, IntListParses) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--threads", "1,2,8,16"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int_list("threads"), (std::vector<int>{1, 2, 8, 16}));
}

TEST(CliParser, UnknownOptionFails) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(CliParser, MissingValueFails) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--steps"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, HelpShortCircuits) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, PositionalArgumentsCollected) {
  auto cli = make_parser();
  const char* argv[] = {"prog", "input.xyz", "--steps", "5", "out.xyz"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.positional(),
            (std::vector<std::string>{"input.xyz", "out.xyz"}));
}

TEST(CliParser, UndeclaredAccessThrows) {
  auto cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW(cli.get("nope"), PreconditionError);
}

TEST(CliParser, DuplicateDeclarationThrows) {
  CliParser cli("p", "d");
  cli.add_option("x", "1", "doc");
  EXPECT_THROW(cli.add_option("x", "2", "doc"), PreconditionError);
  EXPECT_THROW(cli.add_flag("x", "doc"), PreconditionError);
}

TEST(CliParser, UsageListsOptions) {
  auto cli = make_parser();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--steps"), std::string::npos);
  EXPECT_NE(usage.find("default: 100"), std::string::npos);
}

}  // namespace
}  // namespace sdcmd
