// Guardrail integration: fault injection -> health detection -> rollback
// recovery, plus crash-safe checkpoint behavior under injected short writes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "io/checkpoint.hpp"
#include "md/simulation.hpp"
#include "potential/finnis_sinclair.hpp"

namespace sdcmd {
namespace {

const FinnisSinclair& iron() {
  static FinnisSinclair fe{FinnisSinclairParams::iron()};
  return fe;
}

System make_system(int cells) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = cells;
  return System::from_lattice(spec, units::kMassFe);
}

SimulationConfig nve_config() {
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;
  return cfg;
}

GuardrailConfig rollback_guardrails(int cadence = 1,
                                    long checkpoint_every = 10) {
  GuardrailConfig guard;
  guard.health.cadence = cadence;
  guard.health.policy = HealthPolicy::Rollback;
  guard.checkpoint_every = checkpoint_every;
  return guard;
}

class GuardrailTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    saved_level_ = log_level();
    set_log_level(LogLevel::Error);  // rollback warnings are expected noise
  }
  void TearDown() override {
    set_log_level(saved_level_);
    FaultInjector::instance().disarm_all();
  }

 private:
  LogLevel saved_level_ = LogLevel::Info;
};

// The acceptance scenario: a NaN force injected mid-run is detected, the
// run rolls back to the last good checkpoint and still completes.
TEST_F(GuardrailTest, NanForceTriggersRollbackAndRunCompletes) {
  Simulation sim(make_system(4), iron(), nve_config());
  sim.set_guardrails(rollback_guardrails());
  const double dt0 = sim.config().dt;

  // Force evaluations: one at run() start, then one per step; countdown 12
  // poisons the evaluation inside step 12, after the step-10 snapshot.
  FaultSpec fault;
  fault.countdown = 12;
  fault.index = 5;
  FaultInjector::instance().arm(faults::kForceNan, fault);

  sim.run(50);

  EXPECT_EQ(sim.current_step(), 50);
  EXPECT_EQ(sim.rollback_count(), 1);
  EXPECT_EQ(FaultInjector::instance().fire_count(faults::kForceNan), 1);
  // The blowup recovery halved dt.
  EXPECT_DOUBLE_EQ(sim.config().dt, 0.5 * dt0);
  for (const Vec3& r : sim.system().atoms().position) {
    EXPECT_TRUE(std::isfinite(r.x) && std::isfinite(r.y) &&
                std::isfinite(r.z));
  }
}

TEST_F(GuardrailTest, PositionKickIsCaughtByForceCap) {
  Simulation sim(make_system(4), iron(), nve_config());
  GuardrailConfig guard = rollback_guardrails();
  // eV/A; T=0 lattice forces are ~0, while the kicked atom lands ~1.4 A
  // from a neighbor where |dV/dr| is a few eV/A.
  guard.health.max_force = 2.0;
  guard.halve_dt_on_rollback = false;
  sim.set_guardrails(guard);

  // Kick one atom 10 A sideways during step 13's drift: it lands ~1.4 A
  // from a lattice site, deep in the repulsive wall.
  FaultSpec fault;
  fault.countdown = 13;
  fault.magnitude = 10.0;
  FaultInjector::instance().arm(faults::kPositionKick, fault);

  sim.run(30);

  EXPECT_EQ(sim.current_step(), 30);
  EXPECT_GE(sim.rollback_count(), 1);
  EXPECT_DOUBLE_EQ(sim.config().dt, nve_config().dt);  // halving disabled
}

TEST_F(GuardrailTest, PersistentFaultExhaustsRollbackBudget) {
  Simulation sim(make_system(3), iron(), nve_config());
  GuardrailConfig guard = rollback_guardrails();
  guard.max_rollbacks = 2;
  sim.set_guardrails(guard);

  FaultSpec fault;
  fault.countdown = 3;  // let the baseline and first steps pass
  fault.shots = -1;     // then poison every evaluation forever
  FaultInjector::instance().arm(faults::kForceNan, fault);

  EXPECT_THROW(sim.run(50), HealthError);
  EXPECT_EQ(sim.rollback_count(), 2);
}

TEST_F(GuardrailTest, RollbackWithoutSnapshotThrows) {
  Simulation sim(make_system(3), iron(), nve_config());
  sim.set_guardrails(rollback_guardrails());
  // Poisoned from the very first evaluation: the baseline check fails
  // before any snapshot exists.
  FaultSpec fault;
  fault.shots = -1;
  FaultInjector::instance().arm(faults::kForceNan, fault);
  EXPECT_THROW(sim.run(10), HealthError);
  EXPECT_EQ(sim.rollback_count(), 0);
}

TEST_F(GuardrailTest, ThrowPolicyRaisesImmediately) {
  Simulation sim(make_system(3), iron(), nve_config());
  GuardrailConfig guard = rollback_guardrails();
  guard.health.policy = HealthPolicy::Throw;
  sim.set_guardrails(guard);
  FaultSpec fault;
  fault.countdown = 5;
  FaultInjector::instance().arm(faults::kForceNan, fault);
  EXPECT_THROW(sim.run(20), HealthError);
  EXPECT_EQ(sim.rollback_count(), 0);
}

TEST_F(GuardrailTest, WarnPolicyKeepsRunning) {
  Simulation sim(make_system(3), iron(), nve_config());
  GuardrailConfig guard = rollback_guardrails();
  guard.health.policy = HealthPolicy::Warn;
  sim.set_guardrails(guard);
  FaultSpec fault;
  fault.countdown = 5;
  FaultInjector::instance().arm(faults::kForceNan, fault);
  sim.run(20);  // no throw, no rollback; the damage just gets logged
  EXPECT_EQ(sim.current_step(), 20);
  EXPECT_EQ(sim.rollback_count(), 0);
  ASSERT_NE(sim.health_monitor(), nullptr);
  EXPECT_FALSE(sim.health_monitor()->last_report().ok());
}

TEST_F(GuardrailTest, HealthyGuardedRunMatchesPlainRun) {
  Simulation plain(make_system(4), iron(), nve_config());
  Simulation guarded(make_system(4), iron(), nve_config());
  plain.set_temperature(100.0, 11);
  guarded.set_temperature(100.0, 11);
  guarded.set_guardrails(rollback_guardrails(/*cadence=*/5));

  plain.run(40);
  guarded.run(40);

  EXPECT_EQ(guarded.rollback_count(), 0);
  const auto& xa = plain.system().atoms().position;
  const auto& xb = guarded.system().atoms().position;
  for (std::size_t i = 0; i < xa.size(); ++i) {
    EXPECT_EQ(xa[i], xb[i]) << "guardrails perturbed the trajectory at " << i;
  }
}

TEST_F(GuardrailTest, AutoCheckpointSinkReceivesGoodSnapshots) {
  Simulation sim(make_system(3), iron(), nve_config());
  GuardrailConfig guard = rollback_guardrails(/*cadence=*/5,
                                              /*checkpoint_every=*/10);
  int snapshots = 0;
  long last_step = -1;
  guard.checkpoint_sink = [&](const System&, long step) {
    ++snapshots;
    last_step = step;
  };
  sim.set_guardrails(guard);
  sim.run(40);
  // Baseline at step 0 plus steps 10, 20, 30, 40.
  EXPECT_EQ(snapshots, 5);
  EXPECT_EQ(last_step, 40);
}

TEST_F(GuardrailTest, ManualRollbackRestoresLastSnapshot) {
  Simulation sim(make_system(3), iron(), nve_config());
  EXPECT_FALSE(sim.rollback());  // no guardrails, no snapshot
  sim.set_guardrails(rollback_guardrails(/*cadence=*/5,
                                         /*checkpoint_every=*/15));
  sim.set_temperature(50.0, 3);
  sim.run(20);
  EXPECT_EQ(sim.current_step(), 20);
  EXPECT_TRUE(sim.rollback());
  EXPECT_EQ(sim.current_step(), 15);
  EXPECT_EQ(sim.rollback_count(), 0);  // manual rollback spends no budget
}

// The other acceptance scenario: a crash (short write) during checkpointing
// leaves the previous checkpoint intact and loadable with a valid checksum.
TEST_F(GuardrailTest, ShortWriteLeavesPreviousCheckpointIntact) {
  const std::string path = testing::TempDir() + "sdcmd_guard_ckpt.chk";
  const System good = make_system(3);
  save_checkpoint_file(path, good, 100);

  FaultSpec fault;
  fault.magnitude = 0.5;  // keep only half the payload
  FaultInjector::instance().arm(faults::kCheckpointShortWrite, fault);
  EXPECT_THROW(save_checkpoint_file(path, make_system(4), 200), Error);

  // The previous file still loads and passes its checksum.
  const Checkpoint restored = load_checkpoint_file(path);
  EXPECT_EQ(restored.step, 100);
  EXPECT_EQ(restored.system.size(), good.size());

  // The interrupted write is visible only as a truncated .tmp that is
  // rejected on load.
  EXPECT_THROW(load_checkpoint_file(path + ".tmp"), ParseError);

  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(GuardrailTest, GuardedRunWritesLoadableCheckpoints) {
  const std::string path = testing::TempDir() + "sdcmd_auto_ckpt.chk";
  Simulation sim(make_system(3), iron(), nve_config());
  GuardrailConfig guard = rollback_guardrails(/*cadence=*/5,
                                              /*checkpoint_every=*/10);
  guard.checkpoint_sink = [&path](const System& system, long step) {
    save_checkpoint_file(path, system, step);
  };
  sim.set_guardrails(guard);
  sim.set_temperature(100.0, 7);
  sim.run(30);

  const Checkpoint restored = load_checkpoint_file(path);
  EXPECT_EQ(restored.step, 30);
  EXPECT_EQ(restored.system.size(), sim.system().size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sdcmd
