#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "potential/lennard_jones.hpp"
#include "potential/morse.hpp"

namespace sdcmd {
namespace {

constexpr double kEps = 0.0103;   // argon-ish, eV
constexpr double kSigma = 3.405;  // angstrom
constexpr double kCut = 8.5;

/// Central finite difference of the pair energy.
double fd_derivative(const PairPotential& pot, double r, double h = 1e-6) {
  double ep, em, unused;
  pot.evaluate(r + h, ep, unused);
  pot.evaluate(r - h, em, unused);
  return (ep - em) / (2.0 * h);
}

TEST(LennardJones, MinimumAtTwoSixthSigma) {
  LennardJones lj(kEps, kSigma, kCut, /*shift=*/false);
  const double rmin = std::pow(2.0, 1.0 / 6.0) * kSigma;
  double e, dvdr;
  lj.evaluate(rmin, e, dvdr);
  EXPECT_NEAR(e, -kEps, 1e-12);
  EXPECT_NEAR(dvdr, 0.0, 1e-12);
}

TEST(LennardJones, ZeroCrossingAtSigma) {
  LennardJones lj(kEps, kSigma, kCut, /*shift=*/false);
  double e, dvdr;
  lj.evaluate(kSigma, e, dvdr);
  EXPECT_NEAR(e, 0.0, 1e-12);
}

TEST(LennardJones, ShiftZeroesEnergyAtCutoff) {
  LennardJones lj(kEps, kSigma, kCut, /*shift=*/true);
  double e, dvdr;
  lj.evaluate(kCut, e, dvdr);
  EXPECT_NEAR(e, 0.0, 1e-15);
}

TEST(LennardJones, ShiftDoesNotChangeForce) {
  LennardJones shifted(kEps, kSigma, kCut, true);
  LennardJones plain(kEps, kSigma, kCut, false);
  double es, ds, ep, dp;
  shifted.evaluate(3.8, es, ds);
  plain.evaluate(3.8, ep, dp);
  EXPECT_DOUBLE_EQ(ds, dp);
  EXPECT_NE(es, ep);
}

TEST(LennardJones, RejectsBadParameters) {
  EXPECT_THROW(LennardJones(-1.0, 1.0, 2.0), PreconditionError);
  EXPECT_THROW(LennardJones(1.0, 0.0, 2.0), PreconditionError);
  EXPECT_THROW(LennardJones(1.0, 1.0, -2.0), PreconditionError);
}

TEST(Morse, MinimumAtR0) {
  Morse morse(0.5, 1.4, 2.8, 8.0);
  double e, dvdr;
  morse.evaluate(2.8, e, dvdr);
  EXPECT_NEAR(dvdr, 0.0, 1e-12);
}

TEST(Morse, ShiftedToZeroAtCutoff) {
  Morse morse(0.5, 1.4, 2.8, 8.0);
  double e, dvdr;
  morse.evaluate(8.0, e, dvdr);
  EXPECT_NEAR(e, 0.0, 1e-15);
}

TEST(Morse, RejectsCutoffInsideWell) {
  EXPECT_THROW(Morse(0.5, 1.4, 2.8, 2.0), PreconditionError);
}

// Property sweep: analytic derivative must match finite differences over
// the whole interaction range, for both potentials.
class PairDerivativeTest : public ::testing::TestWithParam<double> {};

TEST_P(PairDerivativeTest, LennardJonesDerivativeMatchesFd) {
  LennardJones lj(kEps, kSigma, kCut);
  const double r = GetParam();
  double e, dvdr;
  lj.evaluate(r, e, dvdr);
  EXPECT_NEAR(dvdr, fd_derivative(lj, r), 1e-6 * std::max(1.0, std::abs(dvdr)));
}

TEST_P(PairDerivativeTest, MorseDerivativeMatchesFd) {
  Morse morse(0.5, 1.4, 2.8, 8.0);
  const double r = GetParam();
  double e, dvdr;
  morse.evaluate(r, e, dvdr);
  EXPECT_NEAR(dvdr, fd_derivative(morse, r),
              1e-6 * std::max(1.0, std::abs(dvdr)));
}

INSTANTIATE_TEST_SUITE_P(RadialSweep, PairDerivativeTest,
                         ::testing::Values(3.1, 3.405, 3.6, 3.82, 4.2, 5.0,
                                           6.0, 7.0, 8.0));

}  // namespace
}  // namespace sdcmd
