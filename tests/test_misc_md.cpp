// Morton ordering, thermo logging, slab (free-surface) geometry, and the
// virial-vs-finite-volume property test.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/random.hpp"
#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "md/simulation.hpp"
#include "md/thermo_log.hpp"
#include "neighbor/reorder.hpp"
#include "potential/finnis_sinclair.hpp"

namespace sdcmd {
namespace {

TEST(Morton, EncodeInterleavesBits) {
  EXPECT_EQ(morton_encode(0, 0, 0), 0u);
  EXPECT_EQ(morton_encode(1, 0, 0), 0b001u);
  EXPECT_EQ(morton_encode(0, 1, 0), 0b010u);
  EXPECT_EQ(morton_encode(0, 0, 1), 0b100u);
  EXPECT_EQ(morton_encode(3, 0, 0), 0b001001u);
  EXPECT_EQ(morton_encode(0, 3, 3), 0b110110u);
  EXPECT_EQ(morton_encode(7, 7, 7), 0b111111111u);
}

TEST(Morton, EncodeIsMonotoneInEachCoordinateAtOrigin) {
  EXPECT_LT(morton_encode(1, 0, 0), morton_encode(2, 0, 0));
  EXPECT_LT(morton_encode(0, 1, 0), morton_encode(0, 2, 0));
}

TEST(Morton, PermutationIsBijective) {
  const Box box = Box::cubic(16.0);
  Xoshiro256 rng(6);
  std::vector<Vec3> points(500);
  for (auto& p : points) {
    p = {rng.uniform(0.0, 16.0), rng.uniform(0.0, 16.0),
         rng.uniform(0.0, 16.0)};
  }
  const auto perm = morton_sort_permutation(box, points, 2.0);
  std::set<std::uint32_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), points.size());
}

TEST(Morton, ImprovesNeighborLocalityLikeCellSort) {
  const Box box = Box::cubic(18.0);
  Xoshiro256 rng(23);
  std::vector<Vec3> points(1500);
  for (auto& p : points) {
    p = {rng.uniform(0.0, 18.0), rng.uniform(0.0, 18.0),
         rng.uniform(0.0, 18.0)};
  }
  auto mean_index_distance = [&](const std::vector<Vec3>& pos) {
    NeighborListConfig cfg;
    cfg.cutoff = 3.0;
    NeighborList list(box, cfg);
    list.build(pos);
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < list.atom_count(); ++i) {
      for (std::uint32_t j : list.neighbors(i)) {
        total += std::abs(static_cast<double>(j) - static_cast<double>(i));
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };
  const double before = mean_index_distance(points);
  const auto perm = morton_sort_permutation(box, points, 3.0);
  const double after = mean_index_distance(apply_permutation(points, perm));
  EXPECT_LT(after, before);
}

TEST(ThermoLog, RecordsAndSummarizes) {
  ThermoLog log;
  for (int i = 0; i < 5; ++i) {
    ThermoSample s;
    s.step = i;
    s.temperature = 300.0 + i;
    s.kinetic_energy = 1.0;
    s.pair_energy = -10.0 + 0.1 * i;  // drifting energy
    log.record(s);
  }
  EXPECT_EQ(log.size(), 5u);
  EXPECT_NEAR(log.max_energy_drift(), 0.4, 1e-12);
  EXPECT_NEAR(log.temperature_stats().mean(), 302.0, 1e-12);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.max_energy_drift(), 0.0);
}

TEST(ThermoLog, WritesCsv) {
  ThermoLog log;
  ThermoSample s;
  s.step = 7;
  s.temperature = 123.0;
  log.record(s);
  const std::string path = testing::TempDir() + "sdcmd_thermo.csv";
  ASSERT_TRUE(log.write_csv(path));
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header,
            "step,temperature,kinetic,pair,embedding,total,pressure");
  EXPECT_EQ(row.rfind("7,123.0000", 0), 0u);
  std::remove(path.c_str());
  EXPECT_FALSE(log.write_csv("/nonexistent-dir/x.csv"));
}

TEST(Slab, FreeSurfacesRelaxAndRaiseEnergy) {
  // A slab: periodic in x/y, free surfaces in z (box padded with vacuum).
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = 5;
  spec.nz = 4;
  auto positions = build_lattice(spec);
  const Box box({0, 0, -3 * spec.a0},
                {5 * spec.a0, 5 * spec.a0, 7 * spec.a0},
                {true, true, false});

  FinnisSinclair iron(FinnisSinclairParams::iron());
  System bulk_ref = System::from_lattice(spec, units::kMassFe);
  System slab(box, Atoms(std::move(positions)), units::kMassFe);

  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;

  Simulation bulk_sim(std::move(bulk_ref), iron, cfg);
  Simulation slab_sim(std::move(slab), iron, cfg);
  bulk_sim.compute_forces();
  slab_sim.compute_forces();

  const double e_bulk = bulk_sim.sample().potential_energy() /
                        static_cast<double>(bulk_sim.system().size());
  const double e_slab = slab_sim.sample().potential_energy() /
                        static_cast<double>(slab_sim.system().size());
  // Surface atoms are under-coordinated: higher (less negative) energy.
  EXPECT_GT(e_slab, e_bulk + 0.01);

  // Surface atoms feel a net force (into the slab); interior ones do not.
  double max_surface_force = 0.0;
  for (std::size_t i = 0; i < slab_sim.system().size(); ++i) {
    max_surface_force = std::max(
        max_surface_force, norm(slab_sim.system().atoms().force[i]));
  }
  EXPECT_GT(max_surface_force, 0.01);

  // Short quenched relaxation must lower the potential energy.
  slab_sim.set_thermostat(std::make_unique<BerendsenThermostat>(1.0, 0.02));
  slab_sim.run(100);
  EXPECT_LT(slab_sim.sample().potential_energy() /
                static_cast<double>(slab_sim.system().size()),
            e_slab);
}

TEST(Virial, MatchesFiniteVolumeDerivativeOfEnergy) {
  // P_virial = -dE/dV at zero temperature. Scale the box (and positions)
  // isotropically and compare the measured virial pressure with the
  // finite-difference derivative of the total energy.
  FinnisSinclair iron(FinnisSinclairParams::iron());
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe * 1.01;  // slightly strained: nonzero P
  spec.nx = spec.ny = spec.nz = 4;

  auto energy_and_pressure = [&](double scale, double& pressure) {
    LatticeSpec s = spec;
    s.a0 = spec.a0 * scale;
    System system = System::from_lattice(s, units::kMassFe);
    NeighborListConfig nl;
    nl.cutoff = iron.cutoff();
    nl.skin = 0.3;
    NeighborList list(system.box(), nl);
    list.build(system.atoms().position);
    EamForceConfig cfg;
    cfg.strategy = ReductionStrategy::Serial;
    EamForceComputer computer(iron, cfg);
    Atoms& atoms = system.atoms();
    const auto result = computer.compute(system.box(), atoms.position,
                                         list, atoms.rho, atoms.fp,
                                         atoms.force);
    pressure = result.virial / (3.0 * system.box().volume());
    return result.total_energy();
  };

  double p_mid, unused;
  const double e_mid = energy_and_pressure(1.0, p_mid);
  (void)e_mid;
  const double h = 1e-5;
  const double e_plus = energy_and_pressure(1.0 + h, unused);
  const double e_minus = energy_and_pressure(1.0 - h, unused);

  const double v0 = std::pow(spec.a0 * 4, 3);
  // dV = 3 V dh for isotropic scale change (1+h)^3 V.
  const double fd_pressure = -(e_plus - e_minus) / (2.0 * h * 3.0 * v0);
  EXPECT_NEAR(p_mid, fd_pressure, 1e-5 * std::max(1.0, std::abs(p_mid)));
}

}  // namespace
}  // namespace sdcmd
