// The generic colored scatter engine applied to a non-MD problem: local
// mass smoothing over a random point cloud. Every point scatters a share of
// its mass to neighbors within the interaction range - the same irregular
// reduction shape as the EAM density loop, with none of the MD machinery.
#include "core/colored_reduction.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "neighbor/neighbor_list.hpp"

namespace sdcmd {
namespace {

constexpr double kRange = 2.5;

struct Cloud {
  Box box = Box::cubic(20.0);
  std::vector<Vec3> points;
  std::vector<double> mass;
  std::unique_ptr<NeighborList> list;

  explicit Cloud(std::size_t n, std::uint64_t seed = 31) {
    Xoshiro256 rng(seed);
    points.resize(n);
    mass.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      points[i] = {rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0),
                   rng.uniform(0.0, 20.0)};
      mass[i] = rng.uniform(0.5, 2.0);
    }
    NeighborListConfig cfg;
    cfg.cutoff = kRange;
    cfg.skin = 0.0;
    list = std::make_unique<NeighborList>(box, cfg);
    list->build(points);
  }

  /// One smoothing sweep: every pair exchanges 1% of its mass difference.
  /// Returns the new mass vector. `parallel` selects the colored engine.
  std::vector<double> smooth(bool parallel) const {
    std::vector<double> out = mass;
    SdcConfig cfg;
    cfg.dimensionality = 3;
    ColoredScatterEngine engine(box, kRange, cfg);
    engine.rebuild(points);
    auto body = [&](std::size_t i) {
      for (std::uint32_t j : list->neighbors(i)) {
        const double flow = 0.01 * (out[i] - out[j]);
        out[i] -= flow;
        out[j] += flow;
      }
    };
    if (parallel) {
      engine.for_each_point_colored(body);
    } else {
      engine.for_each_point_serial(body);
    }
    return out;
  }
};

TEST(ColoredScatterEngine, ParallelMatchesSerialSweepExactly) {
  Cloud cloud(600);
  const auto serial = cloud.smooth(false);
  const auto parallel = cloud.smooth(true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Identical slot order within each subdomain -> bitwise equality,
    // modulo cross-subdomain ordering. Each point is processed once in
    // both sweeps and scatter order within a point is fixed, so values
    // agree to round-off of the differing outer order.
    EXPECT_NEAR(serial[i], parallel[i], 1e-12) << "point " << i;
  }
}

TEST(ColoredScatterEngine, MassIsConservedByTheParallelSweep) {
  Cloud cloud(600);
  const auto after = cloud.smooth(true);
  double before_total = 0.0, after_total = 0.0;
  for (std::size_t i = 0; i < cloud.mass.size(); ++i) {
    before_total += cloud.mass[i];
    after_total += after[i];
  }
  EXPECT_NEAR(before_total, after_total, 1e-9);
}

TEST(ColoredScatterEngine, DeterministicAcrossRuns) {
  Cloud cloud(600);
  const auto a = cloud.smooth(true);
  const auto b = cloud.smooth(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(ColoredScatterEngine, VisitsEveryPointExactlyOnce) {
  Cloud cloud(200);
  SdcConfig cfg;
  cfg.dimensionality = 2;
  ColoredScatterEngine engine(cloud.box, kRange, cfg);
  engine.rebuild(cloud.points);
  std::vector<int> visits(cloud.points.size(), 0);
  engine.for_each_point_colored([&](std::size_t i) {
#pragma omp atomic
    ++visits[i];
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], 1) << "point " << i;
  }
}

TEST(ColoredScatterEngine, RequiresRebuildBeforeSweep) {
  Cloud cloud(50);
  SdcConfig cfg;
  cfg.dimensionality = 1;
  ColoredScatterEngine engine(cloud.box, kRange, cfg);
  EXPECT_THROW(engine.for_each_point_colored([](std::size_t) {}),
               PreconditionError);
}

TEST(ColoredScatterEngine, InfeasibleBoxThrows) {
  SdcConfig cfg;
  cfg.dimensionality = 3;
  EXPECT_THROW(ColoredScatterEngine(Box::cubic(6.0), kRange, cfg),
               InfeasibleError);
}

}  // namespace
}  // namespace sdcmd
