#include "md/dump.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace sdcmd {
namespace {

System small_system() {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 2;
  return System::from_lattice(spec, units::kMassFe);
}

TEST(Xyz, HeaderHasCountAndLattice) {
  const System system = small_system();
  std::ostringstream os;
  write_xyz(os, system, "Fe", "step=0");
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "16");
  std::getline(is, line);
  EXPECT_NE(line.find("Lattice="), std::string::npos);
  EXPECT_NE(line.find("step=0"), std::string::npos);
}

TEST(Xyz, OneLinePerAtomWithSpecies) {
  const System system = small_system();
  std::ostringstream os;
  write_xyz(os, system);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  std::getline(is, line);
  std::size_t atoms = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(line.rfind("Fe ", 0), 0u);
    std::istringstream fields(line);
    std::string species;
    double x, y, z;
    EXPECT_TRUE(static_cast<bool>(fields >> species >> x >> y >> z));
    ++atoms;
  }
  EXPECT_EQ(atoms, system.size());
}

TEST(LammpsDump, SectionsAndAtomLines) {
  const System system = small_system();
  std::ostringstream os;
  write_lammps_dump(os, system, 42);
  const std::string out = os.str();
  EXPECT_NE(out.find("ITEM: TIMESTEP\n42"), std::string::npos);
  EXPECT_NE(out.find("ITEM: NUMBER OF ATOMS\n16"), std::string::npos);
  EXPECT_NE(out.find("ITEM: BOX BOUNDS pp pp pp"), std::string::npos);
  EXPECT_NE(out.find("ITEM: ATOMS id x y z vx vy vz"), std::string::npos);
}

TEST(LammpsDump, AtomIdsAreOneBased) {
  const System system = small_system();
  std::ostringstream os;
  write_lammps_dump(os, system, 0);
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("ITEM: ATOMS", 0) == 0) break;
  }
  std::getline(is, line);
  std::istringstream fields(line);
  int id;
  fields >> id;
  EXPECT_EQ(id, 1);
}

TEST(DumpFiles, AppendAccumulatesFrames) {
  const System system = small_system();
  const std::string path = testing::TempDir() + "sdcmd_dump_test.xyz";
  std::remove(path.c_str());
  append_xyz_file(path, system);
  append_xyz_file(path, system);
  std::ifstream in(path);
  std::string line;
  int frames = 0;
  while (std::getline(in, line)) {
    if (line == "16") ++frames;
  }
  EXPECT_EQ(frames, 2);
  std::remove(path.c_str());
}

TEST(DumpFiles, UnwritablePathThrows) {
  const System system = small_system();
  EXPECT_THROW(append_xyz_file("/nonexistent-dir/x.xyz", system), Error);
  EXPECT_THROW(append_lammps_dump_file("/nonexistent-dir/x.dump", system, 0),
               Error);
}

}  // namespace
}  // namespace sdcmd
