// The umbrella header must compile standalone and expose the whole API.
#include "sdcmd.hpp"

#include <gtest/gtest.h>

namespace sdcmd {
namespace {

TEST(Umbrella, EndToEndThroughTheSingleInclude) {
  LatticeSpec lattice;
  lattice.type = LatticeType::Bcc;
  lattice.a0 = units::kLatticeFe;
  lattice.nx = lattice.ny = lattice.nz = 4;

  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig config;
  config.dt = units::fs_to_internal(1.0);
  config.force.strategy = ReductionStrategy::Serial;

  Simulation sim(System::from_lattice(lattice, units::kMassFe), iron,
                 config);
  sim.set_temperature(100.0, 1);
  sim.run(5);
  EXPECT_EQ(sim.current_step(), 5);
  EXPECT_LT(sim.sample().potential_energy(), 0.0);
}

}  // namespace
}  // namespace sdcmd
