// HealthMonitor invariant checks in isolation (no Simulation driver).
#include "md/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/units.hpp"

namespace sdcmd {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

System small_system() {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 2;
  return System::from_lattice(spec, units::kMassFe);
}

HealthConfig all_checks() {
  HealthConfig cfg;
  cfg.cadence = 1;
  cfg.ke_spike_ratio = 10.0;
  cfg.displacement_skin_fraction = 1.0;
  cfg.max_force = 100.0;
  return cfg;
}

TEST(HealthMonitor, HealthySystemPasses) {
  System system = small_system();
  HealthMonitor monitor(all_checks());
  const HealthReport report =
      monitor.check(system, EamForceResult{}, 0, 1e-3, 0.4);
  EXPECT_TRUE(report.ok());
  EXPECT_NE(report.summary().find("healthy"), std::string::npos);
}

TEST(HealthMonitor, DetectsNonFiniteState) {
  System system = small_system();
  system.atoms().position[3].y = kNan;
  system.atoms().velocity[5].z = kNan;
  system.atoms().force[1].x = kNan;
  HealthMonitor monitor(all_checks());
  const HealthReport report =
      monitor.check(system, EamForceResult{}, 7, 1e-3, 0.4);
  ASSERT_EQ(report.issues.size(), 3u);
  EXPECT_EQ(report.issues[0].check, "finite-position");
  EXPECT_EQ(report.issues[1].check, "finite-velocity");
  EXPECT_EQ(report.issues[2].check, "finite-force");
  EXPECT_NE(report.summary().find("position[3]"), std::string::npos);
  EXPECT_EQ(report.step, 7);
}

TEST(HealthMonitor, DetectsNonFiniteEnergies) {
  System system = small_system();
  EamForceResult last;
  last.pair_energy = kNan;
  HealthMonitor monitor(all_checks());
  const HealthReport report = monitor.check(system, last, 0, 1e-3, 0.4);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].check, "finite-energy");
}

TEST(HealthMonitor, DetectsKineticEnergySpike) {
  System system = small_system();
  for (auto& v : system.atoms().velocity) v = {0.01, 0.0, 0.0};
  HealthMonitor monitor(all_checks());
  EXPECT_TRUE(
      monitor.check(system, EamForceResult{}, 0, 1e-3, 0.4).ok());

  // 100x velocity = 10000x kinetic energy, far over the 10x ratio.
  for (auto& v : system.atoms().velocity) v = {1.0, 0.0, 0.0};
  const HealthReport report =
      monitor.check(system, EamForceResult{}, 1, 1e-3, 0.4);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].check, "ke-spike");

  // After reset_baseline the same state is a fresh baseline, not a spike.
  monitor.reset_baseline();
  EXPECT_TRUE(
      monitor.check(system, EamForceResult{}, 2, 1e-3, 0.4).ok());
}

TEST(HealthMonitor, ColdStartIsNotASpike) {
  // Baseline below ke_floor: warming up from ~0 K must not trip the check.
  System system = small_system();
  HealthMonitor monitor(all_checks());
  EXPECT_TRUE(monitor.check(system, EamForceResult{}, 0, 1e-3, 0.4).ok());
  for (auto& v : system.atoms().velocity) v = {0.05, 0.0, 0.0};
  EXPECT_TRUE(monitor.check(system, EamForceResult{}, 1, 1e-3, 0.4).ok());
}

TEST(HealthMonitor, DetectsRunawayDisplacement) {
  System system = small_system();
  system.atoms().velocity[0] = {500.0, 0.0, 0.0};  // A per time unit
  HealthConfig cfg = all_checks();
  cfg.ke_spike_ratio = 0.0;  // isolate the displacement check
  HealthMonitor monitor(cfg);
  // 500 * 0.01 = 5 A per step >> 0.4 A skin.
  const HealthReport report =
      monitor.check(system, EamForceResult{}, 0, 0.01, 0.4);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].check, "displacement");
}

TEST(HealthMonitor, DetectsForceCapViolation) {
  System system = small_system();
  system.atoms().force[2] = {150.0, 0.0, 0.0};
  HealthMonitor monitor(all_checks());
  const HealthReport report =
      monitor.check(system, EamForceResult{}, 0, 1e-3, 0.4);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].check, "force-cap");
}

TEST(HealthMonitor, DisabledChecksStaySilent) {
  System system = small_system();
  system.atoms().force[2] = {1e9, 0.0, 0.0};
  system.atoms().velocity[0] = {1e6, 0.0, 0.0};
  HealthConfig cfg;
  cfg.ke_spike_ratio = 0.0;
  cfg.displacement_skin_fraction = 0.0;
  cfg.max_force = 0.0;
  HealthMonitor monitor(cfg);
  EXPECT_TRUE(monitor.check(system, EamForceResult{}, 0, 1e-3, 0.4).ok());
}

TEST(HealthMonitor, CadenceControlsDue) {
  HealthConfig cfg;
  cfg.cadence = 25;
  HealthMonitor monitor(cfg);
  EXPECT_TRUE(monitor.due(0));
  EXPECT_FALSE(monitor.due(24));
  EXPECT_TRUE(monitor.due(25));
  EXPECT_TRUE(monitor.due(50));

  HealthConfig degenerate;
  degenerate.cadence = -3;  // clamped to every step
  EXPECT_TRUE(HealthMonitor(degenerate).due(17));
}

}  // namespace
}  // namespace sdcmd
