#include "md/deform.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace sdcmd {
namespace {

System unit_system() {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 3;
  return System::from_lattice(spec, units::kMassFe);
}

TEST(BoxDeformer, UniaxialStretchesOneAxis) {
  System system = unit_system();
  const double lx0 = system.box().length(0);
  const double ly0 = system.box().length(1);
  auto deformer = BoxDeformer::uniaxial(0, 0.01);
  deformer.apply(system);
  EXPECT_NEAR(system.box().length(0), lx0 * 1.01, 1e-12);
  EXPECT_DOUBLE_EQ(system.box().length(1), ly0);
}

TEST(BoxDeformer, PositionsFollowAffinely) {
  System system = unit_system();
  const Vec3 before = system.atoms().position[10];
  const double lx0 = system.box().length(0);
  auto deformer = BoxDeformer::uniaxial(0, 0.05);
  deformer.apply(system);
  const Vec3 after = system.atoms().position[10];
  EXPECT_NEAR(after.x, before.x * 1.05, 1e-10 * lx0);
  EXPECT_DOUBLE_EQ(after.y, before.y);
  EXPECT_DOUBLE_EQ(after.z, before.z);
}

TEST(BoxDeformer, StrainAccumulatesMultiplicatively) {
  System system = unit_system();
  auto deformer = BoxDeformer::uniaxial(2, 0.01);
  for (int i = 0; i < 10; ++i) deformer.apply(system);
  EXPECT_NEAR(deformer.accumulated_strain().z,
              std::pow(1.01, 10) - 1.0, 1e-12);
  EXPECT_EQ(deformer.accumulated_strain().x, 0.0);
}

TEST(BoxDeformer, CompressionShrinksBox) {
  System system = unit_system();
  const double lx0 = system.box().length(0);
  BoxDeformer deformer({-0.02, 0.0, 0.0});
  deformer.apply(system);
  EXPECT_NEAR(system.box().length(0), lx0 * 0.98, 1e-12);
}

TEST(BoxDeformer, RejectsBoxInversion) {
  EXPECT_THROW(BoxDeformer({-1.5, 0.0, 0.0}), PreconditionError);
  EXPECT_THROW(BoxDeformer::uniaxial(3, 0.01), PreconditionError);
}

TEST(BoxDeformer, VolumeChangesConsistently) {
  System system = unit_system();
  const double v0 = system.box().volume();
  BoxDeformer deformer({0.1, 0.1, 0.1});
  deformer.apply(system);
  EXPECT_NEAR(system.box().volume(), v0 * 1.331, 1e-9 * v0);
}

}  // namespace
}  // namespace sdcmd
