#include "md/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace sdcmd {
namespace {

TEST(VelocityVerlet, RejectsBadParameters) {
  EXPECT_THROW(VelocityVerlet(0.0, 1.0), PreconditionError);
  EXPECT_THROW(VelocityVerlet(0.1, -1.0), PreconditionError);
}

TEST(VelocityVerlet, FreeParticleMovesUniformly) {
  VelocityVerlet vv(0.1, 2.0);
  std::vector<Vec3> x{{0, 0, 0}};
  std::vector<Vec3> v{{1.0, -2.0, 0.5}};
  std::vector<Vec3> f{{0, 0, 0}};
  for (int s = 0; s < 10; ++s) {
    vv.kick_drift(x, v, f);
    vv.kick(v, f);
  }
  EXPECT_NEAR(x[0].x, 1.0, 1e-12);
  EXPECT_NEAR(x[0].y, -2.0, 1e-12);
  EXPECT_NEAR(x[0].z, 0.5, 1e-12);
  EXPECT_NEAR(v[0].x, 1.0, 1e-12);
}

TEST(VelocityVerlet, ConstantForceKinematics) {
  // x(t) = x0 + v0 t + 1/2 (f/m) t^2 is exact for velocity Verlet.
  const double dt = 0.05, mass = 2.0;
  VelocityVerlet vv(dt, mass);
  std::vector<Vec3> x{{0, 0, 0}};
  std::vector<Vec3> v{{0, 0, 0}};
  std::vector<Vec3> f{{4.0, 0, 0}};  // a = 2
  const int steps = 20;
  for (int s = 0; s < steps; ++s) {
    vv.kick_drift(x, v, f);
    vv.kick(v, f);
  }
  const double t = steps * dt;
  EXPECT_NEAR(x[0].x, 0.5 * 2.0 * t * t, 1e-12);
  EXPECT_NEAR(v[0].x, 2.0 * t, 1e-12);
}

TEST(VelocityVerlet, HarmonicOscillatorConservesEnergy) {
  // Single particle on a spring: k = 1, m = 1, x0 = 1.
  const double dt = 0.01;
  VelocityVerlet vv(dt, 1.0);
  std::vector<Vec3> x{{1.0, 0, 0}};
  std::vector<Vec3> v{{0, 0, 0}};
  std::vector<Vec3> f{{-x[0].x, 0, 0}};

  auto energy = [&] {
    return 0.5 * norm2(v[0]) + 0.5 * norm2(x[0]);
  };
  const double e0 = energy();
  for (int s = 0; s < 5000; ++s) {
    vv.kick_drift(x, v, f);
    f[0] = -x[0];  // recompute force at the new position
    vv.kick(v, f);
  }
  EXPECT_NEAR(energy(), e0, 1e-5);
  // Position should still be on the unit-amplitude orbit.
  EXPECT_LE(std::abs(x[0].x), 1.0 + 1e-4);
}

TEST(VelocityVerlet, HarmonicOscillatorPhaseAccuracy) {
  // After one period T = 2*pi the particle returns to the start with
  // O(dt^2) error.
  const double dt = 0.001;
  VelocityVerlet vv(dt, 1.0);
  std::vector<Vec3> x{{1.0, 0, 0}};
  std::vector<Vec3> v{{0, 0, 0}};
  std::vector<Vec3> f{{-1.0, 0, 0}};
  const auto steps = static_cast<int>(std::lround(2.0 * M_PI / dt));
  for (int s = 0; s < steps; ++s) {
    vv.kick_drift(x, v, f);
    f[0] = -x[0];
    vv.kick(v, f);
  }
  EXPECT_NEAR(x[0].x, 1.0, 1e-3);
  EXPECT_NEAR(v[0].x, 0.0, 1e-3);
}

}  // namespace
}  // namespace sdcmd
