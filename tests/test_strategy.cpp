#include "core/strategy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sdcmd {
namespace {

TEST(Strategy, ToStringFromStringRoundTrip) {
  for (ReductionStrategy s : kAllStrategies) {
    EXPECT_EQ(parse_strategy(to_string(s)), s);
  }
}

TEST(Strategy, ParsesAliases) {
  EXPECT_EQ(parse_strategy("CS"), ReductionStrategy::Critical);
  EXPECT_EQ(parse_strategy("lock-striped"), ReductionStrategy::LockStriped);
  EXPECT_EQ(parse_strategy("striped-locks"), ReductionStrategy::LockStriped);
  EXPECT_EQ(parse_strategy("privatization"),
            ReductionStrategy::ArrayPrivatization);
  EXPECT_EQ(parse_strategy("redundant"),
            ReductionStrategy::RedundantComputation);
  EXPECT_EQ(parse_strategy("coloring"), ReductionStrategy::Sdc);
  EXPECT_EQ(parse_strategy("SDC"), ReductionStrategy::Sdc);
}

TEST(Strategy, RejectsUnknownNames) {
  EXPECT_THROW(parse_strategy("mpi"), PreconditionError);
  EXPECT_THROW(parse_strategy(""), PreconditionError);
}

TEST(Strategy, RequiredModeFullOnlyForRc) {
  for (ReductionStrategy s : kAllStrategies) {
    if (s == ReductionStrategy::RedundantComputation) {
      EXPECT_EQ(required_mode(s), NeighborMode::Full);
    } else {
      EXPECT_EQ(required_mode(s), NeighborMode::Half);
    }
  }
}

TEST(Strategy, OnlySerialIsNotParallel) {
  for (ReductionStrategy s : kAllStrategies) {
    EXPECT_EQ(is_parallel(s), s != ReductionStrategy::Serial);
  }
}

}  // namespace
}  // namespace sdcmd
