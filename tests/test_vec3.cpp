#include "common/vec3.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sdcmd {
namespace {

TEST(Vec3, DefaultConstructsToZero) {
  Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, IndexAccessMatchesComponents) {
  Vec3 v{1.0, 2.0, 3.0};
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v[2], 3.0);
  v[1] = 7.0;
  EXPECT_EQ(v.y, 7.0);
}

TEST(Vec3, ArithmeticOperators) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, 5.0, 6.0};
  EXPECT_EQ(a + b, (Vec3{5.0, 7.0, 9.0}));
  EXPECT_EQ(b - a, (Vec3{3.0, 3.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1.0, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1.0, -2.0, -3.0}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1.0, 1.0, 1.0};
  v += {1.0, 2.0, 3.0};
  EXPECT_EQ(v, (Vec3{2.0, 3.0, 4.0}));
  v -= {1.0, 1.0, 1.0};
  EXPECT_EQ(v, (Vec3{1.0, 2.0, 3.0}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{3.0, 6.0, 9.0}));
  v /= 3.0;
  EXPECT_EQ(v, (Vec3{1.0, 2.0, 3.0}));
}

TEST(Vec3, DotProduct) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(dot({1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}), 0.0);
}

TEST(Vec3, CrossProductFollowsRightHandRule) {
  EXPECT_EQ(cross({1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}), (Vec3{0.0, 0.0, 1.0}));
  EXPECT_EQ(cross({0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}), (Vec3{1.0, 0.0, 0.0}));
  // Anti-commutative.
  const Vec3 a{1.0, 2.0, 3.0}, b{-2.0, 0.5, 4.0};
  EXPECT_EQ(cross(a, b), -cross(b, a));
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(norm2(v), 25.0);
  EXPECT_DOUBLE_EQ(norm(v), 5.0);
  const Vec3 u = normalized(v);
  EXPECT_NEAR(norm(u), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3{1.0, 2.5, -3.0};
  EXPECT_EQ(os.str(), "(1, 2.5, -3)");
}

}  // namespace
}  // namespace sdcmd
