#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/johnson.hpp"

namespace sdcmd {
namespace {

double fd(const std::function<double(double)>& f, double x, double h = 1e-6) {
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

TEST(FinnisSinclair, CutoffIsMaxOfPairAndDensityRanges) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  EXPECT_DOUBLE_EQ(fe.cutoff(), 3.569745);
}

TEST(FinnisSinclair, PairVanishesSmoothlyAtCutoff) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const double c = fe.params().c;
  double v, dvdr;
  fe.pair(c, v, dvdr);
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(dvdr, 0.0);
  fe.pair(c - 1e-9, v, dvdr);
  EXPECT_NEAR(v, 0.0, 1e-15);
  EXPECT_NEAR(dvdr, 0.0, 1e-7);
  fe.pair(c + 1.0, v, dvdr);
  EXPECT_EQ(v, 0.0);
}

TEST(FinnisSinclair, DensityVanishesSmoothlyAtCutoff) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const double d = fe.params().d;
  double phi, dphidr;
  fe.density(d, phi, dphidr);
  EXPECT_DOUBLE_EQ(phi, 0.0);
  EXPECT_DOUBLE_EQ(dphidr, 0.0);
  fe.density(d - 1e-9, phi, dphidr);
  EXPECT_NEAR(phi, 0.0, 1e-15);
}

TEST(FinnisSinclair, DensityPositiveInRange) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  for (double r = 2.0; r < 3.5; r += 0.1) {
    double phi, dphidr;
    fe.density(r, phi, dphidr);
    EXPECT_GT(phi, 0.0) << "at r=" << r;
  }
}

TEST(FinnisSinclair, EmbeddingIsMinusASqrtRho) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  double f, dfdrho;
  fe.embed(4.0, f, dfdrho);
  EXPECT_NEAR(f, -fe.params().a * 2.0, 1e-12);
  EXPECT_NEAR(dfdrho, -fe.params().a / 4.0, 1e-12);
}

TEST(FinnisSinclair, EmbeddingSafeAtZeroDensity) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  double f, dfdrho;
  fe.embed(0.0, f, dfdrho);
  EXPECT_EQ(f, 0.0);
  EXPECT_TRUE(std::isfinite(dfdrho));
  fe.embed(-1e-12, f, dfdrho);  // numerical underflow must not NaN
  EXPECT_TRUE(std::isfinite(f));
}

TEST(Johnson, TaperTakesRadialFunctionsToZeroAtCutoff) {
  JohnsonEam cu(JohnsonParams::copper());
  double v, dvdr, phi, dphidr;
  cu.pair(cu.cutoff(), v, dvdr);
  EXPECT_EQ(v, 0.0);
  cu.pair(cu.cutoff() - 1e-9, v, dvdr);
  EXPECT_NEAR(v, 0.0, 1e-12);
  cu.density(cu.cutoff() - 1e-9, phi, dphidr);
  EXPECT_NEAR(phi, 0.0, 1e-12);
}

TEST(Johnson, EmbeddingMinimumAtRho0) {
  // F(rho) = -Ec (1 - n ln x) x^n has dF/drho = 0 exactly at rho = rho0.
  JohnsonEam cu(JohnsonParams::copper());
  double f, dfdrho;
  cu.embed(cu.params().rho0, f, dfdrho);
  EXPECT_NEAR(f, -cu.params().ec, 1e-12);
  EXPECT_NEAR(dfdrho, 0.0, 1e-12);
}

TEST(Johnson, RejectsBadParameters) {
  JohnsonParams p;
  p.taper_width = -0.1;
  EXPECT_THROW(JohnsonEam{p}, PreconditionError);
  p = {};
  p.cutoff = 0.0;
  EXPECT_THROW(JohnsonEam{p}, PreconditionError);
}

// Finite-difference sweeps over the radial range for both families.
struct EamCase {
  const char* name;
  std::shared_ptr<const EamPotential> pot;
};

class EamDerivativeTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {
 public:
  static const EamPotential& potential(int idx) {
    static FinnisSinclair fe{FinnisSinclairParams::iron()};
    static JohnsonEam cu{JohnsonParams::copper()};
    return idx == 0 ? static_cast<const EamPotential&>(fe)
                    : static_cast<const EamPotential&>(cu);
  }
};

TEST_P(EamDerivativeTest, PairDerivativeMatchesFd) {
  const auto [idx, frac] = GetParam();
  const EamPotential& pot = potential(idx);
  const double r = frac * pot.cutoff();
  double v, dvdr;
  pot.pair(r, v, dvdr);
  const double fd_v = fd(
      [&](double x) {
        double e, unused;
        pot.pair(x, e, unused);
        return e;
      },
      r);
  EXPECT_NEAR(dvdr, fd_v, 1e-5 * std::max(1.0, std::abs(dvdr)));
}

TEST_P(EamDerivativeTest, DensityDerivativeMatchesFd) {
  const auto [idx, frac] = GetParam();
  const EamPotential& pot = potential(idx);
  const double r = frac * pot.cutoff();
  double phi, dphidr;
  pot.density(r, phi, dphidr);
  const double fd_phi = fd(
      [&](double x) {
        double p, unused;
        pot.density(x, p, unused);
        return p;
      },
      r);
  EXPECT_NEAR(dphidr, fd_phi, 1e-5 * std::max(1.0, std::abs(dphidr)));
}

TEST_P(EamDerivativeTest, EmbeddingDerivativeMatchesFd) {
  const auto [idx, frac] = GetParam();
  const EamPotential& pot = potential(idx);
  const double rho = 1.0 + 20.0 * frac;  // sample a realistic density range
  double f, dfdrho;
  pot.embed(rho, f, dfdrho);
  const double fd_f = fd(
      [&](double x) {
        double e, unused;
        pot.embed(x, e, unused);
        return e;
      },
      rho);
  EXPECT_NEAR(dfdrho, fd_f, 1e-5 * std::max(1.0, std::abs(dfdrho)));
}

INSTANTIATE_TEST_SUITE_P(
    RadialSweep, EamDerivativeTest,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0.55, 0.65, 0.75, 0.85, 0.95)));

}  // namespace
}  // namespace sdcmd
