#include "core/race_check.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "geom/lattice.hpp"
#include "potential/finnis_sinclair.hpp"

namespace sdcmd {
namespace {

struct Scene {
  Box box = Box::cubic(1.0);
  std::vector<Vec3> positions;

  explicit Scene(int cells) {
    LatticeSpec spec;
    spec.type = LatticeType::Bcc;
    spec.a0 = units::kLatticeFe;
    spec.nx = spec.ny = spec.nz = cells;
    box = spec.box();
    positions = build_lattice(spec);
    Xoshiro256 rng(3);
    for (auto& r : positions) {
      r += Vec3{rng.normal(0.0, 0.05), rng.normal(0.0, 0.05),
                rng.normal(0.0, 0.05)};
      r = box.wrap(r);
    }
  }
};

class RaceCheckDimTest : public ::testing::TestWithParam<int> {};

TEST_P(RaceCheckDimTest, LegalSchedulesAreRaceFree) {
  Scene s(10);
  const double cutoff = 3.569745, skin = 0.4;
  NeighborListConfig nl;
  nl.cutoff = cutoff;
  nl.skin = skin;
  NeighborList list(s.box, nl);
  list.build(s.positions);

  SdcConfig cfg;
  cfg.dimensionality = GetParam();
  SdcSchedule schedule(s.box, cutoff + skin, cfg);
  schedule.rebuild(s.positions);

  const auto report = check_schedule_race_free(schedule, list);
  EXPECT_TRUE(report.race_free) << report.describe();
}

INSTANTIATE_TEST_SUITE_P(Dims, RaceCheckDimTest, ::testing::Values(1, 2, 3));

TEST(RaceCheck, UndersizedRangeScheduleIsCaught) {
  // Build the schedule as if the interaction range were much smaller than
  // the neighbor list actually reaches: subdomain edges shrink below
  // 2 * true-range and same-color footprints collide. The checker must
  // catch exactly this class of misuse.
  Scene s(10);  // 28.665 A box
  const double true_cutoff = 3.569745, skin = 0.4;
  NeighborListConfig nl;
  nl.cutoff = true_cutoff;
  nl.skin = skin;
  NeighborList list(s.box, nl);
  list.build(s.positions);

  SdcConfig cfg;
  cfg.dimensionality = 2;
  // Lie about the range: 1.4 A instead of ~3.97 A -> 10 subdomains/dim of
  // edge 2.87 A, far below 2 * 3.97.
  SdcSchedule bogus(s.box, 1.4, cfg);
  bogus.rebuild(s.positions);

  const auto report = check_schedule_race_free(bogus, list);
  EXPECT_FALSE(report.race_free);
  EXPECT_GE(report.color, 0);
  EXPECT_NE(report.slot_a, report.slot_b);
  EXPECT_NE(report.describe().find("RACE"), std::string::npos);
}

TEST(RaceCheck, RequiresBuiltSchedule) {
  Scene s(10);
  NeighborListConfig nl;
  nl.cutoff = 3.569745;
  NeighborList list(s.box, nl);
  list.build(s.positions);
  SdcConfig cfg;
  cfg.dimensionality = 2;
  SdcSchedule schedule(s.box, 3.97, cfg);
  EXPECT_THROW(check_schedule_race_free(schedule, list),
               PreconditionError);
}

TEST(RaceCheck, DescribeOfCleanReportIsPositive) {
  RaceCheckReport report;
  EXPECT_NE(report.describe().find("race-free"), std::string::npos);
}

}  // namespace
}  // namespace sdcmd
