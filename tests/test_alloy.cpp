// Multi-species EAM: mixing rules, alloy tables, and the alloy force
// engine, pinned against the single-species engine and against finite
// differences.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "core/alloy_force.hpp"
#include "core/eam_force.hpp"
#include "geom/lattice.hpp"
#include "potential/alloy.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/johnson.hpp"
#include "potential/setfl_alloy.hpp"

namespace sdcmd {
namespace {

const FinnisSinclair& iron() {
  static FinnisSinclair fe{FinnisSinclairParams::iron()};
  return fe;
}
const JohnsonEam& copper() {
  static JohnsonEam cu{JohnsonParams::copper()};
  return cu;
}

JohnsonMixedAlloy fecu() {
  return JohnsonMixedAlloy({{&iron(), units::kMassFe, "Fe"},
                            {&copper(), 63.546, "Cu"}});
}

TEST(JohnsonMixedAlloy, MetadataIsPerSpecies) {
  const auto alloy = fecu();
  EXPECT_EQ(alloy.species_count(), 2);
  EXPECT_DOUBLE_EQ(alloy.cutoff(), copper().cutoff());
  EXPECT_EQ(alloy.species_name(0), "Fe");
  EXPECT_EQ(alloy.species_name(1), "Cu");
  EXPECT_DOUBLE_EQ(alloy.mass(0), units::kMassFe);
  EXPECT_NEAR(alloy.mass(1), 63.546, 1e-12);
}

TEST(JohnsonMixedAlloy, SameSpeciesPairsPassThrough) {
  const auto alloy = fecu();
  for (double r = 2.0; r < 3.3; r += 0.1) {
    double va, da, ve, de;
    alloy.pair(0, 0, r, va, da);
    iron().pair(r, ve, de);
    EXPECT_DOUBLE_EQ(va, ve);
    EXPECT_DOUBLE_EQ(da, de);
  }
}

TEST(JohnsonMixedAlloy, CrossPairIsSymmetric) {
  const auto alloy = fecu();
  for (double r = 2.0; r < 4.9; r += 0.13) {
    double v01, d01, v10, d10;
    alloy.pair(0, 1, r, v01, d01);
    alloy.pair(1, 0, r, v10, d10);
    EXPECT_DOUBLE_EQ(v01, v10) << "r=" << r;
    EXPECT_DOUBLE_EQ(d01, d10) << "r=" << r;
  }
}

TEST(JohnsonMixedAlloy, IdenticalElementsReduceToPurePair) {
  // Mixing a potential with itself must give back the same-species V.
  JohnsonMixedAlloy twin({{&iron(), units::kMassFe, "Fe"},
                          {&iron(), units::kMassFe, "Fe2"}});
  for (double r = 2.0; r < 3.3; r += 0.07) {
    double v_cross, d_cross, v_pure, d_pure;
    twin.pair(0, 1, r, v_cross, d_cross);
    iron().pair(r, v_pure, d_pure);
    EXPECT_NEAR(v_cross, v_pure, 1e-12) << "r=" << r;
    EXPECT_NEAR(d_cross, d_pure, 1e-10) << "r=" << r;
  }
}

class CrossPairDerivativeTest : public ::testing::TestWithParam<double> {};

TEST_P(CrossPairDerivativeTest, MatchesFiniteDifference) {
  const auto alloy = fecu();
  const double r = GetParam();
  double v, dvdr, vp, vm, unused;
  alloy.pair(0, 1, r, v, dvdr);
  const double h = 1e-6;
  alloy.pair(0, 1, r + h, vp, unused);
  alloy.pair(0, 1, r - h, vm, unused);
  EXPECT_NEAR(dvdr, (vp - vm) / (2.0 * h),
              1e-4 * std::max(1.0, std::abs(dvdr)))
      << "r=" << r;
}

INSTANTIATE_TEST_SUITE_P(RadialSweep, CrossPairDerivativeTest,
                         ::testing::Values(2.1, 2.5, 2.9, 3.2, 3.45, 3.8,
                                           4.3, 4.8));

// ---------------------------------------------------------------------------
// Alloy force engine.

struct AlloyWorkload {
  Box box;
  std::vector<Vec3> positions;
  std::vector<std::uint8_t> types;
  std::unique_ptr<NeighborList> list;
  double skin = 0.3;

  AlloyWorkload(const AlloyEamPotential& pot, int cells, double cu_fraction,
                std::uint64_t seed = 77)
      : box(Box::cubic(cells * units::kLatticeFe)) {
    LatticeSpec spec;
    spec.type = LatticeType::Bcc;
    spec.a0 = units::kLatticeFe;
    spec.nx = spec.ny = spec.nz = cells;
    positions = build_lattice(spec);
    types.assign(positions.size(), 0);
    Xoshiro256 rng(seed);
    for (auto& r : positions) {
      r += Vec3{rng.normal(0.0, 0.04), rng.normal(0.0, 0.04),
                rng.normal(0.0, 0.04)};
      r = box.wrap(r);
    }
    if (pot.species_count() > 1) {
      for (auto& t : types) {
        if (rng.uniform() < cu_fraction) t = 1;
      }
    }
    NeighborListConfig cfg;
    cfg.cutoff = pot.cutoff();
    cfg.skin = skin;
    list = std::make_unique<NeighborList>(box, cfg);
    list->build(positions);
  }

  struct Output {
    std::vector<double> rho, fp;
    std::vector<Vec3> force;
    AlloyForceResult result;
  };

  Output run(const AlloyEamPotential& pot, ReductionStrategy strategy) {
    AlloyForceConfig cfg;
    cfg.strategy = strategy;
    cfg.sdc.dimensionality = 2;
    AlloyForceComputer computer(pot, cfg);
    computer.attach_schedule(box, pot.cutoff() + skin);
    computer.on_neighbor_rebuild(positions);
    Output out;
    out.rho.resize(positions.size());
    out.fp.resize(positions.size());
    out.force.resize(positions.size());
    out.result = computer.compute(box, positions, types, *list, out.rho,
                                  out.fp, out.force);
    return out;
  }
};

TEST(AlloyForce, SingleSpeciesMatchesTheScalarEngine) {
  SingleSpeciesAlloy wrapped(iron(), units::kMassFe, "Fe");
  AlloyWorkload w(wrapped, 6, 0.0);
  const auto alloy_out = w.run(wrapped, ReductionStrategy::Serial);

  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Serial;
  EamForceComputer scalar(iron(), cfg);
  std::vector<double> rho(w.positions.size()), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  const auto scalar_result =
      scalar.compute(w.box, w.positions, *w.list, rho, fp, force);

  for (std::size_t i = 0; i < rho.size(); ++i) {
    EXPECT_NEAR(alloy_out.rho[i], rho[i], 1e-12 * std::max(1.0, rho[i]));
    EXPECT_NEAR(norm(alloy_out.force[i] - force[i]), 0.0, 1e-10);
  }
  EXPECT_NEAR(alloy_out.result.pair_energy, scalar_result.pair_energy,
              1e-10 * std::abs(scalar_result.pair_energy));
  EXPECT_NEAR(alloy_out.result.embedding_energy,
              scalar_result.embedding_energy,
              1e-10 * std::abs(scalar_result.embedding_energy));
  EXPECT_NEAR(alloy_out.result.virial, scalar_result.virial,
              1e-9 * std::max(1.0, std::abs(scalar_result.virial)));
}

TEST(AlloyForce, SdcMatchesSerialOnABinaryAlloy) {
  const auto alloy = fecu();
  AlloyWorkload w(alloy, 8, 0.15);
  const auto serial = w.run(alloy, ReductionStrategy::Serial);
  const auto sdc = w.run(alloy, ReductionStrategy::Sdc);
  for (std::size_t i = 0; i < serial.rho.size(); ++i) {
    EXPECT_NEAR(serial.rho[i], sdc.rho[i],
                1e-10 * std::max(1.0, serial.rho[i]));
    EXPECT_NEAR(norm(serial.force[i] - sdc.force[i]), 0.0, 1e-9);
  }
  EXPECT_NEAR(serial.result.total_energy(), sdc.result.total_energy(),
              1e-9 * std::abs(serial.result.total_energy()));
}

TEST(AlloyForce, NewtonsThirdLawHoldsForMixedSpecies) {
  const auto alloy = fecu();
  AlloyWorkload w(alloy, 8, 0.3);
  const auto out = w.run(alloy, ReductionStrategy::Serial);
  Vec3 total{};
  for (const auto& f : out.force) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-8);
}

TEST(AlloyForce, ForceMatchesEnergyGradient) {
  const auto alloy = fecu();
  AlloyWorkload w(alloy, 8, 0.25, 5);
  const auto base = w.run(alloy, ReductionStrategy::Serial);

  const double h = 1e-6;
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 6; ++trial) {
    const auto atom =
        static_cast<std::size_t>(rng.below(w.positions.size()));
    const int dim = static_cast<int>(rng.below(3));
    const double original = w.positions[atom][dim];

    w.positions[atom][dim] = original + h;
    w.list->build(w.positions);
    const double ep =
        w.run(alloy, ReductionStrategy::Serial).result.total_energy();
    w.positions[atom][dim] = original - h;
    w.list->build(w.positions);
    const double em =
        w.run(alloy, ReductionStrategy::Serial).result.total_energy();
    w.positions[atom][dim] = original;
    w.list->build(w.positions);

    EXPECT_NEAR(base.force[atom][dim], -(ep - em) / (2.0 * h), 5e-4)
        << "atom " << atom << " (type " << int(w.types[atom]) << ") dim "
        << dim;
  }
}

TEST(AlloyForce, RejectsBadInput) {
  const auto alloy = fecu();
  AlloyWorkload w(alloy, 8, 0.2);
  AlloyForceConfig cfg;
  cfg.strategy = ReductionStrategy::Critical;
  EXPECT_THROW(AlloyForceComputer(alloy, cfg), PreconditionError);

  cfg.strategy = ReductionStrategy::Serial;
  AlloyForceComputer computer(alloy, cfg);
  std::vector<double> rho(w.positions.size()), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  w.types[0] = 7;  // out of range
  EXPECT_THROW(computer.compute(w.box, w.positions, w.types, *w.list, rho,
                                fp, force),
               PreconditionError);
}

// ---------------------------------------------------------------------------
// Alloy tables / setfl round trips.

TEST(SetflAlloy, PairIndexIsLowerTriangular) {
  EXPECT_EQ(AlloyTables::pair_index(0, 0), 0u);
  EXPECT_EQ(AlloyTables::pair_index(1, 0), 1u);
  EXPECT_EQ(AlloyTables::pair_index(0, 1), 1u);  // symmetric
  EXPECT_EQ(AlloyTables::pair_index(1, 1), 2u);
  EXPECT_EQ(AlloyTables::pair_index(2, 1), 4u);
}

TEST(SetflAlloy, TabulatedAlloyTracksTheAnalyticMixture) {
  const auto alloy = fecu();
  TabulatedAlloyEam tab(tabulate_alloy(alloy, 4000, 2000, 80.0));
  EXPECT_EQ(tab.species_count(), 2);
  EXPECT_EQ(tab.species_name(1), "Cu");
  for (double r = 2.0; r < alloy.cutoff() - 0.01; r += 0.037) {
    double va, da, vt, dt;
    alloy.pair(0, 1, r, va, da);
    tab.pair(0, 1, r, vt, dt);
    EXPECT_NEAR(vt, va, 5e-5 * std::max(1.0, std::abs(va))) << "r=" << r;
    alloy.density(1, r, va, da);
    tab.density(1, r, vt, dt);
    EXPECT_NEAR(vt, va, 1e-6) << "r=" << r;
  }
  for (double rho = 1.0; rho < 70.0; rho += 1.3) {
    double fa, da, ft, dt;
    alloy.embed(0, rho, fa, da);
    tab.embed(0, rho, ft, dt);
    EXPECT_NEAR(ft, fa, 1e-6) << "rho=" << rho;
  }
}

TEST(SetflAlloy, FileRoundTripPreservesTables) {
  const auto alloy = fecu();
  const AlloyTables original = tabulate_alloy(alloy, 300, 200, 80.0);
  std::stringstream stream;
  write_setfl_alloy(stream, original);
  const AlloyTables parsed = read_setfl_alloy(stream);

  ASSERT_EQ(parsed.elements.size(), 2u);
  EXPECT_EQ(parsed.elements[0].name, "Fe");
  EXPECT_EQ(parsed.elements[1].name, "Cu");
  EXPECT_DOUBLE_EQ(parsed.dr, original.dr);
  EXPECT_DOUBLE_EQ(parsed.cutoff, original.cutoff);
  for (std::size_t e = 0; e < 2; ++e) {
    for (std::size_t i = 0; i < original.elements[e].embed.size(); ++i) {
      EXPECT_NEAR(parsed.elements[e].embed[i],
                  original.elements[e].embed[i], 1e-13);
    }
  }
  for (std::size_t p = 0; p < original.pair_lower.size(); ++p) {
    for (std::size_t i = 1; i < original.pair_lower[p].size(); ++i) {
      EXPECT_NEAR(
          parsed.pair_lower[p][i], original.pair_lower[p][i],
          1e-11 * std::max(1.0, std::abs(original.pair_lower[p][i])));
    }
  }
}

TEST(SetflAlloy, SingleElementFilesStillParse) {
  // A 1-element alloy file is valid input for the alloy reader.
  FinnisSinclair fe(FinnisSinclairParams::iron());
  SingleSpeciesAlloy single(fe, units::kMassFe, "Fe");
  const AlloyTables t = tabulate_alloy(single, 100, 100, 60.0);
  std::stringstream stream;
  write_setfl_alloy(stream, t);
  const AlloyTables parsed = read_setfl_alloy(stream);
  EXPECT_EQ(parsed.elements.size(), 1u);
  EXPECT_EQ(parsed.pair_lower.size(), 1u);
}

TEST(SetflAlloy, RejectsMalformedInput) {
  std::stringstream s1("c1\nc2\nc3\n0\n");
  EXPECT_THROW(read_setfl_alloy(s1), ParseError);
  std::stringstream s2("c1\nc2\nc3\n1 Fe\n1 0.1 10 0.1 3.0\n");
  EXPECT_THROW(read_setfl_alloy(s2), ParseError);
  EXPECT_THROW(read_setfl_alloy_file("/nonexistent/x.setfl"), ParseError);
}

}  // namespace
}  // namespace sdcmd
