// SoA fast-path correctness (ISSUE 8): the SIMD structure-of-arrays EAM
// loops must reproduce the scalar reference to 1e-12 for every reduction
// strategy, including sentinel-padded tail tiles, odd atom counts, and a
// post-update_box mirror refresh; the padded-tile emission and the
// interval-indexed (packed) spline layout are pinned against their scalar
// counterparts.
#include "core/detail/eam_soa.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/random.hpp"
#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "geom/lattice.hpp"
#include "neighbor/neighbor_list.hpp"
#include "potential/cubic_spline.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/tabulated.hpp"

namespace sdcmd {
namespace {

constexpr double kSkin = 0.4;
constexpr double kTol = 1e-12;

/// Jittered bcc iron workload evaluated through the tabulated potential
/// (the SoA path requires packed spline tables). Lists are built WITH
/// padded tiles; the scalar path simply ignores them, so both paths see
/// the identical pair enumeration.
struct SoaWorkload {
  Box box;
  std::vector<Vec3> positions;
  FinnisSinclair fe{FinnisSinclairParams::iron()};
  TabulatedEam tab = TabulatedEam::from_analytic(fe, 2000, 2000, 60.0);
  std::unique_ptr<NeighborList> half;
  std::unique_ptr<NeighborList> full;

  explicit SoaWorkload(int cells, bool odd_atom_count = false,
                       std::uint64_t seed = 7)
      : box(Box::cubic(cells * units::kLatticeFe)) {
    LatticeSpec spec;
    spec.type = LatticeType::Bcc;
    spec.a0 = units::kLatticeFe;
    spec.nx = spec.ny = spec.nz = cells;
    positions = build_lattice(spec);
    // Odd atom counts exercise tiles whose last pad group is mostly
    // sentinel and the n+1-slot position mirror with an odd n.
    if (odd_atom_count) positions.pop_back();
    Xoshiro256 rng(seed);
    for (auto& r : positions) {
      r += Vec3{rng.normal(0.0, 0.05), rng.normal(0.0, 0.05),
                rng.normal(0.0, 0.05)};
      r = box.wrap(r);
    }
    rebuild_lists();
  }

  void rebuild_lists() {
    NeighborListConfig cfg;
    cfg.cutoff = tab.cutoff();
    cfg.skin = kSkin;
    cfg.pad_width = detail::kSoaPadWidth;
    half = std::make_unique<NeighborList>(box, cfg);
    half->build(positions);
    cfg.mode = NeighborMode::Full;
    full = std::make_unique<NeighborList>(box, cfg);
    full->build(positions);
  }

  struct Output {
    std::vector<double> rho, fp;
    std::vector<Vec3> force;
    EamForceResult result;
    EamKernelStats stats;
  };

  Output run(ReductionStrategy strategy, bool soa) {
    EamForceConfig cfg;
    cfg.strategy = strategy;
    cfg.sdc.dimensionality = 2;
    cfg.use_soa_path = soa;
    cfg.soa_half_lists = true;  // the test measures every strategy
    return run(cfg);
  }

  Output run(const EamForceConfig& cfg) {
    EamForceComputer computer(tab, cfg);
    computer.attach_schedule(box, tab.cutoff() + kSkin);
    computer.on_neighbor_rebuild(positions);
    Output out;
    out.rho.resize(positions.size());
    out.fp.resize(positions.size());
    out.force.resize(positions.size());
    const NeighborList& list =
        required_mode(cfg.strategy) == NeighborMode::Full ? *full : *half;
    out.result = computer.compute(box, positions, list, out.rho, out.fp,
                                  out.force);
    out.stats = computer.stats();
    return out;
  }
};

void expect_equivalent(const SoaWorkload::Output& scalar,
                       const SoaWorkload::Output& soa) {
  ASSERT_EQ(scalar.rho.size(), soa.rho.size());
  for (std::size_t i = 0; i < scalar.rho.size(); ++i) {
    EXPECT_NEAR(scalar.rho[i], soa.rho[i],
                kTol * std::max(1.0, std::abs(scalar.rho[i])))
        << "rho mismatch at atom " << i;
    EXPECT_NEAR(norm(scalar.force[i] - soa.force[i]), 0.0, kTol * 10.0)
        << "force mismatch at atom " << i;
  }
  EXPECT_NEAR(scalar.result.pair_energy, soa.result.pair_energy,
              kTol * std::abs(scalar.result.pair_energy));
  EXPECT_NEAR(scalar.result.embedding_energy, soa.result.embedding_energy,
              kTol * std::abs(scalar.result.embedding_energy));
  EXPECT_NEAR(scalar.result.virial, soa.result.virial,
              kTol * std::max(1.0, std::abs(scalar.result.virial)));
}

class SoaEquivalenceTest
    : public ::testing::TestWithParam<ReductionStrategy> {};

TEST_P(SoaEquivalenceTest, SoaMatchesScalarPath) {
  // 6 cells: the smallest cube that fits two SDC subdomains per dimension.
  SoaWorkload w(6);
  const auto scalar = w.run(GetParam(), /*soa=*/false);
  const auto soa = w.run(GetParam(), /*soa=*/true);
  EXPECT_EQ(scalar.stats.soa_steps, 0u);
  EXPECT_EQ(soa.stats.soa_steps, 1u) << "SoA path did not engage";
  expect_equivalent(scalar, soa);
}

TEST_P(SoaEquivalenceTest, SoaMatchesScalarPathOddAtomCount) {
  SoaWorkload w(6, /*odd_atom_count=*/true);
  ASSERT_EQ(w.positions.size() % 2, 1u);
  const auto scalar = w.run(GetParam(), /*soa=*/false);
  const auto soa = w.run(GetParam(), /*soa=*/true);
  EXPECT_EQ(soa.stats.soa_steps, 1u) << "SoA path did not engage";
  expect_equivalent(scalar, soa);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, SoaEquivalenceTest,
    ::testing::Values(ReductionStrategy::Serial, ReductionStrategy::Critical,
                      ReductionStrategy::Atomic, ReductionStrategy::LockStriped,
                      ReductionStrategy::ArrayPrivatization,
                      ReductionStrategy::RedundantComputation,
                      ReductionStrategy::Sdc),
    [](const ::testing::TestParamInfo<ReductionStrategy>& info) {
      return to_string(info.param);
    });

TEST(SoaRefreshTest, MirrorRefreshesAfterUpdateBox) {
  // The SoA position mirror is refreshed from `positions` every step; a
  // box change (deform/barostat path) plus rebuilt lists must therefore
  // still match the scalar path exactly.
  SoaWorkload w(5);
  const auto before_scalar = w.run(ReductionStrategy::Serial, false);
  const auto before_soa = w.run(ReductionStrategy::Serial, true);
  expect_equivalent(before_scalar, before_soa);

  const double scale = 1.01;
  w.box = Box::cubic(w.box.lengths().x * scale);
  for (auto& r : w.positions) r = w.box.wrap(r * scale);
  EXPECT_FALSE(w.half->update_box(w.box));  // same grid shape, reused
  w.rebuild_lists();

  const auto after_scalar = w.run(ReductionStrategy::Serial, false);
  const auto after_soa = w.run(ReductionStrategy::Serial, true);
  expect_equivalent(after_scalar, after_soa);
  // The deformation genuinely changed the answer (the test isn't vacuous).
  EXPECT_NE(after_scalar.result.pair_energy, before_scalar.result.pair_energy);
}

TEST(SoaGatingTest, PadFractionGaugeClearsWhenThePathDisengages) {
  // Regression: soa_pad_fraction is a gauge, not a counter. After a step
  // that leaves the SoA path (here: a rebuild against an UNPADDED list,
  // the shape every governor-driven list reconfiguration produces), the
  // stale value from the last SoA step must not linger in stats().
  SoaWorkload w(5);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::RedundantComputation;  // SoA-by-default
  EamForceComputer computer(w.tab, cfg);
  std::vector<double> rho(w.positions.size()), fp(w.positions.size());
  std::vector<Vec3> force(w.positions.size());
  computer.compute(w.box, w.positions, *w.full, rho, fp, force);
  ASSERT_EQ(computer.stats().soa_steps, 1u) << "SoA path did not engage";
  ASSERT_GT(computer.stats().soa_pad_fraction, 0.0);

  NeighborListConfig plain;
  plain.cutoff = w.tab.cutoff();
  plain.skin = kSkin;
  plain.mode = NeighborMode::Full;  // pad_width 0: scalar path
  NeighborList unpadded(w.box, plain);
  unpadded.build(w.positions);
  computer.compute(w.box, w.positions, unpadded, rho, fp, force);
  EXPECT_EQ(computer.stats().soa_steps, 1u);  // did not engage again
  EXPECT_EQ(computer.stats().soa_pad_fraction, 0.0);
}

TEST(SoaGatingTest, HalfListStrategiesNeedExplicitOptIn) {
  // Production heuristic: half-list scatter strategies measured slower
  // under SoA, so use_soa_path alone must NOT engage them...
  SoaWorkload w(6);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  cfg.sdc.dimensionality = 2;
  cfg.use_soa_path = true;
  cfg.soa_half_lists = false;
  const auto sdc = w.run(cfg);
  EXPECT_EQ(sdc.stats.soa_steps, 0u);
  EXPECT_EQ(sdc.stats.soa_pad_fraction, 0.0);

  // ...while RC's full-list gathers engage by default.
  cfg.strategy = ReductionStrategy::RedundantComputation;
  const auto rc = w.run(cfg);
  EXPECT_EQ(rc.stats.soa_steps, 1u);
  EXPECT_EQ(rc.stats.soa_pad_fraction, w.full->pad_fraction());
}

TEST(SoaGatingTest, NeighborPadWidthFollowsTheHeuristic) {
  SoaWorkload w(4);
  auto pad_width = [&](EamForceConfig cfg) {
    EamForceComputer computer(w.tab, cfg);
    return computer.neighbor_pad_width();
  };
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::RedundantComputation;
  EXPECT_EQ(pad_width(cfg), detail::kSoaPadWidth);
  cfg.use_soa_path = false;
  EXPECT_EQ(pad_width(cfg), 0);

  cfg = {};
  cfg.strategy = ReductionStrategy::Sdc;
  EXPECT_EQ(pad_width(cfg), 0);  // half list, no opt-in
  cfg.soa_half_lists = true;
  EXPECT_EQ(pad_width(cfg), detail::kSoaPadWidth);
  cfg.use_pair_cache = false;  // replay loop needs the cache
  EXPECT_EQ(pad_width(cfg), 0);

  // Analytic potentials expose no spline tables: never padded.
  EamForceConfig rc_cfg;
  rc_cfg.strategy = ReductionStrategy::RedundantComputation;
  EamForceComputer analytic(w.fe, rc_cfg);
  EXPECT_EQ(analytic.neighbor_pad_width(), 0);
}

TEST(PaddedTileTest, TilesReplicateSublistsWithSentinelTails) {
  SoaWorkload w(4, /*odd_atom_count=*/true);
  for (const NeighborList* list : {w.half.get(), w.full.get()}) {
    ASSERT_TRUE(list->has_padded_tiles());
    const int pw = list->pad_width();
    ASSERT_EQ(pw, detail::kSoaPadWidth);
    const auto& tile_index = list->tile_index();
    const auto& tiles = list->padded_list();
    const std::uint32_t sent = list->pad_sentinel();
    ASSERT_EQ(tile_index.size(), list->atom_count() + 1);
    EXPECT_EQ(tile_index.front(), 0u);
    EXPECT_EQ(tile_index.back(), tiles.size());
    std::size_t real = 0;
    for (std::size_t i = 0; i < list->atom_count(); ++i) {
      const std::size_t begin = tile_index[i];
      const std::size_t end = tile_index[i + 1];
      EXPECT_EQ(begin % pw, 0u) << "tile offsets must be pad-aligned";
      const auto sublist = list->neighbors(i);
      ASSERT_EQ(end - begin,
                (sublist.size() + pw - 1) / pw * pw)
          << "tile length must be the sublist rounded up to pad_width";
      for (std::size_t k = 0; k < sublist.size(); ++k) {
        EXPECT_EQ(tiles[begin + k], sublist[k])
            << "real entries must replicate neighbors(" << i << ")";
      }
      for (std::size_t k = begin + sublist.size(); k < end; ++k) {
        EXPECT_EQ(tiles[k], sent) << "tail slots must hold the sentinel";
      }
      real += sublist.size();
    }
    EXPECT_DOUBLE_EQ(
        list->pad_fraction(),
        static_cast<double>(tiles.size()) / static_cast<double>(real) - 1.0);
  }
}

TEST(PaddedTileTest, UnpaddedListsEmitNoTiles) {
  Box box = Box::cubic(3 * units::kLatticeFe);
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 3;
  const auto positions = build_lattice(spec);
  NeighborListConfig cfg;
  cfg.cutoff = 3.6;
  NeighborList list(box, cfg);
  list.build(positions);
  EXPECT_FALSE(list.has_padded_tiles());
  EXPECT_EQ(list.padded_pair_count(), 0u);
  EXPECT_EQ(list.pad_fraction(), 0.0);
}

TEST(PackedSplineTest, PackedMatchesSplineViewAcrossKnots) {
  // A non-trivial curve sampled on a uniform grid; the packed layout must
  // agree with the four-array SplineView everywhere, in particular at and
  // around segment boundaries and outside the table (clamped segments).
  const double x0 = 1.5, dx = 0.25;
  const std::size_t n = 64;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = x0 + dx * static_cast<double>(i);
    values[i] = std::sin(1.7 * x) / x + 0.03 * x * x;
  }
  CubicSpline spline(x0, dx, values);
  const SplineView ref = spline.view();
  const PackedSplineView packed = spline.packed_view();
  ASSERT_TRUE(packed.valid());
  ASSERT_EQ(packed.segments, ref.segments);

  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i) {
    const double knot = x0 + dx * static_cast<double>(i);
    xs.push_back(knot);  // exactly on the boundary
    xs.push_back(std::nextafter(knot, -1e300));
    xs.push_back(std::nextafter(knot, 1e300));
    xs.push_back(knot + 0.4 * dx);
  }
  xs.push_back(x0 - 1.0);                                  // below: clamped
  xs.push_back(x0 + dx * static_cast<double>(n) + 2.0);    // above: clamped
  for (const double x : xs) {
    double v_ref, d_ref, v_packed, d_packed;
    ref.evaluate(x, v_ref, d_ref);
    packed.evaluate(x, v_packed, d_packed);
    EXPECT_DOUBLE_EQ(v_ref, v_packed) << "value differs at x=" << x;
    EXPECT_DOUBLE_EQ(d_ref, d_packed) << "derivative differs at x=" << x;
  }
}

TEST(PackedSplineTest, TabulatedEamExposesPackedTables) {
  FinnisSinclair fe(FinnisSinclairParams::iron());
  const TabulatedEam tab = TabulatedEam::from_analytic(fe, 500, 500, 60.0);
  const EamSplineTables* tables = tab.spline_tables();
  ASSERT_NE(tables, nullptr);
  ASSERT_TRUE(tables->packed_valid());
  // Spot-check: packed and four-array views agree through the table.
  for (double r = 1.0; r < fe.cutoff(); r += 0.0371) {
    double v_a, d_a, v_b, d_b;
    tables->pair.evaluate(r, v_a, d_a);
    tables->pair_packed.evaluate(r, v_b, d_b);
    EXPECT_DOUBLE_EQ(v_a, v_b);
    EXPECT_DOUBLE_EQ(d_a, d_b);
    tables->density.evaluate(r, v_a, d_a);
    tables->density_packed.evaluate(r, v_b, d_b);
    EXPECT_DOUBLE_EQ(v_a, v_b);
    EXPECT_DOUBLE_EQ(d_a, d_b);
  }
}

}  // namespace
}  // namespace sdcmd
