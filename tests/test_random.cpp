#include "common/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace sdcmd {
namespace {

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, UniformStaysInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, UniformMeanNearHalf) {
  Xoshiro256 rng(123);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, NormalMomentsMatchStandardGaussian) {
  Xoshiro256 rng(99);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Xoshiro256, ScaledNormal) {
  Xoshiro256 rng(5);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 2.0, 0.05);
}

TEST(Xoshiro256, BelowStaysBelow) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues reached
}

TEST(Xoshiro256, BelowZeroAndOne) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, LongJumpDecorrelatesStreams) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace sdcmd
