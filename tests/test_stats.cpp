#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"

namespace sdcmd {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), 31.0, 1e-12);
  // Sample variance of {1,2,4,8,16}: mean 6.2, sum sq dev 148.8, /4.
  EXPECT_NEAR(s.variance(), 37.2, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(37.2), 1e-12);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 5.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256 rng(1);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 400 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);

  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, MergeTwoPopulatedSidesExactly) {
  // Deterministic both-sides merge: {1, 5} + {2, 8, 11} == {1, 5, 2, 8, 11}.
  RunningStats a, b, whole;
  for (double x : {1.0, 5.0}) {
    a.add(x);
    whole.add(x);
  }
  for (double x : {2.0, 8.0, 11.0}) {
    b.add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 11.0);
  EXPECT_NEAR(a.sum(), 27.0, 1e-12);
}

TEST(RunningStats, MergeBothEmptyStaysEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Percentile, MedianOfOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Percentile, EndpointsAndInterpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 15.0);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, UnsortedInputIsSortedInternally) {
  const std::vector<double> xs{50.0, 10.0, 40.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(median({50.0, 10.0, 40.0, 20.0, 30.0}), 30.0);
}

TEST(Percentile, OutOfRangeThrows) {
  EXPECT_THROW(percentile({1.0}, -1.0), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 101.0), PreconditionError);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

}  // namespace
}  // namespace sdcmd
