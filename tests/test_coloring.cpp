#include "domain/coloring.hpp"

#include <gtest/gtest.h>

namespace sdcmd {
namespace {

constexpr double kRange = 2.0;

/// True when the two subdomains are adjacent (share a face/edge/corner)
/// along the decomposed dimensions, under periodic wrap.
bool adjacent(const SpatialDecomposition& d, std::size_t a, std::size_t b) {
  const auto ca = d.coords_of(a);
  const auto cb = d.coords_of(b);
  for (int dim = 0; dim < 3; ++dim) {
    if (d.counts()[dim] == 1) continue;
    int gap = std::abs(ca[dim] - cb[dim]);
    if (d.box().periodic(dim)) gap = std::min(gap, d.counts()[dim] - gap);
    if (gap > 1) return false;
  }
  return true;
}

class ColoringDimTest : public ::testing::TestWithParam<int> {};

TEST_P(ColoringDimTest, ColorCountIsTwoToTheDimensionality) {
  const Box box = Box::cubic(40.0);
  const auto d = SpatialDecomposition::finest(box, GetParam(), kRange);
  const Coloring coloring(d);
  EXPECT_EQ(coloring.color_count(), 1 << GetParam());
}

TEST_P(ColoringDimTest, GroupsAreEqualSizedAndCoverEverything) {
  const Box box = Box::cubic(40.0);
  const auto d = SpatialDecomposition::finest(box, GetParam(), kRange);
  const Coloring coloring(d);
  std::size_t total = 0;
  const std::size_t expected =
      d.subdomain_count() / static_cast<std::size_t>(coloring.color_count());
  for (const auto& group : coloring.groups()) {
    EXPECT_EQ(group.size(), expected);
    total += group.size();
  }
  EXPECT_EQ(total, d.subdomain_count());
  EXPECT_EQ(coloring.group_size(), expected);
}

TEST_P(ColoringDimTest, AdjacentSubdomainsNeverShareAColor) {
  const Box box = Box::cubic(24.0);  // 6 per decomposed dim
  const auto d = SpatialDecomposition::finest(box, GetParam(), kRange);
  const Coloring coloring(d);
  const std::size_t n = d.subdomain_count();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (adjacent(d, a, b)) {
        EXPECT_NE(coloring.color_of(a), coloring.color_of(b))
            << "subdomains " << a << " and " << b;
      }
    }
  }
}

TEST_P(ColoringDimTest, SameColorSubdomainsSeparatedByTwoRanges) {
  // The race-freedom invariant: scatter footprints extend `range` beyond a
  // subdomain, so same-color separation must be >= 2 * range.
  const Box box = Box::cubic(24.0);
  const auto d = SpatialDecomposition::finest(box, GetParam(), kRange);
  const Coloring coloring(d);
  EXPECT_GE(coloring.min_same_color_separation(), 2.0 * kRange);
}

INSTANTIATE_TEST_SUITE_P(AllDims, ColoringDimTest, ::testing::Values(1, 2, 3));

TEST(Coloring, OneDimensionalAlternatesRedBlack) {
  const Box box = Box::cubic(32.0);
  const SpatialDecomposition d(box, {8, 1, 1}, kRange);
  const Coloring coloring(d);
  EXPECT_EQ(coloring.color_count(), 2);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(coloring.color_of(s), static_cast<int>(s % 2));
  }
}

TEST(Coloring, ColorIsParityPattern3D) {
  const Box box = Box::cubic(16.0);
  const SpatialDecomposition d(box, {4, 4, 4}, kRange);
  const Coloring coloring(d);
  for (std::size_t s = 0; s < d.subdomain_count(); ++s) {
    const auto c = d.coords_of(s);
    const int expected = (c[0] & 1) | ((c[1] & 1) << 1) | ((c[2] & 1) << 2);
    EXPECT_EQ(coloring.color_of(s), expected);
  }
}

TEST(Coloring, MediumCaseSubdomainsPerColorMatchesPaperOrder) {
  // Paper Section II.B: "there are 340 subdomains with each color in
  // medium test case". Medium = 51^3 cells * 2.8665 A, 2-D SDC, with
  // range = cutoff + skin ~ 3.97: 51 * 2.8665 / 7.94 = 18.4 -> 18 per dim,
  // 18 * 18 / 4 colors = 81... the paper's exact skin/rc are unpublished,
  // so assert the order of magnitude (tens to hundreds per color).
  const Box box = Box::cubic(51 * 2.8665);
  const auto d = SpatialDecomposition::finest(box, 2, 3.9697);
  const Coloring coloring(d);
  EXPECT_GE(coloring.group_size(), 50u);
  EXPECT_LE(coloring.group_size(), 500u);
}

}  // namespace
}  // namespace sdcmd
