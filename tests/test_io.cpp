// XYZ reader, LAMMPS data files and checkpoint round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/units.hpp"
#include "io/checkpoint.hpp"
#include "io/lammps_data.hpp"
#include "io/xyz_reader.hpp"
#include "md/dump.hpp"
#include "md/velocity.hpp"

namespace sdcmd {
namespace {

System sample_system() {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 3;
  System system = System::from_lattice(spec, units::kMassFe);
  maxwell_boltzmann_velocities(system.atoms().velocity, system.mass(),
                               300.0, 17);
  system.atoms().image[5] = {1, -2, 0};
  return system;
}

TEST(XyzReader, RoundTripsWriteXyz) {
  const System system = sample_system();
  std::stringstream stream;
  write_xyz(stream, system, "Fe", "step=7");
  const auto frame = read_xyz_frame(stream);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->positions.size(), system.size());
  ASSERT_TRUE(frame->box.has_value());
  EXPECT_NEAR(frame->box->length(0), system.box().length(0), 1e-6);
  EXPECT_EQ(frame->species[0], "Fe");
  EXPECT_NE(frame->comment.find("step=7"), std::string::npos);
  for (std::size_t i = 0; i < system.size(); ++i) {
    EXPECT_NEAR(norm(frame->positions[i] - system.atoms().position[i]),
                0.0, 1e-7);
  }
}

TEST(XyzReader, ReadsMultipleFrames) {
  const System system = sample_system();
  std::stringstream stream;
  write_xyz(stream, system);
  write_xyz(stream, system);
  int frames = 0;
  while (read_xyz_frame(stream)) ++frames;
  EXPECT_EQ(frames, 2);
}

TEST(XyzReader, EofReturnsNullopt) {
  std::stringstream empty;
  EXPECT_FALSE(read_xyz_frame(empty).has_value());
}

TEST(XyzReader, MalformedCountThrows) {
  std::stringstream stream("not-a-number\ncomment\n");
  EXPECT_THROW(read_xyz_frame(stream), ParseError);
}

TEST(XyzReader, TruncatedFrameThrows) {
  std::stringstream stream("3\ncomment\nFe 0 0 0\n");
  EXPECT_THROW(read_xyz_frame(stream), ParseError);
}

TEST(XyzReader, ParseErrorsNameTheOffendingLine) {
  // The malformed atom row is line 4 of the stream.
  std::stringstream stream("2\ncomment\nFe 0 0 0\nFe oops 0 0\n");
  try {
    read_xyz_frame(stream);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(XyzReader, FileErrorsCarryThePath) {
  const std::string path = "sdcmd_test_bad.xyz";
  std::ofstream(path) << "1\ncomment\nFe broken\n";
  try {
    read_xyz_file(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(XyzReader, NonOrthorhombicLatticeYieldsNoBox) {
  std::stringstream stream(
      "1\nLattice=\"10 1 0 0 10 0 0 0 10\"\nFe 0 0 0\n");
  const auto frame = read_xyz_frame(stream);
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(frame->box.has_value());
}

TEST(LammpsData, RoundTripPreservesEverything) {
  const System original = sample_system();
  std::stringstream stream;
  write_lammps_data(stream, original);
  const System parsed = read_lammps_data(stream);

  EXPECT_EQ(parsed.size(), original.size());
  EXPECT_DOUBLE_EQ(parsed.mass(), original.mass());
  EXPECT_NEAR(parsed.box().length(0), original.box().length(0), 1e-12);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    // Rows are written in storage order with 1-based ids.
    EXPECT_EQ(parsed.atoms().id[i], original.atoms().id[i]);
    EXPECT_NEAR(
        norm(parsed.atoms().position[i] - original.atoms().position[i]),
        0.0, 1e-12);
    EXPECT_NEAR(
        norm(parsed.atoms().velocity[i] - original.atoms().velocity[i]),
        0.0, 1e-12);
  }
}

TEST(LammpsData, RejectsMultiTypeFiles) {
  std::stringstream stream(
      "c\n\n1 atoms\n2 atom types\n\n0 1 xlo xhi\n0 1 ylo yhi\n0 1 zlo "
      "zhi\n\nAtoms # atomic\n\n1 1 0 0 0\n");
  EXPECT_THROW(read_lammps_data(stream), ParseError);
}

TEST(LammpsData, RejectsMissingBounds) {
  std::stringstream stream("c\n\n1 atoms\n1 atom types\n\nAtoms\n\n1 1 0 0 0\n");
  EXPECT_THROW(read_lammps_data(stream), ParseError);
}

TEST(LammpsData, RejectsTruncatedAtoms) {
  std::stringstream stream(
      "c\n\n2 atoms\n1 atom types\n\n0 1 xlo xhi\n0 1 ylo yhi\n0 1 zlo "
      "zhi\n\nAtoms # atomic\n\n1 1 0 0 0\n");
  EXPECT_THROW(read_lammps_data(stream), ParseError);
}

TEST(LammpsData, ParseErrorsNameTheOffendingLine) {
  // The malformed Atoms row is line 11 of the stream.
  std::stringstream stream(
      "c\n\n1 atoms\n1 atom types\n\n0 1 xlo xhi\n0 1 ylo yhi\n0 1 zlo "
      "zhi\n\nAtoms # atomic\n\n1 1 oops 0 0\n");
  try {
    read_lammps_data(stream);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 12"), std::string::npos)
        << e.what();
  }
}

TEST(LammpsData, FileErrorsCarryThePath) {
  const std::string path = "sdcmd_test_bad.data";
  std::ofstream(path)
      << "c\n\n1 atoms\n1 atom types\n\n0 1 xlo xhi\n0 1 ylo yhi\n"
         "0 1 zlo zhi\n\nAtoms # atomic\n\n1 1 oops 0 0\n";
  try {
    read_lammps_data_file(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RoundTripIsExact) {
  const System original = sample_system();
  std::stringstream stream;
  save_checkpoint(stream, original, 1234);
  const Checkpoint restored = load_checkpoint(stream);

  EXPECT_EQ(restored.step, 1234);
  EXPECT_EQ(restored.system.size(), original.size());
  EXPECT_DOUBLE_EQ(restored.system.mass(), original.mass());
  EXPECT_EQ(restored.system.box(), original.box());
  for (std::size_t i = 0; i < original.size(); ++i) {
    // Bit-exact round trip (17 significant digits).
    EXPECT_EQ(restored.system.atoms().position[i],
              original.atoms().position[i]);
    EXPECT_EQ(restored.system.atoms().velocity[i],
              original.atoms().velocity[i]);
    EXPECT_EQ(restored.system.atoms().image[i], original.atoms().image[i]);
    EXPECT_EQ(restored.system.atoms().id[i], original.atoms().id[i]);
  }
}

TEST(Checkpoint, FileRoundTrip) {
  const std::string path = testing::TempDir() + "sdcmd_ckpt_test.chk";
  const System original = sample_system();
  save_checkpoint_file(path, original, 42);
  const Checkpoint restored = load_checkpoint_file(path);
  EXPECT_EQ(restored.step, 42);
  EXPECT_EQ(restored.system.size(), original.size());
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsBadMagic) {
  std::stringstream stream("wrong-magic 1\n");
  EXPECT_THROW(load_checkpoint(stream), ParseError);
}

TEST(Checkpoint, RejectsFutureVersion) {
  std::stringstream stream("sdcmd-checkpoint 999\nstep 0\n");
  EXPECT_THROW(load_checkpoint(stream), ParseError);
}

TEST(Checkpoint, RejectsTruncatedAtomTable) {
  const System original = sample_system();
  std::stringstream stream;
  save_checkpoint(stream, original, 0);
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_checkpoint(truncated), ParseError);
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint_file("/nonexistent/x.chk"), ParseError);
}

TEST(Checkpoint, V2CarriesChecksumFooter) {
  std::stringstream stream;
  save_checkpoint(stream, sample_system(), 3);
  const std::string text = stream.str();
  EXPECT_NE(text.find("sdcmd-checkpoint 2"), std::string::npos);
  EXPECT_NE(text.find("checksum fnv1a64 "), std::string::npos);
}

TEST(Checkpoint, DetectsSingleCharacterCorruption) {
  std::stringstream stream;
  save_checkpoint(stream, sample_system(), 3);
  std::string text = stream.str();
  // Flip one digit inside the atom table, away from the footer.
  const std::size_t pos = text.find("atoms ") + 20;
  text[pos] = text[pos] == '7' ? '8' : '7';
  std::stringstream corrupted(text);
  EXPECT_THROW(load_checkpoint(corrupted), ChecksumError);
}

TEST(Checkpoint, LegacyV1StillLoads) {
  // v1 files have no checksum footer; they parse with validation only.
  std::stringstream stream(
      "sdcmd-checkpoint 1\nstep 5\nmass 55.845\n"
      "box 0 0 0 10 10 10 1 1 1\natoms 1\n"
      "0 1 2 3 0.1 0.2 0.3 0 0 0\n");
  const Checkpoint c = load_checkpoint(stream);
  EXPECT_EQ(c.step, 5);
  EXPECT_EQ(c.system.size(), 1u);
  EXPECT_DOUBLE_EQ(c.system.atoms().position[0].y, 2.0);
}

TEST(Checkpoint, HugeAtomCountFailsFastOnTruncatedFile) {
  // The declared count exceeds the rows present: must fail before trying
  // to read (or allocate) a billion atoms.
  std::stringstream stream(
      "sdcmd-checkpoint 1\nstep 0\nmass 55.845\n"
      "box 0 0 0 10 10 10 1 1 1\natoms 1000000000\n"
      "0 1 2 3 0.1 0.2 0.3 0 0 0\n");
  try {
    load_checkpoint(stream);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("rows remain"), std::string::npos);
  }
}

TEST(Checkpoint, RejectsNonPositiveOrNonFiniteMass) {
  std::stringstream stream(
      "sdcmd-checkpoint 1\nstep 0\nmass -5\n"
      "box 0 0 0 10 10 10 1 1 1\natoms 0\n");
  EXPECT_THROW(load_checkpoint(stream), ParseError);
}

TEST(Checkpoint, RejectsInvertedBox) {
  std::stringstream stream(
      "sdcmd-checkpoint 1\nstep 0\nmass 55.845\n"
      "box 0 0 0 -10 10 10 1 1 1\natoms 0\n");
  EXPECT_THROW(load_checkpoint(stream), ParseError);
}

TEST(Checkpoint, TruncatedV2LosesItsFooter) {
  std::stringstream stream;
  save_checkpoint(stream, sample_system(), 9);
  std::string text = stream.str();
  text.resize(text.size() - 10);  // clip inside the footer line
  std::stringstream truncated(text);
  EXPECT_THROW(load_checkpoint(truncated), ParseError);
}

TEST(Checkpoint, SaveFileLeavesNoTempBehind) {
  const std::string path = testing::TempDir() + "sdcmd_ckpt_atomic.chk";
  save_checkpoint_file(path, sample_system(), 1);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file should have been renamed away";
  EXPECT_EQ(load_checkpoint_file(path).step, 1);
  std::remove(path.c_str());
}

TEST(Checkpoint, FailedSaveUnlinksItsTempFile) {
  // A detected short write must throw AND clean up: a retrying caller (the
  // run supervisor) would otherwise accumulate one stale .tmp per attempt.
  const std::string path = testing::TempDir() + "sdcmd_ckpt_shortw.chk";
  save_checkpoint_file(path, sample_system(), 1);  // previous generation

  FaultSpec fault;
  fault.magnitude = 0.5;
  FaultInjector::instance().arm(faults::kCheckpointShortWrite, fault);
  EXPECT_THROW(save_checkpoint_file(path, sample_system(), 2), Error);
  FaultInjector::instance().disarm_all();

  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "failed save left " << path << ".tmp behind";
  // The previous generation is untouched.
  EXPECT_EQ(load_checkpoint_file(path).step, 1);
  std::remove(path.c_str());
}

TEST(Checkpoint, DiskFullFaultCleansUpAndThrows) {
  const std::string path = testing::TempDir() + "sdcmd_ckpt_enospc.chk";
  FaultSpec fault;
  fault.shots = 1;
  FaultInjector::instance().arm(faults::kDiskFull, fault);
  try {
    save_checkpoint_file(path, sample_system(), 3);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no space left"), std::string::npos);
  }
  FaultInjector::instance().disarm_all();
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  // The fault consumed its shot: the retry goes through.
  save_checkpoint_file(path, sample_system(), 3);
  EXPECT_EQ(load_checkpoint_file(path).step, 3);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncationErrorsPointAtRowLineAndByte) {
  // v1 (no footer, so the parser — not the checksum — sees the damage):
  // the second atom row is cut short mid-field.
  std::stringstream truncated(
      "sdcmd-checkpoint 1\nstep 0\nmass 55.845\n"
      "box 0 0 0 10 10 10 1 1 1\natoms 2\n"
      "0 1 2 3 0.1 0.2 0.3 0 0 0\n"
      "1 4 5 6\n");
  try {
    load_checkpoint(truncated);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("row 1 of 2"), std::string::npos) << what;
    EXPECT_NE(what.find("line "), std::string::npos) << what;
    EXPECT_NE(what.find("byte "), std::string::npos) << what;
  }
}

TEST(Checkpoint, FileErrorsArePrefixedWithThePath) {
  const std::string path = testing::TempDir() + "sdcmd_ckpt_badfile.chk";
  {
    std::ofstream out(path, std::ios::binary);
    out << "sdcmd-checkpoint 2\nstep x\n";
  }
  try {
    load_checkpoint_file(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sdcmd
