// XYZ reader, LAMMPS data files and checkpoint round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"
#include "io/checkpoint.hpp"
#include "io/lammps_data.hpp"
#include "io/xyz_reader.hpp"
#include "md/dump.hpp"
#include "md/velocity.hpp"

namespace sdcmd {
namespace {

System sample_system() {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 3;
  System system = System::from_lattice(spec, units::kMassFe);
  maxwell_boltzmann_velocities(system.atoms().velocity, system.mass(),
                               300.0, 17);
  system.atoms().image[5] = {1, -2, 0};
  return system;
}

TEST(XyzReader, RoundTripsWriteXyz) {
  const System system = sample_system();
  std::stringstream stream;
  write_xyz(stream, system, "Fe", "step=7");
  const auto frame = read_xyz_frame(stream);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->positions.size(), system.size());
  ASSERT_TRUE(frame->box.has_value());
  EXPECT_NEAR(frame->box->length(0), system.box().length(0), 1e-6);
  EXPECT_EQ(frame->species[0], "Fe");
  EXPECT_NE(frame->comment.find("step=7"), std::string::npos);
  for (std::size_t i = 0; i < system.size(); ++i) {
    EXPECT_NEAR(norm(frame->positions[i] - system.atoms().position[i]),
                0.0, 1e-7);
  }
}

TEST(XyzReader, ReadsMultipleFrames) {
  const System system = sample_system();
  std::stringstream stream;
  write_xyz(stream, system);
  write_xyz(stream, system);
  int frames = 0;
  while (read_xyz_frame(stream)) ++frames;
  EXPECT_EQ(frames, 2);
}

TEST(XyzReader, EofReturnsNullopt) {
  std::stringstream empty;
  EXPECT_FALSE(read_xyz_frame(empty).has_value());
}

TEST(XyzReader, MalformedCountThrows) {
  std::stringstream stream("not-a-number\ncomment\n");
  EXPECT_THROW(read_xyz_frame(stream), ParseError);
}

TEST(XyzReader, TruncatedFrameThrows) {
  std::stringstream stream("3\ncomment\nFe 0 0 0\n");
  EXPECT_THROW(read_xyz_frame(stream), ParseError);
}

TEST(XyzReader, NonOrthorhombicLatticeYieldsNoBox) {
  std::stringstream stream(
      "1\nLattice=\"10 1 0 0 10 0 0 0 10\"\nFe 0 0 0\n");
  const auto frame = read_xyz_frame(stream);
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(frame->box.has_value());
}

TEST(LammpsData, RoundTripPreservesEverything) {
  const System original = sample_system();
  std::stringstream stream;
  write_lammps_data(stream, original);
  const System parsed = read_lammps_data(stream);

  EXPECT_EQ(parsed.size(), original.size());
  EXPECT_DOUBLE_EQ(parsed.mass(), original.mass());
  EXPECT_NEAR(parsed.box().length(0), original.box().length(0), 1e-12);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    // Rows are written in storage order with 1-based ids.
    EXPECT_EQ(parsed.atoms().id[i], original.atoms().id[i]);
    EXPECT_NEAR(
        norm(parsed.atoms().position[i] - original.atoms().position[i]),
        0.0, 1e-12);
    EXPECT_NEAR(
        norm(parsed.atoms().velocity[i] - original.atoms().velocity[i]),
        0.0, 1e-12);
  }
}

TEST(LammpsData, RejectsMultiTypeFiles) {
  std::stringstream stream(
      "c\n\n1 atoms\n2 atom types\n\n0 1 xlo xhi\n0 1 ylo yhi\n0 1 zlo "
      "zhi\n\nAtoms # atomic\n\n1 1 0 0 0\n");
  EXPECT_THROW(read_lammps_data(stream), ParseError);
}

TEST(LammpsData, RejectsMissingBounds) {
  std::stringstream stream("c\n\n1 atoms\n1 atom types\n\nAtoms\n\n1 1 0 0 0\n");
  EXPECT_THROW(read_lammps_data(stream), ParseError);
}

TEST(LammpsData, RejectsTruncatedAtoms) {
  std::stringstream stream(
      "c\n\n2 atoms\n1 atom types\n\n0 1 xlo xhi\n0 1 ylo yhi\n0 1 zlo "
      "zhi\n\nAtoms # atomic\n\n1 1 0 0 0\n");
  EXPECT_THROW(read_lammps_data(stream), ParseError);
}

TEST(Checkpoint, RoundTripIsExact) {
  const System original = sample_system();
  std::stringstream stream;
  save_checkpoint(stream, original, 1234);
  const Checkpoint restored = load_checkpoint(stream);

  EXPECT_EQ(restored.step, 1234);
  EXPECT_EQ(restored.system.size(), original.size());
  EXPECT_DOUBLE_EQ(restored.system.mass(), original.mass());
  EXPECT_EQ(restored.system.box(), original.box());
  for (std::size_t i = 0; i < original.size(); ++i) {
    // Bit-exact round trip (17 significant digits).
    EXPECT_EQ(restored.system.atoms().position[i],
              original.atoms().position[i]);
    EXPECT_EQ(restored.system.atoms().velocity[i],
              original.atoms().velocity[i]);
    EXPECT_EQ(restored.system.atoms().image[i], original.atoms().image[i]);
    EXPECT_EQ(restored.system.atoms().id[i], original.atoms().id[i]);
  }
}

TEST(Checkpoint, FileRoundTrip) {
  const std::string path = testing::TempDir() + "sdcmd_ckpt_test.chk";
  const System original = sample_system();
  save_checkpoint_file(path, original, 42);
  const Checkpoint restored = load_checkpoint_file(path);
  EXPECT_EQ(restored.step, 42);
  EXPECT_EQ(restored.system.size(), original.size());
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsBadMagic) {
  std::stringstream stream("wrong-magic 1\n");
  EXPECT_THROW(load_checkpoint(stream), ParseError);
}

TEST(Checkpoint, RejectsFutureVersion) {
  std::stringstream stream("sdcmd-checkpoint 999\nstep 0\n");
  EXPECT_THROW(load_checkpoint(stream), ParseError);
}

TEST(Checkpoint, RejectsTruncatedAtomTable) {
  const System original = sample_system();
  std::stringstream stream;
  save_checkpoint(stream, original, 0);
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_checkpoint(truncated), ParseError);
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint_file("/nonexistent/x.chk"), ParseError);
}

}  // namespace
}  // namespace sdcmd
