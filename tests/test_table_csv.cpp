#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace sdcmd {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"case", "threads", "speedup"});
  t.add_row({"small", "2", "1.71"});
  t.add_row({"large4", "16", "12.42"});
  const std::string out = t.render();
  EXPECT_NE(out.find("case"), std::string::npos);
  EXPECT_NE(out.find("12.42"), std::string::npos);
  // header + underline + 2 rows = 4 lines
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(AsciiTable, PadsShortRows) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(AsciiTable, FormatsDoubles) {
  EXPECT_EQ(AsciiTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::fmt(12.0, 1), "12.0");
  EXPECT_EQ(AsciiTable::fmt(-0.5, 3), "-0.500");
}

TEST(AsciiTable, ColumnsAlign) {
  AsciiTable t({"x", "yyyy"});
  t.add_row({"longer", "1"});
  const std::string out = t.render();
  std::istringstream is(out);
  std::string l1, l2, l3;
  std::getline(is, l1);
  std::getline(is, l2);
  std::getline(is, l3);
  EXPECT_EQ(l1.size(), l2.size());
  EXPECT_EQ(l1.size(), l3.size());
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "sdcmd_csv_test.csv";
  {
    CsvWriter w(path, {"name", "value"});
    ASSERT_TRUE(w.ok());
    w.add_row({"alpha", "1"});
    w.add_row({"beta,comma", "2"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "alpha,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"beta,comma\",2");
  std::remove(path.c_str());
}

TEST(CsvWriter, UnopenableFileDropsRowsQuietly) {
  CsvWriter w("/nonexistent-dir/x.csv", {"a"});
  EXPECT_FALSE(w.ok());
  EXPECT_NO_THROW(w.add_row({"1"}));
}

}  // namespace
}  // namespace sdcmd
