// Observability subsystem: metrics registry semantics, JSON emission,
// JSONL / Chrome-trace exporters, SDC sweep profiling (including numerics
// parity between the profiled and plain kernel paths), simulation wiring,
// and the ThermoLog CSV round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "geom/lattice.hpp"
#include "md/simulation.hpp"
#include "md/thermo_log.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/sweep_profile.hpp"
#include "obs/trace.hpp"
#include "core/strategy_governor.hpp"
#include "potential/finnis_sinclair.hpp"
#include "run/run_dir.hpp"
#include "run/supervisor.hpp"

namespace sdcmd {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------- metrics

TEST(MetricsRegistry, InterningIsIdempotentPerKind) {
  obs::MetricsRegistry reg;
  const auto a = reg.counter("x");
  EXPECT_EQ(reg.counter("x"), a);
  EXPECT_NE(reg.gauge("g"), a);
  EXPECT_THROW(reg.gauge("x"), PreconditionError);
  EXPECT_THROW(reg.stats("x"), PreconditionError);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.name(a), "x");
  EXPECT_EQ(reg.kind(a), obs::MetricKind::Counter);
}

TEST(MetricsRegistry, StepSnapshotReportsDeltas) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("c");
  const auto g = reg.gauge("g");
  reg.add(c, 3.0);
  reg.set(g, 42.0);

  auto snap = reg.step_snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "c");
  EXPECT_DOUBLE_EQ(snap[0].value, 3.0);  // delta
  EXPECT_DOUBLE_EQ(snap[1].value, 42.0);

  reg.add(c, 2.0);
  snap = reg.step_snapshot();
  // Counter delta is 2 (not 5); the unchanged gauge is still reported.
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].value, 2.0);
  EXPECT_DOUBLE_EQ(reg.value(c), 5.0);  // cumulative survives

  // Nothing moved: only the gauge appears.
  snap = reg.step_snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "g");
}

TEST(MetricsRegistry, StatsWindowsResetAtSnapshot) {
  obs::MetricsRegistry reg;
  const auto s = reg.stats("t");
  reg.observe(s, 1.0);
  reg.observe(s, 3.0);

  auto snap = reg.step_snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].window.count(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].window.mean(), 2.0);

  reg.observe(s, 10.0);
  snap = reg.step_snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].window.count(), 1u);  // window reset between snapshots
  EXPECT_DOUBLE_EQ(snap[0].window.mean(), 10.0);
  EXPECT_EQ(reg.total_stats(s).count(), 3u);  // cumulative keeps everything
}

TEST(MetricsRegistry, DisabledMutationsAreDropped) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("c");
  const auto s = reg.stats("s");
  reg.set_enabled(false);
  reg.add(c, 5.0);
  reg.observe(s, 1.0);
  EXPECT_DOUBLE_EQ(reg.value(c), 0.0);
  EXPECT_EQ(reg.total_stats(s).count(), 0u);
  reg.set_enabled(true);
  reg.add(c);
  EXPECT_DOUBLE_EQ(reg.value(c), 1.0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("c");
  reg.add(c, 9.0);
  (void)reg.step_snapshot();
  reg.reset();
  EXPECT_DOUBLE_EQ(reg.value(c), 0.0);
  reg.add(c, 1.0);
  auto snap = reg.step_snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap[0].value, 1.0);
}

TEST(MetricSpan, ObservesElapsedAndToleratesNullRegistry) {
  obs::MetricsRegistry reg;
  const auto s = reg.stats("span");
  {
    obs::MetricSpan span(&reg, s);
  }
  EXPECT_EQ(reg.total_stats(s).count(), 1u);
  EXPECT_GE(reg.total_stats(s).min(), 0.0);
  {
    obs::MetricSpan null_span(nullptr, 0);  // must not crash
  }
  reg.set_enabled(false);
  {
    obs::MetricSpan span(&reg, s);
  }
  EXPECT_EQ(reg.total_stats(s).count(), 1u);  // disabled: no observation
}

// ------------------------------------------------------------------- json

TEST(Json, StringEscaping) {
  std::string out;
  obs::append_json_string(out, "a\"b\\c\n\t\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  std::string out;
  obs::append_json_number(out, std::numeric_limits<double>::quiet_NaN());
  out += ",";
  obs::append_json_number(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null,null");
}

TEST(Json, WriterBuildsNestedDocument) {
  std::string out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.member("a", 1);
  w.key("list");
  w.begin_array();
  w.value(2.5);
  w.value("x");
  w.value(true);
  w.value(obs::JsonValue());
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.member("b", std::string("q"));
  w.end_object();
  w.end_object();
  EXPECT_EQ(out, R"({"a":1,"list":[2.5,"x",true,null],"nested":{"b":"q"}})");
}

// ---------------------------------------------------------- sweep profile

TEST(SdcSweepProfiler, ColorProfileMath) {
  obs::SdcSweepProfiler prof;
  prof.configure({"density", "force"}, 2, 3);
  prof.set_enabled(true);
  prof.begin_step();

  // Color 0 of "density": thread work 1.0 / 3.0 / 2.0 -> mean 2, max 3.
  for (int t = 0; t < 3; ++t) {
    obs::SweepSample s;
    s.start = 0.0;
    s.work = 1.0 + ((t * 2) % 3);  // 1, 3, 2
    s.wait = 3.0 - s.work;         // 2, 0, 1
    s.valid = true;
    prof.record(0, 0, t, s);
  }
  // Color 1 untouched; phase "force" gets one single-thread sample.
  obs::SweepSample f;
  f.work = 4.0;
  f.valid = true;
  prof.record(1, 1, 2, f);

  const auto profiles = prof.color_profiles();
  ASSERT_EQ(profiles.size(), 2u);

  EXPECT_EQ(profiles[0].phase, 0);
  EXPECT_EQ(profiles[0].color, 0);
  EXPECT_EQ(profiles[0].threads, 3);
  EXPECT_DOUBLE_EQ(profiles[0].work_max, 3.0);
  EXPECT_DOUBLE_EQ(profiles[0].work_mean, 2.0);
  EXPECT_DOUBLE_EQ(profiles[0].work_min, 1.0);
  EXPECT_DOUBLE_EQ(profiles[0].imbalance, 1.5);
  EXPECT_DOUBLE_EQ(profiles[0].wait_max, 2.0);
  EXPECT_DOUBLE_EQ(profiles[0].wait_mean, 1.0);

  EXPECT_EQ(profiles[1].phase, 1);
  EXPECT_EQ(profiles[1].color, 1);
  EXPECT_EQ(profiles[1].threads, 1);
  EXPECT_DOUBLE_EQ(profiles[1].imbalance, 1.0);

  prof.begin_step();
  EXPECT_TRUE(prof.color_profiles().empty());  // samples invalidated
}

TEST(SdcSweepProfiler, ConfigureIsIdempotentOnSameShape) {
  obs::SdcSweepProfiler prof;
  prof.configure({"a"}, 2, 2);
  obs::SweepSample s;
  s.work = 1.0;
  s.valid = true;
  prof.record(0, 1, 1, s);
  prof.configure({"a"}, 2, 2);  // same shape: samples survive
  EXPECT_EQ(prof.color_profiles().size(), 1u);
  prof.configure({"a"}, 3, 2);  // new shape: reallocated
  EXPECT_EQ(prof.colors(), 3);
  EXPECT_TRUE(prof.color_profiles().empty());
}

// -------------------------------------------------------------- exporters

TEST(StepMetricsWriter, EmitsOneSchemaTaggedLinePerStep) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("sim.steps");
  const std::string path = temp_path("sdcmd_steps.jsonl");
  {
    obs::StepMetricsWriter w(path);
    ASSERT_TRUE(w.ok());
    reg.add(c, 1.0);
    w.write_step(1, reg, nullptr, 0.25);
    reg.add(c, 1.0);
    w.write_step(2, reg);
    EXPECT_EQ(w.records(), 2u);
    w.flush();
  }
  std::ifstream in(path);
  std::string l1, l2, extra;
  ASSERT_TRUE(std::getline(in, l1));
  ASSERT_TRUE(std::getline(in, l2));
  EXPECT_FALSE(std::getline(in, extra));

  EXPECT_NE(l1.find("\"schema\":\"sdcmd.step_metrics.v1\""), std::string::npos);
  EXPECT_NE(l1.find("\"step\":1"), std::string::npos);
  EXPECT_NE(l1.find("\"wall_s\":0.25"), std::string::npos);
  EXPECT_NE(l1.find("\"sim.steps\":1"), std::string::npos);
  EXPECT_EQ(l1.find("\"sweep\""), std::string::npos);  // no profiler given
  EXPECT_NE(l2.find("\"step\":2"), std::string::npos);
  EXPECT_EQ(l2.find("wall_s"), std::string::npos);  // no wall time given
  std::remove(path.c_str());
}

TEST(StepMetricsWriter, EmbedsSweepProfiles) {
  obs::MetricsRegistry reg;
  obs::SdcSweepProfiler prof;
  prof.configure({"density"}, 1, 2);
  obs::SweepSample s;
  s.work = 2.0;
  s.wait = 0.5;
  s.valid = true;
  prof.record(0, 0, 0, s);
  s.work = 1.0;
  s.wait = 1.5;
  prof.record(0, 0, 1, s);

  const std::string path = temp_path("sdcmd_sweep.jsonl");
  obs::StepMetricsWriter w(path);
  ASSERT_TRUE(w.ok());
  w.write_step(5, reg, &prof, 0.0);
  w.flush();
  const std::string line = slurp(path);
  EXPECT_NE(line.find("\"sweep\":[{"), std::string::npos);
  EXPECT_NE(line.find("\"phase\":\"density\""), std::string::npos);
  EXPECT_NE(line.find("\"threads\":2"), std::string::npos);
  EXPECT_NE(line.find("\"work_max_s\":2"), std::string::npos);
  EXPECT_NE(line.find("\"imbalance\":1.33"), std::string::npos);
  EXPECT_NE(line.find("\"wait_max_s\":1.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StepMetricsWriter, SummaryRecordCarriesCumulativeTotals) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("work.items");
  const auto s = reg.stats("work.seconds");
  const std::string path = temp_path("sdcmd_summary.jsonl");
  {
    obs::StepMetricsWriter w(path);
    ASSERT_TRUE(w.ok());
    reg.add(c, 2.0);
    reg.observe(s, 1.0);
    w.write_step(1, reg);
    reg.add(c, 3.0);
    reg.observe(s, 5.0);
    w.write_step(2, reg);
    // The summary must report run totals, not the last step's deltas,
    // and must leave the step windows alone.
    w.write_summary(2, reg, 0.5);
    EXPECT_EQ(w.records(), 3u);
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  ASSERT_TRUE(std::getline(in, l1));
  ASSERT_TRUE(std::getline(in, l2));
  ASSERT_TRUE(std::getline(in, l3));
  EXPECT_EQ(l1.find("\"kind\""), std::string::npos);
  EXPECT_NE(l2.find("\"work.items\":3"), std::string::npos);  // step delta
  EXPECT_NE(l3.find("\"schema\":\"sdcmd.step_metrics.v1\""),
            std::string::npos);
  EXPECT_NE(l3.find("\"kind\":\"summary\""), std::string::npos);
  EXPECT_NE(l3.find("\"step\":2"), std::string::npos);
  EXPECT_NE(l3.find("\"wall_s\":0.5"), std::string::npos);
  EXPECT_NE(l3.find("\"work.items\":5"), std::string::npos);  // run total
  EXPECT_NE(l3.find("\"count\":2"), std::string::npos);  // whole-run stats
  EXPECT_NE(l3.find("\"sum\":6"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StepMetricsWriter, UnopenablePathReportsNotOk) {
  obs::MetricsRegistry reg;
  obs::StepMetricsWriter w("/nonexistent-dir/x.jsonl");
  EXPECT_FALSE(w.ok());
  w.write_step(1, reg);  // dropped, must not crash
  EXPECT_EQ(w.records(), 0u);
}

TEST(TraceWriter, ChromeTraceEnvelope) {
  obs::TraceWriter trace;
  trace.set_time_origin(100.0);
  trace.set_thread_name(3, "omp thread 3");
  trace.complete_event("work", "sweep", 100.0, 0.002, 3);
  trace.instant_event("rollback", "guardrail", 100.001, 1000);
  trace.counter_event("steps", 100.002, 7.0);
  EXPECT_EQ(trace.size(), 3u);

  const std::string json = trace.to_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  // Thread metadata first so viewers name tracks before slices arrive.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_LT(json.find("thread_name"), json.find("\"ph\":\"X\""));
  // Microsecond timestamps relative to the origin.
  EXPECT_NE(json.find("\"ts\":0,\"dur\":2000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);

  const std::string path = temp_path("sdcmd_trace.json");
  ASSERT_TRUE(trace.write(path));
  EXPECT_EQ(slurp(path), json + "\n");
  std::remove(path.c_str());
  EXPECT_FALSE(trace.write("/nonexistent-dir/x.json"));
}

TEST(TraceWriter, EmptyTraceIsStillWellFormed) {
  // A run that never produced an event (e.g. instrumentation attached but
  // zero steps taken) must still write a document Perfetto can load.
  obs::TraceWriter trace;
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.to_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
  const std::string path = temp_path("sdcmd_empty_trace.json");
  ASSERT_TRUE(trace.write(path));
  EXPECT_EQ(slurp(path), trace.to_json() + "\n");
  std::remove(path.c_str());
}

TEST(TraceWriter, AppendSweepEventsBuildsThreadTracks) {
  obs::SdcSweepProfiler prof;
  prof.configure({"force"}, 1, 2);
  obs::SweepSample s;
  s.start = 10.0;
  s.work = 0.5;
  s.wait = 0.25;
  s.valid = true;
  prof.record(0, 0, 0, s);

  obs::TraceWriter trace;
  trace.set_time_origin(10.0);
  obs::append_sweep_events(trace, prof, "step 3/");
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("step 3/force/c0"), std::string::npos);
  EXPECT_NE(json.find("barrier"), std::string::npos);
  EXPECT_NE(json.find("omp thread 0"), std::string::npos);
}

TEST(BenchReport, VersionedEnvelope) {
  obs::BenchReport report("demo");
  report.set_context("scale", "tiny");
  report.set_context("steps", 2);
  report.set_context("steps", 3);  // upsert, not duplicate
  report.add_result({{"case", "small"},
                     {"speedup", 1.5},
                     {"feasible", true},
                     {"blank", obs::JsonValue()}});
  EXPECT_EQ(report.results(), 1u);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\":\"sdcmd.bench.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"steps\":3"), std::string::npos);
  EXPECT_EQ(json.find("\"steps\":2"), std::string::npos);
  EXPECT_NE(json.find("\"blank\":null"), std::string::npos);
}

// ------------------------------------------------------- perf counters

TEST(HwCounts, DerivedRatesAndAccumulate) {
  obs::HwCounts a;
  a.cycles = 100.0;
  a.instructions = 250.0;
  a.cache_refs = 50.0;
  a.cache_misses = 5.0;
  a.fp_scalar = 10.0;
  a.fp_vector = 30.0;
  a.has_fp = true;
  a.valid = true;
  EXPECT_DOUBLE_EQ(a.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(a.cache_miss_rate(), 0.1);
  EXPECT_DOUBLE_EQ(a.fp_vector_frac(), 0.75);

  obs::HwCounts zero;
  EXPECT_DOUBLE_EQ(zero.ipc(), 0.0);  // no division by zero
  EXPECT_DOUBLE_EQ(zero.cache_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(zero.fp_vector_frac(), 0.0);

  obs::HwCounts sum;
  sum.accumulate(a);
  sum.accumulate(a);
  EXPECT_TRUE(sum.valid);
  EXPECT_TRUE(sum.has_fp);
  EXPECT_DOUBLE_EQ(sum.cycles, 200.0);
  EXPECT_DOUBLE_EQ(sum.instructions, 500.0);
  sum.accumulate(zero);  // invalid samples are skipped, not zero-added
  EXPECT_DOUBLE_EQ(sum.cycles, 200.0);
}

TEST(PerfPhaseProfiler, DegradesToNoOpWhenUnavailable) {
  // The availability probe is ground truth for this host (it is denied in
  // containers/CI); both branches of this test must pass everywhere.
  obs::PerfPhaseProfiler prof;
  EXPECT_FALSE(prof.enabled());
  prof.set_enabled(true);
  EXPECT_EQ(prof.enabled(), obs::PerfPhaseProfiler::available());

  prof.configure({"density", "embed", "force"}, 2);
  EXPECT_EQ(prof.phases(), 3);
  EXPECT_EQ(prof.threads(), 2);
  EXPECT_EQ(prof.phase_name(1), "embed");

  // The full per-step protocol must be safe whether or not counters
  // opened; with them closed it must simply produce nothing.
  prof.begin_step();
  prof.thread_begin(0);
  for (volatile int i = 0; i < 100000; ++i) {
  }
  prof.thread_mark(0, 0);
  prof.thread_mark(1, 0);
  prof.thread_mark(2, 0);
  const auto totals = prof.phase_totals();
  if (prof.enabled()) {
    ASSERT_FALSE(totals.empty());
    for (const auto& t : totals) {
      EXPECT_TRUE(t.counts.valid);
      EXPECT_GT(t.counts.cycles, 0.0);
      EXPECT_GT(t.counts.instructions, 0.0);
    }
  } else {
    EXPECT_TRUE(totals.empty());
  }

  prof.set_enabled(false);
  EXPECT_FALSE(prof.enabled());
}

// ----------------------------------------------------- profiled EAM sweep

struct EamWorkload {
  Box box;
  std::vector<Vec3> positions;
  FinnisSinclair potential{FinnisSinclairParams::iron()};
  std::unique_ptr<NeighborList> half;

  explicit EamWorkload(int cells) : box(Box::cubic(cells * units::kLatticeFe)) {
    LatticeSpec spec;
    spec.type = LatticeType::Bcc;
    spec.a0 = units::kLatticeFe;
    spec.nx = spec.ny = spec.nz = cells;
    positions = build_lattice(spec);
    NeighborListConfig cfg;
    cfg.cutoff = potential.cutoff();
    cfg.skin = 0.4;
    half = std::make_unique<NeighborList>(box, cfg);
    half->build(positions);
  }
};

TEST(PerfPhaseProfiler, ComputerWiringSurvivesBothAvailabilities) {
  EamWorkload w(6);
  const std::size_t n = w.positions.size();
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Sdc;
  cfg.sdc.dimensionality = 2;
  EamForceComputer computer(w.potential, cfg);
  computer.attach_schedule(w.box, w.potential.cutoff() + 0.4);
  computer.on_neighbor_rebuild(w.positions);
  computer.hw_profiler().set_enabled(true);

  std::vector<double> rho(n), fp(n);
  std::vector<Vec3> force(n);
  computer.compute(w.box, w.positions, *w.half, rho, fp, force);

  if (computer.hw_profiler().enabled()) {
    const auto totals = computer.hw_profiler().phase_totals();
    bool saw[3] = {false, false, false};
    for (const auto& t : totals) {
      ASSERT_GE(t.phase, 0);
      ASSERT_LT(t.phase, 3);
      saw[t.phase] = true;
      EXPECT_GT(t.counts.cycles, 0.0);
    }
    EXPECT_TRUE(saw[0] && saw[1] && saw[2]);
  } else {
    EXPECT_TRUE(computer.hw_profiler().phase_totals().empty());
  }
}

TEST(ProfiledSweep, MatchesPlainKernelBitwise) {
  // 6 cells: smallest bcc cube whose edge fits two SDC subdomains of
  // 2 x (cutoff + skin).
  EamWorkload w(6);
  const std::size_t n = w.positions.size();

  auto run = [&](bool profiled) {
    EamForceConfig cfg;
    cfg.strategy = ReductionStrategy::Sdc;
    cfg.sdc.dimensionality = 2;
    EamForceComputer computer(w.potential, cfg);
    computer.attach_schedule(w.box, w.potential.cutoff() + 0.4);
    computer.on_neighbor_rebuild(w.positions);
    computer.sweep_profiler().set_enabled(profiled);
    std::vector<double> rho(n), fp(n);
    std::vector<Vec3> force(n);
    const EamForceResult r =
        computer.compute(w.box, w.positions, *w.half, rho, fp, force);
    if (profiled) {
      // Profiler shaped to the schedule with all three phases recorded.
      const auto& prof = computer.sweep_profiler();
      EXPECT_EQ(prof.phases(), 3);
      const auto profiles = prof.color_profiles();
      EXPECT_FALSE(profiles.empty());
      bool saw[3] = {false, false, false};
      for (const auto& p : profiles) {
        saw[p.phase] = true;
        EXPECT_GE(p.work_max, p.work_mean);
        EXPECT_GE(p.work_mean, p.work_min);
        EXPECT_GE(p.imbalance, 1.0);
        EXPECT_GE(p.wait_max, 0.0);
      }
      EXPECT_TRUE(saw[0]);  // density
      EXPECT_TRUE(saw[1]);  // embed
      EXPECT_TRUE(saw[2]);  // force
    }
    return std::make_pair(r, force);
  };

  const auto [plain_result, plain_force] = run(false);
  const auto [prof_result, prof_force] = run(true);
  // The profiled variant keeps the same static schedule, so every atom's
  // force is accumulated in the same order: forces must match bitwise.
  // The scalar energy/virial go through an OpenMP reduction whose combine
  // order is thread-arrival order, so those get an ULP-scale tolerance.
  EXPECT_NEAR(prof_result.pair_energy, plain_result.pair_energy,
              1e-12 * std::abs(plain_result.pair_energy));
  EXPECT_NEAR(prof_result.embedding_energy, plain_result.embedding_energy,
              1e-12 * std::abs(plain_result.embedding_energy));
  EXPECT_NEAR(prof_result.virial, plain_result.virial,
              1e-12 * std::abs(plain_result.virial) + 1e-15);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(prof_force[i].x, plain_force[i].x);
    EXPECT_EQ(prof_force[i].y, plain_force[i].y);
    EXPECT_EQ(prof_force[i].z, plain_force[i].z);
  }
}

// ------------------------------------------------------ simulation wiring

TEST(SimulationInstrumentation, CountersJsonlAndTrace) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 6;  // big enough for 2-D SDC
  System system = System::from_lattice(spec, units::kMassFe);
  FinnisSinclair iron(FinnisSinclairParams::iron());

  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Sdc;
  cfg.force.sdc.dimensionality = 2;
  cfg.rebuild_interval = 2;  // deterministic rebuilds for the counter check
  Simulation sim(std::move(system), iron, cfg);
  sim.set_temperature(50.0, 1234);

  obs::MetricsRegistry registry;
  const std::string jsonl_path = temp_path("sdcmd_sim_steps.jsonl");
  obs::StepMetricsWriter jsonl(jsonl_path);
  ASSERT_TRUE(jsonl.ok());
  obs::TraceWriter trace;

  InstrumentationConfig instr;
  instr.registry = &registry;
  instr.step_writer = &jsonl;
  instr.trace = &trace;
  instr.profile_sweep = true;
  sim.set_instrumentation(instr);
  EXPECT_TRUE(sim.has_instrumentation());

  sim.run(5);

  EXPECT_DOUBLE_EQ(registry.value(registry.counter("sim.steps")), 5.0);
  EXPECT_EQ(registry.total_stats(registry.stats("sim.step_seconds")).count(),
            5u);
  EXPECT_GE(registry.value(registry.counter("sim.neighbor_rebuilds")), 1.0);
  EXPECT_EQ(jsonl.records(), 5u);
  EXPECT_GT(trace.size(), 5u);  // 5 step spans + sweep slices

  jsonl.flush();
  const std::string body = slurp(jsonl_path);
  EXPECT_NE(body.find("\"sim.steps\":1"), std::string::npos);
  EXPECT_NE(body.find("\"sweep\":[{"), std::string::npos);
  EXPECT_NE(body.find("\"phase\":\"density\""), std::string::npos);
  const std::string trace_json = trace.to_json();
  EXPECT_NE(trace_json.find("\"step 1\""), std::string::npos);
  EXPECT_NE(trace_json.find("omp thread 0"), std::string::npos);

  sim.clear_instrumentation();
  EXPECT_FALSE(sim.has_instrumentation());
  sim.run(1);  // uninstrumented run keeps working
  EXPECT_EQ(jsonl.records(), 5u);
  std::remove(jsonl_path.c_str());
}

TEST(SimulationInstrumentation, HwAndSweepGaugesRoundTripThroughJsonl) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 6;
  System system = System::from_lattice(spec, units::kMassFe);
  FinnisSinclair iron(FinnisSinclairParams::iron());

  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Sdc;
  cfg.force.sdc.dimensionality = 2;
  Simulation sim(std::move(system), iron, cfg);
  sim.set_temperature(50.0, 7);

  obs::MetricsRegistry registry;
  const std::string jsonl_path = temp_path("sdcmd_hw_gauges.jsonl");
  obs::StepMetricsWriter jsonl(jsonl_path);
  ASSERT_TRUE(jsonl.ok());

  InstrumentationConfig instr;
  instr.registry = &registry;
  instr.step_writer = &jsonl;
  instr.profile_sweep = true;
  instr.profile_hw = true;
  sim.set_instrumentation(instr);
  sim.run(3);

  // hw.available reports what the probe found; on denied hosts every hw
  // gauge stays 0 but the family is still present in the stream.
  const double avail = registry.value(registry.gauge("hw.available"));
  EXPECT_EQ(avail, obs::PerfPhaseProfiler::available() ? 1.0 : 0.0);
  if (avail == 1.0) {
    EXPECT_GT(registry.value(registry.gauge("hw.force.ipc")), 0.0);
    EXPECT_GT(
        registry.value(registry.gauge("hw.force.cycles_per_atom")), 0.0);
    EXPECT_GT(registry.value(registry.counter("hw.cycles")), 0.0);
  }
  // The SDC sweep ran, so the derived load-balance gauges must be live:
  // imbalance >= 1 by construction, barrier fraction in [0, 1).
  EXPECT_GE(registry.value(registry.gauge("sweep.imbalance")), 1.0);
  const double bf = registry.value(registry.gauge("sweep.barrier_frac"));
  EXPECT_GE(bf, 0.0);
  EXPECT_LT(bf, 1.0);

  jsonl.flush();
  const std::string body = slurp(jsonl_path);
  EXPECT_NE(body.find("\"hw.available\":"), std::string::npos);
  EXPECT_NE(body.find("\"hw.force.ipc\":"), std::string::npos);
  EXPECT_NE(body.find("\"sweep.imbalance\":"), std::string::npos);
  EXPECT_NE(body.find("\"sweep.barrier_frac\":"), std::string::npos);
  std::remove(jsonl_path.c_str());
}

TEST(SimulationInstrumentation, HwGaugesStayOutOfUnprofiledStreams) {
  // The hw./sweep. families are interned only when requested: a plain
  // instrumented run must not carry them (gauges always re-report, so
  // unconditional interning would pollute every record).
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 3;
  System system = System::from_lattice(spec, units::kMassFe);
  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;
  Simulation sim(std::move(system), iron, cfg);

  obs::MetricsRegistry registry;
  InstrumentationConfig instr;
  instr.registry = &registry;
  sim.set_instrumentation(instr);
  sim.run(2);

  for (std::size_t h = 0; h < registry.size(); ++h) {
    EXPECT_NE(registry.name(h).rfind("hw.", 0), 0u) << registry.name(h);
    EXPECT_NE(registry.name(h).rfind("sweep.", 0), 0u) << registry.name(h);
  }
}

namespace {

/// Pull every `"key":value` number out of one JSONL line.
double json_number(const std::string& line, const std::string& key,
                   double fallback) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return fallback;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

/// Split the `"sweep":[...]` array of one JSONL line into its `{...}`
/// record substrings (empty if the line carries no sweep array).
std::vector<std::string> sweep_records(const std::string& line) {
  std::vector<std::string> records;
  const std::size_t start = line.find("\"sweep\":[");
  if (start == std::string::npos) return records;
  std::size_t pos = start;
  while (true) {
    const std::size_t open = line.find('{', pos);
    const std::size_t close = line.find('}', open);
    if (open == std::string::npos || close == std::string::npos) break;
    records.push_back(line.substr(open, close - open + 1));
    pos = close + 1;
    if (pos < line.size() && line[pos] == ']') break;
  }
  return records;
}

}  // namespace

TEST(SimulationInstrumentation, SweepProfilerReshapesWhenGovernorDropsColors) {
  // A governor demotion from SDC to the cell-task shape collapses the
  // profiler's (colors x threads) sample store to the colorless 1-color
  // shape MID-RUN. Every JSONL record on both sides of the collapse must
  // be complete — a torn record (stale color indices surviving the
  // reshape, or a partially-populated slot store) is exactly the latent
  // bug this seam invites.
  FaultInjector::instance().disarm_all();
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Error);  // the demotion warning is expected

  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 6;
  System system = System::from_lattice(spec, units::kMassFe);
  FinnisSinclair iron(FinnisSinclairParams::iron());

  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Sdc;
  Simulation sim(std::move(system), iron, cfg);
  sim.set_temperature(50.0, 99);

  obs::MetricsRegistry registry;
  const std::string jsonl_path = temp_path("sdcmd_sweep_reshape.jsonl");
  obs::StepMetricsWriter jsonl(jsonl_path);
  ASSERT_TRUE(jsonl.ok());
  InstrumentationConfig instr;
  instr.registry = &registry;
  instr.step_writer = &jsonl;
  instr.profile_sweep = true;
  sim.set_instrumentation(instr);
  sim.set_governor(GovernorConfig{});
  ASSERT_EQ(sim.governor()->active(), ReductionStrategy::Sdc);

  FaultSpec fault;
  fault.countdown = 4;  // fires inside step 5
  fault.magnitude = 0.9;
  FaultInjector::instance().arm(faults::kBoxShrink, fault);
  sim.run(12);
  FaultInjector::instance().disarm_all();
  set_log_level(saved);
  ASSERT_EQ(sim.governor()->active(), ReductionStrategy::CellTask);

  jsonl.flush();
  std::ifstream in(jsonl_path);
  std::string line;
  const double celltask_code = static_cast<double>(
      StrategyGovernor::strategy_code(ReductionStrategy::CellTask));
  const char* keys[] = {"\"phase\":",      "\"color\":",      "\"threads\":",
                        "\"work_max_s\":", "\"work_mean_s\":", "\"work_min_s\":",
                        "\"imbalance\":",  "\"wait_max_s\":",  "\"wait_mean_s\":"};
  int sdc_steps = 0, task_steps = 0;
  bool saw_task_shape = false, saw_gauge_flip = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.back(), '}') << "torn (truncated) JSONL record: " << line;
    const auto records = sweep_records(line);
    ASSERT_FALSE(records.empty()) << "profiled step lost its sweep: " << line;
    int max_color = 0;
    for (const auto& rec : records) {
      for (const char* key : keys) {
        EXPECT_NE(rec.find(key), std::string::npos)
            << "torn sweep record " << rec;
      }
      const int color = static_cast<int>(json_number(rec, "color", -1.0));
      ASSERT_GE(color, 0) << rec;
      max_color = std::max(max_color, color);
    }
    // The demotion fires at the END of the fault step (the box-shrink is a
    // barostat-shaped end-of-step event), so that one line carries the new
    // gauge value alongside the last SDC-shaped sweep. The collapse itself
    // must be monotone: once the 1-color task shape appears, no later step
    // may emit a multi-color record (a stale color index surviving the
    // reshape is exactly the torn-record bug this test pins).
    if (max_color == 0) {
      saw_task_shape = true;
      ++task_steps;
    } else {
      EXPECT_FALSE(saw_task_shape)
          << "multi-color sweep after the colorless collapse: " << line;
      ++sdc_steps;
    }
    if (json_number(line, "governor.active_strategy", -1.0) ==
        celltask_code) {
      saw_gauge_flip = true;
    } else {
      EXPECT_FALSE(saw_gauge_flip) << "gauge flipped back: " << line;
      EXPECT_EQ(max_color == 0, false)
          << "task-shaped sweep before the demotion: " << line;
    }
  }
  EXPECT_TRUE(saw_gauge_flip);
  EXPECT_GE(sdc_steps, 4);   // steps before the fault fired
  EXPECT_GE(task_steps, 6);  // steps after the collapse
  std::remove(jsonl_path.c_str());
}

TEST(RunSupervisorObs, NamesItsTraceTrackAndFlushesSummary) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 3;
  System system = System::from_lattice(spec, units::kMassFe);
  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;
  Simulation sim(std::move(system), iron, cfg);
  sim.set_temperature(50.0, 3);

  obs::MetricsRegistry registry;
  const std::string jsonl_path = temp_path("sdcmd_sup_summary.jsonl");
  obs::StepMetricsWriter jsonl(jsonl_path);
  ASSERT_TRUE(jsonl.ok());
  obs::TraceWriter trace;

  InstrumentationConfig instr;
  instr.registry = &registry;
  instr.step_writer = &jsonl;
  sim.set_instrumentation(instr);

  const std::string dir = testing::TempDir() + "sdcmd_sup_obs_run.d";
  std::filesystem::remove_all(dir);
  run::RunDir run_dir(dir, 2);
  run::SupervisorConfig sup;
  sup.checkpoint_every = 2;
  sup.install_signal_handlers = false;
  sup.registry = &registry;
  sup.trace = &trace;
  sup.step_writer = &jsonl;
  run::RunSupervisor supervisor(sim, run_dir, sup);

  // The supervisor's track is named at construction so even a run that
  // never emits a marker gets a labelled tid 1001 in the viewer.
  const std::string before = trace.to_json();
  EXPECT_NE(before.find("\"tid\":1001"), std::string::npos);
  EXPECT_NE(before.find("\"name\":\"supervisor\""), std::string::npos);

  EXPECT_EQ(supervisor.run_to(3), run::RunOutcome::Completed);
  jsonl.flush();
  const std::string body = slurp(jsonl_path);
  const auto pos = body.rfind("\"kind\":\"summary\"");
  ASSERT_NE(pos, std::string::npos);
  // The summary is the stream's last record.
  EXPECT_EQ(body.find('\n', body.rfind("{\"schema\"")),
            body.size() - 1);
  EXPECT_NE(body.find("\"run.checkpoints\":", pos), std::string::npos);
  std::remove(jsonl_path.c_str());
}

TEST(SimulationInstrumentation, GuardrailEventsBecomeCounters) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 3;
  System system = System::from_lattice(spec, units::kMassFe);
  FinnisSinclair iron(FinnisSinclairParams::iron());

  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;
  Simulation sim(std::move(system), iron, cfg);
  sim.set_temperature(50.0, 99);

  GuardrailConfig guard;
  guard.health.cadence = 1;
  guard.checkpoint_every = 2;
  sim.set_guardrails(guard);

  obs::MetricsRegistry registry;
  InstrumentationConfig instr;
  instr.registry = &registry;
  sim.set_instrumentation(instr);

  sim.run(4);
  EXPECT_GE(registry.value(registry.counter("guard.health_checks")), 4.0);
  EXPECT_GE(registry.value(registry.counter("guard.checkpoints")), 2.0);
  EXPECT_DOUBLE_EQ(registry.value(registry.counter("guard.rollbacks")), 0.0);
}

TEST(SimulationInstrumentation, RejectsInvalidConfig) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = 3;
  System system = System::from_lattice(spec, units::kMassFe);
  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig cfg;
  cfg.force.strategy = ReductionStrategy::Serial;  // box too small for SDC
  Simulation sim(std::move(system), iron, cfg);

  InstrumentationConfig bad;
  bad.registry = nullptr;
  obs::StepMetricsWriter w(temp_path("sdcmd_reject.jsonl"));
  bad.step_writer = &w;  // writer without a registry
  EXPECT_THROW(sim.set_instrumentation(bad), PreconditionError);

  InstrumentationConfig zero;
  obs::MetricsRegistry reg;
  zero.registry = &reg;
  zero.sample_every = 0;
  EXPECT_THROW(sim.set_instrumentation(zero), PreconditionError);
}

// ----------------------------------------------------------- phase timers

TEST(PhaseTimers, SlotHandlesMatchNameLookup) {
  PhaseTimers timers;
  const std::size_t h = timers.index("force");
  EXPECT_EQ(timers.index("force"), h);  // interning is stable
  timers.slot(h).start();
  timers.slot(h).stop();
  EXPECT_EQ(timers["force"].laps(), 1u);
  timers["force"].start();
  timers["force"].stop();
  EXPECT_EQ(timers.slot(h).laps(), 2u);
  EXPECT_NE(timers.index("density"), h);
  ASSERT_EQ(timers.entries().size(), 2u);
  EXPECT_EQ(timers.entries()[0].name, "force");
}

// -------------------------------------------------------------- thermolog

TEST(ThermoLog, CsvRoundTripsEveryColumn) {
  ThermoLog log;
  ThermoSample a;
  a.step = 3;
  a.temperature = 297.125;
  a.kinetic_energy = 1.5;
  a.pair_energy = -10.25;
  a.embedding_energy = -4.75;
  a.pressure = 0.0625;
  ThermoSample b = a;
  b.step = 4;
  b.temperature = 301.5;
  log.record(a);
  log.record(b);

  const std::string path = temp_path("sdcmd_thermo_roundtrip.csv");
  ASSERT_TRUE(log.write_csv(path));

  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "step,temperature,kinetic,pair,embedding,total,pressure");

  std::vector<ThermoSample> parsed;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream is(line);
    std::string field;
    ThermoSample s;
    std::getline(is, field, ',');
    s.step = std::stol(field);
    std::getline(is, field, ',');
    s.temperature = std::stod(field);
    std::getline(is, field, ',');
    s.kinetic_energy = std::stod(field);
    std::getline(is, field, ',');
    s.pair_energy = std::stod(field);
    std::getline(is, field, ',');
    s.embedding_energy = std::stod(field);
    std::getline(is, field, ',');
    const double total = std::stod(field);
    std::getline(is, field, ',');
    s.pressure = std::stod(field);
    EXPECT_NEAR(total, s.total_energy(), 1e-3);
    parsed.push_back(s);
  }
  ASSERT_EQ(parsed.size(), log.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const ThermoSample& want = log.samples()[i];
    EXPECT_EQ(parsed[i].step, want.step);
    // write_csv prints %.4f-style fixed columns; round-trip to that grain.
    EXPECT_NEAR(parsed[i].temperature, want.temperature, 1e-3);
    EXPECT_NEAR(parsed[i].kinetic_energy, want.kinetic_energy, 1e-3);
    EXPECT_NEAR(parsed[i].pair_energy, want.pair_energy, 1e-3);
    EXPECT_NEAR(parsed[i].embedding_energy, want.embedding_energy, 1e-3);
    EXPECT_NEAR(parsed[i].pressure, want.pressure, 1e-3);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sdcmd
