// Cell-direct EAM path vs the Verlet-list kernels, plus defect generators.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "core/cell_direct.hpp"
#include "core/eam_force.hpp"
#include "geom/defects.hpp"
#include "geom/lattice.hpp"
#include "potential/finnis_sinclair.hpp"

namespace sdcmd {
namespace {

const FinnisSinclair& iron() {
  static FinnisSinclair fe{FinnisSinclairParams::iron()};
  return fe;
}

struct Crystal {
  Box box = Box::cubic(1.0);
  std::vector<Vec3> positions;

  explicit Crystal(int cells, double jitter = 0.05) {
    LatticeSpec spec;
    spec.type = LatticeType::Bcc;
    spec.a0 = units::kLatticeFe;
    spec.nx = spec.ny = spec.nz = cells;
    box = spec.box();
    positions = build_lattice(spec);
    Xoshiro256 rng(9);
    for (auto& r : positions) {
      r += Vec3{rng.normal(0.0, jitter), rng.normal(0.0, jitter),
                rng.normal(0.0, jitter)};
      r = box.wrap(r);
    }
  }
};

TEST(CellDirect, MatchesVerletListKernels) {
  Crystal c(5);  // 5 cells of a0 -> 4 grid cells per dim at the cutoff
  const std::size_t n = c.positions.size();

  std::vector<double> rho_direct(n), fp_direct(n);
  std::vector<Vec3> force_direct(n);
  const auto direct = eam_cell_direct(c.box, c.positions, iron(),
                                      rho_direct, fp_direct, force_direct);

  NeighborListConfig nl;
  nl.cutoff = iron().cutoff();
  nl.skin = 0.0;  // same interaction set as the cell-direct sweep
  NeighborList list(c.box, nl);
  list.build(c.positions);
  EamForceConfig cfg;
  cfg.strategy = ReductionStrategy::Serial;
  EamForceComputer computer(iron(), cfg);
  std::vector<double> rho_list(n), fp_list(n);
  std::vector<Vec3> force_list(n);
  const auto listed = computer.compute(c.box, c.positions, list, rho_list,
                                       fp_list, force_list);

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(rho_direct[i], rho_list[i],
                1e-10 * std::max(1.0, rho_list[i]))
        << "atom " << i;
    EXPECT_NEAR(norm(force_direct[i] - force_list[i]), 0.0, 1e-9)
        << "atom " << i;
  }
  EXPECT_NEAR(direct.pair_energy, listed.pair_energy,
              1e-9 * std::abs(listed.pair_energy));
  EXPECT_NEAR(direct.embedding_energy, listed.embedding_energy,
              1e-9 * std::abs(listed.embedding_energy));
  EXPECT_NEAR(direct.virial, listed.virial,
              1e-8 * std::max(1.0, std::abs(listed.virial)));
}

TEST(CellDirect, RejectsTooNarrowGrids) {
  Crystal c(2, 0.0);  // 5.7 A box: fewer than 3 cells per dim
  std::vector<double> rho(c.positions.size()), fp(c.positions.size());
  std::vector<Vec3> force(c.positions.size());
  EXPECT_THROW(
      eam_cell_direct(c.box, c.positions, iron(), rho, fp, force),
      PreconditionError);
}

TEST(CellDirect, TotalForceVanishes) {
  Crystal c(5);
  std::vector<double> rho(c.positions.size()), fp(c.positions.size());
  std::vector<Vec3> force(c.positions.size());
  eam_cell_direct(c.box, c.positions, iron(), rho, fp, force);
  Vec3 total{};
  for (const auto& f : force) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-9);
}

// ---------------------------------------------------------------------------

TEST(Defects, VacanciesRemoveTheRightCount) {
  Crystal c(4, 0.0);
  const std::size_t before = c.positions.size();
  const auto removed = make_vacancies(c.positions, 7, 42);
  EXPECT_EQ(c.positions.size(), before - 7);
  EXPECT_EQ(removed.size(), 7u);
}

TEST(Defects, VacanciesAreDeterministic) {
  Crystal a(4, 0.0), b(4, 0.0);
  make_vacancies(a.positions, 5, 1);
  make_vacancies(b.positions, 5, 1);
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i], b.positions[i]);
  }
}

TEST(Defects, VacancyCountValidation) {
  std::vector<Vec3> tiny{{0, 0, 0}};
  EXPECT_THROW(make_vacancies(tiny, 2, 1), PreconditionError);
}

TEST(Defects, InterstitialsLandNearHosts) {
  Crystal c(4, 0.0);
  const std::size_t before = c.positions.size();
  const double spacing = units::kLatticeFe * std::sqrt(3.0) / 2.0;
  const auto inserted =
      make_interstitials(c.positions, c.box, 3, spacing, 7);
  EXPECT_EQ(c.positions.size(), before + 3);
  // Every insertion must sit within offset*spacing of some original atom.
  for (const Vec3& site : inserted) {
    double min_d = 1e30;
    for (std::size_t i = 0; i < before; ++i) {
      min_d = std::min(min_d,
                       std::sqrt(c.box.distance2(site, c.positions[i])));
    }
    EXPECT_LT(min_d, 0.36 * spacing);
  }
}

TEST(Defects, DamageSphereOnlyTouchesTheSphere) {
  Crystal c(5, 0.0);
  const auto original = c.positions;
  const Vec3 center{7.0, 7.0, 7.0};
  const double radius = 4.0;
  const auto touched =
      damage_sphere(c.positions, c.box, center, radius, 0.5, 3);
  EXPECT_FALSE(touched.empty());

  std::set<std::size_t> touched_set(touched.begin(), touched.end());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const bool moved = !(c.positions[i] == original[i]);
    if (touched_set.count(i)) {
      EXPECT_LE(std::sqrt(c.box.distance2(original[i], center)),
                radius + 1e-12);
      EXPECT_LE(std::sqrt(c.box.distance2(c.positions[i], original[i])),
                0.5 + 1e-12);
    } else {
      EXPECT_FALSE(moved) << "atom " << i << " outside the sphere moved";
    }
  }
}

}  // namespace
}  // namespace sdcmd
