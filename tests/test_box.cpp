#include "geom/box.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sdcmd {
namespace {

TEST(Box, CubicFactory) {
  const Box box = Box::cubic(10.0);
  EXPECT_EQ(box.lo(), (Vec3{0.0, 0.0, 0.0}));
  EXPECT_EQ(box.hi(), (Vec3{10.0, 10.0, 10.0}));
  EXPECT_DOUBLE_EQ(box.volume(), 1000.0);
  EXPECT_TRUE(box.periodic(0));
}

TEST(Box, RejectsEmptyExtent) {
  EXPECT_THROW(Box({0, 0, 0}, {1, 0, 1}), PreconditionError);
  EXPECT_THROW(Box({2, 0, 0}, {1, 1, 1}), PreconditionError);
}

TEST(Box, WrapBringsPositionsInside) {
  const Box box = Box::cubic(10.0);
  EXPECT_EQ(box.wrap({11.0, -1.0, 25.0}), (Vec3{1.0, 9.0, 5.0}));
  EXPECT_EQ(box.wrap({5.0, 5.0, 5.0}), (Vec3{5.0, 5.0, 5.0}));
  // exactly hi maps to lo
  const Vec3 w = box.wrap({10.0, 10.0, 10.0});
  EXPECT_EQ(w, (Vec3{0.0, 0.0, 0.0}));
}

TEST(Box, WrapTracksImages) {
  const Box box = Box::cubic(10.0);
  std::array<int, 3> image{0, 0, 0};
  const Vec3 w = box.wrap({23.0, -7.0, 5.0}, image);
  EXPECT_NEAR(w.x, 3.0, 1e-12);
  EXPECT_NEAR(w.y, 3.0, 1e-12);
  EXPECT_EQ(image[0], 2);
  EXPECT_EQ(image[1], -1);
  EXPECT_EQ(image[2], 0);
}

TEST(Box, NonPeriodicDimensionIsNotWrapped) {
  const Box box({0, 0, 0}, {10, 10, 10}, {true, false, true});
  const Vec3 w = box.wrap({12.0, 12.0, 12.0});
  EXPECT_NEAR(w.x, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.y, 12.0);
}

TEST(Box, MinimumImagePicksNearestCopy) {
  const Box box = Box::cubic(10.0);
  const Vec3 d = box.minimum_image({9.5, 0.0, 0.0}, {0.5, 0.0, 0.0});
  EXPECT_NEAR(d.x, -1.0, 1e-12);
  EXPECT_NEAR(box.distance2({9.5, 0, 0}, {0.5, 0, 0}), 1.0, 1e-12);
}

TEST(Box, MinimumImageAtHalfBox) {
  const Box box = Box::cubic(10.0);
  // displacement of exactly L/2 stays magnitude L/2
  const Vec3 d = box.minimum_image({7.5, 0.0, 0.0}, {2.5, 0.0, 0.0});
  EXPECT_NEAR(std::abs(d.x), 5.0, 1e-12);
}

TEST(Box, MinimumImageRespectsNonPeriodicDims) {
  const Box box({0, 0, 0}, {10, 10, 10}, {false, true, true});
  const Vec3 d = box.minimum_image({9.5, 0.0, 0.0}, {0.5, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(d.x, 9.0);
}

TEST(Box, Contains) {
  const Box box = Box::cubic(10.0);
  EXPECT_TRUE(box.contains({0.0, 0.0, 0.0}));
  EXPECT_TRUE(box.contains({9.999, 5.0, 5.0}));
  EXPECT_FALSE(box.contains({10.0, 5.0, 5.0}));
  EXPECT_FALSE(box.contains({-0.001, 5.0, 5.0}));
}

TEST(Box, RescaleAndAffineMap) {
  Box box = Box::cubic(10.0);
  const Box old = box;
  box.rescale({1.1, 1.0, 0.9});
  EXPECT_NEAR(box.length(0), 11.0, 1e-12);
  EXPECT_NEAR(box.length(1), 10.0, 1e-12);
  EXPECT_NEAR(box.length(2), 9.0, 1e-12);

  const Vec3 mapped = box.affine_map({5.0, 5.0, 5.0}, old);
  EXPECT_NEAR(mapped.x, 5.5, 1e-12);
  EXPECT_NEAR(mapped.y, 5.0, 1e-12);
  EXPECT_NEAR(mapped.z, 4.5, 1e-12);
}

TEST(Box, RescaleRejectsNonPositiveFactors) {
  Box box = Box::cubic(10.0);
  EXPECT_THROW(box.rescale({0.0, 1.0, 1.0}), PreconditionError);
  EXPECT_THROW(box.rescale({1.0, -1.0, 1.0}), PreconditionError);
}

TEST(Box, OffsetOriginWrap) {
  const Box box({-5.0, -5.0, -5.0}, {5.0, 5.0, 5.0});
  const Vec3 w = box.wrap({6.0, -6.0, 0.0});
  EXPECT_NEAR(w.x, -4.0, 1e-12);
  EXPECT_NEAR(w.y, 4.0, 1e-12);
}

}  // namespace
}  // namespace sdcmd
