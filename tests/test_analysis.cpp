// MSD, coordination and per-atom stress tests.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/coordination.hpp"
#include "analysis/msd.hpp"
#include "analysis/stress.hpp"
#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "md/simulation.hpp"
#include "md/thermo.hpp"
#include "md/velocity.hpp"
#include "potential/finnis_sinclair.hpp"

namespace sdcmd {
namespace {

System bcc_system(int cells) {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = cells;
  return System::from_lattice(spec, units::kMassFe);
}

TEST(Msd, ZeroForUnmovedSystem) {
  const System system = bcc_system(3);
  MsdTracker msd(system);
  EXPECT_DOUBLE_EQ(msd.sample(system), 0.0);
}

TEST(Msd, TracksUniformDisplacement) {
  System system = bcc_system(3);
  MsdTracker msd(system);
  for (auto& r : system.atoms().position) r += Vec3{0.3, 0.4, 0.0};
  EXPECT_NEAR(msd.sample(system), 0.25, 1e-12);
}

TEST(Msd, UnwrapsPeriodicCrossings) {
  System system = bcc_system(3);
  MsdTracker msd(system);
  // Push every atom one full box length +0.5 along x, then wrap.
  const double lx = system.box().length(0);
  for (auto& r : system.atoms().position) r.x += lx + 0.5;
  system.wrap_positions();
  EXPECT_NEAR(msd.sample(system), (lx + 0.5) * (lx + 0.5), 1e-9);
}

TEST(Msd, SurvivesAtomReordering) {
  System system = bcc_system(3);
  MsdTracker msd(system);
  for (auto& r : system.atoms().position) r += Vec3{0.1, 0.0, 0.0};
  // Reverse the storage order; ids travel with the atoms.
  std::vector<std::uint32_t> perm(system.size());
  for (std::uint32_t i = 0; i < perm.size(); ++i) {
    perm[i] = static_cast<std::uint32_t>(perm.size()) - 1 - i;
  }
  system.atoms().reorder(perm);
  EXPECT_NEAR(msd.sample(system), 0.01, 1e-12);
}

TEST(Msd, RebaseMovesTheReference) {
  System system = bcc_system(3);
  MsdTracker msd(system);
  for (auto& r : system.atoms().position) r += Vec3{1.0, 0.0, 0.0};
  msd.rebase(system);
  EXPECT_DOUBLE_EQ(msd.sample(system), 0.0);
}

TEST(Msd, GrowsDuringHotDynamics) {
  FinnisSinclair iron(FinnisSinclairParams::iron());
  SimulationConfig cfg;
  cfg.dt = units::fs_to_internal(1.0);
  cfg.force.strategy = ReductionStrategy::Serial;
  Simulation sim(bcc_system(4), iron, cfg);
  sim.set_temperature(300.0, 21);
  MsdTracker msd(sim.system());
  sim.run(50);
  const double mid = msd.sample(sim.system());
  EXPECT_GT(mid, 0.0);
}

TEST(Coordination, PerfectBccIs14WithinFsCutoff) {
  const System system = bcc_system(4);
  const auto result = coordination_numbers(
      system.box(), system.atoms().position, 3.97);
  EXPECT_DOUBLE_EQ(result.mean(), 14.0);
  EXPECT_EQ(result.histogram.size(), 1u);
  EXPECT_TRUE(result.defects(14).empty());
}

TEST(Coordination, VacancyLowersNeighborCounts) {
  System system = bcc_system(4);
  auto positions = system.atoms().position;
  positions.erase(positions.begin() + 37);  // knock out one atom
  const auto result =
      coordination_numbers(system.box(), positions, 3.97);
  const auto defects = result.defects(14);
  // The removed atom had 14 neighbors; each now misses one.
  EXPECT_EQ(defects.size(), 14u);
  for (std::size_t i : defects) {
    EXPECT_EQ(result.per_atom[i], 13);
  }
}

TEST(Coordination, BccShellArithmetic) {
  const double a0 = units::kLatticeFe;
  EXPECT_EQ(bcc_coordination_within(a0, 2.6), 8);    // first shell only
  EXPECT_EQ(bcc_coordination_within(a0, 3.97), 14);  // + second shell
  EXPECT_EQ(bcc_coordination_within(a0, 4.2), 26);   // + third shell
}

class StressFixture : public ::testing::Test {
 protected:
  StressFixture()  // 6 cells: large enough for the 2-D SDC schedule test
      : iron(FinnisSinclairParams::iron()), system(bcc_system(6)) {
    NeighborListConfig nl;
    nl.cutoff = iron.cutoff();
    nl.skin = 0.4;
    list = std::make_unique<NeighborList>(system.box(), nl);
    list->build(system.atoms().position);

    EamForceConfig cfg;
    cfg.strategy = ReductionStrategy::Serial;
    computer = std::make_unique<EamForceComputer>(iron, cfg);
    Atoms& atoms = system.atoms();
    result = computer->compute(system.box(), atoms.position, *list,
                               atoms.rho, atoms.fp, atoms.force);
  }

  FinnisSinclair iron;
  System system;
  std::unique_ptr<NeighborList> list;
  std::unique_ptr<EamForceComputer> computer;
  EamForceResult result;
};

TEST_F(StressFixture, SumOfPerAtomVirialsMatchesGlobalPressure) {
  PerAtomStress stress(iron);
  std::vector<StressTensor> tensors;
  stress.compute(system.box(), system.atoms().position, {}, system.mass(),
                 *list, system.atoms().fp, tensors);
  ASSERT_EQ(tensors.size(), system.size());

  // Sum of per-atom stress * per-atom volume = -total virial tensor;
  // trace relation: sum(hydrostatic * V/N) = -virial/3... with zero
  // velocities, pressure = virial / (3V), and our per-atom stresses give
  // total hydrostatic * (V/N) summed = -virial/3.
  const StressTensor total = PerAtomStress::total(tensors);
  const double per_atom_volume =
      system.box().volume() / static_cast<double>(system.size());
  const double virial_from_atoms =
      -total.hydrostatic() * 3.0 * per_atom_volume;
  EXPECT_NEAR(virial_from_atoms, result.virial,
              1e-8 * std::max(1.0, std::abs(result.virial)));
}

TEST_F(StressFixture, PerfectLatticeIsHomogeneous) {
  PerAtomStress stress(iron);
  std::vector<StressTensor> tensors;
  stress.compute(system.box(), system.atoms().position, {}, system.mass(),
                 *list, system.atoms().fp, tensors);
  for (const auto& t : tensors) {
    EXPECT_NEAR(t.xx, tensors[0].xx, 1e-9);
    EXPECT_NEAR(t.xy, 0.0, 1e-9);  // cubic symmetry: no shear
    EXPECT_NEAR(t.von_mises(), 0.0, 1e-8);
  }
}

TEST_F(StressFixture, SdcParallelMatchesSerial) {
  PerAtomStress stress(iron);
  std::vector<StressTensor> serial, parallel;
  stress.compute(system.box(), system.atoms().position, {}, system.mass(),
                 *list, system.atoms().fp, serial);

  SdcConfig sdc;
  sdc.dimensionality = 2;
  SdcSchedule schedule(system.box(), iron.cutoff() + 0.4, sdc);
  schedule.rebuild(system.atoms().position);
  stress.compute(system.box(), system.atoms().position, {}, system.mass(),
                 *list, system.atoms().fp, parallel, &schedule);

  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i].xx, parallel[i].xx, 1e-10);
    EXPECT_NEAR(serial[i].xy, parallel[i].xy, 1e-10);
  }
}

TEST_F(StressFixture, KineticTermAddsIdealGasPressure) {
  Atoms& atoms = system.atoms();
  maxwell_boltzmann_velocities(atoms.velocity, system.mass(), 300.0, 5);

  PerAtomStress stress(iron);
  std::vector<StressTensor> cold, hot;
  stress.compute(system.box(), atoms.position, {}, system.mass(), *list,
                 atoms.fp, cold);
  stress.compute(system.box(), atoms.position, atoms.velocity,
                 system.mass(), *list, atoms.fp, hot);

  const double d_hydro = PerAtomStress::total(hot).hydrostatic() -
                         PerAtomStress::total(cold).hydrostatic();
  // Kinetic contribution to the pressure: (dof/3) kB T / V (negative in
  // our tension-negative convention, summed over atoms of volume V/N).
  // Velocity init zeroes the COM momentum, so dof = 3N - 3, not 3N.
  const double dof =
      static_cast<double>(temperature_dof(system.size(), true));
  const double expected =
      -dof / 3.0 * units::kBoltzmann * 300.0 /
      (system.box().volume() / static_cast<double>(system.size()));
  EXPECT_NEAR(d_hydro, expected, 1e-6 * std::abs(expected));
}

TEST(StressTensor, VonMisesOfPureShear) {
  StressTensor t;
  t.xy = 1.0;
  EXPECT_NEAR(t.von_mises(), std::sqrt(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(t.hydrostatic(), 0.0);
}

}  // namespace
}  // namespace sdcmd
