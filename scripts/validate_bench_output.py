#!/usr/bin/env python3
"""Validate the machine-readable bench artifacts against their schemas.

Used by the CI bench-smoke job (and handy locally) to verify that:
  * --bench FILE   is a sdcmd.bench.v1 report with the required envelope
                   and at least one result row carrying the given columns;
  * --jsonl FILE   is sdcmd.step_metrics.v1 JSONL whose records include
                   per-color/per-phase sweep profiles with imbalance and
                   barrier-wait statistics;
  * --trace FILE   is a Chrome trace-event document Perfetto can load
                   (a traceEvents array with complete events).

Exits non-zero with a message on the first violation.
"""

from __future__ import annotations

import argparse
import json
import sys

SWEEP_KEYS = {
    "phase",
    "color",
    "threads",
    "work_max_s",
    "work_mean_s",
    "work_min_s",
    "imbalance",
    "wait_max_s",
    "wait_mean_s",
}


def fail(message: str) -> None:
    sys.exit(f"validate_bench_output: {message}")


def check_bench(
    path: str, require_columns: list[str], require_cases: list[str]
) -> None:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "sdcmd.bench.v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want sdcmd.bench.v1")
    for key in ("bench", "context", "results"):
        if key not in doc:
            fail(f"{path}: missing top-level key {key!r}")
    if not isinstance(doc["results"], list) or not doc["results"]:
        fail(f"{path}: results must be a non-empty array")
    for row in doc["results"]:
        for col in require_columns:
            if col not in row:
                fail(f"{path}: result row missing column {col!r}: {row}")
        # Latency histograms must be internally consistent: a row that
        # carries percentile columns must order them.
        if all(k in row for k in ("p50_ms", "p95_ms", "p99_ms")):
            if not row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]:
                fail(
                    f"{path}: percentiles out of order in row "
                    f"{row.get('case')!r}: p50={row['p50_ms']} "
                    f"p95={row['p95_ms']} p99={row['p99_ms']}"
                )
        # Cell-task rows must be internally consistent: every stolen task
        # was spawned, a non-empty run has a queue, and the busy figures
        # are fractions of the slowest thread's time.
        if row.get("task.spawned"):
            if row.get("task.steals", 0) > row["task.spawned"]:
                fail(
                    f"{path}: task.steals {row['task.steals']} exceeds "
                    f"task.spawned {row['task.spawned']} in row "
                    f"{row.get('strategy')!r}"
                )
            if row.get("task.max_queue_depth", 0) < 1:
                fail(
                    f"{path}: task.spawned > 0 but task.max_queue_depth "
                    f"< 1 in row {row.get('strategy')!r}"
                )
            busy_min = row.get("task.busy_min", 0.0)
            busy_mean = row.get("task.busy_mean", 0.0)
            if not 0.0 <= busy_min <= busy_mean <= 1.0 + 1e-9:
                fail(
                    f"{path}: task busy fractions out of order in row "
                    f"{row.get('strategy')!r}: min={busy_min} "
                    f"mean={busy_mean}"
                )
    feasible = [r for r in doc["results"] if r.get("feasible")]
    if not feasible:
        fail(f"{path}: no feasible result rows")
    seen_cases = {r.get("case") for r in doc["results"]}
    for case in require_cases:
        if case not in seen_cases:
            fail(
                f"{path}: no result row with case {case!r} "
                f"(saw {sorted(c for c in seen_cases if c)})"
            )
    print(
        f"{path}: ok - bench {doc['bench']!r}, {len(doc['results'])} rows "
        f"({len(feasible)} feasible)"
    )


def check_metric_prefix(path: str, prefix: str, records: list) -> str:
    """Prefix requirement (trailing dot, e.g. ``hw.``): at least one metric
    under the prefix must appear. The ``hw.`` family degrades gracefully:
    when the stream says ``<prefix>available == 0`` (perf_event_open denied
    or non-Linux) the availability gauge alone satisfies the check, but an
    *available* family must carry real data beyond it."""
    seen = {name for rec in records for name in rec["metrics"]}
    matches = {name for name in seen if name.startswith(prefix)}
    if not matches:
        fail(f"{path}: no metric under prefix {prefix!r} (saw {sorted(seen)})")
    avail_name = prefix + "available"
    if avail_name in matches:
        values = {
            rec["metrics"][avail_name]
            for rec in records
            if avail_name in rec["metrics"]
        }
        if values == {0}:
            return f"{prefix}* unavailable ({avail_name}=0)"
        # Counters claimed available: insist the family has real content.
        real = {
            name
            for name in matches - {avail_name}
            if any(rec["metrics"].get(name) for rec in records)
        }
        if not real:
            fail(
                f"{path}: {avail_name}=1 but every other {prefix}* metric "
                f"is zero or absent"
            )
    return f"{prefix}* x{len(matches)}"


def check_jsonl(
    path: str,
    require_metrics: list[str],
    require_sweep: bool,
    require_summary: bool,
) -> None:
    records = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: invalid JSON: {e}")
    if not records:
        fail(f"{path}: no records")
    swept = 0
    for i, rec in enumerate(records):
        if rec.get("schema") != "sdcmd.step_metrics.v1":
            fail(f"{path}: record {i} schema is {rec.get('schema')!r}")
        if "step" not in rec or "metrics" not in rec:
            fail(f"{path}: record {i} missing step/metrics")
        for entry in rec.get("sweep", []):
            missing = SWEEP_KEYS - entry.keys()
            if missing:
                fail(f"{path}: sweep entry missing {sorted(missing)}")
            if entry["imbalance"] < 1.0:
                fail(f"{path}: imbalance < 1 in {entry}")
        if rec.get("sweep"):
            swept += 1
        # The task.* counter family is cross-checked wherever it appears:
        # a steal is a spawn claimed from a foreign queue, never extra work.
        metrics = rec["metrics"]
        spawned = metrics.get("task.spawned")
        steals = metrics.get("task.steals")
        if (
            isinstance(spawned, (int, float))
            and isinstance(steals, (int, float))
            and steals > spawned
        ):
            fail(
                f"{path}: record {i} has task.steals {steals} > "
                f"task.spawned {spawned}"
            )
    if require_sweep and swept == 0:
        fail(f"{path}: no record carries sweep profiles")
    summaries = [r for r in records if r.get("kind") == "summary"]
    if require_summary and not summaries:
        fail(f"{path}: no kind=summary record")
    seen_metrics = {name for rec in records for name in rec["metrics"]}
    notes = []
    for name in require_metrics:
        if name.endswith("."):
            notes.append(check_metric_prefix(path, name, records))
        elif name not in seen_metrics:
            fail(
                f"{path}: no record carries metric {name!r} "
                f"(saw {sorted(seen_metrics)})"
            )
    phases = {
        e["phase"] for rec in records for e in rec.get("sweep", [])
    }
    print(
        f"{path}: ok - {len(records)} records ({len(summaries)} summary), "
        f"{swept} with sweep profiles, phases {sorted(phases)}"
        + (", " + ", ".join(notes) if notes else "")
    )


def check_trace(path: str) -> None:
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
    phases = {e.get("ph") for e in events}
    if "X" not in phases:
        fail(f"{path}: no complete ('X') events; phases seen: {phases}")
    for e in events:
        if e.get("ph") == "X" and ("ts" not in e or "dur" not in e):
            fail(f"{path}: complete event missing ts/dur: {e}")
    named = [e for e in events if e.get("ph") == "M"]
    print(
        f"{path}: ok - {len(events)} events, {len(named)} thread-name "
        f"records, phases {sorted(p for p in phases if p)}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", help="sdcmd.bench.v1 JSON report")
    parser.add_argument(
        "--require-columns",
        default="case,threads,seconds_per_step,speedup,feasible",
        help="comma list of columns every bench result row must carry",
    )
    parser.add_argument(
        "--require-cases",
        default="",
        help="comma list of case names that must appear among the rows "
        "(e.g. pair_cache_on,pair_cache_off)",
    )
    parser.add_argument("--jsonl", help="sdcmd.step_metrics.v1 JSONL file")
    parser.add_argument(
        "--require-metrics",
        default="",
        help="comma list of metric names that must appear in at least one "
        "JSONL record (e.g. governor.active_strategy,governor.demotions); "
        "a name with a trailing dot (e.g. 'hw.' or 'serve.') requires the "
        "whole family by prefix, soft-passing when <prefix>available=0 says "
        "the source degraded gracefully",
    )
    parser.add_argument(
        "--require-summary",
        action="store_true",
        help="require at least one kind=summary JSONL record (the "
        "cumulative end-of-run snapshot)",
    )
    parser.add_argument(
        "--no-require-sweep",
        action="store_true",
        help="accept JSONL without sweep profiles (runs without "
        "profile_sweep, e.g. the fault_drill governor scenario)",
    )
    parser.add_argument("--trace", help="Chrome trace-event JSON file")
    args = parser.parse_args()
    if not (args.bench or args.jsonl or args.trace):
        parser.error("nothing to validate: pass --bench/--jsonl/--trace")
    if args.bench:
        check_bench(
            args.bench,
            [c for c in args.require_columns.split(",") if c],
            [c for c in args.require_cases.split(",") if c],
        )
    if args.jsonl:
        check_jsonl(
            args.jsonl,
            [m for m in args.require_metrics.split(",") if m],
            not args.no_require_sweep,
            args.require_summary,
        )
    if args.trace:
        check_trace(args.trace)


if __name__ == "__main__":
    main()
