#!/usr/bin/env python3
"""SIGKILL drill for the sdcmd-serve session daemon.

Boots the daemon with a fleet of sessions, keeps step traffic flowing from
a background pump, SIGKILLs the daemon at a seeded-random moment, restarts
it, and requires the whole fleet to come back:

  * every session auto-resumes on restart (``status`` reports
    ``resumed: true``) with an energy-continuity proof <= 1e-8;
  * per-session checkpoint rings stay valid across kills (fnv1a64 footers
    recomputed here in pure Python) and at most one stray ``*.tmp`` file
    exists per session directory -- the one write the kill interrupted;
  * the newest resumable step per session never moves backwards across
    kill cycles (monotone step counters);
  * a final SIGTERM drains clean: the daemon checkpoints every session,
    exits 0, and one more restart still resumes the full fleet.

Usage (from the build tree):
  python3 scripts/chaos_serve.py --binary build/examples/sdcmd-serve \
      --kills 3 --sessions 3

Exit code 0 = drill passed; 1 = an invariant failed.
"""

import argparse
import json
import os
import random
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

FNV_OFFSET = 14695981039346656037
FNV_PRIME = 1099511628211
MASK64 = (1 << 64) - 1

CKPT_RE = re.compile(r"^ckpt_(\d{10})\.chk$")


def fnv1a64(data: bytes) -> int:
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def fail(msg: str) -> None:
    print(f"chaos_serve: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def note(msg: str) -> None:
    print(f"chaos_serve: {msg}", flush=True)


class Client:
    """Minimal wire-protocol client: line-delimited flat JSON over AF_UNIX,
    reconnecting with backoff (the daemon may be mid-restart)."""

    def __init__(self, path: str, timeout: float = 10.0):
        self.path = path
        self.timeout = timeout
        self.sock = None
        self.buf = b""

    def connect(self, attempts: int = 100, backoff: float = 0.05) -> None:
        self.close()
        for _ in range(attempts):
            try:
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                s.settimeout(self.timeout)
                s.connect(self.path)
                self.sock = s
                self.buf = b""
                return
            except OSError:
                s.close()
                time.sleep(backoff)
                backoff = min(backoff * 1.5, 0.5)
        fail(f"cannot connect to {self.path}")

    def close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            finally:
                self.sock = None

    def _readline(self) -> bytes:
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise OSError("peer closed")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line

    def request(self, retry: bool = True, **msg):
        data = (json.dumps(msg) + "\n").encode()
        for attempt in range(2):
            if self.sock is None:
                self.connect()
            try:
                self.sock.sendall(data)
                return json.loads(self._readline())
            except OSError:
                self.close()
                if not retry or attempt == 1:
                    raise
        raise OSError("unreachable")


def launch(args, tag: str) -> subprocess.Popen:
    cmd = [
        args.binary,
        "--socket", args.socket,
        "--root", args.root,
        "--max-sessions", str(max(args.sessions, 4)),
        "--workers", "2",
        "--quantum", str(args.quantum),
        "--watchdog-min", "5.0",  # generous: CI noise must not quarantine
    ]
    log = open(os.path.join(args.workdir, f"daemon_{tag}.log"), "w")
    return subprocess.Popen(cmd, stdout=log, stderr=subprocess.STDOUT)


def audit_session(session_dir: str, prev_best: int, tag: str) -> int:
    """Verify one session directory after a kill; return newest valid step."""
    names = sorted(os.listdir(session_dir))
    ckpts = [n for n in names if CKPT_RE.match(n)]
    tmps = [n for n in names if n.endswith(".tmp")]
    if len(tmps) > 1:
        fail(f"[{tag}] {session_dir}: {len(tmps)} stray .tmp files ({tmps})")
    if "session.json" not in names:
        fail(f"[{tag}] {session_dir}: session.json missing")
    steps = []
    for name in ckpts:
        with open(os.path.join(session_dir, name), "rb") as f:
            text = f.read()
        footer_at = text.rfind(b"checksum fnv1a64 ")
        if footer_at < 0:
            fail(f"[{tag}] {session_dir}/{name}: no checksum footer")
        declared = int(text[footer_at:].split()[2], 16)
        if fnv1a64(text[:footer_at]) != declared:
            fail(f"[{tag}] {session_dir}/{name}: checksum mismatch")
        steps.append(int(CKPT_RE.match(name).group(1)))
    if not steps:
        fail(f"[{tag}] {session_dir}: no checkpoints survived")
    best = max(steps)
    if best < prev_best:
        fail(f"[{tag}] {session_dir}: newest step went backwards "
             f"({best} < {prev_best})")
    return best


def assert_fleet_resumed(client: Client, ids, best, slack: int,
                         tag: str) -> None:
    for sid in ids:
        status = client.request(op="status", id=sid)
        if not status.get("ok"):
            fail(f"[{tag}] status({sid}) failed: {status}")
        if not status.get("resumed"):
            fail(f"[{tag}] session {sid} did not auto-resume: {status}")
        rel = status.get("continuity_rel", -1.0)
        if not 0.0 <= rel <= 1e-8:
            fail(f"[{tag}] session {sid} energy discontinuity rel={rel:g}")
        # A kill between the checkpoint rename and the sidecar rename makes
        # the daemon resume the previous *provable* generation: at most one
        # checkpoint cadence behind the newest file on disk.
        if status["step"] < best[sid] - slack:
            fail(f"[{tag}] session {sid} resumed at step {status['step']}, "
                 f"more than one cadence behind checkpoint {best[sid]}")
        note(f"[{tag}] {sid}: resumed step={status['step']} "
             f"continuity_rel={rel:g}")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--binary", required=True, help="path to sdcmd-serve")
    ap.add_argument("--kills", type=int, default=3, help="SIGKILL cycles")
    ap.add_argument("--sessions", type=int, default=3)
    ap.add_argument("--cells", type=int, default=4)
    ap.add_argument("--quantum", type=int, default=10)
    ap.add_argument("--checkpoint-every", type=int, default=10)
    ap.add_argument("--rng-seed", type=int, default=7, help="kill-timing seed")
    ap.add_argument("--min-delay", type=float, default=0.5)
    ap.add_argument("--max-delay", type=float, default=1.5)
    args = ap.parse_args()

    if not (os.path.isfile(args.binary) and os.access(args.binary, os.X_OK)):
        fail(f"binary not executable: {args.binary}")

    args.workdir = tempfile.mkdtemp(prefix="chaos_serve.")
    args.socket = os.path.join(args.workdir, "sv.sock")
    args.root = os.path.join(args.workdir, "sessions.d")
    rng = random.Random(args.rng_seed)
    ids = [f"s{i}" for i in range(args.sessions)]
    best = {sid: -1 for sid in ids}

    daemon = launch(args, "boot")
    client = Client(args.socket)
    client.connect()
    for sid in ids:
        r = client.request(op="create", id=sid, cells=args.cells,
                           seed=1000 + ids.index(sid),
                           checkpoint_every=args.checkpoint_every)
        if not r.get("ok"):
            fail(f"create({sid}) failed: {r}")
    note(f"booted {args.sessions} session(s) in {args.root}")

    # Background pump: keep step traffic flowing on its own connection so
    # the kill always lands mid-traffic. Post-kill socket errors are the
    # expected signal to stand by until the next cycle reconnects.
    pump_stop = threading.Event()

    def pump() -> None:
        pc = Client(args.socket)
        while not pump_stop.is_set():
            try:
                for sid in ids:
                    pc.request(op="step", id=sid, steps=50, retry=False)
            except OSError:
                pc.close()
                time.sleep(0.1)
            time.sleep(0.05)
        pc.close()

    pump_thread = threading.Thread(target=pump, daemon=True)
    pump_thread.start()

    for cycle in range(1, args.kills + 1):
        tag = f"kill {cycle}/{args.kills}"
        delay = rng.uniform(args.min_delay, args.max_delay)
        time.sleep(delay)
        daemon.send_signal(signal.SIGKILL)
        daemon.wait()
        client.close()
        note(f"[{tag}] SIGKILL after {delay:.2f}s of traffic")
        for sid in ids:
            best[sid] = audit_session(os.path.join(args.root, sid),
                                      best[sid], tag)
        daemon = launch(args, f"cycle{cycle}")
        client.connect()
        assert_fleet_resumed(client, ids, best, args.checkpoint_every, tag)

    # Graceful path: SIGTERM must checkpoint every session and exit 0.
    pump_stop.set()
    pump_thread.join(timeout=10.0)
    time.sleep(0.3)  # let in-flight quanta settle into the last cadence
    daemon.send_signal(signal.SIGTERM)
    rc = daemon.wait(timeout=60)
    if rc != 0:
        fail(f"SIGTERM drain exited rc={rc}, expected 0")
    client.close()
    for sid in ids:
        best[sid] = audit_session(os.path.join(args.root, sid), best[sid],
                                  "drain")

    # And the drained fleet must still resume wholesale.
    daemon = launch(args, "final")
    client.connect()
    assert_fleet_resumed(client, ids, best, args.checkpoint_every, "final")
    client.request(op="drain")
    rc = daemon.wait(timeout=60)
    if rc != 0:
        fail(f"final drain exited rc={rc}, expected 0")

    note(f"PASS: {args.kills} SIGKILL cycles, fleet of {args.sessions} "
         f"resumed every time, energy continuous, monotone steps, "
         f"clean SIGTERM drain")


if __name__ == "__main__":
    main()
