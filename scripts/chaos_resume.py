#!/usr/bin/env python3
"""Kill-resume chaos harness for the run supervisor.

Launches sdcmd-run against a durable run directory, SIGKILLs it at a
randomized (but seeded, hence CI-deterministic) moment, resumes, and
repeats. After every kill it audits the run directory the way an
operator would after a node crash:

  * MANIFEST either verifies (header, per-entry checksums recomputed
    here in pure Python, footer checksum) or is absent/torn -- torn is
    tolerated exactly when a directory scan still yields a loadable ring
    (that is the supervisor's own fallback contract);
  * every ring checkpoint carries a valid fnv1a64 footer;
  * the newest resumable step never moves backwards across cycles;
  * at most one stray ``*.tmp`` file exists (the one write the kill
    interrupted -- never an accumulation);
  * on each resume, sdcmd-run's own energy-continuity line is parsed and
    the relative drift re-asserted (<= 1e-8).

A final un-killed run must reach the target step with exit code 0.

Usage (from the build tree):
  python3 scripts/chaos_resume.py --binary build/examples/sdcmd-run \
      --cycles 3 --steps 1200 --rng-seed 7

Exit code 0 = drill passed; 1 = an invariant failed.
"""

import argparse
import os
import random
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

FNV_OFFSET = 14695981039346656037
FNV_PRIME = 1099511628211
MASK64 = (1 << 64) - 1

CKPT_RE = re.compile(r"^ckpt_(\d{10})\.chk$")
CONTINUITY_RE = re.compile(r"resume energy continuity rel=([0-9.eE+-]+)")
RESUMED_RE = re.compile(r"resumed at step (\d+)")


def fnv1a64(data: bytes) -> int:
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def fail(msg: str) -> None:
    print(f"chaos_resume: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def note(msg: str) -> None:
    print(f"chaos_resume: {msg}", flush=True)


def verify_checkpoint(path: str) -> int:
    """Verify a checkpoint file's checksum footer; return its step."""
    with open(path, "rb") as f:
        text = f.read()
    footer_at = text.rfind(b"checksum fnv1a64 ")
    if footer_at < 0:
        fail(f"{path}: no checksum footer")
    payload = text[:footer_at]
    declared = int(text[footer_at:].split()[2], 16)
    actual = fnv1a64(payload)
    if actual != declared:
        fail(f"{path}: checksum mismatch ({actual:016x} != {declared:016x})")
    for line in payload.splitlines():
        if line.startswith(b"step "):
            return int(line.split()[1])
    fail(f"{path}: no step record")
    return -1  # unreachable


def verify_manifest(run_dir: str) -> list:
    """Verify MANIFEST integrity; return its ring as [(step, file)].

    Returns None when the MANIFEST is absent or torn (tolerated; the
    caller then requires the directory-scan fallback to work instead).
    """
    path = os.path.join(run_dir, "MANIFEST")
    if not os.path.exists(path):
        return None
    with open(path, "rb") as f:
        text = f.read()
    footer_at = text.rfind(b"checksum fnv1a64 ")
    if footer_at < 0 or (footer_at != 0 and text[footer_at - 1 : footer_at] != b"\n"):
        note(f"MANIFEST torn (no footer, {len(text)} bytes); scan fallback required")
        return None
    body = text[:footer_at]
    declared = int(text[footer_at:].split()[2], 16)
    if fnv1a64(body) != declared:
        note("MANIFEST torn (footer checksum mismatch); scan fallback required")
        return None
    lines = body.decode().splitlines()
    if not lines or lines[0] != "sdcmd-manifest 1":
        fail(f"MANIFEST verified its checksum but has bad header: {lines[:1]}")
    ring = []
    for line in lines[1:]:
        kind, step, fname, csum = line.split()
        if kind != "entry":
            fail(f"MANIFEST unexpected record '{kind}'")
        full = os.path.join(run_dir, fname)
        if not os.path.exists(full):
            fail(f"MANIFEST lists missing file {fname}")
        with open(full, "rb") as f:
            actual = fnv1a64(f.read())
        if actual != int(csum, 16):
            fail(f"MANIFEST checksum for {fname} does not match the file")
        ring.append((int(step), fname))
    return ring


def audit(run_dir: str, keep: int, prev_best: int, cycle: str) -> int:
    """Audit the run directory after a kill; return the newest valid step."""
    names = sorted(os.listdir(run_dir))
    ckpts = [n for n in names if CKPT_RE.match(n)]
    tmps = [n for n in names if n.endswith(".tmp")]
    if len(tmps) > 1:
        fail(f"[{cycle}] {len(tmps)} stray .tmp files ({tmps}); expected <= 1")
    if len(ckpts) > keep + 1:
        # +1: a kill can land between writing generation N+1 and pruning.
        fail(f"[{cycle}] ring holds {len(ckpts)} checkpoints, keep={keep}")

    steps = []
    for name in ckpts:
        full = os.path.join(run_dir, name)
        step = verify_checkpoint(full)
        if step != int(CKPT_RE.match(name).group(1)):
            fail(f"[{cycle}] {name} contains step {step}")
        steps.append(step)
    if not steps:
        fail(f"[{cycle}] no checkpoints survived the kill")

    ring = verify_manifest(run_dir)
    if ring is not None and ring:
        if ring[0][0] != max(steps):
            fail(
                f"[{cycle}] MANIFEST head is step {ring[0][0]}, "
                f"newest on disk is {max(steps)}"
            )

    best = max(steps)
    if best < prev_best:
        fail(f"[{cycle}] newest step went backwards: {best} < {prev_best}")
    note(
        f"[{cycle}] audit ok: ring={sorted(steps, reverse=True)} "
        f"manifest={'ok' if ring is not None else 'torn/absent'} "
        f"tmp={len(tmps)}"
    )
    return best


def launch(args, resume: bool):
    cmd = [
        args.binary,
        "--run-dir", args.run_dir,
        "--steps", str(args.steps),
        "--cells", str(args.cells),
        "--keep", str(args.keep),
        "--checkpoint-every", str(args.checkpoint_every),
        "--seed", str(args.seed),
        "--thermo-every", "0",
        "--watchdog-min", "0",
    ]
    if resume:
        cmd.append("--resume")
    return subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )


def check_resume_output(out: str, cycle: str) -> None:
    m = CONTINUITY_RE.search(out)
    if not m:
        fail(f"[{cycle}] resume printed no energy-continuity line:\n{out}")
    rel = float(m.group(1))
    if not rel <= 1e-8:
        fail(f"[{cycle}] energy discontinuity across resume: rel={rel:g}")
    note(f"[{cycle}] energy continuity rel={rel:g}")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--binary", required=True, help="path to sdcmd-run")
    ap.add_argument("--run-dir", default=None, help="run directory (default: fresh tmp)")
    ap.add_argument("--cycles", type=int, default=3, help="SIGKILL/resume cycles")
    ap.add_argument("--steps", type=int, default=15000, help="target step")
    ap.add_argument("--cells", type=int, default=6)
    ap.add_argument("--keep", type=int, default=3)
    ap.add_argument("--checkpoint-every", type=int, default=200)
    ap.add_argument("--seed", type=int, default=12345, help="velocity seed")
    ap.add_argument("--rng-seed", type=int, default=7, help="kill-timing seed")
    ap.add_argument("--min-delay", type=float, default=0.3)
    ap.add_argument("--max-delay", type=float, default=1.5)
    args = ap.parse_args()

    if not (os.path.isfile(args.binary) and os.access(args.binary, os.X_OK)):
        fail(f"binary not executable: {args.binary}")

    cleanup = None
    if args.run_dir is None:
        cleanup = tempfile.mkdtemp(prefix="chaos_resume.")
        args.run_dir = os.path.join(cleanup, "run.d")

    rng = random.Random(args.rng_seed)
    prev_best = -1
    completed_early = False

    for cycle in range(1, args.cycles + 1):
        tag = f"cycle {cycle}/{args.cycles}"
        proc = launch(args, resume=cycle > 1)
        delay = rng.uniform(args.min_delay, args.max_delay)
        time.sleep(delay)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            out = proc.communicate()[0]
            note(f"[{tag}] SIGKILL after {delay:.2f}s")
        else:
            out = proc.communicate()[0]
            if proc.returncode != 0:
                fail(f"[{tag}] exited rc={proc.returncode} before the kill:\n{out}")
            note(f"[{tag}] finished before the kill (rc=0)")
            completed_early = True
        if cycle > 1:
            check_resume_output(out, tag)
        prev_best = audit(args.run_dir, args.keep, prev_best, tag)
        if completed_early:
            break

    # Final clean run: resume and actually reach the target.
    proc = launch(args, resume=True)
    out = proc.communicate()[0]
    if proc.returncode != 0:
        fail(f"final resume exited rc={proc.returncode}:\n{out}")
    if not completed_early:
        check_resume_output(out, "final")
    m = re.search(r"outcome=completed step=(\d+)", out)
    if not (m and int(m.group(1)) == args.steps) and "already at step" not in out:
        fail(f"final run did not complete at step {args.steps}:\n{out}")
    final_best = audit(args.run_dir, args.keep, prev_best, "final")
    if final_best != args.steps:
        fail(f"final ring head is step {final_best}, expected {args.steps}")

    if cleanup:
        shutil.rmtree(cleanup, ignore_errors=True)
    note(f"PASS: {args.cycles} kill-resume cycles, monotone steps, "
         f"valid ring, energy continuous")


if __name__ == "__main__":
    main()
