#!/usr/bin/env python3
"""Noise-aware comparison of sdcmd.bench.v1 reports: the perf-regression gate.

Modes (exactly one):

  pairwise    bench_compare.py BASELINE.json CANDIDATE.json
              Match result rows by identity columns, compare every
              time-like column and fail on relative regressions beyond
              --threshold.

  trajectory  bench_compare.py --trajectory results/ [--candidate NEW.json]
              Glob BENCH_pr<N>.json, sort by PR number, gate every
              consecutive pair (optionally appending a freshly produced
              candidate as the newest point).

  self-test   bench_compare.py --self-test
              Build two synthetic reports in memory and verify that an
              identical pair passes and a +20% force-phase slowdown fails.
              Registered as a ctest so the gate itself is gated.

Row matching: rows pair up when all identity columns they share agree
("case", "dims", "threads", "strategy", plus the report's bench name).
Rows without a partner (new cases, newly feasible configurations) are
reported but never fail the gate - growth must not look like regression.

Noise handling: wall-clock numbers from CI runners are noisy, so the gate
is a *relative* threshold on a *normalized* ratio. When both rows carry
``serial_seconds_per_step`` the candidate/baseline ratio is computed on
seconds/serial (machine-speed cancels out - essential when trajectory
points come from different runners); otherwise the raw ratio is used.
Durations below --min-seconds are skipped entirely: a 40 us kernel's
timer jitter is larger than any real regression it could hide.

Oversubscribed rows - where the row's ``threads`` exceeds either report's
``context.hardware_threads`` - are matched but never gated: N threads
time-slicing one core measure scheduler jitter, not the kernels, and a
1-core box even lets "2 threads beat serial" into a committed point by
pure timer luck, which then makes every honest later point look like a
regression after normalization. Such rows are counted in the summary
line instead. Reports that omit hardware_threads are gated in full.

Exit codes: 0 clean, 1 at least one regression, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys

# Columns that identify a row within a report (used for matching, never
# compared). Everything else numeric-and-time-like is gated.
IDENTITY_COLUMNS = ("case", "dims", "threads", "strategy")

# Columns where higher means slower. Matched by exact name or suffix so
# bench-specific names like density_seconds_per_step participate.
TIME_SUFFIXES = ("seconds_per_step", "_seconds", "_s")

# The cross-machine normalizer (itself time-like, never gated directly).
NORMALIZER = "serial_seconds_per_step"


def is_time_column(name: str) -> bool:
    if name == NORMALIZER:
        return False
    return any(name == s or name.endswith(s) for s in TIME_SUFFIXES)


def load_report(path: str) -> dict:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if doc.get("schema") != "sdcmd.bench.v1":
        sys.exit(
            f"bench_compare: {path}: schema is {doc.get('schema')!r}, "
            f"want sdcmd.bench.v1"
        )
    return doc


def row_key(bench: str, row: dict) -> tuple:
    return (bench,) + tuple(
        (c, row[c]) for c in IDENTITY_COLUMNS if c in row
    )


def index_rows(doc: dict) -> dict:
    index = {}
    for row in doc.get("results", []):
        key = row_key(doc.get("bench", "?"), row)
        # Duplicate identity (e.g. repeated cases): keep the first; the
        # reports this repo emits never duplicate, so just be deterministic.
        index.setdefault(key, row)
    return index


def compare_reports(
    base_doc: dict,
    cand_doc: dict,
    base_name: str,
    cand_name: str,
    threshold: float,
    min_seconds: float,
) -> list[str]:
    """Return a list of regression messages (empty = clean)."""
    base = index_rows(base_doc)
    cand = index_rows(cand_doc)

    def hw_threads(doc: dict):
        v = doc.get("context", {}).get("hardware_threads")
        return v if isinstance(v, (int, float)) and v > 0 else None

    base_hw = hw_threads(base_doc)
    cand_hw = hw_threads(cand_doc)
    regressions = []
    compared = 0
    unmatched = 0
    oversubscribed = 0
    for key, brow in base.items():
        crow = cand.get(key)
        if crow is None:
            unmatched += 1
            continue
        threads = brow.get("threads")
        if isinstance(threads, (int, float)) and (
            (base_hw is not None and threads > base_hw)
            or (cand_hw is not None and threads > cand_hw)
        ):
            oversubscribed += 1
            continue
        bserial = brow.get(NORMALIZER)
        cserial = crow.get(NORMALIZER)
        normalize = (
            isinstance(bserial, (int, float))
            and isinstance(cserial, (int, float))
            and bserial > 0
            and cserial > 0
        )
        for col, bval in brow.items():
            if not is_time_column(col):
                continue
            cval = crow.get(col)
            if not isinstance(bval, (int, float)) or not isinstance(
                cval, (int, float)
            ):
                continue  # infeasible (null) or non-numeric: nothing to gate
            if bval < min_seconds or bval <= 0:
                continue  # below the noise floor
            if normalize:
                ratio = (cval / cserial) / (bval / bserial)
            else:
                ratio = cval / bval
            compared += 1
            if ratio > 1.0 + threshold:
                ident = ", ".join(f"{k}={v}" for k, v in key[1:])
                regressions.append(
                    f"  {key[0]} [{ident}] {col}: "
                    f"{bval:.6g} -> {cval:.6g} "
                    f"({'normalized ' if normalize else ''}ratio "
                    f"{ratio:.3f} > {1.0 + threshold:.3f})"
                )
    print(
        f"{base_name} -> {cand_name}: {compared} timings compared, "
        f"{unmatched} baseline rows unmatched, "
        f"{oversubscribed} oversubscribed rows skipped, "
        f"{len(regressions)} regression(s)"
    )
    return regressions


def trajectory_files(directory: str) -> list[str]:
    """BENCH_pr<N>.json files sorted by PR number."""
    found = []
    for path in glob.glob(os.path.join(directory, "BENCH_pr*.json")):
        m = re.search(r"BENCH_pr(\d+)\.json$", path)
        if m:
            found.append((int(m.group(1)), path))
    return [path for _, path in sorted(found)]


def run_self_test(threshold: float, min_seconds: float) -> int:
    def report(scale: float) -> dict:
        rows = []
        for case in ("small", "large"):
            for threads in (2, 4):
                # Only the force phase of the large case slows down; the
                # gate must catch a *single* regressed cell.
                slow = scale if case == "large" and threads == 4 else 1.0
                rows.append(
                    {
                        "case": case,
                        "threads": threads,
                        "serial_seconds_per_step": 0.10,
                        "seconds_per_step": 0.030 * slow,
                        "force_seconds_per_step": 0.020 * slow,
                        "feasible": True,
                    }
                )
        return {
            "schema": "sdcmd.bench.v1",
            "bench": "self_test",
            "context": {},
            "results": rows,
        }

    identical = compare_reports(
        report(1.0), report(1.0), "synthetic-base", "synthetic-identical",
        threshold, min_seconds,
    )
    slowdown = compare_reports(
        report(1.0), report(1.2), "synthetic-base", "synthetic-20pct-slower",
        threshold, min_seconds,
    )
    # The same +20% slowdown on a 1-core box is timer noise, not a
    # regression: every row runs 2 or 4 threads on one hardware thread.
    def one_core(doc: dict) -> dict:
        doc["context"] = {"hardware_threads": 1}
        return doc

    oversub = compare_reports(
        one_core(report(1.0)), one_core(report(1.2)),
        "synthetic-1core-base", "synthetic-1core-slower",
        threshold, min_seconds,
    )
    if identical:
        print("self-test FAILED: identical reports flagged as regression")
        return 1
    if not slowdown:
        print("self-test FAILED: +20% slowdown not caught")
        return 1
    if oversub:
        print("self-test FAILED: oversubscribed (1-core) rows were gated")
        return 1
    print(
        "self-test ok: identical pair clean, +20% slowdown caught, "
        "oversubscribed rows skipped"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "reports", nargs="*", help="BASELINE.json CANDIDATE.json (pairwise)"
    )
    parser.add_argument(
        "--trajectory",
        metavar="DIR",
        help="gate consecutive BENCH_pr<N>.json pairs in DIR",
    )
    parser.add_argument(
        "--candidate",
        metavar="FILE",
        help="with --trajectory: append FILE as the newest point",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative slowdown that counts as a regression "
        "(default 0.10; CI uses a looser value for shared runners)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=1e-4,
        help="skip baseline timings shorter than this (timer noise floor)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate on synthetic reports and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return run_self_test(args.threshold, args.min_seconds)

    pairs: list[tuple[str, str]] = []
    if args.trajectory:
        files = trajectory_files(args.trajectory)
        if args.candidate:
            files.append(args.candidate)
        if len(files) < 2:
            print(
                f"trajectory {args.trajectory}: {len(files)} point(s), "
                f"nothing to compare"
            )
            return 0
        pairs = list(zip(files, files[1:]))
    elif len(args.reports) == 2:
        pairs = [(args.reports[0], args.reports[1])]
    else:
        parser.error(
            "pass BASELINE CANDIDATE, or --trajectory DIR, or --self-test"
        )

    all_regressions: list[str] = []
    for base_path, cand_path in pairs:
        all_regressions += compare_reports(
            load_report(base_path),
            load_report(cand_path),
            os.path.basename(base_path),
            os.path.basename(cand_path),
            args.threshold,
            args.min_seconds,
        )
    if all_regressions:
        print("\nperf regressions detected:")
        for line in all_regressions:
            print(line)
        return 1
    print("perf gate clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
