// Crystal lattice builders.
//
// The paper's four test cases are bcc Fe cubes built by replicating the
// conventional cell: 30^3 * 2 = 54,000 atoms up to 120^3 * 2 = 3,456,000.
// We reproduce exactly that construction.
#pragma once

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

enum class LatticeType { SimpleCubic, Bcc, Fcc };

/// Basis (fractional coordinates of atoms in one conventional cell).
std::vector<Vec3> lattice_basis(LatticeType type);

/// Atoms per conventional cell (1 for sc, 2 for bcc, 4 for fcc).
std::size_t atoms_per_cell(LatticeType type);

struct LatticeSpec {
  LatticeType type = LatticeType::Bcc;
  double a0 = 2.8665;  ///< conventional lattice constant (angstrom)
  int nx = 1;          ///< replications per dimension
  int ny = 1;
  int nz = 1;

  std::size_t atom_count() const;
  /// The periodic box that tiles this lattice exactly.
  Box box() const;
};

/// Generate all atom positions of the replicated lattice inside spec.box().
std::vector<Vec3> build_lattice(const LatticeSpec& spec);

/// Smallest cubic bcc replication whose atom count is >= `min_atoms`.
/// Used to recreate the paper's "small / medium / large" cases at any scale.
LatticeSpec bcc_cube_with_at_least(std::size_t min_atoms, double a0);

}  // namespace sdcmd
