#include "geom/box.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdcmd {

Box::Box(const Vec3& lo, const Vec3& hi, std::array<bool, 3> periodic)
    : lo_(lo), hi_(hi), len_(hi - lo), periodic_(periodic) {
  for (int d = 0; d < 3; ++d) {
    SDCMD_REQUIRE(len_[d] > 0.0, "box must have positive extent");
  }
}

Box Box::cubic(double edge) {
  return Box({0.0, 0.0, 0.0}, {edge, edge, edge});
}

Vec3 Box::wrap(Vec3 r) const {
  for (int d = 0; d < 3; ++d) {
    if (!periodic_[d]) continue;
    const double rel = (r[d] - lo_[d]) / len_[d];
    r[d] -= std::floor(rel) * len_[d];
    // Guard against r == hi from floating point round-off.
    if (r[d] >= hi_[d]) r[d] = lo_[d];
  }
  return r;
}

Vec3 Box::wrap(Vec3 r, std::array<int, 3>& image) const {
  for (int d = 0; d < 3; ++d) {
    if (!periodic_[d]) continue;
    const double rel = (r[d] - lo_[d]) / len_[d];
    const auto shift = static_cast<int>(std::floor(rel));
    image[d] += shift;
    r[d] -= shift * len_[d];
    if (r[d] >= hi_[d]) {
      r[d] = lo_[d];
      image[d] += 1;
    }
  }
  return r;
}

Vec3 Box::minimum_image(const Vec3& ri, const Vec3& rj) const {
  Vec3 dr = ri - rj;
  for (int d = 0; d < 3; ++d) {
    if (!periodic_[d]) continue;
    dr[d] -= len_[d] * std::nearbyint(dr[d] / len_[d]);
  }
  return dr;
}

double Box::distance2(const Vec3& ri, const Vec3& rj) const {
  return norm2(minimum_image(ri, rj));
}

bool Box::contains(const Vec3& r) const {
  for (int d = 0; d < 3; ++d) {
    if (r[d] < lo_[d] || r[d] >= hi_[d]) return false;
  }
  return true;
}

void Box::rescale(const Vec3& factor) {
  for (int d = 0; d < 3; ++d) {
    SDCMD_REQUIRE(factor[d] > 0.0, "rescale factor must be positive");
  }
  hi_ = {lo_.x + len_.x * factor.x, lo_.y + len_.y * factor.y,
         lo_.z + len_.z * factor.z};
  len_ = hi_ - lo_;
}

Vec3 Box::affine_map(const Vec3& old_r, const Box& old_box) const {
  Vec3 out;
  for (int d = 0; d < 3; ++d) {
    const double frac = (old_r[d] - old_box.lo_[d]) / old_box.len_[d];
    out[d] = lo_[d] + frac * len_[d];
  }
  return out;
}

}  // namespace sdcmd
