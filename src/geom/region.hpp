// Geometric regions used to select atoms (fixed layers, notches, grips) in
// the deformation examples.
#pragma once

#include <memory>
#include <vector>

#include "common/vec3.hpp"

namespace sdcmd {

class Region {
 public:
  virtual ~Region() = default;
  virtual bool contains(const Vec3& r) const = 0;
};

/// Axis-aligned block [lo, hi].
class BlockRegion final : public Region {
 public:
  BlockRegion(const Vec3& lo, const Vec3& hi);
  bool contains(const Vec3& r) const override;

 private:
  Vec3 lo_;
  Vec3 hi_;
};

/// Sphere of radius `radius` about `center` (no PBC wrapping: regions select
/// atoms in the primary image).
class SphereRegion final : public Region {
 public:
  SphereRegion(const Vec3& center, double radius);
  bool contains(const Vec3& r) const override;

 private:
  Vec3 center_;
  double radius2_;
};

/// Set complement of another region.
class NotRegion final : public Region {
 public:
  explicit NotRegion(std::shared_ptr<const Region> inner);
  bool contains(const Vec3& r) const override;

 private:
  std::shared_ptr<const Region> inner_;
};

/// Union of several regions.
class UnionRegion final : public Region {
 public:
  explicit UnionRegion(std::vector<std::shared_ptr<const Region>> parts);
  bool contains(const Vec3& r) const override;

 private:
  std::vector<std::shared_ptr<const Region>> parts_;
};

/// Indices of all positions inside `region`.
std::vector<std::size_t> select(const Region& region,
                                const std::vector<Vec3>& positions);

}  // namespace sdcmd
