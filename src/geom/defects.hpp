// Point-defect generators: controlled damage for defect-physics workloads
// (the defect_analysis example, radiation-damage style studies).
#pragma once

#include <cstdint>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

/// Remove `count` randomly chosen positions (vacancies). Deterministic for
/// a given seed. Returns the removed positions (the vacancy sites).
std::vector<Vec3> make_vacancies(std::vector<Vec3>& positions,
                                 std::size_t count, std::uint64_t seed);

/// Insert `count` self-interstitials: each new atom is placed a fraction
/// `offset_fraction` of `spacing` away from a randomly chosen host in a
/// random direction (crude dumbbell). Returns the inserted positions.
std::vector<Vec3> make_interstitials(std::vector<Vec3>& positions,
                                     const Box& box, std::size_t count,
                                     double spacing, std::uint64_t seed,
                                     double offset_fraction = 0.35);

/// Remove every atom inside the sphere (a carved void). This is the
/// maximally inhomogeneous workload for load-balance drills: the emptied
/// cells contribute near-zero work while their surface cells keep full
/// neighborhoods. Returns the number of removed atoms.
std::size_t carve_sphere(std::vector<Vec3>& positions, const Box& box,
                         const Vec3& center, double radius);

/// Displace every atom inside a sphere by a random amount up to
/// `max_displacement` (a thermal-spike-like damaged region). Returns the
/// indices of displaced atoms.
std::vector<std::size_t> damage_sphere(std::vector<Vec3>& positions,
                                       const Box& box, const Vec3& center,
                                       double radius,
                                       double max_displacement,
                                       std::uint64_t seed);

}  // namespace sdcmd
