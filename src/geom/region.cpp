#include "geom/region.hpp"

#include "common/error.hpp"

namespace sdcmd {

BlockRegion::BlockRegion(const Vec3& lo, const Vec3& hi) : lo_(lo), hi_(hi) {
  for (int d = 0; d < 3; ++d) {
    SDCMD_REQUIRE(hi[d] >= lo[d], "block region has negative extent");
  }
}

bool BlockRegion::contains(const Vec3& r) const {
  for (int d = 0; d < 3; ++d) {
    if (r[d] < lo_[d] || r[d] > hi_[d]) return false;
  }
  return true;
}

SphereRegion::SphereRegion(const Vec3& center, double radius)
    : center_(center), radius2_(radius * radius) {
  SDCMD_REQUIRE(radius >= 0.0, "sphere radius must be non-negative");
}

bool SphereRegion::contains(const Vec3& r) const {
  return norm2(r - center_) <= radius2_;
}

NotRegion::NotRegion(std::shared_ptr<const Region> inner)
    : inner_(std::move(inner)) {
  SDCMD_REQUIRE(inner_ != nullptr, "NotRegion needs an inner region");
}

bool NotRegion::contains(const Vec3& r) const { return !inner_->contains(r); }

UnionRegion::UnionRegion(std::vector<std::shared_ptr<const Region>> parts)
    : parts_(std::move(parts)) {
  for (const auto& p : parts_) {
    SDCMD_REQUIRE(p != nullptr, "UnionRegion contains a null region");
  }
}

bool UnionRegion::contains(const Vec3& r) const {
  for (const auto& p : parts_) {
    if (p->contains(r)) return true;
  }
  return false;
}

std::vector<std::size_t> select(const Region& region,
                                const std::vector<Vec3>& positions) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (region.contains(positions[i])) out.push_back(i);
  }
  return out;
}

}  // namespace sdcmd
