#include "geom/lattice.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdcmd {

std::vector<Vec3> lattice_basis(LatticeType type) {
  switch (type) {
    case LatticeType::SimpleCubic:
      return {{0.0, 0.0, 0.0}};
    case LatticeType::Bcc:
      return {{0.0, 0.0, 0.0}, {0.5, 0.5, 0.5}};
    case LatticeType::Fcc:
      return {{0.0, 0.0, 0.0},
              {0.5, 0.5, 0.0},
              {0.5, 0.0, 0.5},
              {0.0, 0.5, 0.5}};
  }
  throw PreconditionError("unknown lattice type");
}

std::size_t atoms_per_cell(LatticeType type) {
  return lattice_basis(type).size();
}

std::size_t LatticeSpec::atom_count() const {
  return atoms_per_cell(type) * static_cast<std::size_t>(nx) *
         static_cast<std::size_t>(ny) * static_cast<std::size_t>(nz);
}

Box LatticeSpec::box() const {
  return Box({0.0, 0.0, 0.0}, {a0 * nx, a0 * ny, a0 * nz});
}

std::vector<Vec3> build_lattice(const LatticeSpec& spec) {
  SDCMD_REQUIRE(spec.a0 > 0.0, "lattice constant must be positive");
  SDCMD_REQUIRE(spec.nx > 0 && spec.ny > 0 && spec.nz > 0,
                "replication counts must be positive");
  const std::vector<Vec3> basis = lattice_basis(spec.type);
  std::vector<Vec3> positions;
  positions.reserve(spec.atom_count());
  for (int ix = 0; ix < spec.nx; ++ix) {
    for (int iy = 0; iy < spec.ny; ++iy) {
      for (int iz = 0; iz < spec.nz; ++iz) {
        const Vec3 origin{spec.a0 * ix, spec.a0 * iy, spec.a0 * iz};
        for (const Vec3& b : basis) {
          positions.push_back(origin + spec.a0 * b);
        }
      }
    }
  }
  return positions;
}

LatticeSpec bcc_cube_with_at_least(std::size_t min_atoms, double a0) {
  SDCMD_REQUIRE(min_atoms > 0, "need at least one atom");
  const double cells = static_cast<double>(min_atoms) / 2.0;
  int n = static_cast<int>(std::ceil(std::cbrt(cells)));
  if (n < 1) n = 1;
  // std::cbrt of an exact cube can land epsilon below the integer root.
  while (static_cast<std::size_t>(n) * n * n * 2 < min_atoms) ++n;
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = a0;
  spec.nx = spec.ny = spec.nz = n;
  return spec;
}

}  // namespace sdcmd
