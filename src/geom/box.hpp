// Orthorhombic simulation box with periodic boundary conditions.
//
// The paper simulates bcc Fe under full periodic boundary conditions; all of
// the decomposition machinery (src/domain) is defined in terms of this box.
#pragma once

#include <array>

#include "common/vec3.hpp"

namespace sdcmd {

class Box {
 public:
  /// Box spanning [lo, hi) in each dimension; `periodic[d]` controls PBC.
  Box(const Vec3& lo, const Vec3& hi,
      std::array<bool, 3> periodic = {true, true, true});

  /// Cubic box [0, edge)^3, fully periodic.
  static Box cubic(double edge);

  const Vec3& lo() const { return lo_; }
  const Vec3& hi() const { return hi_; }
  /// Edge lengths per dimension.
  const Vec3& lengths() const { return len_; }
  double length(int dim) const { return len_[dim]; }
  bool periodic(int dim) const { return periodic_[dim]; }
  double volume() const { return len_.x * len_.y * len_.z; }

  /// Wrap a position into the primary image (periodic dims only).
  Vec3 wrap(Vec3 r) const;

  /// Wrap, also recording how many images the position crossed, so unwrapped
  /// trajectories (diffusion analysis) can be reconstructed.
  Vec3 wrap(Vec3 r, std::array<int, 3>& image) const;

  /// Minimum-image displacement r_i - r_j.
  Vec3 minimum_image(const Vec3& ri, const Vec3& rj) const;

  /// Squared minimum-image distance.
  double distance2(const Vec3& ri, const Vec3& rj) const;

  /// True when `r` lies in [lo, hi) on every dimension.
  bool contains(const Vec3& r) const;

  /// Rescale the box edges by `factor` per-dimension about `lo`, mapping a
  /// fractional coordinate to the same fraction of the new box. Used by the
  /// deformation engine. Positions must be remapped by the caller via
  /// `affine_map`.
  void rescale(const Vec3& factor);

  /// Map a position from the pre-`rescale` box to the post-`rescale` box.
  Vec3 affine_map(const Vec3& old_r, const Box& old_box) const;

  friend bool operator==(const Box&, const Box&) = default;

 private:
  Vec3 lo_;
  Vec3 hi_;
  Vec3 len_;
  std::array<bool, 3> periodic_;
};

}  // namespace sdcmd
