#include "geom/defects.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"

namespace sdcmd {

std::vector<Vec3> make_vacancies(std::vector<Vec3>& positions,
                                 std::size_t count, std::uint64_t seed) {
  SDCMD_REQUIRE(count <= positions.size(),
                "cannot remove more atoms than exist");
  Xoshiro256 rng(seed);
  std::vector<Vec3> removed;
  removed.reserve(count);
  for (std::size_t v = 0; v < count; ++v) {
    const std::size_t victim = rng.below(positions.size());
    removed.push_back(positions[victim]);
    positions[victim] = positions.back();
    positions.pop_back();
  }
  return removed;
}

namespace {

Vec3 random_unit_vector(Xoshiro256& rng) {
  // Marsaglia: uniform on the sphere.
  double u, v, s;
  do {
    u = rng.uniform(-1.0, 1.0);
    v = rng.uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = 2.0 * std::sqrt(1.0 - s);
  return {u * factor, v * factor, 1.0 - 2.0 * s};
}

}  // namespace

std::vector<Vec3> make_interstitials(std::vector<Vec3>& positions,
                                     const Box& box, std::size_t count,
                                     double spacing, std::uint64_t seed,
                                     double offset_fraction) {
  SDCMD_REQUIRE(!positions.empty(), "need a host crystal");
  SDCMD_REQUIRE(spacing > 0.0, "spacing must be positive");
  SDCMD_REQUIRE(offset_fraction > 0.0 && offset_fraction < 1.0,
                "offset fraction must be in (0, 1)");
  Xoshiro256 rng(seed);
  std::vector<Vec3> inserted;
  inserted.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t host = rng.below(positions.size());
    const Vec3 site = box.wrap(positions[host] + offset_fraction * spacing *
                                                     random_unit_vector(rng));
    positions.push_back(site);
    inserted.push_back(site);
  }
  return inserted;
}

std::size_t carve_sphere(std::vector<Vec3>& positions, const Box& box,
                         const Vec3& center, double radius) {
  SDCMD_REQUIRE(radius >= 0.0, "radius must be non-negative");
  const double r2 = radius * radius;
  const auto inside = [&](const Vec3& r) {
    return box.distance2(r, center) <= r2;
  };
  const std::size_t before = positions.size();
  positions.erase(std::remove_if(positions.begin(), positions.end(), inside),
                  positions.end());
  return before - positions.size();
}

std::vector<std::size_t> damage_sphere(std::vector<Vec3>& positions,
                                       const Box& box, const Vec3& center,
                                       double radius,
                                       double max_displacement,
                                       std::uint64_t seed) {
  SDCMD_REQUIRE(radius >= 0.0, "radius must be non-negative");
  SDCMD_REQUIRE(max_displacement >= 0.0,
                "displacement must be non-negative");
  Xoshiro256 rng(seed);
  std::vector<std::size_t> touched;
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (box.distance2(positions[i], center) > r2) continue;
    positions[i] = box.wrap(positions[i] + rng.uniform(0.0, max_displacement) *
                                               random_unit_vector(rng));
    touched.push_back(i);
  }
  return touched;
}

}  // namespace sdcmd
