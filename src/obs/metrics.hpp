// MetricsRegistry: named counters, gauges and RunningStats-backed timing
// distributions with step-scoped snapshots.
//
// Design constraints (ISSUE 2):
//  * compiled-in but cheap: every mutation is guarded by a single branch on
//    enabled(), so a disabled registry costs one predictable-false test;
//  * interned handles: names are resolved to indices once at setup, the hot
//    path never touches a string (the PhaseTimers lesson applied from the
//    start);
//  * step-scoped snapshots: step_snapshot() reports counter deltas and
//    windowed stats since the previous call, so a JSONL line describes one
//    step, not the run so far.
//
// The registry is NOT thread-safe: it belongs to the driver thread. The
// per-thread data produced inside OpenMP regions goes through
// SdcSweepProfiler (preallocated per-thread slots) and is folded into the
// registry after the parallel region ends.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"

namespace sdcmd::obs {

enum class MetricKind { Counter, Gauge, Stats };

std::string to_string(MetricKind kind);

class MetricsRegistry {
 public:
  using Handle = std::size_t;

  /// Intern a metric name (idempotent: same name, same kind -> same
  /// handle; same name with a different kind throws PreconditionError).
  Handle counter(const std::string& name);
  Handle gauge(const std::string& name);
  Handle stats(const std::string& name);

  /// A registry starts enabled; a disabled one turns every mutation into
  /// a single branch.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void add(Handle h, double delta = 1.0) {
    if (!enabled_) return;
    slots_[h].value += delta;
  }
  void set(Handle h, double value) {
    if (!enabled_) return;
    slots_[h].value = value;
  }
  void observe(Handle h, double sample) {
    if (!enabled_) return;
    Slot& s = slots_[h];
    s.total.add(sample);
    s.window.add(sample);
  }

  std::size_t size() const { return slots_.size(); }
  const std::string& name(Handle h) const { return slots_[h].name; }
  MetricKind kind(Handle h) const { return slots_[h].kind; }

  /// Cumulative counter/gauge value.
  double value(Handle h) const { return slots_[h].value; }
  /// Cumulative distribution of an observe()d metric.
  const RunningStats& total_stats(Handle h) const { return slots_[h].total; }

  struct Sample {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    /// Counter: delta over the step window. Gauge: current value.
    /// Stats: window.count() etc. carry the distribution.
    double value = 0.0;
    RunningStats window;
  };

  /// Everything that moved since the previous step_snapshot() (counters
  /// with zero delta and empty stats windows are skipped; gauges are always
  /// reported). Resets the step windows.
  std::vector<Sample> step_snapshot();

  /// Cumulative view of every registered metric; does not touch windows.
  std::vector<Sample> totals() const;

  /// Zero all values, windows and cumulative stats (handles stay valid).
  void reset();

 private:
  struct Slot {
    std::string name;
    MetricKind kind;
    double value = 0.0;
    double snapshot_value = 0.0;  ///< counter value at the last snapshot
    RunningStats total;
    RunningStats window;
  };

  Handle intern(const std::string& name, MetricKind kind);

  bool enabled_ = true;
  std::vector<Slot> slots_;
  std::unordered_map<std::string, Handle> index_;
};

/// RAII span feeding a stats metric with its lifetime in seconds. With a
/// null or disabled registry, construction is one branch and no clock read.
class MetricSpan {
 public:
  MetricSpan(MetricsRegistry* registry, MetricsRegistry::Handle handle)
      : registry_(registry), handle_(handle) {
    if (registry_ && registry_->enabled()) start_ = wall_time();
  }
  ~MetricSpan() {
    if (start_ >= 0.0) registry_->observe(handle_, wall_time() - start_);
  }
  MetricSpan(const MetricSpan&) = delete;
  MetricSpan& operator=(const MetricSpan&) = delete;

 private:
  MetricsRegistry* registry_;
  MetricsRegistry::Handle handle_;
  double start_ = -1.0;
};

}  // namespace sdcmd::obs
