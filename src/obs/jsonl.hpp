// JSONL step-metrics exporter: one JSON object per line, one line per
// simulation (or bench) step, so a run's perf trajectory can be tailed,
// jq-filtered, or bulk-loaded without a closing bracket ever going missing
// on a crash.
//
// Record schema "sdcmd.step_metrics.v1":
//   {
//     "schema": "sdcmd.step_metrics.v1",
//     "step": 42,
//     "wall_s": 0.0123,                       // optional, step wall time
//     "metrics": {                            // registry step snapshot
//       "sim.neighbor_rebuilds": 1,           // counters: delta this step
//       "sim.dt": 1e-4,                       // gauges: current value
//       "force.step_seconds": {               // stats: window distribution
//         "count": 2, "sum": ..., "mean": ..., "min": ..., "max": ...
//       }
//     },
//     "sweep": [                              // per-color SDC profile
//       {"phase": "density", "color": 0, "threads": 4,
//        "work_max_s": ..., "work_mean_s": ..., "work_min_s": ...,
//        "imbalance": 1.07,
//        "wait_max_s": ..., "wait_mean_s": ...},
//       ...
//     ]
//   }
// "wall_s" and "sweep" appear only when provided; "metrics" members only
// when they moved during the step. See docs/observability.md.
#pragma once

#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/sweep_profile.hpp"

namespace sdcmd::obs {

class StepMetricsWriter {
 public:
  /// Opens (truncates) `path`. Check ok(): records are dropped when the
  /// file could not be opened, mirroring CsvWriter.
  explicit StepMetricsWriter(const std::string& path);

  bool ok() const { return static_cast<bool>(out_); }
  std::size_t records() const { return records_; }

  /// Append one step record. `registry` contributes its step snapshot
  /// (consumed: windows reset); `sweep` contributes per-color profiles when
  /// non-null and populated; `wall_seconds` > 0 adds the step wall time.
  void write_step(long step, MetricsRegistry& registry,
                  const SdcSweepProfiler* sweep = nullptr,
                  double wall_seconds = 0.0);

  /// Append one end-of-run record tagged `"kind":"summary"` carrying the
  /// registry's cumulative totals() (counters: run total; gauges: final
  /// value; stats: whole-run distribution). Step windows are untouched, so
  /// a summary can follow the final write_step without losing a window.
  /// Gives downstream diffing (scripts/bench_compare.py) one stable
  /// aggregate per run instead of a fold over per-step windows.
  void write_summary(long step, const MetricsRegistry& registry,
                     double wall_seconds = 0.0);

  void flush() { out_.flush(); }

 private:
  std::ofstream out_;
  std::size_t records_ = 0;
  std::string line_;  ///< reused per record
};

}  // namespace sdcmd::obs
