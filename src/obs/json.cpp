#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace sdcmd::obs {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void JsonValue::append_to(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: out += std::to_string(int_); break;
    case Type::Double: append_json_number(out, double_); break;
    case Type::String: append_json_string(out, string_); break;
  }
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::begin_object() {
  separate();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::end_object() {
  SDCMD_REQUIRE(!has_element_.empty(), "unbalanced end_object");
  has_element_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  separate();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::end_array() {
  SDCMD_REQUIRE(!has_element_.empty(), "unbalanced end_array");
  has_element_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view k) {
  separate();
  append_json_string(out_, k);
  out_ += ':';
  after_key_ = true;
}

void JsonWriter::value(const JsonValue& v) {
  separate();
  v.append_to(out_);
}

void JsonWriter::value(std::string_view s) {
  separate();
  append_json_string(out_, s);
}

void JsonWriter::value(double d) {
  separate();
  append_json_number(out_, d);
}

void JsonWriter::value(std::int64_t i) {
  separate();
  out_ += std::to_string(i);
}

void JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
}

}  // namespace sdcmd::obs
