#include "obs/trace.hpp"

#include <fstream>

namespace sdcmd::obs {

namespace {
constexpr double kMicro = 1e6;  // trace timestamps are microseconds
}

void TraceWriter::set_time_origin(double t0_seconds) {
  origin_ = t0_seconds;
  have_origin_ = true;
}

double TraceWriter::origin(double t) {
  if (!have_origin_) {
    origin_ = t;
    have_origin_ = true;
  }
  return t - origin_;
}

void TraceWriter::set_thread_name(int tid, const std::string& name) {
  for (auto& [existing_tid, existing_name] : thread_names_) {
    if (existing_tid == tid) {
      existing_name = name;
      return;
    }
  }
  thread_names_.emplace_back(tid, name);
}

void TraceWriter::complete_event(const std::string& name,
                                 const std::string& category,
                                 double start_seconds,
                                 double duration_seconds, int tid) {
  events_.push_back(
      Event{name, category, 'X', origin(start_seconds), duration_seconds,
            tid, 0.0});
}

void TraceWriter::instant_event(const std::string& name,
                                const std::string& category,
                                double t_seconds, int tid) {
  events_.push_back(
      Event{name, category, 'i', origin(t_seconds), 0.0, tid, 0.0});
}

void TraceWriter::counter_event(const std::string& name, double t_seconds,
                                double value) {
  events_.push_back(
      Event{name, "counter", 'C', origin(t_seconds), 0.0, 0, value});
}

std::string TraceWriter::to_json() const {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& [tid, name] : thread_names_) {
    w.begin_object();
    w.member("name", "thread_name");
    w.member("ph", "M");
    w.member("pid", 1);
    w.member("tid", tid);
    w.key("args");
    w.begin_object();
    w.member("name", name);
    w.end_object();
    w.end_object();
  }
  for (const Event& e : events_) {
    w.begin_object();
    w.member("name", e.name);
    w.member("cat", e.category);
    w.member("ph", std::string(1, e.phase));
    w.member("ts", e.start * kMicro);
    if (e.phase == 'X') w.member("dur", e.dur * kMicro);
    if (e.phase == 'i') w.member("s", "t");  // thread-scoped instant
    w.member("pid", 1);
    w.member("tid", e.tid);
    if (e.phase == 'C') {
      w.key("args");
      w.begin_object();
      w.member("value", e.value);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.member("displayTimeUnit", "ms");
  w.end_object();
  return out;
}

bool TraceWriter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

void append_sweep_events(TraceWriter& trace, const SdcSweepProfiler& sweep,
                         const std::string& label_prefix) {
  for (int t = 0; t < sweep.threads(); ++t) {
    trace.set_thread_name(t, "omp thread " + std::to_string(t));
  }
  for (int p = 0; p < sweep.phases(); ++p) {
    const std::string& phase = sweep.phase_name(p);
    for (int c = 0; c < sweep.colors(); ++c) {
      for (int t = 0; t < sweep.threads(); ++t) {
        const SweepSample& s = sweep.sample(p, c, t);
        if (!s.valid) continue;
        const std::string label =
            label_prefix.empty()
                ? phase + "/c" + std::to_string(c)
                : label_prefix + phase + "/c" + std::to_string(c);
        trace.complete_event(label, phase, s.start, s.work, t);
        if (s.wait > 0.0) {
          trace.complete_event("barrier", "barrier", s.start + s.work,
                               s.wait, t);
        }
      }
    }
  }
}

}  // namespace sdcmd::obs
