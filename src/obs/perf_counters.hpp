// Hardware-counter profiling via perf_event_open, phase-scoped and
// per-thread, with graceful degradation to a zero-cost no-op.
//
// The wall clock can say a phase got slower; it cannot say *why*. The two
// machine-level numbers that decide ROADMAP items 1 (SIMD SoA fast path)
// and 2 (task-graph scheduling) are instructions-per-cycle (are the kernels
// compute-bound or stalled?) and cache-miss rate (is the CSR walk thrashing
// or streaming?). This layer counts cycles, instructions, cache
// references/misses and branch misses per OpenMP thread between the phase
// barriers the fused EAM pipeline already has, plus -- behind an open-probe,
// Intel only -- retired scalar/vector FP operations so vector-lane
// utilization is measurable before and after a SIMD rewrite.
//
// Availability is a spectrum, not a boolean: `perf_event_paranoid` may
// forbid the syscall (common in CI containers), the kernel may lack the
// PMU (VMs), or the platform may not be Linux at all. Every path degrades
// to a no-op whose cost is one branch: available() probes once per
// process, set_enabled() refuses when the probe failed, and a disabled
// profiler never issues a syscall. Exporters publish `hw.available` so a
// silent no-op is still visible in the metrics stream.
#pragma once

#include <string>
#include <vector>

namespace sdcmd::obs {

/// One phase-span's counter deltas, multiplex-scaled to estimated full-span
/// values (the kernel time-slices counter groups when the PMU is
/// oversubscribed; values are scaled by time_enabled/time_running).
struct HwCounts {
  double cycles = 0.0;
  double instructions = 0.0;
  double cache_refs = 0.0;
  double cache_misses = 0.0;
  double branch_misses = 0.0;
  double fp_scalar = 0.0;  ///< retired scalar FP ops (Intel raw event)
  double fp_vector = 0.0;  ///< retired packed FP ops, all widths summed
  bool has_fp = false;     ///< the FP group opened (Intel + probe passed)
  bool valid = false;      ///< set by a successful mark; idle slots stay false

  double ipc() const { return cycles > 0.0 ? instructions / cycles : 0.0; }
  double cache_miss_rate() const {
    return cache_refs > 0.0 ? cache_misses / cache_refs : 0.0;
  }
  /// Fraction of retired FP ops that were packed (0 when none counted).
  double fp_vector_frac() const {
    const double total = fp_scalar + fp_vector;
    return total > 0.0 ? fp_vector / total : 0.0;
  }

  void accumulate(const HwCounts& other);
};

/// RAII perf_event_open counter group bound to the thread that called
/// open(). The five generic events share one group (scheduled onto the PMU
/// together, so their ratios are exact); the optional raw FP events form a
/// second group so their presence never multiplexes the generic five.
class PerfCounterGroup {
 public:
  PerfCounterGroup() = default;
  ~PerfCounterGroup() { close(); }

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;
  PerfCounterGroup(PerfCounterGroup&& other) noexcept;
  PerfCounterGroup& operator=(PerfCounterGroup&& other) noexcept;

  /// Open the group for the CALLING thread (pid=0, cpu=-1). Returns false
  /// when the syscall is denied or unsupported; the group then stays a
  /// no-op. Idempotent once open.
  bool open();
  bool ok() const { return group_fd_ >= 0; }
  bool has_fp() const { return fp_fd_ >= 0; }

  /// Cumulative multiplex-scaled counts since open(). Returns false (and
  /// leaves `out.valid` false) when the group is closed or the read fails.
  bool read(HwCounts& out) const;

  void close();

 private:
  int group_fd_ = -1;          ///< leader: cycles
  std::vector<int> member_fds_;  ///< instructions, cache-refs/misses, br-miss
  int fp_fd_ = -1;             ///< FP group leader, -1 when probe failed
  int fp_vec_fd_ = -1;
};

/// Per-(phase, thread) hardware-counter sampling over the fused pipeline's
/// existing phase barriers -- the counter analogue of SdcSweepProfiler.
/// Groups are opened lazily by the owning thread (perf fds are
/// thread-bound), every slot is written by exactly one thread, and the
/// driver reads the samples after the parallel region ends.
class PerfPhaseProfiler {
 public:
  /// Shape the sample store: one named phase per barrier-delimited span,
  /// `threads` OpenMP threads. Idempotent on an unchanged shape; a changed
  /// shape closes and reopens the per-thread groups.
  void configure(std::vector<std::string> phase_names, int threads);

  /// Disabled by default. set_enabled(true) is refused (stays false) when
  /// available() says the syscall cannot work, so callers may enable
  /// unconditionally and read back the decision.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on);

  int phases() const { return static_cast<int>(phase_names_.size()); }
  int threads() const { return threads_; }
  const std::string& phase_name(int phase) const {
    return phase_names_[static_cast<std::size_t>(phase)];
  }

  /// Invalidate all samples; call at the start of each profiled step.
  void begin_step();

  /// Called by thread `tid` inside the parallel region, once at region
  /// entry: opens the thread's group on first use and takes the baseline
  /// reading the first mark's delta is measured against.
  void thread_begin(int tid);

  /// Called by thread `tid` at the barrier ending `phase`: stores the
  /// counter delta since this thread's previous begin/mark into the
  /// (phase, tid) slot.
  void thread_mark(int phase, int tid);

  const HwCounts& sample(int phase, int thread) const {
    return samples_[slot(phase, thread)];
  }

  /// One phase's counts summed over the threads that recorded a sample.
  struct PhaseTotals {
    int phase = 0;
    int threads = 0;  ///< threads that contributed
    HwCounts counts;
  };

  /// Totals for every phase with at least one valid sample, phase-major,
  /// for the step recorded since begin_step().
  std::vector<PhaseTotals> phase_totals() const;

  /// One probe per process: false on non-Linux builds, when
  /// /proc/sys/kernel/perf_event_paranoid forbids self-measurement, when a
  /// trial perf_event_open fails, or when SDCMD_NO_HW_COUNTERS=1 is set
  /// (the documented kill switch for exercising the no-op path).
  static bool available();

  /// Current /proc/sys/kernel/perf_event_paranoid value, or -100 when the
  /// file cannot be read (non-Linux, masked procfs).
  static int paranoid_level();

 private:
  std::size_t slot(int phase, int thread) const {
    return static_cast<std::size_t>(phase) *
               static_cast<std::size_t>(threads_) +
           static_cast<std::size_t>(thread);
  }

  struct ThreadState {
    PerfCounterGroup group;
    HwCounts last;
    bool open_attempted = false;
  };

  bool enabled_ = false;
  std::vector<std::string> phase_names_;
  int threads_ = 0;
  std::vector<HwCounts> samples_;
  std::vector<ThreadState> state_;
};

}  // namespace sdcmd::obs
