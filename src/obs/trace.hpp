// Chrome trace-event exporter. The output is the classic JSON-array trace
// format ({"traceEvents": [...]}) that chrome://tracing and Perfetto's
// legacy importer both load, so a bench or simulation run can be inspected
// on a real timeline: one track per OpenMP thread, one slice per
// (phase, color) sweep, and the barrier wait visible as the gap between a
// slice's end and the next color's start.
//
// Events are buffered in memory and written once; collection happens on the
// driver thread (kernels record into SdcSweepProfiler's wait-free slots,
// and append_sweep_events() folds a profiled step into the trace
// afterwards), so no locking is needed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/sweep_profile.hpp"

namespace sdcmd::obs {

class TraceWriter {
 public:
  /// Wall-clock origin subtracted from every timestamp so traces start at
  /// t=0. Set it once before the first event (defaults to the first
  /// event's start).
  void set_time_origin(double t0_seconds);

  /// Name a thread track (tid) in the viewer.
  void set_thread_name(int tid, const std::string& name);

  /// A complete ("ph":"X") duration event on thread track `tid`.
  void complete_event(const std::string& name, const std::string& category,
                      double start_seconds, double duration_seconds, int tid);

  /// An instant ("ph":"i") event, e.g. a rollback or checkpoint marker.
  void instant_event(const std::string& name, const std::string& category,
                     double t_seconds, int tid);

  /// A counter ("ph":"C") sample, rendered as a stacked chart.
  void counter_event(const std::string& name, double t_seconds, double value);

  std::size_t size() const { return events_.size(); }

  /// The whole trace as a JSON document.
  std::string to_json() const;

  /// Write to `path`; false when the file cannot be opened.
  bool write(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase;        // 'X', 'i', 'C', 'M'
    double start = 0;  // seconds, origin-relative
    double dur = 0;    // seconds ('X' only)
    int tid = 0;
    double value = 0;  // 'C' only
  };

  double origin(double t);

  bool have_origin_ = false;
  double origin_ = 0.0;
  std::vector<Event> events_;
  std::vector<std::pair<int, std::string>> thread_names_;
};

/// Fold one profiled step into the trace: a work slice per (phase, color,
/// thread) plus a "barrier" slice covering each thread's wait, tracks named
/// "omp thread N". `label_prefix` disambiguates steps ("step 12/density").
void append_sweep_events(TraceWriter& trace, const SdcSweepProfiler& sweep,
                         const std::string& label_prefix = "");

}  // namespace sdcmd::obs
