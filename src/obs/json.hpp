// Minimal JSON emission for the observability exporters (JSONL step
// metrics, Chrome trace events, versioned bench reports). Writing only: the
// consumers are jq / python / Perfetto, not this library. Numbers are
// emitted with enough digits to round-trip doubles; NaN/Inf (not
// representable in JSON) degrade to null so a poisoned metric can never
// produce an unparseable file.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sdcmd::obs {

/// Tagged scalar for heterogeneous records (bench result rows, trace args).
class JsonValue {
 public:
  JsonValue() : type_(Type::Null) {}
  JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
  JsonValue(double d) : type_(Type::Double), double_(d) {}
  JsonValue(std::int64_t i) : type_(Type::Int), int_(i) {}
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
  JsonValue(std::size_t u) : JsonValue(static_cast<std::int64_t>(u)) {}
  JsonValue(std::string s) : type_(Type::String), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  /// Append this value's JSON text to `out`.
  void append_to(std::string& out) const;

 private:
  enum class Type { Null, Bool, Int, Double, String };
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

/// Append `"..."` with JSON escaping.
void append_json_string(std::string& out, std::string_view s);

/// Append a double (null when non-finite).
void append_json_number(std::string& out, double value);

/// Streaming writer building one JSON document into a string buffer.
/// Commas are inserted automatically; the caller only balances
/// begin/end calls.
class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by exactly one value or container.
  void key(std::string_view k);

  void value(const JsonValue& v);
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(const std::string& s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::int64_t i);
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(std::size_t u) { value(static_cast<std::int64_t>(u)); }
  void value(bool b);

  /// key() + value() in one call.
  template <typename T>
  void member(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

 private:
  void separate();

  std::string& out_;
  // One frame per open container: true once the first element was written.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace sdcmd::obs
