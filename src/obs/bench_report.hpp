// Versioned machine-readable bench results, schema "sdcmd.bench.v1":
//   {
//     "schema": "sdcmd.bench.v1",
//     "bench": "table1_sdc",
//     "context": {"scale": "tiny", "steps": 2, "hardware_threads": 16, ...},
//     "results": [
//       {"case": "small", "dims": 2, "threads": 4,
//        "seconds_per_step": 0.0123, "speedup": 3.1, "feasible": true},
//       ...
//     ]
//   }
// Every result row is a flat object of scalars so CI can diff runs with jq
// and the perf trajectory can be tracked across PRs without scraping the
// ASCII tables. Rows are heterogeneous across benches; the schema pins the
// envelope (schema/bench/context/results), not the row columns.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace sdcmd::obs {

class BenchReport {
 public:
  /// `bench` names the producing binary, e.g. "table1_sdc".
  explicit BenchReport(std::string bench);

  /// Run-wide context (scale, thread sweep, steps, host facts).
  void set_context(const std::string& key, JsonValue value);

  using Row = std::vector<std::pair<std::string, JsonValue>>;
  void add_result(Row row);

  std::size_t results() const { return rows_.size(); }

  std::string to_json() const;

  /// Write to `path`; false when the file cannot be opened.
  bool write(const std::string& path) const;

 private:
  std::string bench_;
  std::vector<std::pair<std::string, JsonValue>> context_;
  std::vector<Row> rows_;
};

}  // namespace sdcmd::obs
