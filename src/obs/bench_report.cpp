#include "obs/bench_report.hpp"

#include <fstream>

namespace sdcmd::obs {

BenchReport::BenchReport(std::string bench) : bench_(std::move(bench)) {}

void BenchReport::set_context(const std::string& key, JsonValue value) {
  for (auto& [k, v] : context_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  context_.emplace_back(key, std::move(value));
}

void BenchReport::add_result(Row row) { rows_.push_back(std::move(row)); }

std::string BenchReport::to_json() const {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.member("schema", "sdcmd.bench.v1");
  w.member("bench", bench_);
  w.key("context");
  w.begin_object();
  for (const auto& [k, v] : context_) w.member(k, v);
  w.end_object();
  w.key("results");
  w.begin_array();
  for (const Row& row : rows_) {
    w.begin_object();
    for (const auto& [k, v] : row) w.member(k, v);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

bool BenchReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace sdcmd::obs
