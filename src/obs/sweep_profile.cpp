#include "obs/sweep_profile.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sdcmd::obs {

void SdcSweepProfiler::configure(std::vector<std::string> phase_names,
                                 int colors, int threads) {
  SDCMD_REQUIRE(colors >= 1 && threads >= 1,
                "sweep profiler needs at least one color and one thread");
  if (phase_names == phase_names_ && colors == colors_ &&
      threads == threads_) {
    return;
  }
  phase_names_ = std::move(phase_names);
  colors_ = colors;
  threads_ = threads;
  samples_.assign(phase_names_.size() * static_cast<std::size_t>(colors_) *
                      static_cast<std::size_t>(threads_),
                  SweepSample{});
}

void SdcSweepProfiler::begin_step() {
  std::fill(samples_.begin(), samples_.end(), SweepSample{});
}

std::vector<SdcSweepProfiler::ColorProfile>
SdcSweepProfiler::color_profiles() const {
  std::vector<ColorProfile> out;
  for (int p = 0; p < phases(); ++p) {
    for (int c = 0; c < colors_; ++c) {
      ColorProfile prof;
      prof.phase = p;
      prof.color = c;
      double work_sum = 0.0, wait_sum = 0.0;
      for (int t = 0; t < threads_; ++t) {
        const SweepSample& s = sample(p, c, t);
        if (!s.valid) continue;
        if (prof.threads == 0) {
          prof.work_max = prof.work_min = s.work;
          prof.wait_max = s.wait;
        } else {
          prof.work_max = std::max(prof.work_max, s.work);
          prof.work_min = std::min(prof.work_min, s.work);
          prof.wait_max = std::max(prof.wait_max, s.wait);
        }
        work_sum += s.work;
        wait_sum += s.wait;
        ++prof.threads;
      }
      if (prof.threads == 0) continue;
      prof.work_mean = work_sum / prof.threads;
      prof.wait_mean = wait_sum / prof.threads;
      prof.imbalance =
          prof.work_mean > 0.0 ? prof.work_max / prof.work_mean : 1.0;
      out.push_back(prof);
    }
  }
  return out;
}

}  // namespace sdcmd::obs
