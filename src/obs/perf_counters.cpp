#include "obs/perf_counters.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#endif

namespace sdcmd::obs {

void HwCounts::accumulate(const HwCounts& other) {
  if (!other.valid) return;
  cycles += other.cycles;
  instructions += other.instructions;
  cache_refs += other.cache_refs;
  cache_misses += other.cache_misses;
  branch_misses += other.branch_misses;
  fp_scalar += other.fp_scalar;
  fp_vector += other.fp_vector;
  has_fp = has_fp || other.has_fp;
  valid = true;
}

PerfCounterGroup::PerfCounterGroup(PerfCounterGroup&& other) noexcept
    : group_fd_(std::exchange(other.group_fd_, -1)),
      member_fds_(std::move(other.member_fds_)),
      fp_fd_(std::exchange(other.fp_fd_, -1)),
      fp_vec_fd_(std::exchange(other.fp_vec_fd_, -1)) {
  other.member_fds_.clear();
}

PerfCounterGroup& PerfCounterGroup::operator=(
    PerfCounterGroup&& other) noexcept {
  if (this != &other) {
    close();
    group_fd_ = std::exchange(other.group_fd_, -1);
    member_fds_ = std::move(other.member_fds_);
    other.member_fds_.clear();
    fp_fd_ = std::exchange(other.fp_fd_, -1);
    fp_vec_fd_ = std::exchange(other.fp_vec_fd_, -1);
  }
  return *this;
}

#if defined(__linux__)

namespace {

constexpr std::uint64_t kReadFormat = PERF_FORMAT_GROUP |
                                      PERF_FORMAT_TOTAL_TIME_ENABLED |
                                      PERF_FORMAT_TOTAL_TIME_RUNNING;

/// Open one event for the calling thread (pid=0, cpu=-1), user space only
/// so perf_event_paranoid=2 still admits it. Returns the fd or -1.
int open_event(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.read_format = kReadFormat;  // groups require a uniform read_format
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  const long fd =
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1, group_fd,
              /*flags=*/0UL);
  return static_cast<int>(fd);
}

/// FP_ARITH_INST_RETIRED raw configs (Intel SKL+): event 0xC7 with the
/// scalar umasks (single|double = 0x03) and every packed umask summed into
/// one counter (128/256/512-bit, single+double = 0xFC). Gated on the CPU
/// vendor because raw configs are microarchitecture-specific; elsewhere the
/// open-probe simply never runs.
constexpr std::uint64_t kFpScalarConfig = 0x03C7;
constexpr std::uint64_t kFpVectorConfig = 0xFCC7;

bool cpu_is_intel() {
  static const bool intel = [] {
    std::FILE* f = std::fopen("/proc/cpuinfo", "re");
    if (f == nullptr) return false;
    char line[256];
    bool found = false;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strstr(line, "GenuineIntel") != nullptr) {
        found = true;
        break;
      }
    }
    std::fclose(f);
    return found;
  }();
  return intel;
}

/// Read an fd opened with kReadFormat: {nr, time_enabled, time_running,
/// value[nr]}. Returns the multiplex scale factor through `scale`.
bool read_group(int fd, std::uint64_t* values, std::size_t expected,
                double& scale) {
  // 3 header words + up to 8 values is comfortably the largest group here.
  std::uint64_t buf[16];
  const std::size_t want = (3 + expected) * sizeof(std::uint64_t);
  const ssize_t got = ::read(fd, buf, sizeof(buf));
  if (got < 0 || static_cast<std::size_t>(got) < want) return false;
  if (buf[0] != expected) return false;
  const auto enabled = static_cast<double>(buf[1]);
  const auto running = static_cast<double>(buf[2]);
  scale = running > 0.0 ? enabled / running : 0.0;
  for (std::size_t i = 0; i < expected; ++i) values[i] = buf[3 + i];
  return true;
}

}  // namespace

bool PerfCounterGroup::open() {
  if (group_fd_ >= 0) return true;
  group_fd_ = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (group_fd_ < 0) {
    group_fd_ = -1;
    return false;
  }
  const std::uint64_t members[] = {PERF_COUNT_HW_INSTRUCTIONS,
                                   PERF_COUNT_HW_CACHE_REFERENCES,
                                   PERF_COUNT_HW_CACHE_MISSES,
                                   PERF_COUNT_HW_BRANCH_MISSES};
  for (const std::uint64_t config : members) {
    const int fd = open_event(PERF_TYPE_HARDWARE, config, group_fd_);
    if (fd < 0) {
      // Partial groups would silently skew ratios; all five or nothing.
      close();
      return false;
    }
    member_fds_.push_back(fd);
  }
  // Optional second group: raw FP events behind vendor gate + open probe.
  if (cpu_is_intel()) {
    fp_fd_ = open_event(PERF_TYPE_RAW, kFpScalarConfig, -1);
    if (fp_fd_ >= 0) {
      fp_vec_fd_ = open_event(PERF_TYPE_RAW, kFpVectorConfig, fp_fd_);
      if (fp_vec_fd_ < 0) {
        ::close(fp_fd_);
        fp_fd_ = -1;
      }
    }
  }
  return true;
}

bool PerfCounterGroup::read(HwCounts& out) const {
  if (group_fd_ < 0) return false;
  std::uint64_t v[5];
  double scale = 0.0;
  if (!read_group(group_fd_, v, 5, scale)) return false;
  out.cycles = static_cast<double>(v[0]) * scale;
  out.instructions = static_cast<double>(v[1]) * scale;
  out.cache_refs = static_cast<double>(v[2]) * scale;
  out.cache_misses = static_cast<double>(v[3]) * scale;
  out.branch_misses = static_cast<double>(v[4]) * scale;
  out.fp_scalar = 0.0;
  out.fp_vector = 0.0;
  out.has_fp = false;
  if (fp_fd_ >= 0) {
    std::uint64_t fpv[2];
    double fp_scale = 0.0;
    if (read_group(fp_fd_, fpv, 2, fp_scale)) {
      out.fp_scalar = static_cast<double>(fpv[0]) * fp_scale;
      out.fp_vector = static_cast<double>(fpv[1]) * fp_scale;
      out.has_fp = true;
    }
  }
  out.valid = true;
  return true;
}

void PerfCounterGroup::close() {
  for (const int fd : member_fds_) ::close(fd);
  member_fds_.clear();
  if (fp_vec_fd_ >= 0) ::close(fp_vec_fd_);
  fp_vec_fd_ = -1;
  if (fp_fd_ >= 0) ::close(fp_fd_);
  fp_fd_ = -1;
  if (group_fd_ >= 0) ::close(group_fd_);
  group_fd_ = -1;
}

int PerfPhaseProfiler::paranoid_level() {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "re");
  if (f == nullptr) return -100;
  int level = -100;
  if (std::fscanf(f, "%d", &level) != 1) level = -100;
  std::fclose(f);
  return level;
}

bool PerfPhaseProfiler::available() {
  static const bool avail = [] {
    const char* off = std::getenv("SDCMD_NO_HW_COUNTERS");
    if (off != nullptr && off[0] != '\0' && std::strcmp(off, "0") != 0) {
      return false;
    }
    // The probe IS the answer: capabilities, cgroup policy and paranoid
    // level all fold into whether a trial open succeeds.
    PerfCounterGroup trial;
    const bool ok = trial.open();
    trial.close();
    return ok;
  }();
  return avail;
}

#else  // !__linux__

bool PerfCounterGroup::open() { return false; }
bool PerfCounterGroup::read(HwCounts&) const { return false; }
void PerfCounterGroup::close() {}
int PerfPhaseProfiler::paranoid_level() { return -100; }
bool PerfPhaseProfiler::available() { return false; }

#endif  // __linux__

void PerfPhaseProfiler::configure(std::vector<std::string> phase_names,
                                  int threads) {
  if (phase_names == phase_names_ && threads == threads_) return;
  phase_names_ = std::move(phase_names);
  threads_ = threads;
  samples_.assign(phase_names_.size() * static_cast<std::size_t>(threads),
                  HwCounts{});
  // Old groups (possibly owned by threads that no longer exist) are closed
  // here on the driver thread; close() is just close(2) on fds, which is
  // legal from any thread.
  state_.clear();
  state_.resize(static_cast<std::size_t>(threads));
}

void PerfPhaseProfiler::set_enabled(bool on) { enabled_ = on && available(); }

void PerfPhaseProfiler::begin_step() {
  for (auto& s : samples_) s.valid = false;
}

void PerfPhaseProfiler::thread_begin(int tid) {
  if (tid < 0 || tid >= threads_) return;
  ThreadState& st = state_[static_cast<std::size_t>(tid)];
  if (!st.open_attempted) {
    st.open_attempted = true;
    st.group.open();  // binds the fds to THIS thread
  }
  if (st.group.ok()) st.group.read(st.last);
}

void PerfPhaseProfiler::thread_mark(int phase, int tid) {
  if (tid < 0 || tid >= threads_) return;
  ThreadState& st = state_[static_cast<std::size_t>(tid)];
  if (!st.group.ok()) return;
  HwCounts cur;
  if (!st.group.read(cur)) return;
  HwCounts& out = samples_[slot(phase, tid)];
  // Multiplex scaling estimates can make cumulative values locally
  // non-monotonic; clamp the deltas at zero rather than export noise.
  out.cycles = std::max(0.0, cur.cycles - st.last.cycles);
  out.instructions = std::max(0.0, cur.instructions - st.last.instructions);
  out.cache_refs = std::max(0.0, cur.cache_refs - st.last.cache_refs);
  out.cache_misses = std::max(0.0, cur.cache_misses - st.last.cache_misses);
  out.branch_misses =
      std::max(0.0, cur.branch_misses - st.last.branch_misses);
  out.fp_scalar = std::max(0.0, cur.fp_scalar - st.last.fp_scalar);
  out.fp_vector = std::max(0.0, cur.fp_vector - st.last.fp_vector);
  out.has_fp = cur.has_fp;
  out.valid = true;
  st.last = cur;
}

std::vector<PerfPhaseProfiler::PhaseTotals> PerfPhaseProfiler::phase_totals()
    const {
  std::vector<PhaseTotals> totals;
  for (int phase = 0; phase < phases(); ++phase) {
    PhaseTotals t;
    t.phase = phase;
    for (int tid = 0; tid < threads_; ++tid) {
      const HwCounts& s = samples_[slot(phase, tid)];
      if (!s.valid) continue;
      t.counts.accumulate(s);
      ++t.threads;
    }
    if (t.threads > 0) totals.push_back(std::move(t));
  }
  return totals;
}

}  // namespace sdcmd::obs
