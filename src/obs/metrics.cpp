#include "obs/metrics.hpp"

#include "common/error.hpp"

namespace sdcmd::obs {

std::string to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Stats: return "stats";
  }
  return "?";
}

MetricsRegistry::Handle MetricsRegistry::intern(const std::string& name,
                                                MetricKind kind) {
  if (auto it = index_.find(name); it != index_.end()) {
    SDCMD_REQUIRE(slots_[it->second].kind == kind,
                  "metric '" + name + "' already registered as " +
                      to_string(slots_[it->second].kind));
    return it->second;
  }
  slots_.push_back(Slot{name, kind, 0.0, 0.0, {}, {}});
  const Handle h = slots_.size() - 1;
  index_.emplace(name, h);
  return h;
}

MetricsRegistry::Handle MetricsRegistry::counter(const std::string& name) {
  return intern(name, MetricKind::Counter);
}

MetricsRegistry::Handle MetricsRegistry::gauge(const std::string& name) {
  return intern(name, MetricKind::Gauge);
}

MetricsRegistry::Handle MetricsRegistry::stats(const std::string& name) {
  return intern(name, MetricKind::Stats);
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::step_snapshot() {
  std::vector<Sample> out;
  out.reserve(slots_.size());
  for (Slot& s : slots_) {
    switch (s.kind) {
      case MetricKind::Counter: {
        const double delta = s.value - s.snapshot_value;
        s.snapshot_value = s.value;
        if (delta != 0.0) out.push_back({s.name, s.kind, delta, {}});
        break;
      }
      case MetricKind::Gauge:
        out.push_back({s.name, s.kind, s.value, {}});
        break;
      case MetricKind::Stats:
        if (s.window.count() > 0) {
          out.push_back({s.name, s.kind, s.window.sum(), s.window});
          s.window.reset();
        }
        break;
    }
  }
  return out;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::totals() const {
  std::vector<Sample> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    out.push_back({s.name, s.kind,
                   s.kind == MetricKind::Stats ? s.total.sum() : s.value,
                   s.total});
  }
  return out;
}

void MetricsRegistry::reset() {
  for (Slot& s : slots_) {
    s.value = 0.0;
    s.snapshot_value = 0.0;
    s.total.reset();
    s.window.reset();
  }
}

}  // namespace sdcmd::obs
