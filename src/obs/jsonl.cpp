#include "obs/jsonl.hpp"

#include "obs/json.hpp"

namespace sdcmd::obs {

namespace {

void append_stats_object(JsonWriter& w, const RunningStats& s) {
  w.begin_object();
  w.member("count", s.count());
  w.member("sum", s.sum());
  w.member("mean", s.mean());
  w.member("min", s.min());
  w.member("max", s.max());
  w.end_object();
}

}  // namespace

StepMetricsWriter::StepMetricsWriter(const std::string& path) : out_(path) {}

void StepMetricsWriter::write_step(long step, MetricsRegistry& registry,
                                   const SdcSweepProfiler* sweep,
                                   double wall_seconds) {
  const auto samples = registry.step_snapshot();
  if (!out_) return;

  line_.clear();
  JsonWriter w(line_);
  w.begin_object();
  w.member("schema", "sdcmd.step_metrics.v1");
  w.member("step", step);
  if (wall_seconds > 0.0) w.member("wall_s", wall_seconds);

  w.key("metrics");
  w.begin_object();
  for (const auto& s : samples) {
    w.key(s.name);
    if (s.kind == MetricKind::Stats) {
      append_stats_object(w, s.window);
    } else {
      w.value(s.value);
    }
  }
  w.end_object();

  if (sweep != nullptr) {
    const auto profiles = sweep->color_profiles();
    if (!profiles.empty()) {
      w.key("sweep");
      w.begin_array();
      for (const auto& p : profiles) {
        w.begin_object();
        w.member("phase", sweep->phase_name(p.phase));
        w.member("color", p.color);
        w.member("threads", p.threads);
        w.member("work_max_s", p.work_max);
        w.member("work_mean_s", p.work_mean);
        w.member("work_min_s", p.work_min);
        w.member("imbalance", p.imbalance);
        w.member("wait_max_s", p.wait_max);
        w.member("wait_mean_s", p.wait_mean);
        w.end_object();
      }
      w.end_array();
    }
  }
  w.end_object();

  out_ << line_ << '\n';
  ++records_;
}

void StepMetricsWriter::write_summary(long step,
                                      const MetricsRegistry& registry,
                                      double wall_seconds) {
  if (!out_) return;

  line_.clear();
  JsonWriter w(line_);
  w.begin_object();
  w.member("schema", "sdcmd.step_metrics.v1");
  w.member("kind", "summary");
  w.member("step", step);
  if (wall_seconds > 0.0) w.member("wall_s", wall_seconds);

  w.key("metrics");
  w.begin_object();
  for (const auto& s : registry.totals()) {
    w.key(s.name);
    if (s.kind == MetricKind::Stats) {
      append_stats_object(w, s.window);
    } else {
      w.value(s.value);
    }
  }
  w.end_object();
  w.end_object();

  out_ << line_ << '\n';
  ++records_;
  out_.flush();  // the summary is the last record; don't lose it to a crash
}

}  // namespace sdcmd::obs
