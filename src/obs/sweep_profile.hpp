// Per-thread x per-color span timing for the SDC color sweep.
//
// The paper's only synchronization is the barrier between colors, so the
// two numbers that explain SDC performance are (a) how unevenly a color's
// subdomains load the threads (the slowest thread sets the color's pace)
// and (b) how long the other threads then sit in the barrier. The profiled
// kernel variants time, per thread and per color,
//
//   work = time inside the orphaned `omp for` over the color's subdomains
//   wait = time blocked at the explicit barrier that ends the color
//
// and record them here. Slots are preallocated ((phases x colors) x
// threads) and each OpenMP thread writes only its own slot, so record() is
// wait-free and needs no synchronization. When the profiler is disabled the
// kernels take their original non-instrumented path and never read a clock
// -- the cost is one branch per phase call.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sdcmd::obs {

/// One thread's view of one color sweep. Times in seconds; `start` is the
/// wall_time() at color entry so exporters can rebuild a real timeline.
struct SweepSample {
  double start = 0.0;
  double work = 0.0;
  double wait = 0.0;
  bool valid = false;  ///< set by record(); distinguishes idle slots
};

class SdcSweepProfiler {
 public:
  /// Shape the sample store: one named phase per instrumented sweep (EAM:
  /// density/embed/force), `colors` colors, `threads` OpenMP threads.
  /// Idempotent when the shape is unchanged; otherwise reallocates.
  void configure(std::vector<std::string> phase_names, int colors,
                 int threads);

  /// Disabled by default; kernels check this before taking the timed path.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  int phases() const { return static_cast<int>(phase_names_.size()); }
  int colors() const { return colors_; }
  int threads() const { return threads_; }
  const std::string& phase_name(int phase) const {
    return phase_names_[static_cast<std::size_t>(phase)];
  }

  /// Invalidate all samples; call at the start of each profiled step.
  void begin_step();

  /// Called from inside the parallel region; each (phase, color, thread)
  /// triple is owned by exactly one thread.
  void record(int phase, int color, int thread, const SweepSample& sample) {
    samples_[slot(phase, color, thread)] = sample;
  }

  const SweepSample& sample(int phase, int color, int thread) const {
    return samples_[slot(phase, color, thread)];
  }

  /// Load/wait summary of one color sweep, aggregated over the threads
  /// that participated.
  struct ColorProfile {
    int phase = 0;
    int color = 0;
    int threads = 0;       ///< threads that recorded a sample
    double work_max = 0.0;
    double work_mean = 0.0;
    double work_min = 0.0;
    double wait_max = 0.0;
    double wait_mean = 0.0;
    /// max/mean thread work; 1.0 = perfectly balanced color.
    double imbalance = 0.0;
  };

  /// Profiles for every (phase, color) with at least one valid sample,
  /// phase-major, for the sweep recorded since begin_step().
  std::vector<ColorProfile> color_profiles() const;

 private:
  std::size_t slot(int phase, int color, int thread) const {
    return (static_cast<std::size_t>(phase) *
                static_cast<std::size_t>(colors_) +
            static_cast<std::size_t>(color)) *
               static_cast<std::size_t>(threads_) +
           static_cast<std::size_t>(thread);
  }

  bool enabled_ = false;
  std::vector<std::string> phase_names_;
  int colors_ = 0;
  int threads_ = 0;
  std::vector<SweepSample> samples_;
};

}  // namespace sdcmd::obs
