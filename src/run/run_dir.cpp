#include "run/run_dir.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"

namespace sdcmd::run {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kRunStateName = "run_state.json";
constexpr const char* kManifestMagic = "sdcmd-manifest";
constexpr int kManifestVersion = 1;
constexpr const char* kFooterTag = "checksum fnv1a64 ";
constexpr const char* kCkptPrefix = "ckpt_";
constexpr const char* kCkptSuffix = ".chk";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("run_dir: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Temp-then-rename writer shared by the sidecar and the MANIFEST; unlinks
/// its temp file on every failure path, mirroring save_checkpoint_file.
void write_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::remove(tmp.c_str());
      throw Error("run_dir: cannot open '" + tmp + "' for writing");
    }
    out << text;
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw Error("run_dir: short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("run_dir: cannot rename '" + tmp + "' to '" + path + "'");
  }
}

}  // namespace

RunDir::RunDir(std::string path, int keep)
    : path_(std::move(path)), keep_(keep) {
  SDCMD_REQUIRE(keep_ >= 1, "retention ring must keep at least 1 checkpoint");
  SDCMD_REQUIRE(!path_.empty(), "run directory path must not be empty");
  std::error_code ec;
  fs::create_directories(path_, ec);
  if (ec || !fs::is_directory(path_)) {
    throw Error("run_dir: cannot create directory '" + path_ + "': " +
                ec.message());
  }
  // Sweep stale temp files from interrupted atomic writes: a crash between
  // the temp write and the rename leaves a *.tmp behind. Committed
  // generations never carry the suffix, so removal is always safe here.
  int swept = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(path_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    constexpr const char* kTmpSuffix = ".tmp";
    if (name.size() > 4 && name.compare(name.size() - 4, 4, kTmpSuffix) == 0) {
      std::error_code remove_ec;
      if (fs::remove(entry.path(), remove_ec)) ++swept;
    }
  }
  if (swept > 0) {
    SDCMD_WARN("run_dir: swept " << swept << " stale .tmp file(s) from '"
                                 << path_ << "'");
  }
}

std::string RunDir::file_path(const std::string& basename) const {
  return (fs::path(path_) / basename).string();
}

std::string RunDir::checkpoint_name(long step) {
  std::ostringstream os;
  os << kCkptPrefix << std::setw(10) << std::setfill('0') << step
     << kCkptSuffix;
  return os.str();
}

void RunDir::commit(const System& system, RunState state) {
  // 1. The checkpoint itself (atomic; previous generation untouched on
  //    failure).
  const std::string name = checkpoint_name(state.step);
  const std::string full = file_path(name);
  save_checkpoint_file(full, system, state.step);

  // 2. The sidecar pointing at it.
  state.checkpoint_file = name;
  write_run_state(state);

  // 3. The MANIFEST index: current ring (from the last good MANIFEST, or a
  //    scan when it is missing/torn) with the new generation in front.
  std::vector<RingEntry> ring;
  try {
    ring = read_manifest();
  } catch (const ParseError&) {
    ring = scan_ring();
  }
  ring.erase(std::remove_if(ring.begin(), ring.end(),
                            [&](const RingEntry& e) {
                              return e.step == state.step ||
                                     !fs::exists(file_path(e.file));
                            }),
             ring.end());
  RingEntry entry;
  entry.step = state.step;
  entry.file = name;
  entry.checksum = fnv1a64(read_file(full));
  ring.insert(ring.begin(), entry);
  std::sort(ring.begin(), ring.end(),
            [](const RingEntry& a, const RingEntry& b) {
              return a.step > b.step;
            });
  prune(ring);
  write_manifest(ring);
}

void RunDir::write_run_state(const RunState& state) {
  write_atomic(file_path(kRunStateName), to_json(state) + "\n");
}

void RunDir::write_manifest(const std::vector<RingEntry>& ring) {
  std::ostringstream body;
  body << kManifestMagic << ' ' << kManifestVersion << '\n';
  for (const RingEntry& e : ring) {
    body << "entry " << e.step << ' ' << e.file << ' ' << std::hex
         << std::setw(16) << std::setfill('0') << e.checksum << std::dec
         << std::setfill(' ') << '\n';
  }
  std::string text = body.str();
  text += kFooterTag;
  {
    std::ostringstream footer;
    footer << std::hex << std::setw(16) << std::setfill('0')
           << fnv1a64(body.str());
    text += footer.str();
  }
  text += '\n';

  // Fault injection: a torn MANIFEST write — half the bytes land at the
  // final path with no rename barrier, as a non-atomic writer would leave
  // after a crash. The next read_manifest() must reject it and resume must
  // fall back to the directory scan.
  if (const auto fault =
          FaultInjector::instance().should_fire(faults::kManifestTornWrite)) {
    const double kept =
        fault->magnitude > 0.0 && fault->magnitude < 1.0 ? fault->magnitude
                                                         : 0.5;
    text.resize(static_cast<std::size_t>(
        static_cast<double>(text.size()) * kept));
    std::ofstream out(file_path(kManifestName),
                      std::ios::binary | std::ios::trunc);
    out << text;
    return;
  }
  write_atomic(file_path(kManifestName), text);
}

void RunDir::prune(std::vector<RingEntry>& ring) {
  while (static_cast<int>(ring.size()) > keep_) {
    const RingEntry victim = ring.back();
    ring.pop_back();
    std::error_code ec;
    fs::remove(file_path(victim.file), ec);
    if (ec) {
      SDCMD_WARN("run_dir: cannot prune '" << victim.file
                                           << "': " << ec.message());
    }
  }
}

std::vector<RingEntry> RunDir::read_manifest() const {
  const std::string path = file_path(kManifestName);
  if (!fs::exists(path)) return {};
  const std::string text = read_file(path);

  const std::size_t footer = text.rfind(kFooterTag);
  if (footer == std::string::npos ||
      (footer != 0 && text[footer - 1] != '\n')) {
    throw ParseError("manifest: missing checksum footer in '" + path +
                     "' (file ends at byte " + std::to_string(text.size()) +
                     "; torn write?)");
  }
  const std::string body = text.substr(0, footer);
  std::uint64_t declared = 0;
  {
    std::istringstream f(text.substr(footer + std::string(kFooterTag).size()));
    if (!(f >> std::hex >> declared)) {
      throw ParseError("manifest: malformed checksum footer in '" + path +
                       "' at byte " + std::to_string(footer));
    }
  }
  if (fnv1a64(body) != declared) {
    throw ChecksumError("manifest: checksum mismatch in '" + path +
                        "'; index is corrupt");
  }

  std::istringstream in(body);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kManifestMagic ||
      version != kManifestVersion) {
    throw ParseError("manifest: bad header in '" + path + "'");
  }
  std::vector<RingEntry> ring;
  std::string key;
  while (in >> key) {
    if (key != "entry") {
      throw ParseError("manifest: unexpected token '" + key + "' in '" +
                       path + "'");
    }
    RingEntry e;
    if (!(in >> e.step >> e.file >> std::hex >> e.checksum >> std::dec)) {
      throw ParseError("manifest: truncated entry in '" + path + "'");
    }
    ring.push_back(std::move(e));
  }
  std::sort(ring.begin(), ring.end(),
            [](const RingEntry& a, const RingEntry& b) {
              return a.step > b.step;
            });
  return ring;
}

std::vector<RingEntry> RunDir::scan_ring() const {
  std::vector<RingEntry> ring;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(path_, ec)) {
    if (!de.is_regular_file()) continue;
    const std::string name = de.path().filename().string();
    if (name.rfind(kCkptPrefix, 0) != 0 || name.size() <= 4 ||
        name.substr(name.size() - 4) != kCkptSuffix) {
      continue;
    }
    RingEntry e;
    e.file = name;
    const std::string digits =
        name.substr(std::string(kCkptPrefix).size(),
                    name.size() - std::string(kCkptPrefix).size() - 4);
    try {
      e.step = std::stol(digits);
    } catch (const std::exception&) {
      continue;  // not one of ours
    }
    try {
      e.checksum = fnv1a64(read_file(de.path().string()));
    } catch (const Error&) {
      continue;  // vanished mid-scan
    }
    ring.push_back(std::move(e));
  }
  std::sort(ring.begin(), ring.end(),
            [](const RingEntry& a, const RingEntry& b) {
              return a.step > b.step;
            });
  return ring;
}

std::optional<ResumePoint> RunDir::try_resume() const {
  int discarded = 0;
  bool manifest_fallback = false;
  std::vector<RingEntry> ring;
  try {
    ring = read_manifest();
  } catch (const ParseError& e) {
    SDCMD_WARN("run_dir: " << e.what() << "; falling back to directory scan");
    manifest_fallback = true;
  }
  const bool from_manifest = !ring.empty();
  if (ring.empty()) {
    const std::vector<RingEntry> scanned = scan_ring();
    if (!scanned.empty() && !manifest_fallback) {
      // Checkpoints exist but no MANIFEST lists them (crash between the
      // checkpoint rename and the first manifest write).
      manifest_fallback = fs::exists(file_path(kManifestName));
    }
    ring = scanned;
  }

  const auto resume_from =
      [&](const std::vector<RingEntry>& candidates)
      -> std::optional<ResumePoint> {
    for (const RingEntry& entry : candidates) {
      const std::string full = file_path(entry.file);
      std::optional<Checkpoint> loaded;
      try {
        loaded.emplace(load_checkpoint_file(full));
      } catch (const Error& e) {
        // ParseError/ChecksumError = corrupt bytes; plain Error = the file
        // is gone or unreadable (e.g. a verified MANIFEST naming a
        // checkpoint deleted out from under it). Both only cost this one
        // candidate.
        SDCMD_WARN("run_dir: discarding resume candidate: " << e.what());
        ++discarded;
        continue;
      }
      if (loaded->step != entry.step) {
        SDCMD_WARN("run_dir: discarding '" << entry.file << "': contains step "
                                           << loaded->step << ", ring says "
                                           << entry.step);
        ++discarded;
        continue;
      }
      ResumePoint point{std::move(*loaded), RunState{}, false, discarded,
                        manifest_fallback};
      // Candidate loaded; attach the sidecar when it verifies and matches.
      const std::string state_path = file_path(kRunStateName);
      if (fs::exists(state_path)) {
        try {
          point.state = parse_run_state(read_file(state_path));
          point.state_valid = point.state.step == point.checkpoint.step;
          if (!point.state_valid) {
            SDCMD_WARN("run_dir: run_state.json is for step "
                       << point.state.step << ", resuming checkpoint is step "
                       << point.checkpoint.step
                       << "; ignoring the stale sidecar");
          }
        } catch (const Error& e) {
          // Zero-byte, corrupt, or unreadable sidecar: degrade, never block.
          SDCMD_WARN("run_dir: ignoring unusable run_state.json: "
                     << e.what());
        }
      }
      return point;
    }
    return std::nullopt;
  };

  std::optional<ResumePoint> point = resume_from(ring);
  if (!point && from_manifest) {
    // A MANIFEST that verified its checksum can still name only files that
    // were since deleted (operator cleanup, a rogue retention sweep). The
    // directory is the ground truth: scan it before giving up.
    SDCMD_WARN(
        "run_dir: no MANIFEST candidate was loadable; falling back to "
        "directory scan");
    manifest_fallback = true;
    point = resume_from(scan_ring());
  }
  return point;
}

std::optional<ResumePoint> RunDir::try_resume_provable() const {
  std::optional<ResumePoint> point = try_resume();
  if (!point || point->state_valid) return point;
  RunState state;
  try {
    state = parse_run_state(read_file(file_path(kRunStateName)));
  } catch (const Error&) {
    return point;  // no usable sidecar at all: the degraded resume stands
  }
  if (state.step == point->checkpoint.step) return point;
  // The sidecar names a different generation than the resume chose. Older:
  // the crash landed between the checkpoint rename and the sidecar rename.
  // Newer: it landed between the sidecar rename and the MANIFEST rename,
  // so the generation the sidecar proves exists on disk but the index
  // never learned about it. Either way the directory scan finds it; trade
  // the unprovable choice for the provable generation when it loads.
  for (const RingEntry& entry : scan_ring()) {
    if (entry.step != state.step) continue;
    try {
      Checkpoint proven = load_checkpoint_file(file_path(entry.file));
      if (proven.step != state.step) break;
      SDCMD_WARN("run_dir: resumed checkpoint (step "
                 << point->checkpoint.step
                 << ") has no matching sidecar; resuming provable step "
                 << state.step << " instead");
      point->checkpoint = std::move(proven);
      point->state = state;
      point->state_valid = true;
      return point;
    } catch (const Error&) {
      break;  // provable candidate is itself unreadable: degraded resume
    }
  }
  return point;
}

}  // namespace sdcmd::run
