// RunDir: the durable on-disk lifecycle of one supervised run.
//
// Layout of a run directory:
//
//   <run_dir>/
//     ckpt_0000001200.chk   checkpoint ring, format v2 (io/checkpoint.hpp),
//     ckpt_0000001400.chk   keep-last-K rotation, zero-padded step in the
//     ckpt_0000001600.chk   name so lexicographic order == step order
//     run_state.json        sdcmd.run_state.v1 sidecar (run/run_state.hpp)
//     MANIFEST              ring index, temp-then-rename, checksum footer
//
// MANIFEST format (text, one entry per ring file, newest first):
//
//   sdcmd-manifest 1
//   entry <step> <filename> <fnv1a64 of the file's bytes>
//   ...
//   checksum fnv1a64 <hex>          # covers every preceding byte
//
// Every artifact is written temp-then-rename, so no crash at any point can
// leave the directory unreadable: the MANIFEST is an *index*, not the
// source of truth. Resume trusts it only after its footer verifies; on any
// corruption (e.g. the run.manifest_torn_write fault) it falls back to a
// directory scan and per-file checksum validation, newest first.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/checkpoint.hpp"
#include "run/run_state.hpp"

namespace sdcmd::run {

/// One ring entry as listed in the MANIFEST (or recovered from a scan).
struct RingEntry {
  long step = 0;
  std::string file;  ///< basename within the run directory
  std::uint64_t checksum = 0;  ///< fnv1a64 of the whole file's bytes
};

/// What an auto-resume scan found.
struct ResumePoint {
  Checkpoint checkpoint;
  /// Sidecar contents; meaningful only when state_valid. A missing or
  /// corrupt sidecar degrades the resume (fresh governor, default DOF
  /// bookkeeping) but never blocks it — the checkpoint alone restores the
  /// physics.
  RunState state;
  bool state_valid = false;
  /// Ring candidates discarded as corrupt/truncated before this one loaded.
  int discarded = 0;
  /// True when the MANIFEST failed verification and the scan fell back to
  /// the directory listing.
  bool manifest_fallback = false;
};

class RunDir {
 public:
  /// Opens (creating if needed) the run directory. `keep` is the retention
  /// ring size; throws PreconditionError when keep < 1 and Error when the
  /// directory cannot be created.
  RunDir(std::string path, int keep);

  const std::string& path() const { return path_; }
  int keep() const { return keep_; }

  /// Persist one retention-ring generation: checkpoint file, run_state
  /// sidecar, MANIFEST, then prune the ring beyond keep(). Throws Error on
  /// write failure (the caller retries; a failed write never corrupts the
  /// previous generation). `state.checkpoint_file` is filled in.
  void commit(const System& system, RunState state);

  /// The ring according to the MANIFEST, newest first. Empty when there is
  /// no MANIFEST. Throws ParseError/ChecksumError when the MANIFEST exists
  /// but fails verification (torn write) — resume catches this and falls
  /// back to scan_ring().
  std::vector<RingEntry> read_manifest() const;

  /// The ring recovered from the directory listing (ckpt_*.chk), newest
  /// first, with checksums recomputed from the files themselves.
  std::vector<RingEntry> scan_ring() const;

  /// Auto-resume: newest-first over the ring (MANIFEST when it verifies,
  /// directory scan otherwise), discarding corrupt/truncated candidates
  /// via the checkpoint loader's checksum fast-fail, returning the first
  /// checkpoint that loads. nullopt when no valid candidate exists.
  std::optional<ResumePoint> try_resume() const;

  /// Like try_resume(), but when the newest generation is unprovable (a
  /// crash between the checkpoint rename and the sidecar rename left
  /// run_state.json describing an older step), prefer the older ring
  /// generation the sidecar DOES describe: losing at most one checkpoint
  /// cadence of progress buys a resume whose energy continuity can be
  /// proven. Falls back to the plain (degraded) resume when the sidecar's
  /// generation has left the ring. The session server resumes through
  /// this so every fleet restart carries a continuity proof.
  std::optional<ResumePoint> try_resume_provable() const;

  /// Absolute path of a ring basename.
  std::string file_path(const std::string& basename) const;

  /// Canonical ring basename for a step ("ckpt_0000001200.chk").
  static std::string checkpoint_name(long step);

 private:
  void write_run_state(const RunState& state);
  void write_manifest(const std::vector<RingEntry>& ring);
  void prune(std::vector<RingEntry>& ring);

  std::string path_;
  int keep_;
};

}  // namespace sdcmd::run
