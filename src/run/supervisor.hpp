// RunSupervisor: the durable-run lifecycle around a Simulation.
//
// The Simulation driver owns one process-lifetime of physics; the
// supervisor owns the part that must survive the process: a RunDir
// retention ring of crash-safe checkpoints plus the run_state.v1 sidecar,
// written on a step cadence and — crucially — written *defensively*:
//
//  * transient write failures (ENOSPC, short writes, the injected
//    run.disk_full fault) are retried with bounded exponential backoff
//    (run.checkpoint_retries); when the budget is spent the run KEEPS
//    GOING with a widened checkpoint interval (run.checkpoint_failures)
//    instead of dying — losing checkpoint freshness is strictly better
//    than losing the run;
//  * SIGTERM/SIGINT (sigaction, async-signal-safe flag) trigger
//    checkpoint-then-clean-exit at the next step boundary, reported as
//    RunOutcome::SignalShutdown so drivers can exit with a distinct code;
//  * a wall-clock watchdog compares each step against a monotonic deadline
//    scaled from a rolling step-time EWMA; a step that blows through it is
//    flagged (run.watchdog_trips) and the current state force-checkpointed
//    so a subsequent hard hang loses as little as possible;
//  * an optional max-wall budget checkpoints and returns
//    RunOutcome::WallClockExpired in time for a scheduler's grace period.
//
// Resume is RunDir::try_resume() + Simulation::set_current_step() +
// set_governor(config, saved_state); the sdcmd-run driver
// (examples/sdcmd_run.cpp) shows the full wiring and
// scripts/chaos_resume.py kill-tests it. See docs/robustness.md.
#pragma once

#include <signal.h>  // sigaction (POSIX; <csignal> alone does not declare it)

#include <csignal>
#include <cstdint>

#include "md/simulation.hpp"
#include "run/run_dir.hpp"

namespace sdcmd::run {

struct SupervisorConfig {
  /// Write a ring generation every N completed steps (also once at start,
  /// so a kill in the first interval still leaves a resume point).
  long checkpoint_every = 200;
  /// Transient-failure retry budget per checkpoint attempt.
  int max_write_retries = 3;
  /// First retry sleeps this long; each further retry multiplies by
  /// `retry_backoff_factor` (exponential, bounded by the retry budget).
  double retry_backoff_initial_s = 0.05;
  double retry_backoff_factor = 2.0;
  /// When a checkpoint still fails after all retries, multiply the
  /// checkpoint interval by this factor (capped at `max_checkpoint_every`)
  /// instead of killing the run; a later success restores the configured
  /// interval.
  double interval_widen_factor = 2.0;
  long max_checkpoint_every = 10000;
  /// Stop (with a final checkpoint) once this much wall time has elapsed
  /// since run() started; 0 = unlimited.
  double max_wall_seconds = 0.0;
  /// Watchdog: a step slower than ewma * watchdog_factor (never less than
  /// watchdog_min_seconds) trips the hung-step flag and forces a
  /// checkpoint. 0 disables.
  double watchdog_factor = 20.0;
  double watchdog_min_seconds = 1.0;
  /// EWMA smoothing for the rolling step time (0 < alpha <= 1).
  double ewma_alpha = 0.1;
  /// Install SIGTERM/SIGINT handlers for the duration of run() (restored
  /// on exit). Disable when the embedding application owns signal policy;
  /// request_shutdown() remains available either way.
  bool install_signal_handlers = true;
  /// Fingerprint stored in the run_state sidecar (see
  /// common/hash.hpp::fnv1a64_mix); 0 = not recorded.
  std::uint64_t config_hash = 0;
  /// Observability sinks (borrowed; may be null). Metrics land under
  /// "run." — see docs/observability.md.
  obs::MetricsRegistry* registry = nullptr;
  obs::TraceWriter* trace = nullptr;
  /// When set (with a registry), run_to() flushes one cumulative
  /// `kind=summary` record into this stream before every return, so a
  /// durable run always ends with a stable aggregate to diff.
  obs::StepMetricsWriter* step_writer = nullptr;
};

enum class RunOutcome {
  /// Reached the target step.
  Completed,
  /// SIGTERM/SIGINT (or request_shutdown()): checkpointed and stopped.
  SignalShutdown,
  /// max_wall_seconds elapsed: checkpointed and stopped.
  WallClockExpired,
};

std::string to_string(RunOutcome outcome);

/// Suggested process exit codes for drivers (sdcmd-run uses these, the
/// chaos harness asserts them).
namespace exit_code {
inline constexpr int kCompleted = 0;
inline constexpr int kError = 1;
inline constexpr int kSignalShutdown = 3;
inline constexpr int kWallClockExpired = 4;
}  // namespace exit_code

class RunSupervisor {
 public:
  /// Both references are borrowed and must outlive the supervisor.
  RunSupervisor(Simulation& sim, RunDir& dir, SupervisorConfig config);

  /// Drive the simulation to the absolute step `target_step`, writing ring
  /// generations on the checkpoint cadence. Returns why the loop stopped.
  /// `callback` (optional) is forwarded to Simulation::run per step.
  RunOutcome run_to(long target_step,
                    const Simulation::Callback& callback = nullptr);

  /// Quantum-mode driver for embedding servers: advance exactly `steps`
  /// steps with the cadence checkpoint policy but none of run_to()'s
  /// framing — no signal guard, no entry/exit checkpoints, no shutdown
  /// flag or wall-budget checks (the embedder owns those policies and
  /// calls checkpoint_now() at its own lifecycle points). The checkpoint
  /// cadence persists across calls, so many small quanta checkpoint
  /// exactly as often as one long run_to() would.
  void advance(long steps, const Simulation::Callback& callback = nullptr);

  /// Asynchronously request a checkpoint-then-stop at the next step
  /// boundary (what the signal handler does; also callable from tests and
  /// embedding code).
  static void request_shutdown() { shutdown_requested_ = 1; }
  static bool shutdown_requested() { return shutdown_requested_ != 0; }
  static void clear_shutdown_request() { shutdown_requested_ = 0; }

  /// Write a ring generation for the current state, applying the
  /// retry/backoff policy. Returns true on success (including
  /// success-after-retry); false when the attempt was abandoned.
  bool checkpoint_now();

  /// Effective checkpoint interval (widened after persistent failures).
  long checkpoint_interval() const { return interval_; }

  long checkpoints_written() const { return checkpoints_; }
  long checkpoint_retries() const { return retries_; }
  long checkpoint_failures() const { return failures_; }
  long watchdog_trips() const { return watchdog_trips_; }
  /// Rolling step-time EWMA in seconds (0 until the first step).
  double step_ewma_seconds() const { return ewma_; }

 private:
  RunState capture_state() const;
  void mark(const char* name);
  void note_step_time(double seconds);
  void write_summary();

  /// Async-signal-safe shutdown flag shared by every supervisor in the
  /// process (signals are process-wide; the flag is checked per step).
  static volatile std::sig_atomic_t shutdown_requested_;

  Simulation& sim_;
  RunDir& dir_;
  SupervisorConfig config_;
  long interval_ = 0;
  long next_checkpoint_step_ = 0;
  long checkpoints_ = 0;
  long retries_ = 0;
  long failures_ = 0;
  long watchdog_trips_ = 0;
  double ewma_ = 0.0;
  bool ewma_seeded_ = false;

  struct Handles {
    std::size_t checkpoints = 0;
    std::size_t retries = 0;
    std::size_t failures = 0;
    std::size_t watchdog_trips = 0;
    std::size_t signal_shutdowns = 0;
    std::size_t interval = 0;
    std::size_t checkpoint_seconds = 0;
    std::size_t step_ewma = 0;
  } handles_;
};

/// RAII sigaction guard: installs the supervisor's SIGTERM/SIGINT handler
/// on construction, restores the previous handlers on destruction.
class SignalGuard {
 public:
  SignalGuard();
  ~SignalGuard();
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

 private:
  struct sigaction old_term_;
  struct sigaction old_int_;
  bool installed_ = false;
};

}  // namespace sdcmd::run
