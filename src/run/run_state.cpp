#include "run/run_state.hpp"

#include <cctype>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/json.hpp"

namespace sdcmd::run {

namespace {

constexpr const char* kSchema = "sdcmd.run_state.v1";

/// Minimal parser for the exact shape we write: one flat JSON object whose
/// values are strings, numbers or booleans. Not a general JSON parser —
/// the writer is obs::JsonWriter in this file, and the chaos tooling's
/// python json module keeps us honest about emitting real JSON.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& text) : text_(text) {}

  /// Parse `{"key": scalar, ...}` into the callback.
  template <typename Fn>
  void parse_object(Fn&& on_member) {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      on_member(key);
      skip_ws();
      const char c = next();
      if (c == '}') return;
      if (c != ',') {
        fail("expected ',' or '}' after member");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: fail("unsupported escape in run_state string");
        }
      } else {
        out += c;
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    return std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
  }

  bool parse_bool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected true/false");
    return false;  // unreachable
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("run_state: " + why + " (byte " + std::to_string(pos_) +
                     " of " + std::to_string(text_.size()) + ")");
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_++];
  }
  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

}  // namespace

std::string to_json(const RunState& state) {
  std::string out;
  obs::JsonWriter json(out);
  json.begin_object();
  json.member("schema", kSchema);
  json.member("step", static_cast<std::int64_t>(state.step));
  json.member("dt", state.dt);
  json.member("total_energy", state.total_energy);
  json.member("momentum_zeroed", state.momentum_zeroed);
  json.member("config_hash", hex64(state.config_hash));
  json.member("checkpoint_file", state.checkpoint_file);
  json.member("governor", state.has_governor);
  json.member("governor_strategy",
              StrategyGovernor::strategy_code(state.governor.active));
  json.member("governor_demotions",
              static_cast<std::int64_t>(state.governor.demotions));
  json.member("governor_promotions",
              static_cast<std::int64_t>(state.governor.promotions));
  json.member("governor_race_suspects",
              static_cast<std::int64_t>(state.governor.race_suspects));
  json.member("governor_feasible_streak", state.governor.feasible_streak);
  json.member("governor_backoff", state.governor.backoff);
  json.end_object();
  return out;
}

RunState parse_run_state(const std::string& json) {
  RunState state;
  std::string schema;
  int strategy_code = 0;
  bool saw_step = false, saw_dt = false;
  FlatJsonParser parser(json);
  parser.parse_object([&](const std::string& key) {
    if (key == "schema") {
      schema = parser.parse_string();
    } else if (key == "step") {
      state.step = static_cast<long>(parser.parse_number());
      saw_step = true;
    } else if (key == "dt") {
      state.dt = parser.parse_number();
      saw_dt = true;
    } else if (key == "total_energy") {
      state.total_energy = parser.parse_number();
    } else if (key == "momentum_zeroed") {
      state.momentum_zeroed = parser.parse_bool();
    } else if (key == "config_hash") {
      state.config_hash =
          std::strtoull(parser.parse_string().c_str(), nullptr, 16);
    } else if (key == "checkpoint_file") {
      state.checkpoint_file = parser.parse_string();
    } else if (key == "governor") {
      state.has_governor = parser.parse_bool();
    } else if (key == "governor_strategy") {
      strategy_code = static_cast<int>(parser.parse_number());
    } else if (key == "governor_demotions") {
      state.governor.demotions = static_cast<long>(parser.parse_number());
    } else if (key == "governor_promotions") {
      state.governor.promotions = static_cast<long>(parser.parse_number());
    } else if (key == "governor_race_suspects") {
      state.governor.race_suspects = static_cast<long>(parser.parse_number());
    } else if (key == "governor_feasible_streak") {
      state.governor.feasible_streak =
          static_cast<int>(parser.parse_number());
    } else if (key == "governor_backoff") {
      state.governor.backoff = static_cast<int>(parser.parse_number());
    } else {
      // Unknown members are skipped for forward compatibility (a v1.1
      // writer may add fields this reader does not know about).
      const char c = parser.peek();
      if (c == '"') {
        parser.parse_string();
      } else if (c == 't' || c == 'f') {
        parser.parse_bool();
      } else {
        parser.parse_number();
      }
    }
  });
  if (schema != kSchema) {
    throw ParseError("run_state: schema mismatch: expected '" +
                     std::string(kSchema) + "', got '" + schema + "'");
  }
  if (!saw_step || !saw_dt) {
    throw ParseError("run_state: missing required member (step, dt)");
  }
  if (state.dt <= 0.0) {
    throw ParseError("run_state: dt must be positive");
  }
  if (state.step < 0) {
    throw ParseError("run_state: step must be non-negative");
  }
  // Decode the governor rung defensively: a sidecar written by a NEWER
  // ladder may carry a code this build has never heard of (codes are
  // append-only, so misdecoding is impossible — but so is guessing).
  // Dropping only the governor block keeps the rest of the sidecar (step,
  // dt, momentum flag, checkpoint pointer) usable: the resumed run falls
  // back to fresh governor setup instead of discarding the whole resume.
  const std::optional<ReductionStrategy> active =
      StrategyGovernor::try_strategy_from_code(strategy_code);
  if (active && StrategyGovernor::on_ladder(*active)) {
    state.governor.active = *active;
  } else if (state.has_governor) {
    SDCMD_WARN("run_state: unknown or off-ladder governor strategy code "
               << strategy_code
               << " (written by a newer build?); ignoring the saved "
                  "governor state");
    state.has_governor = false;
    state.governor = GovernorState{};
  }
  return state;
}

}  // namespace sdcmd::run
