// run_state.v1: the JSON sidecar a run directory keeps next to its
// checkpoint ring.
//
// A checkpoint file restores the *physics* (box, atoms, step); the sidecar
// restores the *run*: time step (rollbacks may have halved it), the
// governor's demoted rung and hysteresis counters, the DOF bookkeeping,
// the total energy at save time (so a resume can prove continuity), and a
// fingerprint of the RNG-relevant configuration so a resume refuses to
// continue a run whose physics would silently differ.
//
// Schema "sdcmd.run_state.v1" — a flat JSON object of scalars:
//   {
//     "schema": "sdcmd.run_state.v1",
//     "step": 1200,
//     "dt": 0.0010180505710774743,
//     "total_energy": -547.33129882812502,
//     "momentum_zeroed": true,
//     "config_hash": "9e107d9d372bb682",
//     "checkpoint_file": "ckpt_0000001200.chk",
//     "governor": true,              // false => the 5 fields below are 0
//     "governor_strategy": 3,        // StrategyGovernor::strategy_code
//     "governor_demotions": 1,
//     "governor_promotions": 0,
//     "governor_race_suspects": 0,
//     "governor_feasible_streak": 7,
//     "governor_backoff": 2
//   }
// Written temp-then-rename like every other run-directory artifact. The
// parser accepts exactly this shape (flat object, scalar values) and
// throws ParseError with a byte offset on anything else.
#pragma once

#include <cstdint>
#include <string>

#include "core/strategy_governor.hpp"

namespace sdcmd::run {

struct RunState {
  long step = 0;
  double dt = 0.0;
  double total_energy = 0.0;
  bool momentum_zeroed = false;
  /// fnv1a64 fingerprint of the RNG-relevant run configuration (lattice,
  /// seed, dt, thermostat...), hex-encoded in the JSON. 0 = not recorded.
  std::uint64_t config_hash = 0;
  /// Ring file the sidecar describes (basename, no directory).
  std::string checkpoint_file;
  bool has_governor = false;
  GovernorState governor;
};

/// Serialize to a single-line JSON document (no trailing newline).
std::string to_json(const RunState& state);

/// Parse a sdcmd.run_state.v1 document. Throws ParseError (with byte
/// offsets) on malformed input or a schema mismatch.
RunState parse_run_state(const std::string& json);

}  // namespace sdcmd::run
