#include "run/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"

namespace sdcmd::run {

namespace {
/// Trace track for supervisor events (the Simulation driver uses 1000).
constexpr int kSupervisorTid = 1001;

extern "C" void sdcmd_run_signal_handler(int) {
  // Async-signal-safe: set the flag, nothing else. The step loop notices
  // at the next boundary and performs checkpoint-then-clean-exit there.
  RunSupervisor::request_shutdown();
}
}  // namespace

volatile std::sig_atomic_t RunSupervisor::shutdown_requested_ = 0;

std::string to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::Completed: return "completed";
    case RunOutcome::SignalShutdown: return "signal-shutdown";
    case RunOutcome::WallClockExpired: return "wall-clock-expired";
  }
  return "unknown";
}

SignalGuard::SignalGuard() {
  struct sigaction action {};
  action.sa_handler = sdcmd_run_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking IO promptly
  installed_ = sigaction(SIGTERM, &action, &old_term_) == 0 &&
               sigaction(SIGINT, &action, &old_int_) == 0;
}

SignalGuard::~SignalGuard() {
  if (installed_) {
    sigaction(SIGTERM, &old_term_, nullptr);
    sigaction(SIGINT, &old_int_, nullptr);
  }
}

RunSupervisor::RunSupervisor(Simulation& sim, RunDir& dir,
                             SupervisorConfig config)
    : sim_(sim), dir_(dir), config_(config) {
  SDCMD_REQUIRE(config_.checkpoint_every >= 1,
                "checkpoint interval must be >= 1");
  SDCMD_REQUIRE(config_.max_write_retries >= 0,
                "retry budget must be non-negative");
  SDCMD_REQUIRE(config_.retry_backoff_initial_s >= 0.0 &&
                    config_.retry_backoff_factor >= 1.0,
                "retry backoff must be non-negative and non-shrinking");
  SDCMD_REQUIRE(config_.interval_widen_factor >= 1.0,
                "interval widening must not shrink the interval");
  SDCMD_REQUIRE(config_.max_checkpoint_every >= config_.checkpoint_every,
                "interval cap must be >= the configured interval");
  SDCMD_REQUIRE(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                "EWMA alpha must be in (0, 1]");
  SDCMD_REQUIRE(config_.watchdog_factor >= 0.0,
                "watchdog factor must be non-negative");
  interval_ = config_.checkpoint_every;
  if (config_.registry != nullptr) {
    obs::MetricsRegistry& r = *config_.registry;
    handles_.checkpoints = r.counter("run.checkpoints");
    handles_.retries = r.counter("run.checkpoint_retries");
    handles_.failures = r.counter("run.checkpoint_failures");
    handles_.watchdog_trips = r.counter("run.watchdog_trips");
    handles_.signal_shutdowns = r.counter("run.signal_shutdowns");
    handles_.interval = r.gauge("run.checkpoint_interval");
    handles_.checkpoint_seconds = r.stats("run.checkpoint_seconds");
    handles_.step_ewma = r.gauge("run.step_ewma_seconds");
    r.set(handles_.interval, static_cast<double>(interval_));
  }
  if (config_.trace != nullptr) {
    config_.trace->set_thread_name(kSupervisorTid, "supervisor");
  }
}

void RunSupervisor::write_summary() {
  if (config_.step_writer != nullptr && config_.registry != nullptr) {
    config_.step_writer->write_summary(sim_.current_step(),
                                       *config_.registry);
  }
}

void RunSupervisor::mark(const char* name) {
  if (config_.trace != nullptr) {
    config_.trace->instant_event(name, "run", wall_time(), kSupervisorTid);
  }
}

RunState RunSupervisor::capture_state() const {
  RunState state;
  state.step = sim_.current_step();
  state.dt = sim_.config().dt;
  state.total_energy = sim_.sample().total_energy();
  state.momentum_zeroed = sim_.com_momentum_zeroed();
  state.config_hash = config_.config_hash;
  if (const StrategyGovernor* gov = sim_.governor()) {
    state.has_governor = true;
    state.governor = gov->state();
  }
  return state;
}

bool RunSupervisor::checkpoint_now() {
  // sample() reads the last force result; make sure it describes the
  // current positions (cheap no-op when forces are already current).
  sim_.compute_forces();
  const double t0 = wall_time();
  double backoff = config_.retry_backoff_initial_s;
  for (int attempt = 0;; ++attempt) {
    try {
      dir_.commit(sim_.system(), capture_state());
      ++checkpoints_;
      if (config_.registry != nullptr) {
        config_.registry->add(handles_.checkpoints);
        config_.registry->observe(handles_.checkpoint_seconds,
                                  wall_time() - t0);
      }
      mark("run.checkpoint");
      if (interval_ != config_.checkpoint_every) {
        // The disk recovered: restore the configured cadence.
        interval_ = config_.checkpoint_every;
        if (config_.registry != nullptr) {
          config_.registry->set(handles_.interval,
                                static_cast<double>(interval_));
        }
        SDCMD_WARN("run: checkpoint writes recovered; interval restored to "
                   << interval_);
      }
      return true;
    } catch (const Error& e) {
      if (attempt >= config_.max_write_retries) {
        ++failures_;
        if (config_.registry != nullptr) {
          config_.registry->add(handles_.failures);
        }
        mark("run.checkpoint_failure");
        // Keep the run alive: widen the cadence so a persistently sick
        // disk costs checkpoint freshness, not the simulation.
        interval_ = std::min(
            config_.max_checkpoint_every,
            static_cast<long>(static_cast<double>(interval_) *
                              config_.interval_widen_factor));
        if (config_.registry != nullptr) {
          config_.registry->set(handles_.interval,
                                static_cast<double>(interval_));
        }
        SDCMD_ERROR("run: checkpoint abandoned after "
                    << (attempt + 1) << " attempt(s): " << e.what()
                    << "; widening interval to " << interval_);
        return false;
      }
      ++retries_;
      if (config_.registry != nullptr) {
        config_.registry->add(handles_.retries);
      }
      mark("run.checkpoint_retry");
      SDCMD_WARN("run: checkpoint attempt " << (attempt + 1) << " failed ("
                                            << e.what() << "); retrying in "
                                            << backoff << " s");
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      backoff *= config_.retry_backoff_factor;
    }
  }
}

void RunSupervisor::note_step_time(double seconds) {
  if (!ewma_seeded_) {
    ewma_ = seconds;
    ewma_seeded_ = true;
  } else {
    // Watchdog check against the deadline derived from the *previous*
    // EWMA, so one pathological step cannot hide itself by inflating the
    // average it is judged against.
    const double deadline = std::max(config_.watchdog_min_seconds,
                                     ewma_ * config_.watchdog_factor);
    if (config_.watchdog_factor > 0.0 && seconds > deadline) {
      ++watchdog_trips_;
      if (config_.registry != nullptr) {
        config_.registry->add(handles_.watchdog_trips);
      }
      mark("run.watchdog_trip");
      SDCMD_WARN("run: step " << sim_.current_step() << " took " << seconds
                              << " s (deadline " << deadline
                              << " s); flagging hung step and "
                                 "force-checkpointing");
      checkpoint_now();
    }
    ewma_ += config_.ewma_alpha * (seconds - ewma_);
  }
  if (config_.registry != nullptr) {
    config_.registry->set(handles_.step_ewma, ewma_);
  }
}

void RunSupervisor::advance(long steps,
                            const Simulation::Callback& callback) {
  SDCMD_REQUIRE(steps >= 0, "step count must be non-negative");
  // First quantum after construction: anchor the cadence at the current
  // step (run_to() anchors after its entry checkpoint instead).
  if (next_checkpoint_step_ <= sim_.current_step()) {
    next_checkpoint_step_ = sim_.current_step() + interval_;
  }
  for (long i = 0; i < steps; ++i) {
    const double t0 = wall_time();
    sim_.run(1, callback, 1);
    note_step_time(wall_time() - t0);
    if (sim_.current_step() >= next_checkpoint_step_) {
      checkpoint_now();
      next_checkpoint_step_ = sim_.current_step() + interval_;
    }
  }
}

RunOutcome RunSupervisor::run_to(long target_step,
                                 const Simulation::Callback& callback) {
  SDCMD_REQUIRE(target_step >= sim_.current_step(),
                "target step is behind the current step");
  std::optional<SignalGuard> guard;
  if (config_.install_signal_handlers) guard.emplace();

  // Monotonic wall budget measured from here (not process start), so a
  // resume gets a fresh budget.
  const double wall_start = wall_time();

  // A resume point must exist before the first kill can happen: write the
  // initial generation unless the ring already has this exact step.
  checkpoint_now();
  next_checkpoint_step_ = sim_.current_step() + interval_;

  while (sim_.current_step() < target_step) {
    if (shutdown_requested()) {
      if (config_.registry != nullptr) {
        config_.registry->add(handles_.signal_shutdowns);
      }
      mark("run.signal_shutdown");
      SDCMD_WARN("run: shutdown requested; checkpointing at step "
                 << sim_.current_step());
      checkpoint_now();
      write_summary();
      return RunOutcome::SignalShutdown;
    }
    if (config_.max_wall_seconds > 0.0 &&
        wall_time() - wall_start >= config_.max_wall_seconds) {
      mark("run.wall_clock_expired");
      SDCMD_WARN("run: wall budget (" << config_.max_wall_seconds
                                      << " s) spent; checkpointing at step "
                                      << sim_.current_step());
      checkpoint_now();
      write_summary();
      return RunOutcome::WallClockExpired;
    }

    const double t0 = wall_time();
    sim_.run(1, callback, 1);
    note_step_time(wall_time() - t0);

    if (sim_.current_step() >= next_checkpoint_step_) {
      checkpoint_now();
      next_checkpoint_step_ = sim_.current_step() + interval_;
    }
  }
  // Final generation so the directory always ends at the target step.
  checkpoint_now();
  write_summary();
  return RunOutcome::Completed;
}

}  // namespace sdcmd::run
