#include "analysis/rdf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "neighbor/neighbor_list.hpp"

namespace sdcmd {

Rdf::Rdf(double r_max, std::size_t bins)
    : r_max_(r_max), counts_(bins, 0) {
  SDCMD_REQUIRE(r_max > 0.0, "r_max must be positive");
  SDCMD_REQUIRE(bins > 0, "need at least one bin");
}

void Rdf::accumulate(const Box& box, std::span<const Vec3> positions) {
  for (int d = 0; d < 3; ++d) {
    if (box.periodic(d)) {
      SDCMD_REQUIRE(r_max_ <= 0.5 * box.length(d),
                    "r_max exceeds half the box: minimum image is invalid");
    }
  }
  const double bin_width = r_max_ / static_cast<double>(counts_.size());

  NeighborListConfig cfg;
  cfg.cutoff = r_max_;
  cfg.skin = 0.0;
  NeighborList list(box, cfg);
  list.build(positions);

  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::uint32_t j : list.neighbors(i)) {
      const double r =
          std::sqrt(box.distance2(positions[i], positions[j]));
      auto bin = static_cast<std::size_t>(r / bin_width);
      if (bin >= counts_.size()) bin = counts_.size() - 1;
      counts_[bin] += 2;  // the half list stores each pair once
    }
  }

  ++frames_;
  atoms_last_ = positions.size();
  density_sum_ += static_cast<double>(positions.size()) / box.volume();
}

std::vector<double> Rdf::g() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (frames_ == 0 || atoms_last_ == 0) return out;

  const double bin_width = r_max_ / static_cast<double>(counts_.size());
  const double mean_density = density_sum_ / static_cast<double>(frames_);
  const auto n = static_cast<double>(atoms_last_);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double r_lo = bin_width * static_cast<double>(b);
    const double r_hi = r_lo + bin_width;
    const double shell =
        4.0 / 3.0 * M_PI * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal = mean_density * shell * n;
    out[b] = static_cast<double>(counts_[b]) /
             (ideal * static_cast<double>(frames_));
  }
  return out;
}

std::vector<double> Rdf::radii() const {
  const double bin_width = r_max_ / static_cast<double>(counts_.size());
  std::vector<double> out(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    out[b] = (static_cast<double>(b) + 0.5) * bin_width;
  }
  return out;
}

std::vector<double> Rdf::coordination_integral() const {
  // n(r) counts the mean neighbors within r: the cumulative pair count per
  // atom per frame, independent of the g(r) normalization details.
  std::vector<double> out(counts_.size(), 0.0);
  if (frames_ == 0 || atoms_last_ == 0) return out;
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cumulative += static_cast<double>(counts_[b]);
    out[b] = cumulative /
             (static_cast<double>(frames_) * static_cast<double>(atoms_last_));
  }
  return out;
}

void Rdf::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  frames_ = 0;
  density_sum_ = 0.0;
  atoms_last_ = 0;
}

}  // namespace sdcmd
