#include "analysis/cna.hpp"

#include <algorithm>
#include <cmath>

#include "neighbor/neighbor_list.hpp"

namespace sdcmd {

const char* to_string(CnaStructure s) {
  switch (s) {
    case CnaStructure::Other: return "other";
    case CnaStructure::Fcc: return "fcc";
    case CnaStructure::Hcp: return "hcp";
    case CnaStructure::Bcc: return "bcc";
    case CnaStructure::Ico: return "ico";
  }
  return "?";
}

double CnaResult::fraction(CnaStructure s) const {
  if (per_atom.empty()) return 0.0;
  return static_cast<double>(count(s)) /
         static_cast<double>(per_atom.size());
}

namespace {

/// Longest continuous chain of bonds in a tiny graph: the maximum number
/// of edges in any walk that repeats no edge. Common-neighbor sets have
/// <= 6 members for the lattices of interest, so exhaustive DFS is cheap.
int longest_chain(const std::vector<std::pair<int, int>>& edges, int nodes) {
  if (edges.empty()) return 0;
  std::vector<bool> used(edges.size(), false);
  int best = 0;

  // DFS extending a chain from `node` with `length` edges used so far.
  auto dfs = [&](auto&& self, int node, int length) -> void {
    best = std::max(best, length);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (used[e]) continue;
      int next = -1;
      if (edges[e].first == node) next = edges[e].second;
      if (edges[e].second == node) next = edges[e].first;
      if (next < 0) continue;
      used[e] = true;
      self(self, next, length + 1);
      used[e] = false;
    }
  };
  for (int start = 0; start < nodes; ++start) {
    dfs(dfs, start, 0);
  }
  return best;
}

}  // namespace

CnaResult common_neighbor_analysis(const Box& box,
                                   std::span<const Vec3> positions,
                                   double cutoff) {
  NeighborListConfig cfg;
  cfg.cutoff = cutoff;
  cfg.skin = 0.0;
  cfg.mode = NeighborMode::Full;
  cfg.sort_neighbors = true;
  NeighborList list(box, cfg);
  list.build(positions);

  CnaResult result;
  result.per_atom.assign(positions.size(), CnaStructure::Other);

#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto nbrs_i = list.neighbors(i);
    const std::size_t degree = nbrs_i.size();
    if (degree != 12 && degree != 14) continue;  // cannot match any motif

    int n421 = 0, n422 = 0, n444 = 0, n555 = 0, n666 = 0, n_other = 0;
    for (std::uint32_t j : nbrs_i) {
      // Common neighbors of i and j (both lists sorted -> set intersect).
      const auto nbrs_j = list.neighbors(j);
      std::vector<std::uint32_t> common;
      std::set_intersection(nbrs_i.begin(), nbrs_i.end(), nbrs_j.begin(),
                            nbrs_j.end(), std::back_inserter(common));

      // The largest motif of interest is bcc's (6,6,6); denser
      // environments (disordered packings) can never match and their bond
      // graphs would make the chain search explode - skip them outright.
      if (common.size() > 6) {
        ++n_other;
        continue;
      }

      // Bonds among the common neighbors.
      std::vector<std::pair<int, int>> bonds;
      for (std::size_t a = 0; a < common.size(); ++a) {
        const auto nbrs_a = list.neighbors(common[a]);
        for (std::size_t b = a + 1; b < common.size(); ++b) {
          if (std::binary_search(nbrs_a.begin(), nbrs_a.end(), common[b])) {
            bonds.emplace_back(static_cast<int>(a), static_cast<int>(b));
          }
        }
      }
      // <= 6 nodes can hold at most 15 bonds; anything above the motif
      // bond counts cannot match either, so skip the chain search.
      if (bonds.size() > 8) {
        ++n_other;
        continue;
      }
      const CnaSignature sig{static_cast<int>(common.size()),
                             static_cast<int>(bonds.size()),
                             longest_chain(bonds,
                                           static_cast<int>(common.size()))};
      if (sig == CnaSignature{4, 2, 1}) {
        ++n421;
      } else if (sig == CnaSignature{4, 2, 2}) {
        ++n422;
      } else if (sig == CnaSignature{4, 4, 4}) {
        ++n444;
      } else if (sig == CnaSignature{5, 5, 5}) {
        ++n555;
      } else if (sig == CnaSignature{6, 6, 6}) {
        ++n666;
      } else {
        ++n_other;
      }
    }

    CnaStructure structure = CnaStructure::Other;
    if (degree == 12 && n421 == 12) {
      structure = CnaStructure::Fcc;
    } else if (degree == 12 && n421 == 6 && n422 == 6) {
      structure = CnaStructure::Hcp;
    } else if (degree == 14 && n666 == 8 && n444 == 6) {
      structure = CnaStructure::Bcc;
    } else if (degree == 12 && n555 == 12) {
      structure = CnaStructure::Ico;
    }
    result.per_atom[i] = structure;
  }

  for (CnaStructure s : result.per_atom) {
    ++result.counts[static_cast<std::size_t>(s)];
  }
  return result;
}

double bcc_cna_cutoff(double a0) { return 0.5 * (1.0 + std::sqrt(2.0)) * a0; }

double fcc_cna_cutoff(double a0) {
  return 0.5 * (1.0 / std::sqrt(2.0) + 1.0) * a0;
}

}  // namespace sdcmd
