// Mean-squared displacement from unwrapped trajectories.
//
// MSD(t) = <|r_i(t) - r_i(0)|^2> distinguishes solid (bounded thermal
// cloud) from liquid (linear growth, slope 6D). Positions are unwrapped
// with the per-atom image counters the Box/System machinery maintains, so
// atoms crossing the periodic boundary do not fake kilometre jumps.
#pragma once

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"
#include "md/system.hpp"

namespace sdcmd {

class MsdTracker {
 public:
  /// Records the current configuration as t = 0.
  explicit MsdTracker(const System& system);

  /// MSD of the current configuration relative to the reference.
  /// Atoms are matched by their stable `id`, so spatial reordering of the
  /// arrays between samples is harmless.
  double sample(const System& system) const;

  /// Re-anchor t = 0 at the current configuration.
  void rebase(const System& system);

  std::size_t atom_count() const { return reference_.size(); }

 private:
  static std::vector<Vec3> unwrap(const System& system);

  std::vector<Vec3> reference_;  // indexed by atom id
};

}  // namespace sdcmd
