#include "analysis/msd.hpp"

#include "common/error.hpp"

namespace sdcmd {

std::vector<Vec3> MsdTracker::unwrap(const System& system) {
  const Atoms& atoms = system.atoms();
  const Box& box = system.box();
  std::vector<Vec3> out(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    Vec3 r = atoms.position[i];
    for (int d = 0; d < 3; ++d) {
      r[d] += atoms.image[i][d] * box.length(d);
    }
    // Index by stable id so array reordering between samples cancels out.
    out[atoms.id[i]] = r;
  }
  return out;
}

MsdTracker::MsdTracker(const System& system) : reference_(unwrap(system)) {}

double MsdTracker::sample(const System& system) const {
  SDCMD_REQUIRE(system.size() == reference_.size(),
                "atom count changed since the reference was taken");
  const std::vector<Vec3> now = unwrap(system);
  double sum = 0.0;
  for (std::size_t i = 0; i < now.size(); ++i) {
    sum += norm2(now[i] - reference_[i]);
  }
  return sum / static_cast<double>(now.size());
}

void MsdTracker::rebase(const System& system) {
  reference_ = unwrap(system);
}

}  // namespace sdcmd
