#include "analysis/coordination.hpp"

#include <cmath>

#include "neighbor/neighbor_list.hpp"

namespace sdcmd {

double CoordinationResult::mean() const {
  if (per_atom.empty()) return 0.0;
  double sum = 0.0;
  for (int c : per_atom) sum += c;
  return sum / static_cast<double>(per_atom.size());
}

std::vector<std::size_t> CoordinationResult::defects(int expected) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < per_atom.size(); ++i) {
    if (per_atom[i] != expected) out.push_back(i);
  }
  return out;
}

CoordinationResult coordination_numbers(const Box& box,
                                        std::span<const Vec3> positions,
                                        double cutoff) {
  NeighborListConfig cfg;
  cfg.cutoff = cutoff;
  cfg.skin = 0.0;
  cfg.mode = NeighborMode::Full;
  NeighborList list(box, cfg);
  list.build(positions);

  CoordinationResult result;
  result.per_atom.resize(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto count = static_cast<int>(list.neighbors(i).size());
    result.per_atom[i] = count;
    ++result.histogram[count];
  }
  return result;
}

int bcc_coordination_within(double a0, double cutoff) {
  // Shell radii and multiplicities of bcc (conventional constant a0).
  const struct {
    double radius_factor;
    int count;
  } shells[] = {
      {std::sqrt(3.0) / 2.0, 8},  // (1/2,1/2,1/2)
      {1.0, 6},                   // (1,0,0)
      {std::sqrt(2.0), 12},       // (1,1,0)
      {std::sqrt(11.0) / 2.0, 24},// (3/2,1/2,1/2)
      {std::sqrt(3.0), 8},        // (1,1,1)
  };
  int total = 0;
  for (const auto& shell : shells) {
    if (shell.radius_factor * a0 < cutoff) total += shell.count;
  }
  return total;
}

}  // namespace sdcmd
