#include "analysis/vacf.hpp"

#include "common/error.hpp"

namespace sdcmd {

std::vector<Vec3> VacfTracker::by_id(const System& system) {
  const Atoms& atoms = system.atoms();
  std::vector<Vec3> out(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    out[atoms.id[i]] = atoms.velocity[i];
  }
  return out;
}

VacfTracker::VacfTracker(const System& system)
    : reference_(by_id(system)), norm0_(0.0) {
  for (const auto& v : reference_) norm0_ += norm2(v);
  norm0_ /= static_cast<double>(std::max<std::size_t>(reference_.size(), 1));
}

double VacfTracker::sample_raw(const System& system) const {
  SDCMD_REQUIRE(system.size() == reference_.size(),
                "atom count changed since the reference was taken");
  const std::vector<Vec3> now = by_id(system);
  double sum = 0.0;
  for (std::size_t i = 0; i < now.size(); ++i) {
    sum += dot(reference_[i], now[i]);
  }
  return sum / static_cast<double>(now.size());
}

double VacfTracker::sample(const System& system) const {
  SDCMD_REQUIRE(norm0_ > 0.0,
                "reference velocities are all zero; normalize is undefined");
  return sample_raw(system) / norm0_;
}

void VacfTracker::rebase(const System& system) {
  reference_ = by_id(system);
  norm0_ = 0.0;
  for (const auto& v : reference_) norm0_ += norm2(v);
  norm0_ /= static_cast<double>(std::max<std::size_t>(reference_.size(), 1));
}

double greenkubo_diffusion(const std::vector<double>& raw_vacf,
                           double dt_between_samples) {
  SDCMD_REQUIRE(dt_between_samples > 0.0, "sample spacing must be positive");
  if (raw_vacf.size() < 2) return 0.0;
  double integral = 0.0;
  for (std::size_t i = 1; i < raw_vacf.size(); ++i) {
    integral += 0.5 * (raw_vacf[i - 1] + raw_vacf[i]) * dt_between_samples;
  }
  return integral / 3.0;
}

}  // namespace sdcmd
