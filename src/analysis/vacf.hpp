// Velocity autocorrelation function C(t) = <v(0).v(t)> / <v(0).v(0)>.
//
// Solids oscillate and decay (phonons); liquids decay monotonically with a
// negative backscatter dip; the Green-Kubo integral of the unnormalized
// correlation gives the self-diffusion coefficient D = 1/3 int <v(0)v(t)>.
#pragma once

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"
#include "md/system.hpp"

namespace sdcmd {

class VacfTracker {
 public:
  /// Anchor t = 0 at the system's current velocities.
  explicit VacfTracker(const System& system);

  /// Normalized C(t) for the current velocities (1.0 at t = 0).
  /// Matched by atom id, so reordering between samples is harmless.
  double sample(const System& system) const;

  /// Unnormalized <v(0).v(t)> (internal units squared), for Green-Kubo.
  double sample_raw(const System& system) const;

  void rebase(const System& system);

 private:
  static std::vector<Vec3> by_id(const System& system);

  std::vector<Vec3> reference_;  // indexed by atom id
  double norm0_;                 // <v(0).v(0)>
};

/// Trapezoidal Green-Kubo diffusion estimate from a raw-VACF time series
/// sampled every `dt_between_samples`: D = 1/3 * integral.
double greenkubo_diffusion(const std::vector<double>& raw_vacf,
                           double dt_between_samples);

}  // namespace sdcmd
