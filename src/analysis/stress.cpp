#include "analysis/stress.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdcmd {

StressTensor& StressTensor::operator+=(const StressTensor& o) {
  xx += o.xx;
  yy += o.yy;
  zz += o.zz;
  xy += o.xy;
  xz += o.xz;
  yz += o.yz;
  return *this;
}

double StressTensor::von_mises() const {
  const double dxx = xx - hydrostatic();
  const double dyy = yy - hydrostatic();
  const double dzz = zz - hydrostatic();
  return std::sqrt(1.5 * (dxx * dxx + dyy * dyy + dzz * dzz) +
                   3.0 * (xy * xy + xz * xz + yz * yz));
}

PerAtomStress::PerAtomStress(const EamPotential& potential)
    : potential_(potential) {}

namespace {

/// Half of one pair's virial contribution (goes to each partner).
inline StressTensor pair_half_virial(const Vec3& dr, double fpair) {
  StressTensor s;
  s.xx = 0.5 * fpair * dr.x * dr.x;
  s.yy = 0.5 * fpair * dr.y * dr.y;
  s.zz = 0.5 * fpair * dr.z * dr.z;
  s.xy = 0.5 * fpair * dr.x * dr.y;
  s.xz = 0.5 * fpair * dr.x * dr.z;
  s.yz = 0.5 * fpair * dr.y * dr.z;
  return s;
}

}  // namespace

void PerAtomStress::compute(const Box& box, std::span<const Vec3> positions,
                            std::span<const Vec3> velocities, double mass,
                            const NeighborList& list,
                            std::span<const double> fp,
                            std::vector<StressTensor>& out,
                            const SdcSchedule* schedule) const {
  const std::size_t n = positions.size();
  SDCMD_REQUIRE(list.mode() == NeighborMode::Half,
                "per-atom stress needs a half neighbor list");
  SDCMD_REQUIRE(fp.size() == n, "fp array must match the atom count");
  SDCMD_REQUIRE(velocities.empty() || velocities.size() == n,
                "velocities must be empty or match the atom count");

  out.assign(n, StressTensor{});
  const double cutoff = potential_.cutoff();
  const double cutoff2 = cutoff * cutoff;

  auto atom_body = [&](std::size_t i) {
    const Vec3 xi = positions[i];
    const double fp_i = fp[i];
    for (std::uint32_t j : list.neighbors(i)) {
      const Vec3 dr = box.minimum_image(xi, positions[j]);
      const double r2 = norm2(dr);
      if (r2 >= cutoff2) continue;
      const double r = std::sqrt(r2);
      double v, dvdr, phi, dphidr;
      potential_.pair(r, v, dvdr);
      potential_.density(r, phi, dphidr);
      const double fpair = -(dvdr + (fp_i + fp[j]) * dphidr) / r;
      const StressTensor half = pair_half_virial(dr, fpair);
      out[i] += half;
      out[j] += half;  // scatter: same footprint as the force loop
    }
  };

  if (schedule != nullptr && schedule->built()) {
    const Partition& part = schedule->partition();
    SDCMD_REQUIRE(part.atom_count() == n, "SDC schedule is stale");
    const int colors = part.color_count();
#pragma omp parallel
    {
      for (int c = 0; c < colors; ++c) {
#pragma omp for schedule(static)
        for (std::size_t slot = part.color_begin(c);
             slot < part.color_end(c); ++slot) {
          for (std::uint32_t i : part.atoms_in_slot(slot)) {
            atom_body(i);
          }
        }
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) atom_body(i);
  }

  // Kinetic part and volume normalization. Per-atom volume V/N; stress is
  // reported as the usual negative-of-virial-density convention (tension
  // gives negative normal components).
  const double per_atom_volume =
      box.volume() / static_cast<double>(std::max<std::size_t>(n, 1));
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    if (!velocities.empty()) {
      const Vec3& v = velocities[i];
      out[i].xx += mass * v.x * v.x;
      out[i].yy += mass * v.y * v.y;
      out[i].zz += mass * v.z * v.z;
      out[i].xy += mass * v.x * v.y;
      out[i].xz += mass * v.x * v.z;
      out[i].yz += mass * v.y * v.z;
    }
    const double inv_vol = -1.0 / per_atom_volume;
    out[i].xx *= inv_vol;
    out[i].yy *= inv_vol;
    out[i].zz *= inv_vol;
    out[i].xy *= inv_vol;
    out[i].xz *= inv_vol;
    out[i].yz *= inv_vol;
  }
}

StressTensor PerAtomStress::total(const std::vector<StressTensor>& stresses) {
  StressTensor sum;
  for (const auto& s : stresses) sum += s;
  return sum;
}

}  // namespace sdcmd
