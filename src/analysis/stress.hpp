// Per-atom virial stress tensors for EAM systems.
//
// sigma_i = -(1/Omega_i) [ m v_i (x) v_i
//                          + 1/2 sum_j f_ij (x) r_ij ]        (eV / A^3)
//
// where f_ij is the full EAM pair force (pair + embedding coupling, using
// the fp = dF/drho values from the density/embedding phases) and Omega_i
// the per-atom volume (V/N here; Voronoi volumes are overkill for the
// micro-deformation workloads). The per-atom sum reproduces the global
// virial exactly, which the test suite asserts against the force engine.
//
// The scatter to j makes this the same irregular-reduction shape as the
// force loop, so the parallel path reuses the SDC color sweep.
#pragma once

#include <array>
#include <span>

#include "common/vec3.hpp"
#include "core/sdc_schedule.hpp"
#include "neighbor/neighbor_list.hpp"
#include "potential/potential.hpp"

namespace sdcmd {

/// Symmetric 3x3 tensor in Voigt-like component order.
struct StressTensor {
  double xx = 0.0, yy = 0.0, zz = 0.0;
  double xy = 0.0, xz = 0.0, yz = 0.0;

  StressTensor& operator+=(const StressTensor& o);
  /// Mean normal stress; -trace/3 is the pressure contribution.
  double hydrostatic() const { return (xx + yy + zz) / 3.0; }
  /// Von Mises equivalent (deviatoric magnitude), for plasticity onset.
  double von_mises() const;
};

class PerAtomStress {
 public:
  /// Serial computation. The caller provides the fp = dF/drho values from
  /// a prior EamForceComputer::compute (phase 2 output).
  explicit PerAtomStress(const EamPotential& potential);

  /// Compute per-atom stress tensors (eV/A^3, tension negative) into
  /// `out` (resized). Half neighbor list required. When `schedule` is
  /// non-null and built, the scatter runs SDC-parallel; otherwise serial.
  /// Velocities may be empty to skip the kinetic term.
  void compute(const Box& box, std::span<const Vec3> positions,
               std::span<const Vec3> velocities, double mass,
               const NeighborList& list, std::span<const double> fp,
               std::vector<StressTensor>& out,
               const SdcSchedule* schedule = nullptr) const;

  /// Sum of per-atom virials: trace/3 equals the force engine's virial/3V
  /// contribution to pressure. Exposed for validation.
  static StressTensor total(const std::vector<StressTensor>& stresses);

 private:
  const EamPotential& potential_;
};

}  // namespace sdcmd
