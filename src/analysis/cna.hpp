// Common Neighbor Analysis (CNA): per-atom local structure classification.
//
// For each bonded pair (i, j) the triplet signature
//   (ncn, nb, lcb) = (# common neighbors,
//                     # bonds among them,
//                     longest continuous chain of those bonds)
// is computed; the multiset of signatures over an atom's bonds identifies
// its environment:
//   fcc : 12 bonds, all (4,2,1)
//   hcp : 12 bonds, 6 x (4,2,1) + 6 x (4,2,2)
//   bcc : 14 bonds, 8 x (6,6,6) + 6 x (4,4,4)
//         (cutoff between the 2nd and 3rd bcc shells)
//   ico : 12 x (5,5,5)
// Everything else is Other - melts, surfaces, defect cores.
//
// Conventional fixed-cutoff CNA (Honeycutt & Andersen / Faken & Jonsson).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

enum class CnaStructure : std::uint8_t { Other = 0, Fcc, Hcp, Bcc, Ico };

const char* to_string(CnaStructure s);

struct CnaResult {
  std::vector<CnaStructure> per_atom;
  std::array<std::size_t, 5> counts{};  ///< indexed by CnaStructure

  std::size_t count(CnaStructure s) const {
    return counts[static_cast<std::size_t>(s)];
  }
  /// Fraction of atoms classified as `s`.
  double fraction(CnaStructure s) const;
};

/// Classify every atom. `cutoff` must sit between the relevant shells:
/// bcc_cna_cutoff / fcc_cna_cutoff compute the standard choices.
CnaResult common_neighbor_analysis(const Box& box,
                                   std::span<const Vec3> positions,
                                   double cutoff);

/// Midpoint of the 2nd and 3rd bcc shells: (1 + sqrt(2))/2 * a0.
double bcc_cna_cutoff(double a0);

/// Midpoint of the 1st and 2nd fcc shells: (1/sqrt(2) + 1)/2 * a0.
double fcc_cna_cutoff(double a0);

/// The (ncn, nb, lcb) signature of one bonded pair; exposed for tests.
struct CnaSignature {
  int common = 0;
  int bonds = 0;
  int longest_chain = 0;
  friend bool operator==(const CnaSignature&, const CnaSignature&) = default;
};

}  // namespace sdcmd
