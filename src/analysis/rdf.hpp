// Radial distribution function g(r).
//
// The workhorse structural observable: g(r) distinguishes the bcc crystal
// (sharp shells at a*sqrt(3)/2, a, a*sqrt(2), ...) from the melt (one broad
// first peak), which is how the melt_quench example verifies melting.
// Accumulation over frames uses a cell list, so cost is O(N) per frame.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

class Rdf {
 public:
  /// Histogram pair distances in (0, r_max] over `bins` bins. `r_max` must
  /// not exceed half the shortest periodic box edge (minimum image).
  Rdf(double r_max, std::size_t bins);

  /// Accumulate one configuration (O(N) via linked cells).
  void accumulate(const Box& box, std::span<const Vec3> positions);

  /// Normalized g(r) per bin (ideal-gas normalization over all frames).
  std::vector<double> g() const;

  /// Bin center radii.
  std::vector<double> radii() const;

  /// Running coordination number integral n(r) = 4 pi rho int g r^2 dr,
  /// evaluated at each bin edge; n(r) at the first minimum of g(r) is the
  /// coordination number.
  std::vector<double> coordination_integral() const;

  std::size_t frames() const { return frames_; }
  std::size_t bins() const { return counts_.size(); }
  double r_max() const { return r_max_; }
  void reset();

 private:
  double r_max_;
  std::vector<std::size_t> counts_;
  std::size_t frames_ = 0;
  double density_sum_ = 0.0;      // number density accumulated over frames
  std::size_t atoms_last_ = 0;
};

}  // namespace sdcmd
