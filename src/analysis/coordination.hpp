// Per-atom coordination analysis and defect detection.
//
// In a perfect bcc crystal every atom sees 14 neighbors within the
// Finnis-Sinclair range (8 first shell + 6 second shell); vacancies,
// surfaces and disordered regions show up as deviations. This is the
// lightweight defect detector used by the defect_analysis example.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

struct CoordinationResult {
  std::vector<int> per_atom;           ///< neighbor count within the cutoff
  std::map<int, std::size_t> histogram;

  double mean() const;
  /// Indices whose coordination differs from `expected`.
  std::vector<std::size_t> defects(int expected) const;
};

/// Count neighbors within `cutoff` for every atom (O(N) via linked cells).
CoordinationResult coordination_numbers(const Box& box,
                                        std::span<const Vec3> positions,
                                        double cutoff);

/// Expected coordination within `cutoff` for a perfect lattice: the count
/// of lattice shells inside the cutoff (bcc/fcc conventional cells with
/// lattice constant a0). Useful for choosing the `expected` argument.
int bcc_coordination_within(double a0, double cutoff);

}  // namespace sdcmd
