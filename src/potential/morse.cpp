#include "potential/morse.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdcmd {

Morse::Morse(double d, double alpha, double r0, double cutoff)
    : d_(d), alpha_(alpha), r0_(r0), cutoff_(cutoff), shift_(0.0) {
  SDCMD_REQUIRE(d > 0.0, "well depth must be positive");
  SDCMD_REQUIRE(alpha > 0.0, "alpha must be positive");
  SDCMD_REQUIRE(cutoff > r0, "cutoff must exceed the equilibrium distance");
  const double e = std::exp(-alpha_ * (cutoff_ - r0_));
  shift_ = d_ * (e * e - 2.0 * e);
}

void Morse::evaluate(double r, double& energy, double& dvdr) const {
  const double e = std::exp(-alpha_ * (r - r0_));
  energy = d_ * (e * e - 2.0 * e) - shift_;
  dvdr = -2.0 * alpha_ * d_ * (e * e - e);
}

}  // namespace sdcmd
