#include "potential/cubic_spline.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sdcmd {

CubicSpline::CubicSpline(double x0, double dx, std::vector<double> values)
    : x0_(x0), dx_(dx), n_(values.size()) {
  build(values, /*clamped=*/false, 0.0, 0.0);
}

CubicSpline::CubicSpline(double x0, double dx, std::vector<double> values,
                         double slope_begin, double slope_end)
    : x0_(x0), dx_(dx), n_(values.size()) {
  build(values, /*clamped=*/true, slope_begin, slope_end);
}

void CubicSpline::build(const std::vector<double>& y, bool clamped,
                        double slope_begin, double slope_end) {
  SDCMD_REQUIRE(n_ >= 2, "spline needs at least two samples");
  SDCMD_REQUIRE(dx_ > 0.0, "grid spacing must be positive");

  // Solve the tridiagonal system for the second derivatives m_i.
  const std::size_t n = n_;
  std::vector<double> m(n, 0.0);
  std::vector<double> diag(n, 0.0), rhs(n, 0.0), upper(n, 0.0);

  if (clamped) {
    diag[0] = 2.0 * dx_;
    upper[0] = dx_;
    rhs[0] = 6.0 * ((y[1] - y[0]) / dx_ - slope_begin);
    diag[n - 1] = 2.0 * dx_;
    rhs[n - 1] = 6.0 * (slope_end - (y[n - 1] - y[n - 2]) / dx_);
  } else {
    diag[0] = 1.0;
    upper[0] = 0.0;
    rhs[0] = 0.0;
    diag[n - 1] = 1.0;
    rhs[n - 1] = 0.0;
  }
  for (std::size_t i = 1; i + 1 < n; ++i) {
    diag[i] = 4.0 * dx_;
    upper[i] = dx_;
    rhs[i] = 6.0 * ((y[i + 1] - 2.0 * y[i] + y[i - 1]) / dx_);
  }

  // Thomas algorithm. The sub-diagonal mirrors `upper` except at the edges,
  // where natural boundaries have a zero coupling and clamped ones dx.
  std::vector<double> lower(n, dx_);
  lower[n - 1] = clamped ? dx_ : 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double w = lower[i] / diag[i - 1];
    diag[i] -= w * upper[i - 1];
    rhs[i] -= w * rhs[i - 1];
  }
  m[n - 1] = rhs[n - 1] / diag[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    m[i] = (rhs[i] - upper[i] * m[i + 1]) / diag[i];
  }

  // Segment-local cubic coefficients.
  const std::size_t segs = n - 1;
  a_.resize(segs);
  b_.resize(segs);
  c_.resize(segs);
  d_.resize(segs);
  for (std::size_t i = 0; i < segs; ++i) {
    a_[i] = y[i];
    b_[i] = (y[i + 1] - y[i]) / dx_ - dx_ * (2.0 * m[i] + m[i + 1]) / 6.0;
    c_[i] = m[i] / 2.0;
    d_[i] = (m[i + 1] - m[i]) / (6.0 * dx_);
  }
  packed_.resize(4 * segs);
  for (std::size_t i = 0; i < segs; ++i) {
    packed_[4 * i + 0] = a_[i];
    packed_[4 * i + 1] = b_[i];
    packed_[4 * i + 2] = c_[i];
    packed_[4 * i + 3] = d_[i];
  }
}

std::size_t CubicSpline::segment(double x, double& t) const {
  double rel = (x - x0_) / dx_;
  auto idx = static_cast<long>(std::floor(rel));
  idx = std::clamp(idx, 0L, static_cast<long>(n_) - 2);
  t = x - (x0_ + dx_ * static_cast<double>(idx));
  return static_cast<std::size_t>(idx);
}

double CubicSpline::value(double x) const {
  double t;
  const std::size_t i = segment(x, t);
  return a_[i] + t * (b_[i] + t * (c_[i] + t * d_[i]));
}

double CubicSpline::derivative(double x) const {
  double t;
  const std::size_t i = segment(x, t);
  return b_[i] + t * (2.0 * c_[i] + 3.0 * t * d_[i]);
}

void CubicSpline::evaluate(double x, double& value, double& derivative) const {
  double t;
  const std::size_t i = segment(x, t);
  value = a_[i] + t * (b_[i] + t * (c_[i] + t * d_[i]));
  derivative = b_[i] + t * (2.0 * c_[i] + 3.0 * t * d_[i]);
}

}  // namespace sdcmd
