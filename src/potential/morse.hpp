// Morse pair potential, a second pair baseline with metal-like curvature.
#pragma once

#include "potential/potential.hpp"

namespace sdcmd {

class Morse final : public PairPotential {
 public:
  /// V(r) = D [ e^{-2 a (r - r0)} - 2 e^{-a (r - r0)} ], shifted to 0 at rc.
  Morse(double d, double alpha, double r0, double cutoff);

  double cutoff() const override { return cutoff_; }
  void evaluate(double r, double& energy, double& dvdr) const override;
  std::string name() const override { return "morse"; }

 private:
  double d_;
  double alpha_;
  double r0_;
  double cutoff_;
  double shift_;
};

}  // namespace sdcmd
