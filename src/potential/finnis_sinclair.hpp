// Finnis-Sinclair-type analytic EAM for bcc transition metals.
//
// The paper's workload is bcc iron with an EAM potential (XMD's Fe tables).
// We use the classic Finnis-Sinclair functional forms (Philos. Mag. A 50,
// 45 (1984)), which are the canonical analytic EAM for bcc Fe:
//
//   pair      V(r)   = (r - c)^2 (c0 + c1 r + c2 r^2)      for r < c
//   density   phi(r) = (r - d)^2 + beta (r - d)^3 / d      for r < d
//   embedding F(rho) = -A sqrt(rho)
//
// Both radial functions and their first derivatives vanish at their cutoffs,
// so forces are continuous without extra smoothing. The parallelization
// study only depends on the cutoff structure and neighbor counts, not on
// chemical accuracy; physics invariants (Newton's third law, energy
// conservation, force = -grad E) are enforced by the test suite.
#pragma once

#include "potential/potential.hpp"

namespace sdcmd {

struct FinnisSinclairParams {
  double c;     ///< pair cutoff (angstrom)
  double c0;    ///< pair polynomial coefficients (eV / A^2, eV / A^3, ...)
  double c1;
  double c2;
  double d;     ///< density cutoff (angstrom)
  double beta;  ///< cubic density correction (dimensionless)
  double a;     ///< embedding amplitude A (eV)
  std::string label;

  /// Finnis & Sinclair's 1984 parameterization for alpha-iron.
  static FinnisSinclairParams iron();

  /// A softer, shorter-ranged parameter set used by tests that want small
  /// neighbor lists; not fitted to any element.
  static FinnisSinclairParams test_metal();
};

class FinnisSinclair final : public EamPotential {
 public:
  explicit FinnisSinclair(FinnisSinclairParams params);

  double cutoff() const override { return cutoff_; }
  void pair(double r, double& energy, double& dvdr) const override;
  void density(double r, double& phi, double& dphidr) const override;
  void embed(double rho, double& f, double& dfdrho) const override;
  std::string name() const override { return "finnis-sinclair-" + p_.label; }

  const FinnisSinclairParams& params() const { return p_; }

 private:
  FinnisSinclairParams p_;
  double cutoff_;
};

}  // namespace sdcmd
