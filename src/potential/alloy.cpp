#include "potential/alloy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sdcmd {

SingleSpeciesAlloy::SingleSpeciesAlloy(const EamPotential& inner,
                                       double mass, std::string species)
    : inner_(inner), mass_(mass), species_(std::move(species)) {
  SDCMD_REQUIRE(mass > 0.0, "mass must be positive");
}

JohnsonMixedAlloy::JohnsonMixedAlloy(std::vector<Element> elements)
    : elements_(std::move(elements)), cutoff_(0.0) {
  SDCMD_REQUIRE(!elements_.empty(), "alloy needs at least one element");
  for (const auto& e : elements_) {
    SDCMD_REQUIRE(e.potential != nullptr, "null element potential");
    SDCMD_REQUIRE(e.mass > 0.0, "element mass must be positive");
    cutoff_ = std::max(cutoff_, e.potential->cutoff());
  }
}

void JohnsonMixedAlloy::pair(int a, int b, double r, double& energy,
                             double& dvdr) const {
  // Canonical species order: bitwise-identical results for (a,b) and (b,a).
  if (a > b) std::swap(a, b);
  const EamPotential& pa = *elements_[static_cast<std::size_t>(a)].potential;
  const EamPotential& pb = *elements_[static_cast<std::size_t>(b)].potential;
  if (a == b) {
    pa.pair(r, energy, dvdr);
    return;
  }

  double vaa = 0.0, dvaa = 0.0, vbb = 0.0, dvbb = 0.0;
  double fa = 0.0, dfa = 0.0, fb = 0.0, dfb = 0.0;
  pa.pair(r, vaa, dvaa);
  pb.pair(r, vbb, dvbb);
  pa.density(r, fa, dfa);
  pb.density(r, fb, dfb);

  // Some analytic densities (Finnis-Sinclair's cubic-corrected form) turn
  // negative at unphysically small separations; the ratio mixing is
  // meaningless there. Fall back to the plain arithmetic mean - no pair
  // ever sits at such r in a healthy simulation, but tabulation sweeps the
  // whole radial grid and must get finite numbers.
  if (fa <= 0.0 || fb <= 0.0) {
    energy = 0.5 * (vaa + vbb);
    dvdr = 0.5 * (dvaa + dvbb);
    return;
  }

  // Johnson mixing: V_ab = 1/2 (phi_b/phi_a V_aa + phi_a/phi_b V_bb).
  // Each term is included only where its same-species V is nonzero (there
  // the matching density is positive for the potentials shipped here).
  energy = 0.0;
  dvdr = 0.0;
  if (vaa != 0.0) {
    const double ratio = fb / fa;
    const double dratio = (dfb * fa - fb * dfa) / (fa * fa);
    energy += 0.5 * ratio * vaa;
    dvdr += 0.5 * (dratio * vaa + ratio * dvaa);
  }
  if (vbb != 0.0) {
    const double ratio = fa / fb;
    const double dratio = (dfa * fb - fa * dfb) / (fb * fb);
    energy += 0.5 * ratio * vbb;
    dvdr += 0.5 * (dratio * vbb + ratio * dvbb);
  }
}

void JohnsonMixedAlloy::density(int b, double r, double& phi,
                                double& dphidr) const {
  elements_[static_cast<std::size_t>(b)].potential->density(r, phi, dphidr);
}

void JohnsonMixedAlloy::embed(int a, double rho, double& f,
                              double& dfdrho) const {
  elements_[static_cast<std::size_t>(a)].potential->embed(rho, f, dfdrho);
}

double JohnsonMixedAlloy::mass(int a) const {
  return elements_[static_cast<std::size_t>(a)].mass;
}

std::string JohnsonMixedAlloy::species_name(int a) const {
  return elements_[static_cast<std::size_t>(a)].name;
}

std::string JohnsonMixedAlloy::name() const {
  std::string out = "johnson-mixed";
  for (const auto& e : elements_) {
    out += "-" + e.name;
  }
  return out;
}

}  // namespace sdcmd
