#include "potential/setfl.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace sdcmd {

namespace {

[[noreturn]] void fail(std::istream& in, const std::string& message) {
  throw ParseError("setfl: " + message + line_suffix(in));
}

/// Stream the next whitespace-separated token as a double or fail loudly.
double next_double(std::istream& in, const char* what) {
  double v;
  if (!(in >> v)) {
    fail(in, std::string("expected a number for ") + what);
  }
  return v;
}

long next_long(std::istream& in, const char* what) {
  long v;
  if (!(in >> v)) {
    fail(in, std::string("expected an integer for ") + what);
  }
  return v;
}

void read_block(std::istream& in, std::vector<double>& out, std::size_t n,
                const char* what) {
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v;
    if (!(in >> v)) {
      fail(in, "expected a number for " + std::string(what) + " entry " +
                   std::to_string(i + 1) + " of " + std::to_string(n));
    }
    out[i] = v;
  }
}

}  // namespace

EamTables read_setfl(std::istream& in) {
  std::string line;
  for (int i = 0; i < 3; ++i) {
    if (!std::getline(in, line)) {
      throw ParseError("setfl: missing comment header");
    }
  }

  long nelements;
  if (!(in >> nelements)) {
    fail(in, "missing element count");
  }
  if (nelements != 1) {
    fail(in, "only single-element files are supported, got " +
             std::to_string(nelements) + " elements");
  }
  std::string element;
  if (!(in >> element)) {
    fail(in, "missing element name");
  }

  EamTables t;
  t.label = element;
  const long nrho = next_long(in, "nrho");
  t.drho = next_double(in, "drho");
  const long nr = next_long(in, "nr");
  t.dr = next_double(in, "dr");
  t.cutoff = next_double(in, "cutoff");
  if (nrho < 2 || nr < 2) {
    fail(in, "grids must have at least two points");
  }
  if (t.drho <= 0.0 || t.dr <= 0.0 || t.cutoff <= 0.0) {
    fail(in, "grid spacings and cutoff must be positive");
  }

  t.atomic_number = static_cast<int>(next_long(in, "atomic number"));
  t.mass = next_double(in, "mass");
  t.lattice_constant = next_double(in, "lattice constant");
  if (!(in >> t.structure)) {
    fail(in, "missing structure tag");
  }

  read_block(in, t.embed, static_cast<std::size_t>(nrho), "F(rho)");
  read_block(in, t.density, static_cast<std::size_t>(nr), "phi(r)");

  std::vector<double> r_times_v;
  read_block(in, r_times_v, static_cast<std::size_t>(nr), "r*V(r)");
  t.pair.resize(r_times_v.size());
  for (std::size_t i = 1; i < r_times_v.size(); ++i) {
    t.pair[i] = r_times_v[i] / (t.dr * static_cast<double>(i));
  }
  // r = 0 is never a physical separation; extrapolate so the spline has a
  // finite anchor.
  t.pair[0] = t.pair.size() > 2 ? 2.0 * t.pair[1] - t.pair[2] : t.pair[1];
  return t;
}

EamTables read_setfl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("setfl: cannot open '" + path + "'");
  }
  return read_setfl(in);
}

void write_setfl(std::ostream& out, const EamTables& t,
                 const std::string& comment) {
  SDCMD_REQUIRE(!t.embed.empty() && !t.density.empty() && !t.pair.empty(),
                "cannot write empty tables");
  SDCMD_REQUIRE(t.pair.size() == t.density.size(),
                "pair and density tables must share the radial grid");

  out << comment << '\n';
  out << "single-element EAM tables (eam/alloy layout)\n";
  out << "pair block stores r*V(r) per the DYNAMO convention\n";
  out << 1 << ' ' << (t.label.empty() ? std::string("X") : t.label) << '\n';
  out << t.embed.size() << ' ' << std::setprecision(17) << t.drho << ' '
      << t.pair.size() << ' ' << t.dr << ' ' << t.cutoff << '\n';
  out << t.atomic_number << ' ' << t.mass << ' ' << t.lattice_constant << ' '
      << t.structure << '\n';

  auto write_block = [&out](const std::vector<double>& xs) {
    constexpr std::size_t kPerLine = 5;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      out << std::setprecision(17) << xs[i];
      out << ((i % kPerLine == kPerLine - 1 || i + 1 == xs.size()) ? '\n'
                                                                   : ' ');
    }
  };

  write_block(t.embed);
  write_block(t.density);

  std::vector<double> r_times_v(t.pair.size());
  for (std::size_t i = 0; i < t.pair.size(); ++i) {
    r_times_v[i] = t.pair[i] * (t.dr * static_cast<double>(i));
  }
  write_block(r_times_v);
}

void write_setfl_file(const std::string& path, const EamTables& tables,
                      const std::string& comment) {
  std::ofstream out(path);
  if (!out) {
    throw ParseError("setfl: cannot open '" + path + "' for writing");
  }
  write_setfl(out, tables, comment);
}

}  // namespace sdcmd
