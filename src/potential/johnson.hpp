// Johnson-style analytic nearest-neighbor EAM with exponential radial
// functions and a smooth cutoff taper.
//
// Included as a second, structurally different analytic EAM so the tabulated
// / setfl machinery and the force kernels are exercised against more than
// one functional family:
//
//   pair      V(r)   = A exp(-gamma (r/r0 - 1)) * taper(r)
//   density   phi(r) = fe exp(-chi  (r/r0 - 1)) * taper(r)
//   embedding F(rho) = -Ec [1 - n ln(rho/rho0)] (rho/rho0)^n
//
// taper(r) smoothly takes both radial functions (and their derivatives) to
// zero at the cutoff over a window of width `taper_width`.
#pragma once

#include "potential/potential.hpp"

namespace sdcmd {

struct JohnsonParams {
  double a = 0.48;          ///< pair amplitude (eV)
  double gamma = 8.0;       ///< pair decay
  double fe = 1.0;          ///< density amplitude
  double chi = 5.0;         ///< density decay
  double r0 = 2.556;        ///< nearest-neighbor distance (fcc Cu-like)
  double ec = 3.54;         ///< cohesive scale (eV)
  double n = 0.5;           ///< embedding exponent
  double rho0 = 12.0;       ///< equilibrium host density
  double cutoff = 4.95;     ///< interaction range
  double taper_width = 0.5; ///< cutoff smoothing window
  std::string label = "cu";

  /// Copper-like default parameter set.
  static JohnsonParams copper() { return {}; }
};

class JohnsonEam final : public EamPotential {
 public:
  explicit JohnsonEam(JohnsonParams params);

  double cutoff() const override { return p_.cutoff; }
  void pair(double r, double& energy, double& dvdr) const override;
  void density(double r, double& phi, double& dphidr) const override;
  void embed(double rho, double& f, double& dfdrho) const override;
  std::string name() const override { return "johnson-" + p_.label; }

  const JohnsonParams& params() const { return p_; }

 private:
  /// Quintic-smoothstep taper value and derivative at r.
  void taper(double r, double& t, double& dtdr) const;

  JohnsonParams p_;
};

}  // namespace sdcmd
