#include "potential/lennard_jones.hpp"

#include "common/error.hpp"

namespace sdcmd {

LennardJones::LennardJones(double epsilon, double sigma, double cutoff,
                           bool shift)
    : epsilon_(epsilon), sigma_(sigma), cutoff_(cutoff), shift_(0.0) {
  SDCMD_REQUIRE(epsilon > 0.0, "epsilon must be positive");
  SDCMD_REQUIRE(sigma > 0.0, "sigma must be positive");
  SDCMD_REQUIRE(cutoff > 0.0, "cutoff must be positive");
  if (shift) {
    const double sr2 = sigma_ * sigma_ / (cutoff_ * cutoff_);
    const double sr6 = sr2 * sr2 * sr2;
    shift_ = 4.0 * epsilon_ * (sr6 * sr6 - sr6);
  }
}

void LennardJones::evaluate(double r, double& energy, double& dvdr) const {
  const double inv_r = 1.0 / r;
  const double sr2 = sigma_ * sigma_ * inv_r * inv_r;
  const double sr6 = sr2 * sr2 * sr2;
  const double sr12 = sr6 * sr6;
  energy = 4.0 * epsilon_ * (sr12 - sr6) - shift_;
  dvdr = 4.0 * epsilon_ * (-12.0 * sr12 + 6.0 * sr6) * inv_r;
}

}  // namespace sdcmd
