// Spline-tabulated EAM potential.
//
// Production MD codes evaluate EAM from tables (DYNAMO/LAMMPS setfl files);
// the XMD code underlying the paper does the same. TabulatedEam stores the
// three EAM functions on uniform grids and interpolates with cubic splines,
// and can be built either from raw tables (a parsed setfl file) or by
// sampling any analytic EamPotential.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "potential/cubic_spline.hpp"
#include "potential/potential.hpp"

namespace sdcmd {

struct EamTables {
  std::string label;        ///< element / provenance tag
  double dr = 0.0;          ///< radial grid spacing (grid starts at r = 0)
  double drho = 0.0;        ///< density grid spacing (grid starts at rho = 0)
  double cutoff = 0.0;      ///< interaction range
  std::vector<double> pair;     ///< V(i * dr); stored as plain V, not r*V
  std::vector<double> density;  ///< phi(i * dr)
  std::vector<double> embed;    ///< F(i * drho)

  /// Header metadata carried through setfl round trips.
  int atomic_number = 26;
  double mass = 55.845;
  double lattice_constant = 2.8665;
  std::string structure = "bcc";
};

class TabulatedEam final : public EamPotential {
 public:
  explicit TabulatedEam(EamTables tables);

  /// Sample `source` on `nr` radial / `nrho` density points. `rho_max` sets
  /// the embedding grid range; pick comfortably above the densest expected
  /// environment.
  static TabulatedEam from_analytic(const EamPotential& source,
                                    std::size_t nr, std::size_t nrho,
                                    double rho_max);

  double cutoff() const override { return tables_.cutoff; }
  void pair(double r, double& energy, double& dvdr) const override;
  void density(double r, double& phi, double& dphidr) const override;
  void embed(double rho, double& f, double& dfdrho) const override;
  const EamSplineTables* spline_tables() const override;
  std::string name() const override { return "tabulated-" + tables_.label; }

  const EamTables& tables() const { return tables_; }

 private:
  EamTables tables_;
  CubicSpline pair_spline_;
  CubicSpline density_spline_;
  CubicSpline embed_spline_;
  // Refreshed on every spline_tables() call so the borrowed pointers stay
  // correct across copies/moves of this object.
  mutable EamSplineTables views_;
};

}  // namespace sdcmd
