#include "potential/finnis_sinclair.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sdcmd {

FinnisSinclairParams FinnisSinclairParams::iron() {
  // Finnis & Sinclair, Philos. Mag. A 50, 45 (1984), Table 1, alpha-Fe.
  FinnisSinclairParams p;
  p.c = 3.40;
  p.c0 = 1.2371147;
  p.c1 = -0.3592185;
  p.c2 = -0.0385607;
  p.d = 3.569745;
  p.beta = 1.8289905;
  p.a = 1.8289905;
  p.label = "fe";
  return p;
}

FinnisSinclairParams FinnisSinclairParams::test_metal() {
  FinnisSinclairParams p;
  p.c = 2.2;
  p.c0 = 1.0;
  p.c1 = -0.2;
  p.c2 = -0.01;
  p.d = 2.4;
  p.beta = 0.5;
  p.a = 1.0;
  p.label = "test";
  return p;
}

FinnisSinclair::FinnisSinclair(FinnisSinclairParams params)
    : p_(std::move(params)), cutoff_(std::max(p_.c, p_.d)) {
  SDCMD_REQUIRE(p_.c > 0.0 && p_.d > 0.0, "cutoffs must be positive");
  SDCMD_REQUIRE(p_.a > 0.0, "embedding amplitude must be positive");
}

void FinnisSinclair::pair(double r, double& energy, double& dvdr) const {
  if (r >= p_.c) {
    energy = 0.0;
    dvdr = 0.0;
    return;
  }
  const double t = r - p_.c;
  const double poly = p_.c0 + r * (p_.c1 + r * p_.c2);
  const double dpoly = p_.c1 + 2.0 * p_.c2 * r;
  energy = t * t * poly;
  dvdr = 2.0 * t * poly + t * t * dpoly;
}

void FinnisSinclair::density(double r, double& phi, double& dphidr) const {
  if (r >= p_.d) {
    phi = 0.0;
    dphidr = 0.0;
    return;
  }
  const double t = r - p_.d;
  phi = t * t + p_.beta * t * t * t / p_.d;
  dphidr = 2.0 * t + 3.0 * p_.beta * t * t / p_.d;
}

void FinnisSinclair::embed(double rho, double& f, double& dfdrho) const {
  if (rho <= 0.0) {
    // Isolated atom: F(0) = 0; clamp the square-root singularity in the
    // derivative so integrators never see NaN when an atom drifts out of
    // range of every neighbor.
    f = 0.0;
    dfdrho = 0.0;
    return;
  }
  const double s = std::sqrt(rho);
  f = -p_.a * s;
  dfdrho = -0.5 * p_.a / s;
}

}  // namespace sdcmd
