#include "potential/setfl_alloy.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>

#include "common/error.hpp"

namespace sdcmd {

namespace {

double next_double(std::istream& in, const char* what) {
  double v;
  if (!(in >> v)) {
    throw ParseError(std::string("setfl: expected a number for ") + what);
  }
  return v;
}

long next_long(std::istream& in, const char* what) {
  long v;
  if (!(in >> v)) {
    throw ParseError(std::string("setfl: expected an integer for ") + what);
  }
  return v;
}

void read_block(std::istream& in, std::vector<double>& out, std::size_t n,
                const char* what) {
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = next_double(in, what);
  }
}

void write_block(std::ostream& out, const std::vector<double>& xs) {
  constexpr std::size_t kPerLine = 5;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out << std::setprecision(17) << xs[i];
    out << ((i % kPerLine == kPerLine - 1 || i + 1 == xs.size()) ? '\n'
                                                                 : ' ');
  }
}

void validate(const AlloyTables& t) {
  SDCMD_REQUIRE(!t.elements.empty(), "alloy tables need >= 1 element");
  SDCMD_REQUIRE(t.dr > 0.0 && t.drho > 0.0 && t.cutoff > 0.0,
                "grid spacings and cutoff must be positive");
  const std::size_t ne = t.elements.size();
  SDCMD_REQUIRE(t.pair_lower.size() == ne * (ne + 1) / 2,
                "pair table count must be ne*(ne+1)/2");
  const std::size_t nr = t.elements.front().density.size();
  const std::size_t nrho = t.elements.front().embed.size();
  SDCMD_REQUIRE(nr >= 2 && nrho >= 2, "tables too short");
  for (const auto& e : t.elements) {
    SDCMD_REQUIRE(e.density.size() == nr && e.embed.size() == nrho,
                  "all elements must share the grids");
  }
  for (const auto& p : t.pair_lower) {
    SDCMD_REQUIRE(p.size() == nr, "pair tables must share the radial grid");
  }
}

}  // namespace

std::size_t AlloyTables::pair_index(int a, int b) {
  const auto i = static_cast<std::size_t>(std::max(a, b));
  const auto j = static_cast<std::size_t>(std::min(a, b));
  return i * (i + 1) / 2 + j;
}

AlloyTables read_setfl_alloy(std::istream& in) {
  std::string line;
  for (int i = 0; i < 3; ++i) {
    if (!std::getline(in, line)) {
      throw ParseError("setfl: missing comment header");
    }
  }

  const long ne = next_long(in, "element count");
  if (ne < 1) {
    throw ParseError("setfl: need at least one element");
  }
  AlloyTables t;
  t.elements.resize(static_cast<std::size_t>(ne));
  for (auto& e : t.elements) {
    if (!(in >> e.name)) {
      throw ParseError("setfl: missing element name");
    }
  }

  const long nrho = next_long(in, "nrho");
  t.drho = next_double(in, "drho");
  const long nr = next_long(in, "nr");
  t.dr = next_double(in, "dr");
  t.cutoff = next_double(in, "cutoff");
  if (nrho < 2 || nr < 2 || t.drho <= 0.0 || t.dr <= 0.0 ||
      t.cutoff <= 0.0) {
    throw ParseError("setfl: bad grid header");
  }

  for (auto& e : t.elements) {
    e.atomic_number = static_cast<int>(next_long(in, "atomic number"));
    e.mass = next_double(in, "mass");
    e.lattice_constant = next_double(in, "lattice constant");
    if (!(in >> e.structure)) {
      throw ParseError("setfl: missing structure tag");
    }
    read_block(in, e.embed, static_cast<std::size_t>(nrho), "F(rho)");
    read_block(in, e.density, static_cast<std::size_t>(nr), "phi(r)");
  }

  const std::size_t pairs =
      t.elements.size() * (t.elements.size() + 1) / 2;
  t.pair_lower.resize(pairs);
  for (auto& p : t.pair_lower) {
    std::vector<double> r_times_v;
    read_block(in, r_times_v, static_cast<std::size_t>(nr), "r*V(r)");
    p.resize(r_times_v.size());
    for (std::size_t i = 1; i < r_times_v.size(); ++i) {
      p[i] = r_times_v[i] / (t.dr * static_cast<double>(i));
    }
    p[0] = p.size() > 2 ? 2.0 * p[1] - p[2] : p[1];
  }
  validate(t);
  return t;
}

AlloyTables read_setfl_alloy_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("setfl: cannot open '" + path + "'");
  }
  return read_setfl_alloy(in);
}

void write_setfl_alloy(std::ostream& out, const AlloyTables& t,
                       const std::string& comment) {
  validate(t);
  out << comment << '\n';
  out << "multi-element EAM tables (eam/alloy layout)\n";
  out << "pair blocks store r*V(r) per the DYNAMO convention\n";
  out << t.elements.size();
  for (const auto& e : t.elements) out << ' ' << e.name;
  out << '\n';
  out << t.elements.front().embed.size() << ' ' << std::setprecision(17)
      << t.drho << ' ' << t.elements.front().density.size() << ' ' << t.dr
      << ' ' << t.cutoff << '\n';
  for (const auto& e : t.elements) {
    out << e.atomic_number << ' ' << e.mass << ' ' << e.lattice_constant
        << ' ' << e.structure << '\n';
    write_block(out, e.embed);
    write_block(out, e.density);
  }
  for (const auto& p : t.pair_lower) {
    std::vector<double> r_times_v(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      r_times_v[i] = p[i] * (t.dr * static_cast<double>(i));
    }
    write_block(out, r_times_v);
  }
}

void write_setfl_alloy_file(const std::string& path, const AlloyTables& t,
                            const std::string& comment) {
  std::ofstream out(path);
  if (!out) {
    throw ParseError("setfl: cannot open '" + path + "' for writing");
  }
  write_setfl_alloy(out, t, comment);
}

AlloyTables tabulate_alloy(const AlloyEamPotential& source, std::size_t nr,
                           std::size_t nrho, double rho_max) {
  SDCMD_REQUIRE(nr >= 2 && nrho >= 2, "need at least two samples per grid");
  SDCMD_REQUIRE(rho_max > 0.0, "rho_max must be positive");

  AlloyTables t;
  t.cutoff = source.cutoff();
  t.dr = t.cutoff / static_cast<double>(nr - 1);
  t.drho = rho_max / static_cast<double>(nrho - 1);

  const int ne = source.species_count();
  t.elements.resize(static_cast<std::size_t>(ne));
  double unused;
  for (int a = 0; a < ne; ++a) {
    auto& e = t.elements[static_cast<std::size_t>(a)];
    e.name = source.species_name(a);
    e.mass = source.mass(a);
    e.embed.resize(nrho);
    e.density.resize(nr);
    for (std::size_t i = 0; i < nrho; ++i) {
      source.embed(a, t.drho * static_cast<double>(i), e.embed[i], unused);
    }
    for (std::size_t i = 0; i < nr; ++i) {
      const double r = i == 0 ? 1e-6 : t.dr * static_cast<double>(i);
      source.density(a, r, e.density[i], unused);
    }
  }
  t.pair_lower.resize(static_cast<std::size_t>(ne) * (ne + 1) / 2);
  for (int a = 0; a < ne; ++a) {
    for (int b = 0; b <= a; ++b) {
      auto& p = t.pair_lower[AlloyTables::pair_index(a, b)];
      p.resize(nr);
      for (std::size_t i = 0; i < nr; ++i) {
        const double r = i == 0 ? 1e-6 : t.dr * static_cast<double>(i);
        source.pair(a, b, r, p[i], unused);
      }
    }
  }
  return t;
}

TabulatedAlloyEam::TabulatedAlloyEam(AlloyTables tables)
    : tables_(std::move(tables)) {
  validate(tables_);
  for (const auto& e : tables_.elements) {
    embed_splines_.emplace_back(0.0, tables_.drho, e.embed);
    density_splines_.emplace_back(0.0, tables_.dr, e.density);
  }
  for (const auto& p : tables_.pair_lower) {
    pair_splines_.emplace_back(0.0, tables_.dr, p);
  }
}

void TabulatedAlloyEam::pair(int a, int b, double r, double& energy,
                             double& dvdr) const {
  if (r >= tables_.cutoff) {
    energy = 0.0;
    dvdr = 0.0;
    return;
  }
  pair_splines_[AlloyTables::pair_index(a, b)].evaluate(r, energy, dvdr);
}

void TabulatedAlloyEam::density(int b, double r, double& phi,
                                double& dphidr) const {
  if (r >= tables_.cutoff) {
    phi = 0.0;
    dphidr = 0.0;
    return;
  }
  density_splines_[static_cast<std::size_t>(b)].evaluate(r, phi, dphidr);
}

void TabulatedAlloyEam::embed(int a, double rho, double& f,
                              double& dfdrho) const {
  embed_splines_[static_cast<std::size_t>(a)].evaluate(rho, f, dfdrho);
}

}  // namespace sdcmd
