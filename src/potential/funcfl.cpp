#include "potential/funcfl.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace sdcmd {

namespace {

// hartree (eV) * bohr (A): the DYNAMO Z(r) -> V(r) conversion constant.
constexpr double kZ2ToEvA = 27.2 * 0.529;

[[noreturn]] void fail(std::istream& in, const std::string& message) {
  throw ParseError("funcfl: " + message + line_suffix(in));
}

double next_double(std::istream& in, const char* what) {
  double v;
  if (!(in >> v)) {
    fail(in, std::string("expected a number for ") + what);
  }
  return v;
}

long next_long(std::istream& in, const char* what) {
  long v;
  if (!(in >> v)) {
    fail(in, std::string("expected an integer for ") + what);
  }
  return v;
}

void read_block(std::istream& in, std::vector<double>& out, std::size_t n,
                const char* what) {
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v;
    if (!(in >> v)) {
      fail(in, "expected a number for " + std::string(what) + " entry " +
                   std::to_string(i + 1) + " of " + std::to_string(n));
    }
    out[i] = v;
  }
}

}  // namespace

EamTables read_funcfl(std::istream& in) {
  std::string comment;
  if (!std::getline(in, comment)) {
    throw ParseError("funcfl: missing comment line");
  }

  EamTables t;
  t.atomic_number = static_cast<int>(next_long(in, "atomic number"));
  t.mass = next_double(in, "mass");
  t.lattice_constant = next_double(in, "lattice constant");
  if (!(in >> t.structure)) {
    fail(in, "missing structure tag");
  }
  t.label = "funcfl-Z" + std::to_string(t.atomic_number);

  const long nrho = next_long(in, "nrho");
  t.drho = next_double(in, "drho");
  const long nr = next_long(in, "nr");
  t.dr = next_double(in, "dr");
  t.cutoff = next_double(in, "cutoff");
  if (nrho < 2 || nr < 2 || t.drho <= 0.0 || t.dr <= 0.0 ||
      t.cutoff <= 0.0) {
    fail(in, "bad grid header");
  }

  read_block(in, t.embed, static_cast<std::size_t>(nrho), "F(rho)");

  std::vector<double> z;
  read_block(in, z, static_cast<std::size_t>(nr), "Z(r)");
  t.pair.resize(z.size());
  for (std::size_t i = 1; i < z.size(); ++i) {
    const double r = t.dr * static_cast<double>(i);
    t.pair[i] = kZ2ToEvA * z[i] * z[i] / r;
  }
  t.pair[0] = t.pair.size() > 2 ? 2.0 * t.pair[1] - t.pair[2] : t.pair[1];

  read_block(in, t.density, static_cast<std::size_t>(nr), "rho(r)");
  return t;
}

EamTables read_funcfl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("funcfl: cannot open '" + path + "'");
  }
  return read_funcfl(in);
}

void write_funcfl(std::ostream& out, const EamTables& t,
                  const std::string& comment) {
  SDCMD_REQUIRE(t.pair.size() == t.density.size(),
                "pair and density tables must share the radial grid");
  out << comment << '\n';
  out << t.atomic_number << ' ' << std::setprecision(17) << t.mass << ' '
      << t.lattice_constant << ' ' << t.structure << '\n';
  out << t.embed.size() << ' ' << t.drho << ' ' << t.pair.size() << ' '
      << t.dr << ' ' << t.cutoff << '\n';

  auto write_block = [&out](const std::vector<double>& xs) {
    constexpr std::size_t kPerLine = 5;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      out << std::setprecision(17) << xs[i];
      out << ((i % kPerLine == kPerLine - 1 || i + 1 == xs.size()) ? '\n'
                                                                   : ' ');
    }
  };

  write_block(t.embed);

  std::vector<double> z(t.pair.size(), 0.0);
  for (std::size_t i = 1; i < t.pair.size(); ++i) {
    const double r = t.dr * static_cast<double>(i);
    const double z2 = t.pair[i] * r / kZ2ToEvA;
    SDCMD_REQUIRE(z2 >= 0.0,
                  "funcfl stores Z(r)^2/r pair terms; negative V cannot be "
                  "represented");
    z[i] = std::sqrt(z2);
  }
  write_block(z);
  write_block(t.density);
}

}  // namespace sdcmd
