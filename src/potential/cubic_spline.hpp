// Cubic spline interpolation on a uniform grid.
//
// Tabulated EAM potentials (setfl files) are evaluated through these
// splines; value and first derivative come from a single segment lookup.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace sdcmd {

/// POD view over a uniform-grid cubic spline's segment coefficients, for
/// inner loops that cannot afford a virtual call per evaluation. The view
/// borrows the owning CubicSpline's arrays; it stays valid as long as the
/// spline is alive and unmodified. evaluate() mirrors CubicSpline::evaluate
/// operation-for-operation so the two paths agree to the last bit modulo
/// compiler FP contraction.
struct SplineView {
  const double* a = nullptr;
  const double* b = nullptr;
  const double* c = nullptr;
  const double* d = nullptr;
  double x0 = 0.0;
  double dx = 1.0;
  std::size_t segments = 0;  ///< sample count minus one

  bool valid() const { return a != nullptr && segments > 0; }

  void evaluate(double x, double& value, double& derivative) const {
    const double rel = (x - x0) / dx;
    auto idx = static_cast<long>(std::floor(rel));
    idx = std::clamp(idx, 0L, static_cast<long>(segments) - 1);
    const double t = x - (x0 + dx * static_cast<double>(idx));
    const auto i = static_cast<std::size_t>(idx);
    value = a[i] + t * (b[i] + t * (c[i] + t * d[i]));
    derivative = b[i] + t * (2.0 * c[i] + 3.0 * t * d[i]);
  }
};

/// Interval-indexed coefficient layout for vector lanes: one segment's four
/// cubic coefficients sit contiguously at coef[4*i .. 4*i+3], so a SIMD
/// lane's evaluation is an index computation plus one contiguous 32-byte
/// load (or a 4-element gather) instead of four gathers from four arrays.
/// The arithmetic mirrors SplineView::evaluate operation-for-operation, so
/// the two layouts agree to the last bit modulo compiler FP contraction.
struct PackedSplineView {
  const double* coef = nullptr;  ///< [a_i, b_i, c_i, d_i] per segment
  double x0 = 0.0;
  double dx = 1.0;
  std::size_t segments = 0;

  bool valid() const { return coef != nullptr && segments > 0; }

  /// Segment index for x, clamped to the table (branch-free min/max).
  std::size_t segment(double x) const {
    const double rel = (x - x0) / dx;
    auto idx = static_cast<long>(std::floor(rel));
    idx = idx < 0 ? 0 : idx;
    const long last = static_cast<long>(segments) - 1;
    idx = idx > last ? last : idx;
    return static_cast<std::size_t>(idx);
  }

  void evaluate(double x, double& value, double& derivative) const {
    const std::size_t i = segment(x);
    const double t = x - (x0 + dx * static_cast<double>(i));
    const double* c = coef + 4 * i;
    value = c[0] + t * (c[1] + t * (c[2] + t * c[3]));
    derivative = c[1] + t * (2.0 * c[2] + 3.0 * t * c[3]);
  }
};

class CubicSpline {
 public:
  /// Interpolate `values` sampled at x = x0 + i*dx for i in [0, n).
  /// `n >= 2`. Natural boundary conditions (zero second derivative) by
  /// default; pass explicit end slopes for clamped boundaries.
  CubicSpline(double x0, double dx, std::vector<double> values);
  CubicSpline(double x0, double dx, std::vector<double> values,
              double slope_begin, double slope_end);

  /// Value at x. Out-of-range x clamps to the nearest grid end segment
  /// (linear extrapolation via that segment's polynomial).
  double value(double x) const;

  /// First derivative at x.
  double derivative(double x) const;

  /// Value and derivative in one lookup.
  void evaluate(double x, double& value, double& derivative) const;

  /// Borrowed coefficient view for devirtualized evaluation loops.
  SplineView view() const {
    SplineView v;
    v.a = a_.data();
    v.b = b_.data();
    v.c = c_.data();
    v.d = d_.data();
    v.x0 = x0_;
    v.dx = dx_;
    v.segments = n_ - 1;
    return v;
  }

  /// Borrowed interval-indexed (interleaved) view for SIMD evaluation
  /// loops; same coefficients as view(), packed 4-per-segment.
  PackedSplineView packed_view() const {
    PackedSplineView v;
    v.coef = packed_.data();
    v.x0 = x0_;
    v.dx = dx_;
    v.segments = n_ - 1;
    return v;
  }

  double x_begin() const { return x0_; }
  double x_end() const { return x0_ + dx_ * static_cast<double>(n_ - 1); }
  double dx() const { return dx_; }
  std::size_t size() const { return n_; }

 private:
  void build(const std::vector<double>& values, bool clamped,
             double slope_begin, double slope_end);
  std::size_t segment(double x, double& t) const;

  double x0_;
  double dx_;
  std::size_t n_;
  // Per-segment cubic coefficients: y = a + b t + c t^2 + d t^3 with
  // t = x - x_i (segment-local).
  std::vector<double> a_, b_, c_, d_;
  // The same coefficients interleaved [a_i, b_i, c_i, d_i] for
  // PackedSplineView (SIMD lanes load one segment contiguously).
  std::vector<double> packed_;
};

}  // namespace sdcmd
