// Cubic spline interpolation on a uniform grid.
//
// Tabulated EAM potentials (setfl files) are evaluated through these
// splines; value and first derivative come from a single segment lookup.
#pragma once

#include <cstddef>
#include <vector>

namespace sdcmd {

class CubicSpline {
 public:
  /// Interpolate `values` sampled at x = x0 + i*dx for i in [0, n).
  /// `n >= 2`. Natural boundary conditions (zero second derivative) by
  /// default; pass explicit end slopes for clamped boundaries.
  CubicSpline(double x0, double dx, std::vector<double> values);
  CubicSpline(double x0, double dx, std::vector<double> values,
              double slope_begin, double slope_end);

  /// Value at x. Out-of-range x clamps to the nearest grid end segment
  /// (linear extrapolation via that segment's polynomial).
  double value(double x) const;

  /// First derivative at x.
  double derivative(double x) const;

  /// Value and derivative in one lookup.
  void evaluate(double x, double& value, double& derivative) const;

  double x_begin() const { return x0_; }
  double x_end() const { return x0_ + dx_ * static_cast<double>(n_ - 1); }
  double dx() const { return dx_; }
  std::size_t size() const { return n_; }

 private:
  void build(const std::vector<double>& values, bool clamped,
             double slope_begin, double slope_end);
  std::size_t segment(double x, double& t) const;

  double x0_;
  double dx_;
  std::size_t n_;
  // Per-segment cubic coefficients: y = a + b t + c t^2 + d t^3 with
  // t = x - x_i (segment-local).
  std::vector<double> a_, b_, c_, d_;
};

}  // namespace sdcmd
