// Multi-species (alloy) EAM.
//
// The standard eam/alloy energy model:
//   E = sum_i F_{t_i}(rho_i) + 1/2 sum_{i!=j} V_{t_i t_j}(r_ij)
//   rho_i = sum_{j!=i} phi_{t_j}(r_ij)
// where t_i is atom i's species: the density an atom *donates* depends on
// its own species, the embedding on the host's species, and the pair term
// on both. The pair force picks up the asymmetric cross terms
//   dE/dr_ij = V'_{ab}(r) + F'_a(rho_i) phi'_b(r) + F'_b(rho_j) phi'_a(r).
//
// Two implementations:
//  * JohnsonMixedAlloy  - combine single-element EamPotentials with
//    Johnson's cross-pair mixing rule (J. Phys.: Condens. Matter 1989):
//      V_ab(r) = 1/2 [ phi_b/phi_a V_aa + phi_a/phi_b V_bb ].
//  * TabulatedAlloyEam  - spline tables from a multi-element setfl file
//    (potential/setfl_alloy.hpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "potential/potential.hpp"

namespace sdcmd {

class AlloyEamPotential {
 public:
  virtual ~AlloyEamPotential() = default;

  virtual int species_count() const = 0;

  /// Range covering every pair and density function.
  virtual double cutoff() const = 0;

  /// Pair term V_{ab}(r) and dV/dr (symmetric in a, b).
  virtual void pair(int a, int b, double r, double& energy,
                    double& dvdr) const = 0;

  /// Density contribution phi_b(r) donated BY an atom of species b.
  virtual void density(int b, double r, double& phi,
                       double& dphidr) const = 0;

  /// Embedding F_a(rho) for a host atom of species a.
  virtual void embed(int a, double rho, double& f, double& dfdrho) const = 0;

  /// Species mass in amu (for integrators) and label (for dumps).
  virtual double mass(int a) const = 0;
  virtual std::string species_name(int a) const = 0;

  virtual std::string name() const = 0;
};

/// Adapt a single-species EamPotential to the alloy interface (species 0
/// only). Lets the alloy force kernels be validated against the
/// single-species engine.
class SingleSpeciesAlloy final : public AlloyEamPotential {
 public:
  SingleSpeciesAlloy(const EamPotential& inner, double mass,
                     std::string species = "X");

  int species_count() const override { return 1; }
  double cutoff() const override { return inner_.cutoff(); }
  void pair(int, int, double r, double& e, double& d) const override {
    inner_.pair(r, e, d);
  }
  void density(int, double r, double& p, double& d) const override {
    inner_.density(r, p, d);
  }
  void embed(int, double rho, double& f, double& d) const override {
    inner_.embed(rho, f, d);
  }
  double mass(int) const override { return mass_; }
  std::string species_name(int) const override { return species_; }
  std::string name() const override { return "alloy-" + inner_.name(); }

 private:
  const EamPotential& inner_;
  double mass_;
  std::string species_;
};

/// Johnson-mixed binary (or n-ary) alloy from single-element potentials.
/// Cross pairs use V_ab = 1/2 (phi_b/phi_a V_aa + phi_a/phi_b V_bb); each
/// term is included only where its same-species pair function is nonzero
/// (there the corresponding density is positive too, so the ratio is
/// well-defined for the potentials shipped here).
class JohnsonMixedAlloy final : public AlloyEamPotential {
 public:
  struct Element {
    const EamPotential* potential;  ///< non-owning; must outlive the alloy
    double mass;
    std::string name;
  };

  explicit JohnsonMixedAlloy(std::vector<Element> elements);

  int species_count() const override {
    return static_cast<int>(elements_.size());
  }
  double cutoff() const override { return cutoff_; }
  void pair(int a, int b, double r, double& energy,
            double& dvdr) const override;
  void density(int b, double r, double& phi, double& dphidr) const override;
  void embed(int a, double rho, double& f, double& dfdrho) const override;
  double mass(int a) const override;
  std::string species_name(int a) const override;
  std::string name() const override;

 private:
  std::vector<Element> elements_;
  double cutoff_;
};

}  // namespace sdcmd
