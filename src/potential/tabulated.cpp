#include "potential/tabulated.hpp"

#include "common/error.hpp"

namespace sdcmd {

namespace {

EamTables validated(EamTables t) {
  SDCMD_REQUIRE(t.dr > 0.0, "radial grid spacing must be positive");
  SDCMD_REQUIRE(t.drho > 0.0, "density grid spacing must be positive");
  SDCMD_REQUIRE(t.pair.size() >= 2, "pair table too short");
  SDCMD_REQUIRE(t.density.size() >= 2, "density table too short");
  SDCMD_REQUIRE(t.embed.size() >= 2, "embedding table too short");
  SDCMD_REQUIRE(t.cutoff > 0.0, "cutoff must be positive");
  return t;
}

}  // namespace

TabulatedEam::TabulatedEam(EamTables tables)
    : tables_(validated(std::move(tables))),
      pair_spline_(0.0, tables_.dr, tables_.pair),
      density_spline_(0.0, tables_.dr, tables_.density),
      embed_spline_(0.0, tables_.drho, tables_.embed) {}

TabulatedEam TabulatedEam::from_analytic(const EamPotential& source,
                                         std::size_t nr, std::size_t nrho,
                                         double rho_max) {
  SDCMD_REQUIRE(nr >= 2 && nrho >= 2, "need at least two samples per grid");
  SDCMD_REQUIRE(rho_max > 0.0, "rho_max must be positive");

  EamTables t;
  t.label = source.name();
  t.cutoff = source.cutoff();
  t.dr = t.cutoff / static_cast<double>(nr - 1);
  t.drho = rho_max / static_cast<double>(nrho - 1);
  t.pair.resize(nr);
  t.density.resize(nr);
  t.embed.resize(nrho);

  double unused;
  for (std::size_t i = 0; i < nr; ++i) {
    // Analytic pair forms may diverge at r = 0; start the first sample a
    // hair inside the grid. No physical pair ever lands there.
    const double r = i == 0 ? 1e-6 : t.dr * static_cast<double>(i);
    source.pair(r, t.pair[i], unused);
    source.density(r, t.density[i], unused);
  }
  for (std::size_t i = 0; i < nrho; ++i) {
    source.embed(t.drho * static_cast<double>(i), t.embed[i], unused);
  }
  return TabulatedEam(std::move(t));
}

void TabulatedEam::pair(double r, double& energy, double& dvdr) const {
  if (r >= tables_.cutoff) {
    energy = 0.0;
    dvdr = 0.0;
    return;
  }
  pair_spline_.evaluate(r, energy, dvdr);
}

void TabulatedEam::density(double r, double& phi, double& dphidr) const {
  if (r >= tables_.cutoff) {
    phi = 0.0;
    dphidr = 0.0;
    return;
  }
  density_spline_.evaluate(r, phi, dphidr);
}

void TabulatedEam::embed(double rho, double& f, double& dfdrho) const {
  embed_spline_.evaluate(rho, f, dfdrho);
}

const EamSplineTables* TabulatedEam::spline_tables() const {
  views_.pair = pair_spline_.view();
  views_.density = density_spline_.view();
  views_.embed = embed_spline_.view();
  views_.pair_packed = pair_spline_.packed_view();
  views_.density_packed = density_spline_.packed_view();
  views_.embed_packed = embed_spline_.packed_view();
  return &views_;
}

}  // namespace sdcmd
