#include "potential/johnson.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sdcmd {

JohnsonEam::JohnsonEam(JohnsonParams params) : p_(std::move(params)) {
  SDCMD_REQUIRE(p_.cutoff > 0.0, "cutoff must be positive");
  SDCMD_REQUIRE(p_.taper_width > 0.0 && p_.taper_width < p_.cutoff,
                "taper width must lie inside the cutoff");
  SDCMD_REQUIRE(p_.r0 > 0.0, "r0 must be positive");
  SDCMD_REQUIRE(p_.rho0 > 0.0, "rho0 must be positive");
  SDCMD_REQUIRE(p_.n > 0.0, "embedding exponent must be positive");
}

void JohnsonEam::taper(double r, double& t, double& dtdr) const {
  const double start = p_.cutoff - p_.taper_width;
  if (r <= start) {
    t = 1.0;
    dtdr = 0.0;
    return;
  }
  if (r >= p_.cutoff) {
    t = 0.0;
    dtdr = 0.0;
    return;
  }
  // x runs 0 -> 1 over the taper window; quintic smoothstep has zero first
  // and second derivative at both ends, so forces stay smooth.
  const double x = (r - start) / p_.taper_width;
  const double s = x * x * x * (x * (15.0 - 6.0 * x) - 10.0);  // -smoothstep
  t = 1.0 + s;
  dtdr = x * x * (x * (60.0 - 30.0 * x) - 30.0) / p_.taper_width;
}

void JohnsonEam::pair(double r, double& energy, double& dvdr) const {
  if (r >= p_.cutoff) {
    energy = 0.0;
    dvdr = 0.0;
    return;
  }
  const double e = p_.a * std::exp(-p_.gamma * (r / p_.r0 - 1.0));
  const double dedr = -p_.gamma / p_.r0 * e;
  double t, dtdr;
  taper(r, t, dtdr);
  energy = e * t;
  dvdr = dedr * t + e * dtdr;
}

void JohnsonEam::density(double r, double& phi, double& dphidr) const {
  if (r >= p_.cutoff) {
    phi = 0.0;
    dphidr = 0.0;
    return;
  }
  const double e = p_.fe * std::exp(-p_.chi * (r / p_.r0 - 1.0));
  const double dedr = -p_.chi / p_.r0 * e;
  double t, dtdr;
  taper(r, t, dtdr);
  phi = e * t;
  dphidr = dedr * t + e * dtdr;
}

void JohnsonEam::embed(double rho, double& f, double& dfdrho) const {
  if (rho <= 0.0) {
    f = 0.0;
    dfdrho = 0.0;
    return;
  }
  const double x = rho / p_.rho0;
  const double xn = std::pow(x, p_.n);
  const double lnx = std::log(x);
  f = -p_.ec * (1.0 - p_.n * lnx) * xn;
  // dF/drho = -Ec * n/rho * xn * (-n * lnx) = Ec n^2 lnx xn / rho
  dfdrho = p_.ec * p_.n * p_.n * lnx * xn / rho;
}

}  // namespace sdcmd
