// Potential interfaces.
//
// Two families, mirroring the paper's Section I comparison:
//
//  * PairPotential - the classic "one computational phase" short-range
//    model (Lennard-Jones, Morse). Energy is a sum over pairs.
//
//  * EamPotential - the embedded atom method (Daw & Baskes), the paper's
//    subject. Energy is
//        E = sum_i F(rho_i) + 1/2 sum_{i != j} V(r_ij),
//        rho_i = sum_{j != i} phi(r_ij)                     [paper eq. (1)]
//    and force evaluation runs in the three phases the paper describes:
//    density accumulation, embedding evaluation, force accumulation
//    [paper eq. (2)].
//
// All evaluate methods return the value and the radial derivative in one
// call: the force kernels always need both, and splitting them would double
// the table lookups in the tabulated implementation.
#pragma once

#include <string>

#include "potential/cubic_spline.hpp"

namespace sdcmd {

/// Flattened spline coefficients of a tabulated EAM potential, for
/// devirtualized force-kernel inner loops (no virtual dispatch per pair).
/// Analytic potentials expose no tables and keep the virtual path.
struct EamSplineTables {
  SplineView pair;
  SplineView density;
  SplineView embed;
  // Interval-indexed (interleaved) duplicates of the same coefficients for
  // SIMD lanes: one contiguous 4-coefficient load per evaluation instead of
  // four gathers. Same knots, same arithmetic; see PackedSplineView.
  PackedSplineView pair_packed;
  PackedSplineView density_packed;
  PackedSplineView embed_packed;

  bool valid() const {
    return pair.valid() && density.valid() && embed.valid();
  }

  bool packed_valid() const {
    return pair_packed.valid() && density_packed.valid() &&
           embed_packed.valid();
  }
};

/// A radially symmetric pair interaction, valid for r in (0, cutoff].
class PairPotential {
 public:
  virtual ~PairPotential() = default;

  /// Interaction range; pairs beyond it contribute nothing.
  virtual double cutoff() const = 0;

  /// Pair energy V(r) and derivative dV/dr at separation r <= cutoff.
  virtual void evaluate(double r, double& energy, double& dvdr) const = 0;

  virtual std::string name() const = 0;
};

/// Single-species embedded atom method potential.
class EamPotential {
 public:
  virtual ~EamPotential() = default;

  /// Range of both the pair term and the density function: neighbor lists
  /// built with this cutoff see every interacting pair.
  virtual double cutoff() const = 0;

  /// Pair term V(r) and dV/dr.
  virtual void pair(double r, double& energy, double& dvdr) const = 0;

  /// Density contribution phi(r) and d(phi)/dr one neighbor at distance r
  /// donates to the host atom's electron density.
  virtual void density(double r, double& phi, double& dphidr) const = 0;

  /// Embedding energy F(rho) and dF/drho.
  virtual void embed(double rho, double& f, double& dfdrho) const = 0;

  /// Flattened spline tables for devirtualized inner loops, or nullptr for
  /// analytic potentials (the kernels then evaluate through the virtual
  /// interface). The returned pointer is owned by the potential and stays
  /// valid for its lifetime.
  virtual const EamSplineTables* spline_tables() const { return nullptr; }

  virtual std::string name() const = 0;
};

}  // namespace sdcmd
