// Truncated (optionally shifted) Lennard-Jones 12-6 pair potential.
//
// Serves as the paper's "pair-wise potential" baseline: the bench
// bench_eam_vs_pair uses it to reproduce the Section I claim that EAM costs
// roughly twice the pair-potential workload.
#pragma once

#include "potential/potential.hpp"

namespace sdcmd {

class LennardJones final : public PairPotential {
 public:
  /// V(r) = 4 eps [ (sigma/r)^12 - (sigma/r)^6 ]  for r <= rc.
  /// When `shift` is true the potential is shifted so V(rc) = 0 (continuous
  /// energy at the cutoff; the force retains the usual truncation jump).
  LennardJones(double epsilon, double sigma, double cutoff, bool shift = true);

  double cutoff() const override { return cutoff_; }
  void evaluate(double r, double& energy, double& dvdr) const override;
  std::string name() const override { return "lennard-jones"; }

  double epsilon() const { return epsilon_; }
  double sigma() const { return sigma_; }

 private:
  double epsilon_;
  double sigma_;
  double cutoff_;
  double shift_;
};

}  // namespace sdcmd
