#include "neighbor/cell_list.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sdcmd {

CellList::CellList(const Box& box, double min_cell_size) : box_(box) {
  SDCMD_REQUIRE(min_cell_size > 0.0, "cell size must be positive");
  for (int d = 0; d < 3; ++d) {
    if (box.periodic(d)) {
      SDCMD_REQUIRE(box.length(d) >= 2.0 * min_cell_size,
                    "periodic box dimension shorter than twice the "
                    "interaction range; minimum image is invalid");
    }
    n_[d] = std::max(1, static_cast<int>(box.length(d) / min_cell_size));
    cell_len_[d] = box.length(d) / n_[d];
  }
  build_stencils();
}

std::size_t CellList::flat_index(int ix, int iy, int iz) const {
  return (static_cast<std::size_t>(ix) * n_[1] + iy) * n_[2] + iz;
}

std::size_t CellList::cell_of(const Vec3& r) const {
  const Vec3 w = box_.wrap(r);
  int idx[3];
  for (int d = 0; d < 3; ++d) {
    auto i = static_cast<int>((w[d] - box_.lo()[d]) / cell_len_[d]);
    idx[d] = std::clamp(i, 0, n_[d] - 1);
  }
  return flat_index(idx[0], idx[1], idx[2]);
}

void CellList::build(std::span<const Vec3> positions) {
  const std::size_t cells = cell_count();
  std::vector<std::uint32_t> counts(cells, 0);
  std::vector<std::uint32_t> cell_of_atom(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto c = static_cast<std::uint32_t>(cell_of(positions[i]));
    cell_of_atom[i] = c;
    ++counts[c];
  }

  cell_start_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  }

  cell_atoms_.resize(positions.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    cell_atoms_[cursor[cell_of_atom[i]]++] = static_cast<std::uint32_t>(i);
  }
}

std::span<const std::uint32_t> CellList::atoms_in(std::size_t cell) const {
  SDCMD_REQUIRE(cell < cell_count(), "cell index out of range");
  const auto begin = cell_start_[cell];
  const auto end = cell_start_[cell + 1];
  return {cell_atoms_.data() + begin, cell_atoms_.data() + end};
}

const std::vector<std::size_t>& CellList::stencil(std::size_t cell) const {
  SDCMD_REQUIRE(cell < cell_count(), "cell index out of range");
  return stencils_[cell];
}

void CellList::build_stencils() {
  stencils_.assign(cell_count(), {});
  for (int ix = 0; ix < n_[0]; ++ix) {
    for (int iy = 0; iy < n_[1]; ++iy) {
      for (int iz = 0; iz < n_[2]; ++iz) {
        auto& list = stencils_[flat_index(ix, iy, iz)];
        for (int dx = -1; dx <= 1; ++dx) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dz = -1; dz <= 1; ++dz) {
              int jx = ix + dx, jy = iy + dy, jz = iz + dz;
              bool valid = true;
              int idx[3] = {jx, jy, jz};
              for (int d = 0; d < 3; ++d) {
                if (idx[d] < 0 || idx[d] >= n_[d]) {
                  if (box_.periodic(d)) {
                    idx[d] = (idx[d] + n_[d]) % n_[d];
                  } else {
                    valid = false;
                    break;
                  }
                }
              }
              if (!valid) continue;
              list.push_back(flat_index(idx[0], idx[1], idx[2]));
            }
          }
        }
        // Narrow periodic grids wrap several stencil offsets onto the same
        // cell; deduplicate so pair enumeration never double-counts.
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
      }
    }
  }
}

}  // namespace sdcmd
