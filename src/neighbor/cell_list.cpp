#include "neighbor/cell_list.hpp"

#include <algorithm>
#include <cmath>

#include <omp.h>

#include "common/error.hpp"
#include "common/threads.hpp"

namespace sdcmd {

namespace {
/// Below this atom count the counting sort runs serially: the parallel
/// path's barriers cost more than the walk it saves.
constexpr std::size_t kParallelBinThreshold = 2048;
}  // namespace

CellList::CellList(const Box& box, double min_cell_size)
    : box_(box), min_cell_size_(min_cell_size) {
  SDCMD_REQUIRE(min_cell_size > 0.0, "cell size must be positive");
  set_geometry(box);
  build_stencils();
}

bool CellList::set_geometry(const Box& box) {
  std::array<int, 3> n;
  for (int d = 0; d < 3; ++d) {
    if (box.periodic(d)) {
      SDCMD_REQUIRE(box.length(d) >= 2.0 * min_cell_size_,
                    "periodic box dimension shorter than twice the "
                    "interaction range; minimum image is invalid");
    }
    n[d] = std::max(1, static_cast<int>(box.length(d) / min_cell_size_));
  }
  const bool reshaped = n != n_;
  n_ = n;
  box_ = box;
  for (int d = 0; d < 3; ++d) {
    cell_len_[d] = box.length(d) / n_[d];
  }
  return reshaped;
}

bool CellList::update_box(const Box& box) {
  const bool reshaped = set_geometry(box);
  if (reshaped) build_stencils();
  return reshaped;
}

std::size_t CellList::flat_index(int ix, int iy, int iz) const {
  return (static_cast<std::size_t>(ix) * n_[1] + iy) * n_[2] + iz;
}

std::size_t CellList::cell_of(const Vec3& r) const {
  const Vec3 w = box_.wrap(r);
  int idx[3];
  for (int d = 0; d < 3; ++d) {
    auto i = static_cast<int>((w[d] - box_.lo()[d]) / cell_len_[d]);
    idx[d] = std::clamp(i, 0, n_[d] - 1);
  }
  return flat_index(idx[0], idx[1], idx[2]);
}

void CellList::build(std::span<const Vec3> positions, bool parallel) {
  cell_of_atom_.resize(positions.size());
  cell_atoms_.resize(positions.size());
  cell_start_.assign(cell_count() + 1, 0);
  if (parallel && positions.size() >= kParallelBinThreshold &&
      max_threads() > 1) {
    build_parallel(positions);
  } else {
    build_serial(positions);
  }
}

void CellList::build_serial(std::span<const Vec3> positions) {
  const std::size_t cells = cell_count();
  // Histogram slice 0 doubles as the per-cell write cursor.
  if (hist_.size() < cells) hist_.resize(cells);
  std::fill_n(hist_.begin(), cells, 0u);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto c = static_cast<std::uint32_t>(cell_of(positions[i]));
    cell_of_atom_[i] = c;
    ++hist_[c];
  }
  for (std::size_t c = 0; c < cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + hist_[c];
    hist_[c] = cell_start_[c];
  }
  for (std::size_t i = 0; i < positions.size(); ++i) {
    cell_atoms_[hist_[cell_of_atom_[i]]++] = static_cast<std::uint32_t>(i);
  }
}

void CellList::build_parallel(std::span<const Vec3> positions) {
  const std::size_t cells = cell_count();
  const std::size_t n = positions.size();
  const auto slots = static_cast<std::size_t>(max_threads());
  if (hist_.size() < slots * cells) hist_.resize(slots * cells);
#pragma omp parallel
  {
    const auto t = static_cast<std::size_t>(thread_id());
    const auto team = static_cast<std::size_t>(omp_get_num_threads());
    // Contiguous ascending chunks make the scatter below reproduce the
    // serial order (atoms ascending within each cell) for any team size.
    const std::size_t chunk = (n + team - 1) / team;
    const std::size_t begin = std::min(t * chunk, n);
    const std::size_t end = std::min(begin + chunk, n);
    std::uint32_t* mine = hist_.data() + t * cells;
    std::fill_n(mine, cells, 0u);  // first-touch: each thread its own slice
    for (std::size_t i = begin; i < end; ++i) {
      const auto c = static_cast<std::uint32_t>(cell_of(positions[i]));
      cell_of_atom_[i] = c;
      ++mine[c];
    }
#pragma omp barrier
#pragma omp master
    {
      // Exclusive scan over (cell, thread): each histogram slot becomes
      // that thread's write cursor for the cell.
      std::uint32_t running = 0;
      for (std::size_t c = 0; c < cells; ++c) {
        cell_start_[c] = running;
        for (std::size_t t2 = 0; t2 < team; ++t2) {
          const std::uint32_t count = hist_[t2 * cells + c];
          hist_[t2 * cells + c] = running;
          running += count;
        }
      }
      cell_start_[cells] = running;
    }
#pragma omp barrier
    for (std::size_t i = begin; i < end; ++i) {
      cell_atoms_[mine[cell_of_atom_[i]]++] = static_cast<std::uint32_t>(i);
    }
  }
}

std::span<const std::uint32_t> CellList::atoms_in(std::size_t cell) const {
  SDCMD_REQUIRE(cell < cell_count(), "cell index out of range");
  const auto begin = cell_start_[cell];
  const auto end = cell_start_[cell + 1];
  return {cell_atoms_.data() + begin, cell_atoms_.data() + end};
}

std::span<const std::size_t> CellList::stencil(std::size_t cell) const {
  SDCMD_REQUIRE(cell < cell_count(), "cell index out of range");
  return {stencil_cells_.data() + stencil_start_[cell],
          stencil_cells_.data() + stencil_start_[cell + 1]};
}

std::span<const std::size_t> CellList::half_stencil(std::size_t cell) const {
  SDCMD_REQUIRE(cell < cell_count(), "cell index out of range");
  return {half_cells_.data() + half_start_[cell],
          half_cells_.data() + half_start_[cell + 1]};
}

void CellList::build_stencils() {
  ++stencil_rebuilds_;
  const std::size_t cells = cell_count();
  stencil_start_.assign(cells + 1, 0);
  half_start_.assign(cells + 1, 0);
  stencil_cells_.clear();
  half_cells_.clear();
  stencil_cells_.reserve(cells * 27);
  half_cells_.reserve(cells * 13);
  std::vector<std::size_t> scratch;
  scratch.reserve(27);
  for (int ix = 0; ix < n_[0]; ++ix) {
    for (int iy = 0; iy < n_[1]; ++iy) {
      for (int iz = 0; iz < n_[2]; ++iz) {
        const std::size_t cell = flat_index(ix, iy, iz);
        scratch.clear();
        for (int dx = -1; dx <= 1; ++dx) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dz = -1; dz <= 1; ++dz) {
              int idx[3] = {ix + dx, iy + dy, iz + dz};
              bool valid = true;
              for (int d = 0; d < 3; ++d) {
                if (idx[d] < 0 || idx[d] >= n_[d]) {
                  if (box_.periodic(d)) {
                    idx[d] = (idx[d] + n_[d]) % n_[d];
                  } else {
                    valid = false;
                    break;
                  }
                }
              }
              if (!valid) continue;
              scratch.push_back(flat_index(idx[0], idx[1], idx[2]));
            }
          }
        }
        // Narrow periodic grids wrap several stencil offsets onto the same
        // cell; deduplicate so pair enumeration never double-counts.
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        stencil_cells_.insert(stencil_cells_.end(), scratch.begin(),
                              scratch.end());
        stencil_start_[cell + 1] =
            static_cast<std::uint32_t>(stencil_cells_.size());
        // Full stencils are symmetric, so keeping only the
        // greater-flat-index side assigns every adjacent cell pair to
        // exactly one owner (and drops the cell itself).
        for (std::size_t other : scratch) {
          if (other > cell) half_cells_.push_back(other);
        }
        half_start_[cell + 1] =
            static_cast<std::uint32_t>(half_cells_.size());
      }
    }
  }
}

std::size_t CellList::memory_bytes() const {
  return cell_start_.size() * sizeof(std::uint32_t) +
         cell_atoms_.size() * sizeof(std::uint32_t) +
         stencil_start_.size() * sizeof(std::uint32_t) +
         stencil_cells_.size() * sizeof(std::size_t) +
         half_start_.size() * sizeof(std::uint32_t) +
         half_cells_.size() * sizeof(std::size_t) +
         cell_of_atom_.size() * sizeof(std::uint32_t) +
         hist_.size() * sizeof(std::uint32_t);
}

}  // namespace sdcmd
