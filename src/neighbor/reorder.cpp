#include "neighbor/reorder.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/random.hpp"
#include "neighbor/cell_list.hpp"

namespace sdcmd {

std::vector<std::uint32_t> spatial_sort_permutation(
    const Box& box, std::span<const Vec3> positions, double cell_size) {
  CellList cells(box, cell_size);
  cells.build(positions);
  std::vector<std::uint32_t> perm;
  perm.reserve(positions.size());
  for (std::size_t c = 0; c < cells.cell_count(); ++c) {
    const auto atoms = cells.atoms_in(c);
    perm.insert(perm.end(), atoms.begin(), atoms.end());
  }
  SDCMD_REQUIRE(perm.size() == positions.size(),
                "cell sweep must visit every atom exactly once");
  return perm;
}

namespace {

/// Spread the low 21 bits of v so each lands 3 positions apart.
std::uint64_t spread_bits_3(std::uint64_t v) {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

}  // namespace

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y,
                            std::uint32_t z) {
  return spread_bits_3(x) | (spread_bits_3(y) << 1) |
         (spread_bits_3(z) << 2);
}

std::vector<std::uint32_t> morton_sort_permutation(
    const Box& box, std::span<const Vec3> positions, double cell_size) {
  SDCMD_REQUIRE(cell_size > 0.0, "cell size must be positive");
  // Cell coordinates per atom (same grid shape the cell list would use).
  int n[3];
  double len[3];
  for (int d = 0; d < 3; ++d) {
    n[d] = std::max(1, static_cast<int>(box.length(d) / cell_size));
    len[d] = box.length(d) / n[d];
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(
      positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 w = box.wrap(positions[i]);
    std::uint32_t c[3];
    for (int d = 0; d < 3; ++d) {
      auto idx = static_cast<int>((w[d] - box.lo()[d]) / len[d]);
      c[d] = static_cast<std::uint32_t>(std::clamp(idx, 0, n[d] - 1));
    }
    keyed[i] = {morton_encode(c[0], c[1], c[2]),
                static_cast<std::uint32_t>(i)};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::uint32_t> perm(positions.size());
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    perm[i] = keyed[i].second;
  }
  return perm;
}

std::vector<std::uint32_t> inverse_permutation(
    std::span<const std::uint32_t> perm) {
  std::vector<std::uint32_t> inv(perm.size());
  for (std::uint32_t i = 0; i < perm.size(); ++i) {
    inv[perm[i]] = i;
  }
  return inv;
}

void sort_neighbor_sublists(std::vector<std::size_t> const& neigh_index,
                            std::vector<std::uint32_t>& neigh_list) {
  SDCMD_REQUIRE(!neigh_index.empty(), "CSR index array missing sentinel");
  for (std::size_t i = 0; i + 1 < neigh_index.size(); ++i) {
    std::sort(
        neigh_list.begin() + static_cast<std::ptrdiff_t>(neigh_index[i]),
        neigh_list.begin() + static_cast<std::ptrdiff_t>(neigh_index[i + 1]));
  }
}

FragmentedNeighborList::FragmentedNeighborList(const NeighborList& packed,
                                               std::uint64_t scatter_seed) {
  const std::size_t n = packed.atom_count();
  blocks_.resize(n);
  meta_.resize(n);
  meta_slot_.resize(n);

  // Scatter the metadata slots with a Fisher-Yates shuffle so that
  // consecutive atoms read metadata from unrelated cache lines.
  std::vector<std::uint32_t> slots(n);
  for (std::uint32_t i = 0; i < n; ++i) slots[i] = i;
  Xoshiro256 rng(scatter_seed);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(slots[i - 1], slots[rng.below(i)]);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto nbrs = packed.neighbors(i);
    auto block = std::make_unique<std::uint32_t[]>(std::max<std::size_t>(
        nbrs.size(), 1));
    std::copy(nbrs.begin(), nbrs.end(), block.get());
    blocks_[i] = std::move(block);
    meta_slot_[i] = slots[i];
    meta_[slots[i]] = {static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(nbrs.size())};
  }
}

std::size_t FragmentedNeighborList::memory_bytes() const {
  std::size_t bytes = meta_.size() * sizeof(Meta) +
                      meta_slot_.size() * sizeof(std::uint32_t) +
                      blocks_.size() * sizeof(void*);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    bytes += std::max<std::size_t>(meta_[meta_slot_[i]].len, 1) *
             sizeof(std::uint32_t);
  }
  return bytes;
}

}  // namespace sdcmd
