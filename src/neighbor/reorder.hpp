// Data-reordering optimizations (the paper's Section II.D).
//
// Three pieces, matching the paper:
//  1. Spatially sort atoms (cell-major order) so that loop-adjacent atoms
//     are memory-adjacent -> sequential access on rho[] / force[].
//  2. Sort each atom's neighbor sublist ascending (NeighborListConfig
//     ::sort_neighbors does this during the build; `sort_neighbor_sublists`
//     retrofits an existing list) -> quasi-sequential gathers on rho[j].
//  3. Keep neighbor metadata (neighindex/neighlen) as dense, regular arrays.
//     The paper contrasts this with irregular storage; FragmentedNeighborList
//     reproduces the *unoptimized* per-atom-allocation layout so the
//     bench_reorder harness can measure the difference.
#pragma once

#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"
#include "neighbor/neighbor_list.hpp"

namespace sdcmd {

/// Permutation `perm` such that visiting atoms in order perm[0], perm[1],...
/// walks the cell grid cell by cell. Applying it (new_index -> old_index)
/// gives the paper's "sequence accessing on irregular array" layout.
std::vector<std::uint32_t> spatial_sort_permutation(
    const Box& box, std::span<const Vec3> positions, double cell_size);

/// Alternative ordering: sort atoms along a Morton (Z-order) space-filling
/// curve over the cell grid. Z-order keeps 3-D-adjacent cells closer in
/// memory than the row-major cell sweep, at the cost of a slightly more
/// expensive sort; bench_ablation can compare the two.
std::vector<std::uint32_t> morton_sort_permutation(
    const Box& box, std::span<const Vec3> positions, double cell_size);

/// Interleave the low 21 bits of three coordinates into a 63-bit Morton
/// code (exposed for tests).
std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y,
                            std::uint32_t z);

/// Reorder `values` so new[i] = old[perm[i]].
template <typename T>
std::vector<T> apply_permutation(const std::vector<T>& values,
                                 std::span<const std::uint32_t> perm) {
  std::vector<T> out;
  out.reserve(values.size());
  for (std::uint32_t old_index : perm) {
    out.push_back(values[old_index]);
  }
  return out;
}

/// Inverse permutation: inv[perm[i]] = i.
std::vector<std::uint32_t> inverse_permutation(
    std::span<const std::uint32_t> perm);

/// Sort each atom's neighbor sublist ascending, in place.
void sort_neighbor_sublists(std::vector<std::size_t> const& neigh_index,
                            std::vector<std::uint32_t>& neigh_list);

/// Deliberately cache-hostile neighbor storage: each atom's sublist is a
/// separately heap-allocated block reached through a pointer array, and the
/// per-atom metadata lives in an index-scattered table. This models the
/// pre-optimization XMD layout the paper improved on; only the reordering
/// bench uses it.
class FragmentedNeighborList {
 public:
  /// Copy an existing packed list into fragmented storage. `scatter_seed`
  /// shuffles the metadata table so metadata lookups stride irregularly.
  FragmentedNeighborList(const NeighborList& packed,
                         std::uint64_t scatter_seed = 0x5eed);

  std::size_t atom_count() const { return blocks_.size(); }

  std::span<const std::uint32_t> neighbors(std::size_t i) const {
    const Meta& m = meta_[meta_slot_[i]];
    return {blocks_[m.block].get(), m.len};
  }

  /// Total heap bytes, for the memory comparison table.
  std::size_t memory_bytes() const;

 private:
  struct Meta {
    std::uint32_t block;
    std::uint32_t len;
  };
  std::vector<std::unique_ptr<std::uint32_t[]>> blocks_;
  std::vector<Meta> meta_;
  std::vector<std::uint32_t> meta_slot_;  // atom -> scattered meta index
};

}  // namespace sdcmd
