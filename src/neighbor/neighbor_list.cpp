#include "neighbor/neighbor_list.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sdcmd {

NeighborList::NeighborList(const Box& box, NeighborListConfig config)
    : box_(box),
      config_(config),
      cells_(box, config.cutoff + config.skin) {
  SDCMD_REQUIRE(config.cutoff > 0.0, "cutoff must be positive");
  SDCMD_REQUIRE(config.skin >= 0.0, "skin must be non-negative");
}

void NeighborList::build(std::span<const Vec3> positions) {
  const std::size_t n = positions.size();
  const double range = config_.cutoff + config_.skin;
  const double range2 = range * range;

  cells_.build(positions);

  // Pass 1: count neighbors per atom so the CSR arrays are exact-sized.
  neigh_len_.assign(n, 0);
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ci = cells_.cell_of(positions[i]);
    std::uint32_t count = 0;
    for (std::size_t cj : cells_.stencil(ci)) {
      for (std::uint32_t j : cells_.atoms_in(cj)) {
        if (config_.mode == NeighborMode::Half ? (j <= i) : (j == i)) {
          continue;
        }
        if (box_.distance2(positions[i], positions[j]) < range2) ++count;
      }
    }
    neigh_len_[i] = count;
  }

  neigh_index_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    neigh_index_[i + 1] = neigh_index_[i] + neigh_len_[i];
  }
  // Reserve with slack so steady-state rebuilds (pair counts drift by a
  // few percent as atoms cross the skin) stay reallocation-free.
  const std::size_t needed = neigh_index_[n];
  if (neigh_list_.capacity() < needed) {
    neigh_list_.reserve(needed + needed / 8);
  }
  neigh_list_.resize(needed);

  // Pass 2: fill.
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ci = cells_.cell_of(positions[i]);
    std::size_t cursor = neigh_index_[i];
    for (std::size_t cj : cells_.stencil(ci)) {
      for (std::uint32_t j : cells_.atoms_in(cj)) {
        if (config_.mode == NeighborMode::Half ? (j <= i) : (j == i)) {
          continue;
        }
        if (box_.distance2(positions[i], positions[j]) < range2) {
          neigh_list_[cursor++] = j;
        }
      }
    }
    if (config_.sort_neighbors) {
      std::sort(neigh_list_.begin() + static_cast<std::ptrdiff_t>(
                                          neigh_index_[i]),
                neigh_list_.begin() + static_cast<std::ptrdiff_t>(cursor));
    }
  }

  positions_at_build_.assign(positions.begin(), positions.end());
}

bool NeighborList::needs_rebuild(std::span<const Vec3> positions) const {
  if (positions.size() != positions_at_build_.size()) return true;
  const double limit = config_.skin * 0.5;
  const double limit2 = limit * limit;
  // Early exit on the FIRST atom past skin/2: in the common
  // must-rebuild case this touches a handful of atoms, not all N.
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (box_.distance2(positions[i], positions_at_build_[i]) > limit2) {
      return true;
    }
  }
  return false;
}

double NeighborList::mean_neighbors() const {
  if (neigh_len_.empty()) return 0.0;
  return static_cast<double>(neigh_list_.size()) /
         static_cast<double>(neigh_len_.size());
}

std::size_t NeighborList::memory_bytes() const {
  return neigh_index_.size() * sizeof(std::size_t) +
         neigh_len_.size() * sizeof(std::uint32_t) +
         neigh_list_.size() * sizeof(std::uint32_t) +
         positions_at_build_.size() * sizeof(Vec3);
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> brute_force_pairs(
    const Box& box, std::span<const Vec3> positions, double cutoff) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  const double cut2 = cutoff * cutoff;
  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    for (std::uint32_t j = i + 1; j < positions.size(); ++j) {
      if (box.distance2(positions[i], positions[j]) < cut2) {
        pairs.emplace_back(i, j);
      }
    }
  }
  return pairs;
}

}  // namespace sdcmd
