#include "neighbor/neighbor_list.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace sdcmd {

NeighborList::NeighborList(const Box& box, NeighborListConfig config)
    : box_(box),
      config_(config),
      cells_(box, config.cutoff + config.skin) {
  SDCMD_REQUIRE(config.cutoff > 0.0, "cutoff must be positive");
  SDCMD_REQUIRE(config.skin >= 0.0, "skin must be non-negative");
  SDCMD_REQUIRE(config.pad_width >= 0, "pad width must be non-negative");
}

// Pair-enumeration cores, specialized per mode so the hot loops carry no
// per-pair mode test:
//   Half + half-stencil : intra-cell j > i, plus every atom of the <=13
//                         owned (greater-flat-index) neighbor cells. Each
//                         cross-cell pair is stored under the atom in the
//                         lower-index cell; intra-cell pairs under min(i,j).
//   Half + legacy       : full stencil scan, skip j <= i (every pair under
//                         min(i, j) - the pre-pipeline behavior).
//   Full                : full stencil scan, skip only j == i.

template <NeighborMode Mode, bool HalfStencil>
void NeighborList::count_pass(std::span<const Vec3> positions,
                              double range2) {
  const std::size_t n = positions.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ci = cells_.binned_cell(i);
    std::uint32_t count = 0;
    if constexpr (Mode == NeighborMode::Half && HalfStencil) {
      for (std::uint32_t j : cells_.atoms_in(ci)) {
        if (j <= i) continue;
        if (box_.distance2(positions[i], positions[j]) < range2) ++count;
      }
      for (std::size_t cj : cells_.half_stencil(ci)) {
        for (std::uint32_t j : cells_.atoms_in(cj)) {
          if (box_.distance2(positions[i], positions[j]) < range2) ++count;
        }
      }
    } else {
      for (std::size_t cj : cells_.stencil(ci)) {
        for (std::uint32_t j : cells_.atoms_in(cj)) {
          if (Mode == NeighborMode::Half ? (j <= i) : (j == i)) continue;
          if (box_.distance2(positions[i], positions[j]) < range2) ++count;
        }
      }
    }
    neigh_len_[i] = count;
  }
}

template <NeighborMode Mode, bool HalfStencil>
void NeighborList::fill_pass(std::span<const Vec3> positions,
                             double range2) {
  const std::size_t n = positions.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ci = cells_.binned_cell(i);
    std::size_t cursor = neigh_index_[i];
    if constexpr (Mode == NeighborMode::Half && HalfStencil) {
      for (std::uint32_t j : cells_.atoms_in(ci)) {
        if (j <= i) continue;
        if (box_.distance2(positions[i], positions[j]) < range2) {
          neigh_list_[cursor++] = j;
        }
      }
      for (std::size_t cj : cells_.half_stencil(ci)) {
        for (std::uint32_t j : cells_.atoms_in(cj)) {
          if (box_.distance2(positions[i], positions[j]) < range2) {
            neigh_list_[cursor++] = j;
          }
        }
      }
    } else {
      for (std::size_t cj : cells_.stencil(ci)) {
        for (std::uint32_t j : cells_.atoms_in(cj)) {
          if (Mode == NeighborMode::Half ? (j <= i) : (j == i)) continue;
          if (box_.distance2(positions[i], positions[j]) < range2) {
            neigh_list_[cursor++] = j;
          }
        }
      }
    }
    if (config_.sort_neighbors) {
      std::sort(
          neigh_list_.begin() + static_cast<std::ptrdiff_t>(neigh_index_[i]),
          neigh_list_.begin() + static_cast<std::ptrdiff_t>(cursor));
    }
  }
}

void NeighborList::build(std::span<const Vec3> positions) {
  const std::size_t n = positions.size();
  const double range = config_.cutoff + config_.skin;
  const double range2 = range * range;

  const double t0 = wall_time();
  cells_.build(positions, config_.parallel_bin);
  const double t1 = wall_time();

  // Pass 1: count neighbors per atom so the CSR arrays are exact-sized.
  // Every slot is written by the pass (static schedule matching the fill
  // pass and the kernels' sweep schedule), so growth is the only
  // allocation and zero-fill is unnecessary.
  neigh_len_.resize(n);
  if (config_.mode == NeighborMode::Full) {
    count_pass<NeighborMode::Full, false>(positions, range2);
  } else if (config_.half_stencil) {
    count_pass<NeighborMode::Half, true>(positions, range2);
  } else {
    count_pass<NeighborMode::Half, false>(positions, range2);
  }

  neigh_index_.resize(n + 1);
  neigh_index_[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    neigh_index_[i + 1] = neigh_index_[i] + neigh_len_[i];
  }
  // Reserve with slack so steady-state rebuilds (pair counts drift by a
  // few percent as atoms cross the skin) stay reallocation-free. With
  // padded tiles enabled the worst case per atom is pad_width - 1 extra
  // slots; fold that into the slack bound so the FIRST padded build (and
  // every rebuild after it) sizes both arrays once instead of letting the
  // 12.5% CSR heuristic silently reallocate under the padded copy.
  const std::size_t needed = neigh_index_[n];
  const std::size_t pad_slack =
      config_.pad_width > 1
          ? n * static_cast<std::size_t>(config_.pad_width - 1)
          : 0;
  if (neigh_list_.capacity() < needed) {
    neigh_list_.reserve(needed + needed / 8);
  }
  neigh_list_.resize(needed);
  if (config_.pad_width > 1 &&
      padded_list_.capacity() < needed + pad_slack) {
    padded_list_.reserve(needed + needed / 8 + pad_slack);
  }
  const double t2 = wall_time();

  // Pass 2: fill.
  if (config_.mode == NeighborMode::Full) {
    fill_pass<NeighborMode::Full, false>(positions, range2);
  } else if (config_.half_stencil) {
    fill_pass<NeighborMode::Half, true>(positions, range2);
  } else {
    fill_pass<NeighborMode::Half, false>(positions, range2);
  }
  if (config_.pad_width > 1) build_padded_tiles();

  positions_at_build_.assign(positions.begin(), positions.end());
  const double t3 = wall_time();

  ++stats_.builds;
  stats_.last_bin_seconds = t1 - t0;
  stats_.last_count_seconds = t2 - t1;
  stats_.last_fill_seconds = t3 - t2;
  stats_.bin_seconds += stats_.last_bin_seconds;
  stats_.count_seconds += stats_.last_count_seconds;
  stats_.fill_seconds += stats_.last_fill_seconds;
  stats_.stencil_rebuilds = cells_.stencil_rebuilds();
}

void NeighborList::build_padded_tiles() {
  // Each atom's padded block is its CSR sublist rounded up to a multiple
  // of pad_width, tail slots filled with the sentinel index atom_count().
  // SIMD loops walk whole blocks with no length test; sentinel lanes are
  // masked by an index compare, never by control flow.
  const std::size_t n = neigh_len_.size();
  const auto w = static_cast<std::size_t>(config_.pad_width);
  const std::uint32_t sentinel = pad_sentinel();
  tile_index_.resize(n + 1);
  tile_index_[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t padded = (neigh_len_[i] + w - 1) / w * w;
    tile_index_[i + 1] = tile_index_[i] + padded;
  }
  padded_list_.resize(tile_index_[n]);
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = neigh_index_[i];
    const std::size_t dst = tile_index_[i];
    const std::size_t len = neigh_len_[i];
    for (std::size_t k = 0; k < len; ++k) {
      padded_list_[dst + k] = neigh_list_[src + k];
    }
    const std::size_t end = tile_index_[i + 1] - dst;
    for (std::size_t k = len; k < end; ++k) {
      padded_list_[dst + k] = sentinel;
    }
  }
}

bool NeighborList::update_box(const Box& box) {
  box_ = box;
  const bool reshaped = cells_.update_box(box);
  if (reshaped) ++stats_.grid_reshapes;
  stats_.stencil_rebuilds = cells_.stencil_rebuilds();
  return reshaped;
}

bool NeighborList::config_compatible(const NeighborListConfig& other) const {
  return other.cutoff == config_.cutoff && other.skin == config_.skin &&
         other.mode == config_.mode &&
         other.sort_neighbors == config_.sort_neighbors &&
         other.half_stencil == config_.half_stencil &&
         other.parallel_bin == config_.parallel_bin &&
         other.pad_width == config_.pad_width;
}

bool NeighborList::needs_rebuild(std::span<const Vec3> positions) const {
  if (positions.size() != positions_at_build_.size()) return true;
  const double limit = config_.skin * 0.5;
  const double limit2 = limit * limit;
  // Early exit on the FIRST atom past skin/2: in the common
  // must-rebuild case this touches a handful of atoms, not all N.
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (box_.distance2(positions[i], positions_at_build_[i]) > limit2) {
      return true;
    }
  }
  return false;
}

double NeighborList::mean_neighbors() const {
  if (neigh_len_.empty()) return 0.0;
  const double stored = static_cast<double>(neigh_list_.size()) /
                        static_cast<double>(neigh_len_.size());
  // A half list stores each physical pair once, so each pair contributes
  // to two atoms' coordination but only one atom's sublist.
  return config_.mode == NeighborMode::Half ? 2.0 * stored : stored;
}

std::size_t NeighborList::memory_bytes() const {
  return neigh_index_.size() * sizeof(std::size_t) +
         neigh_len_.size() * sizeof(std::uint32_t) +
         neigh_list_.size() * sizeof(std::uint32_t) +
         tile_index_.size() * sizeof(std::size_t) +
         padded_list_.size() * sizeof(std::uint32_t) +
         positions_at_build_.size() * sizeof(Vec3) + cells_.memory_bytes();
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> brute_force_pairs(
    const Box& box, std::span<const Vec3> positions, double cutoff) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  const double cut2 = cutoff * cutoff;
  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    for (std::uint32_t j = i + 1; j < positions.size(); ++j) {
      if (box.distance2(positions[i], positions[j]) < cut2) {
        pairs.emplace_back(i, j);
      }
    }
  }
  return pairs;
}

}  // namespace sdcmd
