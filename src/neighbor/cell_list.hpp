// Linked-cell binning of atoms into a uniform grid.
//
// The grid cell edge is >= the requested interaction range, so all pairs
// within that range live in a cell and its 26 neighbors (fewer when the box
// is narrow; the stencil deduplicates wrapped cells). This is the substrate
// for Verlet-list construction and for the spatial atom reordering pass.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

class CellList {
 public:
  /// Grid over `box` with cell edges >= `min_cell_size` in every dimension.
  /// Periodic dimensions must span at least 2 * min_cell_size so the
  /// minimum-image convention is valid for the interaction range.
  CellList(const Box& box, double min_cell_size);

  /// Bin atoms. Positions outside the box are wrapped for binning only.
  void build(std::span<const Vec3> positions);

  int nx() const { return n_[0]; }
  int ny() const { return n_[1]; }
  int nz() const { return n_[2]; }
  std::size_t cell_count() const {
    return static_cast<std::size_t>(n_[0]) * n_[1] * n_[2];
  }

  /// Flat index of the cell containing `r` (wrapped into the box first).
  std::size_t cell_of(const Vec3& r) const;

  /// Atoms in a cell, CSR-style.
  std::span<const std::uint32_t> atoms_in(std::size_t cell) const;

  /// Flat indices of the (deduplicated) <=27-cell stencil around `cell`,
  /// including `cell` itself, honoring PBC wrapping.
  const std::vector<std::size_t>& stencil(std::size_t cell) const;

  std::size_t atom_count() const {
    return cell_atoms_.empty() ? 0 : cell_atoms_.size();
  }

  const Box& box() const { return box_; }

 private:
  std::size_t flat_index(int ix, int iy, int iz) const;
  void build_stencils();

  Box box_;
  std::array<int, 3> n_{1, 1, 1};
  Vec3 cell_len_;
  std::vector<std::uint32_t> cell_start_;   // size cells+1
  std::vector<std::uint32_t> cell_atoms_;   // atom ids grouped by cell
  std::vector<std::vector<std::size_t>> stencils_;  // per cell
};

}  // namespace sdcmd
