// Linked-cell binning of atoms into a uniform grid.
//
// The grid cell edge is >= the requested interaction range, so all pairs
// within that range live in a cell and its 26 neighbors (fewer when the box
// is narrow; the stencil deduplicates wrapped cells). This is the substrate
// for Verlet-list construction and for the spatial atom reordering pass.
//
// Steady-state discipline (ISSUE 5): binning runs as a parallel counting
// sort (per-thread histograms + prefix sum) into persistent member scratch,
// stencils live in one flat CSR table instead of per-cell vectors, and
// update_box() adapts the grid to a changed box in place - recomputing the
// stencils only when the grid *shape* changes. A barostat run therefore
// performs zero heap reconstructions once warm.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

class CellList {
 public:
  /// Grid over `box` with cell edges >= `min_cell_size` in every dimension.
  /// Periodic dimensions must span at least 2 * min_cell_size so the
  /// minimum-image convention is valid for the interaction range.
  CellList(const Box& box, double min_cell_size);

  /// Adapt to a changed box in place, reusing all storage. Stencils are
  /// recomputed only when the grid shape changes (the same validity
  /// requirements as the constructor apply). Returns true when the grid
  /// reshaped.
  bool update_box(const Box& box);

  /// Bin atoms. Positions outside the box are wrapped for binning only.
  /// The parallel path is a counting sort over per-thread histograms; its
  /// output is bit-identical to the serial path (atoms ascending within
  /// each cell) for any thread count.
  void build(std::span<const Vec3> positions, bool parallel = true);

  int nx() const { return n_[0]; }
  int ny() const { return n_[1]; }
  int nz() const { return n_[2]; }
  std::size_t cell_count() const {
    return static_cast<std::size_t>(n_[0]) * n_[1] * n_[2];
  }

  /// Flat index of the cell containing `r` (wrapped into the box first).
  std::size_t cell_of(const Vec3& r) const;

  /// Cell that build() binned atom `i` into (valid until the next build;
  /// saves the Verlet-list passes a wrap + grid lookup per atom).
  std::uint32_t binned_cell(std::size_t i) const { return cell_of_atom_[i]; }

  /// Atoms in a cell, CSR-style.
  std::span<const std::uint32_t> atoms_in(std::size_t cell) const;

  /// Flat indices of the (deduplicated) <=27-cell stencil around `cell`,
  /// including `cell` itself, honoring PBC wrapping.
  std::span<const std::size_t> stencil(std::size_t cell) const;

  /// Half stencil: the neighbors of `cell` with a strictly greater flat
  /// index (<=13 cells, self excluded). Full stencils are symmetric, so
  /// every adjacent unordered cell pair {a, b} appears in exactly one of
  /// the two half stencils - the invariant half-mode pair enumeration
  /// relies on (each cross-cell pair visited exactly once, intra-cell
  /// pairs handled separately with j > i).
  std::span<const std::size_t> half_stencil(std::size_t cell) const;

  std::size_t atom_count() const {
    return cell_atoms_.empty() ? 0 : cell_atoms_.size();
  }

  const Box& box() const { return box_; }

  /// Resident bytes of the cell arrays, stencil tables and binning scratch.
  std::size_t memory_bytes() const;

  /// Times the stencil tables were (re)computed: once at construction plus
  /// once per grid reshape.
  std::size_t stencil_rebuilds() const { return stencil_rebuilds_; }

 private:
  std::size_t flat_index(int ix, int iy, int iz) const;
  /// Recompute n_ / cell_len_ for `box`; returns true when n_ changed.
  bool set_geometry(const Box& box);
  void build_stencils();
  void build_serial(std::span<const Vec3> positions);
  void build_parallel(std::span<const Vec3> positions);

  Box box_;
  double min_cell_size_ = 0.0;
  std::array<int, 3> n_{1, 1, 1};
  Vec3 cell_len_;
  std::vector<std::uint32_t> cell_start_;   // size cells+1
  std::vector<std::uint32_t> cell_atoms_;   // atom ids grouped by cell
  // Stencils in flat CSR form: cells of stencil(c) live at
  // stencil_cells_[stencil_start_[c] .. stencil_start_[c+1]).
  std::vector<std::uint32_t> stencil_start_;      // size cells+1
  std::vector<std::size_t> stencil_cells_;
  std::vector<std::uint32_t> half_start_;         // size cells+1
  std::vector<std::size_t> half_cells_;
  // Persistent binning scratch (allocation-free once warm).
  std::vector<std::uint32_t> cell_of_atom_;  // atom -> cell
  std::vector<std::uint32_t> hist_;          // threads x cells histograms
  std::size_t stencil_rebuilds_ = 0;
};

}  // namespace sdcmd
