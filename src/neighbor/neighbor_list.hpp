// Verlet neighbor lists in the CSR layout of the paper's Figs. 1-2 / 7-8.
//
// A *half* list stores each pair (i, j) exactly once: force and density
// kernels then use Newton's third law and scatter symmetric contributions
// to the other atom - exactly the irregular reduction the paper studies.
// The default half-stencil build stores a pair under whichever atom's cell
// owns the cell pair (intra-cell pairs under min(i, j)); the legacy build
// (NeighborListConfig::half_stencil = false) scans the full 27-cell stencil
// and stores every pair under min(i, j). Both enumerate the identical pair
// set; kernels only rely on each pair appearing once.
// A *full* list stores the pair under both atoms; kernels become pure
// gathers with no write conflicts at the price of doubled computation - the
// paper's "Redundant Computations" baseline.
//
// The public arrays mirror the paper's pseudocode names:
//   neigh_index[i] : offset of atom i's sublist   (the paper's neighindex)
//   neigh_len[i]   : its length                   (the paper's neighlen)
//   neigh_list[]   : concatenated neighbor ids    (the paper's neighlist)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"
#include "neighbor/cell_list.hpp"

namespace sdcmd {

enum class NeighborMode { Half, Full };

struct NeighborListConfig {
  double cutoff = 0.0;  ///< interaction range (required, > 0)
  double skin = 0.4;    ///< Verlet skin; lists stay valid until an atom
                        ///< moves more than skin/2 since the last build
  NeighborMode mode = NeighborMode::Half;
  bool sort_neighbors = false;  ///< ascending j within each sublist
                                ///< (the paper's Section II.D reordering)
  /// Half mode only: enumerate 13 owned neighbor cells plus intra-cell
  /// j > i, which hoists the per-pair mode test out of the hot loops.
  /// false restores the legacy full-stencil scan (every pair under
  /// min(i, j)) - kept for A/B benches and regression tests.
  bool half_stencil = true;
  /// Bin atoms with the parallel counting sort (per-thread histograms +
  /// prefix sum); false forces the serial reference binning.
  bool parallel_bin = true;
  /// > 1: every build() also emits vector-width-padded neighbor tiles
  /// (tile_index()/padded_list()): each atom's sublist rounded up to a
  /// multiple of pad_width, out-of-range slots filled with the sentinel
  /// atom_count(). The SoA EAM fast path walks these branch-free blocks;
  /// 0 (the default) skips the extra arrays.
  int pad_width = 0;
};

/// Build-pipeline accounting: phase wall times (cumulative and for the
/// most recent build) plus the storage-reuse counters the obs layer
/// exports as neighbor.* metrics.
struct NeighborBuildStats {
  std::size_t builds = 0;           ///< build() calls
  std::size_t grid_reshapes = 0;    ///< update_box() calls that reshaped
  std::size_t stencil_rebuilds = 0; ///< initial build + one per reshape
  double bin_seconds = 0.0;         ///< cell binning (cumulative)
  double count_seconds = 0.0;       ///< CSR count pass (cumulative)
  double fill_seconds = 0.0;        ///< CSR fill + optional sort (cumulative)
  double last_bin_seconds = 0.0;
  double last_count_seconds = 0.0;
  double last_fill_seconds = 0.0;
};

class NeighborList {
 public:
  NeighborList(const Box& box, NeighborListConfig config);

  /// Rebuild from scratch (also records positions for staleness checks).
  void build(std::span<const Vec3> positions);

  /// Adapt to a changed box in place - storage is reused; the embedded cell
  /// grid recomputes its stencils only when its shape changes. The caller
  /// must build() afterwards (atom-to-cell assignments are stale). Returns
  /// true when the grid reshaped.
  bool update_box(const Box& box);

  /// True when `other` describes this list exactly, so a box change can go
  /// through update_box() instead of reconstruction.
  bool config_compatible(const NeighborListConfig& other) const;

  /// True when some atom has drifted more than skin/2 since build() -
  /// the classic safe-rebuild criterion.
  bool needs_rebuild(std::span<const Vec3> positions) const;

  std::size_t atom_count() const { return neigh_len_.size(); }
  std::size_t pair_count() const { return neigh_list_.size(); }

  /// Neighbors of atom i.
  std::span<const std::uint32_t> neighbors(std::size_t i) const {
    return {neigh_list_.data() + neigh_index_[i], neigh_len_[i]};
  }

  // Raw CSR arrays for the kernels (paper naming).
  const std::vector<std::size_t>& neigh_index() const { return neigh_index_; }
  const std::vector<std::uint32_t>& neigh_len() const { return neigh_len_; }
  const std::vector<std::uint32_t>& neigh_list() const { return neigh_list_; }

  // Vector-width-padded neighbor tiles (built when config.pad_width > 1).
  // tile_index()[i] is the start of atom i's padded block in padded_list()
  // (always a multiple of pad_width); slots past the atom's real sublist
  // hold pad_sentinel(). The real entries replicate neighbors(i) in order.
  bool has_padded_tiles() const { return config_.pad_width > 1; }
  int pad_width() const { return config_.pad_width; }
  std::size_t padded_pair_count() const { return padded_list_.size(); }
  std::uint32_t pad_sentinel() const {
    return static_cast<std::uint32_t>(neigh_len_.size());
  }
  const std::vector<std::size_t>& tile_index() const { return tile_index_; }
  const std::vector<std::uint32_t>& padded_list() const {
    return padded_list_;
  }
  /// Padding overhead of the last build: padded slots / real pairs - 1
  /// (0 when padding is off or the list is empty).
  double pad_fraction() const {
    return neigh_list_.empty() || padded_list_.empty()
               ? 0.0
               : static_cast<double>(padded_list_.size()) /
                         static_cast<double>(neigh_list_.size()) -
                     1.0;
  }

  NeighborMode mode() const { return config_.mode; }
  double cutoff() const { return config_.cutoff; }
  double skin() const { return config_.skin; }
  const Box& box() const { return box_; }
  const NeighborListConfig& config() const { return config_; }
  const CellList& cells() const { return cells_; }

  /// Mean *physical* coordination per atom within cutoff + skin,
  /// mode-aware: a half list stores each pair once, so its stored-entry
  /// average is doubled. Both modes report the same number for the same
  /// configuration (bcc Fe at the FS cutoff: ~14; tests assert this).
  double mean_neighbors() const;

  /// Resident bytes of the CSR arrays, the staleness snapshot AND the
  /// embedded cell grid (the obs-layer memory gauge).
  std::size_t memory_bytes() const;

  /// Build-phase timings and storage-reuse counters.
  const NeighborBuildStats& stats() const { return stats_; }

 private:
  template <NeighborMode Mode, bool HalfStencil>
  void count_pass(std::span<const Vec3> positions, double range2);
  template <NeighborMode Mode, bool HalfStencil>
  void fill_pass(std::span<const Vec3> positions, double range2);

  void build_padded_tiles();

  Box box_;
  NeighborListConfig config_;
  CellList cells_;
  std::vector<std::size_t> neigh_index_;
  std::vector<std::uint32_t> neigh_len_;
  std::vector<std::uint32_t> neigh_list_;
  std::vector<std::size_t> tile_index_;     ///< pad_width > 1 only
  std::vector<std::uint32_t> padded_list_;  ///< pad_width > 1 only
  std::vector<Vec3> positions_at_build_;
  NeighborBuildStats stats_;
};

/// Reference O(N^2) pair enumeration used by tests to validate the
/// cell-list path. Returns pairs (i, j), i < j, within `cutoff`.
std::vector<std::pair<std::uint32_t, std::uint32_t>> brute_force_pairs(
    const Box& box, std::span<const Vec3> positions, double cutoff);

}  // namespace sdcmd
