// Verlet neighbor lists in the CSR layout of the paper's Figs. 1-2 / 7-8.
//
// A *half* list stores each pair (i, j) once, under min(i, j): force and
// density kernels then use Newton's third law and scatter symmetric
// contributions to j - exactly the irregular reduction the paper studies.
// A *full* list stores the pair under both atoms; kernels become pure
// gathers with no write conflicts at the price of doubled computation - the
// paper's "Redundant Computations" baseline.
//
// The public arrays mirror the paper's pseudocode names:
//   neigh_index[i] : offset of atom i's sublist   (the paper's neighindex)
//   neigh_len[i]   : its length                   (the paper's neighlen)
//   neigh_list[]   : concatenated neighbor ids    (the paper's neighlist)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"
#include "neighbor/cell_list.hpp"

namespace sdcmd {

enum class NeighborMode { Half, Full };

struct NeighborListConfig {
  double cutoff = 0.0;  ///< interaction range (required, > 0)
  double skin = 0.4;    ///< Verlet skin; lists stay valid until an atom
                        ///< moves more than skin/2 since the last build
  NeighborMode mode = NeighborMode::Half;
  bool sort_neighbors = false;  ///< ascending j within each sublist
                                ///< (the paper's Section II.D reordering)
};

class NeighborList {
 public:
  NeighborList(const Box& box, NeighborListConfig config);

  /// Rebuild from scratch (also records positions for staleness checks).
  void build(std::span<const Vec3> positions);

  /// True when some atom has drifted more than skin/2 since build() -
  /// the classic safe-rebuild criterion.
  bool needs_rebuild(std::span<const Vec3> positions) const;

  std::size_t atom_count() const { return neigh_len_.size(); }
  std::size_t pair_count() const { return neigh_list_.size(); }

  /// Neighbors of atom i.
  std::span<const std::uint32_t> neighbors(std::size_t i) const {
    return {neigh_list_.data() + neigh_index_[i], neigh_len_[i]};
  }

  // Raw CSR arrays for the kernels (paper naming).
  const std::vector<std::size_t>& neigh_index() const { return neigh_index_; }
  const std::vector<std::uint32_t>& neigh_len() const { return neigh_len_; }
  const std::vector<std::uint32_t>& neigh_list() const { return neigh_list_; }

  NeighborMode mode() const { return config_.mode; }
  double cutoff() const { return config_.cutoff; }
  double skin() const { return config_.skin; }
  const Box& box() const { return box_; }

  /// Mean neighbors per atom (bcc Fe at the FS cutoff should be ~10-14 for
  /// a half list; tests assert the expected counts).
  double mean_neighbors() const;

  /// Approximate resident bytes of the CSR arrays (memory-accounting bench).
  std::size_t memory_bytes() const;

 private:
  Box box_;
  NeighborListConfig config_;
  CellList cells_;
  std::vector<std::size_t> neigh_index_;
  std::vector<std::uint32_t> neigh_len_;
  std::vector<std::uint32_t> neigh_list_;
  std::vector<Vec3> positions_at_build_;
};

/// Reference O(N^2) pair enumeration used by tests to validate the
/// cell-list path. Returns pairs (i, j), i < j, within `cutoff`.
std::vector<std::pair<std::uint32_t, std::uint32_t>> brute_force_pairs(
    const Box& box, std::span<const Vec3> positions, double cutoff);

}  // namespace sdcmd
