// Umbrella header: the full public sdcmd API in one include.
//
// Fine-grained headers remain the recommended include style for library
// code (they keep rebuilds small); this header serves quick experiments
// and the examples-as-documentation use case.
//
//   #include "sdcmd.hpp"
//   using namespace sdcmd;
#pragma once

// common: math, RNG, timing, stats, CLI, logging, units
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/threads.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"
#include "common/vec3.hpp"

// geometry: periodic boxes, lattices, regions, defect generators
#include "geom/box.hpp"
#include "geom/defects.hpp"
#include "geom/lattice.hpp"
#include "geom/region.hpp"

// potentials: pair + EAM families, tabulation, file formats, alloys
#include "potential/alloy.hpp"
#include "potential/cubic_spline.hpp"
#include "potential/finnis_sinclair.hpp"
#include "potential/funcfl.hpp"
#include "potential/johnson.hpp"
#include "potential/lennard_jones.hpp"
#include "potential/morse.hpp"
#include "potential/potential.hpp"
#include "potential/setfl.hpp"
#include "potential/setfl_alloy.hpp"
#include "potential/tabulated.hpp"

// observability: metrics, sweep profiling, JSONL/trace/bench exporters
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/sweep_profile.hpp"
#include "obs/trace.hpp"

// neighbor machinery: cells, Verlet lists, data reordering
#include "neighbor/cell_list.hpp"
#include "neighbor/neighbor_list.hpp"
#include "neighbor/reorder.hpp"

// spatial decomposition + coloring (the paper's Section II.B)
#include "domain/coloring.hpp"
#include "domain/decomposition.hpp"
#include "domain/partition.hpp"

// the core contribution: SDC schedules, strategy engines, validation
#include "core/alloy_force.hpp"
#include "core/cell_direct.hpp"
#include "core/colored_reduction.hpp"
#include "core/eam_force.hpp"
#include "core/lock_pool.hpp"
#include "core/pair_force.hpp"
#include "core/race_check.hpp"
#include "core/sdc_schedule.hpp"
#include "core/strategy.hpp"

// molecular dynamics engine
#include "md/atoms.hpp"
#include "md/barostat.hpp"
#include "md/deform.hpp"
#include "md/dump.hpp"
#include "md/force_provider.hpp"
#include "md/health.hpp"
#include "md/integrator.hpp"
#include "md/simulation.hpp"
#include "md/system.hpp"
#include "md/thermo.hpp"
#include "md/thermo_log.hpp"
#include "md/thermostat.hpp"
#include "md/velocity.hpp"

// analysis
#include "analysis/cna.hpp"
#include "analysis/coordination.hpp"
#include "analysis/msd.hpp"
#include "analysis/rdf.hpp"
#include "analysis/stress.hpp"
#include "analysis/vacf.hpp"

// file I/O
#include "io/checkpoint.hpp"
#include "io/lammps_data.hpp"
#include "io/xyz_reader.hpp"
