// The paper's four experimental cases (Section III.B), reproducible at
// several scales.
//
// All four are bcc Fe cubes of n^3 conventional cells (2 atoms per cell):
//   small  (case 1):  30^3 * 2 =    54,000 atoms
//   medium (case 2):  51^3 * 2 =   265,302 atoms
//   large3 (case 3):  81^3 * 2 = 1,062,882 atoms
//   large4 (case 4): 120^3 * 2 = 3,456,000 atoms
//
// The paper's machine was a 16-core Xeon node; this repo's default bench
// scale shrinks the cubes so the full sweep finishes on a laptop-class
// box while preserving the cases' *relative* sizes and the subdomain-count
// arithmetic. Set SDCMD_BENCH_SCALE=paper to run the original sizes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geom/lattice.hpp"

namespace sdcmd::bench {

enum class Scale {
  Tiny,    ///< CI smoke scale      (cells  6 /  8 / 10 / 12)
  Laptop,  ///< default bench scale (cells 14 / 18 / 24 / 30)
  Desktop, ///< bigger sweep        (cells 20 / 26 / 34 / 42)
  Paper,   ///< the published sizes (cells 30 / 51 / 81 / 120)
};

/// Parse "tiny" / "laptop" / "desktop" / "paper" (default Laptop).
Scale parse_scale(const std::string& name);
std::string to_string(Scale scale);

/// Reads SDCMD_BENCH_SCALE; defaults to Laptop.
Scale scale_from_env();

struct TestCase {
  std::string name;   ///< "small", "medium", "large3", "large4"
  int cells;          ///< conventional bcc cells per edge

  std::size_t atom_count() const {
    return 2ull * static_cast<std::size_t>(cells) * cells * cells;
  }
  LatticeSpec lattice() const;
};

/// The four cases at the requested scale, smallest first.
std::vector<TestCase> paper_cases(Scale scale);

/// The paper's thread sweep {2, 3, 4, 8, 12, 16}, clamped by
/// SDCMD_BENCH_THREADS (comma list) when set.
std::vector<int> thread_sweep_from_env();

/// Measurement steps per configuration (default 3; SDCMD_BENCH_STEPS).
int steps_from_env();

}  // namespace sdcmd::bench
