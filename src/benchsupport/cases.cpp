#include "benchsupport/cases.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace sdcmd::bench {

Scale parse_scale(const std::string& name) {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "tiny") return Scale::Tiny;
  if (lower == "laptop" || lower == "default") return Scale::Laptop;
  if (lower == "desktop") return Scale::Desktop;
  if (lower == "paper" || lower == "full") return Scale::Paper;
  return Scale::Laptop;
}

std::string to_string(Scale scale) {
  switch (scale) {
    case Scale::Tiny: return "tiny";
    case Scale::Laptop: return "laptop";
    case Scale::Desktop: return "desktop";
    case Scale::Paper: return "paper";
  }
  return "?";
}

Scale scale_from_env() {
  if (const char* env = std::getenv("SDCMD_BENCH_SCALE")) {
    return parse_scale(env);
  }
  return Scale::Laptop;
}

LatticeSpec TestCase::lattice() const {
  LatticeSpec spec;
  spec.type = LatticeType::Bcc;
  spec.a0 = units::kLatticeFe;
  spec.nx = spec.ny = spec.nz = cells;
  return spec;
}

std::vector<TestCase> paper_cases(Scale scale) {
  switch (scale) {
    case Scale::Tiny:
      return {{"small", 6}, {"medium", 8}, {"large3", 10}, {"large4", 12}};
    case Scale::Laptop:
      // Smallest cubes whose 2-D decompositions still feed a 16-thread
      // sweep on the big cases while keeping the small-case blanks.
      return {{"small", 14}, {"medium", 18}, {"large3", 24}, {"large4", 30}};
    case Scale::Desktop:
      return {{"small", 20}, {"medium", 26}, {"large3", 34}, {"large4", 42}};
    case Scale::Paper:
      return {{"small", 30}, {"medium", 51}, {"large3", 81}, {"large4", 120}};
  }
  throw PreconditionError("unknown bench scale");
}

std::vector<int> thread_sweep_from_env() {
  std::vector<int> threads{2, 3, 4, 8, 12, 16};
  if (const char* env = std::getenv("SDCMD_BENCH_THREADS")) {
    std::vector<int> custom;
    std::istringstream is(env);
    std::string part;
    while (std::getline(is, part, ',')) {
      const int t = std::atoi(part.c_str());
      if (t > 0) custom.push_back(t);
    }
    if (!custom.empty()) threads = custom;
  }
  return threads;
}

int steps_from_env() {
  if (const char* env = std::getenv("SDCMD_BENCH_STEPS")) {
    const int steps = std::atoi(env);
    if (steps > 0) return steps;
  }
  return 3;
}

}  // namespace sdcmd::bench
