#include "benchsupport/sweep.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "geom/defects.hpp"
#include "obs/sweep_profile.hpp"
#include "common/log.hpp"
#include "common/random.hpp"
#include "common/threads.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"

namespace sdcmd::bench {

namespace {

/// Displace lattice sites with Gaussian noise of thermal amplitude so the
/// configuration is representative of a live run (perfect lattices have
/// identical neighbor counts but unnaturally uniform memory access).
void thermal_perturbation(System& system, double temperature,
                          std::uint64_t seed) {
  if (temperature <= 0.0) return;
  // Equipartition estimate: 1/2 k x^2 ~ 3/2 kB T with an eV/A^2-scale
  // spring constant; ~0.05-0.1 A at 300 K, small versus the 0.4 A skin.
  const double amplitude =
      std::sqrt(3.0 * units::kBoltzmann * temperature / 5.0);
  Xoshiro256 rng(seed);
  for (auto& r : system.atoms().position) {
    r += Vec3{rng.normal(0.0, amplitude), rng.normal(0.0, amplitude),
              rng.normal(0.0, amplitude)};
  }
  system.wrap_positions();
}

}  // namespace

CaseRunner::CaseRunner(const TestCase& test_case,
                       const EamPotential& potential, double skin,
                       double temperature, std::uint64_t seed)
    : potential_(potential), skin_(skin) {
  system_ = std::make_unique<System>(
      System::from_lattice(test_case.lattice(), units::kMassFe));
  thermal_perturbation(*system_, temperature, seed);
}

std::size_t CaseRunner::carve_void(double radius_fraction) {
  SDCMD_REQUIRE(!half_list_ && !full_list_ && !serial_time_,
                "carve_void must precede every timing call");
  SDCMD_REQUIRE(radius_fraction > 0.0 && radius_fraction < 0.5,
                "void radius fraction must be in (0, 0.5)");
  const Box box = system_->box();
  const Vec3 center = (box.lo() + box.hi()) * 0.5;
  const double min_edge =
      std::min({box.length(0), box.length(1), box.length(2)});
  std::vector<Vec3> positions = system_->atoms().position;
  const std::size_t removed =
      carve_sphere(positions, box, center, radius_fraction * min_edge);
  const double mass = system_->mass();
  system_ = std::make_unique<System>(box, Atoms(std::move(positions)), mass);
  return removed;
}

const NeighborList& CaseRunner::list_for(NeighborMode mode) {
  auto& slot = mode == NeighborMode::Half ? half_list_ : full_list_;
  if (!slot) {
    NeighborListConfig cfg;
    cfg.cutoff = potential_.cutoff();
    cfg.skin = skin_;
    cfg.mode = mode;
    cfg.sort_neighbors = true;
    slot = std::make_unique<NeighborList>(system_->box(), cfg);
    slot->build(system_->atoms().position);
  }
  return *slot;
}

std::optional<Timing> CaseRunner::time_strategy(
    const EamForceConfig& config, int threads, int steps,
    const SweepInstrumentation* instr) {
  SDCMD_REQUIRE(threads >= 1, "need at least one thread");
  SDCMD_REQUIRE(steps >= 1, "need at least one timed step");
  SDCMD_REQUIRE(instr == nullptr || instr->jsonl == nullptr ||
                    instr->registry != nullptr,
                "SweepInstrumentation::jsonl requires a registry");

  const NeighborList& list = list_for(required_mode(config.strategy));
  EamForceComputer computer(potential_, config);
  try {
    computer.attach_schedule(system_->box(), potential_.cutoff() + skin_);
  } catch (const InfeasibleError& e) {
    SDCMD_DEBUG("infeasible configuration: " << e.what());
    return std::nullopt;
  }
  computer.on_neighbor_rebuild(system_->atoms().position);

  // The paper additionally skips configurations whose per-color subdomain
  // supply cannot feed every thread (1-D SDC, small case, >= 12 threads).
  if (config.strategy == ReductionStrategy::Sdc &&
      computer.schedule()->subdomains_per_color() <
          static_cast<std::size_t>(threads)) {
    return std::nullopt;
  }

  const int previous_threads = max_threads();
  set_threads(config.strategy == ReductionStrategy::Serial ? 1 : threads);

  // An instrumented pass enables the profiled sweep variant and exports
  // each timed evaluation as one "step" (JSONL record + trace slices).
  obs::MetricsRegistry::Handle h_steps = 0, h_step_seconds = 0;
  bool hw_on = false;
  if (instr != nullptr) {
    computer.sweep_profiler().set_enabled(true);
    if (instr->hw_counters) {
      computer.hw_profiler().set_enabled(true);
      hw_on = computer.hw_profiler().enabled();  // refused when unavailable
    }
    if (instr->registry != nullptr) {
      h_steps = instr->registry->counter("bench.steps");
      h_step_seconds = instr->registry->stats("bench.step_seconds");
      if (instr->hw_counters) {
        instr->registry->set(instr->registry->gauge("hw.available"),
                             hw_on ? 1.0 : 0.0);
      }
    }
  }
  // Trace track for the driver-side per-step spans (the sweep slices land
  // on the OpenMP thread tracks named by append_sweep_events).
  constexpr int kDriverTid = 1000;

  Atoms& atoms = system_->atoms();
  computer.compute(system_->box(), atoms.position, list, atoms.rho,
                   atoms.fp, atoms.force);  // warmup
  computer.reset_instrumentation();
  std::array<obs::HwCounts, 3> hw_acc{};
  for (int s = 0; s < steps; ++s) {
    const double t0 = instr != nullptr ? wall_time() : 0.0;
    computer.compute(system_->box(), atoms.position, list, atoms.rho,
                     atoms.fp, atoms.force);
    if (instr == nullptr) continue;
    if (hw_on) {
      for (const auto& pt : computer.hw_profiler().phase_totals()) {
        if (pt.phase >= 0 && pt.phase < 3) {
          hw_acc[static_cast<std::size_t>(pt.phase)].accumulate(pt.counts);
        }
      }
    }
    const double step_wall = wall_time() - t0;
    if (instr->registry != nullptr) {
      instr->registry->add(h_steps);
      instr->registry->observe(h_step_seconds, step_wall);
    }
    const std::string label = "step " + std::to_string(s);
    if (instr->trace != nullptr) {
      instr->trace->set_thread_name(kDriverTid, "bench driver");
      instr->trace->complete_event(label, "bench", t0, step_wall, kDriverTid);
      obs::append_sweep_events(*instr->trace, computer.sweep_profiler(),
                               label + "/");
    }
    if (instr->jsonl != nullptr) {
      instr->jsonl->write_step(s, *instr->registry,
                               &computer.sweep_profiler(), step_wall);
    }
  }
  set_threads(previous_threads);

  if (hw_on && instr != nullptr && instr->registry != nullptr) {
    // Per-phase derived gauges from the whole timed loop, so the summary
    // record (and CI's --require-metrics hw.) sees stable aggregates.
    static const char* kPhases[3] = {"density", "embed", "force"};
    const double per_step_atoms =
        static_cast<double>(steps) * static_cast<double>(atoms.size());
    for (std::size_t p = 0; p < 3; ++p) {
      const std::string prefix = std::string("hw.") + kPhases[p];
      obs::MetricsRegistry& r = *instr->registry;
      r.set(r.gauge(prefix + ".ipc"), hw_acc[p].ipc());
      r.set(r.gauge(prefix + ".cache_miss_rate"), hw_acc[p].cache_miss_rate());
      r.set(r.gauge(prefix + ".cycles_per_atom"),
            per_step_atoms > 0.0 ? hw_acc[p].cycles / per_step_atoms : 0.0);
    }
  }
  if (instr != nullptr && instr->jsonl != nullptr) {
    // End-of-case summary: one cumulative record per timed case so report
    // diffing has a stable aggregate (see docs/observability.md).
    instr->jsonl->write_summary(steps, *instr->registry);
  }

  Timing t;
  double density = 0.0, embed = 0.0, force = 0.0;
  for (const auto& e : computer.timers().entries()) {
    if (e.name == "density") density = e.seconds;
    if (e.name == "embed") embed = e.seconds;
    if (e.name == "force") force = e.seconds;
  }
  t.density_force_seconds = (density + force) / steps;
  t.total_seconds = (density + embed + force) / steps;
  t.pair_visits = computer.stats().density_pair_visits / steps;
  t.private_bytes = computer.stats().private_array_bytes;
  const EamKernelStats& ks = computer.stats();
  t.task_spawned = ks.task_spawned / static_cast<std::size_t>(steps);
  t.task_steals = ks.task_steals / static_cast<std::size_t>(steps);
  t.task_max_queue_depth = ks.task_max_queue_depth;
  t.task_busy_min = ks.task_busy_min;
  t.task_busy_mean = ks.task_busy_mean;
  if (instr != nullptr) {
    // Barrier-stretch gauge of the last timed step: worst color imbalance
    // over the two scatter phases (embed is barrier-free in every shape).
    for (const auto& p : computer.sweep_profiler().color_profiles()) {
      if (p.phase == 1) continue;
      t.sweep_imbalance = std::max(t.sweep_imbalance, p.imbalance);
    }
  }
  if (hw_on) {
    t.hw = hw_acc;
    t.hw_valid = hw_acc[0].valid || hw_acc[2].valid;
  }
  return t;
}

double CaseRunner::serial_seconds_per_step(int steps) {
  if (!serial_time_) {
    EamForceConfig config;
    config.strategy = ReductionStrategy::Serial;
    const auto timing = time_strategy(config, 1, steps);
    SDCMD_REQUIRE(timing.has_value(), "serial timing cannot be infeasible");
    serial_time_ = timing->density_force_seconds;
  }
  return *serial_time_;
}

std::string format_speedup(std::optional<double> speedup) {
  if (!speedup) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", *speedup);
  return buf;
}

}  // namespace sdcmd::bench
