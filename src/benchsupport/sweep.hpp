// Timing harness behind the Table 1 / Fig. 9 reproductions.
//
// The paper measures "the running times of the calculations of the electron
// densities and forces" over 1000 MD steps. The harness prepares one
// thermally perturbed configuration per test case (positions displaced like
// a 300 K lattice, so neighbor counts match a live run), builds the neighbor
// list once, and times repeated full EAM force evaluations, reporting the
// density + force phase wall time per step. Speedup is the serial kernel's
// time divided by the strategy's time at each thread count - the paper's
// definition.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "benchsupport/cases.hpp"
#include "core/eam_force.hpp"
#include "md/system.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "potential/potential.hpp"

namespace sdcmd::bench {

struct Timing {
  double density_force_seconds = 0.0;  ///< per step, the paper's metric
  double total_seconds = 0.0;          ///< per step, incl. embedding
  std::size_t pair_visits = 0;         ///< per step
  std::size_t private_bytes = 0;       ///< SAP replication footprint
  /// Hardware-counter totals summed over the timed steps and the thread
  /// team, indexed density/embed/force. Valid only when the instrumented
  /// pass requested hw_counters AND perf_event_open was available.
  std::array<obs::HwCounts, 3> hw{};
  bool hw_valid = false;
  // CellTask work-stealing shape (all zero unless strategy == CellTask).
  std::size_t task_spawned = 0;          ///< block tasks run per step
  std::size_t task_steals = 0;           ///< of those, stolen, per step
  std::size_t task_max_queue_depth = 0;  ///< longest initial home queue
  double task_busy_min = 0.0;            ///< slowest thread's busy fraction
  double task_busy_mean = 0.0;
  /// Max per-color work_max/work_mean over the density and force phases of
  /// the last timed step; 0 when the pass was uninstrumented. This is the
  /// barrier-stretch gauge the void drill compares across strategies.
  double sweep_imbalance = 0.0;
};

/// Observability sinks for an instrumented timing pass. All pointers are
/// borrowed and optional; `registry` is required when `jsonl` is set (the
/// JSONL record embeds a registry snapshot). Attaching instrumentation
/// enables the computer's SdcSweepProfiler, so the timed loop runs the
/// profiled sweep variant - use a separate uninstrumented pass for
/// publication numbers.
struct SweepInstrumentation {
  obs::MetricsRegistry* registry = nullptr;
  obs::StepMetricsWriter* jsonl = nullptr;
  obs::TraceWriter* trace = nullptr;
  /// Enable the computer's PerfPhaseProfiler for the timed loop: Timing
  /// gains per-phase counter totals and, with a registry, the hw.* gauge
  /// family (hw.available records whether the syscall actually worked).
  bool hw_counters = false;
};

/// One test case loaded, perturbed and ready to time.
class CaseRunner {
 public:
  /// `temperature` controls the thermal displacement amplitude of the
  /// perturbed lattice; `seed` makes runs reproducible.
  CaseRunner(const TestCase& test_case, const EamPotential& potential,
             double skin = 0.4, double temperature = 300.0,
             std::uint64_t seed = 20090924);

  /// Carve a spherical void of radius `radius_fraction` x (shortest box
  /// edge) out of the box center: the spatially non-uniform load that
  /// stresses barriered decompositions (subdomains overlapping the void
  /// run nearly empty while full ones pace every color sweep). Must be
  /// called before any timing call — the neighbor lists and the cached
  /// serial reference are built lazily from the current positions.
  /// Returns the number of atoms removed.
  std::size_t carve_void(double radius_fraction);

  /// Time `steps` force evaluations under `config` with `threads` OpenMP
  /// threads (one untimed warmup evaluation first). Returns std::nullopt
  /// when the configuration is infeasible - e.g. 1-D SDC on a box too
  /// small to split, the paper's Table 1 blanks. With `instr`, each timed
  /// evaluation additionally emits a JSONL step record and/or trace slices
  /// carrying the per-thread x per-color sweep profile.
  std::optional<Timing> time_strategy(
      const EamForceConfig& config, int threads, int steps,
      const SweepInstrumentation* instr = nullptr);

  /// Serial reference time (cached after the first call), per step.
  double serial_seconds_per_step(int steps);

  const System& system() const { return *system_; }
  const EamPotential& potential() const { return potential_; }
  double skin() const { return skin_; }

 private:
  const NeighborList& list_for(NeighborMode mode);

  const EamPotential& potential_;
  double skin_;
  std::unique_ptr<System> system_;
  std::unique_ptr<NeighborList> half_list_;
  std::unique_ptr<NeighborList> full_list_;
  std::optional<double> serial_time_;
};

/// speedup = serial / parallel; the paper's Table 1 cell format with two
/// decimals, or a centered dash for infeasible configurations.
std::string format_speedup(std::optional<double> speedup);

}  // namespace sdcmd::bench
