// Extended-XYZ reader: the inverse of md/dump.hpp's write_xyz, so
// trajectories written by sdcmd (or ASE/OVITO) can be loaded back.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

struct XyzFrame {
  std::vector<Vec3> positions;
  std::vector<std::string> species;
  std::string comment;           ///< raw second line
  std::optional<Box> box;        ///< parsed from Lattice="..." when present
};

/// Read the next frame from the stream; std::nullopt at clean EOF.
/// Throws ParseError on malformed frames.
std::optional<XyzFrame> read_xyz_frame(std::istream& in);

/// Read every frame in a file.
std::vector<XyzFrame> read_xyz_file(const std::string& path);

}  // namespace sdcmd
