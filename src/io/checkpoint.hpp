// Checkpoint / restart.
//
// Saves everything needed to continue a run bit-for-bit at the physics
// level: box, per-atom state (position, velocity, id, image counters),
// species mass, and the step counter. Text format with full double
// precision, versioned header, so checkpoints remain debuggable and
// portable.
//
// Format v2 appends a `checksum fnv1a64 <hex>` footer covering the exact
// payload bytes; the loader verifies it (ChecksumError on mismatch) before
// parsing and rejects truncated or non-finite state with ParseError —
// errors carry the offending line/byte offset for one-glance triage.
// `save_checkpoint_file` is crash-safe: it writes `<path>.tmp` and renames
// it into place, so an interrupted save never clobbers the previous good
// checkpoint, and every failed save unlinks its `.tmp` before throwing.
// Legacy v1 files (no footer) still load.
#pragma once

#include <iosfwd>
#include <string>

#include "md/system.hpp"

namespace sdcmd {

struct Checkpoint {
  System system;
  long step = 0;
};

void save_checkpoint(std::ostream& out, const System& system, long step);
void save_checkpoint_file(const std::string& path, const System& system,
                          long step);

/// Throws ParseError on malformed, truncated or version-mismatched input
/// and ChecksumError when a v2 footer does not match the payload.
Checkpoint load_checkpoint(std::istream& in);
Checkpoint load_checkpoint_file(const std::string& path);

}  // namespace sdcmd
