// Checkpoint / restart.
//
// Saves everything needed to continue a run bit-for-bit at the physics
// level: box, per-atom state (position, velocity, id, image counters),
// species mass, and the step counter. Text format with full double
// precision (hex floats), versioned header, so checkpoints remain
// debuggable and portable.
#pragma once

#include <iosfwd>
#include <string>

#include "md/system.hpp"

namespace sdcmd {

struct Checkpoint {
  System system;
  long step = 0;
};

void save_checkpoint(std::ostream& out, const System& system, long step);
void save_checkpoint_file(const std::string& path, const System& system,
                          long step);

/// Throws ParseError on malformed or version-mismatched input.
Checkpoint load_checkpoint(std::istream& in);
Checkpoint load_checkpoint_file(const std::string& path);

}  // namespace sdcmd
