#include "io/lammps_data.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace sdcmd {

namespace {

/// getline consumed the offending line's newline, so the stream sits one
/// line past it: report the line just read, not the read position.
[[noreturn]] void fail(std::istream& in, const std::string& message) {
  const long line = stream_line_number(in);
  const std::string at =
      line > 1 ? " (line " + std::to_string(line - 1) + ")" : std::string();
  throw ParseError("lammps data: " + message + at);
}

}  // namespace

void write_lammps_data(std::ostream& out, const System& system,
                       const std::string& comment) {
  const Atoms& atoms = system.atoms();
  const Box& box = system.box();
  out << comment << "\n\n";
  out << atoms.size() << " atoms\n";
  out << "1 atom types\n\n";
  out << std::setprecision(17);
  out << box.lo().x << ' ' << box.hi().x << " xlo xhi\n";
  out << box.lo().y << ' ' << box.hi().y << " ylo yhi\n";
  out << box.lo().z << ' ' << box.hi().z << " zlo zhi\n\n";
  out << "Masses\n\n1 " << system.mass() << "\n\n";
  out << "Atoms # atomic\n\n";
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const Vec3& r = atoms.position[i];
    out << atoms.id[i] + 1 << " 1 " << r.x << ' ' << r.y << ' ' << r.z
        << '\n';
  }
  out << "\nVelocities\n\n";
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const Vec3& v = atoms.velocity[i];
    out << atoms.id[i] + 1 << ' ' << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
}

void write_lammps_data_file(const std::string& path, const System& system,
                            const std::string& comment) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot open '" + path + "' for writing");
  }
  write_lammps_data(out, system, comment);
}

namespace {

std::string section_name(const std::string& line) {
  // Section headers are a keyword optionally followed by a '#' comment.
  std::istringstream is(line);
  std::string word;
  is >> word;
  if (word == "Atoms" || word == "Velocities" || word == "Masses") {
    return word;
  }
  return {};
}

}  // namespace

System read_lammps_data(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw ParseError("lammps data: empty file");
  }

  std::size_t atom_count = 0;
  int atom_types = 1;
  double lo[3] = {0, 0, 0}, hi[3] = {0, 0, 0};
  bool have_bounds[3] = {false, false, false};
  double mass = 1.0;
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
  std::vector<std::uint32_t> ids;

  while (std::getline(in, line)) {
    // Strip comments.
    if (const auto hash = line.find('#');
        hash != std::string::npos && section_name(line).empty()) {
      line = line.substr(0, hash);
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    const std::string section = section_name(line);
    std::istringstream is(line);
    if (section.empty()) {
      // Header lines: "<n> atoms", "<n> atom types", bounds.
      double a, b;
      std::string w1, w2;
      if (is >> a >> w1) {
        if (w1 == "atoms") {
          atom_count = static_cast<std::size_t>(a);
          continue;
        }
        if (w1 == "atom") {
          atom_types = static_cast<int>(a);
          continue;
        }
        // bounds: "<lo> <hi> xlo xhi"
        std::istringstream is2(line);
        if (is2 >> a >> b >> w1 >> w2) {
          const int dim = w1 == "xlo" ? 0 : (w1 == "ylo" ? 1 : 2);
          lo[dim] = a;
          hi[dim] = b;
          have_bounds[dim] = true;
        }
      }
      continue;
    }

    if (atom_types != 1) {
      fail(in, "only single-type files are supported");
    }

    // Sections: skip the mandatory blank line, then read atom_count rows
    // (Masses has atom_types rows).
    const std::size_t rows = section == "Masses" ? 1 : atom_count;
    std::size_t parsed = 0;
    while (parsed < rows && std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      std::istringstream row(line);
      if (section == "Masses") {
        int type;
        if (!(row >> type >> mass)) {
          fail(in, "malformed Masses row");
        }
      } else if (section == "Atoms") {
        long id;
        int type;
        Vec3 r;
        if (!(row >> id >> type >> r.x >> r.y >> r.z)) {
          fail(in, "malformed Atoms row '" + line + "'");
        }
        ids.push_back(static_cast<std::uint32_t>(id - 1));
        positions.push_back(r);
      } else {  // Velocities
        long id;
        Vec3 v;
        if (!(row >> id >> v.x >> v.y >> v.z)) {
          fail(in, "malformed Velocities row");
        }
        velocities.push_back(v);
      }
      ++parsed;
    }
    if (parsed < rows) {
      fail(in, "truncated " + section + " section");
    }
  }

  if (!have_bounds[0] || !have_bounds[1] || !have_bounds[2]) {
    throw ParseError("lammps data: missing box bounds");
  }
  if (positions.size() != atom_count) {
    throw ParseError("lammps data: expected " + std::to_string(atom_count) +
                     " atoms, parsed " + std::to_string(positions.size()));
  }

  Atoms atoms(std::move(positions));
  if (!ids.empty()) atoms.id = std::move(ids);
  if (velocities.size() == atoms.size()) {
    atoms.velocity = std::move(velocities);
  }
  Box box({lo[0], lo[1], lo[2]}, {hi[0], hi[1], hi[2]});
  return System(box, std::move(atoms), mass);
}

System read_lammps_data_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("lammps data: cannot open '" + path + "'");
  }
  // Re-throw with the path up front so callers see file and line at once.
  try {
    return read_lammps_data(in);
  } catch (const ParseError& e) {
    throw ParseError(path + ": " + e.what());
  }
}

}  // namespace sdcmd
