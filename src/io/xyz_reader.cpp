#include "io/xyz_reader.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace sdcmd {

namespace {

/// getline consumed the offending line's newline, so the stream sits one
/// line past it: report the line just read, not the read position.
[[noreturn]] void fail(std::istream& in, const std::string& message) {
  const long line = stream_line_number(in);
  const std::string at =
      line > 1 ? " (line " + std::to_string(line - 1) + ")" : std::string();
  throw ParseError("xyz: " + message + at);
}

/// Parse `Lattice="ax ay az bx by bz cx cy cz"` from an extended-XYZ
/// comment. Only orthorhombic lattices map onto sdcmd's Box; anything else
/// is reported as absent rather than silently mangled.
std::optional<Box> parse_lattice(const std::string& comment) {
  const auto key = comment.find("Lattice=\"");
  if (key == std::string::npos) return std::nullopt;
  const auto begin = key + 9;
  const auto end = comment.find('"', begin);
  if (end == std::string::npos) return std::nullopt;

  std::istringstream is(comment.substr(begin, end - begin));
  double m[9];
  for (double& v : m) {
    if (!(is >> v)) return std::nullopt;
  }
  const bool orthorhombic = m[1] == 0.0 && m[2] == 0.0 && m[3] == 0.0 &&
                            m[5] == 0.0 && m[6] == 0.0 && m[7] == 0.0;
  if (!orthorhombic || m[0] <= 0.0 || m[4] <= 0.0 || m[8] <= 0.0) {
    return std::nullopt;
  }
  return Box({0.0, 0.0, 0.0}, {m[0], m[4], m[8]});
}

}  // namespace

std::optional<XyzFrame> read_xyz_frame(std::istream& in) {
  std::string line;
  // Skip blank separators between frames.
  do {
    if (!std::getline(in, line)) return std::nullopt;
  } while (line.find_first_not_of(" \t\r") == std::string::npos);

  std::size_t count = 0;
  try {
    count = std::stoul(line);
  } catch (const std::exception&) {
    fail(in, "expected an atom count, got '" + line + "'");
  }

  XyzFrame frame;
  if (!std::getline(in, frame.comment)) {
    fail(in, "missing comment line");
  }
  frame.box = parse_lattice(frame.comment);

  frame.positions.reserve(count);
  frame.species.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      fail(in, "truncated frame: expected " + std::to_string(count) +
                   " atoms, got " + std::to_string(i));
    }
    std::istringstream fields(line);
    std::string species;
    Vec3 r;
    if (!(fields >> species >> r.x >> r.y >> r.z)) {
      fail(in, "malformed atom line '" + line + "'");
    }
    frame.species.push_back(std::move(species));
    frame.positions.push_back(r);
  }
  return frame;
}

std::vector<XyzFrame> read_xyz_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("xyz: cannot open '" + path + "'");
  }
  // Re-throw with the path up front so a multi-file pipeline names the
  // offending file as well as the offending line.
  try {
    std::vector<XyzFrame> frames;
    while (auto frame = read_xyz_frame(in)) {
      frames.push_back(std::move(*frame));
    }
    return frames;
  } catch (const ParseError& e) {
    throw ParseError(path + ": " + e.what());
  }
}

}  // namespace sdcmd
