// LAMMPS data-file I/O (atom_style atomic, single type).
//
// Lets sdcmd configurations round-trip with LAMMPS: export a strained or
// quenched system for cross-checking with `pair_style eam/alloy` (the
// make_setfl tool writes the matching potential file), or import a LAMMPS
// prepared system.
#pragma once

#include <iosfwd>
#include <string>

#include "md/system.hpp"

namespace sdcmd {

/// Write a `read_data`-compatible file with Atoms (atomic style) and
/// Velocities sections.
void write_lammps_data(std::ostream& out, const System& system,
                       const std::string& comment = "sdcmd export");
void write_lammps_data_file(const std::string& path, const System& system,
                            const std::string& comment = "sdcmd export");

/// Parse a single-type atomic-style data file. Throws ParseError on
/// malformed input or unsupported content (multiple types, tilt factors).
System read_lammps_data(std::istream& in);
System read_lammps_data_file(const std::string& path);

}  // namespace sdcmd
