#include "io/checkpoint.hpp"

#include <fstream>
#include <iomanip>

#include "common/error.hpp"

namespace sdcmd {

namespace {
constexpr const char* kMagic = "sdcmd-checkpoint";
constexpr int kVersion = 1;
}  // namespace

void save_checkpoint(std::ostream& out, const System& system, long step) {
  const Atoms& atoms = system.atoms();
  const Box& box = system.box();
  out << kMagic << ' ' << kVersion << '\n';
  out << "step " << step << '\n';
  // 17 significant digits round-trip IEEE doubles exactly.
  out << std::setprecision(17);
  out << "mass " << system.mass() << '\n';
  out << "box " << box.lo().x << ' ' << box.lo().y << ' ' << box.lo().z
      << ' ' << box.hi().x << ' ' << box.hi().y << ' ' << box.hi().z << ' '
      << box.periodic(0) << ' ' << box.periodic(1) << ' ' << box.periodic(2)
      << '\n';
  out << "atoms " << atoms.size() << '\n';
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const Vec3& r = atoms.position[i];
    const Vec3& v = atoms.velocity[i];
    out << atoms.id[i] << ' ' << r.x << ' ' << r.y << ' ' << r.z << ' '
        << v.x << ' ' << v.y << ' ' << v.z << ' ' << atoms.image[i][0]
        << ' ' << atoms.image[i][1] << ' ' << atoms.image[i][2] << '\n';
  }
}

void save_checkpoint_file(const std::string& path, const System& system,
                          long step) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot open '" + path + "' for writing");
  }
  save_checkpoint(out, system, step);
}

Checkpoint load_checkpoint(std::istream& in) {
  std::string magic, key;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    throw ParseError("checkpoint: bad magic");
  }
  if (version != kVersion) {
    throw ParseError("checkpoint: unsupported version " +
                     std::to_string(version));
  }

  long step = 0;
  double mass = 0.0;
  if (!(in >> key >> step) || key != "step") {
    throw ParseError("checkpoint: missing step");
  }
  if (!(in >> key >> mass) || key != "mass") {
    throw ParseError("checkpoint: missing mass");
  }

  Vec3 lo, hi;
  bool px, py, pz;
  if (!(in >> key >> lo.x >> lo.y >> lo.z >> hi.x >> hi.y >> hi.z >> px >>
        py >> pz) ||
      key != "box") {
    throw ParseError("checkpoint: missing box");
  }

  std::size_t count = 0;
  if (!(in >> key >> count) || key != "atoms") {
    throw ParseError("checkpoint: missing atom count");
  }

  Atoms atoms(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t id;
    Vec3 r, v;
    int ix, iy, iz;
    if (!(in >> id >> r.x >> r.y >> r.z >> v.x >> v.y >> v.z >> ix >> iy >>
          iz)) {
      throw ParseError("checkpoint: truncated atom table at row " +
                       std::to_string(i));
    }
    atoms.id[i] = id;
    atoms.position[i] = r;
    atoms.velocity[i] = v;
    atoms.image[i] = {ix, iy, iz};
  }

  Box box(lo, hi, {px, py, pz});
  return Checkpoint{System(box, std::move(atoms), mass), step};
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("checkpoint: cannot open '" + path + "'");
  }
  return load_checkpoint(in);
}

}  // namespace sdcmd
