#include "io/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <sstream>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace sdcmd {

namespace {

constexpr const char* kMagic = "sdcmd-checkpoint";
// v1: bare payload. v2: payload + "checksum fnv1a64 <hex>" footer.
constexpr int kVersion = 2;
constexpr const char* kFooterTag = "checksum fnv1a64 ";

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool finite3(const Vec3& v) {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

void write_payload(std::ostream& out, const System& system, long step) {
  const Atoms& atoms = system.atoms();
  const Box& box = system.box();
  out << kMagic << ' ' << kVersion << '\n';
  out << "step " << step << '\n';
  // 17 significant digits round-trip IEEE doubles exactly.
  out << std::setprecision(17);
  out << "mass " << system.mass() << '\n';
  out << "box " << box.lo().x << ' ' << box.lo().y << ' ' << box.lo().z
      << ' ' << box.hi().x << ' ' << box.hi().y << ' ' << box.hi().z << ' '
      << box.periodic(0) << ' ' << box.periodic(1) << ' ' << box.periodic(2)
      << '\n';
  out << "atoms " << atoms.size() << '\n';
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const Vec3& r = atoms.position[i];
    const Vec3& v = atoms.velocity[i];
    out << atoms.id[i] << ' ' << r.x << ' ' << r.y << ' ' << r.z << ' '
        << v.x << ' ' << v.y << ' ' << v.z << ' ' << atoms.image[i][0]
        << ' ' << atoms.image[i][1] << ' ' << atoms.image[i][2] << '\n';
  }
}

Checkpoint parse_payload(const std::string& payload, int version) {
  std::istringstream in(payload);
  std::string magic, key;
  int declared_version = 0;
  in >> magic >> declared_version;  // already validated by the caller
  (void)version;

  long step = 0;
  double mass = 0.0;
  if (!(in >> key >> step) || key != "step") {
    throw ParseError("checkpoint: missing step");
  }
  if (!(in >> key >> mass) || key != "mass") {
    throw ParseError("checkpoint: missing mass");
  }
  if (!std::isfinite(mass) || mass <= 0.0) {
    throw ParseError("checkpoint: mass must be finite and positive");
  }

  Vec3 lo, hi;
  bool px, py, pz;
  if (!(in >> key >> lo.x >> lo.y >> lo.z >> hi.x >> hi.y >> hi.z >> px >>
        py >> pz) ||
      key != "box") {
    throw ParseError("checkpoint: missing box");
  }
  if (!finite3(lo) || !finite3(hi)) {
    throw ParseError("checkpoint: box extents must be finite");
  }
  for (int dim = 0; dim < 3; ++dim) {
    if (!(hi[dim] > lo[dim])) {
      throw ParseError("checkpoint: box hi must exceed lo on every axis");
    }
  }

  std::size_t count = 0;
  if (!(in >> key >> count) || key != "atoms") {
    throw ParseError("checkpoint: missing atom count");
  }
  // Fail fast on truncated files: each atom occupies one payload line, so
  // the declared count cannot exceed the lines that remain. This rejects
  // garbage counts before they turn into a huge Atoms allocation.
  const auto here = in.tellg();
  if (here >= 0) {
    const std::size_t remaining_lines = static_cast<std::size_t>(
        std::count(payload.begin() + static_cast<std::ptrdiff_t>(here),
                   payload.end(), '\n'));
    if (remaining_lines < count) {
      throw ParseError("checkpoint: declares " + std::to_string(count) +
                       " atoms but only " + std::to_string(remaining_lines) +
                       " rows remain (truncated file?)");
    }
  }

  Atoms atoms(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t id;
    Vec3 r, v;
    int ix, iy, iz;
    if (!(in >> id >> r.x >> r.y >> r.z >> v.x >> v.y >> v.z >> ix >> iy >>
          iz)) {
      throw ParseError("checkpoint: truncated atom table at row " +
                       std::to_string(i));
    }
    if (!finite3(r) || !finite3(v)) {
      throw ParseError("checkpoint: non-finite position or velocity at row " +
                       std::to_string(i));
    }
    atoms.id[i] = id;
    atoms.position[i] = r;
    atoms.velocity[i] = v;
    atoms.image[i] = {ix, iy, iz};
  }

  Box box(lo, hi, {px, py, pz});
  return Checkpoint{System(box, std::move(atoms), mass), step};
}

}  // namespace

void save_checkpoint(std::ostream& out, const System& system, long step) {
  // Compose the payload first so the checksum footer can cover its exact
  // bytes; the loader verifies it before parsing anything else.
  std::ostringstream payload;
  write_payload(payload, system, step);
  const std::string text = payload.str();
  out << text << kFooterTag << std::hex << std::setw(16) << std::setfill('0')
      << fnv1a64(text) << '\n';
}

void save_checkpoint_file(const std::string& path, const System& system,
                          long step) {
  std::ostringstream buffer;
  save_checkpoint(buffer, system, step);
  std::string text = buffer.str();

  // Fault injection: keep only a prefix of the payload and bail before the
  // rename, exactly what a crash mid-write leaves behind.
  bool simulate_crash = false;
  if (const auto fault = FaultInjector::instance().should_fire(
          faults::kCheckpointShortWrite)) {
    const double kept =
        fault->magnitude > 0.0 && fault->magnitude < 1.0 ? fault->magnitude
                                                         : 0.5;
    text.resize(static_cast<std::size_t>(
        static_cast<double>(text.size()) * kept));
    simulate_crash = true;
  }

  // Temp-then-rename: an interrupted save leaves a stale .tmp file behind
  // but never clobbers the previous good checkpoint at `path`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error("checkpoint: cannot open '" + tmp + "' for writing");
    }
    out << text;
    out.flush();
    if (!out) {
      throw Error("checkpoint: short write to '" + tmp + "'");
    }
  }
  if (simulate_crash) {
    throw Error("checkpoint: fault-injected crash during write of '" + tmp +
                "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw Error("checkpoint: cannot rename '" + tmp + "' to '" + path + "'");
  }
}

Checkpoint load_checkpoint(std::istream& in) {
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};

  std::istringstream header(text);
  std::string magic;
  int version = 0;
  if (!(header >> magic >> version) || magic != kMagic) {
    throw ParseError("checkpoint: bad magic");
  }
  if (version != 1 && version != kVersion) {
    throw ParseError("checkpoint: unsupported version " +
                     std::to_string(version));
  }

  if (version == 1) {
    // Legacy files carry no checksum; parse them as-is.
    return parse_payload(text, version);
  }

  const std::size_t footer = text.rfind(kFooterTag);
  if (footer == std::string::npos ||
      (footer != 0 && text[footer - 1] != '\n')) {
    throw ParseError("checkpoint: missing checksum footer");
  }
  const std::string payload = text.substr(0, footer);
  std::uint64_t declared = 0;
  {
    std::istringstream f(text.substr(footer + std::string(kFooterTag).size()));
    if (!(f >> std::hex >> declared)) {
      throw ParseError("checkpoint: malformed checksum footer");
    }
  }
  const std::uint64_t actual = fnv1a64(payload);
  if (actual != declared) {
    std::ostringstream os;
    os << "checkpoint: checksum mismatch (stored " << std::hex << declared
       << ", computed " << actual << "); file is corrupt";
    throw ChecksumError(os.str());
  }
  return parse_payload(payload, version);
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ParseError("checkpoint: cannot open '" + path + "'");
  }
  return load_checkpoint(in);
}

}  // namespace sdcmd
