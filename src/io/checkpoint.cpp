#include "io/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iterator>
#include <sstream>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/hash.hpp"

namespace sdcmd {

namespace {

constexpr const char* kMagic = "sdcmd-checkpoint";
// v1: bare payload. v2: payload + "checksum fnv1a64 <hex>" footer.
constexpr int kVersion = 2;
constexpr const char* kFooterTag = "checksum fnv1a64 ";

bool finite3(const Vec3& v) {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

/// " (line L, byte B)" for the stream's current read position inside
/// `payload`, so a truncation report points at the exact spot — the same
/// one-glance triage the setfl/funcfl ParseErrors give via line numbers.
/// Falls back to the end of the payload when the stream position is gone
/// (extraction already hit EOF).
std::string at_offset(std::istringstream& in, const std::string& payload) {
  const auto pos = in.tellg();
  const std::size_t byte =
      pos >= 0 ? static_cast<std::size_t>(pos) : payload.size();
  const std::size_t line =
      1 + static_cast<std::size_t>(
              std::count(payload.begin(),
                         payload.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(byte, payload.size())),
                         '\n'));
  return " (line " + std::to_string(line) + ", byte " + std::to_string(byte) +
         " of " + std::to_string(payload.size()) + ")";
}

void write_payload(std::ostream& out, const System& system, long step) {
  const Atoms& atoms = system.atoms();
  const Box& box = system.box();
  out << kMagic << ' ' << kVersion << '\n';
  out << "step " << step << '\n';
  // 17 significant digits round-trip IEEE doubles exactly.
  out << std::setprecision(17);
  out << "mass " << system.mass() << '\n';
  out << "box " << box.lo().x << ' ' << box.lo().y << ' ' << box.lo().z
      << ' ' << box.hi().x << ' ' << box.hi().y << ' ' << box.hi().z << ' '
      << box.periodic(0) << ' ' << box.periodic(1) << ' ' << box.periodic(2)
      << '\n';
  out << "atoms " << atoms.size() << '\n';
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const Vec3& r = atoms.position[i];
    const Vec3& v = atoms.velocity[i];
    out << atoms.id[i] << ' ' << r.x << ' ' << r.y << ' ' << r.z << ' '
        << v.x << ' ' << v.y << ' ' << v.z << ' ' << atoms.image[i][0]
        << ' ' << atoms.image[i][1] << ' ' << atoms.image[i][2] << '\n';
  }
}

Checkpoint parse_payload(const std::string& payload, int version) {
  std::istringstream in(payload);
  std::string magic, key;
  int declared_version = 0;
  in >> magic >> declared_version;  // already validated by the caller
  (void)version;

  long step = 0;
  double mass = 0.0;
  if (!(in >> key >> step) || key != "step") {
    throw ParseError("checkpoint: missing step" + at_offset(in, payload));
  }
  if (!(in >> key >> mass) || key != "mass") {
    throw ParseError("checkpoint: missing mass" + at_offset(in, payload));
  }
  if (!std::isfinite(mass) || mass <= 0.0) {
    throw ParseError("checkpoint: mass must be finite and positive" +
                     at_offset(in, payload));
  }

  Vec3 lo, hi;
  bool px, py, pz;
  if (!(in >> key >> lo.x >> lo.y >> lo.z >> hi.x >> hi.y >> hi.z >> px >>
        py >> pz) ||
      key != "box") {
    throw ParseError("checkpoint: missing box" + at_offset(in, payload));
  }
  if (!finite3(lo) || !finite3(hi)) {
    throw ParseError("checkpoint: box extents must be finite" +
                     at_offset(in, payload));
  }
  for (int dim = 0; dim < 3; ++dim) {
    if (!(hi[dim] > lo[dim])) {
      throw ParseError("checkpoint: box hi must exceed lo on every axis" +
                       at_offset(in, payload));
    }
  }

  std::size_t count = 0;
  if (!(in >> key >> count) || key != "atoms") {
    throw ParseError("checkpoint: missing atom count" + at_offset(in, payload));
  }
  // Fail fast on truncated files: each atom occupies one payload line, so
  // the declared count cannot exceed the lines that remain. This rejects
  // garbage counts before they turn into a huge Atoms allocation.
  const auto here = in.tellg();
  if (here >= 0) {
    const std::size_t remaining_lines = static_cast<std::size_t>(
        std::count(payload.begin() + static_cast<std::ptrdiff_t>(here),
                   payload.end(), '\n'));
    if (remaining_lines < count) {
      throw ParseError("checkpoint: declares " + std::to_string(count) +
                       " atoms but only " + std::to_string(remaining_lines) +
                       " rows remain (truncated file?)" +
                       at_offset(in, payload));
    }
  }

  Atoms atoms(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t id;
    Vec3 r, v;
    int ix, iy, iz;
    // Remember where this row started: after a failed extraction tellg()
    // returns -1, so the error location must come from before the read.
    const auto row_start = in.tellg();
    if (!(in >> id >> r.x >> r.y >> r.z >> v.x >> v.y >> v.z >> ix >> iy >>
          iz)) {
      std::istringstream marker(payload);
      marker.seekg(row_start >= 0
                       ? static_cast<std::streamoff>(row_start)
                       : static_cast<std::streamoff>(payload.size()));
      throw ParseError("checkpoint: truncated atom table at row " +
                       std::to_string(i) + " of " + std::to_string(count) +
                       at_offset(marker, payload));
    }
    if (!finite3(r) || !finite3(v)) {
      throw ParseError("checkpoint: non-finite position or velocity at row " +
                       std::to_string(i) + at_offset(in, payload));
    }
    atoms.id[i] = id;
    atoms.position[i] = r;
    atoms.velocity[i] = v;
    atoms.image[i] = {ix, iy, iz};
  }

  Box box(lo, hi, {px, py, pz});
  return Checkpoint{System(box, std::move(atoms), mass), step};
}

}  // namespace

void save_checkpoint(std::ostream& out, const System& system, long step) {
  // Compose the payload first so the checksum footer can cover its exact
  // bytes; the loader verifies it before parsing anything else.
  std::ostringstream payload;
  write_payload(payload, system, step);
  const std::string text = payload.str();
  out << text << kFooterTag << std::hex << std::setw(16) << std::setfill('0')
      << fnv1a64(text) << '\n';
}

void save_checkpoint_file(const std::string& path, const System& system,
                          long step) {
  std::ostringstream buffer;
  save_checkpoint(buffer, system, step);
  std::string text = buffer.str();

  // Fault injection: the write stops after a prefix of the payload — the
  // short write an ENOSPC or a dying disk produces. The writer detects it
  // below, cleans up and throws like any real failure.
  bool simulate_short_write = false;
  if (const auto fault = FaultInjector::instance().should_fire(
          faults::kCheckpointShortWrite)) {
    const double kept =
        fault->magnitude > 0.0 && fault->magnitude < 1.0 ? fault->magnitude
                                                         : 0.5;
    text.resize(static_cast<std::size_t>(
        static_cast<double>(text.size()) * kept));
    simulate_short_write = true;
  }

  // Temp-then-rename: a failed or interrupted save never clobbers the
  // previous good checkpoint at `path`, and every error path below removes
  // the temp file so retries (and keep-last-K ring pruning) never trip
  // over a stale `.tmp`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::remove(tmp.c_str());  // in case open() itself left a husk
      throw Error("checkpoint: cannot open '" + tmp + "' for writing");
    }
    out << text;
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw Error("checkpoint: short write to '" + tmp + "'");
    }
  }
  if (simulate_short_write) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: short write to '" + tmp +
                "' (injected checkpoint.short_write)");
  }
  if (FaultInjector::instance().should_fire(faults::kDiskFull)) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: write failed on '" + tmp +
                "': no space left on device (injected run.disk_full)");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: cannot rename '" + tmp + "' to '" + path + "'");
  }
}

Checkpoint load_checkpoint(std::istream& in) {
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};

  std::istringstream header(text);
  std::string magic;
  int version = 0;
  if (!(header >> magic >> version) || magic != kMagic) {
    throw ParseError("checkpoint: bad magic");
  }
  if (version != 1 && version != kVersion) {
    throw ParseError("checkpoint: unsupported version " +
                     std::to_string(version));
  }

  if (version == 1) {
    // Legacy files carry no checksum; parse them as-is.
    return parse_payload(text, version);
  }

  const std::size_t footer = text.rfind(kFooterTag);
  if (footer == std::string::npos ||
      (footer != 0 && text[footer - 1] != '\n')) {
    throw ParseError("checkpoint: missing checksum footer (file ends at byte " +
                     std::to_string(text.size()) + "; truncated?)");
  }
  const std::string payload = text.substr(0, footer);
  std::uint64_t declared = 0;
  {
    std::istringstream f(text.substr(footer + std::string(kFooterTag).size()));
    if (!(f >> std::hex >> declared)) {
      throw ParseError("checkpoint: malformed checksum footer at byte " +
                       std::to_string(footer));
    }
  }
  const std::uint64_t actual = fnv1a64(payload);
  if (actual != declared) {
    std::ostringstream os;
    os << "checkpoint: checksum mismatch (stored " << std::hex << declared
       << ", computed " << actual << " over " << std::dec << payload.size()
       << " payload bytes); file is corrupt";
    throw ChecksumError(os.str());
  }
  return parse_payload(payload, version);
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ParseError("checkpoint: cannot open '" + path + "'");
  }
  // Re-throw with the path up front so a resume scan over a ring of
  // candidates names the offending file, not just the offending byte.
  try {
    return load_checkpoint(in);
  } catch (const ChecksumError& e) {
    throw ChecksumError(path + ": " + e.what());
  } catch (const ParseError& e) {
    throw ParseError(path + ": " + e.what());
  }
}

}  // namespace sdcmd
