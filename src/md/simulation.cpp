#include "md/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/threads.hpp"
#include "common/timer.hpp"
#include "core/race_check.hpp"
#include "md/velocity.hpp"
#include "neighbor/reorder.hpp"

namespace sdcmd {

namespace {
/// Trace track for driver-level events (OpenMP worker tracks are 0..N-1).
constexpr int kDriverTid = 1000;
/// Skin backoff: growth per retry and the retry budget (bounded so a
/// pathological run cannot inflate the interaction range without limit).
constexpr double kSkinBackoffFactor = 1.5;
constexpr int kMaxSkinBackoffs = 3;
}  // namespace

Simulation::Simulation(System system, const EamPotential& potential,
                       SimulationConfig config)
    : Simulation(std::move(system),
                 std::make_unique<EamForceProvider>(potential, config.force),
                 config) {}

Simulation::Simulation(System system, const PairPotential& potential,
                       SimulationConfig config)
    : Simulation(std::move(system),
                 std::make_unique<PairForceProvider>(
                     potential,
                     PairForceConfig{config.force.strategy, config.force.sdc,
                                     config.force.dynamic_schedule}),
                 config) {}

Simulation::Simulation(System system,
                       std::unique_ptr<ForceProvider> provider,
                       SimulationConfig config)
    : system_(std::move(system)),
      config_(config),
      integrator_(config.dt, system_.mass()),
      provider_(std::move(provider)),
      skin_(config.skin) {
  SDCMD_REQUIRE(provider_ != nullptr, "force provider must not be null");
  rebuild_geometry();
}

EamForceComputer& Simulation::force_computer() {
  EamForceComputer* computer = provider_->eam_computer();
  SDCMD_REQUIRE(computer != nullptr,
                "the active force backend is not an EAM computer");
  return *computer;
}

const EamForceComputer& Simulation::force_computer() const {
  EamForceComputer* computer =
      const_cast<ForceProvider&>(*provider_).eam_computer();
  SDCMD_REQUIRE(computer != nullptr,
                "the active force backend is not an EAM computer");
  return *computer;
}

void Simulation::rebuild_geometry() {
  // Box or range changed: the governor gets first say, so a demoted
  // strategy is already active when the schedule below is attached.
  govern_box_change();

  NeighborListConfig nl;
  nl.cutoff = provider_->cutoff();
  nl.skin = skin_;
  nl.mode = provider_->required_mode();
  nl.sort_neighbors = config_.sort_neighbors;
  nl.half_stencil = config_.half_stencil;
  nl.parallel_bin = config_.parallel_bin;
  // SIMD backends (the EAM SoA fast path) ask for vector-width-padded
  // neighbor tiles; 0 skips the extra arrays. Part of config_compatible,
  // so toggling the fast path reconstructs the list.
  nl.pad_width = provider_->neighbor_pad_width();
  if (list_ != nullptr && list_->config_compatible(nl)) {
    // Same list configuration, new box: adapt in place. Storage is reused
    // and the cell grid recomputes stencils only when its shape changes -
    // a steady-state barostat run performs zero heap reconstructions.
    list_->update_box(system_.box());
  } else {
    // Configuration changed (first construction, skin backoff, governor
    // mode swap): fold the outgoing list's stats into the cumulative base
    // and reconstruct.
    if (list_ != nullptr) {
      const NeighborBuildStats& s = list_->stats();
      neighbor_stats_base_.builds += s.builds;
      neighbor_stats_base_.grid_reshapes += s.grid_reshapes;
      neighbor_stats_base_.stencil_rebuilds += s.stencil_rebuilds;
      neighbor_stats_base_.bin_seconds += s.bin_seconds;
      neighbor_stats_base_.count_seconds += s.count_seconds;
      neighbor_stats_base_.fill_seconds += s.fill_seconds;
    }
    list_ = std::make_unique<NeighborList>(system_.box(), nl);
    ++list_reconstructions_;
  }

  provider_->attach_schedule(system_.box(), provider_->cutoff() + skin_);
  rebuild_lists();
}

NeighborBuildStats Simulation::neighbor_stats() const {
  NeighborBuildStats s = neighbor_stats_base_;
  if (list_ != nullptr) {
    const NeighborBuildStats& cur = list_->stats();
    s.builds += cur.builds;
    s.grid_reshapes += cur.grid_reshapes;
    s.stencil_rebuilds += cur.stencil_rebuilds;
    s.bin_seconds += cur.bin_seconds;
    s.count_seconds += cur.count_seconds;
    s.fill_seconds += cur.fill_seconds;
    s.last_bin_seconds = cur.last_bin_seconds;
    s.last_count_seconds = cur.last_count_seconds;
    s.last_fill_seconds = cur.last_fill_seconds;
  }
  return s;
}

void Simulation::rebuild_lists() {
  system_.wrap_positions();
  if (config_.reorder_atoms) {
    const auto perm = spatial_sort_permutation(
        system_.box(), system_.atoms().position,
        provider_->cutoff() + skin_);
    system_.atoms().reorder(perm);
  }
  list_->build(system_.atoms().position);
  provider_->on_neighbor_rebuild(system_.atoms().position);
  steps_since_rebuild_ = 0;
  ++rebuilds_;
  obs_count(obs_handles_.rebuilds);
  forces_current_ = false;
}

bool Simulation::lists_stale() const {
  if (config_.rebuild_interval > 0) {
    // The check runs mid-step (after the drift), so "every N steps" means
    // the rebuild lands inside steps N, 2N, ... exactly.
    return steps_since_rebuild_ + 1 >= config_.rebuild_interval;
  }
  return list_->needs_rebuild(system_.atoms().position);
}

void Simulation::compute_forces() {
  if (forces_current_) return;
  last_result_ = provider_->compute(system_.box(), system_.atoms(), *list_);
  forces_current_ = true;
}

void Simulation::set_temperature(double temperature, std::uint64_t seed) {
  maxwell_boltzmann_velocities(system_.atoms().velocity, system_.mass(),
                               temperature, seed);
  // Velocity init zeroed the COM momentum; thermo reporting uses 3N - 3
  // DOF from here on (unless a non-conserving thermostat re-injects it).
  momentum_zeroed_ = true;
}

void Simulation::set_thermostat(std::unique_ptr<Thermostat> thermostat) {
  thermostat_ = std::move(thermostat);
}

void Simulation::set_deformer(BoxDeformer deformer, int every) {
  SDCMD_REQUIRE(every >= 1, "deformation interval must be >= 1");
  deformer_ = deformer;
  deform_every_ = every;
}

void Simulation::set_barostat(BerendsenBarostat barostat, int every) {
  SDCMD_REQUIRE(every >= 1, "barostat interval must be >= 1");
  barostat_ = barostat;
  barostat_every_ = every;
}

void Simulation::set_guardrails(GuardrailConfig config) {
  SDCMD_REQUIRE(config.checkpoint_every >= 0,
                "checkpoint interval must be non-negative");
  SDCMD_REQUIRE(config.max_rollbacks >= 0,
                "rollback budget must be non-negative");
  guard_ = std::move(config);
  monitor_ = std::make_unique<HealthMonitor>(guard_->health);
  snapshot_.reset();
  rollbacks_ = 0;
}

void Simulation::clear_guardrails() {
  guard_.reset();
  monitor_.reset();
  snapshot_.reset();
  rollbacks_ = 0;
}

void Simulation::set_governor(GovernorConfig config) {
  if (std::optional<SdcConfig> sdc = provider_->sdc_config()) {
    config.sdc = *sdc;  // probe with the config attach_schedule will use
  }
  // Only the EAM backend implements cell-task kernels; on the pair backend
  // the ladder must step over that rung.
  if (provider_->eam_computer() == nullptr) config.enable_celltask = false;
  governor_ = std::make_unique<StrategyGovernor>(config);
  init_governor();
}

void Simulation::set_governor(GovernorConfig config,
                              const GovernorState& state) {
  if (std::optional<SdcConfig> sdc = provider_->sdc_config()) {
    config.sdc = *sdc;
  }
  if (provider_->eam_computer() == nullptr) config.enable_celltask = false;
  governor_ = std::make_unique<StrategyGovernor>(config);
  governor_->restore_state(state);
  init_governor();
}

void Simulation::clear_governor() { governor_.reset(); }

void Simulation::init_governor() {
  SDCMD_REQUIRE(provider_->strategy().has_value(),
                "the active force backend has no reduction strategy for the "
                "governor to manage");
  const GovernorDecision decision = governor_->setup(
      system_.box(), provider_->cutoff() + skin_, max_threads(),
      system_.size());
  apply_governor_decision(decision);
  // Rebuild unconditionally: the provider may have been constructed with a
  // different strategy (e.g. Sdc) than the governor just selected, and a
  // selected Sdc rung needs its schedule attached.
  rebuild_geometry();
  if (!decision.reason.empty()) {
    SDCMD_DEBUG("governor: " << decision.reason);
  }
}

void Simulation::govern_box_change() {
  if (!governor_) return;
  const GovernorDecision decision = governor_->on_box_change(
      system_.box(), provider_->cutoff() + skin_, max_threads(),
      system_.size());
  // The enclosing rebuild_geometry finishes the job (fresh list, schedule
  // attach), so only the strategy swap + bookkeeping happens here.
  if (decision.changed()) apply_governor_decision(decision);
}

void Simulation::govern_after_step() {
  const GovernorConfig& gc = governor_->config();
  if (gc.shadow_check_every > 0 && step_ % gc.shadow_check_every == 0) {
    shadow_validate();
  }
  const GovernorDecision decision = governor_->on_step(
      system_.box(), provider_->cutoff() + skin_, max_threads(),
      system_.size());
  if (decision.changed()) {
    apply_governor_decision(decision);
    rebuild_geometry();
  }
}

void Simulation::apply_governor_decision(const GovernorDecision& decision) {
  if (provider_->strategy() != decision.strategy) {
    SDCMD_REQUIRE(provider_->set_strategy(decision.strategy),
                  "force backend refused the governor's strategy swap to " +
                      to_string(decision.strategy));
  }
  switch (decision.event) {
    case GovernorEvent::Demotion:
      obs_count(obs_handles_.governor_demotions);
      obs_mark("governor.demote");
      SDCMD_WARN("governor: " << decision.reason);
      break;
    case GovernorEvent::Promotion:
      obs_count(obs_handles_.governor_promotions);
      obs_mark("governor.promote");
      SDCMD_WARN("governor: " << decision.reason);
      break;
    case GovernorEvent::None:
      break;
  }
  if (obs_.registry != nullptr) {
    obs_.registry->set(
        obs_handles_.governor_strategy,
        static_cast<double>(StrategyGovernor::strategy_code(
            governor_->active())));
  }
}

void Simulation::shadow_validate() {
  obs_count(obs_handles_.governor_shadow_checks);
  EamForceComputer* computer = provider_->eam_computer();
  bool mismatch = false;
  std::string detail;
  if (computer != nullptr) {
    compute_forces();  // a barostat rebuild may have left forces stale
    const Atoms& atoms = system_.atoms();
    const std::size_t n = atoms.size();
    shadow_rho_.resize(n);
    shadow_fp_.resize(n);
    shadow_force_.resize(n);
    computer->compute_serial_reference(system_.box(), atoms.position, *list_,
                                       shadow_rho_, shadow_fp_,
                                       shadow_force_);
    double max_dev = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_dev = std::max(max_dev, std::abs(atoms.rho[i] - shadow_rho_[i]));
      const Vec3 df = atoms.force[i] - shadow_force_[i];
      max_dev = std::max({max_dev, std::abs(df.x), std::abs(df.y),
                          std::abs(df.z)});
    }
    if (!(max_dev <= governor_->config().shadow_tolerance)) {
      mismatch = true;
      detail = "max rho/force deviation " + std::to_string(max_dev) +
               " vs serial reference";
    }
    // The numeric pass can miss a race that happened not to fire this
    // step; when SDC is active also verify the schedule geometrically.
    if (!mismatch && governor_->active() == ReductionStrategy::Sdc &&
        computer->schedule() != nullptr) {
      const RaceCheckReport report =
          check_schedule_race_free(*computer->schedule(), *list_);
      if (!report.race_free) {
        mismatch = true;
        detail = report.describe();
      }
    }
  }
  if (!mismatch) return;
  obs_count(obs_handles_.race_suspects);
  obs_mark("guard.strategy_race_suspect");
  const GovernorDecision decision = governor_->on_shadow_mismatch(detail);
  if (decision.changed()) {
    apply_governor_decision(decision);
    rebuild_geometry();
    forces_current_ = false;
    compute_forces();  // re-evaluate under the demoted strategy
  } else {
    SDCMD_WARN("governor: " << decision.reason);
  }
}

void Simulation::set_instrumentation(InstrumentationConfig config) {
  SDCMD_REQUIRE(config.sample_every >= 1,
                "instrumentation sample interval must be >= 1");
  SDCMD_REQUIRE(config.step_writer == nullptr || config.registry != nullptr,
                "a step writer needs a registry to snapshot");
  obs_ = config;
  if (obs_.registry != nullptr) {
    obs::MetricsRegistry& r = *obs_.registry;
    obs_handles_.steps = r.counter("sim.steps");
    obs_handles_.step_seconds = r.stats("sim.step_seconds");
    obs_handles_.rebuilds = r.counter("sim.neighbor_rebuilds");
    obs_handles_.checkpoints = r.counter("guard.checkpoints");
    obs_handles_.rollbacks = r.counter("guard.rollbacks");
    obs_handles_.health_checks = r.counter("guard.health_checks");
    obs_handles_.health_failures = r.counter("guard.health_failures");
    obs_handles_.dt = r.gauge("sim.dt");
    obs_handles_.pair_cache_bytes = r.gauge("eam.pair_cache_bytes");
    obs_handles_.cache_stores = r.counter("eam.cache_store_slots");
    obs_handles_.cache_reads = r.counter("eam.cache_read_slots");
    obs_handles_.soa_active = r.gauge("eam.soa_active");
    obs_handles_.soa_pad_fraction = r.gauge("eam.soa_pad_fraction");
    obs_handles_.task_spawned = r.counter("task.spawned");
    obs_handles_.task_steals = r.counter("task.steals");
    obs_handles_.task_queue_depth = r.gauge("task.max_queue_depth");
    obs_handles_.task_busy_min = r.gauge("task.busy_min");
    obs_handles_.task_busy_mean = r.gauge("task.busy_mean");
    obs_handles_.governor_strategy = r.gauge("governor.active_strategy");
    obs_handles_.governor_demotions = r.counter("governor.demotions");
    obs_handles_.governor_promotions = r.counter("governor.promotions");
    obs_handles_.governor_shadow_checks = r.counter("governor.shadow_checks");
    obs_handles_.race_suspects = r.counter("guard.strategy_race_suspect");
    obs_handles_.skin_backoffs = r.counter("neighbor.skin_backoffs");
    obs_handles_.grid_reshapes = r.counter("neighbor.grid_reshapes");
    obs_handles_.stencil_rebuilds = r.counter("neighbor.stencil_rebuilds");
    obs_handles_.reconstructions = r.counter("neighbor.reconstructions");
    obs_handles_.bin_seconds = r.counter("neighbor.bin_seconds");
    obs_handles_.count_seconds = r.counter("neighbor.count_seconds");
    obs_handles_.fill_seconds = r.counter("neighbor.fill_seconds");
    obs_handles_.list_bytes = r.gauge("neighbor.list_bytes");
    // hw.* / sweep.* gauges are interned only when the matching profiler is
    // requested: gauges are reported in every snapshot, so an uninterned
    // family keeps uninstrumented records clean.
    if (obs_.profile_hw) {
      obs_handles_.hw_available = r.gauge("hw.available");
      static const char* kHwPhases[3] = {"density", "embed", "force"};
      for (int p = 0; p < 3; ++p) {
        const std::string prefix = std::string("hw.") + kHwPhases[p];
        obs_handles_.hw_ipc[static_cast<std::size_t>(p)] =
            r.gauge(prefix + ".ipc");
        obs_handles_.hw_miss_rate[static_cast<std::size_t>(p)] =
            r.gauge(prefix + ".cache_miss_rate");
        obs_handles_.hw_cycles_per_atom[static_cast<std::size_t>(p)] =
            r.gauge(prefix + ".cycles_per_atom");
      }
      obs_handles_.hw_cycles = r.counter("hw.cycles");
      obs_handles_.hw_instructions = r.counter("hw.instructions");
    }
    if (obs_.profile_sweep) {
      obs_handles_.sweep_imbalance = r.gauge("sweep.imbalance");
      obs_handles_.sweep_barrier_frac = r.gauge("sweep.barrier_frac");
    }
    // Counters measure from attach: seed the delta trackers with the
    // current cumulative stats so construction-time work is not charged
    // to the first instrumented step.
    const NeighborBuildStats ns = neighbor_stats();
    if (const EamForceComputer* computer = provider_->eam_computer()) {
      obs_handles_.prev_soa_steps = computer->stats().soa_steps;
      obs_handles_.prev_task_spawned = computer->stats().task_spawned;
      obs_handles_.prev_task_steals = computer->stats().task_steals;
    }
    obs_handles_.prev_grid_reshapes = ns.grid_reshapes;
    obs_handles_.prev_stencil_rebuilds = ns.stencil_rebuilds;
    obs_handles_.prev_reconstructions = list_reconstructions_;
    obs_handles_.prev_bin_seconds = ns.bin_seconds;
    obs_handles_.prev_count_seconds = ns.count_seconds;
    obs_handles_.prev_fill_seconds = ns.fill_seconds;
    if (governor_ != nullptr) {
      r.set(obs_handles_.governor_strategy,
            static_cast<double>(
                StrategyGovernor::strategy_code(governor_->active())));
    }
  }
  if (EamForceComputer* computer = provider_->eam_computer()) {
    computer->sweep_profiler().set_enabled(obs_.profile_sweep);
    computer->hw_profiler().set_enabled(obs_.profile_hw);
  }
  if (obs_.profile_hw && obs_.registry != nullptr) {
    // Publish the availability verdict once: set_enabled may have refused
    // (paranoid level, non-Linux, non-EAM backend) and the no-op path must
    // still say so in the metrics stream.
    EamForceComputer* computer = provider_->eam_computer();
    const bool hw_on =
        computer != nullptr && computer->hw_profiler().enabled();
    obs_.registry->set(obs_handles_.hw_available, hw_on ? 1.0 : 0.0);
  }
  if (obs_.trace != nullptr) {
    obs_.trace->set_thread_name(kDriverTid, "driver");
  }
}

void Simulation::clear_instrumentation() {
  obs_ = InstrumentationConfig{};
  obs_handles_ = ObsHandles{};
  if (EamForceComputer* computer = provider_->eam_computer()) {
    computer->sweep_profiler().set_enabled(false);
    computer->hw_profiler().set_enabled(false);
  }
}

void Simulation::obs_mark(const std::string& name) {
  if (obs_.trace != nullptr) {
    obs_.trace->instant_event(name, "guardrail", wall_time(), kDriverTid);
  }
}

const obs::SdcSweepProfiler* Simulation::sweep_profiler() const {
  if (!obs_.profile_sweep) return nullptr;
  EamForceComputer* computer =
      const_cast<ForceProvider&>(*provider_).eam_computer();
  return computer != nullptr ? &computer->sweep_profiler() : nullptr;
}

void Simulation::set_dt(double dt) {
  SDCMD_REQUIRE(dt > 0.0, "time step must be positive");
  config_.dt = dt;
  integrator_ = VelocityVerlet(dt, system_.mass());
}

void Simulation::set_current_step(long step) {
  SDCMD_REQUIRE(step >= 0, "step counter must be non-negative");
  step_ = step;
  // A pre-resume snapshot would carry the old step numbering; drop it so
  // the next guardrail baseline re-snapshots under the restored counter.
  snapshot_.reset();
}

bool Simulation::rollback() {
  if (!snapshot_) return false;
  restore_snapshot();
  return true;
}

void Simulation::take_snapshot() {
  snapshot_.emplace(Snapshot{system_, step_});
  if (guard_ && guard_->checkpoint_sink) {
    guard_->checkpoint_sink(system_, step_);
  }
  obs_count(obs_handles_.checkpoints);
  obs_mark("checkpoint");
}

void Simulation::restore_snapshot() {
  system_ = snapshot_->system;
  step_ = snapshot_->step;
  if (monitor_) monitor_->reset_baseline();
  // The diverged state may have moved atoms arbitrarily (or changed the
  // box via a deformer); rebuild everything box- and position-dependent.
  rebuild_geometry();
  compute_forces();
}

void Simulation::guard_baseline() {
  if (snapshot_) return;
  obs_count(obs_handles_.health_checks);
  const HealthReport report = monitor_->check(system_, last_result_, step_,
                                              config_.dt, skin_);
  if (report.ok()) {
    take_snapshot();
  } else {
    handle_unhealthy(report);
  }
}

void Simulation::guard_after_step() {
  const bool checkpoint_due =
      guard_->checkpoint_every > 0 && step_ % guard_->checkpoint_every == 0;
  if (!checkpoint_due && !monitor_->due(step_)) return;

  obs_count(obs_handles_.health_checks);
  const HealthReport report = monitor_->check(system_, last_result_, step_,
                                              config_.dt, skin_);
  if (report.ok()) {
    if (checkpoint_due) take_snapshot();
    return;
  }
  handle_unhealthy(report);
}

void Simulation::handle_unhealthy(const HealthReport& report) {
  obs_count(obs_handles_.health_failures);
  switch (guard_->health.policy) {
    case HealthPolicy::Warn:
      SDCMD_WARN("health: " << report.summary());
      return;
    case HealthPolicy::Throw:
      throw HealthError("health check failed at " + report.summary());
    case HealthPolicy::Rollback:
      break;
  }
  if (!snapshot_) {
    throw HealthError("health check failed with no snapshot to roll back"
                      " to, at " + report.summary());
  }
  if (rollbacks_ >= guard_->max_rollbacks) {
    throw HealthError("rollback budget (" +
                      std::to_string(guard_->max_rollbacks) +
                      ") exhausted at " + report.summary());
  }
  ++rollbacks_;
  obs_count(obs_handles_.rollbacks);
  obs_mark("rollback");
  if (guard_->halve_dt_on_rollback) set_dt(config_.dt * 0.5);
  SDCMD_WARN("health: " << report.summary() << "; rolling back to step "
                        << snapshot_->step << " (rollback " << rollbacks_
                        << '/' << guard_->max_rollbacks << ", dt now "
                        << config_.dt << ')');
  restore_snapshot();
}

void Simulation::step_once() {
  compute_forces();
  Atoms& atoms = system_.atoms();

  integrator_.kick_drift(atoms.position, atoms.velocity, atoms.force);

  if (deformer_ && (step_ + 1) % deform_every_ == 0) {
    deformer_->apply(system_);
    // The box changed: the cell grid and SDC decomposition are invalid.
    rebuild_geometry();
  } else if (lists_stale()) {
    // Displacement-triggered rebuilds on consecutive steps mean the skin
    // no longer buys any reuse (classic under a shrinking box, where the
    // affine remap drags every atom each barostat step): grow it with
    // bounded backoff instead of rebuilding every step. The larger skin
    // widens the interaction range, so the governor re-validates via the
    // rebuild_geometry path.
    const bool storm = config_.rebuild_interval == 0 &&
                       step_ - last_displacement_rebuild_step_ <= 1;
    last_displacement_rebuild_step_ = step_;
    if (storm && skin_backoffs_ < kMaxSkinBackoffs) {
      ++skin_backoffs_;
      skin_ *= kSkinBackoffFactor;
      obs_count(obs_handles_.skin_backoffs);
      obs_mark("neighbor.skin_backoff");
      SDCMD_WARN("neighbor: rebuild storm detected; growing skin to "
                 << skin_ << " (backoff " << skin_backoffs_ << '/'
                 << kMaxSkinBackoffs << ')');
      rebuild_geometry();
    } else {
      rebuild_lists();
    }
  }

  forces_current_ = false;
  compute_forces();
  integrator_.kick(atoms.velocity, atoms.force);

  if (thermostat_) {
    thermostat_->apply(atoms.velocity, system_.mass(), config_.dt);
  }

  ++step_;
  ++steps_since_rebuild_;

  if (barostat_ && step_ % barostat_every_ == 0) {
    const double mu = barostat_->apply(system_, sample().pressure,
                                       config_.dt * barostat_every_);
    if (mu != 1.0) {
      rebuild_geometry();
    }
  }

  if (FaultInjector::instance().armed()) {
    if (const auto spec =
            FaultInjector::instance().should_fire(faults::kBoxShrink)) {
      // Simulated barostat collapse: isotropic rescale + affine remap,
      // exactly the real barostat's box-change shape.
      const double factor = spec->magnitude > 0.0 ? spec->magnitude : 0.5;
      const Box old_box = system_.box();
      system_.box().rescale({factor, factor, factor});
      for (auto& r : system_.atoms().position) {
        r = system_.box().affine_map(r, old_box);
      }
      rebuild_geometry();
    }
  }
}

void Simulation::run(long steps, const Callback& callback,
                     long callback_every) {
  SDCMD_REQUIRE(steps >= 0, "step count must be non-negative");
  compute_forces();
  if (monitor_) guard_baseline();
  // Run to an absolute target step: a rollback rewinds step_ and the
  // rewound stretch is re-run, so a guarded run still finishes at the
  // requested step (or throws once the rollback budget is spent).
  const long target = step_ + steps;
  const bool time_steps =
      obs_.registry != nullptr || obs_.trace != nullptr;
  while (step_ < target) {
    const double t0 = time_steps ? wall_time() : 0.0;
    step_once();
    const double step_wall = time_steps ? wall_time() - t0 : 0.0;
    if (obs_.registry != nullptr) {
      obs_.registry->add(obs_handles_.steps);
      obs_.registry->observe(obs_handles_.step_seconds, step_wall);
      obs_.registry->set(obs_handles_.dt, config_.dt);
      if (governor_ != nullptr) {
        obs_.registry->set(
            obs_handles_.governor_strategy,
            static_cast<double>(StrategyGovernor::strategy_code(
                governor_->active())));
      }
      if (const EamForceComputer* computer = provider_->eam_computer()) {
        const EamKernelStats& ks = computer->stats();
        obs_.registry->set(obs_handles_.pair_cache_bytes,
                           static_cast<double>(ks.pair_cache_bytes));
        obs_.registry->add(obs_handles_.cache_stores,
                           static_cast<double>(ks.cache_store_slots -
                                               obs_handles_.prev_cache_stores));
        obs_.registry->add(obs_handles_.cache_reads,
                           static_cast<double>(ks.cache_read_slots -
                                               obs_handles_.prev_cache_reads));
        obs_handles_.prev_cache_stores = ks.cache_store_slots;
        obs_handles_.prev_cache_reads = ks.cache_read_slots;
        // 1 when the step's compute() took the SIMD SoA fast path.
        obs_.registry->set(
            obs_handles_.soa_active,
            ks.soa_steps != obs_handles_.prev_soa_steps ? 1.0 : 0.0);
        obs_.registry->set(obs_handles_.soa_pad_fraction,
                           ks.soa_pad_fraction);
        obs_handles_.prev_soa_steps = ks.soa_steps;
        // CellTask work-stealing family: flat zeros unless the active
        // strategy is CellTask (the kernels never touch these otherwise).
        obs_.registry->add(obs_handles_.task_spawned,
                           static_cast<double>(ks.task_spawned -
                                               obs_handles_.prev_task_spawned));
        obs_.registry->add(obs_handles_.task_steals,
                           static_cast<double>(ks.task_steals -
                                               obs_handles_.prev_task_steals));
        obs_handles_.prev_task_spawned = ks.task_spawned;
        obs_handles_.prev_task_steals = ks.task_steals;
        obs_.registry->set(obs_handles_.task_queue_depth,
                           static_cast<double>(ks.task_max_queue_depth));
        obs_.registry->set(obs_handles_.task_busy_min, ks.task_busy_min);
        obs_.registry->set(obs_handles_.task_busy_mean, ks.task_busy_mean);
      }
      const NeighborBuildStats ns = neighbor_stats();
      obs_.registry->add(obs_handles_.grid_reshapes,
                         static_cast<double>(ns.grid_reshapes -
                                             obs_handles_.prev_grid_reshapes));
      obs_.registry->add(
          obs_handles_.stencil_rebuilds,
          static_cast<double>(ns.stencil_rebuilds -
                              obs_handles_.prev_stencil_rebuilds));
      obs_.registry->add(
          obs_handles_.reconstructions,
          static_cast<double>(list_reconstructions_ -
                              obs_handles_.prev_reconstructions));
      obs_.registry->add(obs_handles_.bin_seconds,
                         ns.bin_seconds - obs_handles_.prev_bin_seconds);
      obs_.registry->add(obs_handles_.count_seconds,
                         ns.count_seconds - obs_handles_.prev_count_seconds);
      obs_.registry->add(obs_handles_.fill_seconds,
                         ns.fill_seconds - obs_handles_.prev_fill_seconds);
      obs_.registry->set(obs_handles_.list_bytes,
                         static_cast<double>(list_->memory_bytes()));
      obs_handles_.prev_grid_reshapes = ns.grid_reshapes;
      obs_handles_.prev_stencil_rebuilds = ns.stencil_rebuilds;
      obs_handles_.prev_reconstructions = list_reconstructions_;
      obs_handles_.prev_bin_seconds = ns.bin_seconds;
      obs_handles_.prev_count_seconds = ns.count_seconds;
      obs_handles_.prev_fill_seconds = ns.fill_seconds;
      if (obs_.profile_hw) {
        if (const EamForceComputer* computer = provider_->eam_computer()) {
          const auto hw_totals = computer->hw_profiler().phase_totals();
          const double atoms_d = static_cast<double>(system_.size());
          double cycles = 0.0, instructions = 0.0;
          for (const auto& t : hw_totals) {
            if (t.phase < 0 || t.phase >= 3) continue;
            const auto p = static_cast<std::size_t>(t.phase);
            obs_.registry->set(obs_handles_.hw_ipc[p], t.counts.ipc());
            obs_.registry->set(obs_handles_.hw_miss_rate[p],
                               t.counts.cache_miss_rate());
            obs_.registry->set(
                obs_handles_.hw_cycles_per_atom[p],
                atoms_d > 0.0 ? t.counts.cycles / atoms_d : 0.0);
            cycles += t.counts.cycles;
            instructions += t.counts.instructions;
          }
          if (!hw_totals.empty()) {
            obs_.registry->add(obs_handles_.hw_cycles, cycles);
            obs_.registry->add(obs_handles_.hw_instructions, instructions);
          }
        }
      }
      if (obs_.profile_sweep) {
        if (const obs::SdcSweepProfiler* prof = sweep_profiler()) {
          // Step-level load-balance aggregates across all (phase, color)
          // sweeps: how much the slowest threads stretched the step
          // (imbalance, 1.0 = balanced) and what fraction of the mean
          // thread's time went to the color barriers.
          double work_max_sum = 0.0, work_mean_sum = 0.0, wait_sum = 0.0;
          for (const auto& p : prof->color_profiles()) {
            work_max_sum += p.work_max;
            work_mean_sum += p.work_mean;
            wait_sum += p.wait_mean;
          }
          if (work_mean_sum > 0.0) {
            obs_.registry->set(obs_handles_.sweep_imbalance,
                               work_max_sum / work_mean_sum);
            obs_.registry->set(obs_handles_.sweep_barrier_frac,
                               wait_sum / (work_mean_sum + wait_sum));
          }
        }
      }
    }
    if (monitor_) guard_after_step();
    if (governor_) govern_after_step();
    const bool sampled = step_ % obs_.sample_every == 0;
    if (obs_.trace != nullptr && sampled) {
      obs_.trace->complete_event("step " + std::to_string(step_), "sim", t0,
                                 step_wall, kDriverTid);
      if (const obs::SdcSweepProfiler* prof = sweep_profiler()) {
        obs::append_sweep_events(*obs_.trace, *prof,
                                 "step " + std::to_string(step_) + "/");
      }
    }
    if (obs_.step_writer != nullptr && sampled) {
      obs_.step_writer->write_step(step_, *obs_.registry, sweep_profiler(),
                                   step_wall);
    }
    if (callback && callback_every > 0 && step_ % callback_every == 0) {
      callback(*this, step_);
    }
  }
  SDCMD_DEBUG("run finished at step " << step_ << " after " << rebuilds_
                                      << " neighbor rebuilds");
}

ThermoSample Simulation::sample() const {
  ThermoSample s;
  s.step = step_;
  const Atoms& atoms = system_.atoms();
  s.kinetic_energy = kinetic_energy(atoms.velocity, system_.mass());
  // Linear momentum stays zero once velocity init removed it, unless a
  // stochastic thermostat re-injects it - count DOF accordingly.
  const bool constrained =
      momentum_zeroed_ && (!thermostat_ || thermostat_->conserves_momentum());
  s.temperature = temperature_of(
      atoms.velocity, system_.mass(),
      temperature_dof(atoms.size(), constrained));
  s.pair_energy = last_result_.pair_energy;
  s.embedding_energy = last_result_.embedding_energy;
  s.pressure = pressure_of(atoms.size(), system_.box(), s.temperature,
                           last_result_.virial);
  return s;
}

}  // namespace sdcmd
