#include "md/simulation.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "md/velocity.hpp"
#include "neighbor/reorder.hpp"

namespace sdcmd {

Simulation::Simulation(System system, const EamPotential& potential,
                       SimulationConfig config)
    : Simulation(std::move(system),
                 std::make_unique<EamForceProvider>(potential, config.force),
                 config) {}

Simulation::Simulation(System system, const PairPotential& potential,
                       SimulationConfig config)
    : Simulation(std::move(system),
                 std::make_unique<PairForceProvider>(
                     potential,
                     PairForceConfig{config.force.strategy, config.force.sdc,
                                     config.force.dynamic_schedule}),
                 config) {}

Simulation::Simulation(System system,
                       std::unique_ptr<ForceProvider> provider,
                       SimulationConfig config)
    : system_(std::move(system)),
      config_(config),
      integrator_(config.dt, system_.mass()),
      provider_(std::move(provider)) {
  SDCMD_REQUIRE(provider_ != nullptr, "force provider must not be null");
  rebuild_geometry();
}

EamForceComputer& Simulation::force_computer() {
  EamForceComputer* computer = provider_->eam_computer();
  SDCMD_REQUIRE(computer != nullptr,
                "the active force backend is not an EAM computer");
  return *computer;
}

const EamForceComputer& Simulation::force_computer() const {
  EamForceComputer* computer =
      const_cast<ForceProvider&>(*provider_).eam_computer();
  SDCMD_REQUIRE(computer != nullptr,
                "the active force backend is not an EAM computer");
  return *computer;
}

void Simulation::rebuild_geometry() {
  NeighborListConfig nl;
  nl.cutoff = provider_->cutoff();
  nl.skin = config_.skin;
  nl.mode = provider_->required_mode();
  nl.sort_neighbors = config_.sort_neighbors;
  list_ = std::make_unique<NeighborList>(system_.box(), nl);

  provider_->attach_schedule(system_.box(),
                             provider_->cutoff() + config_.skin);
  rebuild_lists();
}

void Simulation::rebuild_lists() {
  system_.wrap_positions();
  if (config_.reorder_atoms) {
    const auto perm = spatial_sort_permutation(
        system_.box(), system_.atoms().position,
        provider_->cutoff() + config_.skin);
    system_.atoms().reorder(perm);
  }
  list_->build(system_.atoms().position);
  provider_->on_neighbor_rebuild(system_.atoms().position);
  steps_since_rebuild_ = 0;
  ++rebuilds_;
  forces_current_ = false;
}

bool Simulation::lists_stale() const {
  if (config_.rebuild_interval > 0) {
    // The check runs mid-step (after the drift), so "every N steps" means
    // the rebuild lands inside steps N, 2N, ... exactly.
    return steps_since_rebuild_ + 1 >= config_.rebuild_interval;
  }
  return list_->needs_rebuild(system_.atoms().position);
}

void Simulation::compute_forces() {
  if (forces_current_) return;
  last_result_ = provider_->compute(system_.box(), system_.atoms(), *list_);
  forces_current_ = true;
}

void Simulation::set_temperature(double temperature, std::uint64_t seed) {
  maxwell_boltzmann_velocities(system_.atoms().velocity, system_.mass(),
                               temperature, seed);
}

void Simulation::set_thermostat(std::unique_ptr<Thermostat> thermostat) {
  thermostat_ = std::move(thermostat);
}

void Simulation::set_deformer(BoxDeformer deformer, int every) {
  SDCMD_REQUIRE(every >= 1, "deformation interval must be >= 1");
  deformer_ = deformer;
  deform_every_ = every;
}

void Simulation::set_barostat(BerendsenBarostat barostat, int every) {
  SDCMD_REQUIRE(every >= 1, "barostat interval must be >= 1");
  barostat_ = barostat;
  barostat_every_ = every;
}

void Simulation::step_once() {
  compute_forces();
  Atoms& atoms = system_.atoms();

  integrator_.kick_drift(atoms.position, atoms.velocity, atoms.force);

  if (deformer_ && (step_ + 1) % deform_every_ == 0) {
    deformer_->apply(system_);
    // The box changed: the cell grid and SDC decomposition are invalid.
    rebuild_geometry();
  } else if (lists_stale()) {
    rebuild_lists();
  }

  forces_current_ = false;
  compute_forces();
  integrator_.kick(atoms.velocity, atoms.force);

  if (thermostat_) {
    thermostat_->apply(atoms.velocity, system_.mass(), config_.dt);
  }

  ++step_;
  ++steps_since_rebuild_;

  if (barostat_ && step_ % barostat_every_ == 0) {
    const double mu = barostat_->apply(system_, sample().pressure,
                                       config_.dt * barostat_every_);
    if (mu != 1.0) {
      rebuild_geometry();
    }
  }
}

void Simulation::run(long steps, const Callback& callback,
                     long callback_every) {
  SDCMD_REQUIRE(steps >= 0, "step count must be non-negative");
  compute_forces();
  for (long s = 0; s < steps; ++s) {
    step_once();
    if (callback && callback_every > 0 && step_ % callback_every == 0) {
      callback(*this, step_);
    }
  }
  SDCMD_DEBUG("run finished at step " << step_ << " after " << rebuilds_
                                      << " neighbor rebuilds");
}

ThermoSample Simulation::sample() const {
  ThermoSample s;
  s.step = step_;
  const Atoms& atoms = system_.atoms();
  s.kinetic_energy = kinetic_energy(atoms.velocity, system_.mass());
  s.temperature = temperature_of(atoms.velocity, system_.mass());
  s.pair_energy = last_result_.pair_energy;
  s.embedding_energy = last_result_.embedding_energy;
  s.pressure = pressure_of(atoms.size(), system_.box(), s.temperature,
                           last_result_.virial);
  return s;
}

}  // namespace sdcmd
