// Velocity-Verlet integration.
//
// Split into the conventional two half-kicks so the force evaluation (and
// a possible neighbor-list rebuild) sits between them:
//   kick-drift : v += f/m * dt/2 ; x += v * dt
//   [forces]
//   kick       : v += f/m * dt/2
#pragma once

#include <span>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

class VelocityVerlet {
 public:
  /// `dt` in internal time units (see common/units.hpp).
  VelocityVerlet(double dt, double mass);

  void kick_drift(std::span<Vec3> positions, std::span<Vec3> velocities,
                  std::span<const Vec3> forces) const;
  void kick(std::span<Vec3> velocities, std::span<const Vec3> forces) const;

  /// Per-atom-mass variants for multi-species (alloy) systems.
  void kick_drift(std::span<Vec3> positions, std::span<Vec3> velocities,
                  std::span<const Vec3> forces,
                  std::span<const double> masses) const;
  void kick(std::span<Vec3> velocities, std::span<const Vec3> forces,
            std::span<const double> masses) const;

  double dt() const { return dt_; }
  double mass() const { return mass_; }

 private:
  double dt_;
  double mass_;
};

}  // namespace sdcmd
