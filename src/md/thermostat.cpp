#include "md/thermostat.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "md/thermo.hpp"

namespace sdcmd {

VelocityRescaleThermostat::VelocityRescaleThermostat(
    double temperature, int period, bool com_momentum_removed)
    : temperature_(temperature),
      period_(period),
      com_momentum_removed_(com_momentum_removed) {
  SDCMD_REQUIRE(temperature >= 0.0, "temperature must be non-negative");
  SDCMD_REQUIRE(period >= 1, "period must be at least 1");
}

void VelocityRescaleThermostat::apply(std::span<Vec3> velocities,
                                      double mass, double /*dt*/) {
  if (++counter_ % period_ != 0) return;
  const double t_now = temperature_of(
      velocities, mass,
      temperature_dof(velocities.size(), com_momentum_removed_));
  if (t_now <= 0.0) return;
  const double scale = std::sqrt(temperature_ / t_now);
  for (auto& v : velocities) v *= scale;
}

BerendsenThermostat::BerendsenThermostat(double temperature, double tau,
                                         bool com_momentum_removed)
    : temperature_(temperature),
      tau_(tau),
      com_momentum_removed_(com_momentum_removed) {
  SDCMD_REQUIRE(temperature >= 0.0, "temperature must be non-negative");
  SDCMD_REQUIRE(tau > 0.0, "coupling time must be positive");
}

void BerendsenThermostat::apply(std::span<Vec3> velocities, double mass,
                                double dt) {
  const double t_now = temperature_of(
      velocities, mass,
      temperature_dof(velocities.size(), com_momentum_removed_));
  if (t_now <= 0.0) return;
  const double lambda2 = 1.0 + dt / tau_ * (temperature_ / t_now - 1.0);
  const double scale = std::sqrt(lambda2 > 0.0 ? lambda2 : 0.0);
  for (auto& v : velocities) v *= scale;
}

LangevinThermostat::LangevinThermostat(double temperature, double friction,
                                       std::uint64_t seed)
    : temperature_(temperature), friction_(friction), rng_(seed) {
  SDCMD_REQUIRE(temperature >= 0.0, "temperature must be non-negative");
  SDCMD_REQUIRE(friction > 0.0, "friction must be positive");
}

void LangevinThermostat::apply(std::span<Vec3> velocities, double mass,
                               double dt) {
  const double damping = 1.0 - friction_ * dt;
  const double sigma =
      std::sqrt(2.0 * friction_ * units::kBoltzmann * temperature_ * dt /
                mass);
  for (auto& v : velocities) {
    v = damping * v +
        Vec3{rng_.normal(0.0, sigma), rng_.normal(0.0, sigma),
             rng_.normal(0.0, sigma)};
  }
}

}  // namespace sdcmd
