#include "md/system.hpp"

#include "common/error.hpp"

namespace sdcmd {

System::System(Box box, Atoms atoms, double mass)
    : box_(std::move(box)), atoms_(std::move(atoms)), mass_(mass) {
  SDCMD_REQUIRE(mass > 0.0, "atomic mass must be positive");
}

System System::from_lattice(const LatticeSpec& spec, double mass) {
  return System(spec.box(), Atoms(build_lattice(spec)), mass);
}

double System::number_density() const {
  return static_cast<double>(atoms_.size()) / box_.volume();
}

void System::wrap_positions() {
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    atoms_.position[i] = box_.wrap(atoms_.position[i], atoms_.image[i]);
  }
}

}  // namespace sdcmd
