// ForceProvider: the Simulation driver's pluggable force backend.
//
// The paper's contribution is potential-agnostic ("our method can be
// applied in MD simulations with other potentials"); this interface makes
// that concrete: the same Simulation runs EAM (three phases) or a plain
// pair potential (one phase), each under any reduction strategy.
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "common/timer.hpp"
#include "core/eam_force.hpp"
#include "core/pair_force.hpp"
#include "md/atoms.hpp"

namespace sdcmd {

class ForceProvider {
 public:
  virtual ~ForceProvider() = default;

  /// Interaction range the neighbor list must cover.
  virtual double cutoff() const = 0;

  /// Half or Full, depending on the strategy's kernels.
  virtual NeighborMode required_mode() const = 0;

  /// SDC schedule lifecycle (no-ops for non-SDC strategies).
  virtual void attach_schedule(const Box& box, double interaction_range) = 0;
  virtual void on_neighbor_rebuild(std::span<const Vec3> positions) = 0;

  /// Fill atoms.force (and for EAM atoms.rho / atoms.fp); return energies.
  /// Reuses EamForceResult for uniform thermo reporting: pair-only
  /// backends report zero embedding energy.
  virtual EamForceResult compute(const Box& box, Atoms& atoms,
                                 const NeighborList& list) = 0;

  /// Cumulative per-phase wall time.
  virtual PhaseTimers& timers() = 0;

  /// Vector pad width this backend wants neighbor tiles emitted at
  /// (NeighborListConfig::pad_width); 0 when it walks plain CSR lists.
  virtual int neighbor_pad_width() const { return 0; }

  /// The underlying EAM computer when this provider wraps one (the
  /// quickstart-style instrumentation hooks); nullptr otherwise.
  virtual EamForceComputer* eam_computer() { return nullptr; }

  /// The active reduction strategy, or nullopt for backends that don't run
  /// one (then the StrategyGovernor has nothing to govern).
  virtual std::optional<ReductionStrategy> strategy() const {
    return std::nullopt;
  }

  /// Hot-swap the reduction strategy mid-run (governor ladder moves).
  /// Returns false when the backend doesn't support swapping. The caller
  /// must rebuild schedules/neighbor state afterwards.
  virtual bool set_strategy(ReductionStrategy) { return false; }

  /// The SDC settings this backend builds schedules from, so the governor
  /// probes feasibility with exactly the config attach_schedule will use.
  virtual std::optional<SdcConfig> sdc_config() const { return std::nullopt; }
};

/// EAM backend (the paper's workload).
class EamForceProvider final : public ForceProvider {
 public:
  EamForceProvider(const EamPotential& potential, EamForceConfig config);

  double cutoff() const override { return computer_.potential().cutoff(); }
  NeighborMode required_mode() const override {
    return sdcmd::required_mode(computer_.config().strategy);
  }
  void attach_schedule(const Box& box, double range) override {
    computer_.attach_schedule(box, range);
  }
  void on_neighbor_rebuild(std::span<const Vec3> positions) override {
    computer_.on_neighbor_rebuild(positions);
  }
  EamForceResult compute(const Box& box, Atoms& atoms,
                         const NeighborList& list) override;
  PhaseTimers& timers() override { return computer_.timers(); }
  int neighbor_pad_width() const override {
    return computer_.neighbor_pad_width();
  }
  EamForceComputer* eam_computer() override { return &computer_; }
  std::optional<ReductionStrategy> strategy() const override {
    return computer_.config().strategy;
  }
  bool set_strategy(ReductionStrategy s) override {
    computer_.set_strategy(s);
    return true;
  }
  std::optional<SdcConfig> sdc_config() const override {
    return computer_.config().sdc;
  }

 private:
  EamForceComputer computer_;
};

/// Pair-potential backend (single computational phase).
class PairForceProvider final : public ForceProvider {
 public:
  PairForceProvider(const PairPotential& potential, PairForceConfig config);

  double cutoff() const override { return potential_.cutoff(); }
  NeighborMode required_mode() const override {
    return sdcmd::required_mode(computer_.config().strategy);
  }
  void attach_schedule(const Box& box, double range) override {
    computer_.attach_schedule(box, range);
  }
  void on_neighbor_rebuild(std::span<const Vec3> positions) override {
    computer_.on_neighbor_rebuild(positions);
  }
  EamForceResult compute(const Box& box, Atoms& atoms,
                         const NeighborList& list) override;
  PhaseTimers& timers() override { return computer_.timers(); }
  std::optional<ReductionStrategy> strategy() const override {
    return computer_.config().strategy;
  }
  bool set_strategy(ReductionStrategy s) override {
    computer_.set_strategy(s);
    return true;
  }
  std::optional<SdcConfig> sdc_config() const override {
    return computer_.config().sdc;
  }

 private:
  const PairPotential& potential_;
  PairForceComputer computer_;
};

}  // namespace sdcmd
