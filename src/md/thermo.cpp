#include "md/thermo.hpp"

#include "common/units.hpp"

namespace sdcmd {

double kinetic_energy(std::span<const Vec3> velocities, double mass) {
  double sum = 0.0;
  for (const auto& v : velocities) sum += norm2(v);
  return 0.5 * mass * sum;
}

std::size_t temperature_dof(std::size_t n, bool com_momentum_zeroed) {
  if (n == 0) return 0;
  const std::size_t dof = 3 * n;
  if (!com_momentum_zeroed) return dof;
  return dof > 3 ? dof - 3 : 0;
}

double temperature_of(std::span<const Vec3> velocities, double mass) {
  return temperature_of(velocities, mass,
                        temperature_dof(velocities.size(), false));
}

double temperature_of(std::span<const Vec3> velocities, double mass,
                      std::size_t dof) {
  if (dof == 0) return 0.0;
  const double ke = kinetic_energy(velocities, mass);
  return 2.0 * ke / (static_cast<double>(dof) * units::kBoltzmann);
}

double pressure_of(std::size_t n, const Box& box, double temperature,
                   double virial) {
  return (static_cast<double>(n) * units::kBoltzmann * temperature +
          virial / 3.0) /
         box.volume();
}

}  // namespace sdcmd
