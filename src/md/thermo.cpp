#include "md/thermo.hpp"

#include "common/units.hpp"

namespace sdcmd {

double kinetic_energy(std::span<const Vec3> velocities, double mass) {
  double sum = 0.0;
  for (const auto& v : velocities) sum += norm2(v);
  return 0.5 * mass * sum;
}

double temperature_of(std::span<const Vec3> velocities, double mass) {
  if (velocities.empty()) return 0.0;
  const double ke = kinetic_energy(velocities, mass);
  return 2.0 * ke /
         (3.0 * static_cast<double>(velocities.size()) * units::kBoltzmann);
}

double pressure_of(std::size_t n, const Box& box, double temperature,
                   double virial) {
  return (static_cast<double>(n) * units::kBoltzmann * temperature +
          virial / 3.0) /
         box.volume();
}

}  // namespace sdcmd
