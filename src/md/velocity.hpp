// Velocity initialization.
#pragma once

#include <cstdint>
#include <span>

#include "common/vec3.hpp"

namespace sdcmd {

/// Draw velocities from the Maxwell-Boltzmann distribution at `temperature`
/// (kelvin) for atoms of `mass` (amu), zero the net linear momentum, then
/// rescale so the kinetic temperature is exactly `temperature`.
/// Deterministic for a given seed.
void maxwell_boltzmann_velocities(std::span<Vec3> velocities, double mass,
                                  double temperature, std::uint64_t seed);

/// Subtract the center-of-mass velocity (equal masses assumed).
void zero_linear_momentum(std::span<Vec3> velocities);

}  // namespace sdcmd
