#include "md/force_provider.hpp"

#include "common/fault.hpp"

namespace sdcmd {

EamForceProvider::EamForceProvider(const EamPotential& potential,
                                   EamForceConfig config)
    : computer_(potential, config) {}

EamForceResult EamForceProvider::compute(const Box& box, Atoms& atoms,
                                         const NeighborList& list) {
  const EamForceResult result = computer_.compute(
      box, atoms.position, list, atoms.rho, atoms.fp, atoms.force);
  faults::maybe_poison_forces(atoms.force);
  return result;
}

PairForceProvider::PairForceProvider(const PairPotential& potential,
                                     PairForceConfig config)
    : potential_(potential), computer_(potential, config) {}

EamForceResult PairForceProvider::compute(const Box& box, Atoms& atoms,
                                          const NeighborList& list) {
  const PairForceResult pair =
      computer_.compute(box, atoms.position, list, atoms.force);
  faults::maybe_poison_forces(atoms.force);
  EamForceResult result;
  result.pair_energy = pair.energy;
  result.embedding_energy = 0.0;
  result.virial = pair.virial;
  return result;
}

}  // namespace sdcmd
