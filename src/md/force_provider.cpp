#include "md/force_provider.hpp"

namespace sdcmd {

EamForceProvider::EamForceProvider(const EamPotential& potential,
                                   EamForceConfig config)
    : computer_(potential, config) {}

EamForceResult EamForceProvider::compute(const Box& box, Atoms& atoms,
                                         const NeighborList& list) {
  return computer_.compute(box, atoms.position, list, atoms.rho, atoms.fp,
                           atoms.force);
}

PairForceProvider::PairForceProvider(const PairPotential& potential,
                                     PairForceConfig config)
    : potential_(potential), computer_(potential, config) {}

EamForceResult PairForceProvider::compute(const Box& box, Atoms& atoms,
                                          const NeighborList& list) {
  const PairForceResult pair =
      computer_.compute(box, atoms.position, list, atoms.force);
  EamForceResult result;
  result.pair_energy = pair.energy;
  result.embedding_energy = 0.0;
  result.virial = pair.virial;
  return result;
}

}  // namespace sdcmd
