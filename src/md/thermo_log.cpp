#include "md/thermo_log.hpp"

#include <cmath>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace sdcmd {

void ThermoLog::record(const ThermoSample& sample) {
  samples_.push_back(sample);
}

double ThermoLog::max_energy_drift() const {
  if (samples_.empty()) return 0.0;
  const double e0 = samples_.front().total_energy();
  double worst = 0.0;
  for (const auto& s : samples_) {
    worst = std::max(worst, std::abs(s.total_energy() - e0));
  }
  return worst;
}

RunningStats ThermoLog::temperature_stats() const {
  RunningStats stats;
  for (const auto& s : samples_) {
    stats.add(s.temperature);
  }
  return stats;
}

bool ThermoLog::write_csv(const std::string& path) const {
  CsvWriter csv(path, {"step", "temperature", "kinetic", "pair",
                       "embedding", "total", "pressure"});
  if (!csv.ok()) return false;
  for (const auto& s : samples_) {
    csv.add_row({std::to_string(s.step), AsciiTable::fmt(s.temperature, 4),
                 AsciiTable::fmt(s.kinetic_energy, 8),
                 AsciiTable::fmt(s.pair_energy, 8),
                 AsciiTable::fmt(s.embedding_energy, 8),
                 AsciiTable::fmt(s.total_energy(), 8),
                 AsciiTable::fmt(s.pressure, 8)});
  }
  return true;
}

}  // namespace sdcmd
