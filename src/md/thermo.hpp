// Thermodynamic observables.
#pragma once

#include <span>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

/// Total kinetic energy (eV) for equal-mass atoms.
double kinetic_energy(std::span<const Vec3> velocities, double mass);

/// Instantaneous kinetic temperature (kelvin), 3N degrees of freedom.
double temperature_of(std::span<const Vec3> velocities, double mass);

/// Virial pressure (eV / A^3): P = (N kB T + W/3) / V with W the pair
/// virial sum r_ij . f_ij returned by the force computers.
double pressure_of(std::size_t n, const Box& box, double temperature,
                   double virial);

/// One-line thermo snapshot used by the Simulation driver and examples.
struct ThermoSample {
  long step = 0;
  double temperature = 0.0;     ///< K
  double kinetic_energy = 0.0;  ///< eV
  double pair_energy = 0.0;     ///< eV
  double embedding_energy = 0.0;///< eV
  double pressure = 0.0;        ///< eV/A^3

  double potential_energy() const { return pair_energy + embedding_energy; }
  double total_energy() const { return kinetic_energy + potential_energy(); }
};

}  // namespace sdcmd
