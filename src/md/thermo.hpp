// Thermodynamic observables.
#pragma once

#include <span>

#include "common/vec3.hpp"
#include "geom/box.hpp"

namespace sdcmd {

/// Total kinetic energy (eV) for equal-mass atoms.
double kinetic_energy(std::span<const Vec3> velocities, double mass);

/// Kinetic degrees of freedom for n point atoms: 3n, minus 3 when the
/// total linear momentum is constrained to zero (COM removal eliminates
/// three modes). Returns 0 for n == 0 and never goes negative.
std::size_t temperature_dof(std::size_t n, bool com_momentum_zeroed);

/// Instantaneous kinetic temperature (kelvin), raw 3N degrees of freedom.
/// Correct only when nothing constrains the velocities; after
/// zero_linear_momentum (velocity init does this) the 3N normalization
/// under-reports T by (3N-3)/3N - use the DOF-aware overload there.
double temperature_of(std::span<const Vec3> velocities, double mass);

/// DOF-aware temperature: T = 2 KE / (dof kB). Pass
/// temperature_dof(n, momentum_zeroed); returns 0 when dof == 0.
double temperature_of(std::span<const Vec3> velocities, double mass,
                      std::size_t dof);

/// Virial pressure (eV / A^3): P = (N kB T + W/3) / V with W the pair
/// virial sum r_ij . f_ij returned by the force computers.
double pressure_of(std::size_t n, const Box& box, double temperature,
                   double virial);

/// One-line thermo snapshot used by the Simulation driver and examples.
struct ThermoSample {
  long step = 0;
  double temperature = 0.0;     ///< K
  double kinetic_energy = 0.0;  ///< eV
  double pair_energy = 0.0;     ///< eV
  double embedding_energy = 0.0;///< eV
  double pressure = 0.0;        ///< eV/A^3

  double potential_energy() const { return pair_energy + embedding_energy; }
  double total_energy() const { return kinetic_energy + potential_energy(); }
};

}  // namespace sdcmd
