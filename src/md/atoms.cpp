#include "md/atoms.hpp"

#include <numeric>

#include "common/error.hpp"
#include "neighbor/reorder.hpp"

namespace sdcmd {

Atoms::Atoms(std::vector<Vec3> initial_positions) {
  const std::size_t n = initial_positions.size();
  position = std::move(initial_positions);
  velocity.assign(n, Vec3{});
  force.assign(n, Vec3{});
  rho.assign(n, 0.0);
  fp.assign(n, 0.0);
  type.assign(n, 0);
  id.resize(n);
  std::iota(id.begin(), id.end(), 0u);
  image.assign(n, {0, 0, 0});
}

void Atoms::resize(std::size_t n) {
  position.resize(n);
  velocity.resize(n);
  force.resize(n);
  rho.resize(n, 0.0);
  fp.resize(n, 0.0);
  type.resize(n, 0);
  const std::size_t old = id.size();
  id.resize(n);
  for (std::size_t i = old; i < n; ++i) {
    id[i] = static_cast<std::uint32_t>(i);
  }
  image.resize(n, {0, 0, 0});
}

void Atoms::reorder(std::span<const std::uint32_t> perm) {
  SDCMD_REQUIRE(perm.size() == size(), "permutation size mismatch");
  position = apply_permutation(position, perm);
  velocity = apply_permutation(velocity, perm);
  force = apply_permutation(force, perm);
  rho = apply_permutation(rho, perm);
  fp = apply_permutation(fp, perm);
  type = apply_permutation(type, perm);
  id = apply_permutation(id, perm);
  image = apply_permutation(image, perm);
}

}  // namespace sdcmd
