// Thermo time-series recorder: collects ThermoSample rows during a run,
// summarizes conserved-quantity drift, and exports CSV for plotting.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "md/thermo.hpp"

namespace sdcmd {

class ThermoLog {
 public:
  void record(const ThermoSample& sample);

  const std::vector<ThermoSample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Max |E(t) - E(0)| over the series (absolute, eV).
  double max_energy_drift() const;

  /// Temperature statistics over the recorded window.
  RunningStats temperature_stats() const;

  /// Write "step,temperature,kinetic,pair,embedding,total,pressure" CSV.
  /// Returns false when the file cannot be opened.
  bool write_csv(const std::string& path) const;

  void clear() { samples_.clear(); }

 private:
  std::vector<ThermoSample> samples_;
};

}  // namespace sdcmd
