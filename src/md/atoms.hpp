// Structure-of-arrays atom storage.
//
// SoA keeps the hot loops (density scatter, force scatter, integration)
// streaming over dense double arrays - the layout the paper's data-
// reordering optimization assumes.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"

namespace sdcmd {

class Atoms {
 public:
  Atoms() = default;
  explicit Atoms(std::size_t n) { resize(n); }

  /// Build from initial positions; velocities/forces zeroed, ids 0..n-1.
  explicit Atoms(std::vector<Vec3> initial_positions);

  std::size_t size() const { return position.size(); }
  void resize(std::size_t n);

  /// Reorder every per-atom array so new[i] = old[perm[i]] (the paper's
  /// spatial data reordering). `perm` must be a permutation of 0..n-1.
  void reorder(std::span<const std::uint32_t> perm);

  std::vector<Vec3> position;
  std::vector<Vec3> velocity;
  std::vector<Vec3> force;
  std::vector<double> rho;  ///< EAM electron density (phase 1 output)
  std::vector<double> fp;   ///< dF/drho (phase 2 output)
  std::vector<std::uint8_t> type;          ///< species index (alloys)
  std::vector<std::uint32_t> id;           ///< stable identity across reorders
  std::vector<std::array<int, 3>> image;   ///< PBC image counters
};

}  // namespace sdcmd
