// Thermostats for equilibration and temperature-controlled runs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "common/random.hpp"
#include "common/vec3.hpp"

namespace sdcmd {

class Thermostat {
 public:
  virtual ~Thermostat() = default;

  /// Adjust velocities toward the target temperature. `dt` is the MD time
  /// step (internal units); `mass` the species mass.
  virtual void apply(std::span<Vec3> velocities, double mass,
                     double dt) = 0;

  virtual double target_temperature() const = 0;

  /// Whether applications preserve the total linear momentum. Rescaling
  /// thermostats do (a zeroed COM stays zeroed, so the 3N - 3 DOF count
  /// remains valid); stochastic ones do not.
  virtual bool conserves_momentum() const = 0;
};

/// Hard velocity rescaling to exactly the target temperature every
/// `period` applications; the bluntest instrument, good for fast settling.
/// `com_momentum_removed` selects the DOF count used to measure the
/// current temperature: true (default, matching velocity init) uses
/// 3N - 3, false the raw 3N.
class VelocityRescaleThermostat final : public Thermostat {
 public:
  VelocityRescaleThermostat(double temperature, int period = 1,
                            bool com_momentum_removed = true);
  void apply(std::span<Vec3> velocities, double mass, double dt) override;
  double target_temperature() const override { return temperature_; }
  bool conserves_momentum() const override { return true; }

 private:
  double temperature_;
  int period_;
  int counter_ = 0;
  bool com_momentum_removed_;
};

/// Berendsen weak coupling: scale factor sqrt(1 + dt/tau (T0/T - 1)).
/// `com_momentum_removed` as for VelocityRescaleThermostat.
class BerendsenThermostat final : public Thermostat {
 public:
  BerendsenThermostat(double temperature, double tau,
                      bool com_momentum_removed = true);
  void apply(std::span<Vec3> velocities, double mass, double dt) override;
  double target_temperature() const override { return temperature_; }
  bool conserves_momentum() const override { return true; }

 private:
  double temperature_;
  double tau_;
  bool com_momentum_removed_;
};

/// Langevin dynamics via the BBK-style post-step velocity update:
/// v <- v (1 - gamma dt) + sqrt(2 gamma kB T dt / m) xi.
/// Deterministic per (seed, application counter).
class LangevinThermostat final : public Thermostat {
 public:
  LangevinThermostat(double temperature, double friction,
                     std::uint64_t seed);
  void apply(std::span<Vec3> velocities, double mass, double dt) override;
  double target_temperature() const override { return temperature_; }
  /// The random kicks re-inject COM momentum, so all 3N modes are live.
  bool conserves_momentum() const override { return false; }

 private:
  double temperature_;
  double friction_;
  Xoshiro256 rng_;
};

}  // namespace sdcmd
