// Thermostats for equilibration and temperature-controlled runs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "common/random.hpp"
#include "common/vec3.hpp"

namespace sdcmd {

class Thermostat {
 public:
  virtual ~Thermostat() = default;

  /// Adjust velocities toward the target temperature. `dt` is the MD time
  /// step (internal units); `mass` the species mass.
  virtual void apply(std::span<Vec3> velocities, double mass,
                     double dt) = 0;

  virtual double target_temperature() const = 0;
};

/// Hard velocity rescaling to exactly the target temperature every
/// `period` applications; the bluntest instrument, good for fast settling.
class VelocityRescaleThermostat final : public Thermostat {
 public:
  VelocityRescaleThermostat(double temperature, int period = 1);
  void apply(std::span<Vec3> velocities, double mass, double dt) override;
  double target_temperature() const override { return temperature_; }

 private:
  double temperature_;
  int period_;
  int counter_ = 0;
};

/// Berendsen weak coupling: scale factor sqrt(1 + dt/tau (T0/T - 1)).
class BerendsenThermostat final : public Thermostat {
 public:
  BerendsenThermostat(double temperature, double tau);
  void apply(std::span<Vec3> velocities, double mass, double dt) override;
  double target_temperature() const override { return temperature_; }

 private:
  double temperature_;
  double tau_;
};

/// Langevin dynamics via the BBK-style post-step velocity update:
/// v <- v (1 - gamma dt) + sqrt(2 gamma kB T dt / m) xi.
/// Deterministic per (seed, application counter).
class LangevinThermostat final : public Thermostat {
 public:
  LangevinThermostat(double temperature, double friction,
                     std::uint64_t seed);
  void apply(std::span<Vec3> velocities, double mass, double dt) override;
  double target_temperature() const override { return temperature_; }

 private:
  double temperature_;
  double friction_;
  Xoshiro256 rng_;
};

}  // namespace sdcmd
