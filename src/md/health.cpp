#include "md/health.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "md/thermo.hpp"

namespace sdcmd {

namespace {

bool finite3(const Vec3& v) {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

}  // namespace

std::string HealthReport::summary() const {
  std::ostringstream os;
  os << "step " << step << ": ";
  if (issues.empty()) {
    os << "healthy";
    return os.str();
  }
  for (std::size_t i = 0; i < issues.size(); ++i) {
    if (i > 0) os << "; ";
    os << issues[i].check << ": " << issues[i].message;
  }
  return os.str();
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {
  config_.cadence = std::max(config_.cadence, 1);
}

bool HealthMonitor::due(long step) const {
  return step % config_.cadence == 0;
}

HealthReport HealthMonitor::check(const System& system,
                                  const EamForceResult& last, long step,
                                  double dt, double skin) {
  HealthReport report;
  report.step = step;
  const Atoms& atoms = system.atoms();

  auto flag = [&report](const char* check, const std::string& message) {
    report.issues.push_back({check, message});
  };

  // One fused sweep gathers the finiteness verdicts and the extrema the
  // threshold checks need; flag only the first offender per category to
  // keep reports readable when everything is NaN.
  std::size_t bad_pos = atoms.size(), bad_vel = atoms.size();
  std::size_t bad_force = atoms.size();
  double vmax2 = 0.0, fmax2 = 0.0;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (bad_pos == atoms.size() && !finite3(atoms.position[i])) bad_pos = i;
    if (bad_vel == atoms.size() && !finite3(atoms.velocity[i])) bad_vel = i;
    if (bad_force == atoms.size() && !finite3(atoms.force[i])) bad_force = i;
    vmax2 = std::max(vmax2, norm2(atoms.velocity[i]));
    fmax2 = std::max(fmax2, norm2(atoms.force[i]));
  }

  if (config_.check_finite) {
    if (bad_pos < atoms.size()) {
      flag("finite-position",
           "position[" + std::to_string(bad_pos) + "] is non-finite");
    }
    if (bad_vel < atoms.size()) {
      flag("finite-velocity",
           "velocity[" + std::to_string(bad_vel) + "] is non-finite");
    }
    if (bad_force < atoms.size()) {
      flag("finite-force",
           "force[" + std::to_string(bad_force) + "] is non-finite");
    }
    if (!std::isfinite(last.pair_energy) ||
        !std::isfinite(last.embedding_energy) ||
        !std::isfinite(last.virial)) {
      flag("finite-energy", "force evaluation returned non-finite energies");
    }
  }

  if (config_.max_force > 0.0 && bad_force == atoms.size() &&
      fmax2 > config_.max_force * config_.max_force) {
    std::ostringstream os;
    os << "max |force| " << std::sqrt(fmax2) << " exceeds cap "
       << config_.max_force << " eV/A";
    flag("force-cap", os.str());
  }

  if (config_.displacement_skin_fraction > 0.0 && skin > 0.0 &&
      std::isfinite(vmax2)) {
    const double step_travel = std::sqrt(vmax2) * dt;
    const double budget = config_.displacement_skin_fraction * skin;
    if (step_travel > budget) {
      std::ostringstream os;
      os << "fastest atom covers " << step_travel
         << " A per step, over the " << budget << " A skin budget";
      flag("displacement", os.str());
    }
  }

  if (config_.ke_spike_ratio > 0.0 && bad_vel == atoms.size()) {
    const double ke = kinetic_energy(atoms.velocity, system.mass());
    if (std::isfinite(ke)) {
      if (last_ke_ >= config_.ke_floor && ke > config_.ke_spike_ratio * last_ke_) {
        std::ostringstream os;
        os << "kinetic energy jumped " << ke / last_ke_ << "x (from "
           << last_ke_ << " to " << ke << " eV) since the last check";
        flag("ke-spike", os.str());
      }
      last_ke_ = ke;
    } else {
      flag("ke-spike", "kinetic energy is non-finite");
    }
  }

  last_report_ = report;
  return report;
}

}  // namespace sdcmd
