#include "md/dump.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>

#include "common/error.hpp"

namespace sdcmd {

void write_xyz(std::ostream& out, const System& system,
               const std::string& element, const std::string& comment) {
  const Atoms& atoms = system.atoms();
  const Box& box = system.box();
  out << atoms.size() << '\n';
  out << "Lattice=\"" << box.length(0) << " 0 0 0 " << box.length(1)
      << " 0 0 0 " << box.length(2)
      << "\" Properties=species:S:1:pos:R:3";
  if (!comment.empty()) out << ' ' << comment;
  out << '\n';
  out << std::setprecision(10);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const Vec3& r = atoms.position[i];
    out << element << ' ' << r.x << ' ' << r.y << ' ' << r.z << '\n';
  }
}

void write_lammps_dump(std::ostream& out, const System& system, long step) {
  const Atoms& atoms = system.atoms();
  const Box& box = system.box();
  out << "ITEM: TIMESTEP\n" << step << '\n';
  out << "ITEM: NUMBER OF ATOMS\n" << atoms.size() << '\n';
  out << "ITEM: BOX BOUNDS pp pp pp\n";
  out << std::setprecision(10);
  for (int d = 0; d < 3; ++d) {
    out << box.lo()[d] << ' ' << box.hi()[d] << '\n';
  }
  out << "ITEM: ATOMS id x y z vx vy vz\n";
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const Vec3& r = atoms.position[i];
    const Vec3& v = atoms.velocity[i];
    out << atoms.id[i] + 1 << ' ' << r.x << ' ' << r.y << ' ' << r.z << ' '
        << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
}

namespace {
std::ofstream open_append(const std::string& path) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    throw Error("cannot open '" + path + "' for writing");
  }
  return out;
}
}  // namespace

void append_xyz_file(const std::string& path, const System& system,
                     const std::string& element, const std::string& comment) {
  auto out = open_append(path);
  write_xyz(out, system, element, comment);
}

void append_lammps_dump_file(const std::string& path, const System& system,
                             long step) {
  auto out = open_append(path);
  write_lammps_dump(out, system, step);
}

}  // namespace sdcmd
