#include "md/deform.hpp"

#include "common/error.hpp"

namespace sdcmd {

BoxDeformer::BoxDeformer(const Vec3& strain_rate_per_step)
    : rate_(strain_rate_per_step) {
  for (int d = 0; d < 3; ++d) {
    SDCMD_REQUIRE(rate_[d] > -1.0, "compression rate would invert the box");
  }
}

BoxDeformer BoxDeformer::uniaxial(int axis, double strain_rate_per_step) {
  SDCMD_REQUIRE(axis >= 0 && axis < 3, "axis must be 0, 1 or 2");
  Vec3 rate{};
  rate[axis] = strain_rate_per_step;
  return BoxDeformer(rate);
}

void BoxDeformer::apply(System& system) {
  const Box old_box = system.box();
  const Vec3 factor{1.0 + rate_.x, 1.0 + rate_.y, 1.0 + rate_.z};
  system.box().rescale(factor);
  for (auto& r : system.atoms().position) {
    r = system.box().affine_map(r, old_box);
  }
  for (int d = 0; d < 3; ++d) {
    accumulated_[d] = (1.0 + accumulated_[d]) * factor[d] - 1.0;
  }
}

}  // namespace sdcmd
