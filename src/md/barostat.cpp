#include "md/barostat.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sdcmd {

BerendsenBarostat::BerendsenBarostat(double target_pressure, double tau,
                                     double compressibility)
    : target_(target_pressure), tau_(tau), compressibility_(compressibility) {
  SDCMD_REQUIRE(tau > 0.0, "coupling time must be positive");
  SDCMD_REQUIRE(compressibility > 0.0, "compressibility must be positive");
}

double BerendsenBarostat::apply(System& system, double pressure, double dt) {
  double mu3 = 1.0 - dt / tau_ * compressibility_ * (target_ - pressure);
  // Guard against absurd single-step volume changes (cold starts can report
  // huge transient pressures).
  mu3 = std::clamp(mu3, 0.9, 1.1);
  const double mu = std::cbrt(mu3);
  if (mu == 1.0) return 1.0;

  const Box old_box = system.box();
  system.box().rescale({mu, mu, mu});
  for (auto& r : system.atoms().position) {
    r = system.box().affine_map(r, old_box);
  }
  return mu;
}

}  // namespace sdcmd
