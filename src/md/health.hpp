// Runtime health monitoring for long unattended MD runs.
//
// The integrator happily propagates garbage: one NaN force poisons every
// position within a few steps, and a too-large dt turns kinetic energy
// into an exponential. HealthMonitor checks a configurable set of cheap
// invariants at a configurable cadence so trouble is detected within a
// bounded number of steps, while the policy (warn / throw / rollback)
// decides what the Simulation driver does about it.
#pragma once

#include <string>
#include <vector>

#include "core/eam_force.hpp"
#include "md/system.hpp"

namespace sdcmd {

/// What the Simulation driver does when a health check fails.
enum class HealthPolicy {
  Warn,      ///< log and keep going (diagnostics only)
  Throw,     ///< raise HealthError immediately
  Rollback,  ///< restore the last good checkpoint and resume
};

struct HealthConfig {
  /// Check every `cadence` steps (values < 1 behave as 1).
  int cadence = 50;
  HealthPolicy policy = HealthPolicy::Throw;
  /// Reject non-finite positions, velocities, forces and energies.
  bool check_finite = true;
  /// Flag a kinetic-energy jump of more than this ratio between two
  /// consecutive checks (0 disables). Thermal fluctuation is a few percent;
  /// a blowup grows by orders of magnitude per cadence window.
  double ke_spike_ratio = 100.0;
  /// Baselines below this (eV) never arm the spike check — a cold lattice
  /// warming up is not a blowup.
  double ke_floor = 1e-3;
  /// Flag when the fastest atom would cross more than this fraction of the
  /// Verlet skin in a single step (0 disables). The rebuild trigger absorbs
  /// half a skin of accumulated drift; covering a full skin in one step
  /// means neighbor lists can no longer be trusted.
  double displacement_skin_fraction = 1.0;
  /// Hard cap on |force| per atom in eV/A (0 disables; non-finite forces
  /// are always caught by check_finite).
  double max_force = 0.0;
};

struct HealthIssue {
  std::string check;    ///< e.g. "finite-position", "ke-spike"
  std::string message;  ///< human-readable detail
};

struct HealthReport {
  long step = 0;
  std::vector<HealthIssue> issues;
  bool ok() const { return issues.empty(); }
  /// One-line digest: "step 1200: finite-force: force[17] is non-finite".
  std::string summary() const;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config);

  /// True when `step` lands on the configured cadence.
  bool due(long step) const;

  /// Run every enabled check against the current state. `last` is the most
  /// recent force-evaluation result (for energy sanity), `dt`/`skin` the
  /// driver's step and neighbor skin. Updates the kinetic-energy baseline.
  HealthReport check(const System& system, const EamForceResult& last,
                     long step, double dt, double skin);

  /// Forget the kinetic-energy baseline (call after a rollback: the
  /// restored state should not be compared against the diverged one).
  void reset_baseline() { last_ke_ = -1.0; }

  const HealthConfig& config() const { return config_; }
  const HealthReport& last_report() const { return last_report_; }

 private:
  HealthConfig config_;
  double last_ke_ = -1.0;
  HealthReport last_report_;
};

}  // namespace sdcmd
