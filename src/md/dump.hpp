// Trajectory output: extended-XYZ and LAMMPS-dump-style text formats.
#pragma once

#include <iosfwd>
#include <string>

#include "md/system.hpp"

namespace sdcmd {

/// Extended XYZ: atom count, comment with box lattice, then
/// "Fe x y z" lines. Readable by OVITO / ASE.
void write_xyz(std::ostream& out, const System& system,
               const std::string& element = "Fe",
               const std::string& comment = "");

/// LAMMPS text dump (`ITEM:` sections) with id/x/y/z/vx/vy/vz columns.
void write_lammps_dump(std::ostream& out, const System& system, long step);

/// Convenience file wrappers (append mode so multi-frame trajectories
/// accumulate). Throws sdcmd::Error when the file cannot be opened.
void append_xyz_file(const std::string& path, const System& system,
                     const std::string& element = "Fe",
                     const std::string& comment = "");
void append_lammps_dump_file(const std::string& path, const System& system,
                             long step);

}  // namespace sdcmd
