#include "md/integrator.hpp"

#include "common/error.hpp"
#include "common/fault.hpp"

namespace sdcmd {

VelocityVerlet::VelocityVerlet(double dt, double mass)
    : dt_(dt), mass_(mass) {
  SDCMD_REQUIRE(dt > 0.0, "time step must be positive");
  SDCMD_REQUIRE(mass > 0.0, "mass must be positive");
}

void VelocityVerlet::kick_drift(std::span<Vec3> positions,
                                std::span<Vec3> velocities,
                                std::span<const Vec3> forces) const {
  const double half_dt_over_m = 0.5 * dt_ / mass_;
  const std::size_t n = positions.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    velocities[i] += half_dt_over_m * forces[i];
    positions[i] += dt_ * velocities[i];
  }
  faults::maybe_kick_position(positions);
}

void VelocityVerlet::kick(std::span<Vec3> velocities,
                          std::span<const Vec3> forces) const {
  const double half_dt_over_m = 0.5 * dt_ / mass_;
  const std::size_t n = velocities.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    velocities[i] += half_dt_over_m * forces[i];
  }
}

void VelocityVerlet::kick_drift(std::span<Vec3> positions,
                                std::span<Vec3> velocities,
                                std::span<const Vec3> forces,
                                std::span<const double> masses) const {
  SDCMD_REQUIRE(masses.size() == positions.size(),
                "per-atom masses must match the atom count");
  const std::size_t n = positions.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    velocities[i] += (0.5 * dt_ / masses[i]) * forces[i];
    positions[i] += dt_ * velocities[i];
  }
  faults::maybe_kick_position(positions);
}

void VelocityVerlet::kick(std::span<Vec3> velocities,
                          std::span<const Vec3> forces,
                          std::span<const double> masses) const {
  SDCMD_REQUIRE(masses.size() == velocities.size(),
                "per-atom masses must match the atom count");
  const std::size_t n = velocities.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    velocities[i] += (0.5 * dt_ / masses[i]) * forces[i];
  }
}

}  // namespace sdcmd
