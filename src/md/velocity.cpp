#include "md/velocity.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/units.hpp"
#include "md/thermo.hpp"

namespace sdcmd {

void maxwell_boltzmann_velocities(std::span<Vec3> velocities, double mass,
                                  double temperature, std::uint64_t seed) {
  SDCMD_REQUIRE(mass > 0.0, "mass must be positive");
  SDCMD_REQUIRE(temperature >= 0.0, "temperature must be non-negative");
  if (velocities.empty()) return;

  if (temperature == 0.0) {
    for (auto& v : velocities) v = Vec3{};
    return;
  }

  Xoshiro256 rng(seed);
  const double sigma = std::sqrt(units::kBoltzmann * temperature / mass);
  for (auto& v : velocities) {
    v = {rng.normal(0.0, sigma), rng.normal(0.0, sigma),
         rng.normal(0.0, sigma)};
  }
  zero_linear_momentum(velocities);

  // Exact-temperature rescale: finite samples land slightly off target.
  // COM removal just consumed three modes, so normalize by 3N - 3; the
  // raw-3N form would leave the ensemble cold by (3N-3)/3N.
  const double t_now = temperature_of(
      velocities, mass, temperature_dof(velocities.size(), true));
  if (t_now > 0.0) {
    const double scale = std::sqrt(temperature / t_now);
    for (auto& v : velocities) v *= scale;
  }
}

void zero_linear_momentum(std::span<Vec3> velocities) {
  if (velocities.empty()) return;
  Vec3 mean{};
  for (const auto& v : velocities) mean += v;
  mean /= static_cast<double>(velocities.size());
  for (auto& v : velocities) v -= mean;
}

}  // namespace sdcmd
