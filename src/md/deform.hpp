// Box deformation engine for the micro-deformation workloads.
//
// The paper's test cases "observe micro-deformation behaviors of the pure
// Fe metals" - in practice a strained periodic cell. BoxDeformer applies a
// constant true-strain rate to chosen axes each step and affinely remaps
// atom positions into the new cell.
#pragma once

#include "common/vec3.hpp"
#include "md/system.hpp"

namespace sdcmd {

class BoxDeformer {
 public:
  /// `strain_rate_per_step[d]` is the per-step fractional elongation of
  /// axis d (negative = compression); e.g. {1e-5, 0, 0} stretches x by
  /// 0.001% every step.
  explicit BoxDeformer(const Vec3& strain_rate_per_step);

  /// Uniaxial tension along `axis`.
  static BoxDeformer uniaxial(int axis, double strain_rate_per_step);

  /// Stretch the box one increment and remap all positions affinely.
  void apply(System& system);

  /// Accumulated engineering strain per axis since construction.
  const Vec3& accumulated_strain() const { return accumulated_; }

 private:
  Vec3 rate_;
  Vec3 accumulated_{0.0, 0.0, 0.0};
};

}  // namespace sdcmd
