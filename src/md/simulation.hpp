// The time-stepping driver tying the whole stack together:
// velocity-Verlet + neighbor-list lifecycle + EAM forces under a chosen
// reduction strategy + optional thermostat / box deformation.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "core/strategy_governor.hpp"
#include "md/barostat.hpp"
#include "md/deform.hpp"
#include "md/force_provider.hpp"
#include "md/health.hpp"
#include "md/integrator.hpp"
#include "md/system.hpp"
#include "md/thermo.hpp"
#include "md/thermostat.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sdcmd {

struct SimulationConfig {
  /// Time step in internal units. The paper runs 1e-17 s = 0.01 fs.
  double dt = units::fs_to_internal(1.0);
  /// Verlet skin (angstrom).
  double skin = 0.4;
  /// Neighbor rebuild policy: 0 = displacement-triggered (safe default),
  /// N > 0 = every N steps (the paper's fixed-interval style).
  int rebuild_interval = 0;
  /// Strategy + SDC settings for the force evaluation.
  EamForceConfig force;
  /// Spatially re-sort atoms at every rebuild (paper Section II.D).
  bool reorder_atoms = false;
  /// Sort each neighbor sublist ascending (paper Section II.D).
  bool sort_neighbors = true;
  /// Half-mode neighbor lists enumerate via the half stencil (13 owned
  /// cells + intra-cell j > i); false restores the legacy full-stencil
  /// scan. See NeighborListConfig::half_stencil.
  bool half_stencil = true;
  /// Bin atoms with the parallel counting sort; false forces the serial
  /// reference binning. See NeighborListConfig::parallel_bin.
  bool parallel_bin = true;
};

/// Guardrails for unattended runs: periodic health checks plus a rolling
/// "last good state" snapshot the driver can fall back to when the
/// configured policy is Rollback.
struct GuardrailConfig {
  HealthConfig health;
  /// Refresh the rollback snapshot every N steps (0 = only the baseline
  /// snapshot taken when run() starts). Snapshot steps always run a health
  /// check first so only verified-good states are retained.
  long checkpoint_every = 200;
  /// Invoked with every good snapshot; wire io's save_checkpoint_file here
  /// for crash-safe on-disk auto-checkpointing (kept as a callback so the
  /// md layer stays independent of io).
  std::function<void(const System&, long)> checkpoint_sink;
  /// After this many automatic rollbacks a further failure throws
  /// HealthError instead of retrying forever.
  int max_rollbacks = 3;
  /// Halve dt on every automatic rollback (the classic blowup recovery:
  /// most divergences are integration instabilities from a too-large step).
  bool halve_dt_on_rollback = true;
};

/// Observability sinks for a run. All pointers are borrowed (the caller
/// owns lifetime; they must outlive the simulation or be cleared first).
/// Everything is optional: a default-constructed config turns
/// instrumentation off entirely.
struct InstrumentationConfig {
  /// Receives counters/gauges/stats (names under "sim." / "guard.";
  /// see docs/observability.md). Required when step_writer is set.
  obs::MetricsRegistry* registry = nullptr;
  /// JSONL per-step records (schema sdcmd.step_metrics.v1).
  obs::StepMetricsWriter* step_writer = nullptr;
  /// Chrome trace events: step spans, guardrail markers, and - with
  /// profile_sweep - per-thread x per-color force-phase slices.
  obs::TraceWriter* trace = nullptr;
  /// Enable the EAM computer's SdcSweepProfiler so step records and traces
  /// carry per-color thread imbalance and barrier-wait stats. Ignored for
  /// non-EAM force backends. With a registry, also exports the step-level
  /// `sweep.imbalance` / `sweep.barrier_frac` gauges.
  bool profile_sweep = false;
  /// Enable the EAM computer's hardware-counter profiler
  /// (perf_event_open): per-phase IPC, cache-miss rate and cycles/atom
  /// land in the registry as the `hw.*` gauge family. Degrades to
  /// `hw.available=0` (and nothing else) when the syscall is denied or
  /// the platform is not Linux; ignored for non-EAM force backends.
  bool profile_hw = false;
  /// Emit JSONL/trace output every N steps (counters still update every
  /// step).
  long sample_every = 1;
};

class Simulation {
 public:
  /// EAM dynamics (the paper's workload). The potential must outlive the
  /// simulation; config.force selects the reduction strategy.
  Simulation(System system, const EamPotential& potential,
             SimulationConfig config);

  /// Pair-potential dynamics through the same driver (config.force's
  /// strategy and SDC settings apply; the EAM-only fields are ignored).
  Simulation(System system, const PairPotential& potential,
             SimulationConfig config);

  /// Fully custom force backend.
  Simulation(System system, std::unique_ptr<ForceProvider> provider,
             SimulationConfig config);

  /// Maxwell-Boltzmann velocities at `temperature` (kelvin).
  void set_temperature(double temperature, std::uint64_t seed);

  /// Install (or clear, with nullptr) a thermostat applied every step.
  void set_thermostat(std::unique_ptr<Thermostat> thermostat);

  /// Install a box deformer applied every `every` steps.
  void set_deformer(BoxDeformer deformer, int every = 1);

  /// Install a Berendsen barostat applied every `every` steps (each
  /// application rescales the box and rebuilds the neighbor machinery).
  void set_barostat(BerendsenBarostat barostat, int every = 10);

  /// Install the reduction-strategy governor (see
  /// core/strategy_governor.hpp): selects the best feasible rung of the
  /// degradation ladder now and re-validates on every box change,
  /// hot-swapping the force backend's strategy instead of racing or dying
  /// with InfeasibleError. Overrides config.force.strategy. When the
  /// backend exposes its SDC settings (EAM/pair providers do), they
  /// replace config.sdc so probe and schedule build always agree.
  /// Replaces any previous governor. Off by default.
  void set_governor(GovernorConfig config);

  /// Checkpoint-restart flavor: resume with the saved governor state
  /// (active rung, hysteresis counters) instead of re-selecting the
  /// preferred strategy.
  void set_governor(GovernorConfig config, const GovernorState& state);

  void clear_governor();
  bool has_governor() const { return governor_ != nullptr; }

  /// The active governor, or nullptr when ungoverned.
  const StrategyGovernor* governor() const { return governor_.get(); }

  /// Effective Verlet skin: config.skin, grown by rebuild-storm backoff.
  double effective_skin() const { return skin_; }

  /// Times the skin backoff fired (bounded; see neighbor.skin_backoffs).
  int skin_backoff_count() const { return skin_backoffs_; }

  /// Enable health monitoring + auto-checkpoint + rollback for subsequent
  /// run() calls. Replaces any previous guardrails and resets the rollback
  /// budget. Off by default: an unguarded run pays no monitoring cost.
  void set_guardrails(GuardrailConfig config);
  void clear_guardrails();
  bool has_guardrails() const { return monitor_ != nullptr; }

  /// Manually restore the last good snapshot (positions, velocities, box,
  /// step counter) and recompute forces. Returns false when no snapshot
  /// exists yet. Does not consume the automatic-rollback budget.
  bool rollback();

  /// Automatic rollbacks performed since guardrails were (re)set.
  int rollback_count() const { return rollbacks_; }

  /// The active monitor, or nullptr when guardrails are off.
  const HealthMonitor* health_monitor() const { return monitor_.get(); }

  /// Change the time step mid-run (rollback uses this to halve dt).
  void set_dt(double dt);

  /// Restart support: make current_step() report `step` so a run resumed
  /// from a checkpoint continues the original step numbering (checkpoint
  /// cadence, callbacks and thermo logs all key off the absolute step).
  void set_current_step(long step);

  /// Restart support: restore the COM-momentum bookkeeping that
  /// set_temperature() normally records, so a resumed run keeps reporting
  /// 3N-3 DOF temperatures instead of silently switching to 3N.
  void set_com_momentum_zeroed(bool zeroed) { momentum_zeroed_ = zeroed; }
  bool com_momentum_zeroed() const { return momentum_zeroed_; }

  /// Attach observability sinks for subsequent run() calls. Replaces any
  /// previous instrumentation. Like guardrails, off by default: an
  /// uninstrumented run pays nothing beyond one null check per step.
  void set_instrumentation(InstrumentationConfig config);
  void clear_instrumentation();
  bool has_instrumentation() const { return obs_.registry != nullptr; }

  /// Callback invoked after the completed step, every `every` steps.
  using Callback = std::function<void(const Simulation&, long)>;

  /// Advance the simulation to current_step() + steps. Without guardrails
  /// this is exactly `steps` velocity-Verlet steps; with rollback guardrails
  /// rewound steps are re-run, so the target step is still reached (or
  /// HealthError is thrown once the rollback budget is exhausted).
  void run(long steps, const Callback& callback = nullptr,
           long callback_every = 100);

  /// One step (forces must be current; run() handles this).
  void step_once();

  /// Evaluate forces for the current positions (rebuilding the neighbor
  /// list when stale). Idempotent between moves.
  void compute_forces();

  ThermoSample sample() const;

  const System& system() const { return system_; }
  System& system() { return system_; }

  /// The active force backend.
  ForceProvider& force_provider() { return *provider_; }
  const ForceProvider& force_provider() const { return *provider_; }

  /// The underlying EAM computer; throws PreconditionError when the
  /// backend is not EAM (use force_provider().timers() for generic code).
  EamForceComputer& force_computer();
  const EamForceComputer& force_computer() const;

  const NeighborList& neighbor_list() const { return *list_; }
  const SimulationConfig& config() const { return config_; }
  long current_step() const { return step_; }
  std::size_t rebuild_count() const { return rebuilds_; }
  const EamForceResult& last_force_result() const { return last_result_; }

  /// Times the NeighborList (and its embedded CellList) was reconstructed
  /// from scratch: once at construction, then only when a box change also
  /// changes the list configuration (skin backoff, governor mode swap).
  /// Steady-state barostat/deform runs keep this flat - box changes go
  /// through update_box() instead.
  std::size_t neighbor_reconstructions() const {
    return list_reconstructions_;
  }

  /// Neighbor-pipeline accounting accumulated across list reconstructions
  /// (the source of the neighbor.* metrics).
  NeighborBuildStats neighbor_stats() const;

 private:
  /// Recreate box-dependent machinery (neighbor list, SDC schedule) after
  /// a box change, then rebuild.
  void rebuild_geometry();
  /// Rebuild neighbor list + partition from current positions.
  void rebuild_lists();
  bool lists_stale() const;

  /// Instrumentation plumbing (no-ops unless set_instrumentation ran).
  void obs_count(std::size_t handle, double delta = 1.0) {
    if (obs_.registry != nullptr) obs_.registry->add(handle, delta);
  }
  void obs_mark(const std::string& name);
  const obs::SdcSweepProfiler* sweep_profiler() const;

  /// Governor plumbing (all no-ops unless set_governor was called).
  void init_governor();
  /// Feed a box/range change to the governor (called from
  /// rebuild_geometry, before the new neighbor list is built) and swap the
  /// provider's strategy on demotion.
  void govern_box_change();
  /// Per-step hysteresis tick + optional shadow validation; promotions
  /// trigger a geometry rebuild to re-attach the SDC schedule.
  void govern_after_step();
  /// Apply a changed decision to the force backend + metrics/trace/log.
  /// Does NOT rebuild geometry; callers outside rebuild_geometry must.
  void apply_governor_decision(const GovernorDecision& decision);
  /// Recompute rho/forces with the serial reference kernels and compare
  /// against the active strategy's output (EAM backend only); on mismatch
  /// demote and emit guard.strategy_race_suspect.
  void shadow_validate();

  /// Guardrail plumbing (all no-ops unless set_guardrails was called).
  void guard_baseline();
  void guard_after_step();
  void handle_unhealthy(const HealthReport& report);
  void take_snapshot();
  void restore_snapshot();

  System system_;
  SimulationConfig config_;
  VelocityVerlet integrator_;
  std::unique_ptr<ForceProvider> provider_;
  std::unique_ptr<NeighborList> list_;
  std::unique_ptr<Thermostat> thermostat_;
  std::optional<BoxDeformer> deformer_;
  int deform_every_ = 1;
  std::optional<BerendsenBarostat> barostat_;
  int barostat_every_ = 10;
  long step_ = 0;
  long steps_since_rebuild_ = 0;
  std::size_t rebuilds_ = 0;
  // Stats survive list reconstruction: the outgoing list's counters fold
  // into this base so neighbor_stats() is cumulative for the simulation.
  NeighborBuildStats neighbor_stats_base_;
  std::size_t list_reconstructions_ = 0;
  // set_temperature zeroed the COM momentum: thermo reporting then uses
  // 3N - 3 DOF (as long as the thermostat, if any, conserves momentum).
  bool momentum_zeroed_ = false;
  bool forces_current_ = false;
  EamForceResult last_result_;

  std::unique_ptr<StrategyGovernor> governor_;
  // Scratch for the governor's shadow-validation pass (reused; sized on
  // first use).
  std::vector<double> shadow_rho_;
  std::vector<double> shadow_fp_;
  std::vector<Vec3> shadow_force_;

  // Rebuild-storm backoff: displacement-triggered rebuilds on consecutive
  // steps grow the effective skin (bounded) instead of thrashing.
  double skin_ = 0.0;
  int skin_backoffs_ = 0;
  long last_displacement_rebuild_step_ = -1000;

  struct Snapshot {
    System system;
    long step;
  };
  std::optional<GuardrailConfig> guard_;
  std::unique_ptr<HealthMonitor> monitor_;
  std::optional<Snapshot> snapshot_;
  int rollbacks_ = 0;

  InstrumentationConfig obs_;
  struct ObsHandles {
    std::size_t steps = 0;
    std::size_t step_seconds = 0;
    std::size_t rebuilds = 0;
    std::size_t checkpoints = 0;
    std::size_t rollbacks = 0;
    std::size_t health_checks = 0;
    std::size_t health_failures = 0;
    std::size_t dt = 0;
    std::size_t pair_cache_bytes = 0;
    std::size_t cache_stores = 0;
    std::size_t cache_reads = 0;
    std::size_t soa_active = 0;
    std::size_t soa_pad_fraction = 0;
    // CellTask work-stealing family (task.*): spawn/steal counters plus
    // queue-depth and busy-fraction gauges; all 0 / flat unless the active
    // strategy is CellTask.
    std::size_t task_spawned = 0;
    std::size_t task_steals = 0;
    std::size_t task_queue_depth = 0;
    std::size_t task_busy_min = 0;
    std::size_t task_busy_mean = 0;
    std::size_t governor_strategy = 0;
    std::size_t governor_demotions = 0;
    std::size_t governor_promotions = 0;
    std::size_t governor_shadow_checks = 0;
    std::size_t race_suspects = 0;
    std::size_t skin_backoffs = 0;
    std::size_t grid_reshapes = 0;
    std::size_t stencil_rebuilds = 0;
    std::size_t reconstructions = 0;
    std::size_t bin_seconds = 0;
    std::size_t count_seconds = 0;
    std::size_t fill_seconds = 0;
    std::size_t list_bytes = 0;
    // Hardware-counter family (profile_hw): availability gauge, per-phase
    // derived gauges indexed density/embed/force, and step-cumulative
    // cycle/instruction counters.
    std::size_t hw_available = 0;
    std::array<std::size_t, 3> hw_ipc{};
    std::array<std::size_t, 3> hw_miss_rate{};
    std::array<std::size_t, 3> hw_cycles_per_atom{};
    std::size_t hw_cycles = 0;
    std::size_t hw_instructions = 0;
    // Step-level sweep aggregates (profile_sweep + registry).
    std::size_t sweep_imbalance = 0;
    std::size_t sweep_barrier_frac = 0;
    // EamKernelStats counters are cumulative; remember the last value seen
    // so each step adds only its delta to the registry counters.
    std::size_t prev_cache_stores = 0;
    std::size_t prev_cache_reads = 0;
    std::size_t prev_soa_steps = 0;
    std::size_t prev_task_spawned = 0;
    std::size_t prev_task_steals = 0;
    // Same delta bookkeeping for the cumulative neighbor-pipeline stats
    // (seeded in set_instrumentation so counters measure from attach).
    std::size_t prev_grid_reshapes = 0;
    std::size_t prev_stencil_rebuilds = 0;
    std::size_t prev_reconstructions = 0;
    double prev_bin_seconds = 0.0;
    double prev_count_seconds = 0.0;
    double prev_fill_seconds = 0.0;
  } obs_handles_;
};

}  // namespace sdcmd
