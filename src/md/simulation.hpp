// The time-stepping driver tying the whole stack together:
// velocity-Verlet + neighbor-list lifecycle + EAM forces under a chosen
// reduction strategy + optional thermostat / box deformation.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "common/units.hpp"
#include "core/eam_force.hpp"
#include "md/barostat.hpp"
#include "md/deform.hpp"
#include "md/force_provider.hpp"
#include "md/integrator.hpp"
#include "md/system.hpp"
#include "md/thermo.hpp"
#include "md/thermostat.hpp"

namespace sdcmd {

struct SimulationConfig {
  /// Time step in internal units. The paper runs 1e-17 s = 0.01 fs.
  double dt = units::fs_to_internal(1.0);
  /// Verlet skin (angstrom).
  double skin = 0.4;
  /// Neighbor rebuild policy: 0 = displacement-triggered (safe default),
  /// N > 0 = every N steps (the paper's fixed-interval style).
  int rebuild_interval = 0;
  /// Strategy + SDC settings for the force evaluation.
  EamForceConfig force;
  /// Spatially re-sort atoms at every rebuild (paper Section II.D).
  bool reorder_atoms = false;
  /// Sort each neighbor sublist ascending (paper Section II.D).
  bool sort_neighbors = true;
};

class Simulation {
 public:
  /// EAM dynamics (the paper's workload). The potential must outlive the
  /// simulation; config.force selects the reduction strategy.
  Simulation(System system, const EamPotential& potential,
             SimulationConfig config);

  /// Pair-potential dynamics through the same driver (config.force's
  /// strategy and SDC settings apply; the EAM-only fields are ignored).
  Simulation(System system, const PairPotential& potential,
             SimulationConfig config);

  /// Fully custom force backend.
  Simulation(System system, std::unique_ptr<ForceProvider> provider,
             SimulationConfig config);

  /// Maxwell-Boltzmann velocities at `temperature` (kelvin).
  void set_temperature(double temperature, std::uint64_t seed);

  /// Install (or clear, with nullptr) a thermostat applied every step.
  void set_thermostat(std::unique_ptr<Thermostat> thermostat);

  /// Install a box deformer applied every `every` steps.
  void set_deformer(BoxDeformer deformer, int every = 1);

  /// Install a Berendsen barostat applied every `every` steps (each
  /// application rescales the box and rebuilds the neighbor machinery).
  void set_barostat(BerendsenBarostat barostat, int every = 10);

  /// Callback invoked after the completed step, every `every` steps.
  using Callback = std::function<void(const Simulation&, long)>;

  /// Advance `steps` velocity-Verlet steps.
  void run(long steps, const Callback& callback = nullptr,
           long callback_every = 100);

  /// One step (forces must be current; run() handles this).
  void step_once();

  /// Evaluate forces for the current positions (rebuilding the neighbor
  /// list when stale). Idempotent between moves.
  void compute_forces();

  ThermoSample sample() const;

  const System& system() const { return system_; }
  System& system() { return system_; }

  /// The active force backend.
  ForceProvider& force_provider() { return *provider_; }
  const ForceProvider& force_provider() const { return *provider_; }

  /// The underlying EAM computer; throws PreconditionError when the
  /// backend is not EAM (use force_provider().timers() for generic code).
  EamForceComputer& force_computer();
  const EamForceComputer& force_computer() const;

  const NeighborList& neighbor_list() const { return *list_; }
  const SimulationConfig& config() const { return config_; }
  long current_step() const { return step_; }
  std::size_t rebuild_count() const { return rebuilds_; }
  const EamForceResult& last_force_result() const { return last_result_; }

 private:
  /// Recreate box-dependent machinery (neighbor list, SDC schedule) after
  /// a box change, then rebuild.
  void rebuild_geometry();
  /// Rebuild neighbor list + partition from current positions.
  void rebuild_lists();
  bool lists_stale() const;

  System system_;
  SimulationConfig config_;
  VelocityVerlet integrator_;
  std::unique_ptr<ForceProvider> provider_;
  std::unique_ptr<NeighborList> list_;
  std::unique_ptr<Thermostat> thermostat_;
  std::optional<BoxDeformer> deformer_;
  int deform_every_ = 1;
  std::optional<BerendsenBarostat> barostat_;
  int barostat_every_ = 10;
  long step_ = 0;
  long steps_since_rebuild_ = 0;
  std::size_t rebuilds_ = 0;
  bool forces_current_ = false;
  EamForceResult last_result_;
};

}  // namespace sdcmd
