// A simulation system: box + atoms + species mass.
#pragma once

#include "geom/box.hpp"
#include "geom/lattice.hpp"
#include "md/atoms.hpp"

namespace sdcmd {

class System {
 public:
  System(Box box, Atoms atoms, double mass);

  /// Single-species lattice system (the paper's bcc Fe cubes).
  static System from_lattice(const LatticeSpec& spec, double mass);

  const Box& box() const { return box_; }
  Box& box() { return box_; }
  const Atoms& atoms() const { return atoms_; }
  Atoms& atoms() { return atoms_; }
  double mass() const { return mass_; }
  std::size_t size() const { return atoms_.size(); }

  /// Number density (atoms per cubic angstrom).
  double number_density() const;

  /// Wrap every atom into the primary image, updating image counters.
  void wrap_positions();

 private:
  Box box_;
  Atoms atoms_;
  double mass_;
};

}  // namespace sdcmd
