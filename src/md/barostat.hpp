// Berendsen barostat: weak pressure coupling via isotropic box rescaling.
//
// mu = (1 - (dt / tau_p) * kappa * (P0 - P))^(1/3) applied to every box
// edge and (affinely) to every position. Because a box change invalidates
// the cell grid and SDC decomposition, the Simulation driver applies the
// barostat only at a configurable interval and rebuilds its geometry then.
#pragma once

#include "md/system.hpp"

namespace sdcmd {

class BerendsenBarostat {
 public:
  /// `target_pressure` in eV/A^3, `tau` the coupling time (internal units),
  /// `compressibility` in A^3/eV scales the response (default of order a
  /// metal's 1/bulk-modulus).
  BerendsenBarostat(double target_pressure, double tau,
                    double compressibility = 0.01);

  /// Rescale `system` one increment toward the target given the current
  /// `pressure`. `dt` is the time elapsed since the last application.
  /// Returns the linear scale factor applied (1.0 = no change).
  double apply(System& system, double pressure, double dt);

  double target_pressure() const { return target_; }

 private:
  double target_;
  double tau_;
  double compressibility_;
};

}  // namespace sdcmd
