// One served simulation session: a Simulation wrapped in the run
// supervisor, bound to its own durable RunDir, with the serve-side
// lifecycle on top (pause/steer/suspend/resume, step budgeting, and the
// quarantine watchdog).
//
// State machine (docs/serving.md has the full transition table):
//
//   Running ----pause----> Paused ----step----> Running
//   Running/Paused --suspend--> Suspended --resume--> Paused
//   Running --watchdog/oom--> Quarantined --resume--> Paused
//
// Suspended and Quarantined sessions hold no Simulation in memory — only
// the RunDir (checkpoint ring + run_state.v1 sidecar + session.json
// descriptor) survives, which is exactly what survives a SIGKILL of the
// whole daemon. Fleet auto-resume therefore reuses the same path as a
// plain resume op: rebuild from the descriptor, load the newest ring
// generation, and prove 1e-8 energy continuity against the sidecar.
//
// A Session is internally synchronized: every public operation takes the
// session mutex, and a step quantum holds it for the quantum's duration
// (quanta are small by design, so control ops wait at most a few
// milliseconds behind one).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "md/simulation.hpp"
#include "potential/finnis_sinclair.hpp"
#include "run/run_dir.hpp"
#include "run/supervisor.hpp"

namespace sdcmd::serve {

/// Everything needed to rebuild a session's Simulation from scratch.
/// Persisted as `session.json` (schema sdcmd.session.v1, flat JSON) in the
/// session's run directory so a restarted daemon can resurrect the fleet.
struct SessionSpec {
  std::string id;
  int cells = 4;
  double temp = 300.0;
  long seed = 12345;
  double dt_fs = 1.0;
  bool governed = true;
  /// StrategyGovernor::strategy_code of the preferred rung.
  int strategy_code = 6;  // sdc
  /// OpenMP team size while stepping this session (sessions batch onto
  /// shared teams: each worker sizes its own team to this, so
  /// workers × threads is the daemon's whole footprint).
  int threads = 1;
  long checkpoint_every = 50;
  int keep = 3;

  /// Fingerprint of the physics-determining fields. dt is deliberately
  /// excluded (steer may retune it mid-run; the sidecar carries the live
  /// value), matching how rollback-halved dt survives sdcmd-run resumes.
  std::uint64_t config_hash() const;

  std::string to_json() const;
  /// Throws ParseError on malformed input or a schema mismatch.
  static SessionSpec parse(const std::string& json);
};

enum class SessionState { Running, Paused, Suspended, Quarantined };

const char* to_string(SessionState state);

/// Serve-level per-session policy (shared by every session of a server).
struct SessionPolicy {
  /// Steps per scheduler quantum: the unit of work a worker runs between
  /// lock releases, and the granularity of pause/steer responsiveness.
  long quantum_steps = 25;
  /// Quarantine watchdog: a quantum whose per-step time exceeds
  /// max(min_seconds, factor * EWMA) trips; `after_trips` trips quarantine
  /// the session. factor <= 0 disables.
  double watchdog_factor = 50.0;
  double watchdog_min_seconds = 0.5;
  int quarantine_after_trips = 2;
  /// EWMA smoothing for the per-step time (0 < alpha <= 1).
  double ewma_alpha = 0.3;
};

/// Point-in-time view for the status op (and the server's bookkeeping).
struct SessionStatus {
  SessionState state = SessionState::Paused;
  long step = 0;
  long pending = 0;
  double total_energy = 0.0;
  /// Relative energy continuity error proven at the last resume; negative
  /// when the session never resumed (fresh create).
  double continuity_rel = -1.0;
  bool resumed = false;
  long quanta = 0;
  long steps_run = 0;
  long watchdog_trips = 0;
  long quarantines = 0;
  double dt_fs = 0.0;
  std::string strategy;  ///< active rung, or "fixed"/"suspended"
};

/// What one scheduler quantum did (the server folds these into serve.*).
struct QuantumResult {
  long steps_done = 0;
  bool more = false;         ///< pending work remains (re-enqueue)
  bool tripped = false;      ///< watchdog trip this quantum
  bool quarantined = false;  ///< session was quarantined this quantum
};

class Session {
 public:
  /// Fresh session: builds the lattice, writes session.json, and commits
  /// the initial ring generation so a kill at any later moment can resume.
  static std::unique_ptr<Session> create(SessionSpec spec,
                                         const std::string& dir_path,
                                         const SessionPolicy& policy);

  /// Reopen a session directory (fleet auto-resume and the resume op):
  /// loads session.json, resumes the newest ring generation, proves energy
  /// continuity, and leaves the session Paused. Throws Error when the
  /// directory holds no session.json or no loadable checkpoint, and when
  /// the continuity proof fails.
  static std::unique_ptr<Session> open(const std::string& dir_path,
                                       const SessionPolicy& policy);

  const std::string& id() const { return spec_.id; }
  SessionState state() const;
  SessionStatus status() const;

  /// True while the session holds runnable work: Running, pending steps,
  /// live Simulation. The worker re-checks this after clearing
  /// `scheduled` (QuantumResult::more goes stale the moment run_quantum
  /// releases the mutex) so a racing step op is never lost.
  bool runnable() const;

  /// Add steps to the pending budget (waking a Paused session). Returns
  /// the new pending count. Throws Error when Suspended/Quarantined (the
  /// client must resume first).
  long enqueue_steps(long steps);

  /// Halt stepping after the in-flight quantum; pending budget is kept.
  void pause();

  /// Retune the live run between quanta: any subset of {dt, thermostat
  /// target}. `temp` <= 0 removes the thermostat. Throws when Suspended.
  void steer(std::optional<double> dt_fs, std::optional<double> temp,
             double tau_fs);

  /// Copy the current positions (xyz-interleaved) and step. Returns false
  /// when the session holds no live Simulation (Suspended/Quarantined).
  bool snapshot(long& step, std::vector<double>& xyz) const;

  /// Checkpoint and release the in-memory Simulation. Idempotent.
  void suspend();

  /// Rebuild the Simulation from disk (Suspended/Quarantined -> Paused),
  /// re-proving energy continuity. No-op when already live.
  void resume();

  /// Worker entry point: run one quantum of pending steps. Applies the
  /// serve.session_oom fault and the quarantine watchdog. Never throws —
  /// a failing quantum quarantines the session instead of unwinding into
  /// the worker pool.
  QuantumResult run_quantum();

  /// Scheduler handshake (owned by the server's ready queue): true while
  /// the session sits in the queue or a worker holds it.
  std::atomic<bool> scheduled{false};

 private:
  Session(SessionSpec spec, const std::string& dir_path,
          const SessionPolicy& policy);

  /// Build the Simulation + supervisor, fresh or from a resume point.
  /// Caller holds mutex_.
  void materialize(const std::optional<run::ResumePoint>& resume);
  void release_sim();
  void quarantine(const std::string& reason);
  GovernorConfig governor_config() const;

  SessionSpec spec_;
  SessionPolicy policy_;
  run::RunDir dir_;
  FinnisSinclair potential_;

  mutable std::mutex mutex_;
  SessionState state_ = SessionState::Paused;
  std::unique_ptr<Simulation> sim_;
  std::unique_ptr<run::RunSupervisor> supervisor_;
  long pending_ = 0;
  long last_step_ = 0;       ///< survives suspension
  double last_energy_ = 0.0;
  double continuity_rel_ = -1.0;
  bool resumed_ = false;
  long quanta_ = 0;
  long steps_run_ = 0;
  long trips_ = 0;
  long trip_streak_ = 0;
  long quarantines_ = 0;
  double ewma_ = 0.0;
  bool ewma_seeded_ = false;
};

}  // namespace sdcmd::serve
