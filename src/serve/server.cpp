#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"

namespace fs = std::filesystem;

namespace sdcmd::serve {

volatile std::sig_atomic_t SessionServer::drain_signal_ = 0;

namespace {

/// Session ids become directory names: keep them filesystem-safe and flat.
bool valid_session_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) return false;
  }
  return id != "." && id != "..";
}

}  // namespace

SessionServer::SessionServer(ServerConfig config)
    : config_(std::move(config)) {
  SDCMD_REQUIRE(!config_.socket_path.empty(), "socket path is required");
  SDCMD_REQUIRE(!config_.root.empty(), "sessions root is required");
  SDCMD_REQUIRE(config_.max_sessions >= 1, "session cap must be >= 1");
  SDCMD_REQUIRE(config_.workers >= 1, "worker pool must be >= 1");
  SDCMD_REQUIRE(config_.io_timeout_s > 0.0, "io timeout must be positive");
  if (config_.registry != nullptr) {
    obs::MetricsRegistry& r = *config_.registry;
    handles_.connections = r.counter("serve.connections");
    handles_.disconnects_timeout = r.counter("serve.disconnects_timeout");
    handles_.accept_faults = r.counter("serve.accept_faults");
    handles_.ops = r.counter("serve.ops");
    handles_.op_errors = r.counter("serve.op_errors");
    handles_.rejected_overload = r.counter("serve.rejected_overload");
    handles_.sessions_created = r.counter("serve.sessions_created");
    handles_.sessions_resumed = r.counter("serve.sessions_resumed");
    handles_.resume_failures = r.counter("serve.resume_failures");
    handles_.quanta = r.counter("serve.quanta");
    handles_.steps = r.counter("serve.steps");
    handles_.watchdog_trips = r.counter("serve.watchdog_trips");
    handles_.quarantines = r.counter("serve.quarantines");
    handles_.suspends = r.counter("serve.suspends");
    handles_.snapshots = r.counter("serve.snapshots");
    handles_.sessions_active = r.gauge("serve.sessions_active");
    handles_.sessions_suspended = r.gauge("serve.sessions_suspended");
    handles_.sessions_quarantined = r.gauge("serve.sessions_quarantined");
    handles_.drain_seconds = r.gauge("serve.drain_seconds");
  }
}

SessionServer::~SessionServer() {
  stop();
  wait();
}

void SessionServer::metric_add(std::size_t handle, double delta) {
  if (config_.registry == nullptr) return;
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  config_.registry->add(handle, delta);
}

void SessionServer::metric_set(std::size_t handle, double value) {
  if (config_.registry == nullptr) return;
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  config_.registry->set(handle, value);
}

void SessionServer::refresh_session_gauges() {
  int active = 0;
  int suspended = 0;
  int quarantined = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& [id, session] : sessions_) {
      switch (session->state()) {
        case SessionState::Running:
        case SessionState::Paused:
          ++active;
          break;
        case SessionState::Suspended:
          ++suspended;
          break;
        case SessionState::Quarantined:
          ++quarantined;
          break;
      }
    }
  }
  metric_set(handles_.sessions_active, active);
  metric_set(handles_.sessions_suspended, suspended);
  metric_set(handles_.sessions_quarantined, quarantined);
}

std::size_t SessionServer::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

std::shared_ptr<Session> SessionServer::find_session(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void SessionServer::resume_fleet() {
  if (!fs::exists(config_.root)) return;
  for (const auto& entry : fs::directory_iterator(config_.root)) {
    if (!entry.is_directory()) continue;
    const fs::path descriptor = entry.path() / "session.json";
    if (!fs::exists(descriptor)) continue;
    try {
      auto session = std::shared_ptr<Session>(
          Session::open(entry.path().string(), config_.session));
      const std::string id = session->id();
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_[id] = std::move(session);
      ++resumed_;
      metric_add(handles_.sessions_resumed);
    } catch (const Error& e) {
      // One corrupt session must not block the rest of the fleet: skip it,
      // count it, keep its directory for post-mortem.
      ++resume_failures_;
      metric_add(handles_.resume_failures);
      SDCMD_ERROR("serve: cannot resume session dir '"
                  << entry.path().string() << "': " << e.what());
    }
  }
  refresh_session_gauges();
  if (resumed_ > 0 || resume_failures_ > 0) {
    SDCMD_INFO("serve: fleet auto-resume: " << resumed_ << " resumed, "
                                            << resume_failures_
                                            << " failed");
  }
}

void SessionServer::start() {
  SDCMD_REQUIRE(!running_.load(), "server already started");
  drain_signal_ = 0;
  drain_requested_.store(false);
  stop_requested_.store(false);
  fs::create_directories(config_.root);
  resume_fleet();
  listen_fd_ = listen_unix(config_.socket_path);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    workers_running_ = true;
  }
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  running_.store(true);
  io_thread_ = std::thread([this] { serve_loop(); });
}

SessionServer::Outcome SessionServer::wait() {
  if (io_thread_.joinable()) io_thread_.join();
  return outcome_;
}

void SessionServer::stop() { stop_requested_.store(true); }

void SessionServer::schedule(const std::shared_ptr<Session>& session) {
  // The flag is the dedup: a session is queued (or held by a worker) at
  // most once, so concurrent step ops cannot double-schedule it.
  if (session->scheduled.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    ready_.push_back(session);
  }
  queue_cv_.notify_one();
}

void SessionServer::worker_loop() {
  while (true) {
    std::shared_ptr<Session> session;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return !workers_running_ || !ready_.empty(); });
      if (!workers_running_) return;
      session = ready_.front();
      ready_.pop_front();
    }
    const QuantumResult result = session->run_quantum();
    note_quantum(result);
    // Clear-then-recheck: a step op landing after run_quantum() released
    // the session mutex saw scheduled==true and skipped the queue, so
    // result.more is already stale here. Re-reading the live state after
    // the clear closes that lost-wakeup window — either this requeue sees
    // the new budget, or the op's own schedule() ran after the clear.
    session->scheduled.store(false);
    if (session->runnable()) schedule(session);
    if (result.quarantined) refresh_session_gauges();
  }
}

void SessionServer::note_quantum(const QuantumResult& result) {
  if (config_.registry == nullptr) return;
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  config_.registry->add(handles_.quanta);
  config_.registry->add(handles_.steps,
                        static_cast<double>(result.steps_done));
  if (result.tripped) config_.registry->add(handles_.watchdog_trips);
  if (result.quarantined) config_.registry->add(handles_.quarantines);
}

void SessionServer::drain_now() {
  const double t0 = wall_time();
  SDCMD_INFO("serve: draining: " << session_count() << " session(s)");
  // No new quanta: clear the queue (pending budgets survive on-disk as
  // part of nothing — pending is a serve-side construct; the checkpoint
  // below is the durable artifact).
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    ready_.clear();
  }
  std::vector<std::shared_ptr<Session>> fleet;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& [id, session] : sessions_) fleet.push_back(session);
  }
  for (const auto& session : fleet) {
    // In-flight quanta finished when the workers joined; suspend is now
    // uncontended. Checkpoint every live session so restart resumes all.
    session->suspend();
    metric_add(handles_.suspends);
  }
  refresh_session_gauges();
  metric_set(handles_.drain_seconds, wall_time() - t0);
  SDCMD_INFO("serve: drain complete in " << wall_time() - t0 << " s");
}

void SessionServer::serve_loop() {
  std::vector<struct pollfd> pfds;
  while (true) {
    // Latch the process-wide signal mailbox into this instance; a client
    // `drain` op sets drain_requested_ directly and drains only us.
    if (drain_signal_ != 0) drain_requested_.store(true);
    const bool drain = drain_requested_.load();
    if (drain || stop_requested_.load()) {
      // Stop accepting and stop the workers first; their in-flight quantum
      // completes before join returns, so drain_now() suspends settled
      // sessions.
      close_fd(listen_fd_);
      listen_fd_ = -1;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        workers_running_ = false;
      }
      queue_cv_.notify_all();
      for (std::thread& w : workers_) w.join();
      workers_.clear();
      if (drain) drain_now();
      for (const auto& conn : connections_) {
        flush_outbox(*conn);  // best-effort: the drain ack, if still queued
        close_fd(conn->fd);
      }
      connections_.clear();
      ::unlink(config_.socket_path.c_str());
      outcome_ = drain ? Outcome::Drained : Outcome::Stopped;
      running_.store(false);
      return;
    }

    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& conn : connections_) {
      // A connection owing output waits for the peer to drain before it
      // reads anything new; POLLHUP/POLLERR are reported regardless.
      const short events =
          conn->outbox.empty() ? POLLIN : static_cast<short>(POLLOUT);
      pfds.push_back({conn->fd, events, 0});
    }
    // Connections accepted below this line have no pfds entry yet: they
    // are polled (and serviced) starting next round.
    const std::size_t polled = connections_.size();
    // Short timeout: this is also the latency bound on noticing the drain
    // and stop flags.
    const int rc = ::poll(pfds.data(), pfds.size(), 50);
    if (rc < 0 && errno != EINTR) {
      SDCMD_ERROR("serve: poll failed: " << std::strerror(errno));
    }

    if (rc > 0 && (pfds[0].revents & POLLIN) != 0) {
      const int fd = accept_connection(listen_fd_);
      if (fd >= 0) {
        if (FaultInjector::instance().should_fire(faults::kServeAcceptFail)) {
          // Injected transient accept failure: drop this client unserved;
          // it reconnects with backoff and every other client is unharmed.
          metric_add(handles_.accept_faults);
          close_fd(fd);
        } else {
          auto conn = std::make_unique<Connection>(fd);
          conn->last_activity = wall_time();
          connections_.push_back(std::move(conn));
          metric_add(handles_.connections);
        }
      }
    }

    const double now = wall_time();
    for (std::size_t i = 0; i < polled; ++i) {
      Connection& conn = *connections_[i];
      const short revents = rc > 0 ? pfds[i + 1].revents
                                   : static_cast<short>(0);
      if ((revents & POLLOUT) != 0) {
        conn.last_activity = now;
        if (!flush_outbox(conn)) {
          conn.closing = true;
          continue;
        }
      }
      if (!conn.outbox.empty()) {
        if ((revents & (POLLHUP | POLLERR)) != 0) {
          conn.closing = true;  // peer gone: the queued bytes are dead
        } else if (conn.write_stalled_since != 0.0 &&
                   now - conn.write_stalled_since > config_.io_timeout_s) {
          // Write deadline: the peer stopped draining responses. It is
          // disconnected, never waited on — the loop stayed non-blocking
          // the whole time.
          metric_add(handles_.disconnects_timeout);
          conn.closing = true;
        }
        continue;
      }
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        conn.last_activity = now;
        if (!service_connection(conn)) conn.closing = true;
      } else if (conn.reader.line_buffered()) {
        // Lines can be left buffered when one recv carried several
        // requests; answer them without waiting for more bytes.
        if (!service_connection(conn)) conn.closing = true;
      } else if (now - conn.last_activity > config_.io_timeout_s &&
                 !conn.closing) {
        // Read deadline: the peer sent part of a request (or nothing) and
        // stalled. An idle connection is only dropped after the same
        // deadline — clients are expected to reconnect (and do, with
        // backoff).
        metric_add(handles_.disconnects_timeout);
        conn.closing = true;
      }
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& c) {
                         if (c->closing) close_fd(c->fd);
                         return c->closing;
                       }),
        connections_.end());
  }
}

bool SessionServer::service_connection(Connection& conn) {
  // One poll round = at most one recv, then answer every complete line.
  // A half-sent line never blocks the loop; it waits in the buffer.
  if (!conn.reader.line_buffered()) {
    const int n = conn.reader.fill_once();
    if (n == 0) return false;  // EOF / peer reset
    if (n < 0) return true;    // spurious wakeup: try next round
  }
  std::string line;
  while (conn.reader.line_buffered()) {
    conn.reader.next_line(line, 0.0);
    if (line.empty()) continue;
    WireMessage response;
    try {
      const WireMessage request = WireMessage::parse(line);
      metric_add(handles_.ops);
      response = handle_request(request, conn);
    } catch (const ParseError& e) {
      response = make_error("bad_request", e.what());
    } catch (const Error& e) {
      response = make_error("conflict", e.what());
    }
    if (!response.find("ok")->as_bool()) metric_add(handles_.op_errors);
    if (!send_response(conn, response)) return false;
  }
  return true;
}

bool SessionServer::send_response(Connection& conn,
                                  const WireMessage& response) {
  if (FaultInjector::instance().should_fire(faults::kServeSlowClient)) {
    // Injected write-deadline expiry: treat the client as one that stopped
    // draining its socket and cut it loose.
    conn.pending_frame.clear();
    conn.outbox.clear();
    metric_add(handles_.disconnects_timeout);
    return false;
  }
  conn.outbox += response.serialize();
  conn.outbox += '\n';
  if (!conn.pending_frame.empty()) {
    conn.outbox += conn.pending_frame;
    conn.pending_frame.clear();
  }
  // Opportunistic flush: the common case (a reading client, small
  // response) completes here in one send; anything left drains on
  // POLLOUT from the poll loop.
  return flush_outbox(conn);
}

bool SessionServer::flush_outbox(Connection& conn) {
  std::size_t sent = 0;
  while (sent < conn.outbox.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbox.data() + sent, conn.outbox.size() - sent,
               MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      // Any progress restarts the stall clock: the deadline measures a
      // peer that *stopped* draining, not one draining a big frame slowly.
      conn.write_stalled_since = 0.0;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: keep the remainder queued and let the write
      // deadline in the poll loop decide whether the peer ever drains.
      if (conn.write_stalled_since == 0.0) {
        conn.write_stalled_since = wall_time();
      }
      conn.outbox.erase(0, sent);
      return true;
    }
    return false;  // EPIPE / ECONNRESET: the peer is gone
  }
  conn.outbox.clear();
  conn.write_stalled_since = 0.0;
  return true;
}

WireMessage SessionServer::handle_request(const WireMessage& request,
                                          Connection& conn) {
  const std::string op = request.get_string("op");
  try {
    if (op == "ping") {
      WireMessage r = make_ok();
      r.set("sessions", static_cast<std::int64_t>(session_count()));
      r.set("max_sessions", config_.max_sessions);
      return r;
    }
    if (op == "create") return op_create(request);
    if (op == "step") return op_step(request);
    if (op == "snapshot") return op_snapshot(request, conn);
    if (op == "status") return op_status(request);
    if (op == "list") return op_list();
    if (op == "metrics") return op_metrics();
    if (op == "drain") {
      drain();
      return make_ok();
    }

    // Remaining ops all address one session.
    const std::string id = request.require_string("id");
    const std::shared_ptr<Session> session = find_session(id);
    if (session == nullptr) {
      return make_error("not_found", "no session '" + id + "'");
    }
    if (op == "pause") {
      session->pause();
      WireMessage r = make_ok();
      r.set("id", id);
      r.set("step", session->status().step);
      return r;
    }
    if (op == "steer") {
      std::optional<double> dt_fs;
      std::optional<double> temp;
      if (request.has("dt_fs")) dt_fs = request.get_double("dt_fs", 0.0);
      if (request.has("temp")) temp = request.get_double("temp", 0.0);
      session->steer(dt_fs, temp, request.get_double("tau_fs", 100.0));
      WireMessage r = make_ok();
      r.set("id", id);
      return r;
    }
    if (op == "suspend") {
      session->suspend();
      metric_add(handles_.suspends);
      refresh_session_gauges();
      WireMessage r = make_ok();
      r.set("id", id);
      r.set("step", session->status().step);
      return r;
    }
    if (op == "resume") {
      session->resume();
      refresh_session_gauges();
      const SessionStatus status = session->status();
      WireMessage r = make_ok();
      r.set("id", id);
      r.set("step", status.step);
      r.set("continuity_rel", status.continuity_rel);
      return r;
    }
    if (op == "destroy") {
      // Final checkpoint, drop from the fleet; the directory stays on disk
      // as the archive (a future create with the same id would resume it —
      // callers wanting a fresh start pick a fresh id).
      session->suspend();
      metric_add(handles_.suspends);
      {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        sessions_.erase(id);
      }
      refresh_session_gauges();
      WireMessage r = make_ok();
      r.set("id", id);
      return r;
    }
    return make_error("bad_request", "unknown op '" + op + "'");
  } catch (const ParseError& e) {
    return make_error("bad_request", e.what());
  } catch (const Error& e) {
    return make_error("conflict", e.what());
  } catch (const std::exception& e) {
    return make_error("internal", e.what());
  }
}

WireMessage SessionServer::op_create(const WireMessage& request) {
  if (drain_requested_.load() || drain_signal_ != 0) {
    return make_error("draining", "server is draining; retry after restart");
  }
  SessionSpec spec;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    // Admission control: a hard cap with explicit rejection. The server
    // never queues creates — back-pressure is the client's problem, and an
    // overloaded daemon says so instead of degrading every session.
    if (sessions_.size() >= static_cast<std::size_t>(config_.max_sessions)) {
      metric_add(handles_.rejected_overload);
      return make_error("overloaded",
                        "session cap reached (" +
                            std::to_string(config_.max_sessions) +
                            "); retry later or destroy a session");
    }
    spec.id = request.get_string("id");
    if (spec.id.empty()) {
      spec.id = "s" + std::to_string(next_session_number_++);
    }
    if (!valid_session_id(spec.id)) {
      return make_error("bad_request",
                        "invalid session id '" + spec.id + "'");
    }
    if (sessions_.count(spec.id) != 0) {
      return make_error("exists", "session '" + spec.id + "' already exists");
    }
  }
  spec.cells = static_cast<int>(request.get_int("cells", spec.cells));
  spec.temp = request.get_double("temp", spec.temp);
  spec.seed = request.get_int("seed", spec.seed);
  spec.dt_fs = request.get_double("dt_fs", spec.dt_fs);
  spec.governed = request.get_bool("governed", spec.governed);
  spec.strategy_code =
      static_cast<int>(request.get_int("strategy", spec.strategy_code));
  spec.threads = static_cast<int>(request.get_int("threads", spec.threads));
  spec.checkpoint_every =
      request.get_int("checkpoint_every", spec.checkpoint_every);
  spec.keep = static_cast<int>(request.get_int("keep", spec.keep));

  const std::string dir = (fs::path(config_.root) / spec.id).string();
  auto session = std::shared_ptr<Session>(
      Session::create(spec, dir, config_.session));
  const SessionStatus status = session->status();
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    // The cap was checked above; a concurrent create can only come from
    // this same I/O thread, so no re-check is needed — but ids can race
    // with resume, so guard the insert.
    if (sessions_.count(spec.id) != 0) {
      return make_error("exists", "session '" + spec.id + "' already exists");
    }
    sessions_[spec.id] = std::move(session);
  }
  metric_add(handles_.sessions_created);
  refresh_session_gauges();
  WireMessage r = make_ok();
  r.set("id", spec.id);
  r.set("step", status.step);
  r.set("natoms", static_cast<std::int64_t>(2L * spec.cells * spec.cells *
                                            spec.cells));
  return r;
}

WireMessage SessionServer::op_step(const WireMessage& request) {
  const std::string id = request.require_string("id");
  const std::shared_ptr<Session> session = find_session(id);
  if (session == nullptr) {
    return make_error("not_found", "no session '" + id + "'");
  }
  const std::int64_t steps = request.require_int("steps");
  if (steps <= 0) {
    return make_error("bad_request", "steps must be positive");
  }
  const long pending = session->enqueue_steps(static_cast<long>(steps));
  schedule(session);
  const SessionStatus status = session->status();
  WireMessage r = make_ok();
  r.set("id", id);
  r.set("step", status.step);
  r.set("pending", pending);
  return r;
}

WireMessage SessionServer::op_snapshot(const WireMessage& request,
                                       Connection& conn) {
  const std::string id = request.require_string("id");
  const std::shared_ptr<Session> session = find_session(id);
  if (session == nullptr) {
    return make_error("not_found", "no session '" + id + "'");
  }
  long step = 0;
  std::vector<double> xyz;
  if (!session->snapshot(step, xyz)) {
    return make_error("conflict",
                      "session '" + id + "' holds no live state (" +
                          to_string(session->state()) + "); resume first");
  }
  metric_add(handles_.snapshots);
  const std::size_t frame_bytes = xyz.size() * sizeof(double);
  conn.pending_frame.assign(reinterpret_cast<const char*>(xyz.data()),
                            frame_bytes);
  WireMessage r = make_ok();
  r.set("id", id);
  r.set("step", step);
  r.set("natoms", static_cast<std::int64_t>(xyz.size() / 3));
  r.set("frame_bytes", static_cast<std::int64_t>(frame_bytes));
  return r;
}

WireMessage SessionServer::op_status(const WireMessage& request) {
  const std::string id = request.require_string("id");
  const std::shared_ptr<Session> session = find_session(id);
  if (session == nullptr) {
    return make_error("not_found", "no session '" + id + "'");
  }
  const SessionStatus s = session->status();
  WireMessage r = make_ok();
  r.set("id", id);
  r.set("state", to_string(s.state));
  r.set("step", s.step);
  r.set("pending", s.pending);
  r.set("total_energy", s.total_energy);
  r.set("continuity_rel", s.continuity_rel);
  r.set("resumed", s.resumed);
  r.set("quanta", s.quanta);
  r.set("steps_run", s.steps_run);
  r.set("watchdog_trips", s.watchdog_trips);
  r.set("quarantines", s.quarantines);
  r.set("dt_fs", s.dt_fs);
  r.set("strategy", s.strategy);
  return r;
}

WireMessage SessionServer::op_list() {
  WireMessage r = make_ok();
  std::string ids;
  std::size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& [id, session] : sessions_) {
      if (!ids.empty()) ids += ',';
      ids += id;
      ++count;
    }
  }
  r.set("sessions", ids);
  r.set("count", static_cast<std::int64_t>(count));
  return r;
}

WireMessage SessionServer::op_metrics() {
  WireMessage r = make_ok();
  if (config_.registry != nullptr) {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const auto& sample : config_.registry->totals()) {
      if (sample.name.rfind("serve.", 0) != 0) continue;
      r.set(sample.name, sample.value);
    }
  }
  return r;
}

}  // namespace sdcmd::serve
