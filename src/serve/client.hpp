// ServeClient: the client side of the sdcmd-serve wire protocol.
//
// One connection to the daemon's AF_UNIX socket, with the robustness the
// server expects of its peers built in:
//
//  * every request is deadline-bounded (no call blocks past io_timeout_s);
//  * a vanished/refusing daemon (restart, injected accept failure, drain)
//    is retried with exponential backoff up to a bounded budget, with the
//    connection rebuilt from scratch on each retry;
//  * retries give AT-LEAST-ONCE semantics: a request whose response was
//    lost may have executed. Every protocol op is either idempotent
//    (status/snapshot/pause/suspend/resume/steer-to-absolute-values) or
//    tolerates duplication in its semantics (`step` adds to a pending
//    budget — callers that must not double-step check `status` after a
//    retried send; create with an explicit id reports `exists`).
//
// Thread-compatibility: one ServeClient per thread; instances are not
// internally synchronized.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace sdcmd::serve {

struct ClientConfig {
  std::string socket_path;
  /// Per-request read/write deadline in seconds.
  double io_timeout_s = 5.0;
  /// Full-request retry budget (reconnect + resend) beyond the first try.
  int max_retries = 5;
  /// First retry sleeps this long; each further retry multiplies by
  /// `backoff_factor` (exponential, bounded by the retry budget).
  double backoff_initial_s = 0.05;
  double backoff_factor = 2.0;
};

class ServeClient {
 public:
  explicit ServeClient(ClientConfig config);
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Send one control message and return the daemon's response (which may
  /// be an ok:false error message — protocol errors are data, not
  /// exceptions). Throws Error only when the daemon stays unreachable
  /// after the whole retry budget.
  WireMessage request(const WireMessage& message);

  /// Convenience: request {"op": op} (+ optional id).
  WireMessage request_op(const std::string& op, const std::string& id = "");

  /// Snapshot op: returns the header response; on ok, `xyz` holds the
  /// natoms×3 interleaved positions read from the binary frame.
  WireMessage snapshot(const std::string& id, std::vector<double>& xyz);

  bool connected() const { return fd_ >= 0; }
  void disconnect();

  const ClientConfig& config() const { return config_; }

 private:
  bool ensure_connected();

  ClientConfig config_;
  int fd_ = -1;
  std::unique_ptr<LineReader> reader_;
};

}  // namespace sdcmd::serve
