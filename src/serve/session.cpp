#include "serve/session.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <new>
#include <sstream>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "common/threads.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"
#include "core/strategy_governor.hpp"
#include "md/thermostat.hpp"
#include "obs/json.hpp"
#include "serve/wire.hpp"

namespace sdcmd::serve {

namespace {

constexpr const char* kSpecSchema = "sdcmd.session.v1";
constexpr const char* kSpecName = "session.json";

/// Temp-then-rename writer for session.json, mirroring RunDir's artifact
/// discipline: a crash mid-write never clobbers the readable descriptor.
void write_spec_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << text;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw Error("session: cannot write '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("session: cannot rename '" + tmp + "' to '" + path + "'");
  }
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("session: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::uint64_t SessionSpec::config_hash() const {
  std::uint64_t h = kFnv1a64Offset;
  h = fnv1a64_mix(h, cells);
  h = fnv1a64_mix(h, temp);
  h = fnv1a64_mix(h, seed);
  h = fnv1a64_mix(h, governed);
  h = fnv1a64_mix(h, strategy_code);
  return h;
}

std::string SessionSpec::to_json() const {
  std::string out;
  obs::JsonWriter json(out);
  json.begin_object();
  json.member("schema", kSpecSchema);
  json.member("id", id);
  json.member("cells", cells);
  json.member("temp", temp);
  json.member("seed", static_cast<std::int64_t>(seed));
  json.member("dt_fs", dt_fs);
  json.member("governed", governed);
  json.member("strategy_code", strategy_code);
  json.member("threads", threads);
  json.member("checkpoint_every", static_cast<std::int64_t>(checkpoint_every));
  json.member("keep", keep);
  json.end_object();
  return out;
}

SessionSpec SessionSpec::parse(const std::string& json) {
  const WireMessage msg = WireMessage::parse(json);
  if (msg.get_string("schema") != kSpecSchema) {
    throw ParseError("session: schema mismatch: expected '" +
                     std::string(kSpecSchema) + "', got '" +
                     msg.get_string("schema") + "'");
  }
  SessionSpec spec;
  spec.id = msg.require_string("id");
  spec.cells = static_cast<int>(msg.get_int("cells", spec.cells));
  spec.temp = msg.get_double("temp", spec.temp);
  spec.seed = static_cast<long>(msg.get_int("seed", spec.seed));
  spec.dt_fs = msg.get_double("dt_fs", spec.dt_fs);
  spec.governed = msg.get_bool("governed", spec.governed);
  spec.strategy_code =
      static_cast<int>(msg.get_int("strategy_code", spec.strategy_code));
  spec.threads = static_cast<int>(msg.get_int("threads", spec.threads));
  spec.checkpoint_every = msg.get_int("checkpoint_every",
                                      spec.checkpoint_every);
  spec.keep = static_cast<int>(msg.get_int("keep", spec.keep));
  if (spec.cells < 2 || spec.cells > 64) {
    throw ParseError("session: cells out of range [2, 64]");
  }
  if (spec.dt_fs <= 0.0) {
    throw ParseError("session: dt_fs must be positive");
  }
  if (spec.threads < 1) {
    throw ParseError("session: threads must be >= 1");
  }
  if (spec.checkpoint_every < 1) {
    throw ParseError("session: checkpoint_every must be >= 1");
  }
  // Reject unusable strategy codes at admission, not deep inside
  // materialize(): a client built against a newer ladder may send a code
  // this server has never heard of.
  const std::optional<ReductionStrategy> strat =
      StrategyGovernor::try_strategy_from_code(spec.strategy_code);
  if (!strat) {
    throw ParseError("session: unknown strategy_code " +
                     std::to_string(spec.strategy_code));
  }
  if (spec.governed && !StrategyGovernor::on_ladder(*strat)) {
    throw ParseError("session: strategy_code " +
                     std::to_string(spec.strategy_code) +
                     " (" + to_string(*strat) +
                     ") is not a governor ladder rung");
  }
  return spec;
}

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::Running: return "running";
    case SessionState::Paused: return "paused";
    case SessionState::Suspended: return "suspended";
    case SessionState::Quarantined: return "quarantined";
  }
  return "unknown";
}

Session::Session(SessionSpec spec, const std::string& dir_path,
                 const SessionPolicy& policy)
    : spec_(std::move(spec)),
      policy_(policy),
      dir_(dir_path, spec_.keep),
      potential_(FinnisSinclairParams::iron()) {}

std::unique_ptr<Session> Session::create(SessionSpec spec,
                                         const std::string& dir_path,
                                         const SessionPolicy& policy) {
  std::unique_ptr<Session> session(
      new Session(std::move(spec), dir_path, policy));
  write_spec_atomic(session->dir_.file_path(kSpecName),
                    session->spec_.to_json() + "\n");
  std::lock_guard<std::mutex> lock(session->mutex_);
  session->materialize(std::nullopt);
  // The initial ring generation: a SIGKILL at any later moment finds a
  // resume point, even before the first cadence checkpoint.
  session->supervisor_->checkpoint_now();
  session->state_ = SessionState::Paused;
  return session;
}

std::unique_ptr<Session> Session::open(const std::string& dir_path,
                                       const SessionPolicy& policy) {
  const std::string spec_path = dir_path + "/" + kSpecName;
  const SessionSpec spec = SessionSpec::parse(read_text_file(spec_path));
  std::unique_ptr<Session> session(new Session(spec, dir_path, policy));
  std::lock_guard<std::mutex> lock(session->mutex_);
  const std::optional<run::ResumePoint> resume =
      session->dir_.try_resume_provable();
  if (!resume) {
    throw Error("session '" + session->spec_.id +
                "': no loadable checkpoint in '" + dir_path + "'");
  }
  session->materialize(resume);
  session->state_ = SessionState::Paused;
  return session;
}

GovernorConfig Session::governor_config() const {
  GovernorConfig gov;
  gov.preferred = StrategyGovernor::strategy_from_code(spec_.strategy_code);
  return gov;
}

void Session::materialize(const std::optional<run::ResumePoint>& resume) {
  SimulationConfig config;
  config.dt = units::fs_to_internal(spec_.dt_fs);
  const ReductionStrategy preferred =
      StrategyGovernor::strategy_from_code(spec_.strategy_code);
  config.force.strategy =
      spec_.governed ? ReductionStrategy::Serial : preferred;
  if (resume && resume->state_valid && resume->state.has_governor) {
    // Construct on the checkpointed (possibly demoted) rung: the saved box
    // may be infeasible for the preferred one.
    config.force.strategy = resume->state.governor.active;
  }

  System system = [&] {
    if (resume) return resume->checkpoint.system;
    LatticeSpec lattice;
    lattice.type = LatticeType::Bcc;
    lattice.a0 = units::kLatticeFe;
    lattice.nx = lattice.ny = lattice.nz = spec_.cells;
    return System::from_lattice(lattice, units::kMassFe);
  }();

  sim_ = std::make_unique<Simulation>(std::move(system), potential_, config);
  const GovernorConfig gov = governor_config();

  if (resume) {
    sim_->set_current_step(resume->checkpoint.step);
    if (resume->state_valid) {
      const run::RunState& state = resume->state;
      if (state.config_hash != 0 && state.config_hash != spec_.config_hash()) {
        throw Error("session '" + spec_.id +
                    "': config hash mismatch between session.json and the "
                    "run_state sidecar; refusing to resume different physics");
      }
      sim_->set_dt(state.dt);
      sim_->set_com_momentum_zeroed(state.momentum_zeroed);
      if (spec_.governed && state.has_governor) {
        sim_->set_governor(gov, state.governor);
      } else if (spec_.governed) {
        sim_->set_governor(gov);
      }
      // Continuity proof: the reloaded state must reproduce the energy
      // recorded when the checkpoint was written.
      sim_->compute_forces();
      const double now = sim_->sample().total_energy();
      const double ref = state.total_energy;
      continuity_rel_ = std::abs(now - ref) / std::max(1.0, std::abs(ref));
      if (!(continuity_rel_ <= 1e-8)) {
        sim_.reset();
        throw Error("session '" + spec_.id +
                    "': energy discontinuity across resume (rel=" +
                    std::to_string(continuity_rel_) + " > 1e-8)");
      }
    } else {
      if (spec_.governed) sim_->set_governor(gov);
      sim_->compute_forces();
      continuity_rel_ = -1.0;  // no sidecar to prove against
    }
    resumed_ = true;
  } else {
    sim_->set_temperature(spec_.temp, static_cast<std::uint64_t>(spec_.seed));
    if (spec_.governed) sim_->set_governor(gov);
    sim_->compute_forces();
  }

  run::SupervisorConfig sup;
  sup.checkpoint_every = spec_.checkpoint_every;
  sup.install_signal_handlers = false;  // the server owns signal policy
  sup.watchdog_factor = 0.0;  // the serve-level watchdog quarantines instead
  sup.config_hash = spec_.config_hash();
  supervisor_ = std::make_unique<run::RunSupervisor>(*sim_, dir_, sup);

  last_step_ = sim_->current_step();
  last_energy_ = sim_->sample().total_energy();
}

void Session::release_sim() {
  supervisor_.reset();
  sim_.reset();
}

SessionState Session::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

bool Session::runnable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_ == SessionState::Running && pending_ > 0 && sim_ != nullptr;
}

SessionStatus Session::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SessionStatus s;
  s.state = state_;
  s.step = sim_ ? sim_->current_step() : last_step_;
  s.pending = pending_;
  s.total_energy = last_energy_;
  s.continuity_rel = continuity_rel_;
  s.resumed = resumed_;
  s.quanta = quanta_;
  s.steps_run = steps_run_;
  s.watchdog_trips = trips_;
  s.quarantines = quarantines_;
  s.dt_fs = sim_ ? units::internal_to_fs(sim_->config().dt) : spec_.dt_fs;
  if (sim_) {
    s.strategy = sim_->has_governor()
                     ? sdcmd::to_string(sim_->governor()->active())
                     : "fixed";
  } else {
    s.strategy = "suspended";
  }
  return s;
}

long Session::enqueue_steps(long steps) {
  SDCMD_REQUIRE(steps > 0, "step count must be positive");
  std::lock_guard<std::mutex> lock(mutex_);
  if (sim_ == nullptr) {
    throw Error("session '" + spec_.id + "' is " +
                std::string(to_string(state_)) + "; resume it before stepping");
  }
  pending_ += steps;
  state_ = SessionState::Running;
  return pending_;
}

void Session::pause() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == SessionState::Running) state_ = SessionState::Paused;
}

void Session::steer(std::optional<double> dt_fs, std::optional<double> temp,
                    double tau_fs) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sim_ == nullptr) {
    throw Error("session '" + spec_.id + "' is " +
                std::string(to_string(state_)) + "; resume it before steering");
  }
  if (dt_fs) {
    SDCMD_REQUIRE(*dt_fs > 0.0, "dt must be positive");
    sim_->set_dt(units::fs_to_internal(*dt_fs));
    // Keep the descriptor in sync so a fleet resume without a sidecar
    // (degraded path) still starts near the steered value.
    spec_.dt_fs = *dt_fs;
    write_spec_atomic(dir_.file_path(kSpecName), spec_.to_json() + "\n");
  }
  if (temp) {
    if (*temp > 0.0) {
      sim_->set_thermostat(std::make_unique<BerendsenThermostat>(
          *temp, units::fs_to_internal(tau_fs),
          sim_->com_momentum_zeroed()));
    } else {
      sim_->set_thermostat(nullptr);
    }
  }
}

bool Session::snapshot(long& step, std::vector<double>& xyz) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sim_ == nullptr) return false;
  const Atoms& atoms = sim_->system().atoms();
  step = sim_->current_step();
  xyz.resize(atoms.size() * 3);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    xyz[3 * i + 0] = atoms.position[i].x;
    xyz[3 * i + 1] = atoms.position[i].y;
    xyz[3 * i + 2] = atoms.position[i].z;
  }
  return true;
}

void Session::suspend() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sim_ == nullptr) return;  // already suspended/quarantined
  supervisor_->checkpoint_now();
  last_step_ = sim_->current_step();
  last_energy_ = sim_->sample().total_energy();
  release_sim();
  pending_ = 0;
  state_ = SessionState::Suspended;
}

void Session::resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sim_ != nullptr) return;  // already live
  const std::optional<run::ResumePoint> resume = dir_.try_resume_provable();
  if (!resume) {
    throw Error("session '" + spec_.id + "': nothing to resume in '" +
                dir_.path() + "'");
  }
  materialize(resume);
  trip_streak_ = 0;
  state_ = SessionState::Paused;
}

void Session::quarantine(const std::string& reason) {
  // Caller holds mutex_ and sim_ is live.
  SDCMD_WARN("serve: quarantining session '" << spec_.id << "': " << reason);
  ++quarantines_;
  trip_streak_ = 0;
  if (spec_.governed && sim_->has_governor()) {
    // Demote one rung before the final checkpoint so the sidecar records
    // the demoted strategy: the session resumes on cheaper, safer footing.
    GovernorState state = sim_->governor()->state();
    constexpr auto& ladder = StrategyGovernor::kLadder;
    constexpr int rungs = static_cast<int>(std::size(ladder));
    int index = rungs - 1;
    for (int i = 0; i < rungs; ++i) {
      if (ladder[i] == state.active) {
        index = i;
        break;
      }
    }
    if (index + 1 < rungs) {
      state.active = ladder[index + 1];
      ++state.demotions;
      sim_->set_governor(governor_config(), state);
    }
  }
  supervisor_->checkpoint_now();
  last_step_ = sim_->current_step();
  last_energy_ = sim_->sample().total_energy();
  release_sim();
  pending_ = 0;
  state_ = SessionState::Quarantined;
}

QuantumResult Session::run_quantum() {
  std::lock_guard<std::mutex> lock(mutex_);
  QuantumResult result;
  if (state_ != SessionState::Running || pending_ <= 0 || sim_ == nullptr) {
    return result;
  }
  const long quantum = std::min(pending_, policy_.quantum_steps);
  // Size this worker's OpenMP team for the session: many small sessions
  // share the machine as workers × threads, never oversubscribing it with
  // one team per live session.
  set_threads(spec_.threads);
  const double t0 = wall_time();
  try {
    if (FaultInjector::instance().should_fire(faults::kServeSessionOom)) {
      throw std::bad_alloc();
    }
    supervisor_->advance(quantum);
  } catch (const std::exception& e) {
    quarantine(std::string("step quantum failed: ") + e.what());
    result.quarantined = true;
    return result;
  }
  const double wall = wall_time() - t0;
  result.steps_done = quantum;
  pending_ -= quantum;
  ++quanta_;
  steps_run_ += quantum;
  last_step_ = sim_->current_step();
  last_energy_ = sim_->sample().total_energy();

  // Quarantine watchdog: judge this quantum's per-step time against the
  // deadline derived from the *previous* EWMA (one pathological quantum
  // cannot hide by inflating the average it is judged against).
  const double per_step = wall / static_cast<double>(quantum);
  if (!ewma_seeded_) {
    ewma_ = per_step;
    ewma_seeded_ = true;
  } else {
    const double deadline = std::max(policy_.watchdog_min_seconds,
                                     ewma_ * policy_.watchdog_factor);
    if (policy_.watchdog_factor > 0.0 && per_step > deadline) {
      ++trips_;
      ++trip_streak_;
      result.tripped = true;
      SDCMD_WARN("serve: session '"
                 << spec_.id << "' step time " << per_step << " s/step blew "
                 << deadline << " s deadline (trip " << trip_streak_ << "/"
                 << policy_.quarantine_after_trips << ")");
      if (trip_streak_ >= policy_.quarantine_after_trips) {
        quarantine("pathological step times (EWMA watchdog)");
        result.quarantined = true;
        return result;
      }
    } else {
      trip_streak_ = 0;
    }
    ewma_ += policy_.ewma_alpha * (per_step - ewma_);
  }

  // An exhausted budget parks the session: Paused is the idle state, so
  // `status` distinguishes "working" from "waiting for more steps".
  if (pending_ <= 0 && state_ == SessionState::Running) {
    state_ = SessionState::Paused;
  }
  result.more = pending_ > 0 && state_ == SessionState::Running;
  return result;
}

}  // namespace sdcmd::serve
