#include "serve/wire.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/json.hpp"

namespace sdcmd::serve {

// ---------------------------------------------------------------------------
// WireValue

const std::string& WireValue::as_string() const {
  if (type_ != Type::String) {
    throw ParseError("wire: value is not a string");
  }
  return string_;
}

bool WireValue::as_bool() const {
  if (type_ != Type::Bool) {
    throw ParseError("wire: value is not a bool");
  }
  return bool_;
}

std::int64_t WireValue::as_int() const {
  if (type_ == Type::Int) return int_;
  if (type_ == Type::Double) {
    // Guard the cast: int64-overflowing (or NaN) doubles are UB under
    // static_cast, not a clamp. Bounds are the exactly-representable
    // ±2^63; the comparison is false for NaN too.
    if (!(double_ >= -9223372036854775808.0 &&
          double_ < 9223372036854775808.0)) {
      throw ParseError("wire: number out of int64 range");
    }
    return static_cast<std::int64_t>(double_);
  }
  throw ParseError("wire: value is not a number");
}

double WireValue::as_double() const {
  if (type_ == Type::Double) return double_;
  if (type_ == Type::Int) return static_cast<double>(int_);
  throw ParseError("wire: value is not a number");
}

void WireValue::append_json(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Int: out += std::to_string(int_); return;
    case Type::Double: obs::append_json_number(out, double_); return;
    case Type::String: obs::append_json_string(out, string_); return;
  }
}

// ---------------------------------------------------------------------------
// WireMessage

void WireMessage::set(const std::string& key, WireValue value) {
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const WireValue* WireMessage::find(const std::string& key) const {
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string WireMessage::get_string(const std::string& key,
                                    const std::string& fallback) const {
  const WireValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

std::int64_t WireMessage::get_int(const std::string& key,
                                  std::int64_t fallback) const {
  const WireValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_int() : fallback;
}

double WireMessage::get_double(const std::string& key,
                               double fallback) const {
  const WireValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

bool WireMessage::get_bool(const std::string& key, bool fallback) const {
  const WireValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

std::string WireMessage::require_string(const std::string& key) const {
  const WireValue* v = find(key);
  if (v == nullptr || !v->is_string()) {
    throw ParseError("wire: missing required string member '" + key + "'");
  }
  return v->as_string();
}

std::int64_t WireMessage::require_int(const std::string& key) const {
  const WireValue* v = find(key);
  if (v == nullptr || !v->is_number()) {
    throw ParseError("wire: missing required numeric member '" + key + "'");
  }
  return v->as_int();
}

std::string WireMessage::serialize() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : members_) {
    if (!first) out += ',';
    first = false;
    obs::append_json_string(out, key);
    out += ':';
    value.append_json(out);
  }
  out += '}';
  return out;
}

namespace {

/// Flat-object JSON parser for control lines: the serve twin of the
/// run_state.v1 parser, with the same "scalars only" contract. Nested
/// containers are a protocol violation, not a missing feature.
class FlatParser {
 public:
  explicit FlatParser(const std::string& text) : text_(text) {}

  WireMessage parse() {
    WireMessage msg;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      finish();
      return msg;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      msg.set(key, parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' after member");
    }
    finish();
    return msg;
  }

 private:
  WireValue parse_value() {
    const char c = peek();
    if (c == '"') return WireValue(parse_string());
    if (c == 't' || c == 'f') return WireValue(parse_bool());
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) fail("expected null");
      pos_ += 4;
      return WireValue();
    }
    if (c == '{' || c == '[') {
      fail("nested containers are not part of the wire protocol");
    }
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: fail("unsupported escape in wire string");
        }
      } else {
        out += c;
      }
    }
  }

  WireValue parse_number() {
    // A sign is only legal up front or right after an exponent marker;
    // strtoll/strtod below do the rest of the validation (the scanner
    // only has to find where the token ends).
    const std::size_t start = pos_;
    bool integral = true;
    if (peek() == '-' || peek() == '+') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.') {
        integral = false;
        ++pos_;
      } else if (c == 'e' || c == 'E') {
        integral = false;
        ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    errno = 0;
    if (integral) {
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size() || end == token.c_str()) {
        fail("malformed number '" + token + "'");
      }
      if (errno == ERANGE) {
        fail("integer out of int64 range: '" + token + "'");
      }
      return WireValue(static_cast<std::int64_t>(value));
    }
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || end == token.c_str()) {
      fail("malformed number '" + token + "'");
    }
    if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
      fail("number out of double range: '" + token + "'");
    }
    return WireValue(value);
  }

  bool parse_bool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected true/false");
    return false;  // unreachable
  }

  void finish() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after message");
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of message");
    return text_[pos_++];
  }
  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("wire: " + why + " (byte " + std::to_string(pos_) +
                     " of " + std::to_string(text_.size()) + ")");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

WireMessage WireMessage::parse(const std::string& line) {
  return FlatParser(line).parse();
}

WireMessage make_ok() {
  WireMessage msg;
  msg.set("ok", WireValue(true));
  return msg;
}

WireMessage make_error(const std::string& code, const std::string& message) {
  WireMessage msg;
  msg.set("ok", WireValue(false));
  msg.set("code", WireValue(code));
  msg.set("error", WireValue(message));
  return msg;
}

// ---------------------------------------------------------------------------
// Socket I/O

bool wait_fd(int fd, short events, double timeout_s) {
  const double deadline = wall_time() + timeout_s;
  while (true) {
    const double remaining = deadline - wall_time();
    if (remaining < 0.0) return false;
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int timeout_ms =
        static_cast<int>(remaining * 1000.0) + 1;  // round up, never 0-spin
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      // POLLHUP/POLLERR still mean "go read/write and see the error": a
      // hung-up socket must be drained so the caller observes EOF.
      return true;
    }
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw Error(std::string("serve: poll failed: ") + std::strerror(errno));
  }
}

bool write_all(int fd, std::string_view data, double timeout_s) {
  const double deadline = wall_time() + timeout_s;
  std::size_t written = 0;
  while (written < data.size()) {
    const double remaining = deadline - wall_time();
    if (remaining < 0.0 || !wait_fd(fd, POLLOUT, remaining)) return false;
    const ssize_t n = ::send(fd, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK)) {
      continue;
    }
    return false;  // EPIPE / ECONNRESET: the peer is gone
  }
  return true;
}

bool read_exact(int fd, char* out, std::size_t len, double timeout_s) {
  const double deadline = wall_time() + timeout_s;
  std::size_t got = 0;
  while (got < len) {
    const double remaining = deadline - wall_time();
    if (remaining < 0.0 || !wait_fd(fd, POLLIN, remaining)) return false;
    const ssize_t n = ::recv(fd, out + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK)) {
      continue;
    }
    return false;  // EOF or reset
  }
  return true;
}

bool LineReader::line_buffered() const {
  return buffer_.find('\n') != std::string::npos;
}

int LineReader::fill_once() {
  char chunk[4096];
  const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
  if (n > 0) {
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return static_cast<int>(n);
  }
  if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
    return -1;
  }
  return 0;  // EOF or peer reset
}

LineReader::Result LineReader::next_line(std::string& line,
                                         double timeout_s) {
  const double deadline = wall_time() + timeout_s;
  while (true) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      line.assign(buffer_, 0, eol);
      buffer_.erase(0, eol + 1);
      return Result::Line;
    }
    const double remaining = deadline - wall_time();
    if (remaining < 0.0 || !wait_fd(fd_, POLLIN, remaining)) {
      return Result::Timeout;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK)) {
      continue;
    }
    return Result::Closed;
  }
}

bool LineReader::take_exact(std::string& out, std::size_t len,
                            double timeout_s) {
  out.clear();
  const std::size_t buffered = std::min(buffer_.size(), len);
  out.append(buffer_, 0, buffered);
  buffer_.erase(0, buffered);
  if (out.size() == len) return true;
  const std::size_t missing = len - out.size();
  std::string tail(missing, '\0');
  if (!read_exact(fd_, tail.data(), missing, timeout_s)) return false;
  out += tail;
  return true;
}

namespace {

void fill_unix_address(const std::string& path, sockaddr_un& addr) {
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw Error("serve: socket path too long (" +
                std::to_string(path.size()) + " bytes, max " +
                std::to_string(sizeof addr.sun_path - 1) + "): '" + path +
                "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

int make_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw Error(std::string("serve: socket() failed: ") +
                std::strerror(errno));
  }
  return fd;
}

}  // namespace

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr;
  fill_unix_address(path, addr);
  // Replace a stale socket file from a killed daemon; a live daemon would
  // have it bound, making the bind below fail with EADDRINUSE.
  ::unlink(path.c_str());
  const int fd = make_socket();
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close_fd(fd);
    throw Error("serve: cannot bind '" + path + "': " + std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    close_fd(fd);
    throw Error("serve: cannot listen on '" + path +
                "': " + std::strerror(err));
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr;
  fill_unix_address(path, addr);
  const int fd = make_socket();
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
         0) {
    if (errno == EINTR) continue;
    close_fd(fd);
    return -1;  // absent / refusing / mid-restart: the retriable case
  }
  return fd;
}

int accept_connection(int listen_fd) {
  while (true) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;
  }
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace sdcmd::serve
