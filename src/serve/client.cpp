#include "serve/client.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"

namespace sdcmd::serve {

ServeClient::ServeClient(ClientConfig config) : config_(std::move(config)) {
  SDCMD_REQUIRE(!config_.socket_path.empty(), "socket path is required");
  SDCMD_REQUIRE(config_.io_timeout_s > 0.0, "io timeout must be positive");
  SDCMD_REQUIRE(config_.max_retries >= 0, "retry budget must be >= 0");
  SDCMD_REQUIRE(config_.backoff_initial_s >= 0.0 &&
                    config_.backoff_factor >= 1.0,
                "backoff must be non-negative and non-shrinking");
}

ServeClient::~ServeClient() { disconnect(); }

void ServeClient::disconnect() {
  close_fd(fd_);
  fd_ = -1;
  reader_.reset();
}

bool ServeClient::ensure_connected() {
  if (fd_ >= 0) return true;
  fd_ = connect_unix(config_.socket_path);
  if (fd_ < 0) return false;
  reader_ = std::make_unique<LineReader>(fd_);
  return true;
}

WireMessage ServeClient::request(const WireMessage& message) {
  std::string line = message.serialize();
  line += '\n';
  double backoff = config_.backoff_initial_s;
  for (int attempt = 0;; ++attempt) {
    if (ensure_connected() && write_all(fd_, line, config_.io_timeout_s)) {
      std::string response;
      const LineReader::Result rc =
          reader_->next_line(response, config_.io_timeout_s);
      if (rc == LineReader::Result::Line) {
        return WireMessage::parse(response);
      }
    }
    // Daemon absent, mid-restart, or it cut us loose: rebuild the
    // connection from scratch and retry the whole request (at-least-once;
    // see the header contract).
    disconnect();
    if (attempt >= config_.max_retries) {
      throw Error("serve: request to '" + config_.socket_path +
                  "' failed after " + std::to_string(attempt + 1) +
                  " attempt(s)");
    }
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    backoff *= config_.backoff_factor;
  }
}

WireMessage ServeClient::request_op(const std::string& op,
                                    const std::string& id) {
  WireMessage msg;
  msg.set("op", op);
  if (!id.empty()) msg.set("id", id);
  return request(msg);
}

WireMessage ServeClient::snapshot(const std::string& id,
                                  std::vector<double>& xyz) {
  WireMessage msg;
  msg.set("op", "snapshot");
  msg.set("id", id);
  const WireMessage header = request(msg);
  xyz.clear();
  if (!header.get_bool("ok", false)) return header;
  const std::int64_t frame_bytes = header.get_int("frame_bytes", 0);
  if (frame_bytes <= 0 ||
      frame_bytes % static_cast<std::int64_t>(sizeof(double)) != 0) {
    disconnect();
    throw Error("serve: malformed snapshot frame size " +
                std::to_string(frame_bytes));
  }
  std::string frame;
  if (!reader_->take_exact(frame, static_cast<std::size_t>(frame_bytes),
                           config_.io_timeout_s)) {
    // The frame rides the same connection as the header; losing it
    // mid-read is a hard failure (retrying would desync the stream).
    disconnect();
    throw Error("serve: snapshot frame truncated");
  }
  xyz.resize(frame.size() / sizeof(double));
  std::memcpy(xyz.data(), frame.data(), frame.size());
  return header;
}

}  // namespace sdcmd::serve
