// Wire protocol for the session server: line-delimited flat JSON control
// messages plus raw binary position frames, over local (AF_UNIX) sockets.
//
// A control message is one JSON object per line whose values are scalars
// (string / integer / double / bool / null) — the same shape as the
// run_state.v1 sidecar, so the whole protocol stays greppable and the
// chaos tooling can speak it with python's json module:
//
//   {"op": "step", "id": "s0", "steps": 100}\n
//   {"ok": true, "id": "s0", "step": 400, "pending": 100}\n
//
// A snapshot response is a control line announcing "frame_bytes": N,
// immediately followed by N raw bytes (natoms × 3 little-endian doubles,
// xyz-interleaved) on the same stream.
//
// All socket I/O here is EINTR-safe and deadline-bounded: every read and
// write polls first and gives up after the configured timeout instead of
// blocking a serve loop on a stalled peer (see docs/serving.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sdcmd::serve {

/// Tagged scalar carried by a control message member.
class WireValue {
 public:
  WireValue() : type_(Type::Null) {}
  WireValue(bool b) : type_(Type::Bool), bool_(b) {}
  WireValue(double d) : type_(Type::Double), double_(d) {}
  WireValue(std::int64_t i) : type_(Type::Int), int_(i) {}
  WireValue(int i) : WireValue(static_cast<std::int64_t>(i)) {}
  WireValue(std::string s) : type_(Type::String), string_(std::move(s)) {}
  WireValue(const char* s) : WireValue(std::string(s)) {}

  bool is_null() const { return type_ == Type::Null; }
  bool is_string() const { return type_ == Type::String; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const {
    return type_ == Type::Int || type_ == Type::Double;
  }

  /// Typed accessors; numeric ones coerce between Int and Double. Throw
  /// ParseError on a type mismatch.
  const std::string& as_string() const;
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;

  /// JSON text of this value appended to `out`.
  void append_json(std::string& out) const;

 private:
  enum class Type { Null, Bool, Int, Double, String };
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

/// One flat-JSON control message (request or response). Member order is
/// preserved on serialization so responses stay stable to diff.
class WireMessage {
 public:
  WireMessage() = default;

  /// Set (or replace) a member.
  void set(const std::string& key, WireValue value);

  bool has(const std::string& key) const { return find(key) != nullptr; }
  const WireValue* find(const std::string& key) const;

  /// Accessors with defaults (missing member => the default) and required
  /// accessors (missing member => ParseError naming the key).
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string require_string(const std::string& key) const;
  std::int64_t require_int(const std::string& key) const;

  /// One-line JSON document (no trailing newline).
  std::string serialize() const;

  /// Parse one flat JSON object. Throws ParseError with a byte offset on
  /// malformed input (nested containers are malformed by design).
  static WireMessage parse(const std::string& line);

  const std::vector<std::pair<std::string, WireValue>>& members() const {
    return members_;
  }

 private:
  std::vector<std::pair<std::string, WireValue>> members_;
};

/// Canonical response helpers.
WireMessage make_ok();
WireMessage make_error(const std::string& code, const std::string& message);

// ---------------------------------------------------------------------------
// Deadline-bounded, EINTR-safe socket I/O (POSIX fds).

/// Poll `fd` for `events` (POLLIN/POLLOUT) up to `timeout_s` seconds.
/// Retries EINTR against the remaining budget. Returns true when the fd is
/// ready, false on timeout. Throws Error on poll failure or hangup+error.
bool wait_fd(int fd, short events, double timeout_s);

/// Write the whole buffer, polling before every write and retrying
/// EINTR/EAGAIN against one shared deadline. Returns false when the peer
/// vanished (EPIPE/ECONNRESET) or the deadline expired mid-write.
bool write_all(int fd, std::string_view data, double timeout_s);

/// Read exactly `len` bytes into `out` under one deadline (binary frames).
/// Returns false on EOF, peer reset, or timeout.
bool read_exact(int fd, char* out, std::size_t len, double timeout_s);

/// Incremental line framing over a socket: buffers partial reads across
/// calls so one read syscall can yield several protocol lines.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  enum class Result { Line, Timeout, Closed };

  /// Next '\n'-terminated line (terminator stripped). Drains buffered bytes
  /// before touching the socket; reads under `timeout_s` otherwise.
  Result next_line(std::string& line, double timeout_s);

  /// True when a whole buffered line is ready without any socket read.
  bool line_buffered() const;

  /// One recv() appended to the buffer — for poll-driven loops that must
  /// never block on a half-sent line (the caller polled POLLIN already).
  /// Returns the byte count, 0 on EOF/peer reset, -1 on EINTR/EAGAIN
  /// (retriable: just poll again next round).
  int fill_once();

  /// Move exactly `len` already-buffered + newly-read bytes into `out`
  /// (binary frame following a header line). False on EOF/timeout.
  bool take_exact(std::string& out, std::size_t len, double timeout_s);

 private:
  int fd_;
  std::string buffer_;
};

/// Bind + listen on an AF_UNIX socket, replacing any stale socket file at
/// `path`. Throws Error (with the path) when the path is too long for
/// sockaddr_un or any syscall fails. Returns the listening fd (CLOEXEC).
int listen_unix(const std::string& path, int backlog = 16);

/// Connect to an AF_UNIX socket. Returns the connected fd (CLOEXEC), or -1
/// when the server is absent/not accepting (the retriable case). Throws
/// Error on a non-retriable failure (path too long, socket() failure).
int connect_unix(const std::string& path);

/// EINTR-safe accept; returns -1 when no connection is pending (caller
/// polls first) or on transient failure.
int accept_connection(int listen_fd);

/// Close ignoring EINTR (idempotent; -1 is a no-op).
void close_fd(int fd);

}  // namespace sdcmd::serve
