// SessionServer: the multi-session simulation daemon core.
//
// One I/O thread owns the AF_UNIX listener and every client connection
// (poll-driven, line-at-a-time, never blocking on a half-sent request); a
// bounded worker pool runs step quanta, each worker sizing its own OpenMP
// team to the session's `threads` so N small sessions batch onto shared
// teams instead of oversubscribing the machine.
//
// Robustness posture (the point of this layer — see docs/serving.md):
//  * admission control: a hard session cap with explicit `overloaded`
//    rejection — the server never queues creates unboundedly;
//  * per-session EWMA watchdogs quarantine (checkpoint, demote via the
//    governor, suspend) a pathological session instead of starving its
//    neighbors;
//  * per-connection read/write deadlines: a stalled client is
//    disconnected, never waited on;
//  * graceful drain on SIGTERM: every live session is checkpointed and
//    suspended before the daemon exits clean;
//  * full-fleet auto-resume: on restart the sessions root is scanned and
//    every session.json directory is resurrected from its checkpoint ring
//    with a 1e-8 energy-continuity proof (scripts/chaos_serve.py SIGKILLs
//    the daemon mid-traffic to hold this to account);
//  * fault points serve.accept_fail / serve.slow_client /
//    serve.session_oom (+ run.disk_full underneath) keep every recovery
//    path deterministically testable.
//
// Metrics land in the `serve.*` family of the borrowed registry; all
// registry access is serialized on an internal mutex since quanta finish
// on worker threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"

namespace sdcmd::serve {

struct ServerConfig {
  /// AF_UNIX socket path (sockaddr_un limits it to ~107 bytes).
  std::string socket_path;
  /// Sessions root: each session lives in <root>/<id>/ with its own
  /// checkpoint ring and session.json descriptor.
  std::string root;
  /// Admission control: hard cap on concurrent sessions. Creates beyond it
  /// are rejected with code "overloaded", never queued.
  int max_sessions = 8;
  /// Step-quantum worker pool size.
  int workers = 2;
  /// Per-connection read/write deadline in seconds: a client that stalls
  /// mid-request or stops draining responses is disconnected.
  double io_timeout_s = 5.0;
  /// Per-session policy (quantum size, quarantine watchdog).
  SessionPolicy session;
  /// serve.* metrics sink (borrowed, may be null). Internally serialized.
  obs::MetricsRegistry* registry = nullptr;
};

class SessionServer {
 public:
  enum class Outcome { Stopped, Drained };

  explicit SessionServer(ServerConfig config);
  ~SessionServer();
  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Bind the socket, auto-resume every session found under the root,
  /// then spawn the worker pool and the I/O thread. Throws Error when the
  /// socket cannot be bound. Returns once the server accepts connections.
  void start();

  /// Block until the serve loop exits (drain or stop) and report why.
  Outcome wait();

  /// Ask the serve loop to exit without draining — the in-process stand-in
  /// for SIGKILL in tests: sessions keep only their on-disk state.
  void stop();

  /// Ask the serve loop to drain: checkpoint + suspend every session,
  /// then exit clean. What the SIGTERM handler calls (async-signal-safe).
  /// Signals are process-wide, so every live server instance latches the
  /// mailbox and drains; a client `drain` op uses drain() instead and
  /// affects only the server it addressed.
  static void request_drain() { drain_signal_ = 1; }

  /// Drain this server instance only (the `drain` op lands here).
  void drain() { drain_requested_.store(true); }

  /// Sessions resurrected from the root during start().
  int resumed_sessions() const { return resumed_; }
  /// Session directories that failed to resume (logged, skipped).
  int failed_resumes() const { return resume_failures_; }

  std::size_t session_count() const;

  const ServerConfig& config() const { return config_; }

 private:
  struct Connection {
    explicit Connection(int conn_fd) : fd(conn_fd), reader(conn_fd) {}
    int fd;
    LineReader reader;
    double last_activity = 0.0;
    bool closing = false;
    /// Binary snapshot frame queued behind the next response line.
    std::string pending_frame;
    /// Bytes owed to the peer (response lines + binary frames), flushed
    /// non-blocking from the poll loop — the I/O thread never blocks in
    /// send(). While non-empty the connection reads no new requests (the
    /// kernel socket buffer back-pressures the client).
    std::string outbox;
    /// Wall time when the outbox first hit a full kernel buffer; 0 while
    /// draining. Past `io_timeout_s` the peer is cut loose.
    double write_stalled_since = 0.0;
  };

  void serve_loop();
  void worker_loop();
  void schedule(const std::shared_ptr<Session>& session);
  void drain_now();
  void resume_fleet();
  std::shared_ptr<Session> find_session(const std::string& id) const;

  /// Read whatever one poll round offers from `conn`, answering every
  /// complete line. Returns false when the connection should be dropped.
  bool service_connection(Connection& conn);
  bool send_response(Connection& conn, const WireMessage& response);
  /// Non-blocking drain of conn.outbox (MSG_DONTWAIT). Returns false when
  /// the peer is gone; a full kernel buffer just stamps
  /// `write_stalled_since` and returns true.
  bool flush_outbox(Connection& conn);
  WireMessage handle_request(const WireMessage& request, Connection& conn);

  WireMessage op_create(const WireMessage& request);
  WireMessage op_step(const WireMessage& request);
  WireMessage op_snapshot(const WireMessage& request, Connection& conn);
  WireMessage op_status(const WireMessage& request);
  WireMessage op_list();
  WireMessage op_metrics();

  void note_quantum(const QuantumResult& result);
  void refresh_session_gauges();
  void metric_add(std::size_t handle, double delta = 1.0);
  void metric_set(std::size_t handle, double value);

  /// Async-signal-safe SIGTERM mailbox. Process-wide by nature: each
  /// serve loop latches it into its own drain_requested_ every poll
  /// round, so all live instances drain on a signal. Cleared in start()
  /// so a fresh server never inherits a consumed SIGTERM.
  static volatile std::sig_atomic_t drain_signal_;

  ServerConfig config_;
  int listen_fd_ = -1;
  std::thread io_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> running_{false};
  Outcome outcome_ = Outcome::Stopped;

  mutable std::mutex sessions_mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  long next_session_number_ = 0;
  int resumed_ = 0;
  int resume_failures_ = 0;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Session>> ready_;
  bool workers_running_ = false;

  std::vector<std::unique_ptr<Connection>> connections_;

  mutable std::mutex metrics_mutex_;
  struct Handles {
    std::size_t connections = 0;
    std::size_t disconnects_timeout = 0;
    std::size_t accept_faults = 0;
    std::size_t ops = 0;
    std::size_t op_errors = 0;
    std::size_t rejected_overload = 0;
    std::size_t sessions_created = 0;
    std::size_t sessions_resumed = 0;
    std::size_t resume_failures = 0;
    std::size_t quanta = 0;
    std::size_t steps = 0;
    std::size_t watchdog_trips = 0;
    std::size_t quarantines = 0;
    std::size_t suspends = 0;
    std::size_t snapshots = 0;
    std::size_t sessions_active = 0;
    std::size_t sessions_suspended = 0;
    std::size_t sessions_quarantined = 0;
    std::size_t drain_seconds = 0;
  } handles_;
};

}  // namespace sdcmd::serve
