#include "core/sdc_schedule.hpp"

#include <sstream>

#include "common/error.hpp"

namespace sdcmd {

SdcSchedule::SdcSchedule(const Box& box, double interaction_range,
                         SdcConfig config)
    : config_(config) {
  SDCMD_REQUIRE(config.dimensionality >= 1 && config.dimensionality <= 3,
                "SDC dimensionality must be 1, 2 or 3");
  if (config.max_subdomains == 0) {
    decomposition_ = std::make_unique<SpatialDecomposition>(
        SpatialDecomposition::finest(box, config.dimensionality,
                                     interaction_range));
  } else {
    decomposition_ = std::make_unique<SpatialDecomposition>(
        SpatialDecomposition::with_target(box, config.dimensionality,
                                          interaction_range,
                                          config.max_subdomains));
  }
  coloring_ = std::make_unique<Coloring>(*decomposition_);
  partition_ = std::make_unique<Partition>(*decomposition_, *coloring_);
}

bool SdcSchedule::feasible(const Box& box, double interaction_range,
                           const SdcConfig& config) {
  return SpatialDecomposition::feasible(box, config.dimensionality,
                                        interaction_range);
}

void SdcSchedule::rebuild(std::span<const Vec3> positions) {
  partition_->build(positions);
  built_ = true;
}

std::string SdcSchedule::describe() const {
  std::ostringstream os;
  os << config_.dimensionality << "-D SDC, " << color_count() << " colors x "
     << subdomains_per_color() << " subdomains ("
     << decomposition_->describe() << ")";
  return os.str();
}

}  // namespace sdcmd
