#include "core/lock_pool.hpp"

#include "common/error.hpp"

namespace sdcmd {

LockPool::LockPool(std::size_t stripes)
    : stripes_(stripes),
      locks_(std::make_unique<omp_lock_t[]>(stripes)) {
  SDCMD_REQUIRE(stripes > 0, "lock pool needs at least one stripe");
  for (std::size_t i = 0; i < stripes_; ++i) {
    omp_init_lock(&locks_[i]);
  }
}

LockPool::~LockPool() {
  for (std::size_t i = 0; i < stripes_; ++i) {
    omp_destroy_lock(&locks_[i]);
  }
}

}  // namespace sdcmd
