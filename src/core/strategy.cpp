#include "core/strategy.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace sdcmd {

std::string to_string(ReductionStrategy s) {
  switch (s) {
    case ReductionStrategy::Serial: return "serial";
    case ReductionStrategy::Critical: return "critical";
    case ReductionStrategy::Atomic: return "atomic";
    case ReductionStrategy::LockStriped: return "locks";
    case ReductionStrategy::ArrayPrivatization: return "sap";
    case ReductionStrategy::RedundantComputation: return "rc";
    case ReductionStrategy::Sdc: return "sdc";
    case ReductionStrategy::CellTask: return "celltask";
  }
  return "?";
}

ReductionStrategy parse_strategy(const std::string& name) {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "serial") return ReductionStrategy::Serial;
  if (lower == "critical" || lower == "cs") return ReductionStrategy::Critical;
  if (lower == "atomic") return ReductionStrategy::Atomic;
  if (lower == "locks" || lower == "lock-striped" ||
      lower == "striped-locks") {
    return ReductionStrategy::LockStriped;
  }
  if (lower == "sap" || lower == "privatization" ||
      lower == "array-privatization") {
    return ReductionStrategy::ArrayPrivatization;
  }
  if (lower == "rc" || lower == "redundant" ||
      lower == "redundant-computation") {
    return ReductionStrategy::RedundantComputation;
  }
  if (lower == "sdc" || lower == "coloring") return ReductionStrategy::Sdc;
  if (lower == "celltask" || lower == "cell-task" || lower == "task") {
    return ReductionStrategy::CellTask;
  }
  throw PreconditionError("unknown reduction strategy '" + name + "'");
}

NeighborMode required_mode(ReductionStrategy s) {
  return s == ReductionStrategy::RedundantComputation ? NeighborMode::Full
                                                      : NeighborMode::Half;
}

bool is_parallel(ReductionStrategy s) {
  return s != ReductionStrategy::Serial;
}

}  // namespace sdcmd
