#include "core/cell_task_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace sdcmd {

namespace {

std::array<int, 3> block_dims(const Box& box, double interaction_range) {
  std::array<int, 3> dims;
  for (int d = 0; d < 3; ++d) {
    const int n =
        static_cast<int>(std::floor(box.length(d) / interaction_range));
    dims[static_cast<std::size_t>(d)] = std::max(1, n);
  }
  return dims;
}

}  // namespace

CellTaskSchedule::CellTaskSchedule(const Box& box, double interaction_range)
    : lo_(box.lo()) {
  SDCMD_REQUIRE(interaction_range > 0.0,
                "interaction range must be positive");
  dims_ = block_dims(box, interaction_range);
  block_count_ = static_cast<std::size_t>(dims_[0]) *
                 static_cast<std::size_t>(dims_[1]) *
                 static_cast<std::size_t>(dims_[2]);
  if (block_count_ < 2) {
    throw InfeasibleError(
        "cell-task infeasible: box " + std::to_string(box.length(0)) + " x " +
        std::to_string(box.length(1)) + " x " + std::to_string(box.length(2)) +
        " yields a single block at interaction range " +
        std::to_string(interaction_range) +
        " (every scatter would serialize behind one lock)");
  }
  for (int d = 0; d < 3; ++d) {
    inv_width_[d] =
        static_cast<double>(dims_[static_cast<std::size_t>(d)]) /
        box.length(d);
  }
  bstart_.assign(block_count_ + 1, 0);
}

bool CellTaskSchedule::feasible(const Box& box, double interaction_range) {
  if (interaction_range <= 0.0) return false;
  const std::array<int, 3> dims = block_dims(box, interaction_range);
  return static_cast<std::size_t>(dims[0]) * static_cast<std::size_t>(dims[1]) *
             static_cast<std::size_t>(dims[2]) >=
         2;
}

std::uint32_t CellTaskSchedule::block_index(const Vec3& r) const {
  std::array<int, 3> c;
  for (int d = 0; d < 3; ++d) {
    const std::size_t sd = static_cast<std::size_t>(d);
    int v = static_cast<int>((r[d] - lo_[d]) * inv_width_[d]);
    // Wrapped positions sit in [lo, hi), but float rounding at the upper
    // face (and transiently unwrapped integrator positions) can land one
    // cell outside; clamping only moves such atoms to a boundary block.
    c[sd] = std::clamp(v, 0, dims_[sd] - 1);
  }
  return static_cast<std::uint32_t>(
      (static_cast<std::size_t>(c[2]) * static_cast<std::size_t>(dims_[1]) +
       static_cast<std::size_t>(c[1])) *
          static_cast<std::size_t>(dims_[0]) +
      static_cast<std::size_t>(c[0]));
}

void CellTaskSchedule::rebuild(std::span<const Vec3> positions) {
  const std::size_t n = positions.size();
  block_of_atom_.resize(n);
  bindex_.resize(n);
  std::fill(bstart_.begin(), bstart_.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t b = block_index(positions[i]);
    block_of_atom_[i] = b;
    ++bstart_[b + 1];
  }
  for (std::size_t b = 0; b < block_count_; ++b) bstart_[b + 1] += bstart_[b];
  {
    std::vector<std::size_t> fill(bstart_.begin(), bstart_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      bindex_[fill[block_of_atom_[i]]++] = static_cast<std::uint32_t>(i);
    }
  }
  // LPT order: largest blocks first, so the tail of the schedule is made of
  // small tasks that pack the stragglers' gaps. Ties break on block index
  // for determinism.
  order_.resize(block_count_);
  for (std::size_t b = 0; b < block_count_; ++b) {
    order_[b] = static_cast<std::uint32_t>(b);
  }
  std::sort(order_.begin(), order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const std::size_t na = bstart_[a + 1] - bstart_[a];
              const std::size_t nb = bstart_[b + 1] - bstart_[b];
              if (na != nb) return na > nb;
              return a < b;
            });
  built_ = true;
}

std::string CellTaskSchedule::describe() const {
  std::ostringstream os;
  os << "cell-task, " << dims_[0] << " x " << dims_[1] << " x " << dims_[2]
     << " = " << block_count_ << " blocks";
  return os.str();
}

void CellTaskRuntime::reset(int team, std::size_t blocks) {
  team_ = team;
  blocks_ = blocks;
  const std::size_t t = static_cast<std::size_t>(team);
  while (threads_.size() < t) {
    threads_.push_back(std::make_unique<ThreadState>());
  }
  for (std::size_t i = 0; i < t; ++i) {
    ThreadState& s = *threads_[i];
    s.cursor[0].store(0, std::memory_order_relaxed);
    s.cursor[1].store(0, std::memory_order_relaxed);
    s.tasks = 0;
    s.steals = 0;
    s.busy_seconds = 0.0;
    s.rho_stage.clear();
    s.force_stage.clear();
  }
}

std::size_t CellTaskRuntime::max_queue_depth() const {
  if (team_ <= 0) return 0;
  // Thread 0's strided slice {0, T, 2T, ...} is the longest (ceil division).
  return (blocks_ + static_cast<std::size_t>(team_) - 1) /
         static_cast<std::size_t>(team_);
}

std::size_t CellTaskRuntime::bytes() const {
  std::size_t total = threads_.size() * sizeof(ThreadState);
  for (const auto& s : threads_) {
    total += s->rho_stage.capacity() * sizeof(ScalarEntry) +
             s->force_stage.capacity() * sizeof(VecEntry);
  }
  return total;
}

}  // namespace sdcmd
