#include "core/pair_force.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/lock_pool.hpp"

namespace sdcmd {

namespace {

struct Args {
  const Box& box;
  std::span<const Vec3> x;
  const NeighborList& list;
  const PairPotential& pot;
  double cutoff2;
};

/// Shared per-pair body; returns false beyond the cutoff.
inline bool pair_terms(const Args& a, const Vec3& xi, std::uint32_t j,
                       Vec3& fv, double& v, double& w) {
  const Vec3 dr = a.box.minimum_image(xi, a.x[j]);
  const double r2 = norm2(dr);
  if (r2 >= a.cutoff2) return false;
  const double r = std::sqrt(r2);
  double dvdr;
  a.pot.evaluate(r, v, dvdr);
  const double fpair = -dvdr / r;
  fv = fpair * dr;
  w = fpair * r2;
  return true;
}

void run_serial(const Args& a, std::span<Vec3> force, PairForceResult& out) {
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    const Vec3 xi = a.x[i];
    Vec3 f_i{};
    for (std::uint32_t j : a.list.neighbors(i)) {
      Vec3 fv;
      double v, w;
      if (!pair_terms(a, xi, j, fv, v, w)) continue;
      f_i += fv;
      force[j] -= fv;
      out.energy += v;
      out.virial += w;
    }
    force[i] += f_i;
  }
}

void run_critical(const Args& a, std::span<Vec3> force,
                  PairForceResult& out) {
  double energy = 0.0, virial = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : energy, virial)
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    const Vec3 xi = a.x[i];
    for (std::uint32_t j : a.list.neighbors(i)) {
      Vec3 fv;
      double v, w;
      if (!pair_terms(a, xi, j, fv, v, w)) continue;
#pragma omp critical(sdcmd_pair_force)
      {
        force[i] += fv;
        force[j] -= fv;
      }
      energy += v;
      virial += w;
    }
  }
  out.energy = energy;
  out.virial = virial;
}

void run_atomic(const Args& a, std::span<Vec3> force, PairForceResult& out) {
  double energy = 0.0, virial = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : energy, virial)
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    const Vec3 xi = a.x[i];
    Vec3 f_i{};
    for (std::uint32_t j : a.list.neighbors(i)) {
      Vec3 fv;
      double v, w;
      if (!pair_terms(a, xi, j, fv, v, w)) continue;
      f_i += fv;
#pragma omp atomic
      force[j].x -= fv.x;
#pragma omp atomic
      force[j].y -= fv.y;
#pragma omp atomic
      force[j].z -= fv.z;
      energy += v;
      virial += w;
    }
#pragma omp atomic
    force[i].x += f_i.x;
#pragma omp atomic
    force[i].y += f_i.y;
#pragma omp atomic
    force[i].z += f_i.z;
  }
  out.energy = energy;
  out.virial = virial;
}

void run_locks(const Args& a, LockPool& locks, std::span<Vec3> force,
               PairForceResult& out) {
  double energy = 0.0, virial = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : energy, virial)
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    const Vec3 xi = a.x[i];
    Vec3 f_i{};
    for (std::uint32_t j : a.list.neighbors(i)) {
      Vec3 fv;
      double v, w;
      if (!pair_terms(a, xi, j, fv, v, w)) continue;
      f_i += fv;
      {
        LockPool::Guard guard(locks, j);
        force[j] -= fv;
      }
      energy += v;
      virial += w;
    }
    LockPool::Guard guard(locks, i);
    force[i] += f_i;
  }
  out.energy = energy;
  out.virial = virial;
}

void run_sap(const Args& a, std::span<Vec3> force, PairForceResult& out,
             std::vector<std::vector<Vec3>>& priv) {
  const std::size_t n = a.x.size();
  const int threads = omp_get_max_threads();
  priv.resize(static_cast<std::size_t>(threads));
  for (auto& b : priv) b.assign(n, Vec3{});

  double energy = 0.0, virial = 0.0;
#pragma omp parallel reduction(+ : energy, virial)
  {
    auto& mine = priv[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3 xi = a.x[i];
      for (std::uint32_t j : a.list.neighbors(i)) {
        Vec3 fv;
        double v, w;
        if (!pair_terms(a, xi, j, fv, v, w)) continue;
        mine[i] += fv;
        mine[j] -= fv;
        energy += v;
        virial += w;
      }
    }
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      Vec3 sum{};
      for (int t = 0; t < threads; ++t) {
        sum += priv[static_cast<std::size_t>(t)][i];
      }
      force[i] += sum;
    }
  }
  out.energy = energy;
  out.virial = virial;
}

void run_rc(const Args& a, std::span<Vec3> force, PairForceResult& out) {
  SDCMD_REQUIRE(a.list.mode() == NeighborMode::Full,
                "RC kernels need a full neighbor list");
  double energy = 0.0, virial = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : energy, virial)
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    const Vec3 xi = a.x[i];
    Vec3 f_i{};
    for (std::uint32_t j : a.list.neighbors(i)) {
      Vec3 fv;
      double v, w;
      if (!pair_terms(a, xi, j, fv, v, w)) continue;
      f_i += fv;
      energy += 0.5 * v;
      virial += 0.5 * w;
    }
    force[i] = f_i;
  }
  out.energy = energy;
  out.virial = virial;
}

void run_sdc(const Args& a, const Partition& part, std::span<Vec3> force,
             PairForceResult& out, bool dynamic_schedule) {
  SDCMD_REQUIRE(part.atom_count() == a.x.size(),
                "partition is stale: rebuild the SDC schedule");
  const int colors = part.color_count();
  double energy = 0.0, virial = 0.0;

  auto slot_body = [&](std::size_t slot, double& e, double& w_acc) {
    for (std::uint32_t i : part.atoms_in_slot(slot)) {
      const Vec3 xi = a.x[i];
      Vec3 f_i{};
      for (std::uint32_t j : a.list.neighbors(i)) {
        Vec3 fv;
        double v, w;
        if (!pair_terms(a, xi, j, fv, v, w)) continue;
        f_i += fv;
        force[j] -= fv;
        e += v;
        w_acc += w;
      }
      force[i] += f_i;
    }
  };

#pragma omp parallel reduction(+ : energy, virial)
  {
    for (int c = 0; c < colors; ++c) {
      const std::size_t begin = part.color_begin(c);
      const std::size_t end = part.color_end(c);
      if (dynamic_schedule) {
#pragma omp for schedule(dynamic)
        for (std::size_t slot = begin; slot < end; ++slot) {
          slot_body(slot, energy, virial);
        }
      } else {
#pragma omp for schedule(static)
        for (std::size_t slot = begin; slot < end; ++slot) {
          slot_body(slot, energy, virial);
        }
      }
    }
  }
  out.energy = energy;
  out.virial = virial;
}

}  // namespace

PairForceComputer::PairForceComputer(const PairPotential& potential,
                                     PairForceConfig config)
    : potential_(potential),
      config_(config),
      t_force_(timers_.index("force")) {}

PairForceComputer::~PairForceComputer() = default;

void PairForceComputer::attach_schedule(const Box& box,
                                        double interaction_range) {
  if (config_.strategy != ReductionStrategy::Sdc) return;
  schedule_ =
      std::make_unique<SdcSchedule>(box, interaction_range, config_.sdc);
}

void PairForceComputer::set_strategy(ReductionStrategy strategy) {
  if (strategy == config_.strategy) return;
  SDCMD_REQUIRE(required_mode(strategy) == required_mode(config_.strategy),
                "cannot hot-swap " + to_string(config_.strategy) + " -> " +
                    to_string(strategy) +
                    ": the swap would change the neighbor-list mode");
  config_.strategy = strategy;
  if (strategy != ReductionStrategy::Sdc) schedule_.reset();
}

void PairForceComputer::on_neighbor_rebuild(
    std::span<const Vec3> positions) {
  if (config_.strategy != ReductionStrategy::Sdc) return;
  SDCMD_REQUIRE(schedule_ != nullptr,
                "attach_schedule must run before on_neighbor_rebuild");
  schedule_->rebuild(positions);
}

PairForceResult PairForceComputer::compute(const Box& box,
                                           std::span<const Vec3> positions,
                                           const NeighborList& list,
                                           std::span<Vec3> force) {
  SDCMD_REQUIRE(force.size() == positions.size(),
                "force array must match the atom count");
  SDCMD_REQUIRE(list.atom_count() == positions.size(),
                "neighbor list is stale");
  SDCMD_REQUIRE(list.mode() == required_mode(config_.strategy),
                "neighbor list mode does not match the strategy");
  SDCMD_REQUIRE(list.cutoff() >= potential_.cutoff(),
                "neighbor list cutoff shorter than the potential range");

  const double cutoff = potential_.cutoff();
  Args args{box, positions, list, potential_, cutoff * cutoff};
  std::fill(force.begin(), force.end(), Vec3{});

  PairForceResult result;
  ScopedTimer timer(timers_.slot(t_force_));
  switch (config_.strategy) {
    case ReductionStrategy::Serial:
      run_serial(args, force, result);
      break;
    case ReductionStrategy::Critical:
      run_critical(args, force, result);
      break;
    case ReductionStrategy::Atomic:
      run_atomic(args, force, result);
      break;
    case ReductionStrategy::LockStriped:
      if (!locks_) locks_ = std::make_unique<LockPool>();
      run_locks(args, *locks_, force, result);
      break;
    case ReductionStrategy::ArrayPrivatization:
      run_sap(args, force, result, sap_force_);
      break;
    case ReductionStrategy::RedundantComputation:
      run_rc(args, force, result);
      break;
    case ReductionStrategy::Sdc:
      SDCMD_REQUIRE(schedule_ != nullptr && schedule_->built(),
                    "SDC schedule not built");
      run_sdc(args, schedule_->partition(), force, result,
              config_.dynamic_schedule);
      break;
    case ReductionStrategy::CellTask:
      // The pair backend implements no cell-task kernels; drivers must
      // clear GovernorConfig::enable_celltask so the ladder skips this
      // rung (Simulation::set_governor does).
      throw PreconditionError(
          "pair backend does not implement the celltask strategy");
  }
  return result;
}

}  // namespace sdcmd
