// Empirical race-freedom validation of an SDC schedule.
//
// The SDC safety argument is geometric: same-color subdomains are far
// enough apart that their scatter-write footprints cannot overlap. This
// checker does not trust the geometry - it *enumerates* each subdomain's
// actual write footprint (its atoms plus every neighbor-list target they
// scatter to) and verifies that footprints of same-color subdomains are
// pairwise disjoint. Useful as a debugging oracle when experimenting with
// custom decompositions, and as the direct test of the paper's Section
// II.B claim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sdc_schedule.hpp"
#include "neighbor/neighbor_list.hpp"

namespace sdcmd {

struct RaceCheckReport {
  bool race_free = true;
  /// First offending triple (color, atom, the two slots that both write
  /// it); meaningful only when race_free is false.
  int color = -1;
  std::uint32_t atom = 0;
  std::size_t slot_a = 0;
  std::size_t slot_b = 0;

  std::string describe() const;
};

/// Verify that, for every color, no two subdomains of that color write the
/// same atom when the kernels sweep `list`. O(total footprint size).
RaceCheckReport check_schedule_race_free(const SdcSchedule& schedule,
                                         const NeighborList& list);

}  // namespace sdcmd
