// SdcSchedule bundles decomposition + coloring + partition into the object
// the SDC kernels sweep (the paper's Section II.B steps 1-2, performed at
// every neighbor-list rebuild).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "domain/coloring.hpp"
#include "domain/decomposition.hpp"
#include "domain/partition.hpp"

namespace sdcmd {

struct SdcConfig {
  int dimensionality = 2;      ///< 1, 2 or 3 (the paper's three variants)
  /// 0 = finest legal decomposition; otherwise an upper bound on the total
  /// subdomain count (granularity ablations).
  std::size_t max_subdomains = 0;
};

class SdcSchedule {
 public:
  /// Builds decomposition and coloring for `box`; `interaction_range` must
  /// cover cutoff + neighbor skin. Throws InfeasibleError when the box
  /// cannot be decomposed at the requested dimensionality (the paper's
  /// Table 1 blanks).
  SdcSchedule(const Box& box, double interaction_range, SdcConfig config);

  /// Non-throwing probe: would the constructor succeed for this box/range/
  /// config? Coarsening (`max_subdomains`) only grows subdomain edges, so
  /// feasibility is exactly the finest decomposition's feasibility.
  static bool feasible(const Box& box, double interaction_range,
                       const SdcConfig& config);

  /// Re-binned atom partition; call whenever the neighbor list is rebuilt.
  void rebuild(std::span<const Vec3> positions);

  const SpatialDecomposition& decomposition() const { return *decomposition_; }
  const Coloring& coloring() const { return *coloring_; }
  const Partition& partition() const { return *partition_; }

  int color_count() const { return coloring_->color_count(); }
  std::size_t subdomains_per_color() const { return coloring_->group_size(); }
  bool built() const { return built_; }

  /// Human-readable summary for bench headers:
  /// "2-D SDC, 4 colors x 340 subdomains".
  std::string describe() const;

 private:
  SdcConfig config_;
  std::unique_ptr<SpatialDecomposition> decomposition_;
  std::unique_ptr<Coloring> coloring_;
  std::unique_ptr<Partition> partition_;
  bool built_ = false;
};

}  // namespace sdcmd
