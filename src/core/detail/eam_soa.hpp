// Structure-of-arrays fast path for the EAM hot loops (ISSUE 8).
//
// The scalar kernels walk CSR neighbor lists with Vec3/minimum-image
// arithmetic and early-exit cutoff branches - shapes the compiler cannot
// turn into packed AVX2/AVX-512 code. This header provides the SIMD
// formulation:
//
//  * positions live in separate x/y/z arrays (the SoA mirror owned by
//    EamForceComputer, refreshed inside the fused region every step);
//  * each atom's neighbors come as a padded tile (NeighborList::pad_width):
//    a block whose length is a multiple of the vector width, tail slots
//    holding the sentinel index atom_count(). Inner loops run the whole
//    block branch-free; sentinel/out-of-range lanes are disarmed by
//    *selects* (masked blends), never by control flow;
//  * minimum image is branchless: dx -= L * nearbyint(dx * (1/L)) with
//    L = 0 on non-periodic dims, so every lane does the same arithmetic;
//  * splines evaluate through the interval-indexed PackedSplineView: per
//    lane one index computation plus a contiguous 4-coefficient load
//    (gathered across lanes), Horner form for FMA;
//  * per-pair values that must scatter (rho[j], force[j]) are staged in
//    small lane buffers by the SIMD loop and flushed by a scalar loop that
//    applies the calling strategy's protection (plain/atomic/lock/critical/
//    private replica) - the expensive math vectorizes, the 1-3 adds per
//    pair stay scalar.
//
// The per-pair cache of the scalar path is subsumed and extended: the
// density tile helper records dx/dy/dz/r/phi' at the pair's PADDED slot
// *plus* 1/r and the pair spline's (v, dv/dr) - r is already in a vector
// register there, so the second spline costs one more coefficient gather
// while the replay loop drops to pure contiguous loads: no minimum image,
// no sqrt, no cutoff test, no spline gathers and no divide at all. That
// matters because on short half-list tiles the 4-coefficient cross-lane
// gathers and the vdivpd are most of the vector loop; with them hoisted
// into phase 1 the replay is the lean "haccmk-shaped" loop this whole
// layout exists for.
//
// Numerical contract: lane arithmetic follows the scalar kernels' Horner
// forms and image choice; the one deviation is fpair = (...) * (1/r)
// instead of (...) / r, a <=2 ulp difference. SoA-on vs SoA-off therefore
// agrees to a few ulps (reduction order + reciprocal rounding), far
// inside the 1e-12 the equivalence tests and governor shadow checks pin.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "potential/cubic_spline.hpp"

namespace sdcmd::detail {

/// Vector width the padded tiles are rounded to: 8 doubles fills one
/// AVX-512 register and two AVX2 registers, so one constant serves both.
inline constexpr int kSoaPadWidth = 8;

/// Lane-buffer block size (stack footprint: a few KiB per thread). Tiles
/// longer than this are processed in chunks; tile lengths are multiples of
/// kSoaPadWidth, and kSoaChunk is too, so chunks never straddle a pad
/// group and every SIMD loop trip count is a multiple of the width.
inline constexpr std::size_t kSoaChunk = 128;

/// Borrowed pointers for one compute() call's SoA fast path. Null x means
/// the fast path is off and the kernels take their scalar loops.
struct SoaView {
  const double* x = nullptr;  ///< n+1 slots; slot n backs the sentinel
  const double* y = nullptr;
  const double* z = nullptr;
  const std::size_t* tile_index = nullptr;   ///< n+1 padded-block offsets
  const std::uint32_t* tiles = nullptr;      ///< padded neighbor ids
  const std::uint32_t* len = nullptr;        ///< real sublist lengths, so
                                             ///< scalar drains skip pads
  std::uint32_t sent = 0;                    ///< sentinel id (= atom count)
  // Branchless minimum image: edge length and its reciprocal per periodic
  // dimension, both zero on free dimensions (nearbyint(dx * 0) == 0).
  double lx = 0.0, ly = 0.0, lz = 0.0;
  double ilx = 0.0, ily = 0.0, ilz = 0.0;
  PackedSplineView density;
  PackedSplineView pair;
  PackedSplineView embed;
  // SoA per-pair cache indexed by padded tile slot (density writes, force
  // replays). r < 0 marks sentinel and cutoff-rejected lanes; cir/cv/cdvdr
  // are exactly 0.0 on those lanes so the replay needs no extra masking.
  double* cdx = nullptr;
  double* cdy = nullptr;
  double* cdz = nullptr;
  double* cr = nullptr;
  double* cdphi = nullptr;
  double* cir = nullptr;    ///< 1/r (0 on rejected lanes)
  double* cv = nullptr;     ///< pair spline value v(r) (0 on rejected)
  double* cdvdr = nullptr;  ///< pair spline derivative (0 on rejected)

  bool active() const { return x != nullptr; }
};

/// Phase-1 tile sweep for atom i: SIMD loop computes minimum image,
/// cutoff mask, the density spline AND the pair spline for every lane
/// (r is live in a register, so the second spline costs one extra
/// coefficient gather here and saves gathers + a divide in the replay),
/// records the pair cache at the padded slots, accumulates rho_i, and
/// stages each lane's phi; a scalar loop bounded by the real sublist
/// length then hands non-zero contributions to `scatter(j, phi)` under
/// the calling strategy's protection. Returns rho_i.
template <class ScatterRho>
inline double soa_density_atom(const SoaView& s, double cutoff2,
                               std::size_t i, ScatterRho&& scatter) {
  const double* __restrict xs = s.x;
  const double* __restrict ys = s.y;
  const double* __restrict zs = s.z;
  const double xi = xs[i], yi = ys[i], zi = zs[i];
  const double lx = s.lx, ly = s.ly, lz = s.lz;
  const double ilx = s.ilx, ily = s.ily, ilz = s.ilz;
  const std::uint32_t sent = s.sent;
  const double* __restrict coef = s.density.coef;
  const double sx0 = s.density.x0;
  const double sdx = s.density.dx;
  const double slast = static_cast<double>(s.density.segments - 1);
  const double* __restrict pcoef = s.pair.coef;
  const double px0 = s.pair.x0;
  const double pdx = s.pair.dx;
  const double plast = static_cast<double>(s.pair.segments - 1);
  const std::size_t begin = s.tile_index[i];
  const std::size_t end = s.tile_index[i + 1];
  const std::size_t real_end = begin + s.len[i];
  double rho_i = 0.0;
  for (std::size_t b = begin; b < end; b += kSoaChunk) {
    const std::size_t m = std::min(end - b, kSoaChunk);
    const std::uint32_t* __restrict jl = s.tiles + b;
    double* __restrict cdx = s.cdx + b;
    double* __restrict cdy = s.cdy + b;
    double* __restrict cdz = s.cdz + b;
    double* __restrict cr = s.cr + b;
    double* __restrict cdphi = s.cdphi + b;
    double* __restrict cir = s.cir + b;
    double* __restrict cv = s.cv + b;
    double* __restrict cdvdr = s.cdvdr + b;
    double phi_lane[kSoaChunk];
#pragma omp simd reduction(+ : rho_i)
    for (std::size_t k = 0; k < m; ++k) {
      const std::uint32_t j = jl[k];
      double dx = xi - xs[j];
      double dy = yi - ys[j];
      double dz = zi - zs[j];
      dx -= lx * std::nearbyint(dx * ilx);
      dy -= ly * std::nearbyint(dy * ily);
      dz -= lz * std::nearbyint(dz * ilz);
      const double r2 = dx * dx + dy * dy + dz * dz;
      const bool in = (j != sent) & (r2 < cutoff2);
      const double r = std::sqrt(r2);
      // Interval-indexed splines: index computation + one contiguous
      // 4-coefficient load per lane (a cross-lane gather), Horner form.
      double fidx = std::floor((r - sx0) / sdx);
      fidx = fidx < 0.0 ? 0.0 : fidx;
      fidx = fidx > slast ? slast : fidx;
      const double t = r - (sx0 + sdx * fidx);
      const double* __restrict c =
          coef + 4 * static_cast<std::size_t>(fidx);
      const double phi0 = c[0] + t * (c[1] + t * (c[2] + t * c[3]));
      const double dphi = c[1] + t * (2.0 * c[2] + 3.0 * t * c[3]);
      double pfidx = std::floor((r - px0) / pdx);
      pfidx = pfidx < 0.0 ? 0.0 : pfidx;
      pfidx = pfidx > plast ? plast : pfidx;
      const double pt = r - (px0 + pdx * pfidx);
      const double* __restrict pc =
          pcoef + 4 * static_cast<std::size_t>(pfidx);
      const double v = pc[0] + pt * (pc[1] + pt * (pc[2] + pt * pc[3]));
      const double dvdr = pc[1] + pt * (2.0 * pc[2] + 3.0 * pt * pc[3]);
      const double phi = in ? phi0 : 0.0;
      phi_lane[k] = phi;
      rho_i += phi;
      cdx[k] = dx;
      cdy[k] = dy;
      cdz[k] = dz;
      cr[k] = in ? r : -1.0;
      cdphi[k] = dphi;
      cir[k] = in ? 1.0 / r : 0.0;
      cv[k] = in ? v : 0.0;
      cdvdr[k] = in ? dvdr : 0.0;
    }
    // Drain only the real sublist prefix - pads live at the tile's tail.
    const std::size_t dm = real_end > b ? std::min(real_end - b, m) : 0;
    for (std::size_t k = 0; k < dm; ++k) {
      // phi == 0 covers cutoff rejections AND true zero contributions -
      // scattering the latter would add +0.0, a no-op the scalar path
      // performs and this one skips.
      if (phi_lane[k] != 0.0) scatter(jl[k], phi_lane[k]);
    }
  }
  return rho_i;
}

struct SoaForceOut {
  double fx = 0.0, fy = 0.0, fz = 0.0;  ///< force on atom i
  double energy = 0.0;                  ///< pair-energy partial sum
  double virial = 0.0;
};

/// Phase-3 tile replay for atom i: the branch-free PairCache replay loop.
/// Everything expensive was cached at density time, so each lane is pure
/// contiguous loads (geometry, phi', 1/r, v, dv/dr) plus one fp[] gather
/// and a handful of FMAs - no spline evaluation, no divide, no masking
/// beyond the index clamp (rejected lanes carry exact zeros). Reduces
/// f_i/energy/virial and stages per-lane force vectors; the scalar loop,
/// bounded by the real sublist length, hands accepted lanes to
/// `scatter(j, fx, fy, fz)` for the Newton's-third-law update.
template <class ScatterForce>
inline void soa_force_atom(const SoaView& s, const double* __restrict fp,
                           double fp_i, std::size_t i, SoaForceOut& out,
                           ScatterForce&& scatter) {
  const std::uint32_t sent = s.sent;
  const std::size_t begin = s.tile_index[i];
  const std::size_t end = s.tile_index[i + 1];
  const std::size_t real_end = begin + s.len[i];
  double fxi = 0.0, fyi = 0.0, fzi = 0.0, energy = 0.0, virial = 0.0;
  for (std::size_t b = begin; b < end; b += kSoaChunk) {
    const std::size_t m = std::min(end - b, kSoaChunk);
    const std::uint32_t* __restrict jl = s.tiles + b;
    const double* __restrict cdx = s.cdx + b;
    const double* __restrict cdy = s.cdy + b;
    const double* __restrict cdz = s.cdz + b;
    const double* __restrict cr = s.cr + b;
    const double* __restrict cdphi = s.cdphi + b;
    const double* __restrict cir = s.cir + b;
    const double* __restrict cv = s.cv + b;
    const double* __restrict cdvdr = s.cdvdr + b;
    double fxl[kSoaChunk], fyl[kSoaChunk], fzl[kSoaChunk];
#pragma omp simd reduction(+ : fxi, fyi, fzi, energy, virial)
    for (std::size_t k = 0; k < m; ++k) {
      const std::uint32_t j = jl[k];
      const std::uint32_t js = j < sent ? j : 0u;  // clamp the fp gather
      const double fp_sum = fp_i + fp[js];
      // cir-masking: rejected and sentinel lanes hold cir == 0 and
      // cdvdr == 0, so fpair (and with it fx/fy/fz and the virial term)
      // is exactly +/-0.0 there with no select needed.
      const double fpair = -(cdvdr[k] + fp_sum * cdphi[k]) * cir[k];
      const double fx = fpair * cdx[k];
      const double fy = fpair * cdy[k];
      const double fz = fpair * cdz[k];
      fxl[k] = fx;
      fyl[k] = fy;
      fzl[k] = fz;
      fxi += fx;
      fyi += fy;
      fzi += fz;
      energy += cv[k];
      virial += fpair * cr[k] * cr[k];
    }
    // Drain only the real sublist prefix - pads live at the tile's tail.
    const std::size_t dm = real_end > b ? std::min(real_end - b, m) : 0;
    for (std::size_t k = 0; k < dm; ++k) {
      if (cr[k] >= 0.0) scatter(jl[k], fxl[k], fyl[k], fzl[k]);
    }
  }
  out.fx = fxi;
  out.fy = fyi;
  out.fz = fzi;
  out.energy = energy;
  out.virial = virial;
}

/// RC (full-list) density gather for atom i: no scatter, no cache - a pure
/// SIMD reduction over the padded tile.
inline double soa_rc_density_atom(const SoaView& s, double cutoff2,
                                  std::size_t i) {
  const double* __restrict xs = s.x;
  const double* __restrict ys = s.y;
  const double* __restrict zs = s.z;
  const double xi = xs[i], yi = ys[i], zi = zs[i];
  const double lx = s.lx, ly = s.ly, lz = s.lz;
  const double ilx = s.ilx, ily = s.ily, ilz = s.ilz;
  const std::uint32_t sent = s.sent;
  const double* __restrict coef = s.density.coef;
  const double sx0 = s.density.x0;
  const double sdx = s.density.dx;
  const double slast = static_cast<double>(s.density.segments - 1);
  const std::uint32_t* __restrict jl = s.tiles;
  const std::size_t begin = s.tile_index[i];
  const std::size_t end = s.tile_index[i + 1];
  double rho_i = 0.0;
#pragma omp simd reduction(+ : rho_i)
  for (std::size_t k = begin; k < end; ++k) {
    const std::uint32_t j = jl[k];
    double dx = xi - xs[j];
    double dy = yi - ys[j];
    double dz = zi - zs[j];
    dx -= lx * std::nearbyint(dx * ilx);
    dy -= ly * std::nearbyint(dy * ily);
    dz -= lz * std::nearbyint(dz * ilz);
    const double r2 = dx * dx + dy * dy + dz * dz;
    const bool in = (j != sent) & (r2 < cutoff2);
    const double r = std::sqrt(r2);
    double fidx = std::floor((r - sx0) / sdx);
    fidx = fidx < 0.0 ? 0.0 : fidx;
    fidx = fidx > slast ? slast : fidx;
    const double t = r - (sx0 + sdx * fidx);
    const double* __restrict c = coef + 4 * static_cast<std::size_t>(fidx);
    const double phi0 = c[0] + t * (c[1] + t * (c[2] + t * c[3]));
    rho_i += in ? phi0 : 0.0;
  }
  return rho_i;
}

/// RC (full-list) force gather for atom i: geometry recomputed, both
/// splines evaluated per lane, no scatter at all - the GPU-natural
/// formulation, and the easiest loop for the vectorizer.
inline void soa_rc_force_atom(const SoaView& s, double cutoff2,
                              const double* __restrict fp, double fp_i,
                              std::size_t i, SoaForceOut& out) {
  const double* __restrict xs = s.x;
  const double* __restrict ys = s.y;
  const double* __restrict zs = s.z;
  const double xi = xs[i], yi = ys[i], zi = zs[i];
  const double lx = s.lx, ly = s.ly, lz = s.lz;
  const double ilx = s.ilx, ily = s.ily, ilz = s.ilz;
  const std::uint32_t sent = s.sent;
  const double* __restrict dcoef = s.density.coef;
  const double dx0 = s.density.x0;
  const double ddx = s.density.dx;
  const double dlast = static_cast<double>(s.density.segments - 1);
  const double* __restrict pcoef = s.pair.coef;
  const double px0 = s.pair.x0;
  const double pdx = s.pair.dx;
  const double plast = static_cast<double>(s.pair.segments - 1);
  const std::uint32_t* __restrict jl = s.tiles;
  const std::size_t begin = s.tile_index[i];
  const std::size_t end = s.tile_index[i + 1];
  double fxi = 0.0, fyi = 0.0, fzi = 0.0, energy = 0.0, virial = 0.0;
#pragma omp simd reduction(+ : fxi, fyi, fzi, energy, virial)
  for (std::size_t k = begin; k < end; ++k) {
    const std::uint32_t j = jl[k];
    double dx = xi - xs[j];
    double dy = yi - ys[j];
    double dz = zi - zs[j];
    dx -= lx * std::nearbyint(dx * ilx);
    dy -= ly * std::nearbyint(dy * ily);
    dz -= lz * std::nearbyint(dz * ilz);
    const double r2 = dx * dx + dy * dy + dz * dz;
    const bool in = (j != sent) & (r2 < cutoff2);
    const double r = in ? std::sqrt(r2) : 1.0;
    double pf = std::floor((r - px0) / pdx);
    pf = pf < 0.0 ? 0.0 : pf;
    pf = pf > plast ? plast : pf;
    const double pt = r - (px0 + pdx * pf);
    const double* __restrict pc = pcoef + 4 * static_cast<std::size_t>(pf);
    const double v = pc[0] + pt * (pc[1] + pt * (pc[2] + pt * pc[3]));
    const double dvdr = pc[1] + pt * (2.0 * pc[2] + 3.0 * pt * pc[3]);
    double df = std::floor((r - dx0) / ddx);
    df = df < 0.0 ? 0.0 : df;
    df = df > dlast ? dlast : df;
    const double dt = r - (dx0 + ddx * df);
    const double* __restrict dc = dcoef + 4 * static_cast<std::size_t>(df);
    const double dphi = dc[1] + dt * (2.0 * dc[2] + 3.0 * dt * dc[3]);
    const std::uint32_t js = in ? j : 0u;
    const double fpair0 = -(dvdr + (fp_i + fp[js]) * dphi) / r;
    const double fpair = in ? fpair0 : 0.0;
    fxi += fpair * dx;
    fyi += fpair * dy;
    fzi += fpair * dz;
    // Each pair is visited from both sides; halve the pairwise sums so
    // totals match the half-list kernels.
    energy += in ? 0.5 * v : 0.0;
    virial += 0.5 * fpair * r * r;
  }
  out.fx = fxi;
  out.fy = fyi;
  out.fz = fzi;
  out.energy = energy;
  out.virial = virial;
}

/// Phase-2 embedding over [begin, end): fp[i] = F'(rho_i) via the packed
/// embed spline, returns the partial sum of F(rho_i). Pure SIMD - callers
/// distribute atom blocks over threads and sum the returned partials.
inline double soa_embed_range(const PackedSplineView& es,
                              const double* __restrict rho,
                              double* __restrict fp, std::size_t begin,
                              std::size_t end) {
  const double* __restrict coef = es.coef;
  const double x0 = es.x0;
  const double dx = es.dx;
  const double last = static_cast<double>(es.segments - 1);
  double energy = 0.0;
#pragma omp simd reduction(+ : energy)
  for (std::size_t i = begin; i < end; ++i) {
    double fidx = std::floor((rho[i] - x0) / dx);
    fidx = fidx < 0.0 ? 0.0 : fidx;
    fidx = fidx > last ? last : fidx;
    const double t = rho[i] - (x0 + dx * fidx);
    const double* __restrict c = coef + 4 * static_cast<std::size_t>(fidx);
    fp[i] = c[1] + t * (2.0 * c[2] + 3.0 * t * c[3]);
    energy += c[0] + t * (c[1] + t * (c[2] + t * c[3]));
  }
  return energy;
}

}  // namespace sdcmd::detail
